// Substrate ablation: how the analog engine's numerical choices affect the
// measured Table-1 quantities. DESIGN.md calls out integrator choice and
// step size as the design decisions to ablate.
//
// We measure the fault-free and MBD2 NAND fall delays under backward Euler
// vs trapezoidal at several step sizes, against a fine-step trapezoidal
// reference, and report accuracy and cost (accepted steps, NR iterations).
#include "bench_common.hpp"
#include "core/core.hpp"

namespace {

using namespace obd;

struct Config {
  const char* name;
  spice::Integrator integrator;
  double dt;
};

void reproduce() {
  const cells::Technology tech = cells::Technology::default_350nm();
  const cells::TwoVector fall{0b01, 0b11};
  const cells::TransistorRef na{false, 0};

  std::printf("=== Ablation: integrator and step size ===\n\n");

  // Reference: fine trapezoidal.
  core::CharacterizeOptions ref_opt;
  ref_opt.dt = 0.5e-12;
  ref_opt.integrator = spice::Integrator::kTrapezoidal;
  core::GateCharacterizer ref(cells::nand_topology(2), tech, ref_opt);
  const auto ref_ff =
      ref.measure(std::nullopt, core::BreakdownStage::kFaultFree, fall);
  const auto ref_bd = ref.measure(na, core::BreakdownStage::kMbd2, fall);
  std::printf("reference (trap, dt=0.5ps): ff=%s mbd2=%s\n\n",
              util::format_time_eng(ref_ff.delay.value_or(0)).c_str(),
              util::format_time_eng(ref_bd.delay.value_or(0)).c_str());

  const Config configs[] = {
      {"BE dt=8ps", spice::Integrator::kBackwardEuler, 8e-12},
      {"BE dt=4ps", spice::Integrator::kBackwardEuler, 4e-12},
      {"BE dt=2ps", spice::Integrator::kBackwardEuler, 2e-12},
      {"BE dt=1ps", spice::Integrator::kBackwardEuler, 1e-12},
      {"TR dt=8ps", spice::Integrator::kTrapezoidal, 8e-12},
      {"TR dt=4ps", spice::Integrator::kTrapezoidal, 4e-12},
      {"TR dt=2ps", spice::Integrator::kTrapezoidal, 2e-12},
      {"TR dt=1ps", spice::Integrator::kTrapezoidal, 1e-12},
  };

  util::AsciiTable t("measured NAND fall delay vs numerical configuration");
  t.set_header({"config", "ff delay", "ff err", "mbd2 delay", "mbd2 err",
                "steps", "NR iters"});
  for (const Config& cfg : configs) {
    core::CharacterizeOptions opt;
    opt.dt = cfg.dt;
    opt.integrator = cfg.integrator;
    core::GateCharacterizer chr(cells::nand_topology(2), tech, opt);
    const auto ff =
        chr.measure(std::nullopt, core::BreakdownStage::kFaultFree, fall);
    const auto bd = chr.measure(na, core::BreakdownStage::kMbd2, fall);
    const auto res =
        chr.trace(na, core::BreakdownStage::kMbd2, fall);  // cost probe
    auto err = [](const std::optional<double>& got,
                  const std::optional<double>& want) -> std::string {
      if (!got || !want) return "-";
      return util::format_time_eng(std::abs(*got - *want));
    };
    t.add_row({cfg.name,
               benchsup::delay_cell(ff.delay, ff.stuck, ff.stuck_high),
               err(ff.delay, ref_ff.delay),
               benchsup::delay_cell(bd.delay, bd.stuck, bd.stuck_high),
               err(bd.delay, ref_bd.delay), std::to_string(res.accepted_steps),
               std::to_string(res.newton_iterations)});
  }
  t.print();
  std::printf(
      "take-away: trapezoidal holds the Table-1 quantities to a few ps even\n"
      "at 4-8ps steps; backward Euler's first-order damping needs ~2ps for\n"
      "the same accuracy. The repo default (trap, 2ps) is conservative.\n\n");
}

void BM_TrapStep2ps(benchmark::State& state) {
  const cells::Technology tech = cells::Technology::default_350nm();
  core::CharacterizeOptions opt;
  opt.dt = 2e-12;
  core::GateCharacterizer chr(cells::nand_topology(2), tech, opt);
  for (auto _ : state) {
    const auto m = chr.measure(cells::TransistorRef{false, 0},
                               core::BreakdownStage::kMbd2, {0b01, 0b11});
    benchmark::DoNotOptimize(m.delay);
  }
}
BENCHMARK(BM_TrapStep2ps)->Unit(benchmark::kMillisecond);

void BM_BeStep2ps(benchmark::State& state) {
  const cells::Technology tech = cells::Technology::default_350nm();
  core::CharacterizeOptions opt;
  opt.dt = 2e-12;
  opt.integrator = spice::Integrator::kBackwardEuler;
  core::GateCharacterizer chr(cells::nand_topology(2), tech, opt);
  for (auto _ : state) {
    const auto m = chr.measure(cells::TransistorRef{false, 0},
                               core::BreakdownStage::kMbd2, {0b01, 0b11});
    benchmark::DoNotOptimize(m.delay);
  }
}
BENCHMARK(BM_BeStep2ps)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return obd::benchsup::run_bench_main(argc, argv, &reproduce);
}

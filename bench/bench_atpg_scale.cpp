// Sec. 5 complexity claim: "for combinational circuits, test pattern
// generation for OBD defects is of the same computational complexity as for
// stuck-at faults".
//
// We time stuck-at, transition and OBD ATPG over growing ripple-carry
// adders and parity trees, reporting per-fault effort (backtracks and
// implications). OBD cost tracks the stuck-at/transition trend (a constant
// small factor for the two frames), not a different complexity class.
#include "bench_common.hpp"
#include <chrono>

#include "atpg/atpg.hpp"
#include "logic/logic.hpp"

namespace {

using namespace obd;
using namespace obd::atpg;
using Clock = std::chrono::steady_clock;

struct Effort {
  double ms_per_fault = 0.0;
  double implications_per_fault = 0.0;
  int found = 0;
  int untestable = 0;
  int aborted = 0;
};

template <typename RunFn, typename FaultList>
Effort measure(RunFn run, const FaultList& faults) {
  const auto t0 = Clock::now();
  const AtpgRun r = run();
  const auto t1 = Clock::now();
  Effort e;
  const double ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  const double n = static_cast<double>(faults.size());
  e.ms_per_fault = ms / n;
  e.implications_per_fault =
      static_cast<double>(r.total_implications) / n;
  e.found = r.found;
  e.untestable = r.untestable;
  e.aborted = r.aborted;
  return e;
}

void reproduce() {
  std::printf(
      "=== Sec. 5: OBD TPG complexity tracks stuck-at TPG ===\n\n");

  util::AsciiTable t("per-fault ATPG effort");
  t.set_header({"circuit", "gates", "faults sa/tr/obd", "sa ms", "tr ms",
                "obd ms", "sa impl", "tr impl", "obd impl", "aborted"});
  std::vector<logic::Circuit> circuits;
  circuits.push_back(logic::ripple_carry_adder(2));
  circuits.push_back(logic::ripple_carry_adder(4));
  circuits.push_back(logic::ripple_carry_adder(8));
  circuits.push_back(logic::parity_tree(8));
  circuits.push_back(logic::parity_tree(16));
  for (const auto& c : circuits) {
    const auto sf = enumerate_stuck_faults(c);
    const auto tf = enumerate_transition_faults(c);
    const auto of = enumerate_obd_faults(c);
    const Effort es = measure([&] { return run_stuck_at_atpg(c, sf); }, sf);
    const Effort et = measure([&] { return run_transition_atpg(c, tf); }, tf);
    const Effort eo = measure([&] { return run_obd_atpg(c, of); }, of);
    t.add_row({c.name(), std::to_string(c.num_gates()),
               std::to_string(sf.size()) + "/" + std::to_string(tf.size()) +
                   "/" + std::to_string(of.size()),
               util::format_g(es.ms_per_fault, 3),
               util::format_g(et.ms_per_fault, 3),
               util::format_g(eo.ms_per_fault, 3),
               util::format_g(es.implications_per_fault, 3),
               util::format_g(et.implications_per_fault, 3),
               util::format_g(eo.implications_per_fault, 3),
               std::to_string(es.aborted + et.aborted + eo.aborted)});
  }
  t.print();
  std::printf(
      "paper: OBD TPG adds only the second (justification) frame and the\n"
      "gate-input pinning to the stuck-at search - a constant factor, not\n"
      "a complexity-class change. The per-fault effort columns grow at the\n"
      "same rate across the three models as circuits scale.\n\n");
}

void BM_ObdAtpgRca4(benchmark::State& state) {
  const logic::Circuit c = logic::ripple_carry_adder(4);
  const auto faults = enumerate_obd_faults(c);
  for (auto _ : state) {
    const AtpgRun r = run_obd_atpg(c, faults);
    benchmark::DoNotOptimize(r.found);
  }
}
BENCHMARK(BM_ObdAtpgRca4)->Unit(benchmark::kMillisecond);

void BM_StuckAtpgRca4(benchmark::State& state) {
  const logic::Circuit c = logic::ripple_carry_adder(4);
  const auto faults = enumerate_stuck_faults(c);
  for (auto _ : state) {
    const AtpgRun r = run_stuck_at_atpg(c, faults);
    benchmark::DoNotOptimize(r.found);
  }
}
BENCHMARK(BM_StuckAtpgRca4)->Unit(benchmark::kMillisecond);

void BM_BitParallelFaultSim(benchmark::State& state) {
  const logic::Circuit c = logic::ripple_carry_adder(8);
  std::vector<std::uint64_t> pi(c.inputs().size(), 0xAAAA5555CCCC3333ull);
  for (auto _ : state) {
    const auto words = c.eval_words(pi);
    benchmark::DoNotOptimize(words.back());
  }
}
BENCHMARK(BM_BitParallelFaultSim);

}  // namespace

int main(int argc, char** argv) {
  return obd::benchsup::run_bench_main(argc, argv, &reproduce);
}

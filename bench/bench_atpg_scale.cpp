// Sec. 5 complexity claim: "for combinational circuits, test pattern
// generation for OBD defects is of the same computational complexity as for
// stuck-at faults".
//
// We time stuck-at, transition and OBD ATPG over growing ripple-carry
// adders and parity trees, reporting per-fault effort (backtracks and
// implications). OBD cost tracks the stuck-at/transition trend (a constant
// small factor for the two frames), not a different complexity class.
// The bit-parallel engine comparison below (and BENCH_atpg_scale.json)
// tracks the fault-simulation hot path: legacy one-fault-one-pattern
// full-circuit evaluation vs multi-lane pattern blocks (64 lanes, plus the
// 256-lane LaneBlock SIMD width) with event-driven frontier propagation
// and fault dropping, at identical coverage. The sched section sweeps
// lanes x packing x threads; the c7552 rows are the regression sentinel
// for the wide-tier cliff this engine exists to kill.
#include "bench_common.hpp"
#include <algorithm>
#include <chrono>
#include <cstdarg>

#include "atpg/atpg.hpp"
#include "flow/campaign.hpp"
#include "io/bench.hpp"
#include "logic/logic.hpp"
#include "obs/trace.hpp"
#include "util/crc32c.hpp"
#include "util/io.hpp"

namespace {

using namespace obd;
using namespace obd::atpg;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Min-of-2 wall time: the first run warms cone caches and page tables,
/// the min discards scheduler noise. Timing rows only — detection results
/// are asserted identical elsewhere.
template <typename Fn>
double min2(Fn fn) {
  double best = 1e300;
  for (int rep = 0; rep < 2; ++rep) {
    const auto t0 = Clock::now();
    fn();
    best = std::min(best, seconds_since(t0));
  }
  return best;
}

struct SimComparison {
  std::string circuit;
  std::size_t gates = 0;
  std::size_t faults = 0;
  std::size_t patterns = 0;
  double legacy_s = 0.0;
  double block_s = 0.0;       // 64-lane blocks
  double block_wide_s = 0.0;  // 256-lane blocks (LaneBlock kernels)
  double drop_s = 0.0;
  int legacy_detected = 0;
  int block_detected = 0;

  double legacy_throughput() const {
    return static_cast<double>(faults * patterns) / legacy_s;
  }
  double block_throughput() const {
    return static_cast<double>(faults * patterns) / block_s;
  }
  double wide_throughput() const {
    return static_cast<double>(faults * patterns) / block_wide_s;
  }
  double speedup() const { return legacy_s / block_s; }
  double wide_speedup() const { return legacy_s / block_wide_s; }
  double drop_speedup() const { return legacy_s / drop_s; }
};

/// Corpus ISCAS circuits (bench/circuits/), lowered to the primitive-gate
/// netlist the OBD model needs; sequential designs come in as their
/// full-scan view. These are the "real workload" rows of the perf
/// trajectory, next to the synthetic zoo.
std::vector<logic::Circuit> iscas_circuits(bool wide = false) {
  std::vector<logic::Circuit> out;
  const std::vector<const char*> narrow = {"c432.bench", "c880.bench",
                                           "c1355.bench", "s344.bench"};
  // The wide tier exceeds 64 PIs (233/207 PIs, a 74-flop scan chain) and
  // exercises the multi-word InputVec vector path.
  const std::vector<const char*> widef = {"c2670.bench", "c7552.bench",
                                          "s1423.bench"};
  for (const char* f : wide ? widef : narrow) {
    const io::BenchParseResult r =
        io::load_bench_file(std::string(OBD_CORPUS_DIR) + "/" + f);
    if (!r.ok) {
      std::fprintf(stderr, "corpus %s: %s\n", f, r.error.c_str());
      continue;
    }
    const logic::Circuit view =
        r.seq.flops().empty() ? r.circuit() : r.seq.scan_view();
    out.push_back(logic::decompose_composites(view));
  }
  return out;
}

/// Times legacy scalar vs block engine (with and without fault dropping)
/// over the same OBD fault list and test set.
SimComparison compare_obd_sim(const logic::Circuit& c, int n_tests) {
  SimComparison r;
  r.circuit = c.name();
  r.gates = c.num_gates();
  const auto faults = enumerate_obd_faults(c);
  r.faults = faults.size();
  const auto tests =
      random_pairs(static_cast<int>(c.inputs().size()), n_tests, 0xca11ab1e);
  r.patterns = tests.size();

  {
    const auto t0 = Clock::now();
    std::vector<bool> covered(faults.size(), false);
    for (const auto& t : tests) {
      const auto det = legacy::simulate_obd(c, t, faults);
      for (std::size_t f = 0; f < faults.size(); ++f)
        if (det[f] && !covered[f]) {
          covered[f] = true;
          ++r.legacy_detected;
        }
    }
    r.legacy_s = seconds_since(t0);
  }
  {
    FaultSimEngine engine(c);
    r.block_s = min2([&] {
      r.block_detected = engine.campaign_obd(tests, faults, false).detected;
    });
  }
  {
    FaultSimEngine wide(c, EngineOptions{0, /*lane_words=*/4});
    int wide_detected = 0;
    r.block_wide_s = min2([&] {
      wide_detected = wide.campaign_obd(tests, faults, false).detected;
    });
    if (wide_detected != r.block_detected) r.block_detected = -1;
  }
  {
    FaultSimEngine engine(c);
    int drop_detected = 0;
    r.drop_s = min2([&] {
      drop_detected = engine.campaign_obd(tests, faults, true).detected;
    });
    if (drop_detected != r.block_detected) r.block_detected = -1;
  }
  return r;
}

/// PODEM-only vs PODEM + SAT top-off on the wide corpus tier: same OBD
/// campaign at a deliberately tight backtrack budget, once leaving the
/// abort tail open and once escalating it to the CDCL backend.
struct SatRow {
  std::string circuit;
  long backtracks = 0;
  std::size_t faults = 0;  // collapsed representatives
  int podem_aborted = 0;
  int sat_detected = 0;
  int sat_untestable = 0;
  int sat_unknown = 0;
  long long sat_conflicts = 0;
  double podem_s = 0.0;          // PODEM-only campaign wall time
  double sat_s = 0.0;            // PODEM + SAT top-off wall time
  double podem_provable = 0.0;   // provable_coverage, abort tail open
  double sat_provable = 0.0;     // provable_coverage after escalation
};

/// Cross-block delta good evaluation on the wide-tier sentinel: c7552
/// block throughput with --delta-goods off vs on, over a correlated
/// (grey-sorted) pattern stream — the workload the resident-goods reuse
/// targets. The identical column re-asserts the bit-identity contract.
struct DeltaRow {
  std::string circuit;
  std::string partition;  // "full" or "shard32" (strided fault subset)
  std::size_t faults = 0;
  std::size_t patterns = 0;
  double off_s = 0.0;
  double on_s = 0.0;
  long long delta_good_evals = 0;     // blocks served by the delta walk
  long long delta_full_fallbacks = 0; // blocks that fell back to full eval
  bool identical = false;

  double off_fps() const {
    return static_cast<double>(faults * patterns) / off_s;
  }
  double on_fps() const {
    return static_cast<double>(faults * patterns) / on_s;
  }
  double speedup() const { return off_s / on_s; }
};

/// Incremental SAT on the PODEM abort tail: the same starved-backtracks
/// campaign solved twice, once re-encoding per fault (fresh) and once on
/// the persistent assumption-based session. Verdicts must match exactly;
/// conflicts_saved = fresh_conflicts - incremental_conflicts is the win.
struct IncSatRow {
  std::string circuit;
  long backtracks = 0;
  int sat_detected = 0;
  int sat_untestable = 0;
  int sat_unknown = 0;
  long long fresh_conflicts = 0;
  long long inc_conflicts = 0;
  long long cone_hits = 0;
  long long inc_refutes = 0;
  long long clauses_kept = 0;
  double fresh_sat_s = 0.0;
  double inc_sat_s = 0.0;
  bool identical = false;

  long long conflicts_saved() const {
    return fresh_conflicts - inc_conflicts;
  }
};

/// Disabled-instrumentation cost check: the same c7552 block-throughput
/// measurement twice with tracing off (their spread brackets host noise)
/// and once with the trace recorder live. CI gates on off-spread <= 2%:
/// the metrics sheets are always on, so if instrumentation cost anything
/// measurable it would show up as a stable off-vs-off regression against
/// the checked-in trajectory, and the traced column shows the (accepted,
/// bounded) price of recording spans.
struct ObsOverheadRow {
  std::string circuit;
  std::size_t faults = 0;
  std::size_t patterns = 0;
  double off_a_s = 0.0;   ///< min tracing-off time, first rep of each round
  double off_b_s = 0.0;   ///< min tracing-off time, second rep of each round
  double traced_s = 0.0;  ///< min tracing-on time
  /// Off-vs-off min disagreement, as a percentage — the noise bracket the
  /// 2% CI gate rides on. The two off series interleave with each other
  /// (and with the traced series) round by round, so both mins sample the
  /// same quiet windows and the bracket stays tight on shared runners.
  double spread_pct = 0.0;
  /// Traced-min vs off-min, as a percentage: the recording cost.
  double traced_overhead_pct = 0.0;
  long long traced_events = 0;
};

struct SchedRow {
  std::string circuit;
  std::string mode;
  int threads = 0;
  int lanes = 64;
  std::size_t faults = 0;
  std::size_t patterns = 0;
  double secs = 0.0;
  double fps = 0.0;      // fault x patterns / sec
  double speedup = 0.0;  // vs the 1-thread 64-lane pattern-major baseline
  bool identical = false;
};

void appendf(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  out += buf;
}

/// The measurement rows as JSON text — the byte string the embedded
/// CRC-32C covers, so a truncated or hand-edited trajectory file is
/// detectable (verify: crc32c of everything from `  "circuits"` to the
/// closing `  ]` of "observability_overhead", inclusive of the trailing
/// newline).
std::string rows_json(const std::vector<SimComparison>& rows,
                      const std::vector<SchedRow>& sched,
                      const std::vector<SatRow>& sat,
                      const std::vector<DeltaRow>& delta,
                      const std::vector<IncSatRow>& inc,
                      const std::vector<ObsOverheadRow>& obs) {
  std::string out = "  \"circuits\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const SimComparison& r = rows[i];
    appendf(
        out,
        "    {\"name\": \"%s\", \"gates\": %zu, \"obd_faults\": %zu, "
        "\"patterns\": %zu, \"detected\": %d, \"coverage_match\": %s, "
        "\"legacy_fps\": %.4g, \"block_fps\": %.4g, \"block256_fps\": %.4g, "
        "\"speedup\": %.4g, \"speedup256\": %.4g, \"drop_speedup\": %.4g}%s\n",
        r.circuit.c_str(), r.gates, r.faults, r.patterns, r.block_detected,
        r.legacy_detected == r.block_detected ? "true" : "false",
        r.legacy_throughput(), r.block_throughput(), r.wide_throughput(),
        r.speedup(), r.wide_speedup(), r.drop_speedup(),
        i + 1 < rows.size() ? "," : "");
  }
  out += "  ],\n  \"sched\": [\n";
  for (std::size_t i = 0; i < sched.size(); ++i) {
    const SchedRow& r = sched[i];
    appendf(
        out,
        "    {\"name\": \"%s\", \"mode\": \"%s\", \"threads\": %d, "
        "\"lanes\": %d, \"obd_faults\": %zu, \"patterns\": %zu, "
        "\"fps\": %.4g, \"speedup_vs_1t\": %.4g, \"identical\": %s}%s\n",
        r.circuit.c_str(), r.mode.c_str(), r.threads, r.lanes, r.faults,
        r.patterns, r.fps, r.speedup, r.identical ? "true" : "false",
        i + 1 < sched.size() ? "," : "");
  }
  out += "  ],\n  \"sat_escalation\": [\n";
  for (std::size_t i = 0; i < sat.size(); ++i) {
    const SatRow& r = sat[i];
    appendf(
        out,
        "    {\"name\": \"%s\", \"backtracks\": %ld, \"faults\": %zu, "
        "\"podem_aborted\": %d, \"sat_detected\": %d, \"sat_untestable\": %d, "
        "\"sat_unknown\": %d, \"sat_conflicts\": %lld, \"podem_s\": %.4g, "
        "\"sat_s\": %.4g, \"podem_provable\": %.6g, \"sat_provable\": %.6g}%s\n",
        r.circuit.c_str(), r.backtracks, r.faults, r.podem_aborted,
        r.sat_detected, r.sat_untestable, r.sat_unknown, r.sat_conflicts,
        r.podem_s, r.sat_s, r.podem_provable, r.sat_provable,
        i + 1 < sat.size() ? "," : "");
  }
  out += "  ],\n  \"delta_goods\": [\n";
  for (std::size_t i = 0; i < delta.size(); ++i) {
    const DeltaRow& r = delta[i];
    appendf(
        out,
        "    {\"name\": \"%s\", \"partition\": \"%s\", \"obd_faults\": %zu, "
        "\"patterns\": %zu, \"off_fps\": %.4g, \"on_fps\": %.4g, "
        "\"speedup\": %.4g, \"delta_good_evals\": %lld, "
        "\"delta_full_fallbacks\": %lld, \"identical\": %s}%s\n",
        r.circuit.c_str(), r.partition.c_str(), r.faults, r.patterns,
        r.off_fps(), r.on_fps(), r.speedup(), r.delta_good_evals,
        r.delta_full_fallbacks, r.identical ? "true" : "false",
        i + 1 < delta.size() ? "," : "");
  }
  out += "  ],\n  \"incremental_sat\": [\n";
  for (std::size_t i = 0; i < inc.size(); ++i) {
    const IncSatRow& r = inc[i];
    appendf(
        out,
        "    {\"name\": \"%s\", \"backtracks\": %ld, \"sat_detected\": %d, "
        "\"sat_untestable\": %d, \"sat_unknown\": %d, "
        "\"fresh_conflicts\": %lld, \"incremental_conflicts\": %lld, "
        "\"conflicts_saved\": %lld, \"cone_hits\": %lld, "
        "\"incremental_refutes\": %lld, \"clauses_kept\": %lld, "
        "\"fresh_sat_s\": %.4g, \"incremental_sat_s\": %.4g, "
        "\"identical\": %s}%s\n",
        r.circuit.c_str(), r.backtracks, r.sat_detected, r.sat_untestable,
        r.sat_unknown, r.fresh_conflicts, r.inc_conflicts,
        r.conflicts_saved(), r.cone_hits, r.inc_refutes, r.clauses_kept,
        r.fresh_sat_s, r.inc_sat_s, r.identical ? "true" : "false",
        i + 1 < inc.size() ? "," : "");
  }
  out += "  ],\n  \"observability_overhead\": [\n";
  for (std::size_t i = 0; i < obs.size(); ++i) {
    const ObsOverheadRow& r = obs[i];
    appendf(
        out,
        "    {\"name\": \"%s\", \"obd_faults\": %zu, \"patterns\": %zu, "
        "\"off_a_s\": %.4g, \"off_b_s\": %.4g, \"traced_s\": %.4g, "
        "\"spread_pct\": %.4g, \"traced_overhead_pct\": %.4g, "
        "\"traced_events\": %lld}%s\n",
        r.circuit.c_str(), r.faults, r.patterns, r.off_a_s, r.off_b_s,
        r.traced_s, r.spread_pct, r.traced_overhead_pct, r.traced_events,
        i + 1 < obs.size() ? "," : "");
  }
  out += "  ]\n";
  return out;
}

/// Writes the trajectory JSON (atomically — a killed bench run must not
/// leave a torn half-file where a checked-in trajectory used to be) to the
/// working directory and, when built in-tree, to the repo root where
/// BENCH_atpg_scale.json lives.
void emit_json(const std::vector<SimComparison>& rows,
               const std::vector<SchedRow>& sched,
               const std::vector<SatRow>& sat,
               const std::vector<DeltaRow>& delta,
               const std::vector<IncSatRow>& inc,
               const std::vector<ObsOverheadRow>& obs) {
  const std::string body = rows_json(rows, sched, sat, delta, inc, obs);
  std::string doc = "{\n  \"bench\": \"atpg_scale_faultsim\",\n"
                    "  \"unit\": \"fault_patterns_per_sec\",\n";
  appendf(doc, "  \"rows_crc32c\": \"%08x\",\n", obd::util::crc32c(body));
  doc += body;
  doc += "}\n";

  std::vector<std::string> paths = {"BENCH_atpg_scale.json"};
#ifdef OBD_REPO_ROOT
  paths.push_back(std::string(OBD_REPO_ROOT) + "/BENCH_atpg_scale.json");
#endif
  for (const std::string& p : paths) {
    std::string err;
    if (!obd::util::write_file_atomic(p, doc, &err))
      std::fprintf(stderr, "%s: %s\n", p.c_str(), err.c_str());
  }
}

/// Scheduler scaling: threads x packing over the largest zoo circuits, with
/// every configuration's DetectionMatrix checked bit-identical against the
/// 1-thread pattern-major baseline.
std::vector<SchedRow> reproduce_scheduler_scale() {
  std::printf(
      "=== Scheduler scaling: lanes x packing x threads (OBD detection "
      "matrix) ===\n\n");
  std::vector<SchedRow> rows;
  std::vector<logic::Circuit> circuits;
  circuits.push_back(logic::array_multiplier(4));
  circuits.push_back(logic::array_multiplier(6));
  for (auto& c : iscas_circuits()) circuits.push_back(std::move(c));
  for (auto& c : iscas_circuits(/*wide=*/true)) circuits.push_back(std::move(c));

  struct Config {
    const char* mode;
    SimOptions sim;  // {threads, packing, cone_cache_bytes, lane_words}
  };
  const Config configs[] = {
      {"pattern", {1, SimPacking::kPatternMajor}},
      {"pattern", {2, SimPacking::kPatternMajor}},
      {"pattern", {4, SimPacking::kPatternMajor}},
      {"pattern", {1, SimPacking::kPatternMajor, 0, 4}},
      {"pattern", {1, SimPacking::kPatternMajor, 0, 8}},
      {"pattern", {2, SimPacking::kPatternMajor, 0, 4}},
      {"fault", {1, SimPacking::kFaultMajor}},
  };

  util::AsciiTable t("scheduler throughput (fault x patterns / sec)");
  t.set_header({"circuit", "faults", "tests", "mode", "threads", "lanes",
                "fps", "speedup", "identical"});
  for (const auto& c : circuits) {
    const auto faults = enumerate_obd_faults(c);
    // The wide tier carries several-x larger fault lists; trim the pattern
    // budget so the full lanes x packing x threads sweep stays a bench,
    // not a soak.
    const int n_tests = c.inputs().size() > 64 ? 256 : 1024;
    const auto tests =
        random_pairs(static_cast<int>(c.inputs().size()), n_tests, 0xca11ab1e);
    const double work = static_cast<double>(faults.size() * tests.size());
    DetectionMatrix baseline;
    double baseline_s = 0.0;
    for (const Config& cfg : configs) {
      DetectionMatrix m;
      SchedRow row;
      // Engine construction (topo caches, per-worker state) stays off the
      // clock. Repeats adapt to row cost — ms-scale rows get up to 8 so
      // sub-threshold circuits, which run the identical auto-serial path at
      // any thread count, don't read as phantom slowdowns on a noisy host.
      row.secs = 1e300;
      double spent = 0.0;
      for (int rep = 0; rep < 3 || (rep < 8 && spent < 0.12); ++rep) {
        FaultSimScheduler sched(c, cfg.sim);
        const auto t0 = Clock::now();
        m = sched.matrix_obd(tests, faults);
        const double s = seconds_since(t0);
        spent += s;
        row.secs = std::min(row.secs, s);
      }
      row.circuit = c.name();
      row.mode = cfg.mode;
      row.threads = cfg.sim.threads;
      row.lanes = 64 * std::max(1, cfg.sim.lane_words);
      row.faults = faults.size();
      row.patterns = tests.size();
      row.fps = work / row.secs;
      const bool is_baseline = cfg.sim.threads == 1 &&
                               cfg.sim.lane_words <= 1 &&
                               cfg.sim.packing == SimPacking::kPatternMajor;
      if (is_baseline) {
        baseline = m;
        baseline_s = row.secs;
      }
      row.identical = is_baseline || (m.rows == baseline.rows &&
                                      m.covered_count == baseline.covered_count);
      row.speedup = baseline_s / row.secs;
      rows.push_back(row);
      t.add_row({row.circuit, std::to_string(row.faults),
                 std::to_string(row.patterns), row.mode,
                 std::to_string(row.threads), std::to_string(row.lanes),
                 util::format_g(row.fps, 3),
                 util::format_g(row.speedup, 3) + "x",
                 row.identical ? "yes" : "NO"});
    }
  }
  t.print();
  std::printf(
      "pattern-major shards blocks of `lanes` tests across the worker pool\n"
      "(wide rows run the LaneBlock SIMD kernels); the fault-major row\n"
      "packs 64 faults per word against one test (the mode the scheduler\n"
      "auto-selects for tiny test lists). Detection matrices are\n"
      "bit-identical across every row; sub-threshold circuits auto-serial.\n\n");
  return rows;
}

/// SAT top-off of the PODEM abort tail: the wide ISCAS tier at a tight
/// backtrack budget, PODEM-only vs PODEM + CDCL escalation. The SAT rows
/// must close every backtrack abort (cube or untestability proof) — the
/// "sat unk" column is the regression sentinel for the conflict budget.
std::vector<SatRow> reproduce_sat_escalation() {
  std::printf(
      "=== SAT escalation: PODEM abort tail vs CDCL top-off (OBD model) "
      "===\n\n");
  std::vector<SatRow> rows;
  const struct {
    const char* file;
    long backtracks;
  } specs[] = {{"c2670.bench", 20}, {"c7552.bench", 20}};

  util::AsciiTable t("PODEM-only vs PODEM + SAT top-off");
  t.set_header({"circuit", "faults", "bt", "aborts", "sat det", "sat unt",
                "sat unk", "conflicts", "podem s", "sat s", "provable"});
  for (const auto& spec : specs) {
    const io::BenchParseResult pr =
        io::load_bench_file(std::string(OBD_CORPUS_DIR) + "/" + spec.file);
    if (!pr.ok) {
      std::fprintf(stderr, "corpus %s: %s\n", spec.file, pr.error.c_str());
      continue;
    }
    flow::CampaignOptions opt;
    opt.model = flow::FaultModel::kObd;
    opt.max_backtracks = spec.backtracks;
    opt.sim.threads = 2;
    SatRow row;
    row.circuit = pr.circuit().name();
    row.backtracks = spec.backtracks;

    const auto t0 = Clock::now();
    const flow::CampaignReport podem = flow::run_campaign(pr.seq, opt);
    row.podem_s = seconds_since(t0);

    opt.sat_escalate = true;
    const auto t1 = Clock::now();
    const flow::CampaignReport sat = flow::run_campaign(pr.seq, opt);
    row.sat_s = seconds_since(t1);

    row.faults = podem.faults_collapsed;
    row.podem_aborted = podem.aborted;
    row.sat_detected = sat.sat_detected;
    row.sat_untestable = sat.sat_untestable;
    row.sat_unknown = sat.sat_unknown;
    row.sat_conflicts = sat.sat_conflicts;
    row.podem_provable = podem.provable_coverage;
    row.sat_provable = sat.provable_coverage;
    rows.push_back(row);
    t.add_row({row.circuit, std::to_string(row.faults),
               std::to_string(row.backtracks),
               std::to_string(row.podem_aborted),
               std::to_string(row.sat_detected),
               std::to_string(row.sat_untestable),
               std::to_string(row.sat_unknown),
               std::to_string(row.sat_conflicts),
               util::format_g(row.podem_s, 3), util::format_g(row.sat_s, 3),
               util::format_g(row.podem_provable, 4) + " -> " +
                   util::format_g(row.sat_provable, 4)});
  }
  t.print();
  std::printf(
      "same campaign twice: the tight backtrack budget leaves PODEM with an\n"
      "abort tail; --sat-escalate resolves each abort inline into a\n"
      "validated cube or an untestability proof, lifting provable coverage\n"
      "to the exact redundancy-aware bound at a sub-linear wall-time cost.\n\n");
  return rows;
}

/// Delta good evaluation on the wide-tier sentinel: c7552 block campaign
/// throughput with delta off vs forced on, over a correlated stream the
/// resident-goods reuse targets (low PIs repeat the same 64-test pattern
/// per block, PIs 64..68 walk the block index in Gray order — so exactly
/// one PI lane word changes per block boundary). Two fault partitions:
/// the full list, where per-fault propagation amortizes the good eval
/// and delta is roughly neutral, and a shard-sized strided subset (the
/// partition a 32-shard supervised campaign hands each worker), where
/// the per-block good evaluation is a real share of the bill and the
/// delta walk pays for itself.
std::vector<DeltaRow> reproduce_delta_goods() {
  std::printf(
      "=== Delta good evaluation: c7552 block throughput, delta off/on "
      "===\n\n");
  std::vector<DeltaRow> rows;
  const io::BenchParseResult pr =
      io::load_bench_file(std::string(OBD_CORPUS_DIR) + "/c7552.bench");
  if (!pr.ok) {
    std::fprintf(stderr, "corpus c7552.bench: %s\n", pr.error.c_str());
    return rows;
  }
  const logic::Circuit c = logic::decompose_composites(pr.circuit());
  const auto all_faults = enumerate_obd_faults(c);

  std::vector<TwoVectorTest> tests;
  for (int i = 0; i < 2048; ++i) {
    const unsigned low = static_cast<unsigned>(i) & 63u;
    const unsigned blk = static_cast<unsigned>(i) >> 6;
    const unsigned grey = blk ^ (blk >> 1);
    TwoVectorTest t;
    for (int b = 0; b < 6; ++b) {
      t.v1.set_bit(static_cast<std::size_t>(b), ((low >> b) & 1u) != 0);
      t.v2.set_bit(static_cast<std::size_t>(b), ((low >> b) & 1u) != 0);
    }
    for (int b = 0; b < 5; ++b) {
      t.v1.set_bit(static_cast<std::size_t>(64 + b), ((grey >> b) & 1u) != 0);
      t.v2.set_bit(static_cast<std::size_t>(64 + b), ((grey >> b) & 1u) != 0);
    }
    tests.push_back(t);
  }

  util::AsciiTable t("delta good evaluation (c7552 OBD campaign, 64 lanes)");
  t.set_header({"circuit", "partition", "faults", "tests", "off fps",
                "on fps", "speedup", "delta evals", "fallbacks",
                "identical"});
  const struct {
    const char* partition;
    std::size_t stride;
  } parts[] = {{"full", 1}, {"shard32", 32}};
  for (const auto& part : parts) {
    std::vector<logic::ObdFaultSite> faults;
    for (std::size_t i = 0; i < all_faults.size(); i += part.stride)
      faults.push_back(all_faults[i]);

    DeltaRow row;
    row.circuit = c.name();
    row.partition = part.partition;
    row.faults = faults.size();
    row.patterns = tests.size();
    int off_detected = 0;
    int on_detected = 0;
    {
      FaultSimEngine off(c, EngineOptions{0, 1, DeltaGoods::kOff});
      row.off_s = min2([&] {
        off_detected = off.campaign_obd(tests, faults, false).detected;
      });
    }
    {
      FaultSimEngine on(c, EngineOptions{0, 1, DeltaGoods::kOn});
      row.on_s = min2([&] {
        on_detected = on.campaign_obd(tests, faults, false).detected;
      });
      row.delta_good_evals = on.delta_good_evals();
      row.delta_full_fallbacks = on.delta_full_fallbacks();
    }
    row.identical = off_detected == on_detected;
    rows.push_back(row);
    t.add_row({row.circuit, row.partition, std::to_string(row.faults),
               std::to_string(row.patterns), util::format_g(row.off_fps(), 3),
               util::format_g(row.on_fps(), 3),
               util::format_g(row.speedup(), 3) + "x",
               std::to_string(row.delta_good_evals),
               std::to_string(row.delta_full_fallbacks),
               row.identical ? "yes" : "NO"});
  }
  t.print();
  std::printf(
      "delta keeps the previous block's good lanes resident and reseeds the\n"
      "frontier walk from the changed PI words only; on this stream every\n"
      "block after the first is served by the delta walk, and detections\n"
      "stay bit-identical to full evaluation. The full-list row shows the\n"
      "amortized-good-eval ceiling; the shard-sized partition is where the\n"
      "saved full evaluations show up as throughput.\n\n");
  return rows;
}

/// Incremental SAT on the PODEM abort tail: the reproduce_sat_escalation
/// campaigns run twice more, once with per-fault fresh encoding and once
/// on the persistent assumption-based session, to price the win the
/// shared clause database buys on a refutation-heavy tail.
std::vector<IncSatRow> reproduce_incremental_sat() {
  std::printf(
      "=== Incremental SAT: fresh per-fault encoding vs assumption-based "
      "session ===\n\n");
  std::vector<IncSatRow> rows;
  const struct {
    const char* file;
    long backtracks;
  } specs[] = {{"c2670.bench", 20}, {"c7552.bench", 20}};

  util::AsciiTable t("fresh vs incremental SAT top-off");
  t.set_header({"circuit", "bt", "sat det", "sat unt", "fresh conf",
                "inc conf", "saved", "cone hits", "fresh s", "inc s",
                "identical"});
  for (const auto& spec : specs) {
    const io::BenchParseResult pr =
        io::load_bench_file(std::string(OBD_CORPUS_DIR) + "/" + spec.file);
    if (!pr.ok) {
      std::fprintf(stderr, "corpus %s: %s\n", spec.file, pr.error.c_str());
      continue;
    }
    flow::CampaignOptions opt;
    opt.model = flow::FaultModel::kObd;
    opt.max_backtracks = spec.backtracks;
    opt.sim.threads = 2;
    opt.sat_escalate = true;

    opt.sat_incremental = false;
    const flow::CampaignReport fresh = flow::run_campaign(pr.seq, opt);
    opt.sat_incremental = true;
    const flow::CampaignReport inc = flow::run_campaign(pr.seq, opt);

    IncSatRow row;
    row.circuit = pr.circuit().name();
    row.backtracks = spec.backtracks;
    row.sat_detected = inc.sat_detected;
    row.sat_untestable = inc.sat_untestable;
    row.sat_unknown = inc.sat_unknown;
    row.fresh_conflicts = fresh.sat_conflicts;
    row.inc_conflicts = inc.sat_conflicts;
    row.cone_hits = inc.sat_cone_hits;
    row.inc_refutes = inc.sat_incremental_refutes;
    row.clauses_kept = inc.sat_clauses_kept;
    row.fresh_sat_s = fresh.time.sat_s;
    row.inc_sat_s = inc.time.sat_s;
    row.identical = fresh.matrix_hash == inc.matrix_hash &&
                    fresh.sat_detected == inc.sat_detected &&
                    fresh.sat_untestable == inc.sat_untestable &&
                    fresh.sat_unknown == inc.sat_unknown;
    rows.push_back(row);
    t.add_row({row.circuit, std::to_string(row.backtracks),
               std::to_string(row.sat_detected),
               std::to_string(row.sat_untestable),
               std::to_string(row.fresh_conflicts),
               std::to_string(row.inc_conflicts),
               std::to_string(row.conflicts_saved()),
               std::to_string(row.cone_hits),
               util::format_g(row.fresh_sat_s, 3),
               util::format_g(row.inc_sat_s, 3),
               row.identical ? "yes" : "NO"});
  }
  t.print();
  std::printf(
      "the session encodes the good frames once, gates each faulty cone\n"
      "behind an activation literal, and refutes untestable pairs straight\n"
      "off the persistent learned-clause database; verdicts and cubes are\n"
      "identical to fresh solving. SAT pairs still re-solve on a fresh\n"
      "solver for byte-identical cubes, so the conflict win concentrates\n"
      "on refutation-heavy (untestable) tails like these.\n\n");
  return rows;
}

/// Tracing-off overhead guard on the wide-tier sentinel (c7552): block
/// matrix throughput with the recorder dark, twice, then lit once.
std::vector<ObsOverheadRow> reproduce_obs_overhead() {
  std::printf(
      "=== Observability overhead: c7552 block throughput, tracing off/on "
      "===\n\n");
  std::vector<ObsOverheadRow> rows;
  const io::BenchParseResult pr =
      io::load_bench_file(std::string(OBD_CORPUS_DIR) + "/c7552.bench");
  if (!pr.ok) {
    std::fprintf(stderr, "corpus c7552.bench: %s\n", pr.error.c_str());
    return rows;
  }
  const logic::Circuit c = logic::decompose_composites(pr.circuit());
  const auto faults = enumerate_obd_faults(c);
  // 512 patterns: long enough (~100ms/run) that thread-scheduling jitter
  // stays well inside the 2% gate at the min.
  const auto tests =
      random_pairs(static_cast<int>(c.inputs().size()), 512, 0xca11ab1e);

  ObsOverheadRow row;
  row.circuit = c.name();
  row.faults = faults.size();
  row.patterns = tests.size();
  // Single-threaded, interleaved off/off/traced rounds, min per
  // configuration. One thread because the gate measures instrumentation
  // cost, not scheduling: the 2-thread round barrier alone jitters 3-5%
  // run to run, which swamps a 2% gate no matter the estimator. Rep noise
  // is one-sided (a rep is only ever slower than the quiet-host time), so
  // the min over interleaved rounds converges to comparable quiet-window
  // times for all three configurations.
  FaultSimScheduler sched(c, {1, SimPacking::kPatternMajor});
  const auto sample = [&] {
    const auto t0 = Clock::now();
    benchmark::DoNotOptimize(sched.matrix_obd(tests, faults).covered_count);
    return seconds_since(t0);
  };
  sample();  // warm-up: builds the cone cache off the clock
  const auto spread_of = [](double a, double b) {
    return (std::max(a, b) / std::min(a, b) - 1.0) * 100.0;
  };
  // Adaptive round count (same idea as the timing rows' adaptive
  // min-of-N): run at least 9 rounds, then keep going until the two off
  // mins agree to well under the gate, so a round that landed on a busy
  // window gets retried instead of shipped.
  row.off_a_s = row.off_b_s = row.traced_s = 1e300;
  for (int round = 0; round < 40; ++round) {
    row.off_a_s = std::min(row.off_a_s, sample());
    row.off_b_s = std::min(row.off_b_s, sample());
    obs::Recorder::instance().enable(0, "bench");
    row.traced_s = std::min(row.traced_s, sample());
    obs::Recorder::instance().disable();
    if (round >= 8 && spread_of(row.off_a_s, row.off_b_s) <= 0.75) break;
  }
  row.spread_pct = spread_of(row.off_a_s, row.off_b_s);
  row.traced_overhead_pct =
      (row.traced_s / std::min(row.off_a_s, row.off_b_s) - 1.0) * 100.0;
  row.traced_events =
      static_cast<long long>(obs::Recorder::instance().event_count());
  obs::Recorder::instance().clear();
  rows.push_back(row);

  util::AsciiTable t("instrumentation cost (c7552 OBD matrix, 1 thread)");
  t.set_header({"circuit", "faults", "tests", "off a", "off b", "traced",
                "spread", "traced ovh"});
  t.add_row({row.circuit, std::to_string(row.faults),
             std::to_string(row.patterns), util::format_g(row.off_a_s, 3),
             util::format_g(row.off_b_s, 3), util::format_g(row.traced_s, 3),
             util::format_g(row.spread_pct, 3) + "%",
             util::format_g(row.traced_overhead_pct, 3) + "%"});
  t.print();
  std::printf(
      "metrics sheets are always on (cached-slot increments, the same cost\n"
      "as the member counters they replaced); the off-vs-off spread brackets\n"
      "host noise and CI gates it at 2%%. The traced column prices actual\n"
      "span recording.\n\n");
  return rows;
}

void reproduce_faultsim_scale() {
  std::printf(
      "=== Bit-parallel fault simulation: legacy scalar vs multi-lane "
      "blocks ===\n\n");
  std::vector<SimComparison> rows;
  rows.push_back(compare_obd_sim(logic::full_adder_sum_circuit(), 512));
  rows.push_back(compare_obd_sim(logic::ripple_carry_adder(8), 256));
  rows.push_back(compare_obd_sim(logic::ripple_carry_adder(16), 256));
  rows.push_back(compare_obd_sim(logic::parity_tree(16), 256));
  rows.push_back(compare_obd_sim(logic::array_multiplier(4), 256));
  // ISCAS corpus rows: the legacy baseline pays a full-circuit evaluation
  // per (fault, test), so the test budget is smaller on these — and smaller
  // still on the wide (>64 PI) tier, whose fault lists are several times
  // larger.
  for (const auto& c : iscas_circuits())
    rows.push_back(compare_obd_sim(c, 128));
  for (const auto& c : iscas_circuits(/*wide=*/true))
    rows.push_back(compare_obd_sim(c, 32));

  util::AsciiTable t("OBD fault-sim throughput (fault x patterns / sec)");
  t.set_header({"circuit", "gates", "faults", "tests", "cov ok", "legacy",
                "block64", "x64", "x256", "w/ dropping"});
  for (const auto& r : rows) {
    t.add_row({r.circuit, std::to_string(r.gates), std::to_string(r.faults),
               std::to_string(r.patterns),
               r.legacy_detected == r.block_detected ? "yes" : "NO",
               util::format_g(r.legacy_throughput(), 3),
               util::format_g(r.block_throughput(), 3),
               util::format_g(r.speedup(), 3) + "x",
               util::format_g(r.wide_speedup(), 3) + "x",
               util::format_g(r.drop_speedup(), 3) + "x"});
  }
  t.print();
  std::printf(
      "identical detections, one good evaluation per pattern block, and\n"
      "event-driven frontier propagation per fault (x256 = 256-lane SIMD\n"
      "blocks); fault dropping then removes covered faults from later\n"
      "blocks.\n\n");
  const std::vector<SchedRow> sched_rows = reproduce_scheduler_scale();
  const std::vector<SatRow> sat_rows = reproduce_sat_escalation();
  const std::vector<DeltaRow> delta_rows = reproduce_delta_goods();
  const std::vector<IncSatRow> inc_rows = reproduce_incremental_sat();
  const std::vector<ObsOverheadRow> obs_rows = reproduce_obs_overhead();
  emit_json(rows, sched_rows, sat_rows, delta_rows, inc_rows, obs_rows);
  std::printf(
      "JSON (circuits + sched + sat_escalation + delta_goods + "
      "incremental_sat + observability_overhead rows): "
      "BENCH_atpg_scale.json\n\n");
}

struct Effort {
  double ms_per_fault = 0.0;
  double implications_per_fault = 0.0;
  int found = 0;
  int untestable = 0;
  int aborted = 0;
};

template <typename RunFn, typename FaultList>
Effort measure(RunFn run, const FaultList& faults) {
  const auto t0 = Clock::now();
  const AtpgRun r = run();
  const auto t1 = Clock::now();
  Effort e;
  const double ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  const double n = static_cast<double>(faults.size());
  e.ms_per_fault = ms / n;
  e.implications_per_fault =
      static_cast<double>(r.total_implications) / n;
  e.found = r.found;
  e.untestable = r.untestable;
  e.aborted = r.aborted;
  return e;
}

void reproduce() {
  std::printf(
      "=== Sec. 5: OBD TPG complexity tracks stuck-at TPG ===\n\n");

  util::AsciiTable t("per-fault ATPG effort");
  t.set_header({"circuit", "gates", "faults sa/tr/obd", "sa ms", "tr ms",
                "obd ms", "sa impl", "tr impl", "obd impl", "aborted"});
  std::vector<logic::Circuit> circuits;
  circuits.push_back(logic::ripple_carry_adder(2));
  circuits.push_back(logic::ripple_carry_adder(4));
  circuits.push_back(logic::ripple_carry_adder(8));
  circuits.push_back(logic::parity_tree(8));
  circuits.push_back(logic::parity_tree(16));
  for (const auto& c : circuits) {
    const auto sf = enumerate_stuck_faults(c);
    const auto tf = enumerate_transition_faults(c);
    const auto of = enumerate_obd_faults(c);
    const Effort es = measure([&] { return run_stuck_at_atpg(c, sf); }, sf);
    const Effort et = measure([&] { return run_transition_atpg(c, tf); }, tf);
    const Effort eo = measure([&] { return run_obd_atpg(c, of); }, of);
    t.add_row({c.name(), std::to_string(c.num_gates()),
               std::to_string(sf.size()) + "/" + std::to_string(tf.size()) +
                   "/" + std::to_string(of.size()),
               util::format_g(es.ms_per_fault, 3),
               util::format_g(et.ms_per_fault, 3),
               util::format_g(eo.ms_per_fault, 3),
               util::format_g(es.implications_per_fault, 3),
               util::format_g(et.implications_per_fault, 3),
               util::format_g(eo.implications_per_fault, 3),
               std::to_string(es.aborted + et.aborted + eo.aborted)});
  }
  t.print();
  std::printf(
      "paper: OBD TPG adds only the second (justification) frame and the\n"
      "gate-input pinning to the stuck-at search - a constant factor, not\n"
      "a complexity-class change. The per-fault effort columns grow at the\n"
      "same rate across the three models as circuits scale.\n\n");
}

void BM_ObdAtpgRca4(benchmark::State& state) {
  const logic::Circuit c = logic::ripple_carry_adder(4);
  const auto faults = enumerate_obd_faults(c);
  for (auto _ : state) {
    const AtpgRun r = run_obd_atpg(c, faults);
    benchmark::DoNotOptimize(r.found);
  }
}
BENCHMARK(BM_ObdAtpgRca4)->Unit(benchmark::kMillisecond);

void BM_StuckAtpgRca4(benchmark::State& state) {
  const logic::Circuit c = logic::ripple_carry_adder(4);
  const auto faults = enumerate_stuck_faults(c);
  for (auto _ : state) {
    const AtpgRun r = run_stuck_at_atpg(c, faults);
    benchmark::DoNotOptimize(r.found);
  }
}
BENCHMARK(BM_StuckAtpgRca4)->Unit(benchmark::kMillisecond);

void BM_BitParallelFaultSim(benchmark::State& state) {
  const logic::Circuit c = logic::ripple_carry_adder(8);
  std::vector<std::uint64_t> pi(c.inputs().size(), 0xAAAA5555CCCC3333ull);
  for (auto _ : state) {
    const auto words = c.eval_words(pi);
    benchmark::DoNotOptimize(words.back());
  }
}
BENCHMARK(BM_BitParallelFaultSim);

void BM_ObdFaultSimLegacy(benchmark::State& state) {
  const logic::Circuit c = logic::ripple_carry_adder(8);
  const auto faults = enumerate_obd_faults(c);
  const auto tests =
      random_pairs(static_cast<int>(c.inputs().size()), 128, 0xca11ab1e);
  for (auto _ : state) {
    int detected = 0;
    for (const auto& t : tests)
      for (bool d : legacy::simulate_obd(c, t, faults)) detected += d;
    benchmark::DoNotOptimize(detected);
  }
}
BENCHMARK(BM_ObdFaultSimLegacy)->Unit(benchmark::kMillisecond);

void BM_ObdFaultSimBlocks(benchmark::State& state) {
  const logic::Circuit c = logic::ripple_carry_adder(8);
  const auto faults = enumerate_obd_faults(c);
  const auto tests =
      random_pairs(static_cast<int>(c.inputs().size()), 128, 0xca11ab1e);
  FaultSimEngine engine(c);
  for (auto _ : state) {
    const auto campaign = engine.campaign_obd(tests, faults, false);
    benchmark::DoNotOptimize(campaign.detected);
  }
}
BENCHMARK(BM_ObdFaultSimBlocks)->Unit(benchmark::kMillisecond);

void BM_ObdFaultSimBlocksDropping(benchmark::State& state) {
  const logic::Circuit c = logic::ripple_carry_adder(8);
  const auto faults = enumerate_obd_faults(c);
  const auto tests =
      random_pairs(static_cast<int>(c.inputs().size()), 128, 0xca11ab1e);
  FaultSimEngine engine(c);
  for (auto _ : state) {
    const auto campaign = engine.campaign_obd(tests, faults, true);
    benchmark::DoNotOptimize(campaign.detected);
  }
}
BENCHMARK(BM_ObdFaultSimBlocksDropping)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return obd::benchsup::run_bench_main(argc, argv, [] {
    reproduce();
    reproduce_faultsim_scale();
  });
}

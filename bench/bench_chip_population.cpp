// Extension bench: chip-population wear-out study.
//
// Scales the paper's single-defect window analysis to a whole chip and a
// whole fleet: N vulnerable sites per chip with Weibull time-to-SBD (the
// TDDB statistics behind the paper's Sec. 2 citations), per-site windows
// from the analog characterization, a concurrent test every P hours, a
// 10-year mission. Reported: fraction of chips that suffer an *undetected*
// hard breakdown — the catastrophic outcome of the paper's Fig. 2.
#include "bench_common.hpp"
#include "core/core.hpp"

namespace {

using namespace obd;

void reproduce() {
  std::printf("=== Chip-population escape study (Weibull onsets) ===\n\n");

  // Characterized site windows (fast reuse: two representative sites, see
  // bench_lifetime for their derivation; values match the 100 ps slack).
  const cells::Technology tech = cells::Technology::default_350nm();
  core::GateCharacterizer chr(cells::nand_topology(2), tech);
  const cells::TwoVector fall{0b01, 0b11};
  const double d0 =
      chr.measure(std::nullopt, core::BreakdownStage::kFaultFree, fall)
          .delay.value_or(0.0);
  const core::ProgressionModel nm = core::ProgressionModel::default_for(false);
  const core::ObdParams sbd =
      core::nmos_stage_params(core::BreakdownStage::kMbd1);
  const core::ObdParams hbd =
      core::nmos_stage_params(core::BreakdownStage::kHbd);
  std::vector<core::DelayVsIsat> curve;
  for (int i = 0; i < 5; ++i) {
    const double t = nm.t_sbd_to_hbd() * i / 4.0;
    const core::ObdParams p = nm.params_at(t, sbd, hbd);
    const auto m = chr.measure_params(cells::TransistorRef{false, 0}, p, fall);
    core::DelayVsIsat pt;
    pt.isat = p.isat;
    if (m.delay) pt.extra_delay = *m.delay - d0;
    curve.push_back(pt);
  }
  const std::vector<core::SiteWindow> sites{
      core::site_window_from_curve(curve, 100e-12, nm)};

  // Weibull: characteristic life 100 years, wear-out shape 2. With 50
  // vulnerable sites this yields ~0.5 defect onsets per chip over the
  // mission — a fleet where most chips stay clean and the test policy
  // decides the fate of the unlucky ones.
  core::Weibull onset;
  onset.shape = 2.0;
  onset.scale = 100.0 * 365.25 * 86400.0;

  util::AsciiTable t("10-year mission, 50 vulnerable sites/chip, 2000 chips");
  t.set_header({"test period", "mean defects/chip", "chips w/ defects",
                "all caught", "chips escaped", "escape rate"});
  for (double hours : {6.0, 24.0, 48.0, 96.0}) {
    core::ChipLifetimeOptions opt;
    opt.sites_per_chip = 50;
    opt.test_period = hours * 3600.0;
    const core::ChipLifetimeStats st =
        core::simulate_chip_population(sites, onset, opt);
    t.add_row({util::format_g(hours, 3) + " h",
               util::format_g(st.mean_defects, 3),
               std::to_string(st.chips_with_defects),
               std::to_string(st.chips_all_caught),
               std::to_string(st.chips_escaped),
               util::format_g(100.0 * st.escape_rate(), 3) + "%"});
  }
  t.print();
  std::printf(
      "with the ~27 h SBD->HBD progression, daily concurrent tests keep the\n"
      "fleet clean while weekly ones leak a measurable escape rate - the\n"
      "quantitative version of the paper's safety-critical motivation.\n\n");
}

void BM_ChipPopulation(benchmark::State& state) {
  core::Weibull onset{2.0, 9.5e8};
  std::vector<core::SiteWindow> sites;
  core::SiteWindow s;
  s.t_observable = 3600.0;
  s.t_hbd = 97200.0;
  sites.push_back(s);
  for (auto _ : state) {
    core::ChipLifetimeOptions opt;
    opt.chips = 500;
    const auto st = core::simulate_chip_population(sites, onset, opt);
    benchmark::DoNotOptimize(st.chips_escaped);
  }
}
BENCHMARK(BM_ChipPopulation)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return obd::benchsup::run_bench_main(argc, argv, &reproduce);
}

// Extension bench: OBD fault collapsing and diagnostic resolution.
//
// Two consequences of the paper's excitation analysis, quantified:
//  - collapsing: series-stack defects (Table 1's NA == NB observation)
//    share excitation sets and collapse to one representative, shrinking
//    the ATPG fault list at zero coverage cost;
//  - diagnosis: input-specific excitation separates same-gate PMOS defects
//    into disjoint syndromes, giving *sub-gate* diagnostic resolution that
//    the classical transition model cannot deliver (all its per-gate
//    defects share two syndromes at best). Relevant for the paper's
//    test/diagnose/repair loop.
#include "bench_common.hpp"
#include "atpg/atpg.hpp"
#include "logic/logic.hpp"

namespace {

using namespace obd;
using namespace obd::atpg;

void reproduce() {
  std::printf("=== OBD fault collapsing & diagnosis ===\n\n");

  util::AsciiTable t("collapsing across the circuit zoo");
  t.set_header({"circuit", "OBD faults", "classes", "reduction",
                "coverage preserved"});
  for (const logic::Circuit& c :
       {logic::full_adder_sum_circuit(), logic::c17(),
        logic::ripple_carry_adder(4), logic::parity_tree(8)}) {
    const auto faults = enumerate_obd_faults(c);
    const CollapsedFaults cf = collapse_obd_faults(c, faults);
    const AtpgRun full = run_obd_atpg(c, faults);
    const AtpgRun reps = run_obd_atpg(c, cf.representatives);
    const double cov_full = static_cast<double>(full.found) /
                            static_cast<double>(faults.size());
    const double cov_reps = obd_coverage(c, reps.tests, faults);
    t.add_row({c.name(), std::to_string(faults.size()),
               std::to_string(cf.representatives.size()),
               util::format_g(100.0 * cf.reduction(), 3) + "%",
               std::abs(cov_full - cov_reps) < 1e-12 ? "yes" : "NO"});
  }
  t.print();

  // Physical localization power: average number of candidate *transistors*
  // a diagnosis leaves. The OBD dictionary's candidates are transistors
  // directly; a transition syndrome identifies at best a net + direction,
  // which still leaves every same-polarity transistor of the driving gate.
  util::AsciiTable d("mean candidate transistors after diagnosis");
  d.set_header({"circuit", "OBD dictionary", "transition dictionary"});
  for (const logic::Circuit& c :
       {logic::c17(), logic::full_adder_sum_circuit(), logic::mux_tree(2)}) {
    const auto pairs = all_ordered_pairs(static_cast<int>(c.inputs().size()));
    const auto of = enumerate_obd_faults(c);
    const ObdDictionary od(c, pairs, of);

    // Transition dictionary over the same pairs.
    const auto tf = enumerate_transition_faults(c);
    std::map<std::vector<bool>, int> distinct;
    std::vector<std::vector<bool>> syndromes(tf.size(),
                                             std::vector<bool>(pairs.size()));
    for (std::size_t p = 0; p < pairs.size(); ++p) {
      const auto det = simulate_transition(c, pairs[p], tf);
      for (std::size_t f = 0; f < tf.size(); ++f) syndromes[f][p] = det[f];
    }
    // Candidate transistors behind one transition fault = same-polarity
    // transistors of the gate driving the net (slow-to-rise -> PMOS).
    auto transistors_behind = [&c](const TransitionFault& f) -> double {
      const int drv = c.driver_of(f.net);
      if (drv < 0) return 1.0;
      const auto topo = logic::gate_topology(c.gate(drv).type);
      if (!topo.has_value()) return 1.0;
      double n = 0;
      for (const auto& t : topo->transistors())
        if (t.pmos == f.slow_to_rise) ++n;
      return n;
    };
    for (const auto& s : syndromes) {
      bool any = false;
      for (bool b : s) any = any || b;
      if (any) ++distinct[s];
    }
    int detectable = 0;
    double amb = 0;
    for (std::size_t f = 0; f < tf.size(); ++f) {
      const auto& s = syndromes[f];
      bool any = false;
      for (bool b : s) any = any || b;
      if (!any) continue;
      ++detectable;
      amb += distinct[s] * transistors_behind(tf[f]);
    }
    const double tr_amb = detectable ? amb / detectable : 0.0;

    d.add_row({c.name(), util::format_g(od.mean_ambiguity(), 3),
               util::format_g(tr_amb, 3)});
  }
  d.print();
  std::printf(
      "the OBD dictionary distinguishes per-transistor defects (PMOS sites\n"
      "inside one gate have disjoint syndromes); the transition dictionary\n"
      "tops out at per-net resolution. For repair-by-replacement this is\n"
      "the difference between swapping a gate and swapping blind.\n\n");
}

void BM_BuildDictionary(benchmark::State& state) {
  const logic::Circuit c = logic::full_adder_sum_circuit();
  const auto faults = enumerate_obd_faults(c);
  const auto pairs = all_ordered_pairs(3);
  for (auto _ : state) {
    const ObdDictionary dict(c, pairs, faults);
    benchmark::DoNotOptimize(dict.resolution());
  }
}
BENCHMARK(BM_BuildDictionary)->Unit(benchmark::kMillisecond);

void BM_Collapse(benchmark::State& state) {
  const logic::Circuit c = logic::ripple_carry_adder(8);
  const auto faults = enumerate_obd_faults(c);
  for (auto _ : state) {
    const CollapsedFaults cf = collapse_obd_faults(c, faults);
    benchmark::DoNotOptimize(cf.representatives.size());
  }
}
BENCHMARK(BM_Collapse);

}  // namespace

int main(int argc, char** argv) {
  return obd::benchsup::run_bench_main(argc, argv, &reproduce);
}

// Shared scaffolding for the reproduction benches.
//
// Every bench binary does two things:
//  1. regenerates its paper table/figure as ASCII (and CSV where the figure
//     is a waveform plot) — this always runs, so `./bench_x` with no
//     arguments reproduces the experiment;
//  2. registers google-benchmark timings for the underlying machinery,
//     run after the reproduction output.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <optional>
#include <string>

#include "util/table.hpp"

namespace obd::benchsup {

/// Formats an optional delay the way the paper's Table 1 does: a time, or
/// "sa-0"/"sa-1" when the output no longer transitions.
inline std::string delay_cell(const std::optional<double>& delay, bool stuck,
                              bool stuck_high) {
  if (delay) return util::format_time_eng(*delay);
  if (stuck) return stuck_high ? "sa-1" : "sa-0";
  return "-";
}

/// Runs the reproduction, then google-benchmark. Call from main().
inline int run_bench_main(int argc, char** argv, void (*reproduce)()) {
  reproduce();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace obd::benchsup

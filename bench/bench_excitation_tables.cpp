// Secs. 4.1 and 5 reproduction: necessary/sufficient OBD test conditions per
// cell, the NOR dual, and the OBD-vs-EM comparison on complex gates.
//
// Paper claims checked here:
//  - NAND2: {one of (10,11),(00,11),(01,11)} + {(11,10)} + {(11,01)} is
//    necessary and sufficient (Sec. 4.1);
//  - NOR2: {one of (10,00),(01,00),(11,00)} + {(00,01)} + {(00,10)}
//    (Sec. 5);
//  - EM-targeting test inputs do not always cover OBD defects, "especially
//    for complex gates" (Sec. 5) — we show the split on AOI21/AOI22/OAI21.
#include "bench_common.hpp"
#include "core/core.hpp"

namespace {

using namespace obd;
using core::TwoVector;

std::string transitions_str(const std::vector<TwoVector>& trs, int n) {
  std::string out;
  for (const auto& t : trs) out += cells::format_transition(t, n) + " ";
  if (out.empty()) out = "(none)";
  return out;
}

void per_cell_table(const cells::CellTopology& cell) {
  util::AsciiTable t("cell " + cell.type_name);
  t.set_header({"transistor", "OBD excitations", "EM excitations"});
  for (const auto& tr : cell.transistors()) {
    t.add_row({std::string(tr.pmos ? "P" : "N") + std::to_string(tr.input),
               transitions_str(core::obd_excitations(cell, tr),
                               cell.num_inputs),
               transitions_str(core::em_excitations(cell, tr),
                               cell.num_inputs)});
  }
  t.print();
  const auto obd_set = core::minimal_obd_test_set(cell);
  const auto em_set = core::minimal_em_test_set(cell);
  std::printf("  minimal OBD set (%zu): %s\n", obd_set.size(),
              transitions_str(obd_set, cell.num_inputs).c_str());
  std::printf("  minimal EM set  (%zu): %s\n", em_set.size(),
              transitions_str(em_set, cell.num_inputs).c_str());
  // Does the minimal EM set cover the OBD faults?
  int missed = 0;
  for (const auto& tr : cell.transistors()) {
    if (core::obd_excitations(cell, tr).empty()) continue;
    bool covered = false;
    for (const auto& tv : em_set)
      if (core::excites_obd(cell, tr, tv)) covered = true;
    if (!covered) ++missed;
  }
  std::printf("  OBD faults missed by the minimal EM set: %d\n\n", missed);
}

void reproduce() {
  std::printf(
      "=== Secs. 4.1 / 5: excitation conditions derived from cell topology "
      "===\n\n");
  per_cell_table(cells::inv_topology());
  per_cell_table(cells::nand_topology(2));
  per_cell_table(cells::nor_topology(2));
  per_cell_table(cells::nand_topology(3));
  per_cell_table(cells::aoi21_topology());
  per_cell_table(cells::aoi22_topology());
  per_cell_table(cells::oai21_topology());
  std::printf(
      "paper checkpoints: NAND2 needs exactly 3 transitions, PMOS ones\n"
      "input-specific; NOR2 is the dual; and on the complex (AOI/OAI)\n"
      "gates the minimal EM set misses OBD faults - \"there is a need to\n"
      "use the circuit models for OBD defects in order to generate test\n"
      "input conditions\" (Sec. 5).\n\n");
}

void BM_MinimalSetNand4(benchmark::State& state) {
  const auto cell = cells::nand_topology(4);
  for (auto _ : state) {
    const auto set = core::minimal_obd_test_set(cell);
    benchmark::DoNotOptimize(set.size());
  }
}
BENCHMARK(BM_MinimalSetNand4);

void BM_MinimalSetAoi22(benchmark::State& state) {
  const auto cell = cells::aoi22_topology();
  for (auto _ : state) {
    const auto set = core::minimal_obd_test_set(cell);
    benchmark::DoNotOptimize(set.size());
  }
}
BENCHMARK(BM_MinimalSetAoi22);

}  // namespace

int main(int argc, char** argv) {
  return obd::benchsup::run_bench_main(argc, argv, &reproduce);
}

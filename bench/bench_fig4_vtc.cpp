// Fig. 4 reproduction: inverter input/output transfer characteristics with
// progressing NMOS OBD. The paper's plot shows VOL lifting off the 0 V rail
// as the breakdown progresses while the rest of the curve keeps its shape.
//
// Output: a sampled VTC table (one column per stage), VOL/VOH summary, and
// fig4_vtc.csv with the full curves.
#include "bench_common.hpp"
#include "core/core.hpp"
#include "util/csv.hpp"

namespace {

using namespace obd;

void reproduce() {
  const cells::Technology tech = cells::Technology::default_350nm();
  std::printf("=== Fig. 4: inverter VTC under NMOS OBD ===\n\n");

  std::vector<core::BreakdownStage> stages{
      core::BreakdownStage::kFaultFree, core::BreakdownStage::kMbd1,
      core::BreakdownStage::kMbd2, core::BreakdownStage::kHbd};
  std::vector<util::Waveform> curves;
  for (core::BreakdownStage s : stages)
    curves.push_back(core::inverter_vtc_with_obd(
        tech, /*pmos_defect=*/false, core::nmos_stage_params(s)));

  util::AsciiTable t("Vout(Vin) [V] per breakdown stage");
  t.set_header({"Vin", "FaultFree", "MBD1", "MBD2", "HBD"});
  for (double vin = 0.0; vin <= tech.vdd + 1e-9; vin += 0.3) {
    std::vector<std::string> row{util::format_g(vin, 3)};
    for (const auto& c : curves) row.push_back(util::format_g(c.at(vin), 3));
    t.add_row(row);
  }
  t.print();

  util::AsciiTable s("Static levels");
  s.set_header({"stage", "VOH (Vin=0)", "VOL (Vin=VDD)"});
  for (std::size_t i = 0; i < stages.size(); ++i)
    s.add_row({core::to_string(stages[i]),
               util::format_g(curves[i].value(0), 3),
               util::format_g(curves[i].final_value(), 3)});
  s.print();
  std::printf(
      "paper: VOL shifts upward monotonically with OBD progression while\n"
      "VOH stays at the rail (NMOS defect); Fig. 4 of the paper.\n");

  std::vector<const util::Waveform*> ptrs;
  for (auto& c : curves) ptrs.push_back(&c);
  if (util::write_traces_csv("fig4_vtc.csv", ptrs, 200))
    std::printf("wrote fig4_vtc.csv\n\n");
}

void BM_VtcSweep(benchmark::State& state) {
  const cells::Technology tech = cells::Technology::default_350nm();
  for (auto _ : state) {
    const auto c = core::inverter_vtc_with_obd(
        tech, false, core::nmos_stage_params(core::BreakdownStage::kMbd2));
    benchmark::DoNotOptimize(c.size());
  }
}
BENCHMARK(BM_VtcSweep)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return obd::benchsup::run_bench_main(argc, argv, &reproduce);
}

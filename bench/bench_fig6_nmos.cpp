// Fig. 6 reproduction: progression of NMOS OBD for the NAND gate.
//
// The paper plots the NAND output for the falling transition as the NMOS
// defect (at input A) progresses: each stage pushes the falling edge later
// and lifts the settled LOW level, until hard breakdown pins the output
// high. It also observes the same delay no matter which input switches.
//
// Output: edge-arrival/level table per stage, the input-independence check,
// and fig6_waveforms.csv with the output traces.
#include "bench_common.hpp"
#include "core/core.hpp"
#include "util/csv.hpp"
#include "util/measure.hpp"

namespace {

using namespace obd;

void reproduce() {
  const cells::Technology tech = cells::Technology::default_350nm();
  core::GateCharacterizer chr(cells::nand_topology(2), tech);
  const cells::TransistorRef na{false, 0};
  const cells::TwoVector fall{0b01, 0b11};  // (10,11): B rises, A held at 1

  std::printf("=== Fig. 6: progression of NMOS OBD for NAND ===\n\n");

  std::vector<util::Waveform> outs;
  util::AsciiTable t("NAND output under (10,11), NMOS OBD at input A");
  t.set_header({"stage", "delay", "settled VOL [V]", "peak Idd [mA]"});
  for (core::BreakdownStage s : core::kAllStages) {
    const auto m = chr.measure(na, s, fall);
    t.add_row({core::to_string(s),
               benchsup::delay_cell(m.delay, m.stuck, m.stuck_high),
               util::format_g(m.settled_v, 3),
               util::format_g(m.peak_supply_current * 1e3, 3)});
    auto res = chr.trace(na, s, fall);
    if (const auto* w = res.trace("out")) {
      util::Waveform copy = *w;
      copy.set_name(std::string("out_") + core::to_string(s));
      outs.push_back(std::move(copy));
    }
  }
  t.print();
  std::printf(
      "paper: delay grows monotonically (96 -> 118 -> 156 -> 230ps) and HBD\n"
      "pins the output high (sa-1); the degraded VOL is visible at the late\n"
      "stages.\n\n");

  util::AsciiTable t2("Input-independence at MBD2 (same defect, NA)");
  t2.set_header({"transition", "delay"});
  for (const auto& tv :
       {cells::TwoVector{0b10, 0b11}, cells::TwoVector{0b01, 0b11},
        cells::TwoVector{0b00, 0b11}}) {
    const auto m = chr.measure(na, core::BreakdownStage::kMbd2, tv);
    t2.add_row({cells::format_transition(tv, 2),
                benchsup::delay_cell(m.delay, m.stuck, m.stuck_high)});
  }
  t2.print();
  std::printf(
      "paper: \"breakdown in the NMOS transistor causes a transition fault\n"
      "at the output of the gate that is independent of which input\n"
      "switches\" (Sec. 3.3).\n");

  std::vector<const util::Waveform*> ptrs;
  for (auto& w : outs) ptrs.push_back(&w);
  if (util::write_traces_csv("fig6_waveforms.csv", ptrs, 400))
    std::printf("wrote fig6_waveforms.csv\n\n");
}

void BM_StageTrace(benchmark::State& state) {
  const cells::Technology tech = cells::Technology::default_350nm();
  core::GateCharacterizer chr(cells::nand_topology(2), tech);
  for (auto _ : state) {
    auto res = chr.trace(cells::TransistorRef{false, 0},
                         core::BreakdownStage::kMbd3, {0b01, 0b11});
    benchmark::DoNotOptimize(res.accepted_steps);
  }
}
BENCHMARK(BM_StageTrace)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return obd::benchsup::run_bench_main(argc, argv, &reproduce);
}

// Fig. 7 reproduction: input-specific detection of transition faults caused
// by PMOS OBD defects.
//
// The paper's experiment: with a PMOS defect at input A, the rising output
// is late only for the sequence that switches A alone (11,01); the sequence
// switching B alone (11,10) looks fault-free — and vice versa. This is what
// distinguishes OBD from the classical transition-fault model.
//
// Output: the 2x2 delay matrix (defect x sequence), the (11,00) negative
// control where both PMOS share the current, and fig7_waveforms.csv.
#include "bench_common.hpp"
#include "core/core.hpp"
#include "util/csv.hpp"

namespace {

using namespace obd;

void reproduce() {
  const cells::Technology tech = cells::Technology::default_350nm();
  core::GateCharacterizer chr(cells::nand_topology(2), tech);
  const core::BreakdownStage stage = core::BreakdownStage::kMbd2;
  const cells::TwoVector rise_a{0b11, 0b10};  // (11,01): A falls
  const cells::TwoVector rise_b{0b11, 0b01};  // (11,10): B falls
  const cells::TwoVector rise_both{0b11, 0b00};  // both fall: no excitation

  std::printf(
      "=== Fig. 7: input-specific detection of PMOS OBD (stage MBD2) "
      "===\n\n");

  const auto ff_a = chr.measure(std::nullopt, stage, rise_a);
  const auto ff_b = chr.measure(std::nullopt, stage, rise_b);

  util::AsciiTable t("rise delay by (defect location x input sequence)");
  t.set_header({"defect", "(11,01) A switches", "(11,10) B switches",
                "(11,00) both switch"});
  auto cell = [&](const core::DelayMeasurement& m) {
    return benchsup::delay_cell(m.delay, m.stuck, m.stuck_high);
  };
  t.add_row({"none", cell(ff_a), cell(ff_b),
             cell(chr.measure(std::nullopt, stage, rise_both))});
  t.add_row({"PMOS A",
             cell(chr.measure(cells::TransistorRef{true, 0}, stage, rise_a)),
             cell(chr.measure(cells::TransistorRef{true, 0}, stage, rise_b)),
             cell(chr.measure(cells::TransistorRef{true, 0}, stage, rise_both))});
  t.add_row({"PMOS B",
             cell(chr.measure(cells::TransistorRef{true, 1}, stage, rise_a)),
             cell(chr.measure(cells::TransistorRef{true, 1}, stage, rise_b)),
             cell(chr.measure(cells::TransistorRef{true, 1}, stage, rise_both))});
  t.print();
  std::printf(
      "paper: the diagonal (defective transistor's own sequence) is slow;\n"
      "the off-diagonal stays at the fault-free 110ps. (11,00) exercises\n"
      "both PMOS in parallel, so neither defect is excited - the reason\n"
      "traditional transition tests can miss these defects (Sec. 4.1).\n");

  // Waveforms for the figure: fault-free vs defect-in-A vs defect-in-B,
  // both sequences.
  std::vector<util::Waveform> traces;
  auto grab = [&](const std::optional<cells::TransistorRef>& f,
                  const cells::TwoVector& tv, const std::string& name) {
    auto res = chr.trace(f, stage, tv);
    if (const auto* w = res.trace("out")) {
      util::Waveform copy = *w;
      copy.set_name(name);
      traces.push_back(std::move(copy));
    }
  };
  grab(std::nullopt, rise_a, "seqA_faultfree");
  grab(cells::TransistorRef{true, 0}, rise_a, "seqA_defectA");
  grab(cells::TransistorRef{true, 1}, rise_a, "seqA_defectB");
  grab(std::nullopt, rise_b, "seqB_faultfree");
  grab(cells::TransistorRef{true, 0}, rise_b, "seqB_defectA");
  grab(cells::TransistorRef{true, 1}, rise_b, "seqB_defectB");
  std::vector<const util::Waveform*> ptrs;
  for (auto& w : traces) ptrs.push_back(&w);
  if (util::write_traces_csv("fig7_waveforms.csv", ptrs, 400))
    std::printf("wrote fig7_waveforms.csv\n\n");
}

void BM_PmosTrace(benchmark::State& state) {
  const cells::Technology tech = cells::Technology::default_350nm();
  core::GateCharacterizer chr(cells::nand_topology(2), tech);
  for (auto _ : state) {
    auto res = chr.trace(cells::TransistorRef{true, 0},
                         core::BreakdownStage::kMbd2, {0b11, 0b10});
    benchmark::DoNotOptimize(res.accepted_steps);
  }
}
BENCHMARK(BM_PmosTrace)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return obd::benchsup::run_bench_main(argc, argv, &reproduce);
}

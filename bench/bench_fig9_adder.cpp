// Fig. 9 reproduction: propagation of OBD transition-fault effects through
// the full-adder sum circuit.
//
// The paper injects single OBD defects into each of the four transistors of
// a NAND with four upstream and four downstream logic stages (our "o12"),
// applies two-vector tests whose gate-local excitation was justified to the
// primary inputs A,B,C, and observes the delayed transition at the primary
// output S. We do the same end to end: the ATPG derives the PI sequences,
// the elaborator lowers the 25-gate circuit to transistors, the OBD network
// is injected, and the analog engine produces the S waveforms.
//
// Output: per-fault table (test found by ATPG, fault-free vs faulty S
// arrival) and fig9_waveforms.csv.
#include "bench_common.hpp"
#include "atpg/atpg.hpp"
#include "core/core.hpp"
#include "logic/logic.hpp"
#include "util/csv.hpp"
#include "util/measure.hpp"

namespace {

using namespace obd;

constexpr double kSwitchTime = 2e-9;
constexpr double kStopTime = 7e-9;

struct SArrival {
  std::optional<double> t_edge;
  util::Waveform wave;
};

SArrival run_case(const logic::Circuit& c, const cells::Technology& tech,
                  const std::optional<std::pair<int, cells::TransistorRef>>& fault,
                  core::BreakdownStage stage, std::uint64_t v1,
                  std::uint64_t v2, const std::string& trace_name) {
  logic::Elaboration el(c, tech);
  if (fault) {
    auto inj = core::inject_obd(
        el.netlist(), el.transistor_name(fault->first, fault->second));
    inj.set_stage(stage);
  }
  el.set_two_vector(v1, v2, kSwitchTime);
  spice::TransientOptions opt;
  opt.dt = 4e-12;
  const auto res = spice::transient(el.netlist(), kStopTime, opt, {"S"});
  SArrival out;
  if (res.status != spice::SolveStatus::kOk) return out;
  const auto* s = res.trace("S");
  if (s == nullptr) return out;
  out.wave = *s;
  out.wave.set_name(trace_name);
  // Direction of the expected S edge from the logic model.
  const bool s1 = (c.eval_outputs(v1) & 1u).any();
  const bool s2 = (c.eval_outputs(v2) & 1u).any();
  if (s1 != s2) {
    util::DelayOptions dopt;
    dopt.vdd = tech.vdd;
    const auto t = util::edge_time(
        *s, s2 ? util::Edge::kRising : util::Edge::kFalling, kSwitchTime,
        dopt);
    if (t) out.t_edge = *t - kSwitchTime;
  }
  return out;
}

void reproduce() {
  const cells::Technology tech = cells::Technology::default_350nm();
  const logic::Circuit c = logic::full_adder_sum_circuit();
  int mid = -1;
  for (std::size_t g = 0; g < c.num_gates(); ++g)
    if (c.gate(static_cast<int>(g)).name == logic::kFullAdderMidNand)
      mid = static_cast<int>(g);

  std::printf(
      "=== Fig. 9: OBD fault effects propagated through the full-adder sum "
      "===\n(injection target: NAND '%s', level 5 of 9)\n\n",
      logic::kFullAdderMidNand);

  std::vector<util::Waveform> traces;
  util::AsciiTable t("per-transistor injection at the mid NAND");
  t.set_header({"fault", "stage", "PI test (ABC: V1->V2)", "S arrival ff",
                "S arrival faulty", "added delay"});

  const core::BreakdownStage stage = core::BreakdownStage::kMbd2;
  for (const auto& tr :
       {cells::TransistorRef{false, 0}, cells::TransistorRef{false, 1},
        cells::TransistorRef{true, 0}, cells::TransistorRef{true, 1}}) {
    // Find a detecting two-vector test under which the fault-free S also
    // transitions, so the defect shows as a *late edge* at the primary
    // output (the form Fig. 9 plots). The ATPG result is used as a
    // fallback; the exhaustive scan prefers S-toggling tests.
    atpg::TwoFrameResult gen =
        atpg::generate_obd_test(c, logic::ObdFaultSite{mid, tr});
    if (gen.status == atpg::PodemStatus::kFound) {
      for (const auto& cand : atpg::all_ordered_pairs(3)) {
        const bool s_toggles =
            (c.eval_outputs(cand.v1) & 1u) != (c.eval_outputs(cand.v2) & 1u);
        if (!s_toggles) continue;
        if (atpg::simulate_obd(c, cand, {logic::ObdFaultSite{mid, tr}})[0]) {
          gen.test = cand;
          break;
        }
      }
    }
    if (gen.status != atpg::PodemStatus::kFound) {
      t.add_row({std::string(tr.pmos ? "P" : "N") + std::to_string(tr.input),
                 core::to_string(stage), "untestable", "-", "-", "-"});
      continue;
    }
    const std::string label =
        std::string(tr.pmos ? "P" : "N") + std::to_string(tr.input);
    const std::string test_str = cells::format_bits(
        static_cast<cells::InputBits>(gen.test.v1.u64()), 3) +
        "->" +
        cells::format_bits(static_cast<cells::InputBits>(gen.test.v2.u64()), 3);

    const SArrival ff = run_case(c, tech, std::nullopt, stage,
                                 gen.test.v1.u64(), gen.test.v2.u64(),
                                 "S_ff_" + label);
    const SArrival fy =
        run_case(c, tech, std::make_pair(mid, tr), stage, gen.test.v1.u64(),
                 gen.test.v2.u64(), "S_" + label);
    std::string added = "-";
    if (ff.t_edge && fy.t_edge)
      added = util::format_time_eng(*fy.t_edge - *ff.t_edge);
    else if (ff.t_edge && !fy.t_edge)
      added = "stuck";
    t.add_row({label, core::to_string(stage), test_str,
               ff.t_edge ? util::format_time_eng(*ff.t_edge) : "-",
               fy.t_edge ? util::format_time_eng(*fy.t_edge) : "-", added});
    if (!ff.wave.empty()) traces.push_back(ff.wave);
    if (!fy.wave.empty()) traces.push_back(fy.wave);
  }
  t.print();
  std::printf(
      "paper: \"the delays due to the OBD defects in the four transistors\n"
      "inside the NAND gate (injected one at a time) can be observed at the\n"
      "primary output\" - the degraded intermediate level is restored along\n"
      "the downstream stages but the *timing* error survives (Sec. 4.3).\n");

  std::vector<const util::Waveform*> ptrs;
  for (auto& w : traces) ptrs.push_back(&w);
  if (!ptrs.empty() && util::write_traces_csv("fig9_waveforms.csv", ptrs, 400))
    std::printf("wrote fig9_waveforms.csv\n\n");
}

void BM_FullAdderTransient(benchmark::State& state) {
  const cells::Technology tech = cells::Technology::default_350nm();
  const logic::Circuit c = logic::full_adder_sum_circuit();
  for (auto _ : state) {
    logic::Elaboration el(c, tech);
    el.set_two_vector(0b110, 0b111, kSwitchTime);
    spice::TransientOptions opt;
    opt.dt = 4e-12;
    const auto res = spice::transient(el.netlist(), kStopTime, opt, {"S"});
    benchmark::DoNotOptimize(res.accepted_steps);
  }
}
BENCHMARK(BM_FullAdderTransient)->Unit(benchmark::kMillisecond)->Iterations(3);

}  // namespace

int main(int argc, char** argv) {
  return obd::benchsup::run_bench_main(argc, argv, &reproduce);
}

// Extension bench: IDDQ vs delay-based OBD detection across the progression.
//
// Related work in the paper (Sec. 2): Segura et al. detect hard gate-oxide
// shorts by IDDQ testing. With the diode-resistor model we can compare the
// two observables stage by stage: quiescent current fires on a *static*
// vector as soon as the leakage path conducts, while delay testing needs a
// transition and enough added delay to beat the capture slack. IDDQ
// therefore opens the concurrent-testing window earlier — at the price of
// an analog measurement.
#include "bench_common.hpp"
#include "core/core.hpp"

namespace {

using namespace obd;

void reproduce() {
  const cells::Technology tech = cells::Technology::default_350nm();
  const auto nand2 = cells::nand_topology(2);
  core::GateCharacterizer chr(nand2, tech);
  const cells::TransistorRef na{false, 0};
  const cells::TwoVector fall{0b01, 0b11};

  std::printf("=== IDDQ vs delay observables across the OBD progression ===\n\n");

  const auto iddq_ref = core::measure_iddq(nand2, tech, std::nullopt,
                                           core::ObdParams{}, 0b11);
  const auto delay_ref =
      chr.measure(std::nullopt, core::BreakdownStage::kFaultFree, fall);
  const double d0 = delay_ref.delay.value_or(0.0);

  util::AsciiTable t("NMOS defect at input A, vector 11 / transition (10,11)");
  t.set_header({"stage", "IDDQ [mA]", "delta IDDQ [mA]", "delay",
                "added delay"});
  for (core::BreakdownStage s : core::kAllStages) {
    const auto iq = core::measure_iddq(nand2, tech, na,
                                       core::nmos_stage_params(s), 0b11);
    const auto dm = chr.measure(na, s, fall);
    t.add_row({core::to_string(s), util::format_g(iq.iddq * 1e3, 3),
               util::format_g((iq.iddq - iddq_ref.iddq) * 1e3, 3),
               benchsup::delay_cell(dm.delay, dm.stuck, dm.stuck_high),
               dm.delay ? util::format_time_eng(*dm.delay - d0) : "inf"});
  }
  t.print();

  util::AsciiTable v("minimal IDDQ vector sets (static, per cell)");
  v.set_header({"cell", "vectors (input 0 first)"});
  for (const auto& cell :
       {cells::inv_topology(), cells::nand_topology(2),
        cells::nor_topology(2), cells::aoi21_topology()}) {
    std::string vs;
    for (cells::InputBits b : core::minimal_iddq_vectors(cell))
      vs += cells::format_bits(b, cell.num_inputs) + " ";
    v.add_row({cell.type_name, vs});
  }
  v.print();
  std::printf(
      "take-away: the leakage signature is milliamp-scale already at MBD1\n"
      "(vs a ~25%% delay shift), and needs only two static vectors per cell\n"
      "- but requires a quiescent-current monitor, while the paper's delay\n"
      "approach reuses the functional clock path. The two observables are\n"
      "complementary for a concurrent test scheme.\n\n");
}

void BM_IddqMeasurement(benchmark::State& state) {
  const cells::Technology tech = cells::Technology::default_350nm();
  const auto nand2 = cells::nand_topology(2);
  for (auto _ : state) {
    const auto m = core::measure_iddq(
        nand2, tech, cells::TransistorRef{false, 0},
        core::nmos_stage_params(core::BreakdownStage::kMbd2), 0b11);
    benchmark::DoNotOptimize(m.iddq);
  }
}
BENCHMARK(BM_IddqMeasurement)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return obd::benchsup::run_bench_main(argc, argv, &reproduce);
}

// Extension bench: concurrent-testing lifetime Monte Carlo.
//
// The quantitative version of the paper's concurrent test/diagnose/repair
// pitch: characterize real NMOS and PMOS site windows with the analog
// engine, then simulate years of operation with random defect onsets and a
// periodic concurrent test, and report the catch rate (defects detected
// before hard breakdown) per test period and detector slack.
#include "bench_common.hpp"
#include "core/core.hpp"

namespace {

using namespace obd;

std::vector<core::DelayVsIsat> characterize_site(
    core::GateCharacterizer& chr, const cells::TransistorRef& t,
    const cells::TwoVector& tv, const core::ProgressionModel& model,
    const core::ObdParams& sbd, const core::ObdParams& hbd, double d0) {
  std::vector<core::DelayVsIsat> curve;
  for (int i = 0; i < 7; ++i) {
    const double time = model.t_sbd_to_hbd() * i / 6.0;
    const core::ObdParams p = model.params_at(time, sbd, hbd);
    const auto m = chr.measure_params(t, p, tv);
    core::DelayVsIsat pt;
    pt.isat = p.isat;
    if (m.delay) pt.extra_delay = *m.delay - d0;
    curve.push_back(pt);
  }
  return curve;
}

void reproduce() {
  const cells::Technology tech = cells::Technology::default_350nm();
  core::GateCharacterizer chr(cells::nand_topology(2), tech);

  std::printf("=== Lifetime Monte Carlo: concurrent-test catch rate ===\n\n");
  std::printf("characterizing NMOS and PMOS site windows (analog engine)...\n");

  const cells::TwoVector fall{0b01, 0b11};
  const cells::TwoVector rise{0b11, 0b01};
  const double d0_fall =
      chr.measure(std::nullopt, core::BreakdownStage::kFaultFree, fall)
          .delay.value_or(0.0);
  const double d0_rise =
      chr.measure(std::nullopt, core::BreakdownStage::kFaultFree, rise)
          .delay.value_or(0.0);

  const core::ProgressionModel nm = core::ProgressionModel::default_for(false);
  const core::ProgressionModel pm = core::ProgressionModel::default_for(true);
  const auto n_curve = characterize_site(
      chr, {false, 0}, fall, nm,
      core::nmos_stage_params(core::BreakdownStage::kMbd1),
      core::nmos_stage_params(core::BreakdownStage::kHbd), d0_fall);
  const auto p_curve = characterize_site(
      chr, {true, 1}, rise, pm,
      core::pmos_stage_params(core::BreakdownStage::kMbd1),
      core::pmos_stage_params(core::BreakdownStage::kHbd), d0_rise);

  for (double slack : {100e-12, 500e-12}) {
    std::vector<core::SiteWindow> sites{
        core::site_window_from_curve(n_curve, slack, nm),
        core::site_window_from_curve(p_curve, slack, pm)};
    util::AsciiTable t("catch rate vs test period (detector slack " +
                       util::format_time_eng(slack) + ")");
    t.set_header({"test period", "catch rate", "mean latency",
                  "escapes to HBD / 10k"});
    for (double hours : {1.0, 4.0, 12.0, 24.0, 48.0}) {
      core::LifetimeOptions opt;
      opt.test_period = hours * 3600.0;
      opt.trials = 10000;
      const core::LifetimeStats st = core::simulate_lifetime(sites, opt);
      t.add_row({util::format_g(hours, 3) + " h",
                 util::format_g(100.0 * st.catch_rate(), 4) + "%",
                 util::format_time_eng(st.mean_latency),
                 std::to_string(st.escaped_to_hbd)});
    }
    t.print();
  }
  std::printf(
      "the knee sits where the test period approaches the narrower of the\n"
      "two site windows; beyond it, escapes to hard breakdown grow linearly\n"
      "- exactly the danger the paper's Fig. 2 warns about (an undetected\n"
      "HBD shorting the driver). Tightening the detector slack widens every\n"
      "window and moves the knee right.\n\n");
}

void BM_LifetimeMonteCarlo(benchmark::State& state) {
  std::vector<core::SiteWindow> sites;
  core::SiteWindow s;
  s.t_observable = 3600.0;
  s.t_hbd = 27.0 * 3600.0;
  sites.push_back(s);
  for (auto _ : state) {
    core::LifetimeOptions opt;
    opt.test_period = 7200.0;
    opt.trials = 100000;
    const auto st = core::simulate_lifetime(sites, opt);
    benchmark::DoNotOptimize(st.caught);
  }
}
BENCHMARK(BM_LifetimeMonteCarlo)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return obd::benchsup::run_bench_main(argc, argv, &reproduce);
}

// Extension bench: n-detect OBD test sets vs marginal (early-stage) defects.
//
// Ties two of the paper's threads together: the *window of opportunity*
// (Sec. 4.2 — early defects add little delay) and the related-work pointer
// to n-detection (Pomeranz & Reddy). A 1-detect set may observe a fault
// through a short path whose slack swallows a small added delay; n-detect
// sets hit more paths and catch marginal defects earlier in the
// progression, effectively widening the usable window.
#include "bench_common.hpp"
#include "atpg/atpg.hpp"
#include "atpg/ndetect.hpp"
#include "logic/logic.hpp"

namespace {

using namespace obd;
using namespace obd::atpg;

void reproduce() {
  const logic::Circuit c = logic::full_adder_sum_circuit();
  const auto faults = enumerate_obd_faults(c);

  std::printf("=== n-detect OBD test sets (timing-aware payoff) ===\n\n");

  // Build sets for several n.
  std::vector<NDetectResult> sets;
  const int ns[] = {1, 2, 4, 8};
  for (int n : ns) {
    NDetectOptions opt;
    opt.n = n;
    opt.random_pool = 512;
    sets.push_back(build_ndetect_set(c, faults, opt));
  }

  const double t_crit = nominal_critical_time(c, sets.back().tests);
  const double capture = t_crit * 1.02;
  std::printf("nominal critical time %s; capture at %s\n\n",
              util::format_time_eng(t_crit).c_str(),
              util::format_time_eng(capture).c_str());

  util::AsciiTable t("timing-aware coverage vs added delay (full adder)");
  std::vector<std::string> header{"added delay"};
  for (std::size_t k = 0; k < sets.size(); ++k)
    header.push_back("n=" + std::to_string(ns[k]) + " (" +
                     std::to_string(sets[k].tests.size()) + " tests)");
  t.set_header(header);
  for (double extra : {50e-12, 100e-12, 200e-12, 400e-12, 800e-12, 5e-9}) {
    std::vector<std::string> row{util::format_time_eng(extra)};
    for (const auto& s : sets)
      row.push_back(util::format_g(
          100.0 * timing_aware_coverage(c, s.tests, faults, extra, capture),
          3) + "%");
    t.add_row(row);
  }
  t.print();
  std::printf(
      "small added delays (early breakdown stages) slip through short-path\n"
      "slack; raising n exercises more propagation paths per fault and\n"
      "catches the defect earlier in its progression - a larger concurrent-\n"
      "testing window for the same detector.\n"
      "(note: mid-range delays can exceed the gross-delay ceiling - the\n"
      "capture flop samples transient differences on reconvergent paths\n"
      "that statically cancel; at very large delays coverage settles back\n"
      "to the gross-delay fraction.)\n\n");
}

void BM_Build4DetectSet(benchmark::State& state) {
  const logic::Circuit c = logic::full_adder_sum_circuit();
  const auto faults = enumerate_obd_faults(c);
  for (auto _ : state) {
    NDetectOptions opt;
    opt.n = 4;
    const NDetectResult r = build_ndetect_set(c, faults, opt);
    benchmark::DoNotOptimize(r.tests.size());
  }
}
BENCHMARK(BM_Build4DetectSet)->Unit(benchmark::kMillisecond);

// The n-detect pool is now fault-simulated as one block-parallel detection
// matrix; these two benchmarks compare that against the old per-pattern
// scalar loop it replaced.
void BM_NdetectPoolLegacyScalar(benchmark::State& state) {
  const logic::Circuit c = logic::full_adder_sum_circuit();
  const auto faults = enumerate_obd_faults(c);
  const auto pool = random_pairs(static_cast<int>(c.inputs().size()), 512, 9);
  for (auto _ : state) {
    long detections = 0;
    for (const auto& t : pool)
      for (bool d : legacy::simulate_obd(c, t, faults)) detections += d;
    benchmark::DoNotOptimize(detections);
  }
}
BENCHMARK(BM_NdetectPoolLegacyScalar)->Unit(benchmark::kMillisecond);

void BM_NdetectPoolBlockMatrix(benchmark::State& state) {
  const logic::Circuit c = logic::full_adder_sum_circuit();
  const auto faults = enumerate_obd_faults(c);
  const auto pool = random_pairs(static_cast<int>(c.inputs().size()), 512, 9);
  for (auto _ : state) {
    const DetectionMatrix m = build_obd_matrix(c, pool, faults);
    benchmark::DoNotOptimize(m.covered_count);
  }
}
BENCHMARK(BM_NdetectPoolBlockMatrix)->Unit(benchmark::kMillisecond);

void BM_TimingAwareCoverage(benchmark::State& state) {
  const logic::Circuit c = logic::full_adder_sum_circuit();
  const auto faults = enumerate_obd_faults(c);
  NDetectOptions opt;
  opt.n = 2;
  const NDetectResult r = build_ndetect_set(c, faults, opt);
  const double t_crit = nominal_critical_time(c, r.tests);
  for (auto _ : state) {
    const double cov = timing_aware_coverage(c, r.tests, faults, 200e-12,
                                             t_crit * 1.02);
    benchmark::DoNotOptimize(cov);
  }
}
BENCHMARK(BM_TimingAwareCoverage)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return obd::benchsup::run_bench_main(argc, argv, &reproduce);
}

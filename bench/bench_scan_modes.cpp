// Extension bench (paper Sec. 5): scan-based application of OBD tests to
// sequential circuits.
//
// The paper notes that sequential OBD TPG "is more complicated ... due to
// the need to generate two distinct input combinations at consecutive clock
// cycles. Thus, we need design-for-testability methods". This bench
// quantifies that remark on LFSR-like state machines: enhanced scan (two
// controllable vectors) vs launch-on-capture (second vector = machine
// response) vs LOC with held PIs.
#include "bench_common.hpp"
#include "atpg/atpg.hpp"
#include "logic/logic.hpp"

namespace {

using namespace obd;
using namespace obd::atpg;

void reproduce() {
  std::printf(
      "=== Scan DFT modes for sequential OBD testing (Sec. 5 extension) "
      "===\n\n");

  util::AsciiTable t("testable OBD faults by scan style");
  t.set_header({"machine", "flops", "OBD sites", "enhanced", "LOC",
                "LOC held-PI"});
  for (int bits : {2, 3, 4}) {
    const logic::SequentialCircuit seq = logic::lfsr_like_machine(bits);
    const auto faults = enumerate_obd_faults(seq.core());
    const ScanCampaign enh =
        run_scan_obd_atpg(seq, faults, ScanMode::kEnhanced);
    const ScanCampaign loc =
        run_scan_obd_atpg(seq, faults, ScanMode::kLaunchOnCapture);
    const ScanCampaign held =
        run_scan_obd_atpg(seq, faults, ScanMode::kLaunchOnCaptureHeldPi);
    t.add_row({seq.core().name(), std::to_string(bits),
               std::to_string(faults.size()), std::to_string(enh.found),
               std::to_string(loc.found), std::to_string(held.found)});
  }
  t.print();
  std::printf(
      "each constraint (machine-generated second vector, held PIs) can only\n"
      "shrink the reachable excitation space; enhanced scan recovers the\n"
      "full combinational coverage at the cost of doubled scan hardware -\n"
      "the paper's DFT trade-off made concrete.\n\n");
}

void BM_LocAtpgLfsr4(benchmark::State& state) {
  const logic::SequentialCircuit seq = logic::lfsr_like_machine(4);
  const auto faults = enumerate_obd_faults(seq.core());
  for (auto _ : state) {
    const ScanCampaign c =
        run_scan_obd_atpg(seq, faults, ScanMode::kLaunchOnCapture);
    benchmark::DoNotOptimize(c.found);
  }
}
BENCHMARK(BM_LocAtpgLfsr4)->Unit(benchmark::kMillisecond);

void BM_UnrollLfsr4(benchmark::State& state) {
  const logic::SequentialCircuit seq = logic::lfsr_like_machine(4);
  for (auto _ : state) {
    const logic::Circuit u = seq.unroll_two_frames();
    benchmark::DoNotOptimize(u.num_gates());
  }
}
BENCHMARK(BM_UnrollLfsr4);

}  // namespace

int main(int argc, char** argv) {
  return obd::benchsup::run_bench_main(argc, argv, &reproduce);
}

// Sec. 4.3 statistics reproduction: OBD testability of the full-adder sum
// circuit.
//
// Paper numbers: 56 OBD locations in the 14 NAND gates; some untestable due
// to the intentional redundancy; 32 testable; 18 out of 72 input
// transitions necessary and sufficient to detect all testable faults.
//
// Our reconstruction of Fig. 8 preserves the published structure (14 NAND +
// 11 INV, depth 9, redundant constant branch) but not the exact wiring, so
// the testable/minimal counts differ in value while reproducing the shape:
// a majority of faults testable, a strict minority untestable, and a small
// transition set (tens of percent of the pair space) covering everything.
#include "bench_common.hpp"
#include "atpg/atpg.hpp"
#include "logic/logic.hpp"

namespace {

using namespace obd;
using namespace obd::atpg;

void reproduce() {
  const logic::Circuit c = logic::full_adder_sum_circuit();
  std::printf("=== Sec. 4.3: OBD testability of the full-adder sum ===\n\n");

  const auto nand_faults = enumerate_obd_faults(c, /*nand_only=*/true);
  const AtpgRun run = run_obd_atpg(c, nand_faults);

  const auto pairs = all_ordered_pairs(3);
  const DetectionMatrix m = build_obd_matrix(c, pairs, nand_faults);
  const auto greedy = greedy_cover(m);
  const auto exact = exact_cover(m);

  util::AsciiTable t("fault statistics (NAND gates only, as in the paper)");
  t.set_header({"quantity", "paper", "this repo"});
  t.add_row({"OBD locations in NAND gates", "56",
             std::to_string(nand_faults.size())});
  t.add_row({"testable", "32", std::to_string(run.found)});
  t.add_row({"untestable (redundancy)", "24", std::to_string(run.untestable)});
  t.add_row({"input-transition space", "72", std::to_string(pairs.size())});
  t.add_row({"minimal covering test set", "18", std::to_string(exact.size())});
  t.add_row({"greedy covering test set", "-", std::to_string(greedy.size())});
  t.print();

  std::printf("\nminimal covering transitions (ABC order):\n  ");
  for (std::size_t i = 0; i < exact.size(); ++i) {
    const auto& tv = pairs[exact[i]];
    std::printf("(%s,%s) ",
                cells::format_bits(static_cast<cells::InputBits>(tv.v1.u64()),
                                   3)
                    .c_str(),
                cells::format_bits(static_cast<cells::InputBits>(tv.v2.u64()),
                                   3)
                    .c_str());
    if (i % 6 == 5) std::printf("\n  ");
  }
  std::printf("\n\nuntestable faults (all in or masked by the redundant branch):\n  ");
  for (std::size_t i : run.untestable_faults)
    std::printf("%s ", fault_name(c, nand_faults[i]).c_str());
  std::printf("\n\n");

  // Sanity cross-check: exhaustive fault simulation agrees with ATPG.
  const int coverable = m.covered_count;
  util::AsciiTable x("cross-validation");
  x.set_header({"check", "value"});
  x.add_row({"ATPG-testable == exhaustively coverable",
             (coverable == run.found) ? "yes" : "NO"});
  x.add_row({"exact cover covers everything",
             covers_all(m, exact) ? "yes" : "NO"});
  x.print();

  // Including the 11 inverters (the paper counts only NANDs).
  const auto all_faults = enumerate_obd_faults(c);
  const AtpgRun all_run = run_obd_atpg(c, all_faults);
  std::printf(
      "\nincluding inverters: %zu sites, %d testable, %d untestable\n\n",
      all_faults.size(), all_run.found, all_run.untestable);
}

void BM_FullAdderObdAtpg(benchmark::State& state) {
  const logic::Circuit c = logic::full_adder_sum_circuit();
  const auto faults = enumerate_obd_faults(c, true);
  for (auto _ : state) {
    const AtpgRun run = run_obd_atpg(c, faults);
    benchmark::DoNotOptimize(run.found);
  }
}
BENCHMARK(BM_FullAdderObdAtpg)->Unit(benchmark::kMillisecond);

void BM_ExhaustiveObdFaultSim(benchmark::State& state) {
  const logic::Circuit c = logic::full_adder_sum_circuit();
  const auto faults = enumerate_obd_faults(c, true);
  const auto pairs = all_ordered_pairs(3);
  for (auto _ : state) {
    const DetectionMatrix m = build_obd_matrix(c, pairs, faults);
    benchmark::DoNotOptimize(m.covered_count);
  }
}
BENCHMARK(BM_ExhaustiveObdFaultSim)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return obd::benchsup::run_bench_main(argc, argv, &reproduce);
}

// Extension bench: capture-clock planning (STA) and robustness of OBD tests.
//
// Sec. 4.2 of the paper: "the detection of this fault may necessitate
// output capture earlier than the designated clock frequency". Placing that
// early-capture clock needs the fault-free worst arrival (STA); and in an
// aging circuit, detections should ideally be *robust* — immune to one
// unrelated slow gate. This bench reports both per circuit.
#include "bench_common.hpp"
#include "atpg/atpg.hpp"
#include "logic/logic.hpp"

namespace {

using namespace obd;
using namespace obd::atpg;

void reproduce() {
  std::printf("=== Capture planning (STA) and robust detections ===\n\n");

  const logic::DelayLibrary lib;  // paper-nominal 110/96 ps
  util::AsciiTable t("per-circuit timing and robustness");
  t.set_header({"circuit", "depth", "STA worst arrival", "critical path head",
                "detections", "SIC", "robust (1 slow gate)"});
  for (const logic::Circuit& c :
       {logic::full_adder_sum_circuit(), logic::c17(),
        logic::ripple_carry_adder(2), logic::alu_bit_slice()}) {
    const logic::StaResult sta = logic::run_sta(c, lib);
    const auto faults = enumerate_obd_faults(c);
    const AtpgRun run = run_obd_atpg(c, faults);
    const RobustnessReport rep = classify_obd_tests(c, faults, run.tests);
    std::string head = "-";
    if (!sta.critical_path.empty())
      head = c.gate(sta.critical_path.front()).name + "->" +
             c.gate(sta.critical_path.back()).name;
    t.add_row({c.name(), std::to_string(c.depth()),
               util::format_time_eng(sta.worst_po_arrival), head,
               std::to_string(rep.tests), std::to_string(rep.sic),
               std::to_string(rep.robust)});
  }
  t.print();
  std::printf(
      "reading: capture must sit just above 'STA worst arrival' for the\n"
      "functional path to pass while delayed faults fail. The robust\n"
      "column counts detections that survive one arbitrarily slow other\n"
      "gate - the detections a concurrent monitor in an *aging* chip can\n"
      "rely on. Reconvergent (XOR-rich) structures show the largest\n"
      "non-robust fraction.\n\n");
}

void BM_StaFullAdder(benchmark::State& state) {
  const logic::Circuit c = logic::full_adder_sum_circuit();
  const logic::DelayLibrary lib;
  for (auto _ : state) {
    const logic::StaResult r = logic::run_sta(c, lib);
    benchmark::DoNotOptimize(r.worst_po_arrival);
  }
}
BENCHMARK(BM_StaFullAdder);

void BM_RobustClassification(benchmark::State& state) {
  const logic::Circuit c = logic::c17();
  const auto faults = enumerate_obd_faults(c);
  const AtpgRun run = run_obd_atpg(c, faults);
  for (auto _ : state) {
    const RobustnessReport rep = classify_obd_tests(c, faults, run.tests);
    benchmark::DoNotOptimize(rep.robust);
  }
}
BENCHMARK(BM_RobustClassification)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return obd::benchsup::run_bench_main(argc, argv, &reproduce);
}

// Table 1 reproduction: NMOS and PMOS OBD progression in terms of
// transition delays for the Fig. 5 NAND2 set-up.
//
// Paper reference rows (DATE'05, Table 1):
//   NMOS (falling transitions):      PMOS (rising transitions):
//     FaultFree:  96ps all cols        FaultFree: 110ps all cols
//     MBD1: 118ps                      MBD1: 110 / 360ps (input-specific)
//     MBD2: 143-156ps                  MBD2: 110 / 736ps
//     MBD3: 190-230ps                  MBD3: 110ps / sa-0
//     HBD:  sa-1                       HBD:  N/A
// We reproduce the *shape*: monotone growth, input-independence for NMOS,
// input-specificity for PMOS, stuck-at end states. Absolute picoseconds
// differ (our substrate is a level-1 simulator; see DESIGN.md).
#include "bench_common.hpp"
#include "cells/cells.hpp"
#include "core/core.hpp"

namespace {

using namespace obd;

const cells::Technology& tech() {
  static const cells::Technology t = cells::Technology::default_350nm();
  return t;
}

core::GateCharacterizer& characterizer() {
  static core::GateCharacterizer chr(cells::nand_topology(2), tech());
  return chr;
}

// Paper-order transitions (bit 0 = input A).
const cells::TwoVector kFall0111{0b10, 0b11};  // (01,11): A rises
const cells::TwoVector kFall1011{0b01, 0b11};  // (10,11): B rises
const cells::TwoVector kRise1110{0b11, 0b01};  // (11,10): B falls
const cells::TwoVector kRise1101{0b11, 0b10};  // (11,01): A falls

std::string measure_cell(const std::optional<cells::TransistorRef>& fault,
                         core::BreakdownStage stage,
                         const cells::TwoVector& tv) {
  const auto m = characterizer().measure(fault, stage, tv);
  return benchsup::delay_cell(m.delay, m.stuck, m.stuck_high);
}

void reproduce() {
  std::printf(
      "=== Table 1: NMOS and PMOS OBD progression (NAND2, Fig. 5 harness) "
      "===\n\n");

  {
    util::AsciiTable t("NMOS OBD (falling-output transitions)");
    t.set_header({"stage", "Isat [A]", "R [ohm]", "(01,11) NA", "(01,11) NB",
                  "(10,11) NA", "(10,11) NB"});
    for (core::BreakdownStage s : core::kAllStages) {
      const core::ObdParams p = core::nmos_stage_params(s);
      t.add_row({core::to_string(s), util::format_g(p.isat, 3),
                 util::format_g(p.r, 3),
                 measure_cell(cells::TransistorRef{false, 0}, s, kFall0111),
                 measure_cell(cells::TransistorRef{false, 1}, s, kFall0111),
                 measure_cell(cells::TransistorRef{false, 0}, s, kFall1011),
                 measure_cell(cells::TransistorRef{false, 1}, s, kFall1011)});
    }
    t.print();
    std::printf(
        "paper: 96 | 118 | 143-156 | 190-230 | sa-1 (delay grows with stage,\n"
        "independent of which input switches)\n\n");
  }

  {
    util::AsciiTable t("PMOS OBD (rising-output transitions)");
    t.set_header({"stage", "Isat [A]", "R [ohm]", "(11,10) PA", "(11,10) PB",
                  "(11,01) PA", "(11,01) PB"});
    for (core::BreakdownStage s : core::kAllStages) {
      const core::ObdParams p = core::pmos_stage_params(s);
      t.add_row({core::to_string(s), util::format_g(p.isat, 3),
                 util::format_g(p.r, 3),
                 measure_cell(cells::TransistorRef{true, 0}, s, kRise1110),
                 measure_cell(cells::TransistorRef{true, 1}, s, kRise1110),
                 measure_cell(cells::TransistorRef{true, 0}, s, kRise1101),
                 measure_cell(cells::TransistorRef{true, 1}, s, kRise1101)});
    }
    t.print();
    std::printf(
        "paper: PA unaffected under (11,10) and PB unaffected under (11,01);\n"
        "the defective device's own transition degrades 110 -> 360 -> 736ps\n"
        "-> sa-0. Note the off-diagonal columns staying at the fault-free\n"
        "value: the input-specific excitation of Sec. 4.1.\n\n");
  }
}

void BM_NandTransient(benchmark::State& state) {
  for (auto _ : state) {
    const auto m = characterizer().measure(cells::TransistorRef{false, 0},
                                           core::BreakdownStage::kMbd2,
                                           kFall1011);
    benchmark::DoNotOptimize(m.delay);
  }
}
BENCHMARK(BM_NandTransient)->Unit(benchmark::kMillisecond);

void BM_FaultFreeTransient(benchmark::State& state) {
  for (auto _ : state) {
    const auto m = characterizer().measure(
        std::nullopt, core::BreakdownStage::kFaultFree, kFall1011);
    benchmark::DoNotOptimize(m.delay);
  }
}
BENCHMARK(BM_FaultFreeTransient)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return obd::benchsup::run_bench_main(argc, argv, &reproduce);
}

// Extension bench: process variation and temperature vs OBD detectability.
//
// The paper contrasts OBD testing with path-delay testing, whose main
// nuisance is process variation ("unexpectedly high process variations ...
// increase the overall delay of a path"). This bench asks the quantitative
// question a concurrent-test designer faces: is the delay signature of an
// early (MBD1) defect separable from die-to-die process spread, and how do
// the margins move with temperature?
#include "bench_common.hpp"
#include <algorithm>
#include <cmath>

#include "core/core.hpp"
#include "util/prng.hpp"

namespace {

using namespace obd;

struct Dist {
  double mean = 0.0;
  double sigma = 0.0;
  double min = 0.0;
  double max = 0.0;
};

Dist stats(const std::vector<double>& xs) {
  Dist d;
  if (xs.empty()) return d;
  for (double x : xs) d.mean += x;
  d.mean /= static_cast<double>(xs.size());
  for (double x : xs) d.sigma += (x - d.mean) * (x - d.mean);
  d.sigma = std::sqrt(d.sigma / static_cast<double>(xs.size()));
  d.min = *std::min_element(xs.begin(), xs.end());
  d.max = *std::max_element(xs.begin(), xs.end());
  return d;
}

void reproduce() {
  const cells::TwoVector fall{0b01, 0b11};
  const cells::TransistorRef na{false, 0};
  const cells::Technology nominal = cells::Technology::default_350nm();

  std::printf("=== Process variation & temperature vs OBD signature ===\n\n");

  // --- Monte Carlo over process corners ------------------------------------
  util::Prng prng(20260612);
  const int kSamples = 20;
  std::vector<double> ff;
  std::vector<double> bd;
  for (int i = 0; i < kSamples; ++i) {
    const cells::Technology t = nominal.perturbed(prng);
    core::GateCharacterizer chr(cells::nand_topology(2), t);
    const auto m0 =
        chr.measure(std::nullopt, core::BreakdownStage::kFaultFree, fall);
    const auto m1 = chr.measure(na, core::BreakdownStage::kMbd1, fall);
    if (m0.delay) ff.push_back(*m0.delay);
    if (m1.delay) bd.push_back(*m1.delay);
  }
  const Dist dff = stats(ff);
  const Dist dbd = stats(bd);

  util::AsciiTable t("die-to-die spread (20 samples, sigma_VT=30mV, sigma_KP=5%)");
  t.set_header({"population", "mean", "sigma", "min", "max"});
  t.add_row({"fault-free fall delay", util::format_time_eng(dff.mean),
             util::format_time_eng(dff.sigma), util::format_time_eng(dff.min),
             util::format_time_eng(dff.max)});
  t.add_row({"MBD1 (NMOS defect)", util::format_time_eng(dbd.mean),
             util::format_time_eng(dbd.sigma), util::format_time_eng(dbd.min),
             util::format_time_eng(dbd.max)});
  t.print();
  const bool separable = dbd.min > dff.max;
  std::printf(
      "worst-case fault-free die (%s) vs best-case defective die (%s):\n"
      "an absolute delay threshold %s separate MBD1 from process spread -\n"
      "%s. Per-die calibration (relative delay tracking, as a concurrent\n"
      "monitor naturally does) restores the margin.\n\n",
      util::format_time_eng(dff.max).c_str(),
      util::format_time_eng(dbd.min).c_str(), separable ? "CAN" : "CANNOT",
      separable ? "the signature clears the spread"
                : "guard-banding against raw spread would mask early defects");

  // --- Temperature ----------------------------------------------------------
  util::AsciiTable tt("temperature trend (MOSFET tempcos; same card)");
  tt.set_header({"T", "fault-free", "MBD1", "added delay"});
  for (double kelvin : {233.0, 300.0, 398.0}) {
    const cells::Technology t2 = nominal.at_temperature(kelvin);
    core::GateCharacterizer chr(cells::nand_topology(2), t2);
    const auto m0 =
        chr.measure(std::nullopt, core::BreakdownStage::kFaultFree, fall);
    const auto m1 = chr.measure(na, core::BreakdownStage::kMbd1, fall);
    std::string added = "-";
    if (m0.delay && m1.delay)
      added = util::format_time_eng(*m1.delay - *m0.delay);
    tt.add_row({util::format_g(kelvin - 273.0, 3) + " C",
                benchsup::delay_cell(m0.delay, m0.stuck, m0.stuck_high),
                benchsup::delay_cell(m1.delay, m1.stuck, m1.stuck_high),
                added});
  }
  tt.print();
  std::printf(
      "hot silicon is slower overall (mobility) and the defect's added\n"
      "delay grows with it: concurrent testing at operating temperature\n"
      "sees the defect earlier than a cold production test would.\n"
      "(diode thermal voltage held at 300 K in this sweep; the MOSFET\n"
      "tempcos dominate the trend.)\n\n");
}

void BM_PerturbedCharacterization(benchmark::State& state) {
  util::Prng prng(7);
  const cells::Technology t =
      cells::Technology::default_350nm().perturbed(prng);
  core::GateCharacterizer chr(cells::nand_topology(2), t);
  for (auto _ : state) {
    const auto m = chr.measure(cells::TransistorRef{false, 0},
                               core::BreakdownStage::kMbd1, {0b01, 0b11});
    benchmark::DoNotOptimize(m.delay);
  }
}
BENCHMARK(BM_PerturbedCharacterization)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return obd::benchsup::run_bench_main(argc, argv, &reproduce);
}

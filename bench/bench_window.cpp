// Sec. 4.2 reproduction: the window of opportunity for concurrent OBD
// detection, and the gross-delay vs timing-aware detection ablation.
//
// Pipeline: sweep the OBD leakage (Isat) across the progression range,
// characterize the NAND delay at each point with the analog engine, map
// leakage to wall-clock time with the exponential growth model (27 h from
// SBD to HBD, Linder et al.), and report for several detector slacks when
// the defect first becomes observable and how much safe time remains.
#include "bench_common.hpp"
#include "core/core.hpp"

namespace {

using namespace obd;

void reproduce() {
  const cells::Technology tech = cells::Technology::default_350nm();
  core::GateCharacterizer chr(cells::nand_topology(2), tech);
  const cells::TwoVector fall{0b01, 0b11};
  const cells::TransistorRef na{false, 0};

  std::printf("=== Sec. 4.2: window of opportunity for concurrent testing ===\n\n");

  // Fault-free reference.
  const auto ff = chr.measure(std::nullopt, core::BreakdownStage::kFaultFree,
                              fall);
  const double d0 = ff.delay.value_or(0.0);

  // Delay vs leakage curve (the Isat sweep interpolates R geometrically
  // between the MBD1 and HBD table entries).
  const core::ObdParams sbd = core::nmos_stage_params(core::BreakdownStage::kMbd1);
  const core::ObdParams hbd = core::nmos_stage_params(core::BreakdownStage::kHbd);
  const core::ProgressionModel model(sbd.isat, hbd.isat, 27.0 * 3600.0);

  std::vector<core::DelayVsIsat> curve;
  util::AsciiTable t("NAND delay vs breakdown leakage (NMOS defect)");
  t.set_header({"Isat [A]", "R [ohm]", "t into progression", "delay",
                "added delay"});
  const int kPoints = 9;
  for (int i = 0; i < kPoints; ++i) {
    const double frac = static_cast<double>(i) / (kPoints - 1);
    const double time = frac * model.t_sbd_to_hbd();
    const core::ObdParams p = model.params_at(time, sbd, hbd);
    const auto m = chr.measure_params(na, p, fall);
    core::DelayVsIsat pt;
    pt.isat = p.isat;
    if (m.delay) pt.extra_delay = *m.delay - d0;
    curve.push_back(pt);
    t.add_row({util::format_g(p.isat, 3), util::format_g(p.r, 3),
               util::format_time_eng(time),
               benchsup::delay_cell(m.delay, m.stuck, m.stuck_high),
               m.delay ? util::format_time_eng(*m.delay - d0) : "inf"});
  }
  t.print();

  util::AsciiTable w("detection window vs detector timing slack");
  w.set_header({"slack", "detectable from", "window width",
                "required test interval (50% derate)"});
  for (double slack : {20e-12, 50e-12, 100e-12, 300e-12, 1e-9}) {
    const core::DetectionWindow win =
        core::detection_window(curve, slack, model);
    w.add_row({util::format_time_eng(slack),
               win.detectable() ? util::format_time_eng(*win.t_detectable)
                                : "never",
               util::format_time_eng(win.width()),
               util::format_time_eng(core::required_test_interval(win))});
  }
  w.print();
  std::printf(
      "paper: \"the window of opportunity to detect the OBD defects is\n"
      "between the SBD stage and HBD stage\"; a tighter detector slack\n"
      "opens the window earlier and allows a longer test interval. Since\n"
      "progression is exponential, most of the window sits late: defects\n"
      "\"must be identified as soon as appreciable leakage current starts\n"
      "flowing\" (Sec. 4.2).\n\n");
}

void BM_WindowPipeline(benchmark::State& state) {
  const cells::Technology tech = cells::Technology::default_350nm();
  core::GateCharacterizer chr(cells::nand_topology(2), tech);
  const core::ObdParams sbd = core::nmos_stage_params(core::BreakdownStage::kMbd1);
  for (auto _ : state) {
    const auto m = chr.measure_params(cells::TransistorRef{false, 0}, sbd,
                                      {0b01, 0b11});
    benchmark::DoNotOptimize(m.delay);
  }
}
BENCHMARK(BM_WindowPipeline)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return obd::benchsup::run_bench_main(argc, argv, &reproduce);
}

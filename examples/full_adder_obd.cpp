// Sec. 4.3 end to end: the full-adder sum circuit, from gate-level netlist
// to analog waveforms at the primary output.
//
// Walks through:
//   1. building the paper's experimental circuit (14 NAND + 11 INV, depth 9)
//      and verifying its structure,
//   2. deriving a two-vector test for a PMOS OBD defect in the mid-path
//      NAND with the two-frame ATPG,
//   3. elaborating the circuit to transistors, injecting the defect and
//      simulating the test analog-level,
//   4. showing the delayed-but-restored transition at S: the logic *value*
//      recovers downstream, the *timing* error survives.
#include <cstdio>

#include "atpg/atpg.hpp"
#include "core/core.hpp"
#include "logic/logic.hpp"
#include "util/measure.hpp"
#include "util/table.hpp"

int main() {
  using namespace obd;

  // --- 1. The experimental circuit ----------------------------------------
  const logic::Circuit c = logic::full_adder_sum_circuit();
  std::printf("circuit '%s': %zu gates, depth %d, %zu PIs -> %zu POs\n",
              c.name().c_str(), c.num_gates(), c.depth(), c.inputs().size(),
              c.outputs().size());
  int mid = -1;
  for (std::size_t g = 0; g < c.num_gates(); ++g)
    if (c.gate(static_cast<int>(g)).name == logic::kFullAdderMidNand)
      mid = static_cast<int>(g);
  std::printf("injection target: NAND '%s' (level 5: 4 stages up, 4 down)\n\n",
              logic::kFullAdderMidNand);

  // --- 2. ATPG for the PMOS defect at input 0 of the mid NAND -------------
  const logic::ObdFaultSite site{mid, cells::TransistorRef{true, 0}};
  const atpg::TwoFrameResult gen = atpg::generate_obd_test(c, site);
  if (gen.status != atpg::PodemStatus::kFound) {
    std::printf("unexpected: fault untestable\n");
    return 1;
  }
  // Prefer a detecting pair that also toggles S (a visible late edge).
  atpg::TwoVectorTest test = gen.test;
  for (const auto& cand : atpg::all_ordered_pairs(3)) {
    if ((c.eval_outputs(cand.v1) & 1u) == (c.eval_outputs(cand.v2) & 1u))
      continue;
    if (atpg::simulate_obd(c, cand, {site})[0]) {
      test = cand;
      break;
    }
  }
  std::printf("ATPG test (A,B,C): %s -> %s\n",
              cells::format_bits(static_cast<cells::InputBits>(test.v1.u64()),
                                 3)
                  .c_str(),
              cells::format_bits(static_cast<cells::InputBits>(test.v2.u64()),
                                 3)
                  .c_str());

  // --- 3. Analog runs -------------------------------------------------------
  const cells::Technology tech = cells::Technology::default_350nm();
  const double t_switch = 2e-9;
  auto run = [&](bool inject) {
    logic::Elaboration el(c, tech);
    if (inject) {
      auto inj = core::inject_obd(el.netlist(),
                                  el.transistor_name(mid, site.transistor));
      inj.set_stage(core::BreakdownStage::kMbd2);
    }
    el.set_two_vector(test.v1, test.v2, t_switch);
    spice::TransientOptions opt;
    opt.dt = 4e-12;
    return spice::transient(el.netlist(), 7e-9, opt,
                            {"S", c.net_name(c.gate(mid).output)});
  };
  const auto ff = run(false);
  const auto faulty = run(true);
  if (ff.status != spice::SolveStatus::kOk ||
      faulty.status != spice::SolveStatus::kOk) {
    std::printf("transient failed\n");
    return 1;
  }

  // --- 4. Compare arrivals --------------------------------------------------
  const bool s_rises = (c.eval_outputs(test.v2) & 1u) != 0;
  util::DelayOptions dopt;
  dopt.vdd = tech.vdd;
  const auto edge = s_rises ? util::Edge::kRising : util::Edge::kFalling;
  const auto t_ff = util::edge_time(*ff.trace("S"), edge, t_switch, dopt);
  const auto t_bd = util::edge_time(*faulty.trace("S"), edge, t_switch, dopt);

  util::AsciiTable t("S output arrival (50% crossing after launch)");
  t.set_header({"run", "arrival", "S swing [V]"});
  t.add_row({"fault free",
             t_ff ? util::format_time_eng(*t_ff - t_switch) : "-",
             util::format_g(util::swing(*ff.trace("S")), 3)});
  t.add_row({"PMOS OBD @ mid NAND (MBD2)",
             t_bd ? util::format_time_eng(*t_bd - t_switch) : "stuck",
             util::format_g(util::swing(*faulty.trace("S")), 3)});
  t.print();

  if (t_ff && t_bd) {
    std::printf(
        "\nThe defective gate's degraded output is restored to a full-swing\n"
        "signal by the downstream inverters (swing column), yet S arrives\n"
        "%s late - a purely *dynamic* error, detectable only by timing-\n"
        "sensitive capture. This is the paper's Sec. 4.3 observation.\n",
        util::format_time_eng(*t_bd - *t_ff).c_str());
  }
  return 0;
}

// OBD ATPG as a command-line tool.
//
// Usage:
//   obd_atpg_demo               # runs on the built-in circuit zoo
//   obd_atpg_demo file.bench    # runs on an ISCAS .bench netlist (DFF
//                               # designs are analyzed in the full-scan
//                               # view); see tools/obd_atpg.cpp for the
//                               # full campaign driver
//   obd_atpg_demo netlist.txt   # runs on a circuit in the text format:
//                               #   .model name
//                               #   .inputs a b ...
//                               #   .outputs z ...
//                               #   .gate NAND2 z a b
//                               #   .end
//
// For each circuit it enumerates the OBD fault list, generates two-vector
// tests, cross-checks them with the independent fault simulator, compacts
// the set, and compares against classical stuck-at/transition test sets.
#include <cstdio>
#include <fstream>
#include <sstream>

#include "atpg/atpg.hpp"
#include "io/bench.hpp"
#include "logic/logic.hpp"
#include "util/table.hpp"

namespace {

using namespace obd;
using namespace obd::atpg;

void analyze(const logic::Circuit& raw) {
  // OBD sites live on primitive CMOS gates; lower composites first.
  const logic::Circuit c = logic::decompose_composites(raw);
  std::printf("=== %s: %zu gates (primitive), %zu PIs, %zu POs ===\n",
              raw.name().c_str(), c.num_gates(), c.inputs().size(),
              c.outputs().size());

  const auto faults = enumerate_obd_faults(c);
  const AtpgRun run = run_obd_atpg(c, faults);

  // Cross-check every generated test against the fault simulator.
  const DetectionMatrix m = build_obd_matrix(c, run.tests, faults);
  const bool consistent = m.covered_count == run.found;

  // Compaction.
  const auto greedy = greedy_cover(m);

  // Classical baselines.
  const AtpgRun sa = run_stuck_at_atpg(c, enumerate_stuck_faults(c));
  std::vector<InputVec> flat;
  for (const auto& t : sa.tests) flat.push_back(t.v2);
  const double sa_cov = obd_coverage(c, consecutive_pairs(flat), faults);
  const AtpgRun tr = run_transition_atpg(c, enumerate_transition_faults(c));
  const double tr_cov = obd_coverage(c, tr.tests, faults);

  util::AsciiTable t("summary");
  t.set_header({"metric", "value"});
  t.add_row({"OBD fault sites", std::to_string(faults.size())});
  t.add_row({"testable / untestable / aborted",
             std::to_string(run.found) + " / " + std::to_string(run.untestable) +
                 " / " + std::to_string(run.aborted)});
  t.add_row({"raw test count", std::to_string(run.tests.size())});
  t.add_row({"compacted test count", std::to_string(greedy.size())});
  t.add_row({"fault-sim cross-check", consistent ? "consistent" : "MISMATCH"});
  t.add_row({"OBD coverage of stuck-at set",
             util::format_g(100.0 * sa_cov, 3) + "%"});
  t.add_row({"OBD coverage of transition set",
             util::format_g(100.0 * tr_cov, 3) + "%"});
  t.add_row({"OBD coverage of OBD set",
             util::format_g(100.0 * static_cast<double>(run.found) /
                                static_cast<double>(faults.size()), 3) + "%"});
  t.print();
  if (!run.untestable_faults.empty()) {
    std::printf("untestable: ");
    for (std::size_t i : run.untestable_faults)
      std::printf("%s ", fault_name(c, faults[i]).c_str());
    std::printf("\n");
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1) {
    const std::string path = argv[1];
    if (path.size() > 6 && path.rfind(".bench") == path.size() - 6) {
      const io::BenchParseResult pr = io::load_bench_file(path);
      if (!pr.ok) {
        std::fprintf(stderr, "parse error: %s\n", pr.error.c_str());
        return 1;
      }
      analyze(pr.seq.flops().empty() ? pr.circuit() : pr.seq.scan_view());
      return 0;
    }
    std::ifstream f(argv[1]);
    if (!f) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::stringstream ss;
    ss << f.rdbuf();
    const logic::ParseResult pr = logic::parse_netlist(ss.str());
    if (!pr.ok) {
      std::fprintf(stderr, "parse error: %s\n", pr.error.c_str());
      return 1;
    }
    analyze(pr.circuit);
    return 0;
  }
  analyze(logic::full_adder_sum_circuit());
  analyze(logic::c17());
  analyze(logic::ripple_carry_adder(4));
  analyze(logic::parity_tree(8));
  analyze(logic::mux_tree(3));
  return 0;
}

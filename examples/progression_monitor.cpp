// Concurrent-testing scheduler: from device physics to a test policy.
//
// The paper's motivation (Secs. 1, 4.2) is *concurrent* test/diagnose/repair:
// catch an OBD defect after it becomes observable but before hard breakdown
// endangers neighboring circuits. This example builds the full chain:
//
//   diode-resistor model -> delay-vs-leakage characterization (analog) ->
//   exponential progression clock -> detection window per detector slack ->
//   required concurrent test period.
//
// It then plays the policy forward: for a sweep of test periods it reports
// whether a defect starting at a random point in time is caught in the
// window (deterministically, by interval arithmetic).
#include <cstdio>

#include "cells/cells.hpp"
#include "core/core.hpp"
#include "util/table.hpp"

int main() {
  using namespace obd;

  const cells::Technology tech = cells::Technology::default_350nm();
  core::GateCharacterizer chr(cells::nand_topology(2), tech);
  const cells::TwoVector fall{0b01, 0b11};
  const cells::TransistorRef na{false, 0};

  // --- 1. Characterize delay vs leakage -----------------------------------
  const auto ff =
      chr.measure(std::nullopt, core::BreakdownStage::kFaultFree, fall);
  const double d0 = ff.delay.value_or(0.0);
  const core::ObdParams sbd =
      core::nmos_stage_params(core::BreakdownStage::kMbd1);
  const core::ObdParams hbd =
      core::nmos_stage_params(core::BreakdownStage::kHbd);
  const core::ProgressionModel model(sbd.isat, hbd.isat, 27.0 * 3600.0);

  std::printf("characterizing NAND2 delay across the OBD progression...\n");
  std::vector<core::DelayVsIsat> curve;
  for (int i = 0; i < 7; ++i) {
    const double t =
        model.t_sbd_to_hbd() * static_cast<double>(i) / 6.0;
    const core::ObdParams p = model.params_at(t, sbd, hbd);
    const auto m = chr.measure_params(na, p, fall);
    core::DelayVsIsat pt;
    pt.isat = p.isat;
    if (m.delay) pt.extra_delay = *m.delay - d0;
    curve.push_back(pt);
  }

  // --- 2. Window and schedule per detector slack ---------------------------
  util::AsciiTable t("concurrent test policy per detector slack");
  t.set_header({"detector slack", "window opens", "window width",
                "test period (50% derate)", "tests per day"});
  for (double slack : {50e-12, 150e-12, 500e-12}) {
    const auto win = core::detection_window(curve, slack, model);
    const double period = core::required_test_interval(win);
    t.add_row({util::format_time_eng(slack),
               win.detectable() ? util::format_time_eng(*win.t_detectable)
                                : "never",
               util::format_time_eng(win.width()),
               period > 0 ? util::format_time_eng(period) : "-",
               period > 0 ? util::format_g(86400.0 / period, 3) : "-"});
  }
  t.print();

  // --- 3. Play the policy forward ------------------------------------------
  // A defect whose observable window is [t_open, t_hbd] is caught by a
  // periodic test of period P iff P <= window width (worst-case phase).
  const auto win = core::detection_window(curve, 150e-12, model);
  if (!win.detectable()) {
    std::printf("defect never observable at this slack\n");
    return 0;
  }
  util::AsciiTable p("policy evaluation (slack = 150ps)");
  p.set_header({"test period", "caught before HBD?", "margin"});
  for (double period : {6.0 * 3600.0, 12.0 * 3600.0, 24.0 * 3600.0,
                        48.0 * 3600.0}) {
    const bool caught = period <= win.width();
    const double margin = win.width() - period;
    p.add_row({util::format_time_eng(period), caught ? "yes" : "NO",
               util::format_time_eng(margin)});
  }
  p.print();
  std::printf(
      "\nThe exponential progression concentrates observability late in\n"
      "life: the paper's warning that defects \"must be identified as soon\n"
      "as appreciable leakage current starts flowing\" translates into a\n"
      "concrete maximum test period for a concurrent BIST scheme.\n");
  return 0;
}

// Quickstart: inject a progressing oxide-breakdown defect into a NAND gate
// and watch the transition delay grow until the gate sticks.
//
// This walks the paper's core loop end to end:
//   1. build the Fig. 5 characterization harness around a NAND2,
//   2. derive which input transitions excite each transistor's OBD defect,
//   3. sweep the breakdown stages of Table 1 and measure the delays.
#include <cstdio>

#include "cells/cells.hpp"
#include "core/core.hpp"
#include "util/table.hpp"

int main() {
  using namespace obd;

  const cells::Technology tech = cells::Technology::default_350nm();
  const cells::CellTopology nand2 = cells::nand_topology(2);
  core::GateCharacterizer chr(nand2, tech);

  // --- 1. Excitation conditions derived from the cell topology ------------
  std::printf("OBD excitation conditions for NAND2 (paper Sec. 4.1):\n");
  for (const auto& t : nand2.transistors()) {
    std::printf("  %s%d (%s OBD): ", t.pmos ? "P" : "N", t.input,
                t.pmos ? "PMOS" : "NMOS");
    const auto trs = core::obd_excitations(nand2, t);
    for (const auto& tr : trs)
      std::printf("%s ", cells::format_transition(tr, 2).c_str());
    std::printf("\n");
  }

  // --- 2. Delay progression for one NMOS and one PMOS defect --------------
  const cells::TwoVector falling{0b01, 0b11};  // (10,11) in paper order: A=1
  const cells::TwoVector rising{0b11, 0b01};   // (11,10): B switches 1->0

  util::AsciiTable table("NAND2 delay vs breakdown stage (Fig. 5 harness)");
  table.set_header({"stage", "NMOS-A fall delay", "PMOS-B rise delay",
                    "peak Idd (NMOS case)"});
  for (core::BreakdownStage st : core::kAllStages) {
    const auto mn =
        chr.measure(cells::TransistorRef{false, 0}, st, falling);
    const auto mp = chr.measure(cells::TransistorRef{true, 1}, st, rising);
    auto fmt = [](const core::DelayMeasurement& m) -> std::string {
      if (m.delay) return util::format_time_eng(*m.delay);
      if (m.stuck) return m.stuck_high ? "sa-1" : "sa-0";
      return "-";
    };
    table.add_row({core::to_string(st), fmt(mn), fmt(mp),
                   util::format_g(mn.peak_supply_current * 1e3, 3) + " mA"});
  }
  table.print();

  std::printf(
      "\nNote how the NMOS defect slows the falling output at every stage\n"
      "while the PMOS defect only disturbs the rising transition that its\n"
      "own input launches - the paper's input-specific excitation.\n");
  return 0;
}

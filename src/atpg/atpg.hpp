// Umbrella header for the test-generation substrate.
#pragma once

#include "atpg/collapse.hpp"  // IWYU pragma: export
#include "atpg/compact.hpp"   // IWYU pragma: export
#include "atpg/diagnose.hpp"  // IWYU pragma: export
#include "atpg/faults.hpp"    // IWYU pragma: export
#include "atpg/faultsim.hpp"  // IWYU pragma: export
#include "atpg/faultsim_engine.hpp"  // IWYU pragma: export
#include "atpg/ndetect.hpp"   // IWYU pragma: export
#include "atpg/patterns.hpp"  // IWYU pragma: export
#include "atpg/podem.hpp"     // IWYU pragma: export
#include "atpg/robust.hpp"    // IWYU pragma: export
#include "atpg/scan.hpp"      // IWYU pragma: export
#include "atpg/twoframe.hpp"  // IWYU pragma: export

#include "atpg/collapse.hpp"

#include <map>

#include "core/excitation.hpp"

namespace obd::atpg {
namespace {

/// Canonical key of a fault's local excitation set: sorted (v1, v2) pairs.
std::vector<std::uint64_t> excitation_key(const logic::Gate& gate,
                                          const cells::TransistorRef& t) {
  const auto topo = logic::gate_topology(gate.type);
  std::vector<std::uint64_t> key;
  if (!topo.has_value()) return key;
  for (const auto& tv : core::obd_excitations(*topo, t))
    key.push_back((static_cast<std::uint64_t>(tv.v1) << 32) | tv.v2);
  return key;  // obd_excitations enumerates in a fixed order: canonical.
}

}  // namespace

bool gate_equivalent(const Circuit& c, const ObdFaultSite& a,
                     const ObdFaultSite& b) {
  if (a.gate_index != b.gate_index) return false;
  const auto& gate = c.gate(a.gate_index);
  return excitation_key(gate, a.transistor) ==
         excitation_key(gate, b.transistor);
}

CollapsedFaults collapse_obd_faults(const Circuit& c,
                                    const std::vector<ObdFaultSite>& faults) {
  CollapsedFaults out;
  out.original_count = faults.size();
  out.class_of.resize(faults.size());
  // Group by (gate, excitation key).
  std::map<std::pair<int, std::vector<std::uint64_t>>, std::size_t> classes;
  for (std::size_t i = 0; i < faults.size(); ++i) {
    const auto& f = faults[i];
    auto key = std::make_pair(
        f.gate_index, excitation_key(c.gate(f.gate_index), f.transistor));
    const auto it = classes.find(key);
    if (it != classes.end()) {
      out.class_of[i] = it->second;
      continue;
    }
    const std::size_t id = out.representatives.size();
    classes.emplace(std::move(key), id);
    out.representatives.push_back(f);
    out.class_of[i] = id;
  }
  return out;
}

namespace {

/// Union-find over (net, polarity) slots.
class DisjointSets {
 public:
  explicit DisjointSets(std::size_t n) : parent_(n) {
    for (std::size_t i = 0; i < n; ++i) parent_[i] = i;
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) x = parent_[x] = parent_[parent_[x]];
    return x;
  }
  void merge(std::size_t a, std::size_t b) { parent_[find(a)] = find(b); }

 private:
  std::vector<std::size_t> parent_;
};

}  // namespace

CollapsedStuck collapse_stuck_faults(const Circuit& c,
                                     const std::vector<StuckFault>& faults) {
  using logic::GateType;
  const auto slot = [](NetId n, bool v) {
    return static_cast<std::size_t>(n) * 2 + (v ? 1 : 0);
  };
  DisjointSets sets(c.num_nets() * 2);
  // A PO net's fault is observed directly, so it never merges with its
  // driver-side twin (their detecting test sets differ).
  std::vector<std::uint8_t> is_po(c.num_nets(), 0);
  for (NetId po : c.outputs()) is_po[static_cast<std::size_t>(po)] = 1;

  for (const auto& g : c.gates()) {
    // (controlling input value -> forced output value) per gate family;
    // XOR/XNOR/AOI/OAI have no single-input equivalence.
    bool in_v = false, out_v = false, both = false, any = true;
    switch (g.type) {
      case GateType::kAnd2: in_v = false; out_v = false; break;
      case GateType::kNand2:
      case GateType::kNand3:
      case GateType::kNand4: in_v = false; out_v = true; break;
      case GateType::kOr2: in_v = true; out_v = true; break;
      case GateType::kNor2:
      case GateType::kNor3:
      case GateType::kNor4: in_v = true; out_v = false; break;
      case GateType::kBuf: both = true; out_v = false; break;
      case GateType::kInv: both = true; out_v = true; break;
      default: any = false; break;
    }
    if (!any) continue;
    for (NetId in : g.inputs) {
      const auto n = static_cast<std::size_t>(in);
      if (c.fanout_of(in).size() != 1 || is_po[n]) continue;
      if (both) {
        sets.merge(slot(in, false), slot(g.output, out_v));
        sets.merge(slot(in, true), slot(g.output, !out_v));
      } else {
        sets.merge(slot(in, in_v), slot(g.output, out_v));
      }
    }
  }

  CollapsedStuck out;
  out.original_count = faults.size();
  out.class_of.resize(faults.size());
  std::map<std::size_t, std::size_t> class_ids;  // root slot -> class id
  for (std::size_t i = 0; i < faults.size(); ++i) {
    const std::size_t root = sets.find(slot(faults[i].net, faults[i].value));
    const auto it = class_ids.find(root);
    if (it != class_ids.end()) {
      out.class_of[i] = it->second;
      continue;
    }
    const std::size_t id = out.representatives.size();
    class_ids.emplace(root, id);
    out.representatives.push_back(faults[i]);
    out.class_of[i] = id;
  }
  return out;
}

}  // namespace obd::atpg

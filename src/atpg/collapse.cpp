#include "atpg/collapse.hpp"

#include <map>

#include "core/excitation.hpp"

namespace obd::atpg {
namespace {

/// Canonical key of a fault's local excitation set: sorted (v1, v2) pairs.
std::vector<std::uint64_t> excitation_key(const logic::Gate& gate,
                                          const cells::TransistorRef& t) {
  const auto topo = logic::gate_topology(gate.type);
  std::vector<std::uint64_t> key;
  if (!topo.has_value()) return key;
  for (const auto& tv : core::obd_excitations(*topo, t))
    key.push_back((static_cast<std::uint64_t>(tv.v1) << 32) | tv.v2);
  return key;  // obd_excitations enumerates in a fixed order: canonical.
}

}  // namespace

bool gate_equivalent(const Circuit& c, const ObdFaultSite& a,
                     const ObdFaultSite& b) {
  if (a.gate_index != b.gate_index) return false;
  const auto& gate = c.gate(a.gate_index);
  return excitation_key(gate, a.transistor) ==
         excitation_key(gate, b.transistor);
}

CollapsedFaults collapse_obd_faults(const Circuit& c,
                                    const std::vector<ObdFaultSite>& faults) {
  CollapsedFaults out;
  out.original_count = faults.size();
  out.class_of.resize(faults.size());
  // Group by (gate, excitation key).
  std::map<std::pair<int, std::vector<std::uint64_t>>, std::size_t> classes;
  for (std::size_t i = 0; i < faults.size(); ++i) {
    const auto& f = faults[i];
    auto key = std::make_pair(
        f.gate_index, excitation_key(c.gate(f.gate_index), f.transistor));
    const auto it = classes.find(key);
    if (it != classes.end()) {
      out.class_of[i] = it->second;
      continue;
    }
    const std::size_t id = out.representatives.size();
    classes.emplace(std::move(key), id);
    out.representatives.push_back(f);
    out.class_of[i] = id;
  }
  return out;
}

}  // namespace obd::atpg

// OBD fault collapsing.
//
// The paper's own data shows the seed for this: in Table 1 the NMOS defects
// NA and NB of a NAND produce the same behaviour for every input sequence
// (a series stack starves equally wherever the spot sits), so one of them
// suffices for test generation. Formally, two OBD faults of the same gate
// are *gate-equivalent* when their excitation sets over the gate's local
// two-vector space are identical; since detection = excitation + gate-output
// effect + propagation (and the latter two depend only on the gate output),
// gate-equivalent faults are detected by exactly the same tests.
//
// collapse_obd_faults() keeps one representative per equivalence class.
// For a NAND-k this halves the NMOS list (k -> 1) while all PMOS faults
// stay distinct — mirroring the paper's input-specificity result.
#pragma once

#include "atpg/faults.hpp"

namespace obd::atpg {

struct CollapsedFaults {
  /// One representative per equivalence class.
  std::vector<ObdFaultSite> representatives;
  /// Class id of each input fault (index into `representatives`).
  std::vector<std::size_t> class_of;
  std::size_t original_count = 0;

  double reduction() const {
    return original_count == 0
               ? 0.0
               : 1.0 - static_cast<double>(representatives.size()) /
                           static_cast<double>(original_count);
  }
};

/// Partitions `faults` into gate-local equivalence classes.
CollapsedFaults collapse_obd_faults(const Circuit& c,
                                    const std::vector<ObdFaultSite>& faults);

/// Are two same-gate faults equivalent (identical local excitation sets)?
bool gate_equivalent(const Circuit& c, const ObdFaultSite& a,
                     const ObdFaultSite& b);

/// Classical structural stuck-at equivalence collapsing. A fanout-free
/// gate-input net stuck at the gate's controlling value is equivalent to
/// the output stuck at the forced value (AND: in-0 = out-0, NAND: in-0 =
/// out-1, OR: in-1 = out-1, NOR: in-1 = out-0; INV/BUF collapse both
/// polarities); classes are the transitive closure along such chains. Only
/// equivalences are merged (no dominance), so per-class detection — and
/// hence collapsed coverage — is exact: every member of a class is
/// detected by exactly the tests that detect its representative.
struct CollapsedStuck {
  /// One representative per equivalence class (first member in input order).
  std::vector<StuckFault> representatives;
  /// Class id of each input fault (index into `representatives`).
  std::vector<std::size_t> class_of;
  std::size_t original_count = 0;

  double reduction() const {
    return original_count == 0
               ? 0.0
               : 1.0 - static_cast<double>(representatives.size()) /
                           static_cast<double>(original_count);
  }
};

CollapsedStuck collapse_stuck_faults(const Circuit& c,
                                     const std::vector<StuckFault>& faults);

}  // namespace obd::atpg

#include "atpg/compact.hpp"

#include <algorithm>

namespace obd::atpg {
namespace {

std::size_t count_new(const std::vector<bool>& row,
                      const std::vector<bool>& covered) {
  std::size_t n = 0;
  for (std::size_t i = 0; i < row.size(); ++i)
    if (row[i] && !covered[i]) ++n;
  return n;
}

}  // namespace

std::vector<std::size_t> greedy_cover(const DetectionMatrix& m) {
  std::vector<std::size_t> picks;
  if (m.detects.empty()) return picks;
  const std::size_t n_faults = m.covered.size();
  std::vector<bool> covered(n_faults, false);
  std::size_t remaining = static_cast<std::size_t>(m.covered_count);

  while (remaining > 0) {
    std::size_t best = 0;
    std::size_t best_gain = 0;
    for (std::size_t t = 0; t < m.detects.size(); ++t) {
      const std::size_t gain = count_new(m.detects[t], covered);
      if (gain > best_gain) {
        best_gain = gain;
        best = t;
      }
    }
    if (best_gain == 0) break;  // Only uncoverable faults remain.
    picks.push_back(best);
    for (std::size_t i = 0; i < n_faults; ++i)
      if (m.detects[best][i] && !covered[i]) {
        covered[i] = true;
        --remaining;
      }
  }
  return picks;
}

namespace {

struct ExactSearch {
  const DetectionMatrix& m;
  std::size_t max_nodes;
  std::size_t nodes = 0;
  std::vector<std::size_t> best;
  std::vector<std::size_t> current;

  void run(std::vector<bool>& covered, std::size_t remaining,
           std::size_t start) {
    if (++nodes > max_nodes) return;
    if (remaining == 0) {
      if (best.empty() || current.size() < best.size()) best = current;
      return;
    }
    if (!best.empty() && current.size() + 1 >= best.size()) {
      // Even one more pick cannot beat the incumbent unless it finishes;
      // cheap lower bound: at least one more test is needed.
      if (current.size() + 1 > best.size()) return;
    }
    // Branch on the first uncovered fault: some selected test must cover it.
    std::size_t fault = 0;
    while (fault < covered.size() && (covered[fault] || !m.covered[fault]))
      ++fault;
    if (fault == covered.size()) return;
    for (std::size_t t = start; t < m.detects.size(); ++t) {
      if (!m.detects[t][fault]) continue;
      // Apply.
      std::vector<std::size_t> newly;
      for (std::size_t i = 0; i < covered.size(); ++i)
        if (m.detects[t][i] && !covered[i]) {
          covered[i] = true;
          newly.push_back(i);
        }
      current.push_back(t);
      run(covered, remaining - newly.size(), 0);
      current.pop_back();
      for (std::size_t i : newly) covered[i] = false;
    }
  }
};

}  // namespace

std::vector<std::size_t> exact_cover(const DetectionMatrix& m,
                                     std::size_t max_nodes) {
  const std::vector<std::size_t> greedy = greedy_cover(m);
  ExactSearch search{m, max_nodes};
  search.best = greedy;
  std::vector<bool> covered(m.covered.size(), false);
  search.run(covered, static_cast<std::size_t>(m.covered_count), 0);
  return search.best;
}

bool covers_all(const DetectionMatrix& m,
                const std::vector<std::size_t>& selection) {
  std::vector<bool> covered(m.covered.size(), false);
  for (std::size_t t : selection)
    for (std::size_t i = 0; i < covered.size(); ++i)
      if (m.detects[t][i]) covered[i] = true;
  for (std::size_t i = 0; i < covered.size(); ++i)
    if (m.covered[i] && !covered[i]) return false;
  return true;
}

}  // namespace obd::atpg

#include "atpg/compact.hpp"

#include <algorithm>
#include <bit>

namespace obd::atpg {
namespace {

/// Word-packed "still uncovered" gain of a test row.
std::size_t count_new(const std::uint64_t* row,
                      const std::vector<std::uint64_t>& covered) {
  std::size_t n = 0;
  for (std::size_t w = 0; w < covered.size(); ++w)
    n += static_cast<std::size_t>(std::popcount(row[w] & ~covered[w]));
  return n;
}

}  // namespace

std::vector<std::size_t> greedy_cover(const DetectionMatrix& m) {
  std::vector<std::size_t> picks;
  if (m.n_tests == 0) return picks;
  std::vector<std::uint64_t> covered(m.words_per_row, 0);
  std::size_t remaining = static_cast<std::size_t>(m.covered_count);

  while (remaining > 0) {
    std::size_t best = 0;
    std::size_t best_gain = 0;
    for (std::size_t t = 0; t < m.n_tests; ++t) {
      const std::size_t gain = count_new(m.row(t), covered);
      if (gain > best_gain) {
        best_gain = gain;
        best = t;
      }
    }
    if (best_gain == 0) break;  // Only uncoverable faults remain.
    picks.push_back(best);
    const std::uint64_t* row = m.row(best);
    for (std::size_t w = 0; w < covered.size(); ++w) covered[w] |= row[w];
    remaining -= best_gain;
  }
  return picks;
}

namespace {

struct ExactSearch {
  const DetectionMatrix& m;
  std::size_t max_nodes;
  std::size_t nodes = 0;
  std::vector<std::size_t> best;
  std::vector<std::size_t> current;
  /// Word-packed mask of coverable faults (uncoverable ones never block).
  std::vector<std::uint64_t> coverable;

  void run(std::vector<std::uint64_t>& covered, std::size_t remaining,
           std::size_t start) {
    if (++nodes > max_nodes) return;
    if (remaining == 0) {
      if (best.empty() || current.size() < best.size()) best = current;
      return;
    }
    if (!best.empty() && current.size() + 1 >= best.size()) {
      // Even one more pick cannot beat the incumbent unless it finishes;
      // cheap lower bound: at least one more test is needed.
      if (current.size() + 1 > best.size()) return;
    }
    // Branch on the first uncovered coverable fault: some selected test
    // must cover it.
    std::size_t fault_word = 0;
    std::uint64_t open = 0;
    for (; fault_word < covered.size(); ++fault_word) {
      open = coverable[fault_word] & ~covered[fault_word];
      if (open) break;
    }
    if (!open) return;
    const std::size_t fault =
        fault_word * 64 + static_cast<std::size_t>(std::countr_zero(open));
    for (std::size_t t = start; t < m.n_tests; ++t) {
      if (!m.detects(t, fault)) continue;
      // Apply, remembering the newly covered bits per word to undo.
      const std::uint64_t* row = m.row(t);
      std::vector<std::uint64_t> newly(covered.size());
      std::size_t gained = 0;
      for (std::size_t w = 0; w < covered.size(); ++w) {
        newly[w] = row[w] & ~covered[w];
        covered[w] |= newly[w];
        gained += static_cast<std::size_t>(std::popcount(newly[w]));
      }
      current.push_back(t);
      run(covered, remaining - gained, 0);
      current.pop_back();
      for (std::size_t w = 0; w < covered.size(); ++w) covered[w] &= ~newly[w];
    }
  }
};

std::vector<std::uint64_t> covered_mask(const DetectionMatrix& m) {
  std::vector<std::uint64_t> mask(m.words_per_row, 0);
  for (std::size_t f = 0; f < m.n_faults; ++f)
    if (m.covered[f]) mask[f >> 6] |= 1ull << (f & 63);
  return mask;
}

}  // namespace

std::vector<std::size_t> exact_cover(const DetectionMatrix& m,
                                     std::size_t max_nodes) {
  const std::vector<std::size_t> greedy = greedy_cover(m);
  ExactSearch search{m, max_nodes};
  search.best = greedy;
  search.coverable = covered_mask(m);
  std::vector<std::uint64_t> covered(m.words_per_row, 0);
  search.run(covered, static_cast<std::size_t>(m.covered_count), 0);
  return search.best;
}

bool covers_all(const DetectionMatrix& m,
                const std::vector<std::size_t>& selection) {
  std::vector<std::uint64_t> covered(m.words_per_row, 0);
  for (std::size_t t : selection) {
    const std::uint64_t* row = m.row(t);
    for (std::size_t w = 0; w < covered.size(); ++w) covered[w] |= row[w];
  }
  const std::vector<std::uint64_t> need = covered_mask(m);
  for (std::size_t w = 0; w < covered.size(); ++w)
    if ((covered[w] & need[w]) != need[w]) return false;
  return true;
}

}  // namespace obd::atpg

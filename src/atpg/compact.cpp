#include "atpg/compact.hpp"

#include <algorithm>
#include <bit>
#include <numeric>

namespace obd::atpg {
namespace {

/// Word-packed "still uncovered" gain of a test row.
std::size_t count_new(const std::uint64_t* row,
                      const std::vector<std::uint64_t>& covered) {
  std::size_t n = 0;
  for (std::size_t w = 0; w < covered.size(); ++w)
    n += static_cast<std::size_t>(std::popcount(row[w] & ~covered[w]));
  return n;
}

}  // namespace

std::vector<std::size_t> greedy_cover(const DetectionMatrix& m) {
  std::vector<std::size_t> picks;
  if (m.n_tests == 0) return picks;
  std::vector<std::uint64_t> covered(m.words_per_row, 0);
  std::size_t remaining = static_cast<std::size_t>(m.covered_count);

  while (remaining > 0) {
    std::size_t best = 0;
    std::size_t best_gain = 0;
    for (std::size_t t = 0; t < m.n_tests; ++t) {
      const std::size_t gain = count_new(m.row(t), covered);
      if (gain > best_gain) {
        best_gain = gain;
        best = t;
      }
    }
    if (best_gain == 0) break;  // Only uncoverable faults remain.
    picks.push_back(best);
    const std::uint64_t* row = m.row(best);
    for (std::size_t w = 0; w < covered.size(); ++w) covered[w] |= row[w];
    remaining -= best_gain;
  }
  return picks;
}

namespace {

struct ExactSearch {
  const DetectionMatrix& m;
  std::size_t max_nodes;
  std::size_t nodes = 0;
  std::vector<std::size_t> best;
  std::vector<std::size_t> current;
  /// Word-packed mask of coverable faults (uncoverable ones never block).
  std::vector<std::uint64_t> coverable;

  void run(std::vector<std::uint64_t>& covered, std::size_t remaining,
           std::size_t start) {
    if (++nodes > max_nodes) return;
    if (remaining == 0) {
      if (best.empty() || current.size() < best.size()) best = current;
      return;
    }
    if (!best.empty() && current.size() + 1 >= best.size()) {
      // Even one more pick cannot beat the incumbent unless it finishes;
      // cheap lower bound: at least one more test is needed.
      if (current.size() + 1 > best.size()) return;
    }
    // Branch on the first uncovered coverable fault: some selected test
    // must cover it.
    std::size_t fault_word = 0;
    std::uint64_t open = 0;
    for (; fault_word < covered.size(); ++fault_word) {
      open = coverable[fault_word] & ~covered[fault_word];
      if (open) break;
    }
    if (!open) return;
    const std::size_t fault =
        fault_word * 64 + static_cast<std::size_t>(std::countr_zero(open));
    for (std::size_t t = start; t < m.n_tests; ++t) {
      if (!m.detects(t, fault)) continue;
      // Apply, remembering the newly covered bits per word to undo.
      const std::uint64_t* row = m.row(t);
      std::vector<std::uint64_t> newly(covered.size());
      std::size_t gained = 0;
      for (std::size_t w = 0; w < covered.size(); ++w) {
        newly[w] = row[w] & ~covered[w];
        covered[w] |= newly[w];
        gained += static_cast<std::size_t>(std::popcount(newly[w]));
      }
      current.push_back(t);
      run(covered, remaining - gained, 0);
      current.pop_back();
      for (std::size_t w = 0; w < covered.size(); ++w) covered[w] &= ~newly[w];
    }
  }
};

std::vector<std::uint64_t> covered_mask(const DetectionMatrix& m) {
  std::vector<std::uint64_t> mask(m.words_per_row, 0);
  for (std::size_t f = 0; f < m.n_faults; ++f)
    if (m.covered[f]) mask[f >> 6] |= 1ull << (f & 63);
  return mask;
}

}  // namespace

std::vector<std::size_t> exact_cover(const DetectionMatrix& m,
                                     std::size_t max_nodes) {
  const std::vector<std::size_t> greedy = greedy_cover(m);
  ExactSearch search{m, max_nodes};
  search.best = greedy;
  search.coverable = covered_mask(m);
  std::vector<std::uint64_t> covered(m.words_per_row, 0);
  search.run(covered, static_cast<std::size_t>(m.covered_count), 0);
  return search.best;
}

bool covers_all(const DetectionMatrix& m,
                const std::vector<std::size_t>& selection) {
  std::vector<std::uint64_t> covered(m.words_per_row, 0);
  for (std::size_t t : selection) {
    const std::uint64_t* row = m.row(t);
    for (std::size_t w = 0; w < covered.size(); ++w) covered[w] |= row[w];
  }
  const std::vector<std::uint64_t> need = covered_mask(m);
  for (std::size_t w = 0; w < covered.size(); ++w)
    if ((covered[w] & need[w]) != need[w]) return false;
  return true;
}

// --- X-overlap merging -------------------------------------------------------

namespace {

void or_into(std::vector<std::uint64_t>& acc,
             const std::vector<std::uint64_t>& v) {
  for (std::size_t w = 0; w < v.size(); ++w) acc[w] |= v[w];
}

}  // namespace

XMergeResult merge_x_overlap(const Circuit& c,
                             const std::vector<XTwoVectorTest>& tests,
                             const std::vector<ObdFaultSite>& faults) {
  XMergeResult out;
  FaultSimEngine engine(c);
  // test_obd with the identity index packs its detect words with fault f
  // at bit (f & 63) of word (f >> 6) — the superset()/or_into() layout.
  std::vector<int> all(faults.size());
  std::iota(all.begin(), all.end(), 0);
  std::vector<std::uint64_t> scratch;
  const auto concrete_obd = [&](const XTwoVectorTest& t) {
    engine.test_obd(t.concrete(), faults, all, scratch);
    return scratch;
  };
  // Acceptance only asks whether `t` detects every fault in `need` (the
  // constituents' detections, usually a tiny fraction of the fault list),
  // so simulate just those: every lane of every word must come back set.
  std::vector<int> need_idx;
  const auto detects_all = [&](const XTwoVectorTest& t,
                               const std::vector<std::uint64_t>& need) {
    need_idx.clear();
    for (std::size_t w = 0; w < need.size(); ++w) {
      std::uint64_t word = need[w];
      while (word) {
        need_idx.push_back(
            static_cast<int>(w * 64 + static_cast<std::size_t>(
                                          std::countr_zero(word))));
        word &= word - 1;
      }
    }
    engine.test_obd(t.concrete(), faults, need_idx, scratch);
    for (std::size_t w = 0; w < scratch.size(); ++w) {
      const std::size_t lanes =
          std::min<std::size_t>(64, need_idx.size() - w * 64);
      const std::uint64_t full = lanes == 64 ? ~0ull : ((1ull << lanes) - 1);
      if ((scratch[w] & full) != full) return false;
    }
    return true;
  };

  struct Slot {
    XTwoVectorTest test;
    std::vector<std::uint64_t> concrete;  // union of constituents' concrete
  };
  std::vector<Slot> slots;

  for (std::size_t i = 0; i < tests.size(); ++i) {
    const auto concrete = concrete_obd(tests[i]);
    bool placed = false;
    for (std::size_t s = 0; s < slots.size() && !placed; ++s) {
      Slot& slot = slots[s];
      if (!slot.test.compatible(tests[i])) continue;
      // Definite (3-valued) detections need no check here: merging only
      // refines care bits, and eval3_words is Kleene-monotone, so every
      // constituent's definite detection carries over (see compact.hpp).
      const XTwoVectorTest cand = slot.test.merged(tests[i]);
      std::vector<std::uint64_t> need_conc = slot.concrete;
      or_into(need_conc, concrete);
      if (!detects_all(cand, need_conc)) continue;
      slot.test = cand;
      slot.concrete = std::move(need_conc);
      out.members[s].push_back(i);
      placed = true;
    }
    if (!placed) {
      slots.push_back({tests[i], concrete});
      out.members.push_back({i});
    }
  }
  for (auto& s : slots) out.tests.push_back(s.test);
  return out;
}

}  // namespace obd::atpg

// Test-set compaction by set cover over a detection matrix. Regenerates the
// paper's "18 of 72 input transitions are necessary and sufficient" style
// statistics for the full adder.
#pragma once

#include <vector>

#include "atpg/faultsim.hpp"

namespace obd::atpg {

/// Greedy set cover: repeatedly picks the test detecting the most
/// still-uncovered faults (word-packed rows, popcount gains).
/// Returns selected test indices (in pick order).
std::vector<std::size_t> greedy_cover(const DetectionMatrix& m);

/// Exact minimum cover via branch and bound (seeded by the greedy bound).
/// Intended for small instances (tens of tests after dominance pruning).
std::vector<std::size_t> exact_cover(const DetectionMatrix& m,
                                     std::size_t max_nodes = 2'000'000);

/// True when the selected tests detect every coverable fault of the matrix.
bool covers_all(const DetectionMatrix& m,
                const std::vector<std::size_t>& selection);

/// X-overlap merge of partially-specified OBD tests.
struct XMergeResult {
  std::vector<XTwoVectorTest> tests;
  /// members[i]: indices of the original tests folded into tests[i].
  std::vector<std::vector<std::size_t>> members;
};

/// Greedy first-fit merging of tests whose care bits do not conflict —
/// exact-equality deduplication generalized to X-overlap. A merge is
/// accepted only when the candidate's concrete fill still detects every
/// fault the constituents' concrete fills detected, so accidental (fill-
/// dependent) detections are preserved and total coverage never drops.
/// Definite (3-valued, fill-independent) detections need no runtime gate:
/// a merge is a care-bit refinement of each constituent, and
/// Circuit::eval3_words is Kleene-monotone, so every definite detection of
/// a constituent is automatically definite for the merged vector (the
/// XMerge property test enforces this via simulate_obd_x).
XMergeResult merge_x_overlap(const Circuit& c,
                             const std::vector<XTwoVectorTest>& tests,
                             const std::vector<ObdFaultSite>& faults);

}  // namespace obd::atpg

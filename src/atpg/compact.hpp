// Test-set compaction by set cover over a detection matrix. Regenerates the
// paper's "18 of 72 input transitions are necessary and sufficient" style
// statistics for the full adder.
#pragma once

#include <vector>

#include "atpg/faultsim.hpp"

namespace obd::atpg {

/// Greedy set cover: repeatedly picks the test detecting the most
/// still-uncovered faults (word-packed rows, popcount gains).
/// Returns selected test indices (in pick order).
std::vector<std::size_t> greedy_cover(const DetectionMatrix& m);

/// Exact minimum cover via branch and bound (seeded by the greedy bound).
/// Intended for small instances (tens of tests after dominance pruning).
std::vector<std::size_t> exact_cover(const DetectionMatrix& m,
                                     std::size_t max_nodes = 2'000'000);

/// True when the selected tests detect every coverable fault of the matrix.
bool covers_all(const DetectionMatrix& m,
                const std::vector<std::size_t>& selection);

}  // namespace obd::atpg

#include "atpg/diagnose.hpp"

#include <map>

namespace obd::atpg {

std::vector<ObdFaultSite> prune_untestable(
    const std::vector<ObdFaultSite>& faults,
    const std::vector<std::uint32_t>& drop_indices) {
  std::vector<std::uint8_t> drop(faults.size(), 0);
  for (const std::uint32_t i : drop_indices)
    if (i < faults.size()) drop[i] = 1;
  std::vector<ObdFaultSite> kept;
  kept.reserve(faults.size());
  for (std::size_t i = 0; i < faults.size(); ++i)
    if (!drop[i]) kept.push_back(faults[i]);
  return kept;
}

ObdDictionary::ObdDictionary(const Circuit& c, std::vector<TwoVectorTest> tests,
                             std::vector<ObdFaultSite> faults)
    : c_(c), tests_(std::move(tests)), faults_(std::move(faults)) {
  // One block-parallel pass over the whole (test, fault) matrix; the
  // syndrome of fault f is column f.
  syndromes_.assign(faults_.size(), std::vector<bool>(tests_.size(), false));
  const DetectionMatrix m = build_obd_matrix(c_, tests_, faults_);
  for (std::size_t t = 0; t < tests_.size(); ++t)
    for (std::size_t f = 0; f < faults_.size(); ++f)
      if (m.detects(t, f)) syndromes_[f][t] = true;
}

std::vector<std::size_t> ObdDictionary::exact_candidates(
    const std::vector<bool>& observed) const {
  std::vector<std::size_t> out;
  for (std::size_t f = 0; f < faults_.size(); ++f)
    if (syndromes_[f] == observed) out.push_back(f);
  return out;
}

double ObdDictionary::resolution() const {
  std::map<std::vector<bool>, int> distinct;
  int detectable = 0;
  for (const auto& s : syndromes_) {
    bool any = false;
    for (bool b : s) any = any || b;
    if (!any) continue;
    ++detectable;
    ++distinct[s];
  }
  if (detectable == 0) return 1.0;
  return static_cast<double>(distinct.size()) /
         static_cast<double>(detectable);
}

double ObdDictionary::mean_ambiguity() const {
  std::map<std::vector<bool>, int> distinct;
  for (const auto& s : syndromes_) {
    bool any = false;
    for (bool b : s) any = any || b;
    if (any) ++distinct[s];
  }
  int detectable = 0;
  long total = 0;
  for (const auto& s : syndromes_) {
    bool any = false;
    for (bool b : s) any = any || b;
    if (!any) continue;
    ++detectable;
    total += distinct[s];  // candidate set size for this fault's syndrome
  }
  if (detectable == 0) return 0.0;
  return static_cast<double>(total) / static_cast<double>(detectable);
}

}  // namespace obd::atpg

// Dictionary-based OBD diagnosis.
//
// The paper's end goal is concurrent "test/diagnose/repair" (Secs. 1, 2,
// 3.3): once a concurrent test fails, the system must localize the
// defective site to repair or reconfigure around it. With a test set and a
// fault list, the classical dictionary approach applies directly:
//
//   - offline: simulate every (test, fault) pair -> per-fault syndrome
//     (the bitset of failing tests);
//   - online: observe which tests fail -> candidate faults whose syndrome
//     matches (exactly, or as a superset under partial observation).
//
// The input-specific nature of OBD excitation *helps* diagnosis: PMOS
// defects at different inputs fail disjoint tests, so resolution inside a
// gate is often perfect — unlike with the classical transition model where
// all of a gate's defects share one syndrome.
#pragma once

#include "atpg/faultsim.hpp"

namespace obd::atpg {

/// Drops the faults at `drop_indices` (indices into `faults`) before
/// dictionary construction — typically the SAT-proven-untestable
/// representatives from a campaign's escalation tail. Untestable faults
/// have all-zero syndromes by definition, so keeping them only deflates
/// resolution() and inflates mean_ambiguity() without ever being
/// diagnosable. Out-of-range indices are ignored; order is preserved.
std::vector<ObdFaultSite> prune_untestable(
    const std::vector<ObdFaultSite>& faults,
    const std::vector<std::uint32_t>& drop_indices);

/// Per-fault syndromes over a fixed test set.
class ObdDictionary {
 public:
  ObdDictionary(const Circuit& c, std::vector<TwoVectorTest> tests,
                std::vector<ObdFaultSite> faults);

  const std::vector<TwoVectorTest>& tests() const { return tests_; }
  const std::vector<ObdFaultSite>& faults() const { return faults_; }

  /// Syndrome of fault i: bit t set when test t fails.
  const std::vector<bool>& syndrome(std::size_t fault) const {
    return syndromes_[fault];
  }

  /// Faults whose syndrome equals the observation exactly.
  std::vector<std::size_t> exact_candidates(
      const std::vector<bool>& observed) const;

  /// Diagnostic resolution: number of distinct non-empty syndromes divided
  /// by the number of detectable faults (1.0 = every detectable fault
  /// uniquely identifiable).
  double resolution() const;

  /// Average candidate-set size over all detectable faults (>= 1).
  double mean_ambiguity() const;

 private:
  const Circuit& c_;
  std::vector<TwoVectorTest> tests_;
  std::vector<ObdFaultSite> faults_;
  std::vector<std::vector<bool>> syndromes_;
};

}  // namespace obd::atpg

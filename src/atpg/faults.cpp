#include "atpg/faults.hpp"

namespace obd::atpg {

std::vector<StuckFault> enumerate_stuck_faults(const Circuit& c) {
  std::vector<StuckFault> out;
  out.reserve(c.num_nets() * 2);
  for (std::size_t n = 0; n < c.num_nets(); ++n) {
    out.push_back({static_cast<NetId>(n), false});
    out.push_back({static_cast<NetId>(n), true});
  }
  return out;
}

std::vector<TransitionFault> enumerate_transition_faults(const Circuit& c) {
  std::vector<TransitionFault> out;
  out.reserve(c.num_gates() * 2);
  for (const auto& g : c.gates()) {
    out.push_back({g.output, true});
    out.push_back({g.output, false});
  }
  return out;
}

std::vector<ObdFaultSite> enumerate_obd_faults(const Circuit& c,
                                               bool nand_only) {
  std::vector<ObdFaultSite> out;
  for (std::size_t gi = 0; gi < c.num_gates(); ++gi) {
    const auto& g = c.gate(static_cast<int>(gi));
    if (!logic::is_primitive_cmos(g.type)) continue;
    if (nand_only && g.type != logic::GateType::kNand2 &&
        g.type != logic::GateType::kNand3 && g.type != logic::GateType::kNand4)
      continue;
    const auto topo = logic::gate_topology(g.type);
    for (const auto& t : topo->transistors())
      out.push_back({static_cast<int>(gi), t});
  }
  return out;
}

std::string fault_name(const Circuit& c, const StuckFault& f) {
  return c.net_name(f.net) + (f.value ? "/sa1" : "/sa0");
}

std::string fault_name(const Circuit& c, const TransitionFault& f) {
  return c.net_name(f.net) + (f.slow_to_rise ? "/str" : "/stf");
}

std::string fault_name(const Circuit& c, const ObdFaultSite& f) {
  const auto& g = c.gate(f.gate_index);
  return g.name + "." + (f.transistor.pmos ? "P" : "N") +
         std::to_string(f.transistor.input) + "/obd";
}

}  // namespace obd::atpg

// Fault models and fault-list enumeration.
//
// Three models, mirroring the paper's comparison (Secs. 2, 4, 5):
//  - stuck-at: the classical static model;
//  - transition (slow-to-rise / slow-to-fall at a gate output): the
//    classical dynamic model, *insensitive* to which input switches;
//  - OBD: a transistor-level site whose excitation is the input-specific
//    condition of Sec. 4.1. logic::ObdFaultSite carries the site.
#pragma once

#include <string>
#include <vector>

#include "logic/circuit.hpp"
#include "logic/timingsim.hpp"

namespace obd::atpg {

using logic::Circuit;
using logic::NetId;
using logic::ObdFaultSite;

/// net stuck at `value`.
struct StuckFault {
  NetId net = logic::kNoNet;
  bool value = false;

  bool operator==(const StuckFault&) const = default;
};

/// Gate output slow to reach `rise ? 1 : 0`.
struct TransitionFault {
  NetId net = logic::kNoNet;
  bool slow_to_rise = false;

  bool operator==(const TransitionFault&) const = default;
};

/// All net stuck-at faults (every net, both polarities).
std::vector<StuckFault> enumerate_stuck_faults(const Circuit& c);

/// All transition faults (every gate output, both directions).
std::vector<TransitionFault> enumerate_transition_faults(const Circuit& c);

/// All OBD fault sites: one per transistor of every primitive CMOS gate.
/// `nand_only` restricts to NAND gates (the paper's Sec. 4.3 counts only
/// the 56 sites inside the 14 NANDs).
std::vector<ObdFaultSite> enumerate_obd_faults(const Circuit& c,
                                               bool nand_only = false);

/// Human-readable fault names for reports.
std::string fault_name(const Circuit& c, const StuckFault& f);
std::string fault_name(const Circuit& c, const TransitionFault& f);
std::string fault_name(const Circuit& c, const ObdFaultSite& f);

}  // namespace obd::atpg

#include "atpg/faultsim.hpp"

#include <bit>

#include "core/excitation.hpp"

namespace obd::atpg {
namespace {

std::uint64_t outputs_of(const Circuit& c, const std::vector<bool>& values) {
  std::uint64_t out = 0;
  for (std::size_t i = 0; i < c.outputs().size(); ++i)
    if (values[static_cast<std::size_t>(c.outputs()[i])]) out |= (1ull << i);
  return out;
}

std::vector<bool> lane0_bools(const std::vector<std::uint64_t>& detect) {
  std::vector<bool> out(detect.size(), false);
  for (std::size_t i = 0; i < detect.size(); ++i) out[i] = detect[i] & 1u;
  return out;
}

}  // namespace

// --- One-lane wrappers over the block engine --------------------------------

std::vector<bool> simulate_stuck_at(const Circuit& c, std::uint64_t pattern,
                                    const std::vector<StuckFault>& faults) {
  FaultSimEngine engine(c);
  PatternBlock b(c);
  b.push({pattern, pattern});
  std::vector<std::uint64_t> detect;
  engine.block_stuck(b, faults, detect);
  return lane0_bools(detect);
}

std::vector<bool> simulate_obd(const Circuit& c, const TwoVectorTest& test,
                               const std::vector<ObdFaultSite>& faults) {
  FaultSimEngine engine(c);
  PatternBlock b(c);
  b.push(test);
  std::vector<std::uint64_t> detect;
  engine.block_obd(b, faults, detect);
  return lane0_bools(detect);
}

std::vector<bool> simulate_transition(
    const Circuit& c, const TwoVectorTest& test,
    const std::vector<TransitionFault>& faults) {
  FaultSimEngine engine(c);
  PatternBlock b(c);
  b.push(test);
  std::vector<std::uint64_t> detect;
  engine.block_transition(b, faults, detect);
  return lane0_bools(detect);
}

bool forced_outputs_differ(const Circuit& c, std::uint64_t pattern, NetId net,
                           bool value) {
  // Lightweight single-lane path (no engine / cone cache): callers such as
  // scan-test verification invoke this once per fault on a fresh circuit.
  std::vector<std::uint64_t> pi(c.inputs().size());
  for (std::size_t i = 0; i < pi.size(); ++i) pi[i] = (pattern >> i) & 1u;
  const auto good = c.eval_words(pi);
  const auto bad = c.eval_words(pi, net, value ? 1ull : 0ull);
  for (NetId po : c.outputs()) {
    const auto n = static_cast<std::size_t>(po);
    if ((good[n] ^ bad[n]) & 1u) return true;
  }
  return false;
}

bool simulate_obd_timing(const Circuit& c, const TwoVectorTest& test,
                         const ObdFaultSite& fault, double extra_delay,
                         bool stuck, double capture_time,
                         const logic::DelayLibrary& lib) {
  logic::TimingSimulator good_sim(c, lib);
  const logic::TimingRun good = good_sim.run_two_vector(test.v1, test.v2,
                                                        capture_time);
  logic::TimingSimulator bad_sim(c, lib);
  bad_sim.set_fault(fault, logic::ObdDelayEffect{extra_delay, stuck});
  const logic::TimingRun bad = bad_sim.run_two_vector(test.v1, test.v2,
                                                      capture_time);
  for (NetId po : c.outputs())
    if (good.captured_of(po) != bad.captured_of(po)) return true;
  return false;
}

// --- Detection matrices ------------------------------------------------------

std::size_t DetectionMatrix::row_count(std::size_t test) const {
  std::size_t n = 0;
  const std::uint64_t* r = row(test);
  for (std::size_t w = 0; w < words_per_row; ++w)
    n += static_cast<std::size_t>(std::popcount(r[w]));
  return n;
}

namespace {

template <typename Fault, typename BlockFn>
DetectionMatrix build_matrix(const Circuit& c,
                             const std::vector<TwoVectorTest>& tests,
                             const std::vector<Fault>& faults,
                             BlockFn block_fn) {
  DetectionMatrix m;
  m.n_tests = tests.size();
  m.n_faults = faults.size();
  m.words_per_row = (faults.size() + 63) / 64;
  m.rows.assign(m.n_tests * m.words_per_row, 0);
  m.covered.assign(faults.size(), false);

  FaultSimEngine engine(c);
  std::vector<std::uint64_t> detect;
  std::size_t base = 0;
  for (const PatternBlock& b : PatternBlock::pack(c, tests)) {
    block_fn(engine, b, faults, detect);
    for (std::size_t f = 0; f < faults.size(); ++f) {
      std::uint64_t word = detect[f];
      if (!word) continue;
      if (!m.covered[f]) {
        m.covered[f] = true;
        ++m.covered_count;
      }
      const std::size_t fw = f >> 6;
      const std::uint64_t fbit = 1ull << (f & 63);
      while (word) {
        const int lane = std::countr_zero(word);
        word &= word - 1;
        m.rows[(base + static_cast<std::size_t>(lane)) * m.words_per_row + fw] |=
            fbit;
      }
    }
    base += static_cast<std::size_t>(b.size());
  }
  return m;
}

}  // namespace

DetectionMatrix build_stuck_matrix(const Circuit& c,
                                   const std::vector<std::uint64_t>& patterns,
                                   const std::vector<StuckFault>& faults) {
  std::vector<TwoVectorTest> tests;
  tests.reserve(patterns.size());
  for (std::uint64_t p : patterns) tests.push_back({p, p});
  return build_matrix(c, tests, faults,
                      [](FaultSimEngine& e, const PatternBlock& b,
                         const auto& fl, auto& det) {
                        e.block_stuck(b, fl, det);
                      });
}

DetectionMatrix build_obd_matrix(const Circuit& c,
                                 const std::vector<TwoVectorTest>& tests,
                                 const std::vector<ObdFaultSite>& faults) {
  return build_matrix(c, tests, faults,
                      [](FaultSimEngine& e, const PatternBlock& b,
                         const auto& fl, auto& det) {
                        e.block_obd(b, fl, det);
                      });
}

DetectionMatrix build_transition_matrix(
    const Circuit& c, const std::vector<TwoVectorTest>& tests,
    const std::vector<TransitionFault>& faults) {
  return build_matrix(c, tests, faults,
                      [](FaultSimEngine& e, const PatternBlock& b,
                         const auto& fl, auto& det) {
                        e.block_transition(b, fl, det);
                      });
}

// --- Coverage (fault-dropping campaigns) -------------------------------------

double obd_coverage(const Circuit& c, const std::vector<TwoVectorTest>& tests,
                    const std::vector<ObdFaultSite>& faults) {
  if (faults.empty()) return 1.0;
  FaultSimEngine engine(c);
  const auto campaign = engine.campaign_obd(tests, faults);
  return static_cast<double>(campaign.detected) /
         static_cast<double>(faults.size());
}

double stuck_coverage(const Circuit& c,
                      const std::vector<std::uint64_t>& patterns,
                      const std::vector<StuckFault>& faults) {
  if (faults.empty()) return 1.0;
  FaultSimEngine engine(c);
  const auto campaign = engine.campaign_stuck(patterns, faults);
  return static_cast<double>(campaign.detected) /
         static_cast<double>(faults.size());
}

double transition_coverage(const Circuit& c,
                           const std::vector<TwoVectorTest>& tests,
                           const std::vector<TransitionFault>& faults) {
  if (faults.empty()) return 1.0;
  FaultSimEngine engine(c);
  const auto campaign = engine.campaign_transition(tests, faults);
  return static_cast<double>(campaign.detected) /
         static_cast<double>(faults.size());
}

// --- Legacy reference implementations ----------------------------------------

namespace legacy {
namespace {

/// Frame-2 PO word with one net frozen: the original per-pattern path. The
/// pattern is broadcast to every lane and lane 0 read back — exactly the
/// 1/64 utilization the block engine eliminates.
std::uint64_t outputs_with_forced(const Circuit& c, std::uint64_t pattern,
                                  NetId forced, bool forced_value) {
  std::vector<std::uint64_t> pi(c.inputs().size());
  for (std::size_t i = 0; i < pi.size(); ++i)
    pi[i] = ((pattern >> i) & 1u) ? ~0ull : 0ull;
  const auto words = c.eval_words(pi, forced, forced_value ? ~0ull : 0ull);
  std::uint64_t out = 0;
  for (std::size_t i = 0; i < c.outputs().size(); ++i)
    if (words[static_cast<std::size_t>(c.outputs()[i])] & 1ull)
      out |= (1ull << i);
  return out;
}

}  // namespace

std::vector<bool> simulate_stuck_at(const Circuit& c, std::uint64_t pattern,
                                    const std::vector<StuckFault>& faults) {
  const std::uint64_t good = c.eval_outputs(pattern);
  std::vector<bool> detected(faults.size(), false);
  for (std::size_t i = 0; i < faults.size(); ++i) {
    const std::uint64_t bad =
        outputs_with_forced(c, pattern, faults[i].net, faults[i].value);
    detected[i] = bad != good;
  }
  return detected;
}

std::vector<bool> simulate_obd(const Circuit& c, const TwoVectorTest& test,
                               const std::vector<ObdFaultSite>& faults) {
  const std::vector<bool> v1_values = c.eval(test.v1);
  const std::vector<bool> v2_values = c.eval(test.v2);
  const std::uint64_t good2 = outputs_of(c, v2_values);
  std::vector<bool> detected(faults.size(), false);

  for (std::size_t i = 0; i < faults.size(); ++i) {
    const ObdFaultSite& f = faults[i];
    const auto& g = c.gate(f.gate_index);
    const auto topo = logic::gate_topology(g.type);
    if (!topo.has_value()) continue;
    const std::uint32_t lv1 = c.gate_input_bits(f.gate_index, v1_values);
    const std::uint32_t lv2 = c.gate_input_bits(f.gate_index, v2_values);
    if (!core::excites_obd(*topo, f.transistor,
                           cells::TwoVector{lv1, lv2}))
      continue;
    // Gross-delay: the excited gate's output stays at its frame-1 value.
    const bool old_out = topo->output(lv1);
    const std::uint64_t bad2 =
        outputs_with_forced(c, test.v2, g.output, old_out);
    detected[i] = bad2 != good2;
  }
  return detected;
}

std::vector<bool> simulate_transition(
    const Circuit& c, const TwoVectorTest& test,
    const std::vector<TransitionFault>& faults) {
  const std::vector<bool> v1_values = c.eval(test.v1);
  const std::vector<bool> v2_values = c.eval(test.v2);
  const std::uint64_t good2 = outputs_of(c, v2_values);
  std::vector<bool> detected(faults.size(), false);
  for (std::size_t i = 0; i < faults.size(); ++i) {
    const TransitionFault& f = faults[i];
    const bool o1 = v1_values[static_cast<std::size_t>(f.net)];
    const bool o2 = v2_values[static_cast<std::size_t>(f.net)];
    const bool excited = f.slow_to_rise ? (!o1 && o2) : (o1 && !o2);
    if (!excited) continue;
    const std::uint64_t bad2 = outputs_with_forced(c, test.v2, f.net, o1);
    detected[i] = bad2 != good2;
  }
  return detected;
}

}  // namespace legacy

}  // namespace obd::atpg

#include "atpg/faultsim.hpp"

#include <bit>

#include "core/excitation.hpp"

namespace obd::atpg {
namespace {

std::vector<bool> row0_bools(const DetectionMatrix& m) {
  std::vector<bool> out(m.n_faults, false);
  for (std::size_t f = 0; f < m.n_faults; ++f) out[f] = m.detects(0, f);
  return out;
}

}  // namespace

// --- One-test wrappers over the scheduler -----------------------------------
// The auto packing picks the fault-major axis here (one test, many faults):
// ceil(faults/64) full-circuit evaluations instead of one cone pass per
// fault — and every existing caller exercises that kernel.

std::vector<bool> simulate_stuck_at(const Circuit& c, const InputVec& pattern,
                                    const std::vector<StuckFault>& faults) {
  FaultSimScheduler sched(c);
  return row0_bools(sched.matrix_stuck({pattern}, faults));
}

std::vector<bool> simulate_obd(const Circuit& c, const TwoVectorTest& test,
                               const std::vector<ObdFaultSite>& faults) {
  FaultSimScheduler sched(c);
  return row0_bools(sched.matrix_obd({test}, faults));
}

std::vector<bool> simulate_transition(
    const Circuit& c, const TwoVectorTest& test,
    const std::vector<TransitionFault>& faults) {
  FaultSimScheduler sched(c);
  return row0_bools(sched.matrix_transition({test}, faults));
}

std::vector<bool> simulate_obd_x(const Circuit& c, const XTwoVectorTest& test,
                                 const std::vector<ObdFaultSite>& faults) {
  FaultSimEngine engine(c);
  return engine.definite_obd(test, faults);
}

bool forced_outputs_differ(const Circuit& c, const InputVec& pattern,
                           NetId net, bool value) {
  // Lightweight single-lane path (no engine / cone cache): callers such as
  // scan-test verification invoke this once per fault on a fresh circuit.
  std::vector<std::uint64_t> pi(c.inputs().size());
  for (std::size_t i = 0; i < pi.size(); ++i) pi[i] = pattern.bit(i) ? 1u : 0u;
  const auto good = c.eval_words(pi);
  const auto bad = c.eval_words(pi, net, value ? 1ull : 0ull);
  for (NetId po : c.outputs()) {
    const auto n = static_cast<std::size_t>(po);
    if ((good[n] ^ bad[n]) & 1u) return true;
  }
  return false;
}

bool simulate_obd_timing(const Circuit& c, const TwoVectorTest& test,
                         const ObdFaultSite& fault, double extra_delay,
                         bool stuck, double capture_time,
                         const logic::DelayLibrary& lib) {
  logic::TimingSimulator good_sim(c, lib);
  const logic::TimingRun good = good_sim.run_two_vector(test.v1, test.v2,
                                                        capture_time);
  logic::TimingSimulator bad_sim(c, lib);
  bad_sim.set_fault(fault, logic::ObdDelayEffect{extra_delay, stuck});
  const logic::TimingRun bad = bad_sim.run_two_vector(test.v1, test.v2,
                                                      capture_time);
  for (NetId po : c.outputs())
    if (good.captured_of(po) != bad.captured_of(po)) return true;
  return false;
}

// --- Detection matrices ------------------------------------------------------

DetectionMatrix build_stuck_matrix(const Circuit& c,
                                   const std::vector<InputVec>& patterns,
                                   const std::vector<StuckFault>& faults,
                                   const SimOptions& sim) {
  return FaultSimScheduler(c, sim).matrix_stuck(patterns, faults);
}

DetectionMatrix build_obd_matrix(const Circuit& c,
                                 const std::vector<TwoVectorTest>& tests,
                                 const std::vector<ObdFaultSite>& faults,
                                 const SimOptions& sim) {
  return FaultSimScheduler(c, sim).matrix_obd(tests, faults);
}

DetectionMatrix build_transition_matrix(
    const Circuit& c, const std::vector<TwoVectorTest>& tests,
    const std::vector<TransitionFault>& faults, const SimOptions& sim) {
  return FaultSimScheduler(c, sim).matrix_transition(tests, faults);
}

PrepassMarks mark_first_detections(const FaultSimEngine::Campaign& campaign,
                                   std::size_t n_tests) {
  PrepassMarks m;
  m.useful.assign(n_tests, 0);
  m.skip.assign(campaign.first_test.size(), 0);
  for (std::size_t f = 0; f < campaign.first_test.size(); ++f) {
    const int t = campaign.first_test[f];
    if (t < 0) continue;
    m.useful[static_cast<std::size_t>(t)] = 1;
    m.skip[f] = 1;
    ++m.found;
  }
  return m;
}

// --- Coverage (fault-dropping campaigns) -------------------------------------

double obd_coverage(const Circuit& c, const std::vector<TwoVectorTest>& tests,
                    const std::vector<ObdFaultSite>& faults,
                    const SimOptions& sim) {
  if (faults.empty()) return 1.0;
  const auto campaign = FaultSimScheduler(c, sim).campaign_obd(tests, faults);
  return static_cast<double>(campaign.detected) /
         static_cast<double>(faults.size());
}

double stuck_coverage(const Circuit& c,
                      const std::vector<InputVec>& patterns,
                      const std::vector<StuckFault>& faults,
                      const SimOptions& sim) {
  if (faults.empty()) return 1.0;
  const auto campaign =
      FaultSimScheduler(c, sim).campaign_stuck(patterns, faults);
  return static_cast<double>(campaign.detected) /
         static_cast<double>(faults.size());
}

double transition_coverage(const Circuit& c,
                           const std::vector<TwoVectorTest>& tests,
                           const std::vector<TransitionFault>& faults,
                           const SimOptions& sim) {
  if (faults.empty()) return 1.0;
  const auto campaign =
      FaultSimScheduler(c, sim).campaign_transition(tests, faults);
  return static_cast<double>(campaign.detected) /
         static_cast<double>(faults.size());
}

// --- Legacy reference implementations ----------------------------------------

namespace legacy {
namespace {

/// Frame-2 PO word with one net frozen: the original per-pattern path. The
/// pattern is broadcast to every lane and lane 0 read back — exactly the
/// 1/64 utilization the block engine eliminates.
InputVec outputs_with_forced(const Circuit& c, const InputVec& pattern,
                             NetId forced, bool forced_value) {
  std::vector<std::uint64_t> pi(c.inputs().size());
  for (std::size_t i = 0; i < pi.size(); ++i)
    pi[i] = pattern.bit(i) ? ~0ull : 0ull;
  const auto words = c.eval_words(pi, forced, forced_value ? ~0ull : 0ull);
  InputVec out;
  for (std::size_t i = 0; i < c.outputs().size(); ++i)
    if (words[static_cast<std::size_t>(c.outputs()[i])] & 1ull) out.set_bit(i);
  return out;
}

}  // namespace

std::vector<bool> simulate_stuck_at(const Circuit& c, const InputVec& pattern,
                                    const std::vector<StuckFault>& faults) {
  const InputVec good = c.eval_outputs(pattern);
  std::vector<bool> detected(faults.size(), false);
  for (std::size_t i = 0; i < faults.size(); ++i) {
    const InputVec bad =
        outputs_with_forced(c, pattern, faults[i].net, faults[i].value);
    detected[i] = bad != good;
  }
  return detected;
}

std::vector<bool> simulate_obd(const Circuit& c, const TwoVectorTest& test,
                               const std::vector<ObdFaultSite>& faults) {
  const std::vector<bool> v1_values = c.eval(test.v1);
  const std::vector<bool> v2_values = c.eval(test.v2);
  const InputVec good2 = c.pack_outputs(v2_values);
  std::vector<bool> detected(faults.size(), false);

  for (std::size_t i = 0; i < faults.size(); ++i) {
    const ObdFaultSite& f = faults[i];
    const auto& g = c.gate(f.gate_index);
    const auto topo = logic::gate_topology(g.type);
    if (!topo.has_value()) continue;
    const std::uint32_t lv1 = c.gate_input_bits(f.gate_index, v1_values);
    const std::uint32_t lv2 = c.gate_input_bits(f.gate_index, v2_values);
    if (!core::excites_obd(*topo, f.transistor,
                           cells::TwoVector{lv1, lv2}))
      continue;
    // Gross-delay: the excited gate's output stays at its frame-1 value.
    const bool old_out = topo->output(lv1);
    const InputVec bad2 = outputs_with_forced(c, test.v2, g.output, old_out);
    detected[i] = bad2 != good2;
  }
  return detected;
}

std::vector<bool> simulate_transition(
    const Circuit& c, const TwoVectorTest& test,
    const std::vector<TransitionFault>& faults) {
  const std::vector<bool> v1_values = c.eval(test.v1);
  const std::vector<bool> v2_values = c.eval(test.v2);
  const InputVec good2 = c.pack_outputs(v2_values);
  std::vector<bool> detected(faults.size(), false);
  for (std::size_t i = 0; i < faults.size(); ++i) {
    const TransitionFault& f = faults[i];
    const bool o1 = v1_values[static_cast<std::size_t>(f.net)];
    const bool o2 = v2_values[static_cast<std::size_t>(f.net)];
    const bool excited = f.slow_to_rise ? (!o1 && o2) : (o1 && !o2);
    if (!excited) continue;
    const InputVec bad2 = outputs_with_forced(c, test.v2, f.net, o1);
    detected[i] = bad2 != good2;
  }
  return detected;
}

}  // namespace legacy

}  // namespace obd::atpg

#include "atpg/faultsim.hpp"

#include "core/excitation.hpp"

namespace obd::atpg {
namespace {

std::uint64_t outputs_of(const Circuit& c, const std::vector<bool>& values) {
  std::uint64_t out = 0;
  for (std::size_t i = 0; i < c.outputs().size(); ++i)
    if (values[static_cast<std::size_t>(c.outputs()[i])]) out |= (1ull << i);
  return out;
}

/// Frame-2 PO word with one net frozen (bit-parallel over 64 patterns, but
/// we use it single-pattern here; words are all-ones or all-zeros).
std::uint64_t outputs_with_forced(const Circuit& c, std::uint64_t pattern,
                                  NetId forced, bool forced_value) {
  std::vector<std::uint64_t> pi(c.inputs().size());
  for (std::size_t i = 0; i < pi.size(); ++i)
    pi[i] = ((pattern >> i) & 1u) ? ~0ull : 0ull;
  const auto words =
      c.eval_words(pi, forced, forced_value ? ~0ull : 0ull);
  std::uint64_t out = 0;
  for (std::size_t i = 0; i < c.outputs().size(); ++i)
    if (words[static_cast<std::size_t>(c.outputs()[i])] & 1ull)
      out |= (1ull << i);
  return out;
}

}  // namespace

std::vector<bool> simulate_stuck_at(const Circuit& c, std::uint64_t pattern,
                                    const std::vector<StuckFault>& faults) {
  const std::uint64_t good = c.eval_outputs(pattern);
  std::vector<bool> detected(faults.size(), false);
  for (std::size_t i = 0; i < faults.size(); ++i) {
    const std::uint64_t bad =
        outputs_with_forced(c, pattern, faults[i].net, faults[i].value);
    detected[i] = bad != good;
  }
  return detected;
}

std::vector<bool> simulate_obd(const Circuit& c, const TwoVectorTest& test,
                               const std::vector<ObdFaultSite>& faults) {
  const std::vector<bool> v1_values = c.eval(test.v1);
  const std::vector<bool> v2_values = c.eval(test.v2);
  const std::uint64_t good2 = outputs_of(c, v2_values);
  std::vector<bool> detected(faults.size(), false);

  for (std::size_t i = 0; i < faults.size(); ++i) {
    const ObdFaultSite& f = faults[i];
    const auto& g = c.gate(f.gate_index);
    const auto topo = logic::gate_topology(g.type);
    if (!topo.has_value()) continue;
    const std::uint32_t lv1 = c.gate_input_bits(f.gate_index, v1_values);
    const std::uint32_t lv2 = c.gate_input_bits(f.gate_index, v2_values);
    if (!core::excites_obd(*topo, f.transistor,
                           cells::TwoVector{lv1, lv2}))
      continue;
    // Gross-delay: the excited gate's output stays at its frame-1 value.
    const bool old_out = topo->output(lv1);
    const std::uint64_t bad2 =
        outputs_with_forced(c, test.v2, g.output, old_out);
    detected[i] = bad2 != good2;
  }
  return detected;
}

std::vector<bool> simulate_transition(
    const Circuit& c, const TwoVectorTest& test,
    const std::vector<TransitionFault>& faults) {
  const std::vector<bool> v1_values = c.eval(test.v1);
  const std::vector<bool> v2_values = c.eval(test.v2);
  const std::uint64_t good2 = outputs_of(c, v2_values);
  std::vector<bool> detected(faults.size(), false);
  for (std::size_t i = 0; i < faults.size(); ++i) {
    const TransitionFault& f = faults[i];
    const bool o1 = v1_values[static_cast<std::size_t>(f.net)];
    const bool o2 = v2_values[static_cast<std::size_t>(f.net)];
    const bool excited = f.slow_to_rise ? (!o1 && o2) : (o1 && !o2);
    if (!excited) continue;
    const std::uint64_t bad2 = outputs_with_forced(c, test.v2, f.net, o1);
    detected[i] = bad2 != good2;
  }
  return detected;
}

bool simulate_obd_timing(const Circuit& c, const TwoVectorTest& test,
                         const ObdFaultSite& fault, double extra_delay,
                         bool stuck, double capture_time,
                         const logic::DelayLibrary& lib) {
  logic::TimingSimulator good_sim(c, lib);
  const logic::TimingRun good = good_sim.run_two_vector(test.v1, test.v2,
                                                        capture_time);
  logic::TimingSimulator bad_sim(c, lib);
  bad_sim.set_fault(fault, logic::ObdDelayEffect{extra_delay, stuck});
  const logic::TimingRun bad = bad_sim.run_two_vector(test.v1, test.v2,
                                                      capture_time);
  for (NetId po : c.outputs())
    if (good.captured_of(po) != bad.captured_of(po)) return true;
  return false;
}

namespace {

template <typename Fault, typename Sim>
DetectionMatrix build_matrix(const std::vector<TwoVectorTest>& tests,
                             const std::vector<Fault>& faults, Sim sim) {
  DetectionMatrix m;
  m.detects.reserve(tests.size());
  m.covered.assign(faults.size(), false);
  for (const auto& t : tests) {
    m.detects.push_back(sim(t));
    const auto& row = m.detects.back();
    for (std::size_t i = 0; i < faults.size(); ++i)
      if (row[i] && !m.covered[i]) {
        m.covered[i] = true;
        ++m.covered_count;
      }
  }
  return m;
}

}  // namespace

DetectionMatrix build_obd_matrix(const Circuit& c,
                                 const std::vector<TwoVectorTest>& tests,
                                 const std::vector<ObdFaultSite>& faults) {
  return build_matrix(tests, faults, [&](const TwoVectorTest& t) {
    return simulate_obd(c, t, faults);
  });
}

DetectionMatrix build_transition_matrix(
    const Circuit& c, const std::vector<TwoVectorTest>& tests,
    const std::vector<TransitionFault>& faults) {
  return build_matrix(tests, faults, [&](const TwoVectorTest& t) {
    return simulate_transition(c, t, faults);
  });
}

double obd_coverage(const Circuit& c, const std::vector<TwoVectorTest>& tests,
                    const std::vector<ObdFaultSite>& faults) {
  if (faults.empty()) return 1.0;
  const DetectionMatrix m = build_obd_matrix(c, tests, faults);
  return static_cast<double>(m.covered_count) /
         static_cast<double>(faults.size());
}

}  // namespace obd::atpg

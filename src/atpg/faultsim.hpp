// Fault simulation: which faults does a test (set) detect?
//
// Detection criteria:
//  - stuck-at: PO mismatch between good and faulty circuits under one vector;
//  - OBD / transition (gross-delay): the fault is excited by the local
//    two-vector at its gate AND freezing the gate output at its frame-1
//    value changes some frame-2 PO. This assumes the added delay exceeds
//    the capture window — the conservative end of Sec. 4.2;
//  - OBD timing-aware: event-driven simulation with a finite extra delay
//    and a concrete capture time — the fine-grained end of Sec. 4.2, used
//    for window-of-opportunity studies.
//
// All set-level work runs through the FaultSimScheduler
// (faultsim_engine.hpp), which picks a packing axis per call shape — 64
// patterns per word with per-fault cone propagation, or 64 faults per word
// against one pattern — and optionally shards pattern blocks across worker
// threads, with results bit-identical at any thread count. The single-test
// functions below are one-test wrappers kept for API compatibility;
// `legacy::` holds the original one-fault-one-pattern reference
// implementations for equivalence tests and benchmarks.
#pragma once

#include "atpg/faults.hpp"
#include "atpg/faultsim_engine.hpp"
#include "atpg/patterns.hpp"

namespace obd::atpg {

/// Per-fault detection flags for one single-vector test.
std::vector<bool> simulate_stuck_at(const Circuit& c, const InputVec& pattern,
                                    const std::vector<StuckFault>& faults);

/// Per-fault detection flags for one two-vector test against OBD faults.
std::vector<bool> simulate_obd(const Circuit& c, const TwoVectorTest& test,
                               const std::vector<ObdFaultSite>& faults);

/// Per-fault detection flags for classical transition faults.
std::vector<bool> simulate_transition(const Circuit& c,
                                      const TwoVectorTest& test,
                                      const std::vector<TransitionFault>& faults);

/// Definite OBD detections under a partially-specified test: detections that
/// hold for *every* fill of the X (non-care) bits, proven by the 3-valued
/// block evaluator. The workhorse of X-overlap test compaction.
std::vector<bool> simulate_obd_x(const Circuit& c, const XTwoVectorTest& test,
                                 const std::vector<ObdFaultSite>& faults);

/// Does forcing `net` to `value` under `pattern` change any PO? The
/// single-pattern building block shared with scan-test verification.
bool forced_outputs_differ(const Circuit& c, const InputVec& pattern,
                           NetId net, bool value);

/// Timing-aware OBD detection of a single fault: event-driven run with
/// `extra_delay` added to excited transitions (or a stall when `stuck`),
/// sampled at `capture_time`. Returns true when a captured PO differs from
/// the fault-free captured value.
bool simulate_obd_timing(const Circuit& c, const TwoVectorTest& test,
                         const ObdFaultSite& fault, double extra_delay,
                         bool stuck, double capture_time,
                         const logic::DelayLibrary& lib = {});

// DetectionMatrix itself lives in faultsim_engine.hpp (the scheduler builds
// it); the builders below pick packing and threads from `sim`.

DetectionMatrix build_stuck_matrix(const Circuit& c,
                                   const std::vector<InputVec>& patterns,
                                   const std::vector<StuckFault>& faults,
                                   const SimOptions& sim = {});

DetectionMatrix build_obd_matrix(const Circuit& c,
                                 const std::vector<TwoVectorTest>& tests,
                                 const std::vector<ObdFaultSite>& faults,
                                 const SimOptions& sim = {});

DetectionMatrix build_transition_matrix(
    const Circuit& c, const std::vector<TwoVectorTest>& tests,
    const std::vector<TransitionFault>& faults, const SimOptions& sim = {});

/// First-detection bookkeeping of a random-phase prepass campaign: which
/// tests first-detect some fault (and so join the returned test set) and
/// which faults are detected (and so skip the deterministic search).
/// Shared by the combinational (twoframe.cpp) and scan (scan.cpp) flows.
struct PrepassMarks {
  std::vector<std::uint8_t> useful;  // per test: first detector of some fault
  std::vector<std::uint8_t> skip;    // per fault: detected by the prepass
  int found = 0;
};
PrepassMarks mark_first_detections(const FaultSimEngine::Campaign& campaign,
                                   std::size_t n_tests);

/// Coverage of a fault list by a test set (fraction of faults detected).
/// Runs a fault-dropping scheduler campaign — no matrix is materialized.
double obd_coverage(const Circuit& c, const std::vector<TwoVectorTest>& tests,
                    const std::vector<ObdFaultSite>& faults,
                    const SimOptions& sim = {});
double stuck_coverage(const Circuit& c,
                      const std::vector<InputVec>& patterns,
                      const std::vector<StuckFault>& faults,
                      const SimOptions& sim = {});
double transition_coverage(const Circuit& c,
                           const std::vector<TwoVectorTest>& tests,
                           const std::vector<TransitionFault>& faults,
                           const SimOptions& sim = {});

namespace legacy {

/// Reference one-fault-one-pattern simulators (full-circuit re-evaluation
/// per fault per test). Kept as the equivalence oracle for the block engine
/// and as the baseline in the old-vs-new benchmarks.
std::vector<bool> simulate_stuck_at(const Circuit& c, const InputVec& pattern,
                                    const std::vector<StuckFault>& faults);
std::vector<bool> simulate_obd(const Circuit& c, const TwoVectorTest& test,
                               const std::vector<ObdFaultSite>& faults);
std::vector<bool> simulate_transition(
    const Circuit& c, const TwoVectorTest& test,
    const std::vector<TransitionFault>& faults);

}  // namespace legacy

}  // namespace obd::atpg

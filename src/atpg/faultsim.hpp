// Fault simulation: which faults does a test (set) detect?
//
// Detection criteria:
//  - stuck-at: PO mismatch between good and faulty circuits under one vector;
//  - OBD / transition (gross-delay): the fault is excited by the local
//    two-vector at its gate AND freezing the gate output at its frame-1
//    value changes some frame-2 PO. This assumes the added delay exceeds
//    the capture window — the conservative end of Sec. 4.2;
//  - OBD timing-aware: event-driven simulation with a finite extra delay
//    and a concrete capture time — the fine-grained end of Sec. 4.2, used
//    for window-of-opportunity studies.
#pragma once

#include "atpg/faults.hpp"
#include "atpg/patterns.hpp"

namespace obd::atpg {

/// Per-fault detection flags for one single-vector test.
std::vector<bool> simulate_stuck_at(const Circuit& c, std::uint64_t pattern,
                                    const std::vector<StuckFault>& faults);

/// Per-fault detection flags for one two-vector test against OBD faults.
std::vector<bool> simulate_obd(const Circuit& c, const TwoVectorTest& test,
                               const std::vector<ObdFaultSite>& faults);

/// Per-fault detection flags for classical transition faults.
std::vector<bool> simulate_transition(const Circuit& c,
                                      const TwoVectorTest& test,
                                      const std::vector<TransitionFault>& faults);

/// Timing-aware OBD detection of a single fault: event-driven run with
/// `extra_delay` added to excited transitions (or a stall when `stuck`),
/// sampled at `capture_time`. Returns true when a captured PO differs from
/// the fault-free captured value.
bool simulate_obd_timing(const Circuit& c, const TwoVectorTest& test,
                         const ObdFaultSite& fault, double extra_delay,
                         bool stuck, double capture_time,
                         const logic::DelayLibrary& lib = {});

/// Detection matrix: row per test, bitset over the fault list.
struct DetectionMatrix {
  std::vector<std::vector<bool>> detects;  // [test][fault]
  /// Faults detected by at least one test.
  std::vector<bool> covered;
  int covered_count = 0;
};

DetectionMatrix build_obd_matrix(const Circuit& c,
                                 const std::vector<TwoVectorTest>& tests,
                                 const std::vector<ObdFaultSite>& faults);

DetectionMatrix build_transition_matrix(
    const Circuit& c, const std::vector<TwoVectorTest>& tests,
    const std::vector<TransitionFault>& faults);

/// Coverage of a fault list by a test set (fraction of faults detected).
double obd_coverage(const Circuit& c, const std::vector<TwoVectorTest>& tests,
                    const std::vector<ObdFaultSite>& faults);

}  // namespace obd::atpg

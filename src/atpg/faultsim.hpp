// Fault simulation: which faults does a test (set) detect?
//
// Detection criteria:
//  - stuck-at: PO mismatch between good and faulty circuits under one vector;
//  - OBD / transition (gross-delay): the fault is excited by the local
//    two-vector at its gate AND freezing the gate output at its frame-1
//    value changes some frame-2 PO. This assumes the added delay exceeds
//    the capture window — the conservative end of Sec. 4.2;
//  - OBD timing-aware: event-driven simulation with a finite extra delay
//    and a concrete capture time — the fine-grained end of Sec. 4.2, used
//    for window-of-opportunity studies.
//
// All set-level work runs on the bit-parallel FaultSimEngine
// (faultsim_engine.hpp): 64 patterns per word, one good evaluation per
// block, per-fault fanout-cone propagation, optional fault dropping. The
// single-test functions below are one-lane wrappers kept for API
// compatibility; `legacy::` holds the original one-fault-one-pattern
// reference implementations for equivalence tests and benchmarks.
#pragma once

#include "atpg/faults.hpp"
#include "atpg/faultsim_engine.hpp"
#include "atpg/patterns.hpp"

namespace obd::atpg {

/// Per-fault detection flags for one single-vector test.
std::vector<bool> simulate_stuck_at(const Circuit& c, std::uint64_t pattern,
                                    const std::vector<StuckFault>& faults);

/// Per-fault detection flags for one two-vector test against OBD faults.
std::vector<bool> simulate_obd(const Circuit& c, const TwoVectorTest& test,
                               const std::vector<ObdFaultSite>& faults);

/// Per-fault detection flags for classical transition faults.
std::vector<bool> simulate_transition(const Circuit& c,
                                      const TwoVectorTest& test,
                                      const std::vector<TransitionFault>& faults);

/// Does forcing `net` to `value` under `pattern` change any PO? The
/// single-pattern building block shared with scan-test verification.
bool forced_outputs_differ(const Circuit& c, std::uint64_t pattern, NetId net,
                           bool value);

/// Timing-aware OBD detection of a single fault: event-driven run with
/// `extra_delay` added to excited transitions (or a stall when `stuck`),
/// sampled at `capture_time`. Returns true when a captured PO differs from
/// the fault-free captured value.
bool simulate_obd_timing(const Circuit& c, const TwoVectorTest& test,
                         const ObdFaultSite& fault, double extra_delay,
                         bool stuck, double capture_time,
                         const logic::DelayLibrary& lib = {});

/// Detection matrix: row per test, bit-packed over the fault list (64
/// faults per word). Built block-by-block by the engine; consumed directly
/// by compaction, n-detect selection, and the diagnosis dictionary.
struct DetectionMatrix {
  std::size_t n_tests = 0;
  std::size_t n_faults = 0;
  std::size_t words_per_row = 0;
  /// Row-major packed bits: rows[t * words_per_row + (f >> 6)] bit (f & 63).
  std::vector<std::uint64_t> rows;
  /// Faults detected by at least one test.
  std::vector<bool> covered;
  int covered_count = 0;

  bool detects(std::size_t test, std::size_t fault) const {
    return (rows[test * words_per_row + (fault >> 6)] >> (fault & 63)) & 1u;
  }
  const std::uint64_t* row(std::size_t test) const {
    return rows.data() + test * words_per_row;
  }
  /// Detection count of one test (row popcount).
  std::size_t row_count(std::size_t test) const;
};

DetectionMatrix build_stuck_matrix(const Circuit& c,
                                   const std::vector<std::uint64_t>& patterns,
                                   const std::vector<StuckFault>& faults);

DetectionMatrix build_obd_matrix(const Circuit& c,
                                 const std::vector<TwoVectorTest>& tests,
                                 const std::vector<ObdFaultSite>& faults);

DetectionMatrix build_transition_matrix(
    const Circuit& c, const std::vector<TwoVectorTest>& tests,
    const std::vector<TransitionFault>& faults);

/// Coverage of a fault list by a test set (fraction of faults detected).
/// Runs a fault-dropping engine campaign — no matrix is materialized.
double obd_coverage(const Circuit& c, const std::vector<TwoVectorTest>& tests,
                    const std::vector<ObdFaultSite>& faults);
double stuck_coverage(const Circuit& c,
                      const std::vector<std::uint64_t>& patterns,
                      const std::vector<StuckFault>& faults);
double transition_coverage(const Circuit& c,
                           const std::vector<TwoVectorTest>& tests,
                           const std::vector<TransitionFault>& faults);

namespace legacy {

/// Reference one-fault-one-pattern simulators (full-circuit re-evaluation
/// per fault per test). Kept as the equivalence oracle for the block engine
/// and as the baseline in the old-vs-new benchmarks.
std::vector<bool> simulate_stuck_at(const Circuit& c, std::uint64_t pattern,
                                    const std::vector<StuckFault>& faults);
std::vector<bool> simulate_obd(const Circuit& c, const TwoVectorTest& test,
                               const std::vector<ObdFaultSite>& faults);
std::vector<bool> simulate_transition(
    const Circuit& c, const TwoVectorTest& test,
    const std::vector<TransitionFault>& faults);

}  // namespace legacy

}  // namespace obd::atpg

#include "atpg/faultsim_engine.hpp"

#include <algorithm>
#include <bit>
#include <cassert>

#include "core/excitation.hpp"

namespace obd::atpg {

void PatternBlock::clear() {
  size_ = 0;
  tests_.clear();
  std::fill(pi1_.begin(), pi1_.end(), 0);
  std::fill(pi2_.begin(), pi2_.end(), 0);
}

void PatternBlock::push(const TwoVectorTest& t) {
  assert(size_ < kLanes);
  const std::uint64_t lane = 1ull << size_;
  for (std::size_t i = 0; i < pi1_.size(); ++i) {
    if ((t.v1 >> i) & 1u) pi1_[i] |= lane;
    if ((t.v2 >> i) & 1u) pi2_[i] |= lane;
  }
  tests_.push_back(t);
  ++size_;
}

std::vector<PatternBlock> PatternBlock::pack(
    const Circuit& c, const std::vector<TwoVectorTest>& tests) {
  std::vector<PatternBlock> blocks;
  for (const auto& t : tests) {
    if (blocks.empty() || blocks.back().full()) blocks.emplace_back(c);
    blocks.back().push(t);
  }
  return blocks;
}

FaultSimEngine::FaultSimEngine(const Circuit& c)
    : c_(c),
      topo_pos_(c.num_gates(), 0),
      cones_(c.num_nets()),
      bad_(c.num_nets(), 0) {
  const auto& order = c.topo_order();
  for (std::size_t rank = 0; rank < order.size(); ++rank)
    topo_pos_[static_cast<std::size_t>(order[rank])] = static_cast<int>(rank);
}

const FaultSimEngine::Cone& FaultSimEngine::cone_of(NetId n) {
  auto& slot = cones_[static_cast<std::size_t>(n)];
  if (slot) return *slot;
  slot = std::make_unique<Cone>();
  Cone& cone = *slot;
  cone.member.assign(c_.num_nets(), 0);
  cone.member[static_cast<std::size_t>(n)] = 1;

  // BFS over fanout; gates collected once, then sorted by topo rank.
  std::vector<std::uint8_t> gate_seen(c_.num_gates(), 0);
  std::vector<NetId> frontier{n};
  while (!frontier.empty()) {
    const NetId net = frontier.back();
    frontier.pop_back();
    for (int g : c_.fanout_of(net)) {
      if (gate_seen[static_cast<std::size_t>(g)]) continue;
      gate_seen[static_cast<std::size_t>(g)] = 1;
      cone.gates.push_back(g);
      const NetId out = c_.gate(g).output;
      if (!cone.member[static_cast<std::size_t>(out)]) {
        cone.member[static_cast<std::size_t>(out)] = 1;
        frontier.push_back(out);
      }
    }
  }
  std::sort(cone.gates.begin(), cone.gates.end(), [this](int a, int b) {
    return topo_pos_[static_cast<std::size_t>(a)] <
           topo_pos_[static_cast<std::size_t>(b)];
  });

  for (NetId po : c_.outputs())
    if (cone.member[static_cast<std::size_t>(po)]) cone.po_nets.push_back(po);
  std::sort(cone.po_nets.begin(), cone.po_nets.end());
  cone.po_nets.erase(std::unique(cone.po_nets.begin(), cone.po_nets.end()),
                     cone.po_nets.end());
  return cone;
}

std::uint64_t FaultSimEngine::forced_diff(
    const std::vector<std::uint64_t>& good, NetId forced,
    std::uint64_t forced_word) {
  const Cone& cone = cone_of(forced);
  bad_[static_cast<std::size_t>(forced)] = forced_word;
  std::uint64_t ins[8];
  for (int gi : cone.gates) {
    const auto& gate = c_.gate(gi);
    for (std::size_t k = 0; k < gate.inputs.size(); ++k) {
      const auto n = static_cast<std::size_t>(gate.inputs[k]);
      ins[k] = cone.member[n] ? bad_[n] : good[n];
    }
    bad_[static_cast<std::size_t>(gate.output)] =
        logic::gate_eval_words(gate.type, ins);
  }
  std::uint64_t diff = 0;
  for (NetId po : cone.po_nets) {
    const auto n = static_cast<std::size_t>(po);
    diff |= bad_[n] ^ good[n];
  }
  return diff;
}

void FaultSimEngine::block_stuck(const PatternBlock& b,
                                 const std::vector<StuckFault>& faults,
                                 std::vector<std::uint64_t>& detect,
                                 const std::vector<std::uint8_t>* active) {
  detect.assign(faults.size(), 0);
  c_.eval_words_into(b.pi2(), good2_);
  const std::uint64_t lanes = b.lane_mask();
  for (std::size_t i = 0; i < faults.size(); ++i) {
    if (active && !(*active)[i]) continue;
    const StuckFault& f = faults[i];
    const std::uint64_t value_word = f.value ? ~0ull : 0ull;
    // Lanes where the fault does not even change its own net are unaffected
    // (lane-independent logic), so an all-equal block needs no cone pass.
    if (((good2_[static_cast<std::size_t>(f.net)] ^ value_word) & lanes) == 0)
      continue;
    detect[i] = forced_diff(good2_, f.net, value_word) & lanes;
  }
}

void FaultSimEngine::block_transition(const PatternBlock& b,
                                      const std::vector<TransitionFault>& faults,
                                      std::vector<std::uint64_t>& detect,
                                      const std::vector<std::uint8_t>* active) {
  detect.assign(faults.size(), 0);
  c_.eval_words_into(b.pi1(), good1_);
  c_.eval_words_into(b.pi2(), good2_);
  const std::uint64_t lanes = b.lane_mask();
  for (std::size_t i = 0; i < faults.size(); ++i) {
    if (active && !(*active)[i]) continue;
    const TransitionFault& f = faults[i];
    const std::uint64_t o1 = good1_[static_cast<std::size_t>(f.net)];
    const std::uint64_t o2 = good2_[static_cast<std::size_t>(f.net)];
    const std::uint64_t excited =
        (f.slow_to_rise ? (~o1 & o2) : (o1 & ~o2)) & lanes;
    if (!excited) continue;
    // The slow output holds its per-lane frame-1 value during capture.
    detect[i] = forced_diff(good2_, f.net, o1) & excited;
  }
}

const std::array<std::uint16_t, 16>& FaultSimEngine::obd_table(
    logic::GateType t, const cells::TransistorRef& tr) {
  const auto key = std::make_tuple(static_cast<int>(t), tr.pmos, tr.input);
  auto it = obd_tables_.find(key);
  if (it != obd_tables_.end()) return it->second;
  std::array<std::uint16_t, 16> table{};
  const auto topo = logic::gate_topology(t);
  if (topo.has_value()) {
    const int n_vec = 1 << topo->num_inputs;
    for (int v1 = 0; v1 < n_vec; ++v1)
      for (int v2 = 0; v2 < n_vec; ++v2)
        if (core::excites_obd(*topo, tr,
                              cells::TwoVector{static_cast<std::uint32_t>(v1),
                                               static_cast<std::uint32_t>(v2)}))
          table[static_cast<std::size_t>(v1)] |=
              static_cast<std::uint16_t>(1u << v2);
  }
  return obd_tables_.emplace(key, table).first->second;
}

void FaultSimEngine::block_obd(const PatternBlock& b,
                               const std::vector<ObdFaultSite>& faults,
                               std::vector<std::uint64_t>& detect,
                               const std::vector<std::uint8_t>* active) {
  detect.assign(faults.size(), 0);
  c_.eval_words_into(b.pi1(), good1_);
  c_.eval_words_into(b.pi2(), good2_);
  const std::uint64_t lanes = b.lane_mask();
  for (std::size_t i = 0; i < faults.size(); ++i) {
    if (active && !(*active)[i]) continue;
    const ObdFaultSite& f = faults[i];
    const auto& g = c_.gate(f.gate_index);
    if (!logic::is_primitive_cmos(g.type)) continue;
    const auto& table = obd_table(g.type, f.transistor);

    // Per-lane local two-vectors at the gate, probed against the table.
    const std::size_t n_in = g.inputs.size();
    std::uint64_t in1[4], in2[4];
    for (std::size_t k = 0; k < n_in; ++k) {
      in1[k] = good1_[static_cast<std::size_t>(g.inputs[k])];
      in2[k] = good2_[static_cast<std::size_t>(g.inputs[k])];
    }
    std::uint64_t excited = 0;
    for (int lane = 0; lane < b.size(); ++lane) {
      std::uint32_t lv1 = 0, lv2 = 0;
      for (std::size_t k = 0; k < n_in; ++k) {
        lv1 |= static_cast<std::uint32_t>((in1[k] >> lane) & 1u) << k;
        lv2 |= static_cast<std::uint32_t>((in2[k] >> lane) & 1u) << k;
      }
      if ((table[lv1] >> lv2) & 1u) excited |= 1ull << lane;
    }
    if (!excited) continue;
    // Gross-delay: the excited gate output keeps its per-lane frame-1 value.
    const std::uint64_t old_out = good1_[static_cast<std::size_t>(g.output)];
    detect[i] = forced_diff(good2_, g.output, old_out) & excited & lanes;
  }
}

template <typename Fault, typename BlockFn>
FaultSimEngine::Campaign FaultSimEngine::run_campaign(
    const std::vector<TwoVectorTest>& tests, const std::vector<Fault>& faults,
    bool drop_detected, BlockFn block_fn) {
  Campaign result;
  result.first_test.assign(faults.size(), -1);
  std::vector<std::uint8_t> active(faults.size(), 1);
  std::vector<std::uint64_t> detect;
  PatternBlock block(c_);
  int base = 0;
  for (std::size_t t = 0; t <= tests.size(); ++t) {
    if (t < tests.size()) {
      block.push(tests[t]);
      if (!block.full() && t + 1 < tests.size()) continue;
    }
    if (block.size() == 0) break;
    for (std::uint8_t a : active) result.fault_block_evals += a;
    block_fn(block, faults, detect, &active);
    for (std::size_t i = 0; i < faults.size(); ++i) {
      if (!detect[i]) continue;
      if (result.first_test[i] < 0) {
        result.first_test[i] =
            base + std::countr_zero(detect[i]);
        ++result.detected;
      }
      if (drop_detected) active[i] = 0;
    }
    base += block.size();
    block.clear();
  }
  return result;
}

FaultSimEngine::Campaign FaultSimEngine::campaign_stuck(
    const std::vector<std::uint64_t>& patterns,
    const std::vector<StuckFault>& faults, bool drop_detected) {
  std::vector<TwoVectorTest> tests;
  tests.reserve(patterns.size());
  for (std::uint64_t p : patterns) tests.push_back({p, p});
  return run_campaign(tests, faults, drop_detected,
                      [this](const PatternBlock& b, const auto& fl, auto& det,
                             const auto* act) { block_stuck(b, fl, det, act); });
}

FaultSimEngine::Campaign FaultSimEngine::campaign_transition(
    const std::vector<TwoVectorTest>& tests,
    const std::vector<TransitionFault>& faults, bool drop_detected) {
  return run_campaign(tests, faults, drop_detected,
                      [this](const PatternBlock& b, const auto& fl, auto& det,
                             const auto* act) {
                        block_transition(b, fl, det, act);
                      });
}

FaultSimEngine::Campaign FaultSimEngine::campaign_obd(
    const std::vector<TwoVectorTest>& tests,
    const std::vector<ObdFaultSite>& faults, bool drop_detected) {
  return run_campaign(tests, faults, drop_detected,
                      [this](const PatternBlock& b, const auto& fl, auto& det,
                             const auto* act) { block_obd(b, fl, det, act); });
}

}  // namespace obd::atpg

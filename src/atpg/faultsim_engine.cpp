#include "atpg/faultsim_engine.hpp"

#include <algorithm>
#include <atomic>
#include <barrier>
#include <bit>
#include <cassert>
#include <numeric>
#include <thread>

#include "core/excitation.hpp"
#include "logic/laneblock.hpp"
#include "obs/trace.hpp"

namespace obd::atpg {

std::size_t DetectionMatrix::row_count(std::size_t test) const {
  std::size_t n = 0;
  const std::uint64_t* r = row(test);
  for (std::size_t w = 0; w < words_per_row; ++w)
    n += static_cast<std::size_t>(std::popcount(r[w]));
  return n;
}

void PatternBlock::clear() {
  size_ = 0;
  tests_.clear();
  std::fill(pi1_.begin(), pi1_.end(), 0);
  std::fill(pi2_.begin(), pi2_.end(), 0);
}

void PatternBlock::push(const TwoVectorTest& t) {
  assert(size_ < capacity());
  const auto W = static_cast<std::size_t>(lane_words_);
  const auto word = static_cast<std::size_t>(size_) >> 6;
  const std::uint64_t lane = 1ull << (size_ & 63);
  const std::size_t n_pi = pi1_.size() / W;
  logic::for_each_set_bit(
      t.v1, n_pi, [&](std::size_t pi) { pi1_[pi * W + word] |= lane; });
  logic::for_each_set_bit(
      t.v2, n_pi, [&](std::size_t pi) { pi2_[pi * W + word] |= lane; });
  tests_.push_back(t);
  ++size_;
}

std::vector<PatternBlock> PatternBlock::pack(
    const Circuit& c, const std::vector<TwoVectorTest>& tests,
    int lane_words) {
  std::vector<PatternBlock> blocks;
  for (const auto& t : tests) {
    if (blocks.empty() || blocks.back().full())
      blocks.emplace_back(c, lane_words);
    blocks.back().push(t);
  }
  return blocks;
}

FaultSimEngine::FaultSimEngine(const Circuit& c, EngineOptions opt)
    : c_(c),
      opt_(opt),
      topo_pos_(c.num_gates(), 0),
      gate_level_(c.gate_levels()),
      net_fence_(c.num_nets(), 0),
      po_mask_(c.num_nets(), 0),
      cones_(c.num_nets()),
      lru_pos_(c.num_nets()),
      changed_(c.num_nets(), 0),
      inj_set0_(c.num_nets(), 0),
      inj_set1_(c.num_nets(), 0) {
  if (opt_.lane_words < 1) opt_.lane_words = 1;
  const auto W = static_cast<std::size_t>(opt_.lane_words);
  bad_.assign(c.num_nets() * W, 0);
  eval_tmp_.assign(W, 0);
  force_.assign(W, 0);
  diff_.assign(W, 0);
  exc_.assign(W, 0);
  masks_.assign(W, 0);
  const auto& order = c.topo_order();
  for (std::size_t rank = 0; rank < order.size(); ++rank)
    topo_pos_[static_cast<std::size_t>(order[rank])] = static_cast<int>(rank);
  for (std::size_t n = 0; n < c.num_nets(); ++n)
    for (int g : c.fanout_of(static_cast<NetId>(n)))
      net_fence_[n] = std::max(net_fence_[n],
                               gate_level_[static_cast<std::size_t>(g)]);
  for (NetId po : c.outputs()) po_mask_[static_cast<std::size_t>(po)] = 1;

  // Whole-circuit (level, topo rank) walk order for the cross-block delta
  // good-eval: like a cone's gate order, but over every gate, so a delta
  // walk seeded from any changed-PI set is a valid topological sweep with
  // the same frontier-fence early exit.
  level_order_.resize(c.num_gates());
  std::iota(level_order_.begin(), level_order_.end(), 0);
  std::sort(level_order_.begin(), level_order_.end(), [this](int a, int b) {
    const auto sa = static_cast<std::size_t>(a);
    const auto sb = static_cast<std::size_t>(b);
    if (gate_level_[sa] != gate_level_[sb])
      return gate_level_[sa] < gate_level_[sb];
    return topo_pos_[sa] < topo_pos_[sb];
  });

  // Touch every engine id before caching slot pointers: slot() may grow
  // the slab, and only the last growth's pointers are stable.
  const EngineMetricIds& ids = EngineMetricIds::get();
  for (obs::MetricId id :
       {ids.cone_bytes, ids.cone_peak_bytes, ids.cone_resident,
        ids.cone_evictions, ids.propagations, ids.frontier_events,
        ids.frontier_gate_evals, ids.frontier_early_exits,
        ids.delta_good_evals, ids.delta_full_fallbacks, ids.delta_gate_evals,
        ids.delta_changed_pis}) {
    metrics_.slot(id);
  }
  cone_bytes_ = metrics_.slot(ids.cone_bytes);
  cone_peak_bytes_ = metrics_.slot(ids.cone_peak_bytes);
  cones_resident_ = metrics_.slot(ids.cone_resident);
  cone_evictions_ = metrics_.slot(ids.cone_evictions);
  propagations_ = metrics_.slot(ids.propagations);
  frontier_events_ = metrics_.slot(ids.frontier_events);
  frontier_gate_evals_ = metrics_.slot(ids.frontier_gate_evals);
  frontier_early_exits_ = metrics_.slot(ids.frontier_early_exits);
  delta_good_evals_ = metrics_.slot(ids.delta_good_evals);
  delta_full_fallbacks_ = metrics_.slot(ids.delta_full_fallbacks);
  delta_gate_evals_ = metrics_.slot(ids.delta_gate_evals);
}

const EngineMetricIds& EngineMetricIds::get() {
  static const EngineMetricIds ids = [] {
    EngineMetricIds m;
    m.cone_bytes = obs::gauge("sim.cone_cache_bytes");
    m.cone_peak_bytes = obs::gauge("sim.cone_peak_bytes");
    m.cone_resident = obs::gauge("sim.cones_resident");
    m.cone_evictions = obs::counter("sim.cone_evictions");
    m.propagations = obs::counter("sim.propagations");
    m.frontier_events = obs::counter("sim.frontier_events");
    m.frontier_gate_evals = obs::counter("sim.frontier_gate_evals");
    m.frontier_early_exits = obs::counter("sim.frontier_early_exits");
    m.delta_good_evals = obs::counter("sim.delta_good_evals");
    m.delta_full_fallbacks = obs::counter("sim.delta_full_fallbacks");
    m.delta_gate_evals = obs::counter("sim.delta_gate_evals");
    m.delta_changed_pis = obs::histogram("sim.delta_changed_pis");
    return m;
  }();
  return ids;
}

namespace {

/// Resident-cache cost of one cone. sizeof(Cone) is private to the engine,
/// so charge the vector payload plus a fixed per-cone overhead.
std::size_t cone_cost(std::size_t n_gates) {
  return n_gates * sizeof(int) + 48;
}

}  // namespace

const FaultSimEngine::Cone& FaultSimEngine::cone_of(NetId n) {
  auto& slot = cones_[static_cast<std::size_t>(n)];
  if (slot) {
    // Refresh recency: move to the front of the LRU list.
    if (opt_.cone_cache_bytes)
      lru_.splice(lru_.begin(), lru_, lru_pos_[static_cast<std::size_t>(n)]);
    return *slot;
  }
  slot = std::make_unique<Cone>();
  Cone& cone = *slot;

  // BFS over fanout, then levelize: (level, topo rank) order is a valid
  // topological order (a level-L gate's inputs all have level < L) and is
  // what makes the frontier fence an exact early-exit test.
  std::vector<std::uint8_t> gate_seen(c_.num_gates(), 0);
  std::vector<std::uint8_t> net_seen(c_.num_nets(), 0);
  net_seen[static_cast<std::size_t>(n)] = 1;
  std::vector<NetId> frontier{n};
  while (!frontier.empty()) {
    const NetId net = frontier.back();
    frontier.pop_back();
    for (int g : c_.fanout_of(net)) {
      if (gate_seen[static_cast<std::size_t>(g)]) continue;
      gate_seen[static_cast<std::size_t>(g)] = 1;
      cone.gates.push_back(g);
      const NetId out = c_.gate(g).output;
      if (!net_seen[static_cast<std::size_t>(out)]) {
        net_seen[static_cast<std::size_t>(out)] = 1;
        frontier.push_back(out);
      }
    }
  }
  std::sort(cone.gates.begin(), cone.gates.end(), [this](int a, int b) {
    const auto sa = static_cast<std::size_t>(a);
    const auto sb = static_cast<std::size_t>(b);
    if (gate_level_[sa] != gate_level_[sb])
      return gate_level_[sa] < gate_level_[sb];
    return topo_pos_[sa] < topo_pos_[sb];
  });
  cone.gates.shrink_to_fit();

  *cone_bytes_ += static_cast<long long>(cone_cost(cone.gates.size()));
  if (*cone_bytes_ > *cone_peak_bytes_) *cone_peak_bytes_ = *cone_bytes_;
  ++*cones_resident_;
  if (opt_.cone_cache_bytes) {
    lru_.push_front(n);
    lru_pos_[static_cast<std::size_t>(n)] = lru_.begin();
    // Evict least-recently-used cones past the cap; the cone just built is
    // at the front, so it survives even when it alone exceeds the cap.
    while (static_cast<std::size_t>(*cone_bytes_) > opt_.cone_cache_bytes &&
           lru_.size() > 1) {
      const NetId victim = lru_.back();
      lru_.pop_back();
      auto& vslot = cones_[static_cast<std::size_t>(victim)];
      *cone_bytes_ -= static_cast<long long>(cone_cost(vslot->gates.size()));
      vslot.reset();
      --*cones_resident_;
      ++*cone_evictions_;
    }
  }
  return cone;
}

void FaultSimEngine::propagate(const std::uint64_t* good, std::size_t n_words,
                               NetId forced,
                               const std::uint64_t* forced_words,
                               std::uint64_t* diff) {
  const std::size_t W = n_words;
  for (std::size_t w = 0; w < W; ++w) diff[w] = 0;
  const auto fs = static_cast<std::size_t>(forced);
  {
    std::uint64_t seed = 0;
    for (std::size_t w = 0; w < W; ++w)
      seed |= forced_words[w] ^ good[fs * W + w];
    if (!seed) return;  // the forced value is the good value everywhere
  }
  ++*propagations_;
  ++*frontier_events_;
  const Cone& cone = cone_of(forced);
  std::uint64_t* bad = bad_.data();
  for (std::size_t w = 0; w < W; ++w) bad[fs * W + w] = forced_words[w];
  changed_[fs] = 1;
  touched_.push_back(forced);
  if (po_mask_[fs])
    for (std::size_t w = 0; w < W; ++w)
      diff[w] |= forced_words[w] ^ good[fs * W + w];
  int fence = net_fence_[fs];

  const std::uint64_t* ins[8];
  std::uint64_t* const tmp = eval_tmp_.data();
  bool early = false;
  for (int gi : cone.gates) {
    if (gate_level_[static_cast<std::size_t>(gi)] > fence) {
      // Every changed net's fanout lies behind the walk: nothing ahead can
      // see a change, so the remaining cone is untouched by this fault.
      early = true;
      break;
    }
    const auto& gate = c_.gate(gi);
    const std::size_t arity = gate.inputs.size();
    std::uint8_t any = 0;
    for (std::size_t k = 0; k < arity; ++k)
      any |= changed_[static_cast<std::size_t>(gate.inputs[k])];
    if (!any) continue;
    ++*frontier_gate_evals_;
    for (std::size_t k = 0; k < arity; ++k) {
      const auto in = static_cast<std::size_t>(gate.inputs[k]);
      ins[k] = (changed_[in] ? bad : good) + in * W;
    }
    logic::gate_eval_lanes(gate.type, ins, tmp, W);
    const auto on = static_cast<std::size_t>(gate.output);
    std::uint64_t d = 0;
    for (std::size_t w = 0; w < W; ++w) d |= tmp[w] ^ good[on * W + w];
    if (!d) continue;  // the change dies at this gate
    for (std::size_t w = 0; w < W; ++w) bad[on * W + w] = tmp[w];
    changed_[on] = 1;
    touched_.push_back(gate.output);
    ++*frontier_events_;
    if (net_fence_[on] > fence) fence = net_fence_[on];
    if (po_mask_[on])
      for (std::size_t w = 0; w < W; ++w)
        diff[w] |= tmp[w] ^ good[on * W + w];
  }
  if (early) ++*frontier_early_exits_;
  for (NetId t : touched_) changed_[static_cast<std::size_t>(t)] = 0;
  touched_.clear();
}

void FaultSimEngine::delta_eval(const std::vector<std::uint64_t>& pi_words,
                                std::vector<std::uint64_t>& values,
                                const std::vector<int>& changed_pis) {
  const auto W = static_cast<std::size_t>(opt_.lane_words);
  std::uint64_t* vals = values.data();
  // Seed: copy the changed PI words in place and flag their nets. The
  // fence starts at the highest fanout level of any changed net, exactly
  // as in propagate().
  int fence = -1;
  for (int idx : changed_pis) {
    const NetId n = c_.inputs()[static_cast<std::size_t>(idx)];
    const auto s = static_cast<std::size_t>(n);
    for (std::size_t w = 0; w < W; ++w)
      vals[s * W + w] = pi_words[static_cast<std::size_t>(idx) * W + w];
    changed_[s] = 1;
    touched_.push_back(n);
    if (net_fence_[s] > fence) fence = net_fence_[s];
  }
  // Level-order walk over the whole circuit. Reading inputs straight from
  // `values` is safe: (level, topo rank) is topological, so a gate's
  // inputs — changed or not — are already this block's final words, and a
  // skipped gate's resident output word is still current because its
  // inputs are bit-identical to the previous block's.
  const std::uint64_t* ins[8];
  std::uint64_t* const tmp = eval_tmp_.data();
  for (int gi : level_order_) {
    if (gate_level_[static_cast<std::size_t>(gi)] > fence) break;
    const auto& gate = c_.gate(gi);
    const std::size_t arity = gate.inputs.size();
    std::uint8_t any = 0;
    for (std::size_t k = 0; k < arity; ++k)
      any |= changed_[static_cast<std::size_t>(gate.inputs[k])];
    if (!any) continue;
    ++*delta_gate_evals_;
    for (std::size_t k = 0; k < arity; ++k) {
      const auto in = static_cast<std::size_t>(gate.inputs[k]);
      ins[k] = vals + in * W;
    }
    logic::gate_eval_lanes(gate.type, ins, tmp, W);
    const auto on = static_cast<std::size_t>(gate.output);
    std::uint64_t d = 0;
    for (std::size_t w = 0; w < W; ++w) d |= tmp[w] ^ vals[on * W + w];
    if (!d) continue;  // the change dies at this gate
    for (std::size_t w = 0; w < W; ++w) vals[on * W + w] = tmp[w];
    changed_[on] = 1;
    touched_.push_back(gate.output);
    if (net_fence_[on] > fence) fence = net_fence_[on];
  }
  for (NetId t : touched_) changed_[static_cast<std::size_t>(t)] = 0;
  touched_.clear();
}

void FaultSimEngine::eval_goods(const std::vector<std::uint64_t>& pi_words,
                                std::vector<std::uint64_t>& values,
                                std::vector<std::uint64_t>& prev_pi,
                                bool& valid) {
  const auto W = static_cast<std::size_t>(opt_.lane_words);
  if (opt_.delta_goods == DeltaGoods::kOff) {
    c_.eval_wide_into(pi_words, W, values);
    valid = false;
    return;
  }
  // Full-sweep fallback when there is no resident state to delta against
  // (first block, or the buffers were reshaped by a fault-major call).
  if (!valid || values.size() != c_.num_nets() * W ||
      prev_pi.size() != pi_words.size()) {
    c_.eval_wide_into(pi_words, W, values);
    prev_pi = pi_words;
    valid = true;
    ++*delta_full_fallbacks_;
    return;
  }
  changed_pis_.clear();
  const std::size_t n_pi = c_.inputs().size();
  for (std::size_t i = 0; i < n_pi; ++i)
    if (logic::lanes_differ(pi_words.data() + i * W, prev_pi.data() + i * W,
                            W))
      changed_pis_.push_back(static_cast<int>(i));
  metrics_.observe(EngineMetricIds::get().delta_changed_pis,
                   changed_pis_.size());
  // kAuto: past this changed-PI fraction the delta walk re-evaluates most
  // of the circuit anyway, so the full sweep's tighter loop wins.
  if (opt_.delta_goods == DeltaGoods::kAuto &&
      changed_pis_.size() * 4 > n_pi) {
    c_.eval_wide_into(pi_words, W, values);
    prev_pi = pi_words;
    ++*delta_full_fallbacks_;
    return;
  }
  ++*delta_good_evals_;
  delta_eval(pi_words, values, changed_pis_);
  prev_pi = pi_words;
}

std::uint64_t FaultSimEngine::forced_diff(
    const std::vector<std::uint64_t>& good, NetId forced,
    std::uint64_t forced_word) {
  std::uint64_t diff = 0;
  propagate(good.data(), 1, forced, &forced_word, &diff);
  return diff;
}

void FaultSimEngine::block_stuck(const PatternBlock& b,
                                 const std::vector<StuckFault>& faults,
                                 std::vector<std::uint64_t>& detect,
                                 const std::vector<std::uint8_t>* active) {
  assert(b.lane_words() == opt_.lane_words);
  const auto W = static_cast<std::size_t>(opt_.lane_words);
  detect.assign(faults.size() * W, 0);
  eval_goods(b.pi2(), good2_, prev_pi2_, goods2_valid_);
  for (std::size_t w = 0; w < W; ++w)
    masks_[w] = b.lane_mask(static_cast<int>(w));
  for (std::size_t i = 0; i < faults.size(); ++i) {
    if (active && !(*active)[i]) continue;
    const StuckFault& f = faults[i];
    const std::uint64_t value_word = f.value ? ~0ull : 0ull;
    // Lanes where the fault does not even change its own net are unaffected
    // (lane-independent logic), so an all-equal block needs no cone pass.
    const auto net = static_cast<std::size_t>(f.net);
    std::uint64_t excitable = 0;
    for (std::size_t w = 0; w < W; ++w) {
      force_[w] = value_word;
      excitable |= (good2_[net * W + w] ^ value_word) & masks_[w];
    }
    if (!excitable) continue;
    propagate(good2_.data(), W, f.net, force_.data(), diff_.data());
    for (std::size_t w = 0; w < W; ++w)
      detect[i * W + w] = diff_[w] & masks_[w];
  }
}

void FaultSimEngine::block_transition(const PatternBlock& b,
                                      const std::vector<TransitionFault>& faults,
                                      std::vector<std::uint64_t>& detect,
                                      const std::vector<std::uint8_t>* active) {
  assert(b.lane_words() == opt_.lane_words);
  const auto W = static_cast<std::size_t>(opt_.lane_words);
  detect.assign(faults.size() * W, 0);
  eval_goods(b.pi1(), good1_, prev_pi1_, goods1_valid_);
  eval_goods(b.pi2(), good2_, prev_pi2_, goods2_valid_);
  for (std::size_t w = 0; w < W; ++w)
    masks_[w] = b.lane_mask(static_cast<int>(w));
  for (std::size_t i = 0; i < faults.size(); ++i) {
    if (active && !(*active)[i]) continue;
    const TransitionFault& f = faults[i];
    const auto net = static_cast<std::size_t>(f.net);
    std::uint64_t any = 0;
    for (std::size_t w = 0; w < W; ++w) {
      const std::uint64_t o1 = good1_[net * W + w];
      const std::uint64_t o2 = good2_[net * W + w];
      exc_[w] = (f.slow_to_rise ? (~o1 & o2) : (o1 & ~o2)) & masks_[w];
      any |= exc_[w];
    }
    if (!any) continue;
    // The slow output holds its per-lane frame-1 values during capture.
    propagate(good2_.data(), W, f.net, good1_.data() + net * W, diff_.data());
    for (std::size_t w = 0; w < W; ++w) detect[i * W + w] = diff_[w] & exc_[w];
  }
}

const std::array<std::uint16_t, 16>& FaultSimEngine::obd_table(
    logic::GateType t, const cells::TransistorRef& tr) {
  const auto key = std::make_tuple(static_cast<int>(t), tr.pmos, tr.input);
  auto it = obd_tables_.find(key);
  if (it != obd_tables_.end()) return it->second;
  std::array<std::uint16_t, 16> table{};
  const auto topo = logic::gate_topology(t);
  if (topo.has_value()) {
    const int n_vec = 1 << topo->num_inputs;
    for (int v1 = 0; v1 < n_vec; ++v1)
      for (int v2 = 0; v2 < n_vec; ++v2)
        if (core::excites_obd(*topo, tr,
                              cells::TwoVector{static_cast<std::uint32_t>(v1),
                                               static_cast<std::uint32_t>(v2)}))
          table[static_cast<std::size_t>(v1)] |=
              static_cast<std::uint16_t>(1u << v2);
  }
  return obd_tables_.emplace(key, table).first->second;
}

void FaultSimEngine::block_obd(const PatternBlock& b,
                               const std::vector<ObdFaultSite>& faults,
                               std::vector<std::uint64_t>& detect,
                               const std::vector<std::uint8_t>* active) {
  assert(b.lane_words() == opt_.lane_words);
  const auto W = static_cast<std::size_t>(opt_.lane_words);
  detect.assign(faults.size() * W, 0);
  eval_goods(b.pi1(), good1_, prev_pi1_, goods1_valid_);
  eval_goods(b.pi2(), good2_, prev_pi2_, goods2_valid_);
  for (std::size_t w = 0; w < W; ++w)
    masks_[w] = b.lane_mask(static_cast<int>(w));
  for (std::size_t i = 0; i < faults.size(); ++i) {
    if (active && !(*active)[i]) continue;
    const ObdFaultSite& f = faults[i];
    const auto& g = c_.gate(f.gate_index);
    if (!logic::is_primitive_cmos(g.type)) continue;
    const auto& table = obd_table(g.type, f.transistor);

    // Per-lane local two-vectors at the gate, probed against the table.
    const std::size_t n_in = g.inputs.size();
    const std::uint64_t* in1[4];
    const std::uint64_t* in2[4];
    for (std::size_t k = 0; k < n_in; ++k) {
      in1[k] = good1_.data() + static_cast<std::size_t>(g.inputs[k]) * W;
      in2[k] = good2_.data() + static_cast<std::size_t>(g.inputs[k]) * W;
    }
    std::uint64_t any = 0;
    for (std::size_t w = 0; w < W; ++w) exc_[w] = 0;
    for (int lane = 0; lane < b.size(); ++lane) {
      const auto word = static_cast<std::size_t>(lane) >> 6;
      const int bit = lane & 63;
      std::uint32_t lv1 = 0, lv2 = 0;
      for (std::size_t k = 0; k < n_in; ++k) {
        lv1 |= static_cast<std::uint32_t>((in1[k][word] >> bit) & 1u) << k;
        lv2 |= static_cast<std::uint32_t>((in2[k][word] >> bit) & 1u) << k;
      }
      if ((table[lv1] >> lv2) & 1u) {
        exc_[word] |= 1ull << bit;
        any = 1;
      }
    }
    if (!any) continue;
    // Gross-delay: the excited gate output keeps its per-lane frame-1
    // values.
    const auto out = static_cast<std::size_t>(g.output);
    propagate(good2_.data(), W, g.output, good1_.data() + out * W,
              diff_.data());
    for (std::size_t w = 0; w < W; ++w)
      detect[i * W + w] = diff_[w] & exc_[w] & masks_[w];
  }
}

template <typename Fault, typename BlockFn>
FaultSimEngine::Campaign FaultSimEngine::run_campaign(
    const std::vector<TwoVectorTest>& tests, const std::vector<Fault>& faults,
    bool drop_detected, BlockFn block_fn) {
  Campaign result;
  result.first_test.assign(faults.size(), -1);
  std::vector<std::uint8_t> active(faults.size(), 1);
  std::vector<std::uint64_t> detect;
  const auto W = static_cast<std::size_t>(opt_.lane_words);
  PatternBlock block(c_, opt_.lane_words);
  int base = 0;
  for (std::size_t t = 0; t <= tests.size(); ++t) {
    if (t < tests.size()) {
      block.push(tests[t]);
      if (!block.full() && t + 1 < tests.size()) continue;
    }
    if (block.size() == 0) break;
    for (std::uint8_t a : active) result.fault_block_evals += a;
    block_fn(block, faults, detect, &active);
    for (std::size_t i = 0; i < faults.size(); ++i) {
      bool hit = false;
      for (std::size_t w = 0; w < W; ++w) {
        const std::uint64_t word = detect[i * W + w];
        if (!word) continue;
        hit = true;
        // Words ascend in lane (= test) order, so the first nonzero word's
        // lowest bit is the true first detection in the block.
        if (result.first_test[i] < 0) {
          result.first_test[i] = base + static_cast<int>(w) * 64 +
                                 std::countr_zero(word);
          ++result.detected;
        }
        break;
      }
      if (hit && drop_detected) active[i] = 0;
    }
    base += block.size();
    block.clear();
  }
  return result;
}

FaultSimEngine::Campaign FaultSimEngine::campaign_stuck(
    const std::vector<InputVec>& patterns,
    const std::vector<StuckFault>& faults, bool drop_detected) {
  std::vector<TwoVectorTest> tests;
  tests.reserve(patterns.size());
  for (const InputVec& p : patterns) tests.push_back({p, p});
  return run_campaign(tests, faults, drop_detected,
                      [this](const PatternBlock& b, const auto& fl, auto& det,
                             const auto* act) { block_stuck(b, fl, det, act); });
}

FaultSimEngine::Campaign FaultSimEngine::campaign_transition(
    const std::vector<TwoVectorTest>& tests,
    const std::vector<TransitionFault>& faults, bool drop_detected) {
  return run_campaign(tests, faults, drop_detected,
                      [this](const PatternBlock& b, const auto& fl, auto& det,
                             const auto* act) {
                        block_transition(b, fl, det, act);
                      });
}

FaultSimEngine::Campaign FaultSimEngine::campaign_obd(
    const std::vector<TwoVectorTest>& tests,
    const std::vector<ObdFaultSite>& faults, bool drop_detected) {
  return run_campaign(tests, faults, drop_detected,
                      [this](const PatternBlock& b, const auto& fl, auto& det,
                             const auto* act) { block_obd(b, fl, det, act); });
}

// --- Fault-major kernels -----------------------------------------------------

void FaultSimEngine::load_broadcast_goods(const TwoVectorTest& t,
                                          bool need_frame1) {
  const std::size_t n_pi = c_.inputs().size();
  // Broadcast each vector bit across all 64 lanes of its PI word.
  const auto bcast = [&](const InputVec& v) {
    pi_bcast_.assign(n_pi, 0);
    logic::for_each_set_bit(v, n_pi,
                            [&](std::size_t pi) { pi_bcast_[pi] = ~0ull; });
  };
  if (need_frame1) {
    bcast(t.v1);
    c_.eval_words_into(pi_bcast_, good1_);
  }
  bcast(t.v2);
  c_.eval_words_into(pi_bcast_, good2_);
  // The broadcast path reshapes good1_/good2_ to one word per net; any
  // resident wide lanes are gone (a size check alone cannot tell at
  // lane_words == 1, so invalidate explicitly).
  reset_goods();
}

void FaultSimEngine::inject(NetId n, int lane, bool value) {
  const auto s = static_cast<std::size_t>(n);
  (value ? inj_set1_ : inj_set0_)[s] |= 1ull << lane;
  inj_nets_.push_back(n);
}

void FaultSimEngine::clear_injections() {
  for (NetId n : inj_nets_) {
    inj_set0_[static_cast<std::size_t>(n)] = 0;
    inj_set1_[static_cast<std::size_t>(n)] = 0;
  }
  inj_nets_.clear();
}

std::uint64_t FaultSimEngine::injected_diff() {
  // pi_bcast_ still holds the frame-2 broadcast words from
  // load_broadcast_goods; good2_ is the matching fault-free valuation.
  ibad_.assign(c_.num_nets(), 0);
  for (std::size_t i = 0; i < c_.inputs().size(); ++i)
    ibad_[static_cast<std::size_t>(c_.inputs()[i])] = pi_bcast_[i];
  // Forcing must also reach PI and undriven fault nets, which the gate loop
  // below never writes.
  for (NetId n : inj_nets_) {
    const auto s = static_cast<std::size_t>(n);
    ibad_[s] = (ibad_[s] | inj_set1_[s]) & ~inj_set0_[s];
  }
  std::uint64_t ins[8];
  for (int g : c_.topo_order()) {
    const auto& gate = c_.gate(g);
    for (std::size_t k = 0; k < gate.inputs.size(); ++k)
      ins[k] = ibad_[static_cast<std::size_t>(gate.inputs[k])];
    const auto o = static_cast<std::size_t>(gate.output);
    // inj_set words are zero for untouched nets, so the mask application is
    // branch-free identity almost everywhere.
    ibad_[o] =
        (logic::gate_eval_words(gate.type, ins) | inj_set1_[o]) & ~inj_set0_[o];
  }
  std::uint64_t diff = 0;
  for (NetId po : c_.outputs()) {
    const auto s = static_cast<std::size_t>(po);
    diff |= ibad_[s] ^ good2_[s];
  }
  return diff;
}

void FaultSimEngine::test_stuck(const InputVec& pattern,
                                const std::vector<StuckFault>& faults,
                                const std::vector<int>& idx,
                                std::vector<std::uint64_t>& detect) {
  load_broadcast_goods({pattern, pattern}, /*need_frame1=*/false);
  const std::size_t words = (idx.size() + 63) / 64;
  detect.assign(words, 0);
  for (std::size_t w = 0; w < words; ++w) {
    const int n = static_cast<int>(std::min<std::size_t>(64, idx.size() - w * 64));
    clear_injections();
    std::uint64_t changed = 0;
    for (int j = 0; j < n; ++j) {
      const StuckFault& f = faults[static_cast<std::size_t>(idx[w * 64 + j])];
      // A lane whose forced value equals the good value is identity.
      if (((good2_[static_cast<std::size_t>(f.net)] & 1u) != 0) == f.value)
        continue;
      changed |= 1ull << j;
      inject(f.net, j, f.value);
    }
    if (changed) detect[w] = injected_diff() & changed;
  }
  clear_injections();
}

void FaultSimEngine::test_transition(const TwoVectorTest& t,
                                     const std::vector<TransitionFault>& faults,
                                     const std::vector<int>& idx,
                                     std::vector<std::uint64_t>& detect) {
  load_broadcast_goods(t);
  const std::size_t words = (idx.size() + 63) / 64;
  detect.assign(words, 0);
  for (std::size_t w = 0; w < words; ++w) {
    const int n = static_cast<int>(std::min<std::size_t>(64, idx.size() - w * 64));
    clear_injections();
    std::uint64_t excited = 0;
    for (int j = 0; j < n; ++j) {
      const TransitionFault& f =
          faults[static_cast<std::size_t>(idx[w * 64 + j])];
      const bool o1 = good1_[static_cast<std::size_t>(f.net)] & 1u;
      const bool o2 = good2_[static_cast<std::size_t>(f.net)] & 1u;
      if (f.slow_to_rise ? !(!o1 && o2) : !(o1 && !o2)) continue;
      excited |= 1ull << j;
      // The slow output holds its frame-1 value during capture.
      inject(f.net, j, o1);
    }
    if (excited) detect[w] = injected_diff() & excited;
  }
  clear_injections();
}

void FaultSimEngine::test_obd(const TwoVectorTest& t,
                              const std::vector<ObdFaultSite>& faults,
                              const std::vector<int>& idx,
                              std::vector<std::uint64_t>& detect) {
  load_broadcast_goods(t);
  const std::size_t words = (idx.size() + 63) / 64;
  detect.assign(words, 0);
  for (std::size_t w = 0; w < words; ++w) {
    const int n = static_cast<int>(std::min<std::size_t>(64, idx.size() - w * 64));
    clear_injections();
    std::uint64_t excited = 0;
    for (int j = 0; j < n; ++j) {
      const ObdFaultSite& f = faults[static_cast<std::size_t>(idx[w * 64 + j])];
      const auto& g = c_.gate(f.gate_index);
      if (!logic::is_primitive_cmos(g.type)) continue;
      const auto& table = obd_table(g.type, f.transistor);
      std::uint32_t lv1 = 0, lv2 = 0;
      for (std::size_t k = 0; k < g.inputs.size(); ++k) {
        const auto in = static_cast<std::size_t>(g.inputs[k]);
        lv1 |= static_cast<std::uint32_t>(good1_[in] & 1u) << k;
        lv2 |= static_cast<std::uint32_t>(good2_[in] & 1u) << k;
      }
      if (!((table[lv1] >> lv2) & 1u)) continue;
      excited |= 1ull << j;
      // Gross-delay: the excited gate output keeps its frame-1 value.
      inject(g.output, j, good1_[static_cast<std::size_t>(g.output)] & 1u);
    }
    if (excited) detect[w] = injected_diff() & excited;
  }
  clear_injections();
}

// --- X-aware (3-valued) detection --------------------------------------------

std::vector<bool> FaultSimEngine::definite_obd(
    const XTwoVectorTest& t, const std::vector<ObdFaultSite>& faults) {
  using logic::Words3;
  const std::size_t n_pi = c_.inputs().size();
  std::vector<std::uint64_t> bits(n_pi), care(n_pi);
  for (std::size_t i = 0; i < n_pi; ++i) {
    bits[i] = t.v1.bits.bit(i) ? ~0ull : 0ull;
    care[i] = t.v1.care_mask.bit(i) ? ~0ull : 0ull;
  }
  const std::vector<Words3> good1 = c_.eval3_words(bits, care);
  for (std::size_t i = 0; i < n_pi; ++i) {
    bits[i] = t.v2.bits.bit(i) ? ~0ull : 0ull;
    care[i] = t.v2.care_mask.bit(i) ? ~0ull : 0ull;
  }
  const std::vector<Words3> pi2 = [&] {
    std::vector<Words3> w(n_pi);
    for (std::size_t i = 0; i < n_pi; ++i)
      w[i] = Words3::from_bits_care(bits[i], care[i]);
    return w;
  }();
  const std::vector<Words3> good2 = c_.eval3_words(pi2);

  std::vector<bool> detected(faults.size(), false);
  std::vector<Words3> bad2;
  for (std::size_t i = 0; i < faults.size(); ++i) {
    const ObdFaultSite& f = faults[i];
    const auto& g = c_.gate(f.gate_index);
    if (!logic::is_primitive_cmos(g.type)) continue;
    // Excitation must be definite: every gate-local input known, both frames.
    std::uint32_t lv1 = 0, lv2 = 0;
    bool known = true;
    for (std::size_t k = 0; k < g.inputs.size() && known; ++k) {
      const auto in = static_cast<std::size_t>(g.inputs[k]);
      if (!(good1[in].known() & good2[in].known() & 1u)) {
        known = false;
        break;
      }
      lv1 |= static_cast<std::uint32_t>(good1[in].can1 & 1u) << k;
      lv2 |= static_cast<std::uint32_t>(good2[in].can1 & 1u) << k;
    }
    const auto out = static_cast<std::size_t>(g.output);
    if (!known || !(good1[out].known() & 1u)) continue;
    if (!((obd_table(g.type, f.transistor)[lv1] >> lv2) & 1u)) continue;
    const bool old_out = good1[out].can1 & 1u;
    c_.eval3_words_into(pi2, bad2, g.output, Words3::of(old_out));
    for (NetId po : c_.outputs()) {
      const auto s = static_cast<std::size_t>(po);
      if ((good2[s].known() & bad2[s].known() &
           (good2[s].can1 ^ bad2[s].can1) & 1u)) {
        detected[i] = true;
        break;
      }
    }
  }
  return detected;
}

// --- Scheduler ---------------------------------------------------------------

const char* to_string(SimPacking p) {
  switch (p) {
    case SimPacking::kAuto: return "auto";
    case SimPacking::kPatternMajor: return "pattern-major";
    case SimPacking::kFaultMajor: return "fault-major";
  }
  return "?";
}

const char* to_string(DeltaGoods d) {
  switch (d) {
    case DeltaGoods::kOff: return "off";
    case DeltaGoods::kOn: return "on";
    case DeltaGoods::kAuto: return "auto";
  }
  return "?";
}

FaultSimScheduler::FaultSimScheduler(const Circuit& c, SimOptions opt)
    : c_(c), opt_(opt) {
  if (opt_.threads < 1) opt_.threads = 1;
  if (opt_.lane_words < 1) opt_.lane_words = 1;
  if (opt_.block_batch < 0) opt_.block_batch = 0;
  // All workers are created up front, on the caller's thread: the first
  // engine construction warms the circuit's lazy topo-order cache, so the
  // shared Circuit is strictly read-only once workers run.
  engines_.reserve(static_cast<std::size_t>(opt_.threads));
  for (int w = 0; w < opt_.threads; ++w)
    engines_.push_back(std::make_unique<FaultSimEngine>(
        c_, EngineOptions{opt_.cone_cache_bytes, opt_.lane_words,
                          opt_.delta_goods}));
}

FaultSimScheduler::~FaultSimScheduler() = default;

obs::Sheet FaultSimScheduler::merged_metrics() const {
  obs::Sheet out;
  for (const auto& e : engines_) out.merge_from(e->metrics());
  return out;
}

SimStats FaultSimScheduler::stats() const {
  const obs::Sheet m = merged_metrics();
  const EngineMetricIds& ids = EngineMetricIds::get();
  SimStats s;
  s.cone_evictions = m.value(ids.cone_evictions);
  s.cone_resident = static_cast<std::size_t>(m.value(ids.cone_resident));
  s.cone_bytes = static_cast<std::size_t>(m.value(ids.cone_bytes));
  s.cone_peak_bytes = static_cast<std::size_t>(m.value(ids.cone_peak_bytes));
  s.propagations = m.value(ids.propagations);
  s.frontier_events = m.value(ids.frontier_events);
  s.frontier_gate_evals = m.value(ids.frontier_gate_evals);
  s.frontier_early_exits = m.value(ids.frontier_early_exits);
  return s;
}

SimPacking FaultSimScheduler::resolve_packing(std::size_t n_tests,
                                              std::size_t n_faults) const {
  if (opt_.packing != SimPacking::kAuto) return opt_.packing;
  if (n_tests <= PatternBlock::kLanes / 8 &&
      n_faults >= static_cast<std::size_t>(PatternBlock::kLanes))
    return SimPacking::kFaultMajor;
  return SimPacking::kPatternMajor;
}

int FaultSimScheduler::workers_for(std::size_t jobs) const {
  return static_cast<int>(
      std::min<std::size_t>(static_cast<std::size_t>(opt_.threads), jobs));
}

namespace {

/// Below this many gates x blocks x lane_words, thread spawn + round
/// barriers cost more than the parallel win (measured on the bench corpus:
/// mul4x4/mul6x6-class shapes regressed to ~0.9x at 2 threads, c880-class
/// and up still profit).
constexpr std::size_t kSerialGateBlockThreshold = 8192;

}  // namespace

int FaultSimScheduler::pattern_workers(std::size_t n_blocks) const {
  const int w = workers_for(n_blocks);
  // An explicit block_batch amortizes the round barrier over more blocks,
  // so the same gate/block/lane shape becomes worth threading earlier —
  // without the factor, batched campaign rounds on small circuits bounced
  // between the serial and threaded paths.
  const auto batch = static_cast<std::size_t>(std::max(1, opt_.block_batch));
  if (w > 1 && c_.num_gates() * n_blocks *
                       static_cast<std::size_t>(opt_.lane_words) * batch <
                   kSerialGateBlockThreshold)
    return 1;
  return w;
}

std::size_t FaultSimScheduler::resolve_batch(std::size_t n_blocks,
                                             int workers) const {
  if (opt_.block_batch > 0)
    return static_cast<std::size_t>(opt_.block_batch);
  if (workers <= 1) return 1;
  // Amortize the round barrier over a few blocks per worker, but keep at
  // least ~4 reconciliation rounds so fault dropping still prunes the tail.
  const std::size_t per_worker =
      (n_blocks + static_cast<std::size_t>(workers) - 1) /
      static_cast<std::size_t>(workers);
  return std::max<std::size_t>(1, std::min<std::size_t>(4, per_worker / 4));
}

namespace {

/// Runs job(w) on `n` workers: inline when n <= 1, else on n std::threads.
/// When tracing is on, each spawned worker gets a named track and one
/// `span_name` span covering its share of the call; the inline path stays
/// on the caller's track (its enclosing span already covers it).
template <typename Job>
void run_workers(int n, const char* span_name, Job job) {
  if (n <= 1) {
    job(0);
    return;
  }
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(n));
  for (int w = 0; w < n; ++w) {
    pool.emplace_back([job, span_name, w] {
      if (obs::tracing_on()) {
        obs::Recorder::instance().set_thread_name("sim-worker-" +
                                                  std::to_string(w));
      }
      obs::Span span(span_name, "sim");
      job(w);
    });
  }
  for (auto& t : pool) t.join();
}

}  // namespace

template <typename Fault, typename BlockFn, typename TestFn>
DetectionMatrix FaultSimScheduler::build_matrix(
    const std::vector<TwoVectorTest>& tests, const std::vector<Fault>& faults,
    BlockFn block_fn, TestFn test_fn) {
  DetectionMatrix m;
  m.n_tests = tests.size();
  m.n_faults = faults.size();
  m.words_per_row = (faults.size() + 63) / 64;
  m.rows.assign(m.n_tests * m.words_per_row, 0);
  m.covered.assign(faults.size(), false);
  if (tests.empty() || faults.empty()) return m;

  if (resolve_packing(tests.size(), faults.size()) == SimPacking::kFaultMajor) {
    // Shard whole tests: each worker owns disjoint matrix rows, and the
    // fault-major detect words *are* the row words.
    std::vector<int> idx(faults.size());
    std::iota(idx.begin(), idx.end(), 0);
    std::atomic<std::size_t> next{0};
    run_workers(workers_for(tests.size()), "matrix", [&](int w) {
      FaultSimEngine& e = engine(w);
      std::vector<std::uint64_t> detect;
      for (std::size_t t = next.fetch_add(1); t < tests.size();
           t = next.fetch_add(1)) {
        test_fn(e, tests[t], faults, idx, detect);
        std::copy(detect.begin(), detect.end(),
                  m.rows.begin() + static_cast<std::ptrdiff_t>(t * m.words_per_row));
      }
    });
  } else {
    // Shard whole blocks: block b owns rows [capacity * b, + size).
    // With grey_order the blocks are formed from a (v1, v2)-sorted
    // permutation of the tests — consecutive blocks then share far more PI
    // lane bits, which is what delta good-eval feeds on — and each detected
    // lane is scattered back through the permutation to its original row.
    // A test's detection row never depends on its blockmates, so the matrix
    // is bit-identical either way.
    std::vector<std::size_t> order;
    const std::vector<TwoVectorTest>* packed = &tests;
    std::vector<TwoVectorTest> reordered;
    if (opt_.grey_order && tests.size() > 1) {
      order.resize(tests.size());
      std::iota(order.begin(), order.end(), std::size_t{0});
      std::stable_sort(order.begin(), order.end(),
                       [&](std::size_t a, std::size_t b) {
                         if (auto c = tests[a].v1 <=> tests[b].v1; c != 0)
                           return c < 0;
                         return (tests[a].v2 <=> tests[b].v2) < 0;
                       });
      reordered.reserve(tests.size());
      for (std::size_t t : order) reordered.push_back(tests[t]);
      packed = &reordered;
    }
    const std::vector<PatternBlock> blocks =
        PatternBlock::pack(c_, *packed, opt_.lane_words);
    const auto W = static_cast<std::size_t>(opt_.lane_words);
    const std::size_t capacity = W * 64;
    std::atomic<std::size_t> next{0};
    run_workers(pattern_workers(blocks.size()), "matrix", [&](int w) {
      FaultSimEngine& e = engine(w);
      std::vector<std::uint64_t> detect;
      for (std::size_t b = next.fetch_add(1); b < blocks.size();
           b = next.fetch_add(1)) {
        block_fn(e, blocks[b], faults, detect);
        const std::size_t base = b * capacity;
        for (std::size_t f = 0; f < faults.size(); ++f) {
          const std::size_t fw = f >> 6;
          const std::uint64_t fbit = 1ull << (f & 63);
          for (std::size_t dw = 0; dw < W; ++dw) {
            std::uint64_t word = detect[f * W + dw];
            if (!word) continue;
            const std::size_t wbase = base + dw * 64;
            while (word) {
              const auto lane =
                  static_cast<std::size_t>(std::countr_zero(word));
              word &= word - 1;
              const std::size_t pos = wbase + lane;
              const std::size_t row = order.empty() ? pos : order[pos];
              m.rows[row * m.words_per_row + fw] |= fbit;
            }
          }
        }
      }
    });
  }

  // OR-reduce the rows column-wise: one word per 64 faults instead of a
  // bit probe per (test, fault) pair.
  std::vector<std::uint64_t> any(m.words_per_row, 0);
  for (std::size_t t = 0; t < m.n_tests; ++t) {
    const std::uint64_t* r = m.row(t);
    for (std::size_t w = 0; w < m.words_per_row; ++w) any[w] |= r[w];
  }
  for (std::size_t f = 0; f < faults.size(); ++f) {
    if ((any[f >> 6] >> (f & 63)) & 1u) {
      m.covered[f] = true;
      ++m.covered_count;
    }
  }
  return m;
}

template <typename Fault, typename BlockFn, typename TestFn>
FaultSimEngine::Campaign FaultSimScheduler::run_campaign(
    const std::vector<TwoVectorTest>& tests, const std::vector<Fault>& faults,
    bool drop_detected, BlockFn block_fn, TestFn test_fn) {
  FaultSimEngine::Campaign r;
  r.first_test.assign(faults.size(), -1);
  if (tests.empty() || faults.empty()) return r;

  const SimPacking pack = resolve_packing(tests.size(), faults.size());
  if (pack == SimPacking::kFaultMajor) {
    // Tests are inherently sequential under dropping; the 64-fault words of
    // one test are the parallel axis, but at the shapes that select this
    // packing (a handful of tests) the per-test work is too small to shard,
    // so it runs inline on worker 0.
    FaultSimEngine& e = engine(0);
    std::vector<int> idx(faults.size());
    std::iota(idx.begin(), idx.end(), 0);
    std::vector<std::uint64_t> detect;
    std::vector<int> survivors;
    for (std::size_t t = 0; t < tests.size() && !idx.empty(); ++t) {
      r.fault_block_evals += static_cast<long long>((idx.size() + 63) / 64);
      test_fn(e, tests[t], faults, idx, detect);
      bool any = false;
      for (std::size_t w = 0; w < detect.size(); ++w) {
        std::uint64_t word = detect[w];
        while (word) {
          const int j = std::countr_zero(word);
          word &= word - 1;
          const auto f = static_cast<std::size_t>(idx[w * 64 + static_cast<std::size_t>(j)]);
          if (r.first_test[f] < 0) {
            r.first_test[f] = static_cast<int>(t);
            ++r.detected;
          }
          any = true;
        }
      }
      if (drop_detected && any) {
        survivors.clear();
        for (int f : idx)
          if (r.first_test[static_cast<std::size_t>(f)] < 0)
            survivors.push_back(f);
        idx.swap(survivors);
      }
    }
    return r;
  }

  // Pattern-major: rounds of `workers * batch` blocks against a frozen
  // active list, reconciled in block order — bit-identical to the
  // single-threaded drop campaign (first_test is the true first detection
  // either way). Worker w owns the round's contiguous slots
  // [w * batch, (w + 1) * batch); batching amortizes the round barrier on
  // small blocks. Workers are spawned once for the whole campaign; the
  // barrier's completion step (one thread, all workers parked) reconciles
  // each round and re-freezes the active list, so no shared state is
  // touched while blocks simulate.
  const std::vector<PatternBlock> blocks =
      PatternBlock::pack(c_, tests, opt_.lane_words);
  const auto W = static_cast<std::size_t>(opt_.lane_words);
  std::vector<std::uint8_t> active(faults.size(), 1);
  long long n_active = static_cast<long long>(faults.size());
  const int workers = pattern_workers(blocks.size());
  const std::size_t batch = resolve_batch(blocks.size(), workers);
  const std::size_t round_cap = static_cast<std::size_t>(workers) * batch;
  std::vector<std::vector<std::vector<std::uint64_t>>> detect(
      static_cast<std::size_t>(workers),
      std::vector<std::vector<std::uint64_t>>(batch));
  std::size_t start = 0;
  bool stop = false;
  const auto round_blocks = [&] {
    return std::min<std::size_t>(round_cap, blocks.size() - start);
  };
  r.fault_block_evals += n_active * static_cast<long long>(round_blocks());
  std::barrier sync(workers, [&]() noexcept {
    const std::size_t n = round_blocks();
    for (std::size_t s = 0; s < n; ++s) {
      const std::size_t b = start + s;
      const int base = static_cast<int>(b * W * 64);
      const auto& det = detect[s / batch][s % batch];
      for (std::size_t f = 0; f < faults.size(); ++f) {
        if (r.first_test[f] >= 0) continue;
        for (std::size_t dw = 0; dw < W; ++dw) {
          const std::uint64_t word = det[f * W + dw];
          if (!word) continue;
          r.first_test[f] =
              base + static_cast<int>(dw) * 64 + std::countr_zero(word);
          ++r.detected;
          break;
        }
      }
    }
    if (drop_detected) {
      for (std::size_t f = 0; f < faults.size(); ++f) {
        if (active[f] && r.first_test[f] >= 0) {
          active[f] = 0;
          --n_active;
        }
      }
    }
    start += n;
    if (obs::tracing_on())
      obs::Recorder::instance().counter("active_faults", n_active);
    stop = start >= blocks.size() || (drop_detected && n_active == 0);
    if (!stop)
      r.fault_block_evals += n_active * static_cast<long long>(round_blocks());
  });
  run_workers(workers, "campaign", [&](int w) {
    auto& mine = detect[static_cast<std::size_t>(w)];
    while (!stop) {
      // A worker's slice is contiguous within a round but jumps by
      // round_cap blocks between rounds; dropping the resident good state
      // at the boundary keeps the delta counters a pure function of the
      // (workers, batch) shape instead of the jump distance.
      engine(w).reset_goods();
      for (std::size_t j = 0; j < batch; ++j) {
        const std::size_t b =
            start + static_cast<std::size_t>(w) * batch + j;
        if (b < blocks.size())
          block_fn(engine(w), blocks[b], faults, mine[j], &active);
      }
      sync.arrive_and_wait();
    }
  });
  return r;
}

DetectionMatrix FaultSimScheduler::matrix_stuck(
    const std::vector<InputVec>& patterns,
    const std::vector<StuckFault>& faults) {
  std::vector<TwoVectorTest> tests;
  tests.reserve(patterns.size());
  for (const InputVec& p : patterns) tests.push_back({p, p});
  return build_matrix(
      tests, faults,
      [](FaultSimEngine& e, const PatternBlock& b, const auto& fl, auto& det) {
        e.block_stuck(b, fl, det);
      },
      [](FaultSimEngine& e, const TwoVectorTest& t, const auto& fl,
         const auto& idx, auto& det) { e.test_stuck(t.v2, fl, idx, det); });
}

DetectionMatrix FaultSimScheduler::matrix_transition(
    const std::vector<TwoVectorTest>& tests,
    const std::vector<TransitionFault>& faults) {
  return build_matrix(
      tests, faults,
      [](FaultSimEngine& e, const PatternBlock& b, const auto& fl, auto& det) {
        e.block_transition(b, fl, det);
      },
      [](FaultSimEngine& e, const TwoVectorTest& t, const auto& fl,
         const auto& idx, auto& det) { e.test_transition(t, fl, idx, det); });
}

DetectionMatrix FaultSimScheduler::matrix_obd(
    const std::vector<TwoVectorTest>& tests,
    const std::vector<ObdFaultSite>& faults) {
  return build_matrix(
      tests, faults,
      [](FaultSimEngine& e, const PatternBlock& b, const auto& fl, auto& det) {
        e.block_obd(b, fl, det);
      },
      [](FaultSimEngine& e, const TwoVectorTest& t, const auto& fl,
         const auto& idx, auto& det) { e.test_obd(t, fl, idx, det); });
}

FaultSimEngine::Campaign FaultSimScheduler::campaign_stuck(
    const std::vector<InputVec>& patterns,
    const std::vector<StuckFault>& faults, bool drop_detected) {
  std::vector<TwoVectorTest> tests;
  tests.reserve(patterns.size());
  for (const InputVec& p : patterns) tests.push_back({p, p});
  return run_campaign(
      tests, faults, drop_detected,
      [](FaultSimEngine& e, const PatternBlock& b, const auto& fl, auto& det,
         const auto* act) { e.block_stuck(b, fl, det, act); },
      [](FaultSimEngine& e, const TwoVectorTest& t, const auto& fl,
         const auto& idx, auto& det) { e.test_stuck(t.v2, fl, idx, det); });
}

FaultSimEngine::Campaign FaultSimScheduler::campaign_transition(
    const std::vector<TwoVectorTest>& tests,
    const std::vector<TransitionFault>& faults, bool drop_detected) {
  return run_campaign(
      tests, faults, drop_detected,
      [](FaultSimEngine& e, const PatternBlock& b, const auto& fl, auto& det,
         const auto* act) { e.block_transition(b, fl, det, act); },
      [](FaultSimEngine& e, const TwoVectorTest& t, const auto& fl,
         const auto& idx, auto& det) { e.test_transition(t, fl, idx, det); });
}

FaultSimEngine::Campaign FaultSimScheduler::campaign_obd(
    const std::vector<TwoVectorTest>& tests,
    const std::vector<ObdFaultSite>& faults, bool drop_detected) {
  return run_campaign(
      tests, faults, drop_detected,
      [](FaultSimEngine& e, const PatternBlock& b, const auto& fl, auto& det,
         const auto* act) { e.block_obd(b, fl, det, act); },
      [](FaultSimEngine& e, const TwoVectorTest& t, const auto& fl,
         const auto& idx, auto& det) { e.test_obd(t, fl, idx, det); });
}

}  // namespace obd::atpg

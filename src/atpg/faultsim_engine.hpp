// Bit-parallel batched fault simulation (PPSFP) and its scheduler.
//
// The legacy simulators re-evaluated the whole circuit once per fault per
// pattern through the 64-lane Circuit::eval_words kernel with a single live
// bit — wasting 63/64 of every word. This engine restores the classical
// parallel-pattern single-fault-propagation structure:
//
//   - a PatternBlock packs up to 64 * lane_words (two-vector) tests, one
//     per word-lane bit, with the multi-word LaneBlock SIMD kernels
//     (logic/laneblock.hpp) fusing all words of a bundle per gate;
//   - the good circuit is evaluated once per block (per frame);
//   - each fault is simulated against the whole block at once: its net is
//     forced to per-lane words and the change is propagated event-driven
//     through the fault's levelized fanout cone (cones are cached per
//     net) — only gates with a changed input are evaluated, and the walk
//     short-circuits when the frontier empties before reaching a PO;
//   - OBD excitation is decided per lane from a per-(gate type, transistor)
//     lookup table over local two-vectors, so input-specific conditions
//     cost a table probe instead of a topology walk;
//   - campaigns optionally drop a fault from the active list at its first
//     detection, so late blocks only pay for the hard remainder.
//
// Two additions layer on top:
//
//   - the complementary *fault-major* packing (test_stuck/test_transition/
//     test_obd): 64 faults per word against one test, each word costing one
//     full-circuit injected evaluation — the winning axis when the fault
//     list dwarfs the test list (the OBD regime: one fault per transistor
//     per polarity);
//   - FaultSimScheduler: picks the packing per call shape and shards
//     independent pattern blocks across a small std::thread pool with
//     per-worker engines (cone caches and excitation tables are the only
//     per-engine state). Fault dropping is reconciled in block order after
//     each round, so campaign results are bit-identical to a
//     single-threaded run at any thread count or packing.
//
// The legacy entry points in faultsim.hpp are thin wrappers over the
// scheduler, keeping every existing caller's API and semantics.
#pragma once

#include <array>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <tuple>

#include "atpg/faults.hpp"
#include "atpg/patterns.hpp"
#include "obs/metrics.hpp"

namespace obd::atpg {

/// Registry ids of the engine's metrics (one process-wide interning).
/// Exposed so report code can read the merged scheduler sheet by id.
struct EngineMetricIds {
  obs::MetricId cone_bytes;
  obs::MetricId cone_peak_bytes;
  obs::MetricId cone_resident;
  obs::MetricId cone_evictions;
  obs::MetricId propagations;
  obs::MetricId frontier_events;
  obs::MetricId frontier_gate_evals;
  obs::MetricId frontier_early_exits;
  obs::MetricId delta_good_evals;
  obs::MetricId delta_full_fallbacks;
  obs::MetricId delta_gate_evals;
  obs::MetricId delta_changed_pis;
  static const EngineMetricIds& get();
};

/// Per-engine knobs (the scheduler forwards SimOptions fields here).
struct EngineOptions {
  /// Upper bound on resident fanout-cone cache memory, in bytes; least-
  /// recently-used cones are evicted past it (the most recent cone is
  /// always kept, so a single huge cone still simulates). 0 = unlimited.
  /// Cones are now a level-sorted gate list only (~4 bytes per cone gate —
  /// the old per-cone num_nets membership mask, O(nets^2) total on ISCAS
  /// circuits, is gone), so even c7552 fits comfortably uncapped.
  std::size_t cone_cache_bytes = 0;
  /// Words per pattern lane bundle: blocks carry 64 * lane_words tests and
  /// every per-net value is lane_words words wide (the LaneBlock SIMD
  /// kernels in logic/laneblock.hpp fuse them). Detection results are
  /// bit-identical at any width.
  int lane_words = 1;
  /// Cross-block good-eval delta propagation (see atpg::DeltaGoods): keep
  /// the previous block's good lanes resident and re-evaluate only the
  /// fanout of the PIs whose lane words changed. Bit-identical to a full
  /// eval in every mode.
  DeltaGoods delta_goods = DeltaGoods::kOff;
};

/// Up to 64 * lane_words two-vector tests packed lane-per-test (stuck-at
/// tests use only the second frame, with v1 == v2). Lane L lives at bit
/// (L & 63) of word (L >> 6); a one-word block is bit-for-bit the engine's
/// historical 64-lane block.
class PatternBlock {
 public:
  /// Lanes per 64-bit word (the historical whole-block size).
  static constexpr int kLanes = 64;

  explicit PatternBlock(const Circuit& c, int lane_words = 1)
      : lane_words_(lane_words < 1 ? 1 : lane_words),
        pi1_(c.inputs().size() * static_cast<std::size_t>(lane_words_), 0),
        pi2_(c.inputs().size() * static_cast<std::size_t>(lane_words_), 0) {}

  int lane_words() const { return lane_words_; }
  /// Total lanes: 64 * lane_words.
  int capacity() const { return kLanes * lane_words_; }
  int size() const { return size_; }
  bool full() const { return size_ == capacity(); }
  /// Live-lane mask of one word: bits of `word` whose lanes carry real
  /// tests. lane_mask() is the historical whole-block mask for one-word
  /// blocks.
  std::uint64_t lane_mask(int word = 0) const {
    const int live = size_ - word * kLanes;
    if (live >= kLanes) return ~0ull;
    if (live <= 0) return 0;
    return (1ull << live) - 1;
  }

  void clear();
  void push(const TwoVectorTest& t);

  /// Lane-strided PI words: PI i's words at [i * lane_words, +lane_words).
  const std::vector<std::uint64_t>& pi1() const { return pi1_; }
  const std::vector<std::uint64_t>& pi2() const { return pi2_; }
  const TwoVectorTest& test(int lane) const {
    return tests_[static_cast<std::size_t>(lane)];
  }

  /// Packs a test list into ceil(n / capacity) blocks, preserving order.
  static std::vector<PatternBlock> pack(const Circuit& c,
                                        const std::vector<TwoVectorTest>& tests,
                                        int lane_words = 1);

 private:
  int lane_words_ = 1;
  int size_ = 0;
  std::vector<std::uint64_t> pi1_, pi2_;  // [pi * lane_words + word]
  std::vector<TwoVectorTest> tests_;
};

/// Detection matrix: row per test, bit-packed over the fault list (64
/// faults per word). Built by the scheduler in either packing (pattern
/// blocks fill 64 rows per engine call; fault-major fills one row word per
/// injected evaluation); consumed directly by compaction, n-detect
/// selection, and the diagnosis dictionary.
struct DetectionMatrix {
  std::size_t n_tests = 0;
  std::size_t n_faults = 0;
  std::size_t words_per_row = 0;
  /// Row-major packed bits: rows[t * words_per_row + (f >> 6)] bit (f & 63).
  std::vector<std::uint64_t> rows;
  /// Faults detected by at least one test.
  std::vector<bool> covered;
  int covered_count = 0;

  bool detects(std::size_t test, std::size_t fault) const {
    return (rows[test * words_per_row + (fault >> 6)] >> (fault & 63)) & 1u;
  }
  const std::uint64_t* row(std::size_t test) const {
    return rows.data() + test * words_per_row;
  }
  /// Detection count of one test (row popcount).
  std::size_t row_count(std::size_t test) const;
};

class FaultSimEngine {
 public:
  explicit FaultSimEngine(const Circuit& c, EngineOptions opt = {});

  const Circuit& circuit() const { return c_; }

  // --- Cone-cache / frontier introspection -----------------------------
  // Counters live in the engine's obs::Sheet (see metrics()); hot loops
  // bump them through cached slot pointers at member-increment cost. The
  // getters below keep the original introspection API.
  /// Bytes currently held by cached fanout cones.
  std::size_t cone_cache_bytes() const { return static_cast<std::size_t>(*cone_bytes_); }
  /// High-water mark of cone_cache_bytes over the engine's lifetime.
  std::size_t cone_peak_bytes() const { return static_cast<std::size_t>(*cone_peak_bytes_); }
  /// Cones evicted so far (0 when the cache is uncapped).
  long long cone_evictions() const { return *cone_evictions_; }
  /// Cones currently resident.
  std::size_t cone_resident() const { return static_cast<std::size_t>(*cones_resident_); }
  /// Fault-injected cone propagations run (one per excited fault x block).
  long long propagations() const { return *propagations_; }
  /// Nets whose wide value actually changed during propagation (frontier
  /// membership events, fault sites included).
  long long frontier_events() const { return *frontier_events_; }
  /// Cone gates evaluated (gates with no changed input are skipped; the
  /// old engine paid one evaluation per cone gate per fault).
  long long frontier_gate_evals() const { return *frontier_gate_evals_; }
  /// Propagations that short-circuited before exhausting the cone because
  /// the frontier emptied below the remaining gates' levels.
  long long frontier_early_exits() const { return *frontier_early_exits_; }
  /// Good evaluations served by the cross-block delta walk.
  long long delta_good_evals() const { return *delta_good_evals_; }
  /// Good evaluations that fell back to a full sweep (no resident state,
  /// shape change, or the kAuto changed-PI threshold tripped).
  long long delta_full_fallbacks() const { return *delta_full_fallbacks_; }

  /// Drops the resident cross-block good state: the next good evaluation
  /// runs the full sweep. The scheduler calls this at campaign batch
  /// boundaries so per-round work stays deterministic per configuration.
  void reset_goods() { goods1_valid_ = goods2_valid_ = false; }

  /// This engine's accumulation sheet (single-owner; merged by the
  /// scheduler in worker order).
  const obs::Sheet& metrics() const { return metrics_; }

  // --- Block primitives (pattern-major) --------------------------------
  // Each fills `detect` (resized to faults.size() * lane_words) with
  // lane_words words per fault at [i * lane_words, +lane_words); bit k of
  // word w set = lane 64w + k of the block detects the fault. The block's
  // lane_words must equal the engine's. When `active` is non-null, faults
  // with active[i] == 0 are skipped (their words are 0).

  void block_stuck(const PatternBlock& b, const std::vector<StuckFault>& faults,
                   std::vector<std::uint64_t>& detect,
                   const std::vector<std::uint8_t>* active = nullptr);
  void block_transition(const PatternBlock& b,
                        const std::vector<TransitionFault>& faults,
                        std::vector<std::uint64_t>& detect,
                        const std::vector<std::uint8_t>* active = nullptr);
  void block_obd(const PatternBlock& b, const std::vector<ObdFaultSite>& faults,
                 std::vector<std::uint64_t>& detect,
                 const std::vector<std::uint8_t>* active = nullptr);

  // --- Fault-packed primitives (fault-major) ---------------------------
  // One test against an arbitrary subset of the fault list, 64 faults per
  // word: detect (resized to ceil(idx.size()/64)) gets bit j of word w set
  // when faults[idx[64w + j]] is detected. Each word costs one full-circuit
  // evaluation with per-lane fault injection, independent of how many
  // lanes are live — the complementary axis to the pattern blocks.

  void test_stuck(const InputVec& pattern,
                  const std::vector<StuckFault>& faults,
                  const std::vector<int>& idx,
                  std::vector<std::uint64_t>& detect);
  void test_transition(const TwoVectorTest& t,
                       const std::vector<TransitionFault>& faults,
                       const std::vector<int>& idx,
                       std::vector<std::uint64_t>& detect);
  void test_obd(const TwoVectorTest& t, const std::vector<ObdFaultSite>& faults,
                const std::vector<int>& idx,
                std::vector<std::uint64_t>& detect);

  // --- X-aware (3-valued) detection ------------------------------------
  /// Definite OBD detections under a partially-specified test, through
  /// Circuit::eval3_words on the care-masked vectors: a fault counts only
  /// when its gate-local two-vector is fully specified and exciting, the
  /// frame-1 output value is known, and some PO is known in both the good
  /// and the faulty frame-2 valuation with differing values. Kleene
  /// conservatism makes this a guarantee over *every* fill of the X bits —
  /// the property X-overlap compaction relies on.
  std::vector<bool> definite_obd(const XTwoVectorTest& t,
                                 const std::vector<ObdFaultSite>& faults);

  // --- Campaigns --------------------------------------------------------
  /// Whole-test-set simulation. With `drop_detected`, a fault leaves the
  /// active list at its first detection (first_test is unaffected: it is
  /// the first detecting test index either way; -1 = undetected).
  struct Campaign {
    std::vector<int> first_test;
    int detected = 0;
    /// Work metric fault dropping shrinks. Pattern-major: (active fault x
    /// block) pairs simulated (an upper bound on cone evaluations).
    /// Fault-major: 64-fault words simulated (an upper bound on injected
    /// full-circuit evaluations: words with no excited lane short-circuit).
    /// Not comparable across packings.
    long long fault_block_evals = 0;
  };

  Campaign campaign_stuck(const std::vector<InputVec>& patterns,
                          const std::vector<StuckFault>& faults,
                          bool drop_detected = true);
  Campaign campaign_transition(const std::vector<TwoVectorTest>& tests,
                               const std::vector<TransitionFault>& faults,
                               bool drop_detected = true);
  Campaign campaign_obd(const std::vector<TwoVectorTest>& tests,
                        const std::vector<ObdFaultSite>& faults,
                        bool drop_detected = true);

  /// PO difference word between the good block valuation `good` (one word
  /// per net) and the same block with `forced` pinned to `forced_word`,
  /// propagating only through the forced net's fanout cone. The one-word
  /// convenience form of the wide frontier propagation.
  std::uint64_t forced_diff(const std::vector<std::uint64_t>& good,
                            NetId forced, std::uint64_t forced_word);

 private:
  /// A fanout cone, levelized once: gate indices sorted by (logic level,
  /// topo rank). Membership masks and PO lists are gone — change flags
  /// replace the former and the engine-wide PO mask the latter — so a cone
  /// costs ~4 bytes per gate instead of num_nets bytes.
  struct Cone {
    std::vector<int> gates;
  };

  const Cone& cone_of(NetId n);

  /// Event-driven frontier propagation, the engine's hot loop: pins
  /// `forced` to `forced_words` (W words) against the lane-strided good
  /// valuation `good`, walks the forced net's cone in level order
  /// evaluating only gates with a changed input, marks a net changed only
  /// when its W-word value really differs from good, and stops as soon as
  /// every changed net's fanout level is behind the walk (the frontier
  /// fence). `diff` (W words) gets the OR over POs of (faulty ^ good).
  void propagate(const std::uint64_t* good, std::size_t n_words, NetId forced,
                 const std::uint64_t* forced_words, std::uint64_t* diff);
  /// 2^n x 2^n excitation table for (gate type, transistor): row bit v2 of
  /// entry v1 set when (v1 -> v2) excites the OBD defect.
  const std::array<std::uint16_t, 16>& obd_table(logic::GateType t,
                                                 const cells::TransistorRef& tr);

  template <typename Fault, typename BlockFn>
  Campaign run_campaign(const std::vector<TwoVectorTest>& tests,
                        const std::vector<Fault>& faults, bool drop_detected,
                        BlockFn block_fn);

  /// Good-circuit evaluation of one frame of a pattern block into `values`
  /// (lane-strided, opt_.lane_words per net). With delta_goods enabled and
  /// resident state from the previous block (`prev_pi` + `valid`), only the
  /// fanout of the PIs whose lane words changed is re-evaluated — exactly
  /// reproducing Circuit::eval_wide_into bit for bit. Falls back to the
  /// full sweep on the first block, on shape changes, and (kAuto) when the
  /// changed-PI fraction exceeds the fallback threshold.
  void eval_goods(const std::vector<std::uint64_t>& pi_words,
                  std::vector<std::uint64_t>& values,
                  std::vector<std::uint64_t>& prev_pi, bool& valid);
  /// The delta walk proper: seeds changed flags from the changed PIs
  /// (given as PI indices) and re-evaluates their fanout in level order
  /// over the resident `values`.
  void delta_eval(const std::vector<std::uint64_t>& pi_words,
                  std::vector<std::uint64_t>& values,
                  const std::vector<int>& changed_pis);

  /// Broadcast good valuations of both frames of `t` into good1_/good2_
  /// (frame 1 skipped when `need_frame1` is false — the stuck-at kernel
  /// reads only good2_).
  void load_broadcast_goods(const TwoVectorTest& t, bool need_frame1 = true);
  /// Registers lane `lane` of net `n` to be forced to `value` by the next
  /// injected_diff(). Lanes of untouched nets keep the good value.
  void inject(NetId n, int lane, bool value);
  void clear_injections();
  /// Full-circuit frame-2 evaluation with the registered injections; returns
  /// the OR over POs of (faulty ^ good2_).
  std::uint64_t injected_diff();

  const Circuit& c_;
  EngineOptions opt_;
  std::vector<int> topo_pos_;                    // gate -> topo rank
  std::vector<int> gate_level_;                  // gate -> logic level
  // Frontier fence input: per net, the maximum logic level of any gate
  // reading it (0 = no fanout). While the walk's level exceeds every
  // changed net's entry here, no remaining cone gate can see a change.
  std::vector<int> net_fence_;
  std::vector<std::uint8_t> po_mask_;            // per net: 1 = primary output
  std::vector<std::unique_ptr<Cone>> cones_;     // per net, lazy
  // LRU bookkeeping for the cone cache: recency list (front = most recent)
  // and each resident net's position in it (maintained only when capped).
  std::list<NetId> lru_;
  std::vector<std::list<NetId>::iterator> lru_pos_;
  // Metrics slab + cached slot pointers (stable: every engine id is
  // touched before the pointers are taken, and the engine adds no other
  // ids to its own sheet).
  obs::Sheet metrics_;
  long long* cone_bytes_ = nullptr;
  long long* cone_peak_bytes_ = nullptr;
  long long* cones_resident_ = nullptr;
  long long* cone_evictions_ = nullptr;
  long long* propagations_ = nullptr;
  long long* frontier_events_ = nullptr;
  long long* frontier_gate_evals_ = nullptr;
  long long* frontier_early_exits_ = nullptr;
  long long* delta_good_evals_ = nullptr;
  long long* delta_full_fallbacks_ = nullptr;
  long long* delta_gate_evals_ = nullptr;
  std::map<std::tuple<int, bool, int>, std::array<std::uint16_t, 16>>
      obd_tables_;
  // Lane-strided per-net scratch (lane_words words per net for the block
  // kernels; the fault-major kernels use the same buffers one word per
  // net).
  std::vector<std::uint64_t> good1_, good2_, bad_;
  // Propagation scratch: per-net changed flags with their reset list, the
  // gate-output staging words, and per-block masks / per-fault excitation
  // and diff words.
  std::vector<std::uint8_t> changed_;
  std::vector<NetId> touched_;
  std::vector<std::uint64_t> eval_tmp_, force_, diff_, exc_, masks_;
  // Fault-major injection scratch: per-net forced-to-{0,1} lane masks, the
  // touched-net reset list, and the faulty valuation buffer.
  std::vector<std::uint64_t> inj_set0_, inj_set1_;
  std::vector<NetId> inj_nets_;
  std::vector<std::uint64_t> pi_bcast_, ibad_;
  // Cross-block delta good-eval state: every gate sorted by (level, topo
  // rank) for the whole-circuit delta walk, the previous block's PI words
  // per frame, validity of the resident good1_/good2_ lanes, and the
  // changed-PI scratch list.
  std::vector<int> level_order_;
  std::vector<std::uint64_t> prev_pi1_, prev_pi2_;
  bool goods1_valid_ = false, goods2_valid_ = false;
  std::vector<int> changed_pis_;
};

/// Aggregated per-engine counters (summed over the scheduler's workers;
/// cone_bytes/cone_resident are sums of per-engine residency, peak bytes
/// the sum of per-engine peaks). Surfaced in the campaign JSON report so
/// cache pressure and frontier behaviour are observable without rerunning
/// the bench.
struct SimStats {
  long long cone_evictions = 0;
  std::size_t cone_resident = 0;
  std::size_t cone_bytes = 0;
  std::size_t cone_peak_bytes = 0;
  long long propagations = 0;
  long long frontier_events = 0;
  long long frontier_gate_evals = 0;
  long long frontier_early_exits = 0;
};

/// Schedules fault-simulation calls over packing modes and a worker pool.
/// (SimPacking/SimOptions live in patterns.hpp.)
///
/// Determinism contract: matrices and campaigns are bit-identical across
/// packings, thread counts, and lane widths (the randomized oracle harness
/// in tests/oracle_common.hpp enforces this against the legacy scalar
/// simulators). Threads shard whole pattern blocks (matrix rows are
/// disjoint per block) or whole tests (fault-major rows are disjoint per
/// test); fault-dropping campaigns run rounds of `threads * block_batch`
/// blocks against a frozen active list and reconcile detections in block
/// order between rounds, trading a little redundant tail work for exact
/// equivalence. Small shapes (gates x blocks x lane_words below a measured
/// threshold) run single-threaded regardless of `threads` — the barrier
/// tax exceeds the parallel win there.
class FaultSimScheduler {
 public:
  explicit FaultSimScheduler(const Circuit& c, SimOptions opt = {});
  ~FaultSimScheduler();

  const Circuit& circuit() const { return c_; }
  const SimOptions& options() const { return opt_; }

  /// Counter sums over all worker engines.
  SimStats stats() const;
  /// Worker sheets folded in engine-index order — deterministic totals for
  /// any thread count whenever the work partition is (matrix builds are;
  /// fault-dropping campaigns redo tail work per round by design).
  obs::Sheet merged_metrics() const;

  /// kAuto resolution for a call shape. Fault-major pays one full-circuit
  /// evaluation per 64 faults per test; pattern-major one cone evaluation
  /// per fault per 64 tests plus a good evaluation per block — so the
  /// fault axis wins only when the test list is a small fraction of one
  /// block and the fault list spans words.
  SimPacking resolve_packing(std::size_t n_tests, std::size_t n_faults) const;

  /// Workers a pattern-major call with this many blocks actually uses:
  /// min(threads, blocks), gated to 1 when gates x blocks x lane_words
  /// falls below a measured threshold — there the thread-spawn and round-
  /// barrier tax exceeds any parallel win, so the call runs inline.
  int pattern_workers(std::size_t n_blocks) const;
  /// Blocks per worker per campaign round (block_batch, or an auto pick
  /// that amortizes the round barrier without coarsening fault dropping
  /// too much).
  std::size_t resolve_batch(std::size_t n_blocks, int workers) const;

  // --- Detection matrices ----------------------------------------------
  DetectionMatrix matrix_stuck(const std::vector<InputVec>& patterns,
                               const std::vector<StuckFault>& faults);
  DetectionMatrix matrix_transition(const std::vector<TwoVectorTest>& tests,
                                    const std::vector<TransitionFault>& faults);
  DetectionMatrix matrix_obd(const std::vector<TwoVectorTest>& tests,
                             const std::vector<ObdFaultSite>& faults);

  // --- Campaigns (deterministic fault-drop reconciliation) -------------
  FaultSimEngine::Campaign campaign_stuck(
      const std::vector<InputVec>& patterns,
      const std::vector<StuckFault>& faults, bool drop_detected = true);
  FaultSimEngine::Campaign campaign_transition(
      const std::vector<TwoVectorTest>& tests,
      const std::vector<TransitionFault>& faults, bool drop_detected = true);
  FaultSimEngine::Campaign campaign_obd(
      const std::vector<TwoVectorTest>& tests,
      const std::vector<ObdFaultSite>& faults, bool drop_detected = true);

 private:
  template <typename Fault, typename BlockFn, typename TestFn>
  DetectionMatrix build_matrix(const std::vector<TwoVectorTest>& tests,
                               const std::vector<Fault>& faults,
                               BlockFn block_fn, TestFn test_fn);
  template <typename Fault, typename BlockFn, typename TestFn>
  FaultSimEngine::Campaign run_campaign(const std::vector<TwoVectorTest>& tests,
                                        const std::vector<Fault>& faults,
                                        bool drop_detected, BlockFn block_fn,
                                        TestFn test_fn);

  int workers_for(std::size_t jobs) const;
  FaultSimEngine& engine(int worker) { return *engines_[static_cast<std::size_t>(worker)]; }

  const Circuit& c_;
  SimOptions opt_;
  std::vector<std::unique_ptr<FaultSimEngine>> engines_;  // one per worker
};

}  // namespace obd::atpg

// Bit-parallel batched fault simulation (PPSFP).
//
// The legacy simulators re-evaluated the whole circuit once per fault per
// pattern through the 64-lane Circuit::eval_words kernel with a single live
// bit — wasting 63/64 of every word. This engine restores the classical
// parallel-pattern single-fault-propagation structure:
//
//   - a PatternBlock packs up to 64 (two-vector) tests, one per word lane;
//   - the good circuit is evaluated once per block (per frame);
//   - each fault is simulated against the whole block at once: its net is
//     forced to a per-lane word and only the fault's fanout cone is
//     re-evaluated (cones are cached per net);
//   - OBD excitation is decided per lane from a per-(gate type, transistor)
//     lookup table over local two-vectors, so input-specific conditions
//     cost a table probe instead of a topology walk;
//   - campaigns optionally drop a fault from the active list at its first
//     detection, so late blocks only pay for the hard remainder.
//
// The legacy entry points in faultsim.hpp are thin wrappers over one-test
// blocks, keeping every existing caller's API and semantics.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <tuple>

#include "atpg/faults.hpp"
#include "atpg/patterns.hpp"

namespace obd::atpg {

/// Up to 64 two-vector tests packed lane-per-test (stuck-at tests use only
/// the second frame, with v1 == v2).
class PatternBlock {
 public:
  static constexpr int kLanes = 64;

  explicit PatternBlock(const Circuit& c)
      : pi1_(c.inputs().size(), 0), pi2_(c.inputs().size(), 0) {}

  int size() const { return size_; }
  bool full() const { return size_ == kLanes; }
  /// Low `size()` bits set: lanes that carry real tests.
  std::uint64_t lane_mask() const {
    return size_ == kLanes ? ~0ull : ((1ull << size_) - 1);
  }

  void clear();
  void push(const TwoVectorTest& t);

  const std::vector<std::uint64_t>& pi1() const { return pi1_; }
  const std::vector<std::uint64_t>& pi2() const { return pi2_; }
  const TwoVectorTest& test(int lane) const {
    return tests_[static_cast<std::size_t>(lane)];
  }

  /// Packs a test list into ceil(n/64) blocks, preserving order.
  static std::vector<PatternBlock> pack(const Circuit& c,
                                        const std::vector<TwoVectorTest>& tests);

 private:
  int size_ = 0;
  std::vector<std::uint64_t> pi1_, pi2_;  // [pi] -> lane words
  std::vector<TwoVectorTest> tests_;
};

class FaultSimEngine {
 public:
  explicit FaultSimEngine(const Circuit& c);

  const Circuit& circuit() const { return c_; }

  // --- Block primitives ------------------------------------------------
  // Each fills `detect` (resized to faults.size()) with one word per fault;
  // bit k set = lane k of the block detects the fault. When `active` is
  // non-null, faults with active[i] == 0 are skipped (their word is 0).

  void block_stuck(const PatternBlock& b, const std::vector<StuckFault>& faults,
                   std::vector<std::uint64_t>& detect,
                   const std::vector<std::uint8_t>* active = nullptr);
  void block_transition(const PatternBlock& b,
                        const std::vector<TransitionFault>& faults,
                        std::vector<std::uint64_t>& detect,
                        const std::vector<std::uint8_t>* active = nullptr);
  void block_obd(const PatternBlock& b, const std::vector<ObdFaultSite>& faults,
                 std::vector<std::uint64_t>& detect,
                 const std::vector<std::uint8_t>* active = nullptr);

  // --- Campaigns --------------------------------------------------------
  /// Whole-test-set simulation. With `drop_detected`, a fault leaves the
  /// active list at its first detection (first_test is unaffected: it is
  /// the first detecting test index either way; -1 = undetected).
  struct Campaign {
    std::vector<int> first_test;
    int detected = 0;
    /// Number of (active fault x block) pairs simulated (an upper bound on
    /// cone evaluations: unexcited faults short-circuit before the cone
    /// pass) — the work metric fault dropping shrinks.
    long long fault_block_evals = 0;
  };

  Campaign campaign_stuck(const std::vector<std::uint64_t>& patterns,
                          const std::vector<StuckFault>& faults,
                          bool drop_detected = true);
  Campaign campaign_transition(const std::vector<TwoVectorTest>& tests,
                               const std::vector<TransitionFault>& faults,
                               bool drop_detected = true);
  Campaign campaign_obd(const std::vector<TwoVectorTest>& tests,
                        const std::vector<ObdFaultSite>& faults,
                        bool drop_detected = true);

  /// PO difference word between the good block valuation `good` and the
  /// same block with `forced` pinned to `forced_word`, re-evaluating only
  /// the forced net's fanout cone.
  std::uint64_t forced_diff(const std::vector<std::uint64_t>& good,
                            NetId forced, std::uint64_t forced_word);

 private:
  struct Cone {
    std::vector<int> gates;          // topo order
    std::vector<NetId> po_nets;      // PO nets inside the cone (dedup'd)
    std::vector<std::uint8_t> member;  // per-net: 1 = value comes from bad_
  };

  const Cone& cone_of(NetId n);
  /// 2^n x 2^n excitation table for (gate type, transistor): row bit v2 of
  /// entry v1 set when (v1 -> v2) excites the OBD defect.
  const std::array<std::uint16_t, 16>& obd_table(logic::GateType t,
                                                 const cells::TransistorRef& tr);

  template <typename Fault, typename BlockFn>
  Campaign run_campaign(const std::vector<TwoVectorTest>& tests,
                        const std::vector<Fault>& faults, bool drop_detected,
                        BlockFn block_fn);

  const Circuit& c_;
  std::vector<int> topo_pos_;                    // gate -> topo rank
  std::vector<std::unique_ptr<Cone>> cones_;     // per net, lazy
  std::map<std::tuple<int, bool, int>, std::array<std::uint16_t, 16>>
      obd_tables_;
  std::vector<std::uint64_t> good1_, good2_, bad_;  // per-net scratch words
};

}  // namespace obd::atpg

// Bit-parallel batched fault simulation (PPSFP) and its scheduler.
//
// The legacy simulators re-evaluated the whole circuit once per fault per
// pattern through the 64-lane Circuit::eval_words kernel with a single live
// bit — wasting 63/64 of every word. This engine restores the classical
// parallel-pattern single-fault-propagation structure:
//
//   - a PatternBlock packs up to 64 (two-vector) tests, one per word lane;
//   - the good circuit is evaluated once per block (per frame);
//   - each fault is simulated against the whole block at once: its net is
//     forced to a per-lane word and only the fault's fanout cone is
//     re-evaluated (cones are cached per net);
//   - OBD excitation is decided per lane from a per-(gate type, transistor)
//     lookup table over local two-vectors, so input-specific conditions
//     cost a table probe instead of a topology walk;
//   - campaigns optionally drop a fault from the active list at its first
//     detection, so late blocks only pay for the hard remainder.
//
// Two additions layer on top:
//
//   - the complementary *fault-major* packing (test_stuck/test_transition/
//     test_obd): 64 faults per word against one test, each word costing one
//     full-circuit injected evaluation — the winning axis when the fault
//     list dwarfs the test list (the OBD regime: one fault per transistor
//     per polarity);
//   - FaultSimScheduler: picks the packing per call shape and shards
//     independent pattern blocks across a small std::thread pool with
//     per-worker engines (cone caches and excitation tables are the only
//     per-engine state). Fault dropping is reconciled in block order after
//     each round, so campaign results are bit-identical to a
//     single-threaded run at any thread count or packing.
//
// The legacy entry points in faultsim.hpp are thin wrappers over the
// scheduler, keeping every existing caller's API and semantics.
#pragma once

#include <array>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <tuple>

#include "atpg/faults.hpp"
#include "atpg/patterns.hpp"

namespace obd::atpg {

/// Per-engine knobs (the scheduler forwards SimOptions fields here).
struct EngineOptions {
  /// Upper bound on resident fanout-cone cache memory, in bytes; least-
  /// recently-used cones are evicted past it (the most recent cone is
  /// always kept, so a single huge cone still simulates). 0 = unlimited —
  /// fine for the zoo, but a multi-thousand-net ISCAS circuit holds a
  /// num_nets-byte membership mask per cached net, i.e. O(nets^2) bytes
  /// when every fault site stays resident.
  std::size_t cone_cache_bytes = 0;
};

/// Up to 64 two-vector tests packed lane-per-test (stuck-at tests use only
/// the second frame, with v1 == v2).
class PatternBlock {
 public:
  static constexpr int kLanes = 64;

  explicit PatternBlock(const Circuit& c)
      : pi1_(c.inputs().size(), 0), pi2_(c.inputs().size(), 0) {}

  int size() const { return size_; }
  bool full() const { return size_ == kLanes; }
  /// Low `size()` bits set: lanes that carry real tests.
  std::uint64_t lane_mask() const {
    return size_ == kLanes ? ~0ull : ((1ull << size_) - 1);
  }

  void clear();
  void push(const TwoVectorTest& t);

  const std::vector<std::uint64_t>& pi1() const { return pi1_; }
  const std::vector<std::uint64_t>& pi2() const { return pi2_; }
  const TwoVectorTest& test(int lane) const {
    return tests_[static_cast<std::size_t>(lane)];
  }

  /// Packs a test list into ceil(n/64) blocks, preserving order.
  static std::vector<PatternBlock> pack(const Circuit& c,
                                        const std::vector<TwoVectorTest>& tests);

 private:
  int size_ = 0;
  std::vector<std::uint64_t> pi1_, pi2_;  // [pi] -> lane words
  std::vector<TwoVectorTest> tests_;
};

/// Detection matrix: row per test, bit-packed over the fault list (64
/// faults per word). Built by the scheduler in either packing (pattern
/// blocks fill 64 rows per engine call; fault-major fills one row word per
/// injected evaluation); consumed directly by compaction, n-detect
/// selection, and the diagnosis dictionary.
struct DetectionMatrix {
  std::size_t n_tests = 0;
  std::size_t n_faults = 0;
  std::size_t words_per_row = 0;
  /// Row-major packed bits: rows[t * words_per_row + (f >> 6)] bit (f & 63).
  std::vector<std::uint64_t> rows;
  /// Faults detected by at least one test.
  std::vector<bool> covered;
  int covered_count = 0;

  bool detects(std::size_t test, std::size_t fault) const {
    return (rows[test * words_per_row + (fault >> 6)] >> (fault & 63)) & 1u;
  }
  const std::uint64_t* row(std::size_t test) const {
    return rows.data() + test * words_per_row;
  }
  /// Detection count of one test (row popcount).
  std::size_t row_count(std::size_t test) const;
};

class FaultSimEngine {
 public:
  explicit FaultSimEngine(const Circuit& c, EngineOptions opt = {});

  const Circuit& circuit() const { return c_; }

  // --- Cone-cache introspection ----------------------------------------
  /// Bytes currently held by cached fanout cones.
  std::size_t cone_cache_bytes() const { return cone_bytes_; }
  /// Cones evicted so far (0 when the cache is uncapped).
  long long cone_evictions() const { return cone_evictions_; }
  /// Cones currently resident (tracked only when the cache is capped).
  std::size_t cone_resident() const { return lru_.size(); }

  // --- Block primitives (pattern-major) --------------------------------
  // Each fills `detect` (resized to faults.size()) with one word per fault;
  // bit k set = lane k of the block detects the fault. When `active` is
  // non-null, faults with active[i] == 0 are skipped (their word is 0).

  void block_stuck(const PatternBlock& b, const std::vector<StuckFault>& faults,
                   std::vector<std::uint64_t>& detect,
                   const std::vector<std::uint8_t>* active = nullptr);
  void block_transition(const PatternBlock& b,
                        const std::vector<TransitionFault>& faults,
                        std::vector<std::uint64_t>& detect,
                        const std::vector<std::uint8_t>* active = nullptr);
  void block_obd(const PatternBlock& b, const std::vector<ObdFaultSite>& faults,
                 std::vector<std::uint64_t>& detect,
                 const std::vector<std::uint8_t>* active = nullptr);

  // --- Fault-packed primitives (fault-major) ---------------------------
  // One test against an arbitrary subset of the fault list, 64 faults per
  // word: detect (resized to ceil(idx.size()/64)) gets bit j of word w set
  // when faults[idx[64w + j]] is detected. Each word costs one full-circuit
  // evaluation with per-lane fault injection, independent of how many
  // lanes are live — the complementary axis to the pattern blocks.

  void test_stuck(const InputVec& pattern,
                  const std::vector<StuckFault>& faults,
                  const std::vector<int>& idx,
                  std::vector<std::uint64_t>& detect);
  void test_transition(const TwoVectorTest& t,
                       const std::vector<TransitionFault>& faults,
                       const std::vector<int>& idx,
                       std::vector<std::uint64_t>& detect);
  void test_obd(const TwoVectorTest& t, const std::vector<ObdFaultSite>& faults,
                const std::vector<int>& idx,
                std::vector<std::uint64_t>& detect);

  // --- X-aware (3-valued) detection ------------------------------------
  /// Definite OBD detections under a partially-specified test, through
  /// Circuit::eval3_words on the care-masked vectors: a fault counts only
  /// when its gate-local two-vector is fully specified and exciting, the
  /// frame-1 output value is known, and some PO is known in both the good
  /// and the faulty frame-2 valuation with differing values. Kleene
  /// conservatism makes this a guarantee over *every* fill of the X bits —
  /// the property X-overlap compaction relies on.
  std::vector<bool> definite_obd(const XTwoVectorTest& t,
                                 const std::vector<ObdFaultSite>& faults);

  // --- Campaigns --------------------------------------------------------
  /// Whole-test-set simulation. With `drop_detected`, a fault leaves the
  /// active list at its first detection (first_test is unaffected: it is
  /// the first detecting test index either way; -1 = undetected).
  struct Campaign {
    std::vector<int> first_test;
    int detected = 0;
    /// Work metric fault dropping shrinks. Pattern-major: (active fault x
    /// block) pairs simulated (an upper bound on cone evaluations).
    /// Fault-major: 64-fault words simulated (an upper bound on injected
    /// full-circuit evaluations: words with no excited lane short-circuit).
    /// Not comparable across packings.
    long long fault_block_evals = 0;
  };

  Campaign campaign_stuck(const std::vector<InputVec>& patterns,
                          const std::vector<StuckFault>& faults,
                          bool drop_detected = true);
  Campaign campaign_transition(const std::vector<TwoVectorTest>& tests,
                               const std::vector<TransitionFault>& faults,
                               bool drop_detected = true);
  Campaign campaign_obd(const std::vector<TwoVectorTest>& tests,
                        const std::vector<ObdFaultSite>& faults,
                        bool drop_detected = true);

  /// PO difference word between the good block valuation `good` and the
  /// same block with `forced` pinned to `forced_word`, re-evaluating only
  /// the forced net's fanout cone.
  std::uint64_t forced_diff(const std::vector<std::uint64_t>& good,
                            NetId forced, std::uint64_t forced_word);

 private:
  struct Cone {
    std::vector<int> gates;          // topo order
    std::vector<NetId> po_nets;      // PO nets inside the cone (dedup'd)
    std::vector<std::uint8_t> member;  // per-net: 1 = value comes from bad_
  };

  const Cone& cone_of(NetId n);
  /// 2^n x 2^n excitation table for (gate type, transistor): row bit v2 of
  /// entry v1 set when (v1 -> v2) excites the OBD defect.
  const std::array<std::uint16_t, 16>& obd_table(logic::GateType t,
                                                 const cells::TransistorRef& tr);

  template <typename Fault, typename BlockFn>
  Campaign run_campaign(const std::vector<TwoVectorTest>& tests,
                        const std::vector<Fault>& faults, bool drop_detected,
                        BlockFn block_fn);

  /// Broadcast good valuations of both frames of `t` into good1_/good2_
  /// (frame 1 skipped when `need_frame1` is false — the stuck-at kernel
  /// reads only good2_).
  void load_broadcast_goods(const TwoVectorTest& t, bool need_frame1 = true);
  /// Registers lane `lane` of net `n` to be forced to `value` by the next
  /// injected_diff(). Lanes of untouched nets keep the good value.
  void inject(NetId n, int lane, bool value);
  void clear_injections();
  /// Full-circuit frame-2 evaluation with the registered injections; returns
  /// the OR over POs of (faulty ^ good2_).
  std::uint64_t injected_diff();

  const Circuit& c_;
  EngineOptions opt_;
  std::vector<int> topo_pos_;                    // gate -> topo rank
  std::vector<std::unique_ptr<Cone>> cones_;     // per net, lazy
  // LRU bookkeeping for the cone cache: recency list (front = most recent)
  // and each resident net's position in it.
  std::list<NetId> lru_;
  std::vector<std::list<NetId>::iterator> lru_pos_;
  std::size_t cone_bytes_ = 0;
  long long cone_evictions_ = 0;
  std::map<std::tuple<int, bool, int>, std::array<std::uint16_t, 16>>
      obd_tables_;
  std::vector<std::uint64_t> good1_, good2_, bad_;  // per-net scratch words
  // Fault-major injection scratch: per-net forced-to-{0,1} lane masks, the
  // touched-net reset list, and the faulty valuation buffer.
  std::vector<std::uint64_t> inj_set0_, inj_set1_;
  std::vector<NetId> inj_nets_;
  std::vector<std::uint64_t> pi_bcast_, ibad_;
};

/// Schedules fault-simulation calls over packing modes and a worker pool.
/// (SimPacking/SimOptions live in patterns.hpp.)
///
/// Determinism contract: matrices and campaigns are bit-identical across
/// packings and thread counts (the randomized oracle harness in
/// tests/oracle_common.hpp enforces this against the legacy scalar
/// simulators). Threads shard whole pattern blocks (matrix rows are
/// disjoint per block) or whole tests (fault-major rows are disjoint per
/// test); fault-dropping campaigns run rounds of `threads` blocks against
/// a frozen active list and reconcile detections in block order between
/// rounds, trading a little redundant tail work for exact equivalence.
class FaultSimScheduler {
 public:
  explicit FaultSimScheduler(const Circuit& c, SimOptions opt = {});
  ~FaultSimScheduler();

  const Circuit& circuit() const { return c_; }
  const SimOptions& options() const { return opt_; }

  /// kAuto resolution for a call shape. Fault-major pays one full-circuit
  /// evaluation per 64 faults per test; pattern-major one cone evaluation
  /// per fault per 64 tests plus a good evaluation per block — so the
  /// fault axis wins only when the test list is a small fraction of one
  /// block and the fault list spans words.
  SimPacking resolve_packing(std::size_t n_tests, std::size_t n_faults) const;

  // --- Detection matrices ----------------------------------------------
  DetectionMatrix matrix_stuck(const std::vector<InputVec>& patterns,
                               const std::vector<StuckFault>& faults);
  DetectionMatrix matrix_transition(const std::vector<TwoVectorTest>& tests,
                                    const std::vector<TransitionFault>& faults);
  DetectionMatrix matrix_obd(const std::vector<TwoVectorTest>& tests,
                             const std::vector<ObdFaultSite>& faults);

  // --- Campaigns (deterministic fault-drop reconciliation) -------------
  FaultSimEngine::Campaign campaign_stuck(
      const std::vector<InputVec>& patterns,
      const std::vector<StuckFault>& faults, bool drop_detected = true);
  FaultSimEngine::Campaign campaign_transition(
      const std::vector<TwoVectorTest>& tests,
      const std::vector<TransitionFault>& faults, bool drop_detected = true);
  FaultSimEngine::Campaign campaign_obd(
      const std::vector<TwoVectorTest>& tests,
      const std::vector<ObdFaultSite>& faults, bool drop_detected = true);

 private:
  template <typename Fault, typename BlockFn, typename TestFn>
  DetectionMatrix build_matrix(const std::vector<TwoVectorTest>& tests,
                               const std::vector<Fault>& faults,
                               BlockFn block_fn, TestFn test_fn);
  template <typename Fault, typename BlockFn, typename TestFn>
  FaultSimEngine::Campaign run_campaign(const std::vector<TwoVectorTest>& tests,
                                        const std::vector<Fault>& faults,
                                        bool drop_detected, BlockFn block_fn,
                                        TestFn test_fn);

  int workers_for(std::size_t jobs) const;
  FaultSimEngine& engine(int worker) { return *engines_[static_cast<std::size_t>(worker)]; }

  const Circuit& c_;
  SimOptions opt_;
  std::vector<std::unique_ptr<FaultSimEngine>> engines_;  // one per worker
};

}  // namespace obd::atpg

#include "atpg/ndetect.hpp"

#include <algorithm>

#include "atpg/patterns.hpp"

namespace obd::atpg {

NDetectResult build_ndetect_set(const Circuit& c,
                                const std::vector<ObdFaultSite>& faults,
                                const NDetectOptions& opt) {
  NDetectResult result;
  result.detect_counts.assign(faults.size(), 0);

  // Candidate pool: per-fault ATPG tests first (guarantee 1-detect where
  // possible), then random patterns for diversity.
  std::vector<TwoVectorTest> pool;
  const AtpgRun base = run_obd_atpg(c, faults, opt.podem);
  pool.insert(pool.end(), base.tests.begin(), base.tests.end());
  const auto rnd = random_pairs(static_cast<int>(c.inputs().size()),
                                opt.random_pool, opt.seed);
  pool.insert(pool.end(), rnd.begin(), rnd.end());

  // Deduplicate.
  std::sort(pool.begin(), pool.end(),
            [](const TwoVectorTest& a, const TwoVectorTest& b) {
              return a.v1 != b.v1 ? a.v1 < b.v1 : a.v2 < b.v2;
            });
  pool.erase(std::unique(pool.begin(), pool.end()), pool.end());

  // Fault-simulate the whole pool in 64-test blocks (sharded over
  // opt.sim.threads workers), then replay the greedy growth over matrix
  // rows: keep any test that raises a below-target fault's count. (Counts
  // must reach n, so no fault dropping here.)
  const DetectionMatrix m = build_obd_matrix(c, pool, faults, opt.sim);
  for (std::size_t t = 0; t < pool.size(); ++t) {
    bool useful = false;
    for (std::size_t i = 0; i < faults.size(); ++i)
      if (m.detects(t, i) && result.detect_counts[i] < opt.n) useful = true;
    if (!useful) continue;
    result.tests.push_back(pool[t]);
    for (std::size_t i = 0; i < faults.size(); ++i)
      if (m.detects(t, i)) ++result.detect_counts[i];
  }

  for (int cnt : result.detect_counts) {
    if (cnt > 0) ++result.detectable;
    if (cnt >= opt.n) ++result.satisfied;
  }
  return result;
}

double timing_aware_coverage(const Circuit& c,
                             const std::vector<TwoVectorTest>& tests,
                             const std::vector<ObdFaultSite>& faults,
                             double extra_delay, double capture_time,
                             const logic::DelayLibrary& lib) {
  if (faults.empty()) return 1.0;
  std::size_t caught = 0;
  for (const auto& f : faults) {
    for (const auto& t : tests) {
      if (simulate_obd_timing(c, t, f, extra_delay, /*stuck=*/false,
                              capture_time, lib)) {
        ++caught;
        break;
      }
    }
  }
  return static_cast<double>(caught) / static_cast<double>(faults.size());
}

double nominal_critical_time(const Circuit& c,
                             const std::vector<TwoVectorTest>& tests,
                             const logic::DelayLibrary& lib) {
  logic::TimingSimulator sim(c, lib);
  double worst = 0.0;
  for (const auto& t : tests) {
    const logic::TimingRun run = sim.run_two_vector(t.v1, t.v2, 1.0);
    if (!run.events.empty())
      worst = std::max(worst, run.events.back().time);
  }
  return worst;
}

}  // namespace obd::atpg

// n-detect OBD test sets.
//
// The paper's related work (Pomeranz & Reddy) motivates n-detection for
// transition faults: a *marginal* delay defect only fails timing when the
// sensitized path is long enough, so detecting each fault n times through
// (likely) different paths raises the chance that one detection observes a
// near-critical path. For OBD this matters inside the window of
// opportunity: early-stage defects add little delay, and a 1-detect set
// whose test propagates along a short path will miss them.
//
// build_ndetect_set() grows a test pool (ATPG tests + random two-vector
// patterns) greedily until every gross-delay-testable fault is detected at
// least n times (or the pool is exhausted).
#pragma once

#include "atpg/faultsim.hpp"
#include "atpg/twoframe.hpp"

namespace obd::atpg {

struct NDetectResult {
  std::vector<TwoVectorTest> tests;
  /// Detection count per fault under the final set.
  std::vector<int> detect_counts;
  /// Faults that reached the target count.
  int satisfied = 0;
  /// Faults detectable at all (count > 0 achievable).
  int detectable = 0;
};

struct NDetectOptions {
  int n = 3;
  /// Random pool size added on top of the ATPG tests.
  int random_pool = 256;
  std::uint64_t seed = 0xd15ea5e;
  PodemOptions podem;
  /// Packing / worker-thread options for the pool fault simulation.
  SimOptions sim;
};

NDetectResult build_ndetect_set(const Circuit& c,
                                const std::vector<ObdFaultSite>& faults,
                                const NDetectOptions& opt = {});

/// Timing-aware coverage of a test set: fraction of `faults` for which at
/// least one test makes a captured PO differ when the excited gate gets
/// `extra_delay` and the clock samples at `capture_time`. This is where
/// n-detect pays off: short-path detections absorb small extra delays.
double timing_aware_coverage(const Circuit& c,
                             const std::vector<TwoVectorTest>& tests,
                             const std::vector<ObdFaultSite>& faults,
                             double extra_delay, double capture_time,
                             const logic::DelayLibrary& lib = {});

/// Nominal (fault-free) critical settling time of the circuit over a test
/// set: the latest event time across all tests. Useful to place the capture
/// clock just above the functional requirement.
double nominal_critical_time(const Circuit& c,
                             const std::vector<TwoVectorTest>& tests,
                             const logic::DelayLibrary& lib = {});

}  // namespace obd::atpg

#include "atpg/patterns.hpp"

#include <stdexcept>
#include <string>

namespace obd::atpg {

std::vector<TwoVectorTest> all_ordered_pairs(int n_pis, bool include_repeats) {
  if (n_pis < 0 || n_pis > 16)
    throw std::invalid_argument(
        "all_ordered_pairs: n_pis = " + std::to_string(n_pis) +
        " out of range [0, 16] (4^n_pis pairs would be enumerated; use "
        "random_pairs for wide circuits)");
  std::vector<TwoVectorTest> out;
  const std::uint64_t limit = 1ull << n_pis;
  for (std::uint64_t v1 = 0; v1 < limit; ++v1)
    for (std::uint64_t v2 = 0; v2 < limit; ++v2) {
      if (!include_repeats && v1 == v2) continue;
      out.push_back({v1, v2});
    }
  return out;
}

std::vector<TwoVectorTest> random_pairs(int n_pis, int count,
                                        std::uint64_t seed) {
  if (n_pis < 0)
    throw std::invalid_argument("random_pairs: negative n_pis = " +
                                std::to_string(n_pis));
  util::Prng prng(seed);
  const auto width = static_cast<std::size_t>(n_pis);
  std::vector<TwoVectorTest> out;
  out.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    InputVec v1 = InputVec::random(width, prng);
    InputVec v2 = InputVec::random(width, prng);
    out.push_back({std::move(v1), std::move(v2)});
  }
  return out;
}

std::vector<TwoVectorTest> consecutive_pairs(
    const std::vector<InputVec>& patterns) {
  std::vector<TwoVectorTest> out;
  for (std::size_t i = 0; i + 1 < patterns.size(); ++i)
    out.push_back({patterns[i], patterns[i + 1]});
  return out;
}

}  // namespace obd::atpg

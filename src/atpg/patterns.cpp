#include "atpg/patterns.hpp"

namespace obd::atpg {

std::vector<TwoVectorTest> all_ordered_pairs(int n_pis, bool include_repeats) {
  std::vector<TwoVectorTest> out;
  const std::uint64_t limit = 1ull << n_pis;
  for (std::uint64_t v1 = 0; v1 < limit; ++v1)
    for (std::uint64_t v2 = 0; v2 < limit; ++v2) {
      if (!include_repeats && v1 == v2) continue;
      out.push_back({v1, v2});
    }
  return out;
}

std::vector<TwoVectorTest> random_pairs(int n_pis, int count,
                                        std::uint64_t seed) {
  util::Prng prng(seed);
  const std::uint64_t mask =
      n_pis >= 64 ? ~0ull : ((1ull << n_pis) - 1);
  std::vector<TwoVectorTest> out;
  out.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i)
    out.push_back({prng.next_u64() & mask, prng.next_u64() & mask});
  return out;
}

std::vector<TwoVectorTest> consecutive_pairs(
    const std::vector<std::uint64_t>& patterns) {
  std::vector<TwoVectorTest> out;
  for (std::size_t i = 0; i + 1 < patterns.size(); ++i)
    out.push_back({patterns[i], patterns[i + 1]});
  return out;
}

}  // namespace obd::atpg

// Test-pattern containers and generators.
#pragma once

#include <cstdint>
#include <vector>

#include "logic/circuit.hpp"
#include "logic/inputvec.hpp"
#include "util/prng.hpp"

namespace obd::atpg {

using logic::InputVec;

/// A single input vector (bit i = PI i), any width.
struct TestVector {
  InputVec bits;
  /// Bits the generator actually cared about; don't-cares were filled.
  InputVec care_mask;

  bool operator==(const TestVector&) const = default;
};

/// A two-vector (launch/capture) test.
struct TwoVectorTest {
  InputVec v1;
  InputVec v2;

  bool operator==(const TwoVectorTest&) const = default;
};

/// A partially-specified two-vector test: per-frame value and care bits.
/// PODEM emits these (don't-care PIs keep care_mask 0); the X-aware fault
/// simulator proves detections that hold under *any* fill of the X bits,
/// which is what lets compaction merge tests by care-bit overlap instead of
/// exact vector equality.
struct XTwoVectorTest {
  TestVector v1;
  TestVector v2;

  bool operator==(const XTwoVectorTest&) const = default;

  /// No PI is required to be 0 by one test and 1 by the other, in either
  /// frame — the precondition for merging.
  bool compatible(const XTwoVectorTest& o) const {
    return InputVec::compatible(v1.bits, v1.care_mask, o.v1.bits,
                                o.v1.care_mask) &&
           InputVec::compatible(v2.bits, v2.care_mask, o.v2.bits,
                                o.v2.care_mask);
  }

  /// Union of the care bits; don't-cares of both fall back to 0. Only
  /// meaningful when compatible().
  XTwoVectorTest merged(const XTwoVectorTest& o) const {
    XTwoVectorTest m;
    m.v1.care_mask = v1.care_mask | o.v1.care_mask;
    m.v1.bits = InputVec::merge(v1.bits, v1.care_mask, o.v1.bits,
                                o.v1.care_mask);
    m.v2.care_mask = v2.care_mask | o.v2.care_mask;
    m.v2.bits = InputVec::merge(v2.bits, v2.care_mask, o.v2.bits,
                                o.v2.care_mask);
    return m;
  }

  /// The concrete vector pair actually applied on the tester (X bits as
  /// filled in `bits`).
  TwoVectorTest concrete() const { return {v1.bits, v2.bits}; }
};

/// Every ordered pair (v1, v2) over n_pis inputs. `include_repeats` keeps
/// v1 == v2 pairs (which can never excite a transition). Exhaustive
/// enumeration is 4^n_pis pairs, so n_pis is capped at 16; larger requests
/// throw std::invalid_argument (use random_pairs for wide circuits).
std::vector<TwoVectorTest> all_ordered_pairs(int n_pis,
                                             bool include_repeats = false);

/// `count` random pairs, deterministic in `seed`. Any width: vectors wider
/// than 64 PIs consume one PRNG draw per 64-bit word.
std::vector<TwoVectorTest> random_pairs(int n_pis, int count,
                                        std::uint64_t seed);

/// Converts a flat pattern sequence into back-to-back pairs
/// (p0,p1), (p1,p2), ... — how single-vector (stuck-at) test sets are
/// applied in practice when probing dynamic faults.
std::vector<TwoVectorTest> consecutive_pairs(
    const std::vector<InputVec>& patterns);

/// How a simulation call packs work into 64-bit words. Lives here (not in
/// faultsim_engine.hpp) so options structs like PodemOptions can name it
/// without pulling in the engine.
enum class SimPacking {
  kAuto,          ///< pick from the (tests, faults) shape per call
  kPatternMajor,  ///< 64 tests per word, per-fault fanout-cone propagation
  kFaultMajor,    ///< 64 faults per word, full-circuit injected evaluation
};

const char* to_string(SimPacking p);

/// Cross-block good-circuit delta evaluation. Consecutive pattern blocks of
/// a campaign usually share most PI lane bits (PRNG-sequential pools are
/// highly correlated), so re-evaluating only the fanout of the PIs whose
/// lanes changed beats a full topological sweep. Results are bit-identical
/// in every mode — the delta walk reproduces eval_wide_into exactly.
enum class DeltaGoods {
  kOff,   ///< full eval_wide_into per block (the historical behavior)
  kOn,    ///< always delta-evaluate from the previous resident block
  kAuto,  ///< delta unless too many PIs changed (falls back to full eval)
};

const char* to_string(DeltaGoods d);

struct SimOptions {
  /// Worker threads for sharding pattern blocks (and fault-major matrix
  /// rows); 1 runs inline on the calling thread. Results are bit-identical
  /// at any count.
  int threads = 1;
  SimPacking packing = SimPacking::kAuto;
  /// Per-engine cap on the resident fanout-cone cache (LRU eviction past
  /// it; see EngineOptions::cone_cache_bytes). 0 = unlimited. Purely a
  /// memory/speed trade: detections are unaffected.
  std::size_t cone_cache_bytes = 0;
  /// Words per pattern-block lane bundle: 1 = the classic 64-lane blocks,
  /// 4 = 256 lanes, 8 = 512 (the CLI's --lanes divided by 64). Wide
  /// bundles run through the LaneBlock SIMD kernels; detection matrices,
  /// campaigns, and matrix_hash are bit-identical at every width.
  int lane_words = 1;
  /// Pattern blocks per worker per fault-dropping campaign round; 0 picks
  /// automatically. Larger batches amortize the round barrier at the cost
  /// of coarser fault-drop reconciliation (results stay bit-identical —
  /// only the redundant-work metric moves).
  int block_batch = 0;
  /// Cross-block good-eval delta propagation (see DeltaGoods). Off by
  /// default: the resident-state reuse is bit-identical but shifts the
  /// frontier/eval observability counters.
  DeltaGoods delta_goods = DeltaGoods::kOff;
  /// Grey-order the pattern-major matrix stream: blocks are formed from a
  /// (v1, v2)-sorted permutation of the tests so consecutive blocks share
  /// more PI lane bits, maximizing delta-goods overlap. Detection rows are
  /// scattered back through the permutation, so the matrix (and its hash)
  /// is bit-identical with the knob on or off.
  bool grey_order = false;
};

}  // namespace obd::atpg

// Test-pattern containers and generators.
#pragma once

#include <cstdint>
#include <vector>

#include "logic/circuit.hpp"
#include "util/prng.hpp"

namespace obd::atpg {

/// A single input vector (bit i = PI i).
struct TestVector {
  std::uint64_t bits = 0;
  /// Bits the generator actually cared about; don't-cares were filled.
  std::uint64_t care_mask = 0;
};

/// A two-vector (launch/capture) test.
struct TwoVectorTest {
  std::uint64_t v1 = 0;
  std::uint64_t v2 = 0;

  bool operator==(const TwoVectorTest&) const = default;
};

/// Every ordered pair (v1, v2) over n_pis inputs. `include_repeats` keeps
/// v1 == v2 pairs (which can never excite a transition). n_pis <= 16.
std::vector<TwoVectorTest> all_ordered_pairs(int n_pis,
                                             bool include_repeats = false);

/// `count` random pairs, deterministic in `seed`.
std::vector<TwoVectorTest> random_pairs(int n_pis, int count,
                                        std::uint64_t seed);

/// Converts a flat pattern sequence into back-to-back pairs
/// (p0,p1), (p1,p2), ... — how single-vector (stuck-at) test sets are
/// applied in practice when probing dynamic faults.
std::vector<TwoVectorTest> consecutive_pairs(
    const std::vector<std::uint64_t>& patterns);

}  // namespace obd::atpg

#include "atpg/podem.hpp"

#include <algorithm>
#include <chrono>

namespace obd::atpg {
namespace {

using logic::Gate;
using logic::GateType;
using logic::Tri;

/// 3-valued evaluation with one net optionally forced (the faulty circuit).
void eval3_forced(const Circuit& c, const std::vector<Tri>& pi,
                  NetId forced_net, Tri forced_value,
                  std::vector<Tri>* values) {
  values->assign(c.num_nets(), Tri::kX);
  for (std::size_t i = 0; i < c.inputs().size(); ++i) {
    const NetId n = c.inputs()[i];
    (*values)[static_cast<std::size_t>(n)] =
        (n == forced_net) ? forced_value : pi[i];
  }
  Tri ins[8];
  for (int g : c.topo_order()) {
    const Gate& gate = c.gate(g);
    for (std::size_t k = 0; k < gate.inputs.size(); ++k)
      ins[k] = (*values)[static_cast<std::size_t>(gate.inputs[k])];
    (*values)[static_cast<std::size_t>(gate.output)] =
        (gate.output == forced_net) ? forced_value
                                    : logic::gate_eval3(gate.type, ins);
  }
}

class Engine {
 public:
  Engine(const Circuit& c, std::vector<NetConstraint> constraints,
         std::optional<StuckFault> fault, bool require_propagation,
         const PodemOptions& opt)
      : c_(c),
        constraints_(std::move(constraints)),
        fault_(fault),
        require_propagation_(require_propagation),
        opt_(opt),
        pi_(c.inputs().size(), Tri::kX) {
    if (opt_.time_budget_s > 0.0)
      deadline_ = std::chrono::steady_clock::now() +
                  std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                      std::chrono::duration<double>(opt_.time_budget_s));
  }

  PodemResult run() {
    PodemResult result;
    imply();
    for (;;) {
      if (conflicted()) {
        if (!backtrack()) {
          result.status = aborted_ ? PodemStatus::kAborted
                                   : PodemStatus::kUntestable;
          break;
        }
        continue;
      }
      if (satisfied()) {
        result.status = PodemStatus::kFound;
        result.vector = make_vector();
        break;
      }
      const auto obj = pick_objective();
      if (!obj) {
        // No way to make progress from this state: treat as a conflict.
        if (!backtrack()) {
          result.status = aborted_ ? PodemStatus::kAborted
                                   : PodemStatus::kUntestable;
          break;
        }
        continue;
      }
      const auto pi_choice = backtrace(obj->first, obj->second);
      if (!pi_choice) {
        if (!backtrack()) {
          result.status = aborted_ ? PodemStatus::kAborted
                                   : PodemStatus::kUntestable;
          break;
        }
        continue;
      }
      decisions_.push_back(Decision{pi_choice->first, pi_choice->second, false});
      pi_[pi_choice->first] = logic::tri_of(pi_choice->second);
      imply();
    }
    if (result.status == PodemStatus::kAborted) result.reason = reason_;
    result.backtracks = backtracks_;
    result.implications = implications_;
    return result;
  }

 private:
  struct Decision {
    std::size_t pi;
    bool value;
    bool flipped;
  };

  void imply() {
    ++implications_;
    eval3_forced(c_, pi_, logic::kNoNet, Tri::kX, &good_);
    if (fault_) {
      eval3_forced(c_, pi_, fault_->net, logic::tri_of(fault_->value),
                   &faulty_);
    } else {
      faulty_ = good_;
    }
  }

  Tri good_of(NetId n) const { return good_[static_cast<std::size_t>(n)]; }
  Tri faulty_of(NetId n) const { return faulty_[static_cast<std::size_t>(n)]; }

  /// Determined differing value (a D or D') on the net.
  bool diff(NetId n) const {
    const Tri g = good_of(n);
    const Tri f = faulty_of(n);
    return g != Tri::kX && f != Tri::kX && g != f;
  }

  bool activated() const {
    return fault_ && good_of(fault_->net) != Tri::kX &&
           good_of(fault_->net) != logic::tri_of(fault_->value);
  }

  bool po_diff() const {
    for (NetId po : c_.outputs())
      if (diff(po)) return true;
    return false;
  }

  /// D-frontier: gates with a differing input whose output is not yet
  /// fully determined-equal.
  std::vector<int> d_frontier() const {
    std::vector<int> out;
    for (std::size_t gi = 0; gi < c_.num_gates(); ++gi) {
      const Gate& g = c_.gate(static_cast<int>(gi));
      if (diff(g.output)) continue;
      const bool blocked = good_of(g.output) != Tri::kX &&
                           faulty_of(g.output) != Tri::kX;
      if (blocked) continue;
      for (NetId in : g.inputs)
        if (diff(in)) {
          out.push_back(static_cast<int>(gi));
          break;
        }
    }
    return out;
  }

  bool conflicted() const {
    for (const auto& k : constraints_) {
      const Tri v = good_of(k.net);
      if (v != Tri::kX && v != logic::tri_of(k.value)) return true;
    }
    if (fault_) {
      const Tri v = good_of(fault_->net);
      if (v != Tri::kX && v == logic::tri_of(fault_->value))
        return true;  // activation impossible
      if (require_propagation_ && activated() && !po_diff() &&
          d_frontier().empty())
        return true;  // difference can no longer reach a PO
    }
    return false;
  }

  bool satisfied() const {
    for (const auto& k : constraints_)
      if (good_of(k.net) != logic::tri_of(k.value)) return false;
    if (fault_) {
      if (!activated()) return false;
      if (require_propagation_ && !po_diff()) return false;
    }
    return true;
  }

  /// Next (net, value) goal.
  std::optional<std::pair<NetId, bool>> pick_objective() const {
    for (const auto& k : constraints_)
      if (good_of(k.net) == Tri::kX) return std::make_pair(k.net, k.value);
    if (fault_ && good_of(fault_->net) == Tri::kX)
      return std::make_pair(fault_->net, !fault_->value);
    if (fault_ && require_propagation_ && !po_diff()) {
      for (int gi : d_frontier()) {
        const Gate& g = c_.gate(gi);
        for (std::size_t k = 0; k < g.inputs.size(); ++k) {
          const NetId in = g.inputs[k];
          if (good_of(in) != Tri::kX) continue;
          // Pick a value for this input that keeps the difference alive.
          for (bool v : {true, false}) {
            if (transparent_with(gi, k, v)) return std::make_pair(in, v);
          }
        }
      }
    }
    return std::nullopt;
  }

  /// Could gate `gi` still produce a differing output if input slot k is
  /// set to v? (3-valued check on both circuits.)
  bool transparent_with(int gi, std::size_t slot, bool v) const {
    const Gate& g = c_.gate(gi);
    Tri gin[8];
    Tri fin[8];
    for (std::size_t k = 0; k < g.inputs.size(); ++k) {
      gin[k] = good_of(g.inputs[k]);
      fin[k] = faulty_of(g.inputs[k]);
      if (k == slot) {
        gin[k] = logic::tri_of(v);
        fin[k] = logic::tri_of(v);
      }
    }
    const Tri og = logic::gate_eval3(g.type, gin);
    const Tri of = logic::gate_eval3(g.type, fin);
    // Blocked only when both sides are determined and equal.
    return !(og != Tri::kX && of != Tri::kX && og == of);
  }

  /// Walks the objective back to an unassigned PI.
  std::optional<std::pair<std::size_t, bool>> backtrace(NetId net,
                                                        bool value) const {
    NetId n = net;
    bool v = value;
    for (int guard = 0; guard < 10000; ++guard) {
      const int drv = c_.driver_of(n);
      if (drv < 0) {
        // PI (or floating net: then it is not a PI and cannot be set).
        for (std::size_t i = 0; i < c_.inputs().size(); ++i)
          if (c_.inputs()[i] == n)
            return std::make_pair(i, v);
        return std::nullopt;
      }
      const Gate& g = c_.gate(drv);
      // Choose an undetermined input and a value that can still produce v.
      bool advanced = false;
      for (std::size_t k = 0; k < g.inputs.size() && !advanced; ++k) {
        if (good_of(g.inputs[k]) != Tri::kX) continue;
        for (bool cand : {false, true}) {
          if (can_output(drv, k, cand, v)) {
            n = g.inputs[k];
            v = cand;
            advanced = true;
            break;
          }
        }
      }
      if (!advanced) return std::nullopt;
    }
    return std::nullopt;
  }

  /// With input slot `k` of gate `gi` set to `cand` (and other X inputs
  /// free), can the gate output be `target`?
  bool can_output(int gi, std::size_t slot, bool cand, bool target) const {
    const Gate& g = c_.gate(gi);
    // Enumerate completions of X inputs.
    std::uint32_t fixed = 0;
    std::uint32_t x_mask = 0;
    for (std::size_t k = 0; k < g.inputs.size(); ++k) {
      const Tri t = (k == slot) ? logic::tri_of(cand) : good_of(g.inputs[k]);
      if (t == Tri::k1) fixed |= (1u << k);
      else if (t == Tri::kX) x_mask |= (1u << k);
    }
    for (std::uint32_t sub = x_mask;; sub = (sub - 1) & x_mask) {
      if (logic::gate_eval(g.type, fixed | sub) == target) return true;
      if (sub == 0) break;
    }
    return false;
  }

  bool backtrack() {
    while (!decisions_.empty()) {
      Decision& d = decisions_.back();
      if (!d.flipped) {
        d.flipped = true;
        ++backtracks_;
        if (backtracks_ > opt_.max_backtracks) {
          aborted_ = true;
          reason_ = AbortReason::kBacktracks;
          return false;
        }
        // One clock read per backtrack is noise next to the full 3-valued
        // re-evaluation each backtrack already pays in imply().
        if (deadline_ && std::chrono::steady_clock::now() > *deadline_) {
          aborted_ = true;
          reason_ = AbortReason::kTime;
          return false;
        }
        pi_[d.pi] = logic::tri_of(!d.value);
        imply();
        return true;
      }
      pi_[d.pi] = Tri::kX;
      decisions_.pop_back();
    }
    imply();
    return false;
  }

  TestVector make_vector() const {
    TestVector v;
    for (std::size_t i = 0; i < pi_.size(); ++i) {
      if (pi_[i] == Tri::kX) {
        if (opt_.fill_value) v.bits.set_bit(i);
      } else {
        v.care_mask.set_bit(i);
        if (pi_[i] == Tri::k1) v.bits.set_bit(i);
      }
    }
    return v;
  }

  const Circuit& c_;
  std::vector<NetConstraint> constraints_;
  std::optional<StuckFault> fault_;
  bool require_propagation_;
  PodemOptions opt_;
  std::vector<Tri> pi_;
  std::vector<Tri> good_;
  std::vector<Tri> faulty_;
  std::vector<Decision> decisions_;
  long backtracks_ = 0;
  long implications_ = 0;
  bool aborted_ = false;
  AbortReason reason_ = AbortReason::kNone;
  std::optional<std::chrono::steady_clock::time_point> deadline_;
};

}  // namespace

PodemResult podem_stuck_at(const Circuit& c, const StuckFault& fault,
                           const PodemOptions& opt) {
  Engine e(c, {}, fault, /*require_propagation=*/true, opt);
  return e.run();
}

PodemResult podem_justify(const Circuit& c,
                          const std::vector<NetConstraint>& constraints,
                          const PodemOptions& opt) {
  Engine e(c, constraints, std::nullopt, false, opt);
  return e.run();
}

PodemResult podem_constrained_fault(
    const Circuit& c, const std::vector<NetConstraint>& constraints,
    NetId forced, bool forced_value, const PodemOptions& opt) {
  Engine e(c, constraints, StuckFault{forced, forced_value},
           /*require_propagation=*/true, opt);
  return e.run();
}

}  // namespace obd::atpg

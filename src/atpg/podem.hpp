// PODEM: path-oriented decision making over primary inputs.
//
// One engine serves three uses:
//  - classical stuck-at test generation (activation + D-propagation);
//  - pure justification (set of required good-circuit net values) — the
//    frame-1 step of two-vector generation;
//  - constrained fault tests (required values + a forced faulty net) — the
//    frame-2 step of OBD test generation, where the defective gate's inputs
//    are pinned to the excitation vector while the delayed output value
//    propagates as a D to some primary output.
//
// Values are (good, faulty) pairs of 3-valued signals; D = (1,0), D' = (0,1).
// Decisions are made only at primary inputs, so exhausting the decision tree
// proves untestability. A backtrack budget guards against blowup; hitting it
// reports kAborted (counted separately from kUntestable, as ATPG tools do).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "atpg/faults.hpp"
#include "atpg/patterns.hpp"

namespace obd::atpg {

struct PodemOptions {
  /// Maximum number of backtracks before giving up.
  long max_backtracks = 100000;
  /// Wall-clock budget for one search; 0 disables. Exceeding it aborts
  /// with AbortReason::kTime. Unlike the backtrack limit this makes the
  /// found/aborted split machine-speed dependent, so campaign results are
  /// only reproducible across runs when the budget is off (the default) —
  /// resumable campaigns use the reason split to re-attempt exactly the
  /// time-budget aborts.
  double time_budget_s = 0.0;
  /// Value used to fill don't-care PIs in the returned vector.
  bool fill_value = false;
  /// Random-pattern prepass for the whole-list drivers (run_*_atpg): this
  /// many random tests are fault-simulated in 64-lane blocks with fault
  /// dropping; the deterministic search then only targets the survivors,
  /// and the useful random tests join the returned test set. 0 disables.
  int random_phase = 0;
  std::uint64_t random_phase_seed = 0x0bd5eedull;
  /// Scheduler configuration for the random-phase fault simulation
  /// (threads + packing; results are bit-identical for any setting).
  SimOptions sim;
};

enum class PodemStatus { kFound, kUntestable, kAborted };

/// Why a kAborted search gave up. Backtrack-limit aborts are deterministic
/// (the same circuit/fault/options always abort); time-budget aborts are a
/// property of the run, so resumed campaigns re-attempt only those.
enum class AbortReason : std::uint8_t { kNone = 0, kBacktracks, kTime };

struct PodemResult {
  PodemStatus status = PodemStatus::kUntestable;
  AbortReason reason = AbortReason::kNone;  ///< set when status == kAborted
  TestVector vector;
  long backtracks = 0;
  long implications = 0;
};

/// A required good-circuit value on a net.
struct NetConstraint {
  NetId net = logic::kNoNet;
  bool value = false;
};

/// Generates a test for a stuck-at fault (activation + propagation to a PO).
PodemResult podem_stuck_at(const Circuit& c, const StuckFault& fault,
                           const PodemOptions& opt = {});

/// Finds an input vector satisfying all constraints (no fault machinery).
PodemResult podem_justify(const Circuit& c,
                          const std::vector<NetConstraint>& constraints,
                          const PodemOptions& opt = {});

/// Frame-2 workhorse: satisfies `constraints` in the good circuit while the
/// `forced` net is stuck at `forced_value` in the faulty circuit, and the
/// difference reaches a primary output.
PodemResult podem_constrained_fault(const Circuit& c,
                                    const std::vector<NetConstraint>& constraints,
                                    NetId forced, bool forced_value,
                                    const PodemOptions& opt = {});

}  // namespace obd::atpg

#include "atpg/robust.hpp"

#include "core/excitation.hpp"

namespace obd::atpg {

bool is_single_input_change(const TwoVectorTest& t) {
  return (t.v1 ^ t.v2).popcount() == 1;
}

namespace {

/// Core of the robustness check, assuming the (test, fault) detection has
/// already been established by the caller.
bool robust_given_detected(const Circuit& c, const TwoVectorTest& test,
                           const ObdFaultSite& fault) {
  const std::vector<bool> v1_values = c.eval(test.v1);
  const std::vector<bool> v2_values = c.eval(test.v2);
  const auto& fgate = c.gate(fault.gate_index);
  const auto ftopo = logic::gate_topology(fgate.type);
  const std::uint32_t flv1 = c.gate_input_bits(fault.gate_index, v1_values);
  const bool f_old = ftopo->output(flv1);

  // Try freezing each other transitioning gate at its V1 value alongside
  // the fault; if the PO difference disappears, the detection depends on
  // that gate being fast: non-robust.
  for (std::size_t g = 0; g < c.num_gates(); ++g) {
    if (static_cast<int>(g) == fault.gate_index) continue;
    const NetId out = c.gate(static_cast<int>(g)).output;
    const bool o1 = v1_values[static_cast<std::size_t>(out)];
    const bool o2 = v2_values[static_cast<std::size_t>(out)];
    if (o1 == o2) continue;  // Steady gate: cannot mask.
    // Evaluate frame 2 with BOTH the fault's gate and gate g frozen.
    // eval_words supports one forced net, so freeze g via modified PI eval:
    // do a manual topological pass.
    std::vector<bool> values(c.num_nets(), false);
    for (std::size_t i = 0; i < c.inputs().size(); ++i)
      values[static_cast<std::size_t>(c.inputs()[i])] = test.v2.bit(i);
    for (int gi : c.topo_order()) {
      const auto& gate = c.gate(gi);
      bool val;
      if (gi == fault.gate_index) {
        val = f_old;
      } else if (gi == static_cast<int>(g)) {
        val = o1;
      } else {
        val = logic::gate_eval(gate.type, c.gate_input_bits(gi, values));
      }
      values[static_cast<std::size_t>(gate.output)] = val;
    }
    const InputVec good2 = c.pack_outputs(v2_values);
    if (c.pack_outputs(values) == good2) return false;  // masked
  }
  return true;
}

}  // namespace

bool robust_under_single_slow_gate(const Circuit& c, const TwoVectorTest& test,
                                   const ObdFaultSite& fault) {
  // Baseline detection must hold.
  if (!simulate_obd(c, test, {fault})[0]) return false;
  return robust_given_detected(c, test, fault);
}

RobustnessReport classify_obd_tests(const Circuit& c,
                                    const std::vector<ObdFaultSite>& faults,
                                    const std::vector<TwoVectorTest>& tests) {
  RobustnessReport rep;
  // One block-parallel pass for the detection pairs, then classify each.
  const DetectionMatrix m = build_obd_matrix(c, tests, faults);
  for (std::size_t t = 0; t < tests.size(); ++t) {
    for (std::size_t f = 0; f < faults.size(); ++f) {
      if (!m.detects(t, f)) continue;
      ++rep.tests;
      if (is_single_input_change(tests[t])) ++rep.sic;
      // Detection is established by the matrix; go straight to the check.
      if (robust_given_detected(c, tests[t], faults[f])) ++rep.robust;
    }
  }
  return rep;
}

}  // namespace obd::atpg

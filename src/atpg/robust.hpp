// Robustness classification of OBD two-vector tests.
//
// Delay-test theory distinguishes robust tests (valid regardless of other
// delays in the circuit) from non-robust ones (valid only if the rest of
// the circuit is fast enough). The same distinction matters for concurrent
// OBD testing: an aging circuit has *many* slightly-slow gates, and a
// non-robust detection can be masked by an unrelated slow path.
//
// We use two practical notions:
//  - single input change (SIC): only one PI switches between V1 and V2 —
//    a classical sufficient condition for hazard-freeness at the inputs;
//  - single-slow-gate robustness: detection survives when any one *other*
//    gate is arbitrarily slow (its output frozen at the V1 value). This is
//    checkable exactly with the gross-delay simulator and is the
//    operational guarantee a concurrent monitor wants.
#pragma once

#include "atpg/faultsim.hpp"

namespace obd::atpg {

/// True when v1 -> v2 changes exactly one primary input.
bool is_single_input_change(const TwoVectorTest& t);

/// True when `test` detects `fault` even if any single other gate is
/// arbitrarily slow (frozen at its frame-1 output during frame 2).
bool robust_under_single_slow_gate(const Circuit& c, const TwoVectorTest& test,
                                   const ObdFaultSite& fault);

struct RobustnessReport {
  int tests = 0;
  int sic = 0;
  int robust = 0;  ///< single-slow-gate robust detections
};

/// Classifies each (test, its-target-fault) pair produced by ATPG.
RobustnessReport classify_obd_tests(const Circuit& c,
                                    const std::vector<ObdFaultSite>& faults,
                                    const std::vector<TwoVectorTest>& tests);

}  // namespace obd::atpg

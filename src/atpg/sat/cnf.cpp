#include "atpg/sat/cnf.hpp"

#include <algorithm>

#include "logic/gate.hpp"

namespace obd::atpg::sat {

using logic::Gate;
using logic::GateType;
using logic::NetId;

NetVars CnfEncoder::encode_good() {
  NetVars nv;
  nv.var.resize(c_.num_nets(), kNoSatVar);
  for (std::size_t n = 0; n < c_.num_nets(); ++n) nv.var[n] = s_.new_var();
  Var ins[8];
  for (int gi : c_.topo_order()) {
    const Gate& g = c_.gate(gi);
    for (std::size_t k = 0; k < g.inputs.size(); ++k) ins[k] = nv.of(g.inputs[k]);
    encode_gate(g.type, nv.of(g.output), ins);
  }
  return nv;
}

NetVars CnfEncoder::encode_faulty(const NetVars& good, NetId forced,
                                  bool forced_value) {
  // Cone membership: the forced net plus every net a cone gate drives.
  std::vector<bool> in_cone(c_.num_nets(), false);
  in_cone[static_cast<std::size_t>(forced)] = true;
  NetVars nv = good;  // outside the cone the copies share variables
  nv.var[static_cast<std::size_t>(forced)] = s_.new_var();
  pin(nv, forced, forced_value);

  Var ins[8];
  for (int gi : c_.topo_order()) {
    const Gate& g = c_.gate(gi);
    if (g.output == forced) continue;  // replaced net: driver disconnected
    bool touched = false;
    for (const NetId in : g.inputs)
      if (in_cone[static_cast<std::size_t>(in)]) {
        touched = true;
        break;
      }
    if (!touched) continue;
    in_cone[static_cast<std::size_t>(g.output)] = true;
    nv.var[static_cast<std::size_t>(g.output)] = s_.new_var();
    for (std::size_t k = 0; k < g.inputs.size(); ++k) ins[k] = nv.of(g.inputs[k]);
    encode_gate(g.type, nv.of(g.output), ins);
  }
  return nv;
}

bool CnfEncoder::assert_po_difference(const NetVars& good,
                                      const NetVars& faulty) {
  std::vector<Lit> any_diff;
  std::vector<NetId> seen;
  for (const NetId po : c_.outputs()) {
    const Var gv = good.of(po);
    const Var fv = faulty.of(po);
    if (fv == gv) continue;  // PO outside the cone: never differs
    if (std::find(seen.begin(), seen.end(), po) != seen.end()) continue;
    seen.push_back(po);
    const Var d = s_.new_var();
    // d -> (g != f); the reverse direction is unnecessary for a one-sided
    // "some PO differs" assertion.
    clause({mk_lit(d, true), mk_lit(gv), mk_lit(fv)});
    clause({mk_lit(d, true), mk_lit(gv, true), mk_lit(fv, true)});
    any_diff.push_back(mk_lit(d));
  }
  if (any_diff.empty()) return false;
  clause(any_diff);
  return true;
}

void CnfEncoder::pin(const NetVars& nv, NetId n, bool value) {
  clause({mk_lit(nv.of(n), !value)});
}

void CnfEncoder::clause(std::vector<Lit> lits) {
  if (guard_ != -1) lits.push_back(guard_);
  s_.add_clause(lits);
}

void CnfEncoder::encode_gate(GateType t, Var o, const Var* x) {
  const int n = logic::gate_arity(t);
  switch (t) {
    case GateType::kBuf:
      clause({mk_lit(o, true), mk_lit(x[0])});
      clause({mk_lit(o), mk_lit(x[0], true)});
      return;
    case GateType::kInv:
      clause({mk_lit(o, true), mk_lit(x[0], true)});
      clause({mk_lit(o), mk_lit(x[0])});
      return;
    case GateType::kAnd2: {
      std::vector<Lit> all{mk_lit(o)};
      for (int i = 0; i < n; ++i) {
        clause({mk_lit(o, true), mk_lit(x[i])});
        all.push_back(mk_lit(x[i], true));
      }
      clause(all);
      return;
    }
    case GateType::kNand2:
    case GateType::kNand3:
    case GateType::kNand4: {
      std::vector<Lit> all{mk_lit(o, true)};
      for (int i = 0; i < n; ++i) {
        clause({mk_lit(o), mk_lit(x[i])});
        all.push_back(mk_lit(x[i], true));
      }
      clause(all);
      return;
    }
    case GateType::kOr2: {
      std::vector<Lit> all{mk_lit(o, true)};
      for (int i = 0; i < n; ++i) {
        clause({mk_lit(o), mk_lit(x[i], true)});
        all.push_back(mk_lit(x[i]));
      }
      clause(all);
      return;
    }
    case GateType::kNor2:
    case GateType::kNor3:
    case GateType::kNor4: {
      std::vector<Lit> all{mk_lit(o)};
      for (int i = 0; i < n; ++i) {
        clause({mk_lit(o, true), mk_lit(x[i], true)});
        all.push_back(mk_lit(x[i]));
      }
      clause(all);
      return;
    }
    case GateType::kXor2:
      clause({mk_lit(o, true), mk_lit(x[0]), mk_lit(x[1])});
      clause({mk_lit(o, true), mk_lit(x[0], true), mk_lit(x[1], true)});
      clause({mk_lit(o), mk_lit(x[0], true), mk_lit(x[1])});
      clause({mk_lit(o), mk_lit(x[0]), mk_lit(x[1], true)});
      return;
    case GateType::kXnor2:
      clause({mk_lit(o), mk_lit(x[0]), mk_lit(x[1])});
      clause({mk_lit(o), mk_lit(x[0], true), mk_lit(x[1], true)});
      clause({mk_lit(o, true), mk_lit(x[0], true), mk_lit(x[1])});
      clause({mk_lit(o, true), mk_lit(x[0]), mk_lit(x[1], true)});
      return;
    default: {
      // Complex cells (AOI/OAI): truth-table expansion against the
      // simulator's own gate function — one clause per input minterm.
      std::vector<Lit> lits;
      for (std::uint32_t m = 0; m < (1u << n); ++m) {
        lits.clear();
        for (int i = 0; i < n; ++i)
          lits.push_back(mk_lit(x[i], ((m >> i) & 1u) != 0));
        lits.push_back(mk_lit(o, !logic::gate_eval(t, m)));
        clause(lits);
      }
      return;
    }
  }
}

}  // namespace obd::atpg::sat

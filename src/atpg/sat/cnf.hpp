// CNF encoding of good/faulty circuit pairs for the SAT ATPG backend.
//
// The encoding mirrors the PODEM engine's semantics exactly (podem.cpp's
// eval3_forced): the faulty circuit is the good circuit with one net
// replaced wholesale by a constant, so the faulty copy only needs fresh
// variables for that net's transitive fanout cone — every other net shares
// the good copy's variable. A one-sided miter then asserts that some
// primary output inside the cone differs between the copies.
//
// Gate consistency clauses use the hand-minimized standard forms for the
// simple cells (the classic Tseitin shapes) and a truth-table expansion
// against logic::gate_eval for the complex AOI/OAI cells — at most 16
// clauses for a 4-input gate, and correct by construction against the
// simulator (tests/test_sat_atpg.cpp checks every gate type exhaustively).
#pragma once

#include <vector>

#include "atpg/sat/solver.hpp"
#include "logic/circuit.hpp"

namespace obd::atpg::sat {

/// One circuit copy's net -> solver-variable map (kNoSatVar where the copy
/// has no variable of its own — for a faulty copy, nets outside the cone).
inline constexpr Var kNoSatVar = -1;

struct NetVars {
  std::vector<Var> var;  // indexed by NetId

  Var of(logic::NetId n) const { return var[static_cast<std::size_t>(n)]; }
};

class CnfEncoder {
 public:
  CnfEncoder(const logic::Circuit& c, Solver& s) : c_(c), s_(s) {}

  /// Fresh variables for every net plus consistency clauses for every
  /// gate: one fault-free circuit copy (one scan frame).
  NetVars encode_good();

  /// The faulty companion of `good`: fresh variables only for `forced` and
  /// its transitive fanout, with the forced variable unit-pinned to
  /// `forced_value` (the driver's clauses are intentionally absent — the
  /// net is replaced, not overridden). Cone gates read good variables for
  /// their side inputs.
  NetVars encode_faulty(const NetVars& good, logic::NetId forced,
                        bool forced_value);

  /// One-sided miter over the primary outputs the faulty cone reaches:
  /// asserts at least one differs between the copies. Returns false when
  /// the cone reaches no PO — the difference is structurally unobservable
  /// and the instance is untestable without solving.
  bool assert_po_difference(const NetVars& good, const NetVars& faulty);

  /// Unit-pins net `n` of a copy to `value`.
  void pin(const NetVars& nv, logic::NetId n, bool value);

  /// Consistency clauses for one gate over solver variables.
  void encode_gate(logic::GateType t, Var out, const Var* ins);

  /// Every clause emitted while a guard is set gets the literal appended —
  /// the standard activation-literal trick: with `guard` an activation
  /// variable's *negation*, the clauses are inert until the solver assumes
  /// the activation variable true. Lets one persistent solver hold many
  /// faulty-cone encodings side by side (see SatSession).
  void set_guard(Lit guard) { guard_ = guard; }
  void clear_guard() { guard_ = -1; }

 private:
  /// All clause emission funnels through here so the guard applies
  /// uniformly (including the forced-net pin inside encode_faulty).
  void clause(std::vector<Lit> lits);

  const logic::Circuit& c_;
  Solver& s_;
  Lit guard_ = -1;
};

}  // namespace obd::atpg::sat

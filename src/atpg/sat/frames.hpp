// Shared two-frame machinery of the SAT ATPG backend: the frame-goal
// shape that both the fresh-solve driver (sat_atpg.cpp) and the
// incremental session (incremental.cpp) translate faults into, plus the
// reference fresh solve for one (fault frame, justify frame) pair.
//
// Internal to src/atpg/sat/ — the public surface stays sat_atpg.hpp and
// incremental.hpp. It exists so the incremental session can delegate to
// the exact fresh path (byte-identical cubes) without duplicating it.
#pragma once

#include <optional>
#include <vector>

#include "atpg/faults.hpp"
#include "atpg/podem.hpp"
#include "atpg/sat/sat_atpg.hpp"
#include "logic/circuit.hpp"

namespace obd::atpg::sat::detail {

/// One scan frame's obligations: net constraints on the good circuit and,
/// for the fault frame, activation of the forced net plus a definite PO
/// difference against the faulty circuit.
struct FrameGoal {
  std::vector<NetConstraint> constraints;
  std::optional<StuckFault> fault;  // forced net + value (fault frame only)
};

enum class PairStatus { kCube, kRefuted, kUnknown };

/// Encodes and solves one (fault frame, justify frame) pair in a throwaway
/// solver. On SAT, the model is lifted to a maximal-don't-care cube and
/// re-validated by 3-valued simulation (see sat_atpg.cpp for the rules).
PairStatus solve_pair(const logic::Circuit& c, const FrameGoal& fault_frame,
                      const std::optional<FrameGoal>& justify_frame,
                      const SatAtpgOptions& opt, SatAtpgResult* r);

/// Constraints pinning every input of gate `gate_idx` to the matching bit
/// of `bits` (the obd_excitations input-vector convention).
std::vector<NetConstraint> pin_gate_inputs(const logic::Circuit& c,
                                           int gate_idx, std::uint32_t bits);

}  // namespace obd::atpg::sat::detail

#include "atpg/sat/incremental.hpp"

#include "core/excitation.hpp"
#include "logic/gate.hpp"

namespace obd::atpg::sat {

using detail::FrameGoal;
using detail::PairStatus;
using logic::NetId;

SatSession::SatSession(const logic::Circuit& c, SatAtpgOptions opt)
    : c_(c), opt_(opt), enc_(c_, s_) {
  good2_ = enc_.encode_good();
}

void SatSession::ensure_frame1() {
  if (have_frame1_) return;
  good1_ = enc_.encode_good();
  have_frame1_ = true;
}

SatSession::ConeEntry& SatSession::cone_for(NetId net, bool value) {
  const auto [it, inserted] = cones_.try_emplace({net, value});
  ConeEntry& e = it->second;
  if (!inserted) {
    ++stats_.cone_hits;
    return e;
  }
  ++stats_.cone_encodes;
  e.act = s_.new_var();
  // Guard every cone clause with ~act: inert until `act` is assumed, so
  // all cones coexist in one clause database without contradicting each
  // other (two cones may pin the same forced net to opposite values).
  enc_.set_guard(mk_lit(e.act, true));
  e.faulty = enc_.encode_faulty(good2_, net, value);
  e.observable = enc_.assert_po_difference(good2_, e.faulty);
  enc_.clear_guard();
  return e;
}

PairStatus SatSession::solve_pair(const FrameGoal& fault_frame,
                                  const std::optional<FrameGoal>& justify,
                                  SatAtpgResult* r) {
  ++stats_.pairs_total;
  if (stats_.pairs_total > 1)
    stats_.vars_shared +=
        static_cast<long long>(c_.num_nets()) * (justify ? 2 : 1);
  ConeEntry& cone =
      cone_for(fault_frame.fault->net, fault_frame.fault->value);
  if (!cone.observable) {
    // The cone reaches no PO: structurally untestable, cached verdict.
    ++stats_.unobservable_hits;
    return PairStatus::kRefuted;
  }

  // Everything pair-specific is an assumption (a pin of net n to value v
  // is the single literal making var(n) == v), so nothing needs retracting
  // afterwards and the learned clauses stay valid for the next pair.
  std::vector<Lit> assumptions;
  assumptions.push_back(mk_lit(cone.act));
  assumptions.push_back(mk_lit(good2_.of(fault_frame.fault->net),
                               fault_frame.fault->value));
  for (const NetConstraint& k : fault_frame.constraints)
    assumptions.push_back(mk_lit(good2_.of(k.net), !k.value));
  if (justify) {
    ensure_frame1();
    for (const NetConstraint& k : justify->constraints)
      assumptions.push_back(mk_lit(good1_.of(k.net), !k.value));
  }

  const long long c0 = s_.stats().conflicts;
  const long long d0 = s_.stats().decisions;
  const long long t0 = s_.stats().restarts;
  const SolveStatus st = s_.solve(assumptions, opt_.conflict_budget);
  r->conflicts += s_.stats().conflicts - c0;
  r->decisions += s_.stats().decisions - d0;
  r->restarts += s_.stats().restarts - t0;
  stats_.conflicts = s_.stats().conflicts;
  stats_.decisions = s_.stats().decisions;
  stats_.restarts = s_.stats().restarts;
  stats_.clauses_kept = s_.stats().learned;

  if (st == SolveStatus::kUnsat && s_.okay()) {
    // UNSAT under assumptions refutes exactly the fresh pair formula: the
    // other cones' guarded clauses are independently satisfiable with
    // their activation variables false, so they cannot be the reason.
    ++stats_.incremental_refutes;
    return PairStatus::kRefuted;
  }
  // SAT or budget-out: delegate to the fresh single-pair path so cubes
  // (don't-care lifting included) are byte-identical to sat_generate_*'s.
  // (s_.okay() false would mean the shared database itself became UNSAT —
  // impossible for guarded cones over a satisfiable good circuit, but the
  // fresh path keeps even that hypothetical sound.)
  ++stats_.fresh_fallbacks;
  return detail::solve_pair(c_, fault_frame, justify, opt_, r);
}

SatAtpgResult SatSession::generate_obd_test(const ObdFaultSite& site) {
  SatAtpgResult r;
  const auto& g = c_.gate(site.gate_index);
  const auto topo = logic::gate_topology(g.type);
  if (!topo.has_value()) {
    // Composite gate: no OBD site (generate_obd_test's convention).
    r.verdict = SatVerdict::kUntestable;
    return r;
  }
  bool any_unknown = false;
  for (const auto& tv : core::obd_excitations(*topo, site.transistor)) {
    const bool old_out = topo->output(tv.v1);
    FrameGoal frame2{detail::pin_gate_inputs(c_, site.gate_index, tv.v2),
                     StuckFault{g.output, old_out}};
    FrameGoal frame1{detail::pin_gate_inputs(c_, site.gate_index, tv.v1),
                     std::nullopt};
    switch (solve_pair(frame2, frame1, &r)) {
      case PairStatus::kCube:
        r.verdict = SatVerdict::kCube;
        return r;
      case PairStatus::kRefuted:
        break;
      case PairStatus::kUnknown:
        any_unknown = true;
        break;
    }
  }
  r.verdict = any_unknown ? SatVerdict::kUnknown : SatVerdict::kUntestable;
  return r;
}

SatAtpgResult SatSession::generate_transition_test(
    const TransitionFault& fault) {
  SatAtpgResult r;
  const bool final_value = fault.slow_to_rise;
  FrameGoal frame2{{{fault.net, final_value}},
                   StuckFault{fault.net, !final_value}};
  FrameGoal frame1{{{fault.net, !final_value}}, std::nullopt};
  switch (solve_pair(frame2, frame1, &r)) {
    case PairStatus::kCube:
      r.verdict = SatVerdict::kCube;
      break;
    case PairStatus::kRefuted:
      r.verdict = SatVerdict::kUntestable;
      break;
    case PairStatus::kUnknown:
      r.verdict = SatVerdict::kUnknown;
      break;
  }
  return r;
}

SatAtpgResult SatSession::generate_stuck_test(const StuckFault& fault) {
  SatAtpgResult r;
  FrameGoal frame{{}, fault};
  switch (solve_pair(frame, std::nullopt, &r)) {
    case PairStatus::kCube:
      r.verdict = SatVerdict::kCube;
      break;
    case PairStatus::kRefuted:
      r.verdict = SatVerdict::kUntestable;
      break;
    case PairStatus::kUnknown:
      r.verdict = SatVerdict::kUnknown;
      break;
  }
  return r;
}

}  // namespace obd::atpg::sat

// Incremental SAT session for the campaign's escalation tail.
//
// sat_atpg.hpp's entry points build a throwaway solver per excitation
// pair, so a 47-fault abort tail re-encodes the good circuit and re-derives
// the same learned clauses dozens of times. A SatSession keeps ONE
// persistent solver for a whole campaign:
//
//   - the good circuit's two scan frames are CNF-encoded once;
//   - each faulty cone + miter is encoded once per (forced net, value)
//     under a fresh activation literal, so faults sharing a fanout cone —
//     every OBD transistor of one gate, for a start — reuse the encoding;
//   - per-excitation obligations (gate-input pins, the fault-activation
//     pin) travel as solver *assumptions*, never as clauses, so nothing is
//     retracted between calls and learned clauses, variable activity, and
//     saved phases accumulate across the tail.
//
// Verdict compatibility is by construction, not by luck: an UNSAT answer
// under assumptions refutes exactly the fresh pair formula (the other
// cones' guarded clauses are satisfiable independently by leaving their
// activation variables false), and any SAT or budget-out answer is
// delegated to the fresh single-pair path, so emitted cubes are
// byte-identical to sat_generate_*'s. Escalation verdicts therefore do not
// depend on session history, which keeps checkpoint/resume and shard
// reconciliation contracts untouched.
#pragma once

#include <map>
#include <optional>
#include <utility>

#include "atpg/sat/cnf.hpp"
#include "atpg/sat/frames.hpp"
#include "atpg/sat/sat_atpg.hpp"
#include "atpg/sat/solver.hpp"

namespace obd::atpg::sat {

/// Where the session actually saved work, for the campaign report and the
/// obs registry. Conflicts/decisions/restarts count the persistent
/// solver's effort only (fresh-fallback effort lands in SatAtpgResult like
/// before).
struct SatSessionStats {
  long long pairs_total = 0;        ///< excitation pairs driven through the session
  long long cone_encodes = 0;       ///< faulty cones encoded (first sighting)
  long long cone_hits = 0;          ///< pairs that reused a resident cone
  long long unobservable_hits = 0;  ///< refuted from the structural cache alone
  long long incremental_refutes = 0;  ///< UNSAT answered by the persistent solver
  long long fresh_fallbacks = 0;    ///< pairs delegated to a fresh solver
  long long vars_shared = 0;        ///< good-frame vars a fresh solver would re-create
  long long clauses_kept = 0;       ///< learned clauses resident at the last pair
  long long conflicts = 0;
  long long decisions = 0;
  long long restarts = 0;
};

class SatSession {
 public:
  explicit SatSession(const logic::Circuit& c, SatAtpgOptions opt = {});

  /// Drop-in replacements for the sat_generate_* free functions: same
  /// verdicts, byte-identical cubes, amortized solving.
  SatAtpgResult generate_obd_test(const ObdFaultSite& site);
  SatAtpgResult generate_transition_test(const TransitionFault& fault);
  SatAtpgResult generate_stuck_test(const StuckFault& fault);

  const SatSessionStats& stats() const { return stats_; }

 private:
  struct ConeEntry {
    Var act = -1;           // activation variable guarding the cone clauses
    bool observable = false;  // miter reached a PO (false = always refuted)
    NetVars faulty;
  };

  detail::PairStatus solve_pair(const detail::FrameGoal& fault_frame,
                                const std::optional<detail::FrameGoal>& justify,
                                SatAtpgResult* r);
  ConeEntry& cone_for(logic::NetId net, bool value);
  void ensure_frame1();

  const logic::Circuit& c_;
  SatAtpgOptions opt_;
  Solver s_;
  CnfEncoder enc_;
  NetVars good2_;  // fault/capture frame, encoded at construction
  NetVars good1_;  // justification frame, encoded on first two-frame pair
  bool have_frame1_ = false;
  std::map<std::pair<logic::NetId, bool>, ConeEntry> cones_;
  SatSessionStats stats_;
};

}  // namespace obd::atpg::sat

#include "atpg/sat/sat_atpg.hpp"

#include <optional>

#include "atpg/podem.hpp"
#include "atpg/sat/cnf.hpp"
#include "atpg/sat/frames.hpp"
#include "core/excitation.hpp"
#include "logic/gate.hpp"

namespace obd::atpg::sat {
namespace {

using detail::FrameGoal;
using detail::PairStatus;
using logic::Circuit;
using logic::NetId;
using logic::Tri;

/// 3-valued evaluation with one net optionally forced — the exact faulty-
/// circuit semantics of podem.cpp's eval3_forced, reproduced here so cube
/// validation judges the SAT model by the same rules PODEM plays by.
void eval3_forced(const Circuit& c, const std::vector<Tri>& pi,
                  NetId forced_net, Tri forced_value,
                  std::vector<Tri>* values) {
  values->assign(c.num_nets(), Tri::kX);
  for (std::size_t i = 0; i < c.inputs().size(); ++i) {
    const NetId n = c.inputs()[i];
    (*values)[static_cast<std::size_t>(n)] =
        (n == forced_net) ? forced_value : pi[i];
  }
  Tri ins[8];
  for (int g : c.topo_order()) {
    const logic::Gate& gate = c.gate(g);
    for (std::size_t k = 0; k < gate.inputs.size(); ++k)
      ins[k] = (*values)[static_cast<std::size_t>(gate.inputs[k])];
    (*values)[static_cast<std::size_t>(gate.output)] =
        (gate.output == forced_net) ? forced_value
                                    : logic::gate_eval3(gate.type, ins);
  }
}

/// Does the partially-specified PI assignment *definitely* meet the goal
/// under 3-valued evaluation? Kleene conservatism makes a true answer a
/// guarantee over every completion of the X bits — the property that lets
/// don't-care bits be lifted out of a SAT model safely.
bool frame_definitely_met(const Circuit& c, const std::vector<Tri>& pi,
                          const FrameGoal& goal) {
  std::vector<Tri> good;
  eval3_forced(c, pi, logic::kNoNet, Tri::kX, &good);
  for (const NetConstraint& k : goal.constraints)
    if (good[static_cast<std::size_t>(k.net)] != logic::tri_of(k.value))
      return false;
  if (!goal.fault) return true;
  const Tri gf = good[static_cast<std::size_t>(goal.fault->net)];
  if (gf == Tri::kX || gf == logic::tri_of(goal.fault->value)) return false;
  std::vector<Tri> faulty;
  eval3_forced(c, pi, goal.fault->net, logic::tri_of(goal.fault->value),
               &faulty);
  for (const NetId po : c.outputs()) {
    const Tri g = good[static_cast<std::size_t>(po)];
    const Tri f = faulty[static_cast<std::size_t>(po)];
    if (g != Tri::kX && f != Tri::kX && g != f) return true;
  }
  return false;
}

/// Greedy don't-care maximization: X out PIs in ascending index order,
/// keeping each X only if the frame goal stays definitely met.
void lift_cares(const Circuit& c, const FrameGoal& goal,
                std::vector<Tri>* pi) {
  for (std::size_t i = 0; i < pi->size(); ++i) {
    const Tri saved = (*pi)[i];
    if (saved == Tri::kX) continue;
    (*pi)[i] = Tri::kX;
    if (!frame_definitely_met(c, *pi, goal)) (*pi)[i] = saved;
  }
}

TestVector to_test_vector(const std::vector<Tri>& pi) {
  TestVector v;
  for (std::size_t i = 0; i < pi.size(); ++i) {
    if (pi[i] == Tri::kX) continue;
    v.care_mask.set_bit(i);
    if (pi[i] == Tri::k1) v.bits.set_bit(i);
  }
  return v;
}

}  // namespace

namespace detail {

/// The justify frame is absent for single-frame (stuck-at) instances. On
/// SAT, the model is lifted to a maximal-don't-care cube and re-validated
/// by 3-valued simulation; a model that fails validation (an encoder bug,
/// by construction impossible) degrades to kUnknown rather than emitting
/// an unsound cube.
PairStatus solve_pair(const Circuit& c, const FrameGoal& fault_frame,
                      const std::optional<FrameGoal>& justify_frame,
                      const SatAtpgOptions& opt, SatAtpgResult* r) {
  Solver s;
  CnfEncoder enc(c, s);
  const NetVars g2 = enc.encode_good();
  const NetVars fa =
      enc.encode_faulty(g2, fault_frame.fault->net, fault_frame.fault->value);
  if (!enc.assert_po_difference(g2, fa)) return PairStatus::kRefuted;
  enc.pin(g2, fault_frame.fault->net, !fault_frame.fault->value);
  for (const NetConstraint& k : fault_frame.constraints)
    enc.pin(g2, k.net, k.value);
  NetVars g1;
  if (justify_frame) {
    g1 = enc.encode_good();
    for (const NetConstraint& k : justify_frame->constraints)
      enc.pin(g1, k.net, k.value);
  }

  const SolveStatus st = s.solve(opt.conflict_budget);
  r->conflicts += s.stats().conflicts;
  r->decisions += s.stats().decisions;
  r->restarts += s.stats().restarts;
  if (st == SolveStatus::kUnsat) return PairStatus::kRefuted;
  if (st == SolveStatus::kUnknown) return PairStatus::kUnknown;

  std::vector<Tri> pi2(c.inputs().size());
  for (std::size_t i = 0; i < c.inputs().size(); ++i)
    pi2[i] = logic::tri_of(s.value(g2.of(c.inputs()[i])));
  if (!frame_definitely_met(c, pi2, fault_frame)) return PairStatus::kUnknown;
  lift_cares(c, fault_frame, &pi2);

  std::vector<Tri> pi1;
  if (justify_frame) {
    pi1.resize(c.inputs().size());
    for (std::size_t i = 0; i < c.inputs().size(); ++i)
      pi1[i] = logic::tri_of(s.value(g1.of(c.inputs()[i])));
    if (!frame_definitely_met(c, pi1, *justify_frame))
      return PairStatus::kUnknown;
    lift_cares(c, *justify_frame, &pi1);
  } else {
    pi1 = pi2;  // single-frame: the campaign's v1 == v2 convention
  }

  r->cube.v1 = to_test_vector(pi1);
  r->cube.v2 = to_test_vector(pi2);
  return PairStatus::kCube;
}

std::vector<NetConstraint> pin_gate_inputs(const Circuit& c, int gate_idx,
                                           std::uint32_t bits) {
  const auto& g = c.gate(gate_idx);
  std::vector<NetConstraint> out;
  out.reserve(g.inputs.size());
  for (std::size_t k = 0; k < g.inputs.size(); ++k)
    out.push_back({g.inputs[k], ((bits >> k) & 1u) != 0});
  return out;
}

}  // namespace detail

using detail::pin_gate_inputs;
using detail::solve_pair;

SatAtpgResult sat_generate_obd_test(const Circuit& c, const ObdFaultSite& site,
                                    const SatAtpgOptions& opt) {
  SatAtpgResult r;
  const auto& g = c.gate(site.gate_index);
  const auto topo = logic::gate_topology(g.type);
  if (!topo.has_value()) {
    // Composite gate: no OBD site (generate_obd_test's convention).
    r.verdict = SatVerdict::kUntestable;
    return r;
  }
  bool any_unknown = false;
  for (const auto& tv : core::obd_excitations(*topo, site.transistor)) {
    const bool old_out = topo->output(tv.v1);
    FrameGoal frame2{pin_gate_inputs(c, site.gate_index, tv.v2),
                     StuckFault{g.output, old_out}};
    FrameGoal frame1{pin_gate_inputs(c, site.gate_index, tv.v1), std::nullopt};
    switch (solve_pair(c, frame2, frame1, opt, &r)) {
      case PairStatus::kCube:
        r.verdict = SatVerdict::kCube;
        return r;
      case PairStatus::kRefuted:
        break;
      case PairStatus::kUnknown:
        any_unknown = true;
        break;
    }
  }
  r.verdict = any_unknown ? SatVerdict::kUnknown : SatVerdict::kUntestable;
  return r;
}

SatAtpgResult sat_generate_transition_test(const Circuit& c,
                                           const TransitionFault& fault,
                                           const SatAtpgOptions& opt) {
  SatAtpgResult r;
  const bool final_value = fault.slow_to_rise;
  FrameGoal frame2{{{fault.net, final_value}},
                   StuckFault{fault.net, !final_value}};
  FrameGoal frame1{{{fault.net, !final_value}}, std::nullopt};
  switch (solve_pair(c, frame2, frame1, opt, &r)) {
    case PairStatus::kCube:
      r.verdict = SatVerdict::kCube;
      break;
    case PairStatus::kRefuted:
      r.verdict = SatVerdict::kUntestable;
      break;
    case PairStatus::kUnknown:
      r.verdict = SatVerdict::kUnknown;
      break;
  }
  return r;
}

SatAtpgResult sat_generate_stuck_test(const Circuit& c, const StuckFault& fault,
                                      const SatAtpgOptions& opt) {
  SatAtpgResult r;
  FrameGoal frame{{}, fault};
  switch (solve_pair(c, frame, std::nullopt, opt, &r)) {
    case PairStatus::kCube:
      r.verdict = SatVerdict::kCube;
      break;
    case PairStatus::kRefuted:
      r.verdict = SatVerdict::kUntestable;
      break;
    case PairStatus::kUnknown:
      r.verdict = SatVerdict::kUnknown;
      break;
  }
  return r;
}

}  // namespace obd::atpg::sat

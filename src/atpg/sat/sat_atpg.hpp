// SAT-based ATPG: the provable-coverage backend beside PODEM.
//
// Each entry point mirrors the corresponding PODEM driver's semantics
// exactly (twoframe.cpp / podem.cpp), but answers with certainty: the
// good/faulty circuit pair is CNF-encoded (cnf.hpp) and handed to the
// embedded CDCL core (solver.hpp), returning either
//   - a *validated* maximal-don't-care test cube (every don't-care bit is
//     re-verified by 3-valued simulation before it is declared X, so the
//     cube feeds the X-fill/compaction machinery safely), or
//   - a proven-untestable verdict (for OBD faults: every excitation pair's
//     two-frame CNF is UNSAT — the completeness basis obd_excitations
//     enumerates the full (2^n)^2 transition space), or
//   - kUnknown when the conflict budget ran out before a verdict.
//
// Everything is deterministic, so campaign escalation preserves the
// matrix-hash contract across threads, lanes, and shards.
#pragma once

#include "atpg/faults.hpp"
#include "atpg/patterns.hpp"
#include "logic/circuit.hpp"

namespace obd::atpg::sat {

enum class SatVerdict {
  kCube,        ///< validated test cube in SatAtpgResult::cube
  kUntestable,  ///< proven: no input pair tests this fault
  kUnknown,     ///< conflict budget exhausted before a verdict
};

struct SatAtpgOptions {
  /// CDCL conflict budget per solver call (one call per excitation pair);
  /// <= 0 = unlimited.
  long long conflict_budget = 100000;
};

struct SatAtpgResult {
  SatVerdict verdict = SatVerdict::kUnknown;
  /// Maximal-don't-care two-frame cube (kCube only). Stuck-at cubes have
  /// v1 == v2, matching the campaign's single-vector convention.
  XTwoVectorTest cube;
  /// CDCL effort spent on this fault (all solver calls summed) — the
  /// campaign aggregates these and buckets conflicts-per-fault into the
  /// report's escalation histogram.
  long long conflicts = 0;
  long long decisions = 0;
  long long restarts = 0;
};

/// OBD fault at a primitive gate's transistor: one two-frame CNF per
/// exciting transition, in obd_excitations order (like generate_obd_test).
SatAtpgResult sat_generate_obd_test(const logic::Circuit& c,
                                    const ObdFaultSite& site,
                                    const SatAtpgOptions& opt = {});

/// Classical two-frame transition fault (mirrors generate_transition_test).
SatAtpgResult sat_generate_transition_test(const logic::Circuit& c,
                                           const TransitionFault& fault,
                                           const SatAtpgOptions& opt = {});

/// Single-frame stuck-at fault (mirrors podem_stuck_at).
SatAtpgResult sat_generate_stuck_test(const logic::Circuit& c,
                                      const StuckFault& fault,
                                      const SatAtpgOptions& opt = {});

}  // namespace obd::atpg::sat

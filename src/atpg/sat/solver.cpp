#include "atpg/sat/solver.hpp"

#include <algorithm>

namespace obd::atpg::sat {
namespace {

/// Luby restart sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...
long long luby(long long i) {
  long long k = 1;
  while ((1ll << (k + 1)) - 1 <= i + 1) ++k;
  while ((1ll << k) - 1 != i + 1) {
    i -= (1ll << k) - 1;
    k = 1;
    while ((1ll << (k + 1)) - 1 <= i + 1) ++k;
  }
  return 1ll << (k - 1);
}

constexpr long long kRestartUnit = 64;
constexpr double kActivityRescale = 1e100;

}  // namespace

Var Solver::new_var() {
  const Var v = num_vars();
  assign_.push_back(-1);
  level_.push_back(0);
  reason_.push_back(-1);
  polarity_.push_back(false);
  activity_.push_back(0.0);
  watches_.emplace_back();
  watches_.emplace_back();
  seen_.push_back(0);
  heap_pos_.push_back(-1);
  heap_insert(v);
  return v;
}

bool Solver::add_clause(const std::vector<Lit>& lits) {
  if (!ok_) return false;
  backtrack_to(0);  // adding a clause invalidates any current model
  // Level-0 simplify: sort, dedup, drop tautologies and false literals.
  std::vector<Lit> c(lits);
  std::sort(c.begin(), c.end());
  c.erase(std::unique(c.begin(), c.end()), c.end());
  std::vector<Lit> kept;
  kept.reserve(c.size());
  for (std::size_t i = 0; i < c.size(); ++i) {
    if (i + 1 < c.size() && c[i + 1] == negate(c[i])) return true;  // taut
    const std::int8_t a = assign_[static_cast<std::size_t>(var_of(c[i]))];
    if (a < 0) {
      kept.push_back(c[i]);
      continue;
    }
    const bool lit_true = (a == 1) != sign_of(c[i]);
    if (lit_true && level_of(var_of(c[i])) == 0) return true;  // satisfied
    if (!lit_true && level_of(var_of(c[i])) == 0) continue;    // dead lit
    kept.push_back(c[i]);
  }
  if (kept.empty()) {
    ok_ = false;
    return false;
  }
  if (kept.size() == 1) {
    if (!enqueue(kept[0], -1)) ok_ = false;
    if (ok_ && propagate() >= 0) ok_ = false;
    return ok_;
  }
  clauses_.push_back(Clause{std::move(kept)});
  attach(static_cast<std::uint32_t>(clauses_.size() - 1));
  return true;
}

void Solver::attach(std::uint32_t ci) {
  const Clause& c = clauses_[ci];
  watches_[static_cast<std::size_t>(negate(c.lits[0]))].push_back(
      Watcher{ci, c.lits[1]});
  watches_[static_cast<std::size_t>(negate(c.lits[1]))].push_back(
      Watcher{ci, c.lits[0]});
}

bool Solver::enqueue(Lit l, int reason) {
  const Var v = var_of(l);
  const std::int8_t a = assign_[static_cast<std::size_t>(v)];
  if (a >= 0) return (a == 1) != sign_of(l);
  assign_[static_cast<std::size_t>(v)] =
      static_cast<std::int8_t>(sign_of(l) ? 0 : 1);
  level_[static_cast<std::size_t>(v)] = decision_level();
  reason_[static_cast<std::size_t>(v)] = reason;
  polarity_[static_cast<std::size_t>(v)] = !sign_of(l);
  trail_.push_back(l);
  return true;
}

int Solver::propagate() {
  while (qhead_ < trail_.size()) {
    const Lit p = trail_[qhead_++];  // p became true; visit watchers of ~?
    ++stats_.propagations;
    std::vector<Watcher>& ws = watches_[static_cast<std::size_t>(p)];
    std::size_t keep = 0;
    for (std::size_t i = 0; i < ws.size(); ++i) {
      const Watcher w = ws[i];
      // Blocker already true: clause satisfied, watcher stays.
      const Var bv = var_of(w.blocker);
      if (assign_[static_cast<std::size_t>(bv)] >= 0 &&
          (assign_[static_cast<std::size_t>(bv)] == 1) != sign_of(w.blocker)) {
        ws[keep++] = w;
        continue;
      }
      Clause& c = clauses_[w.clause];
      // Normalize: the false literal (~p) into slot 1.
      const Lit false_lit = negate(p);
      if (c.lits[0] == false_lit) std::swap(c.lits[0], c.lits[1]);
      const Lit first = c.lits[0];
      const Var fv = var_of(first);
      if (assign_[static_cast<std::size_t>(fv)] >= 0 &&
          (assign_[static_cast<std::size_t>(fv)] == 1) != sign_of(first)) {
        ws[keep++] = Watcher{w.clause, first};
        continue;
      }
      // Look for a new literal to watch.
      bool moved = false;
      for (std::size_t k = 2; k < c.lits.size(); ++k) {
        const Lit l = c.lits[k];
        const std::int8_t a = assign_[static_cast<std::size_t>(var_of(l))];
        const bool is_false = a >= 0 && (a == 1) == sign_of(l);
        if (is_false) continue;
        std::swap(c.lits[1], c.lits[k]);
        watches_[static_cast<std::size_t>(negate(l))].push_back(
            Watcher{w.clause, first});
        moved = true;
        break;
      }
      if (moved) continue;
      // Unit or conflicting.
      ws[keep++] = Watcher{w.clause, first};
      if (!enqueue(first, static_cast<int>(w.clause))) {
        // Conflict: keep remaining watchers, report.
        for (std::size_t k = i + 1; k < ws.size(); ++k) ws[keep++] = ws[k];
        ws.resize(keep);
        qhead_ = trail_.size();
        return static_cast<int>(w.clause);
      }
    }
    ws.resize(keep);
  }
  return -1;
}

void Solver::analyze(int confl, std::vector<Lit>* learned, int* out_level) {
  learned->clear();
  learned->push_back(-1);  // slot for the asserting literal
  int counter = 0;
  Lit p = -1;
  std::size_t index = trail_.size();
  int ci = confl;
  for (;;) {
    const Clause& c = clauses_[static_cast<std::size_t>(ci)];
    for (std::size_t k = (p == -1 ? 0 : 1); k < c.lits.size(); ++k) {
      const Lit q = c.lits[k];
      const Var v = var_of(q);
      if (seen_[static_cast<std::size_t>(v)] || level_of(v) == 0) continue;
      seen_[static_cast<std::size_t>(v)] = 1;
      bump(v);
      if (level_of(v) == decision_level())
        ++counter;
      else
        learned->push_back(q);
    }
    // Next literal on the trail that contributed to the conflict.
    do {
      p = trail_[--index];
    } while (!seen_[static_cast<std::size_t>(var_of(p))]);
    seen_[static_cast<std::size_t>(var_of(p))] = 0;
    if (--counter == 0) break;
    ci = reason_[static_cast<std::size_t>(var_of(p))];
  }
  (*learned)[0] = negate(p);
  for (std::size_t k = 1; k < learned->size(); ++k)
    seen_[static_cast<std::size_t>(var_of((*learned)[k]))] = 0;

  // Backjump to the second-highest level in the learned clause, moving its
  // literal into the second watch slot.
  int bl = 0;
  std::size_t best = 1;
  for (std::size_t k = 1; k < learned->size(); ++k)
    if (level_of(var_of((*learned)[k])) > bl) {
      bl = level_of(var_of((*learned)[k]));
      best = k;
    }
  if (learned->size() > 1) std::swap((*learned)[1], (*learned)[best]);
  *out_level = learned->size() == 1 ? 0 : bl;
}

void Solver::backtrack_to(int level) {
  if (decision_level() <= level) return;
  const std::size_t bound =
      static_cast<std::size_t>(trail_lim_[static_cast<std::size_t>(level)]);
  for (std::size_t i = trail_.size(); i-- > bound;) {
    const Var v = var_of(trail_[i]);
    assign_[static_cast<std::size_t>(v)] = -1;
    reason_[static_cast<std::size_t>(v)] = -1;
    if (heap_pos_[static_cast<std::size_t>(v)] < 0) heap_insert(v);
  }
  trail_.resize(bound);
  trail_lim_.resize(static_cast<std::size_t>(level));
  qhead_ = trail_.size();
}

void Solver::bump(Var v) {
  activity_[static_cast<std::size_t>(v)] += var_inc_;
  if (activity_[static_cast<std::size_t>(v)] > kActivityRescale) {
    for (double& a : activity_) a *= 1.0 / kActivityRescale;
    var_inc_ *= 1.0 / kActivityRescale;
  }
  if (heap_pos_[static_cast<std::size_t>(v)] >= 0)
    heap_sift_up(heap_pos_[static_cast<std::size_t>(v)]);
}

Lit Solver::pick_branch() {
  while (!heap_.empty()) {
    const Var v = heap_pop();
    if (assign_[static_cast<std::size_t>(v)] < 0)
      return mk_lit(v, !polarity_[static_cast<std::size_t>(v)]);
  }
  return -1;
}

SolveStatus Solver::solve(long long conflict_budget) {
  static const std::vector<Lit> kNoAssumptions;
  return solve(kNoAssumptions, conflict_budget);
}

SolveStatus Solver::solve(const std::vector<Lit>& assumptions,
                          long long conflict_budget) {
  if (!ok_) return SolveStatus::kUnsat;
  backtrack_to(0);
  if (propagate() >= 0) {
    ok_ = false;
    return SolveStatus::kUnsat;
  }
  const int n_assumptions = static_cast<int>(assumptions.size());
  long long conflicts_here = 0;
  long long restart_limit = kRestartUnit * luby(stats_.restarts);
  long long conflicts_since_restart = 0;
  std::vector<Lit> learned;
  for (;;) {
    const int confl = propagate();
    if (confl >= 0) {
      ++stats_.conflicts;
      ++conflicts_here;
      ++conflicts_since_restart;
      if (decision_level() == 0) {
        ok_ = false;
        return SolveStatus::kUnsat;
      }
      if (decision_level() <= n_assumptions) {
        // Every decision up to here is an assumption, so the conflict is
        // implied by them: UNSAT under assumptions, database still fine.
        backtrack_to(0);
        return SolveStatus::kUnsat;
      }
      int bl = 0;
      analyze(confl, &learned, &bl);
      backtrack_to(bl);
      if (learned.size() == 1) {
        enqueue(learned[0], -1);
      } else {
        clauses_.push_back(Clause{learned});
        ++stats_.learned;
        attach(static_cast<std::uint32_t>(clauses_.size() - 1));
        enqueue(learned[0], static_cast<int>(clauses_.size() - 1));
      }
      decay();
      if (conflict_budget > 0 && conflicts_here >= conflict_budget) {
        backtrack_to(0);
        return SolveStatus::kUnknown;
      }
      if (conflicts_since_restart >= restart_limit) {
        ++stats_.restarts;
        conflicts_since_restart = 0;
        restart_limit = kRestartUnit * luby(stats_.restarts);
        backtrack_to(0);
      }
      continue;
    }
    if (decision_level() < n_assumptions) {
      // Establish the next assumption as its own decision level. Restarts
      // and backjumps land inside this prefix; re-establishment is the
      // same walk, so no special casing elsewhere.
      const Lit a = assumptions[static_cast<std::size_t>(decision_level())];
      const std::int8_t av = assign_[static_cast<std::size_t>(var_of(a))];
      if (av >= 0) {
        if ((av == 1) == sign_of(a)) {
          // Already forced false: contradicted without a single branch.
          backtrack_to(0);
          return SolveStatus::kUnsat;
        }
        // Already true: an empty pseudo-level keeps the invariant that
        // levels 1..n_assumptions are exactly the assumptions.
        trail_lim_.push_back(static_cast<int>(trail_.size()));
        continue;
      }
      trail_lim_.push_back(static_cast<int>(trail_.size()));
      enqueue(a, -1);
      continue;
    }
    const Lit next = pick_branch();
    if (next == -1) return SolveStatus::kSat;
    ++stats_.decisions;
    trail_lim_.push_back(static_cast<int>(trail_.size()));
    enqueue(next, -1);
  }
}

// --- Indexed binary max-heap (activity, ties to the smaller var) ---------

void Solver::heap_insert(Var v) {
  heap_pos_[static_cast<std::size_t>(v)] = static_cast<int>(heap_.size());
  heap_.push_back(v);
  heap_sift_up(static_cast<int>(heap_.size()) - 1);
}

void Solver::heap_sift_up(int i) {
  const Var v = heap_[static_cast<std::size_t>(i)];
  const double a = activity_[static_cast<std::size_t>(v)];
  while (i > 0) {
    const int parent = (i - 1) / 2;
    const Var pv = heap_[static_cast<std::size_t>(parent)];
    const double pa = activity_[static_cast<std::size_t>(pv)];
    if (pa > a || (pa == a && pv < v)) break;
    heap_[static_cast<std::size_t>(i)] = pv;
    heap_pos_[static_cast<std::size_t>(pv)] = i;
    i = parent;
  }
  heap_[static_cast<std::size_t>(i)] = v;
  heap_pos_[static_cast<std::size_t>(v)] = i;
}

void Solver::heap_sift_down(int i) {
  const int n = static_cast<int>(heap_.size());
  const Var v = heap_[static_cast<std::size_t>(i)];
  const double a = activity_[static_cast<std::size_t>(v)];
  for (;;) {
    int child = 2 * i + 1;
    if (child >= n) break;
    if (child + 1 < n) {
      const Var l = heap_[static_cast<std::size_t>(child)];
      const Var r = heap_[static_cast<std::size_t>(child + 1)];
      const double la = activity_[static_cast<std::size_t>(l)];
      const double ra = activity_[static_cast<std::size_t>(r)];
      if (ra > la || (ra == la && r < l)) ++child;
    }
    const Var cv = heap_[static_cast<std::size_t>(child)];
    const double ca = activity_[static_cast<std::size_t>(cv)];
    if (a > ca || (a == ca && v < cv)) break;
    heap_[static_cast<std::size_t>(i)] = cv;
    heap_pos_[static_cast<std::size_t>(cv)] = i;
    i = child;
  }
  heap_[static_cast<std::size_t>(i)] = v;
  heap_pos_[static_cast<std::size_t>(v)] = i;
}

Var Solver::heap_pop() {
  const Var top = heap_[0];
  heap_pos_[static_cast<std::size_t>(top)] = -1;
  const Var last = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    heap_[0] = last;
    heap_pos_[static_cast<std::size_t>(last)] = 0;
    heap_sift_down(0);
  }
  return top;
}

}  // namespace obd::atpg::sat

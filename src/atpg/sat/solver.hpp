// Embedded CDCL SAT core for the ATPG escalation backend.
//
// Self-contained in the spirit of the repo's own SPICE solver — no external
// dependencies, no DIMACS, no global state. The feature set is the small
// modern kernel that makes circuit CNFs easy: two watched literals,
// first-UIP conflict learning with backjumping, VSIDS branching on an
// indexed max-heap, phase saving, and Luby restarts. There is no learned-
// clause deletion: every call runs under a conflict budget (the campaign's
// --sat-conflict-budget), which bounds the clause database long before
// deletion would matter at ATPG cone sizes.
//
// Everything is deterministic: ties break on variable index, there is no
// randomization, and the same clause sequence always yields the same
// model/proof — the property the campaign's matrix-hash contract needs.
#pragma once

#include <cstdint>
#include <vector>

namespace obd::atpg::sat {

/// Variable index, 0-based.
using Var = int;

/// Literal: 2*var + sign (sign 1 = negated). Invalid/absent = -1.
using Lit = int;

inline Lit mk_lit(Var v, bool negated = false) {
  return 2 * v + (negated ? 1 : 0);
}
inline Var var_of(Lit l) { return l >> 1; }
inline bool sign_of(Lit l) { return (l & 1) != 0; }
inline Lit negate(Lit l) { return l ^ 1; }

enum class SolveStatus {
  kSat,      ///< model available via Solver::value()
  kUnsat,    ///< refutation complete: no assignment satisfies the clauses
  kUnknown,  ///< conflict budget exhausted before a verdict
};

struct SolverStats {
  long long decisions = 0;
  long long propagations = 0;
  long long conflicts = 0;
  long long learned = 0;
  long long restarts = 0;
};

class Solver {
 public:
  Solver() = default;

  Var new_var();
  int num_vars() const { return static_cast<int>(assign_.size()); }

  /// Adds a clause over existing variables. Level-0 simplification only:
  /// tautologies are dropped, duplicate and already-false literals removed,
  /// units enqueued. Returns false once the formula is trivially UNSAT
  /// (empty clause or conflicting units); further calls are no-ops then.
  bool add_clause(const std::vector<Lit>& lits);

  /// Runs CDCL until a verdict or until `conflict_budget` conflicts
  /// (<= 0 = unlimited). Callable repeatedly; clauses may be added between
  /// calls (incremental, level-0 state persists).
  SolveStatus solve(long long conflict_budget = 0);

  /// Assumption-based solve: the literals are established as the first
  /// decision levels, in order, before any free branching. kUnsat then
  /// means "unsatisfiable *under the assumptions*" — the clause database
  /// stays consistent and the solver reusable, unlike a genuine level-0
  /// refutation (which still poisons the solver permanently). Learned
  /// clauses, variable activity, and saved phases persist across calls,
  /// which is what makes cone-grouped ATPG escalation cheap.
  SolveStatus solve(const std::vector<Lit>& assumptions,
                    long long conflict_budget = 0);

  /// False once a clause contradiction was derived without assumptions;
  /// every later solve() returns kUnsat.
  bool okay() const { return ok_; }

  /// Model value of `v` after solve() returned kSat.
  bool value(Var v) const { return assign_[static_cast<std::size_t>(v)] == 1; }

  const SolverStats& stats() const { return stats_; }

 private:
  struct Clause {
    std::vector<Lit> lits;
  };
  struct Watcher {
    std::uint32_t clause;
    Lit blocker;
  };

  bool enqueue(Lit l, int reason);
  /// Propagates the trail; returns the conflicting clause index or -1.
  int propagate();
  /// First-UIP analysis of `confl`; fills the learned clause (asserting
  /// literal first) and the backjump level.
  void analyze(int confl, std::vector<Lit>* learned, int* out_level);
  void backtrack_to(int level);
  void attach(std::uint32_t ci);
  Lit pick_branch();
  void bump(Var v);
  void decay() { var_inc_ /= 0.95; }

  // Indexed binary max-heap over activity (ties: smaller var first).
  void heap_insert(Var v);
  void heap_sift_up(int i);
  void heap_sift_down(int i);
  Var heap_pop();

  int level_of(Var v) const { return level_[static_cast<std::size_t>(v)]; }
  int decision_level() const { return static_cast<int>(trail_lim_.size()); }

  std::vector<Clause> clauses_;
  std::vector<std::vector<Watcher>> watches_;  // per literal
  std::vector<std::int8_t> assign_;            // per var: -1 / 0 / 1
  std::vector<int> level_;                     // per var
  std::vector<int> reason_;                    // per var: clause index or -1
  std::vector<bool> polarity_;                 // per var: saved phase
  std::vector<double> activity_;               // per var
  std::vector<Lit> trail_;
  std::vector<int> trail_lim_;
  std::size_t qhead_ = 0;
  bool ok_ = true;

  std::vector<int> heap_;      // heap of vars
  std::vector<int> heap_pos_;  // per var: index in heap_ or -1
  double var_inc_ = 1.0;

  std::vector<std::uint8_t> seen_;  // analyze scratch
  SolverStats stats_;
};

}  // namespace obd::atpg::sat

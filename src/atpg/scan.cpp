#include "atpg/scan.hpp"

#include <chrono>

#include "atpg/faultsim.hpp"
#include "core/excitation.hpp"
#include "util/prng.hpp"

namespace obd::atpg {
namespace {

using logic::Circuit;
using logic::SequentialCircuit;

std::vector<NetConstraint> pin_gate_inputs(const Circuit& c, int gate_idx,
                                           std::uint32_t bits) {
  const auto& g = c.gate(gate_idx);
  std::vector<NetConstraint> out;
  for (std::size_t k = 0; k < g.inputs.size(); ++k)
    out.push_back({g.inputs[k], ((bits >> k) & 1u) != 0});
  return out;
}

ScanObdResult generate_enhanced(const SequentialCircuit& seq,
                                const ObdFaultSite& site,
                                const PodemOptions& opt) {
  ScanObdResult result;
  const Circuit sv = seq.scan_view();
  // scan_view preserves gate order, so the fault index carries over.
  const TwoFrameResult r = generate_obd_test(sv, site, opt);
  result.status = r.status;
  result.backtracks = r.backtracks;
  if (r.status != PodemStatus::kFound) return result;
  const std::size_t n_pi = seq.core().inputs().size();
  const std::size_t n_ff = seq.flops().size();
  result.test.pi1 = r.test.v1.slice(0, n_pi);
  result.test.state1 = r.test.v1.slice(n_pi, n_ff);
  result.test.pi2 = r.test.v2.slice(0, n_pi);
  result.test.state2 = r.test.v2.slice(n_pi, n_ff);
  result.test.state2_loaded = true;
  return result;
}

ScanObdResult generate_loc(const SequentialCircuit& seq,
                           const ObdFaultSite& site, bool held_pi,
                           const PodemOptions& opt) {
  ScanObdResult result;
  const Circuit u = seq.unroll_two_frames(/*share_pis=*/held_pi);
  const int g1 = seq.frame1_gate_index(site.gate_index);
  const int g2 = seq.frame2_gate_index(site.gate_index);
  const auto& core_gate = seq.core().gate(site.gate_index);
  const auto topo = logic::gate_topology(core_gate.type);
  if (!topo.has_value()) return result;

  bool any_aborted = false;
  for (const auto& tv : core::obd_excitations(*topo, site.transistor)) {
    std::vector<NetConstraint> constraints = pin_gate_inputs(u, g1, tv.v1);
    const auto pins2 = pin_gate_inputs(u, g2, tv.v2);
    constraints.insert(constraints.end(), pins2.begin(), pins2.end());
    const bool old_out = topo->output(tv.v1);
    const PodemResult r = podem_constrained_fault(
        u, constraints, u.gate(g2).output, old_out, opt);
    result.backtracks += r.backtracks;
    if (r.status == PodemStatus::kAborted) any_aborted = true;
    if (r.status != PodemStatus::kFound) continue;

    const std::size_t n_pi = seq.core().inputs().size();
    const std::size_t n_ff = seq.flops().size();
    result.test.pi1 = r.vector.bits.slice(0, n_pi);
    result.test.state1 = r.vector.bits.slice(n_pi, n_ff);
    result.test.pi2 = held_pi ? result.test.pi1
                              : r.vector.bits.slice(n_pi + n_ff, n_pi);
    // Frame-2 present state = the machine's own launch response; read it
    // off the unrolled circuit's frame-1 next-state nets instead of
    // rebuilding a scan view (seq.step constructs one per call).
    const std::vector<bool> uvals = u.eval(r.vector.bits);
    for (std::size_t j = 0; j < n_ff; ++j) {
      const std::string& d_name = seq.core().net_name(seq.flops()[j].d);
      logic::NetId d1 = u.find_net(d_name + "@1");
      // A flop fed directly by a PI carries the shared "@12" suffix when
      // the frames share inputs.
      if (d1 == logic::kNoNet) d1 = u.find_net(d_name + "@12");
      // Both lookups missing is unreachable for a circuit unroll just
      // built, but an undriven-net 0 beats an out-of-bounds read.
      if (d1 == logic::kNoNet) continue;
      result.test.state2.set_bit(j, uvals[static_cast<std::size_t>(d1)]);
    }
    result.test.state2_loaded = false;
    result.status = PodemStatus::kFound;
    return result;
  }
  result.status =
      any_aborted ? PodemStatus::kAborted : PodemStatus::kUntestable;
  return result;
}

}  // namespace

const char* to_string(ScanMode m) {
  switch (m) {
    case ScanMode::kEnhanced: return "enhanced-scan";
    case ScanMode::kLaunchOnCapture: return "launch-on-capture";
    case ScanMode::kLaunchOnCaptureHeldPi: return "LOC-held-PI";
  }
  return "?";
}

ScanObdResult generate_scan_obd_test(const SequentialCircuit& seq,
                                     const ObdFaultSite& site, ScanMode mode,
                                     const PodemOptions& opt) {
  switch (mode) {
    case ScanMode::kEnhanced:
      return generate_enhanced(seq, site, opt);
    case ScanMode::kLaunchOnCapture:
      return generate_loc(seq, site, /*held_pi=*/false, opt);
    case ScanMode::kLaunchOnCaptureHeldPi:
      return generate_loc(seq, site, /*held_pi=*/true, opt);
  }
  return {};
}

bool verify_scan_obd_test(const SequentialCircuit& seq,
                          const ObdFaultSite& site, const ScanObdTest& test) {
  const Circuit sv = seq.scan_view();
  const std::size_t n_pi = seq.core().inputs().size();

  // Frame-1 (launch) settled values.
  const InputVec in1 = test.pi1 | (test.state1 << n_pi);
  const std::vector<bool> vals1 = sv.eval(in1);

  // Frame-2 present state: loaded (enhanced) or the machine's own response.
  const InputVec state2 =
      test.state2_loaded ? test.state2
                         : seq.step(test.pi1, test.state1).next_state;
  const InputVec in2 = test.pi2 | (state2 << n_pi);
  const std::vector<bool> vals2 = sv.eval(in2);

  // Gate-local excitation across the launch->capture boundary.
  const auto& gate = sv.gate(site.gate_index);
  const auto topo = logic::gate_topology(gate.type);
  if (!topo.has_value()) return false;
  const std::uint32_t lv1 = sv.gate_input_bits(site.gate_index, vals1);
  const std::uint32_t lv2 = sv.gate_input_bits(site.gate_index, vals2);
  if (!core::excites_obd(*topo, site.transistor, cells::TwoVector{lv1, lv2}))
    return false;

  // Gross-delay: the gate output holds its frame-1 value during capture.
  // Observation: POs plus the captured next-state (both are scan_view POs).
  const bool old_out = topo->output(lv1);
  return forced_outputs_differ(sv, in2, gate.output, old_out);
}

std::vector<ScanObdTest> random_broadside_tests(const SequentialCircuit& seq,
                                                ScanMode mode, int count,
                                                std::uint64_t seed) {
  return random_broadside_tests(seq, seq.scan_view(), mode, count, seed);
}

std::vector<ScanObdTest> random_broadside_tests(const SequentialCircuit& seq,
                                                const Circuit& sv,
                                                ScanMode mode, int count,
                                                std::uint64_t seed) {
  const std::size_t n_pi = seq.core().inputs().size();
  const std::size_t n_ff = seq.flops().size();
  // step() rebuilds the scan view on every call; derive good-machine
  // next-states through the prebuilt view instead (its POs are the core
  // POs followed by the next-state nets).
  const std::size_t n_po = seq.core().outputs().size();
  util::Prng prng(seed);
  std::vector<ScanObdTest> tests;
  tests.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    ScanObdTest t;
    t.pi1 = InputVec::random(n_pi, prng);
    t.state1 = InputVec::random(n_ff, prng);
    t.pi2 = mode == ScanMode::kLaunchOnCaptureHeldPi
                ? t.pi1
                : InputVec::random(n_pi, prng);
    t.state2_loaded = mode == ScanMode::kEnhanced;
    t.state2 = t.state2_loaded
                   ? InputVec::random(n_ff, prng)
                   : sv.eval_outputs(t.pi1 | (t.state1 << n_pi)) >> n_po;
    tests.push_back(t);
  }
  return tests;
}

TwoVectorTest scan_view_vectors(const SequentialCircuit& seq,
                                const ScanObdTest& t) {
  const std::size_t n_pi = seq.core().inputs().size();
  return {t.pi1 | (t.state1 << n_pi), t.pi2 | (t.state2 << n_pi)};
}

ScanCampaign run_scan_obd_atpg(const SequentialCircuit& seq,
                               const std::vector<ObdFaultSite>& faults,
                               ScanMode mode, const PodemOptions& opt) {
  ScanCampaign c;
  std::vector<std::uint8_t> skip(faults.size(), 0);
  if (opt.random_phase > 0 && !faults.empty()) {
    // Broadside random-pattern phase over the scan view, with fault
    // dropping. Fault indices carry over: scan_view preserves gate order.
    const auto t0 = std::chrono::steady_clock::now();
    const Circuit sv = seq.scan_view();
    const std::vector<ScanObdTest> random_tests = random_broadside_tests(
        seq, sv, mode, opt.random_phase, opt.random_phase_seed);
    std::vector<TwoVectorTest> vectors;
    vectors.reserve(random_tests.size());
    for (const auto& t : random_tests)
      vectors.push_back(scan_view_vectors(seq, t));
    FaultSimScheduler sched(sv, opt.sim);
    const FaultSimEngine::Campaign campaign =
        sched.campaign_obd(vectors, faults, /*drop_detected=*/true);
    c.fault_block_evals = campaign.fault_block_evals;
    const PrepassMarks marks =
        mark_first_detections(campaign, random_tests.size());
    skip = marks.skip;
    c.found += marks.found;
    c.random_found += marks.found;
    for (std::size_t t = 0; t < random_tests.size(); ++t)
      if (marks.useful[t]) c.tests.push_back(random_tests[t]);
    c.random_tests = static_cast<int>(c.tests.size());
    c.random_seconds = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
  }
  for (std::size_t i = 0; i < faults.size(); ++i) {
    if (skip[i]) continue;
    const ScanObdResult r = generate_scan_obd_test(seq, faults[i], mode, opt);
    switch (r.status) {
      case PodemStatus::kFound:
        ++c.found;
        c.tests.push_back(r.test);
        break;
      case PodemStatus::kUntestable:
        ++c.untestable;
        break;
      case PodemStatus::kAborted:
        ++c.aborted;
        break;
    }
  }
  return c;
}

}  // namespace obd::atpg

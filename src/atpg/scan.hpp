// Scan-based OBD test generation for sequential circuits (paper Sec. 5).
//
// Three application styles, in decreasing hardware cost / increasing
// constraint:
//  - enhanced scan: both vectors fully controllable (two scan registers);
//    any combinational (V1, V2) pair applies;
//  - launch-on-capture (LOC): V1's state is scan-loaded, V2's state is the
//    circuit's own next-state response; PIs may change between frames;
//  - LOC with held PIs: additionally PI2 == PI1 (slow tester).
//
// LOC coupling is handled exactly by running the constrained PODEM on the
// two-frame unrolled circuit, with the OBD excitation pinned on the
// frame-1/frame-2 twins of the defective gate.
#pragma once

#include "atpg/twoframe.hpp"
#include "logic/sequential.hpp"

namespace obd::atpg {

enum class ScanMode {
  kEnhanced,
  kLaunchOnCapture,
  kLaunchOnCaptureHeldPi,
};

const char* to_string(ScanMode m);

/// A scan test: state to scan in, PI vectors for the two cycles. All fields
/// are wide InputVecs, so scan chains longer than 64 flops apply unchanged.
struct ScanObdTest {
  InputVec state1;
  InputVec pi1;
  InputVec pi2;
  /// Frame-2 state. For enhanced scan this is independently loaded; for the
  /// LOC modes it is derived (the machine's own next state) and recorded
  /// here for reporting only.
  InputVec state2;
  /// True when state2 was independently loaded (enhanced scan).
  bool state2_loaded = false;
};

struct ScanObdResult {
  PodemStatus status = PodemStatus::kUntestable;
  ScanObdTest test;
  long backtracks = 0;
};

/// Generates a scan OBD test for a fault on core gate `site.gate_index`.
ScanObdResult generate_scan_obd_test(const logic::SequentialCircuit& seq,
                                     const ObdFaultSite& site, ScanMode mode,
                                     const PodemOptions& opt = {});

/// Checks a scan test end to end by cycle-accurate simulation: loads
/// state1, runs the launch and capture cycles in both good and faulty
/// machines (gross-delay fault semantics on the capture cycle), and
/// compares POs + captured state.
bool verify_scan_obd_test(const logic::SequentialCircuit& seq,
                          const ObdFaultSite& site, const ScanObdTest& test);

/// `count` random broadside (launch/capture) scan tests for `mode`,
/// deterministic in `seed`: random state1/pi1 (and pi2 unless held); state2
/// is the machine's own response for the LOC modes and independently random
/// for enhanced scan. These are exactly the tests the random-pattern
/// prepass of run_scan_obd_atpg fault-simulates.
std::vector<ScanObdTest> random_broadside_tests(
    const logic::SequentialCircuit& seq, ScanMode mode, int count,
    std::uint64_t seed);

/// As above, reusing a prebuilt seq.scan_view() for the LOC next-state
/// derivation instead of reconstructing it.
std::vector<ScanObdTest> random_broadside_tests(
    const logic::SequentialCircuit& seq, const logic::Circuit& scan_view,
    ScanMode mode, int count, std::uint64_t seed);

/// The scan-view two-vector image of a scan test: v1 = {pi1, state1},
/// v2 = {pi2, state2} over the scan view's PI order (PIs, then flops).
TwoVectorTest scan_view_vectors(const logic::SequentialCircuit& seq,
                                const ScanObdTest& t);

/// Per-mode campaign over a fault list.
struct ScanCampaign {
  int found = 0;
  int untestable = 0;
  int aborted = 0;
  /// Of `found`, how many came from the random-pattern prepass.
  int random_found = 0;
  /// Prepass tests kept because they first-detected some fault (they are
  /// the first `random_tests` entries of `tests`).
  int random_tests = 0;
  /// Scheduler work metric of the prepass (Campaign::fault_block_evals).
  long long fault_block_evals = 0;
  /// Wall-clock seconds spent in the random prepass (generation + fault
  /// simulation); campaign drivers report it separately from PODEM time.
  double random_seconds = 0.0;
  std::vector<ScanObdTest> tests;
};

/// With opt.random_phase > 0, a broadside random-pattern phase runs first:
/// the faults are block-simulated over the scan view against
/// random_broadside_tests() with fault dropping (opt.sim workers/packing),
/// detected faults skip the deterministic search, and each random test that
/// first-detects some fault joins the campaign's test list. Core fault
/// indices carry over to the scan view (gate order is preserved), and the
/// engine's gross-delay semantics on the scan view match
/// verify_scan_obd_test exactly.
ScanCampaign run_scan_obd_atpg(const logic::SequentialCircuit& seq,
                               const std::vector<ObdFaultSite>& faults,
                               ScanMode mode, const PodemOptions& opt = {});

}  // namespace obd::atpg

#include "atpg/twoframe.hpp"

#include "atpg/faultsim.hpp"
#include "atpg/faultsim_engine.hpp"
#include "core/excitation.hpp"

namespace obd::atpg {
namespace {

std::vector<NetConstraint> pin_gate_inputs(const Circuit& c, int gate_idx,
                                           std::uint32_t bits) {
  const auto& g = c.gate(gate_idx);
  std::vector<NetConstraint> out;
  out.reserve(g.inputs.size());
  for (std::size_t k = 0; k < g.inputs.size(); ++k)
    out.push_back({g.inputs[k], ((bits >> k) & 1u) != 0});
  return out;
}

}  // namespace

TwoFrameResult generate_obd_test(const Circuit& c, const ObdFaultSite& site,
                                 const PodemOptions& opt) {
  TwoFrameResult result;
  const auto& g = c.gate(site.gate_index);
  const auto topo = logic::gate_topology(g.type);
  if (!topo.has_value()) return result;  // composite gate: no OBD site

  bool any_aborted = false;
  AbortReason abort_reason = AbortReason::kNone;
  auto note_abort = [&](const PodemResult& r) {
    if (r.status != PodemStatus::kAborted) return;
    any_aborted = true;
    if (abort_reason != AbortReason::kTime) abort_reason = r.reason;
  };
  for (const auto& tv : core::obd_excitations(*topo, site.transistor)) {
    // Frame 2: pin the gate inputs to the excitation's final vector; the
    // faulty circuit sees the gate output frozen at its frame-1 value.
    const bool old_out = topo->output(tv.v1);
    PodemResult f2 = podem_constrained_fault(
        c, pin_gate_inputs(c, site.gate_index, tv.v2), g.output, old_out, opt);
    result.backtracks += f2.backtracks;
    result.implications += f2.implications;
    note_abort(f2);
    if (f2.status != PodemStatus::kFound) continue;

    // Frame 1: justify the excitation's initial vector.
    PodemResult f1 =
        podem_justify(c, pin_gate_inputs(c, site.gate_index, tv.v1), opt);
    result.backtracks += f1.backtracks;
    result.implications += f1.implications;
    note_abort(f1);
    if (f1.status != PodemStatus::kFound) continue;

    result.status = PodemStatus::kFound;
    result.test = TwoVectorTest{f1.vector.bits, f2.vector.bits};
    result.x_test = XTwoVectorTest{f1.vector, f2.vector};
    return result;
  }
  result.status = any_aborted ? PodemStatus::kAborted : PodemStatus::kUntestable;
  if (result.status == PodemStatus::kAborted) result.reason = abort_reason;
  return result;
}

TwoFrameResult generate_transition_test(const Circuit& c,
                                        const TransitionFault& fault,
                                        const PodemOptions& opt) {
  TwoFrameResult result;
  // Frame 2: output must reach its final value while the faulty circuit
  // holds the old one; no input-specific constraint (classical model).
  const bool final_value = fault.slow_to_rise;
  PodemResult f2 =
      podem_constrained_fault(c, {{fault.net, final_value}}, fault.net,
                              !final_value, opt);
  result.backtracks += f2.backtracks;
  result.implications += f2.implications;
  if (f2.status != PodemStatus::kFound) {
    result.status = f2.status;
    result.reason = f2.reason;
    return result;
  }
  PodemResult f1 = podem_justify(c, {{fault.net, !final_value}}, opt);
  result.backtracks += f1.backtracks;
  result.implications += f1.implications;
  if (f1.status != PodemStatus::kFound) {
    result.status = f1.status;
    result.reason = f1.reason;
    return result;
  }
  result.status = PodemStatus::kFound;
  result.test = TwoVectorTest{f1.vector.bits, f2.vector.bits};
  result.x_test = XTwoVectorTest{f1.vector, f2.vector};
  return result;
}

namespace {

/// Random-pattern phase: block-simulate `tests` with fault dropping (sharded
/// over opt.sim.threads workers); faults caught there skip the deterministic
/// search, and each random test that is the *first* detector of some fault
/// joins the run's test set. `campaign` maps (scheduler, tests) to a
/// fault-dropping campaign.
template <typename Fault, typename CampaignFn>
std::vector<std::uint8_t> random_phase_prepass(
    const Circuit& c, const std::vector<Fault>& faults,
    const std::vector<TwoVectorTest>& tests, const PodemOptions& opt,
    AtpgRun& run, CampaignFn campaign) {
  if (tests.empty() || faults.empty())
    return std::vector<std::uint8_t>(faults.size(), 0);
  FaultSimScheduler sched(c, opt.sim);
  const PrepassMarks marks =
      mark_first_detections(campaign(sched, tests), tests.size());
  run.found += marks.found;
  const InputVec pi_mask = InputVec::mask(c.inputs().size());
  for (std::size_t t = 0; t < tests.size(); ++t) {
    if (!marks.useful[t]) continue;
    run.tests.push_back(tests[t]);
    run.x_tests.push_back(XTwoVectorTest{{tests[t].v1, pi_mask},
                                         {tests[t].v2, pi_mask}});
  }
  return marks.skip;
}

std::vector<TwoVectorTest> random_phase_tests(const Circuit& c,
                                              const PodemOptions& opt) {
  if (opt.random_phase <= 0) return {};
  return random_pairs(static_cast<int>(c.inputs().size()), opt.random_phase,
                      opt.random_phase_seed);
}

template <typename Fault, typename Gen>
AtpgRun run_all(const std::vector<Fault>& faults,
                std::vector<std::uint8_t> skip, AtpgRun run, Gen gen) {
  for (std::size_t i = 0; i < faults.size(); ++i) {
    if (skip[i]) continue;
    const TwoFrameResult r = gen(faults[i]);
    run.total_backtracks += r.backtracks;
    run.total_implications += r.implications;
    switch (r.status) {
      case PodemStatus::kFound:
        ++run.found;
        run.tests.push_back(r.test);
        run.x_tests.push_back(r.x_test);
        break;
      case PodemStatus::kUntestable:
        ++run.untestable;
        run.untestable_faults.push_back(i);
        break;
      case PodemStatus::kAborted:
        ++run.aborted;
        break;
    }
  }
  return run;
}

}  // namespace

AtpgRun run_obd_atpg(const Circuit& c, const std::vector<ObdFaultSite>& faults,
                     const PodemOptions& opt) {
  AtpgRun run;
  auto skip = random_phase_prepass(
      c, faults, random_phase_tests(c, opt), opt, run,
      [&](FaultSimScheduler& s, const std::vector<TwoVectorTest>& tests) {
        return s.campaign_obd(tests, faults);
      });
  return run_all(faults, std::move(skip), std::move(run),
                 [&](const ObdFaultSite& f) {
                   return generate_obd_test(c, f, opt);
                 });
}

AtpgRun run_transition_atpg(const Circuit& c,
                            const std::vector<TransitionFault>& faults,
                            const PodemOptions& opt) {
  AtpgRun run;
  auto skip = random_phase_prepass(
      c, faults, random_phase_tests(c, opt), opt, run,
      [&](FaultSimScheduler& s, const std::vector<TwoVectorTest>& tests) {
        return s.campaign_transition(tests, faults);
      });
  return run_all(faults, std::move(skip), std::move(run),
                 [&](const TransitionFault& f) {
                   return generate_transition_test(c, f, opt);
                 });
}

AtpgRun run_stuck_at_atpg(const Circuit& c,
                          const std::vector<StuckFault>& faults,
                          const PodemOptions& opt) {
  AtpgRun run;
  // Single-vector patterns: the v2 halves of the shared pair generator.
  auto tests = random_phase_tests(c, opt);
  for (auto& t : tests) t.v1 = t.v2;
  auto skip = random_phase_prepass(
      c, faults, tests, opt, run,
      [&](FaultSimScheduler& s, const std::vector<TwoVectorTest>& ts) {
        std::vector<InputVec> patterns(ts.size());
        for (std::size_t i = 0; i < ts.size(); ++i) patterns[i] = ts[i].v2;
        return s.campaign_stuck(patterns, faults);
      });
  return run_all(faults, std::move(skip), std::move(run),
                 [&](const StuckFault& f) {
                   const PodemResult r = podem_stuck_at(c, f, opt);
                   TwoFrameResult t;
                   t.status = r.status;
                   t.reason = r.reason;
                   t.backtracks = r.backtracks;
                   t.implications = r.implications;
                   t.test = TwoVectorTest{r.vector.bits, r.vector.bits};
                   t.x_test = XTwoVectorTest{r.vector, r.vector};
                   return t;
                 });
}

}  // namespace obd::atpg

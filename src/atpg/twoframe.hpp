// Two-vector test generation for dynamic faults.
//
// OBD flow (Sec. 4 of the paper): for a fault on transistor t of gate G,
// enumerate the gate-local excitation pairs (lv1 -> lv2) derived from the
// cell topology (core::obd_excitations). For each candidate:
//   frame 2: PODEM with G's inputs pinned to lv2 and G's output stuck (in
//            the faulty circuit) at its *previous* value out(lv1); the
//            difference must reach a primary output. This models the
//            gross-delay view of the slow transition.
//   frame 1: independent justification of G's inputs to lv1.
// Both frames are plain combinational searches, which is the paper's
// complexity claim: OBD TPG costs the same as stuck-at TPG per frame.
//
// The classical transition-fault flow is identical minus the gate-input
// pinning: any (v1, v2) toggling G's output will do — which is exactly why
// transition test sets can miss input-specific (PMOS) OBD defects.
#pragma once

#include "atpg/podem.hpp"

namespace obd::atpg {

struct TwoFrameResult {
  PodemStatus status = PodemStatus::kUntestable;
  /// Set when status == kAborted. A time abort anywhere dominates (it
  /// marks the fault as worth re-attempting on resume); backtrack-limit
  /// aborts are deterministic and final for the given options.
  AbortReason reason = AbortReason::kNone;
  TwoVectorTest test;
  /// The same test with the PODEM care masks preserved (don't-care PIs keep
  /// care_mask 0) — the input to X-overlap compaction.
  XTwoVectorTest x_test;
  long backtracks = 0;
  long implications = 0;
};

/// Generates a two-vector test for one OBD fault site.
TwoFrameResult generate_obd_test(const Circuit& c, const ObdFaultSite& site,
                                 const PodemOptions& opt = {});

/// Generates a two-vector test for one classical transition fault.
TwoFrameResult generate_transition_test(const Circuit& c,
                                        const TransitionFault& fault,
                                        const PodemOptions& opt = {});

/// Whole-fault-list ATPG statistics.
struct AtpgRun {
  std::vector<TwoVectorTest> tests;
  /// Care-mask form of `tests`, index-aligned (random-phase tests are fully
  /// specified). Feeds merge_x_overlap.
  std::vector<XTwoVectorTest> x_tests;
  int found = 0;
  int untestable = 0;
  int aborted = 0;
  long total_backtracks = 0;
  long total_implications = 0;
  /// Indices (into the fault list) of faults proven untestable.
  std::vector<std::size_t> untestable_faults;
};

/// Runs OBD ATPG over every fault in `faults`.
AtpgRun run_obd_atpg(const Circuit& c, const std::vector<ObdFaultSite>& faults,
                     const PodemOptions& opt = {});

/// Runs transition ATPG over every fault in `faults`.
AtpgRun run_transition_atpg(const Circuit& c,
                            const std::vector<TransitionFault>& faults,
                            const PodemOptions& opt = {});

/// Runs stuck-at ATPG over every fault; tests are single vectors (stored in
/// v2 with v1 == v2).
AtpgRun run_stuck_at_atpg(const Circuit& c,
                          const std::vector<StuckFault>& faults,
                          const PodemOptions& opt = {});

}  // namespace obd::atpg

// Umbrella header for the CMOS cell library.
#pragma once

#include "cells/harness.hpp"   // IWYU pragma: export
#include "cells/stdcells.hpp"  // IWYU pragma: export
#include "cells/tech.hpp"      // IWYU pragma: export
#include "cells/topology.hpp"  // IWYU pragma: export

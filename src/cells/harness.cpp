#include "cells/harness.hpp"

namespace obd::cells {

std::string format_bits(InputBits bits, int num_inputs) {
  std::string s;
  for (int i = 0; i < num_inputs; ++i)
    s += ((bits >> i) & 1u) ? '1' : '0';
  return s;
}

std::string format_transition(const TwoVector& t, int num_inputs) {
  return "(" + format_bits(t.v1, num_inputs) + "," +
         format_bits(t.v2, num_inputs) + ")";
}

Harness::Harness(const CellTopology& dut_topology, const Technology& tech)
    : tech_(tech) {
  const spice::NodeId vdd = netlist_.node("vdd");
  netlist_.add_vsource(vdd_source_, vdd, spice::kGround,
                       spice::SourceWave::make_dc(tech_.vdd));

  const int n = dut_topology.num_inputs;
  std::vector<spice::NodeId> dut_inputs;
  for (int i = 0; i < n; ++i) {
    const std::string idx = std::to_string(i);
    const spice::NodeId stim = netlist_.node("stim" + idx);
    const spice::NodeId mid = netlist_.node("drv" + idx + "_mid");
    const spice::NodeId in = netlist_.node("in" + idx);
    stim_sources_.push_back(netlist_.add_vsource(
        "Vstim" + idx, stim, spice::kGround, spice::SourceWave::make_dc(0.0)));
    // Two-inverter buffer: the stimulus polarity is preserved and the DUT
    // sees a realistically limited driver (the second inverter).
    emit_inv(netlist_, "drva" + idx, stim, mid, vdd, tech_);
    emit_inv(netlist_, "drvb" + idx, mid, in, vdd, tech_);
    dut_inputs.push_back(in);
    input_nodes_.push_back("in" + idx);
  }

  const spice::NodeId out = netlist_.node("out");
  dut_ = emit_cell(netlist_, dut_topology, "dut", dut_inputs, out, vdd, tech_);
  output_node_ = "out";

  const spice::NodeId load_out = netlist_.node("load_out");
  emit_inv(netlist_, "load", out, load_out, vdd, tech_);
  load_output_node_ = "load_out";
}

void Harness::set_two_vector(const TwoVector& tv, double t_switch,
                             double t_slew) {
  t_switch_ = t_switch;
  for (std::size_t i = 0; i < stim_sources_.size(); ++i) {
    const double lvl1 = ((tv.v1 >> i) & 1u) ? tech_.vdd : 0.0;
    const double lvl2 = ((tv.v2 >> i) & 1u) ? tech_.vdd : 0.0;
    stim_sources_[i]->set_wave(spice::SourceWave::make_pwl(
        {{0.0, lvl1}, {t_switch, lvl1}, {t_switch + t_slew, lvl2}}));
  }
}

}  // namespace obd::cells

// Fig. 5 characterization harness.
//
// The paper stresses that the defective gate must be driven by *gates*, not
// ideal sources: the OBD leakage path loads the (current-limited) upstream
// driver, which is half of the delay mechanism. The harness therefore wires,
// per DUT input:
//
//   Vstim_i -> driver INV (stage a) -> driver INV (stage b) -> DUT input i
//
// and loads the DUT output with an inverter (the downstream gate whose
// reduced input swing is the other half of the mechanism):
//
//   DUT out -> load INV -> load_out
//
// Stimuli are PWL waveforms encoding a two-vector (V1 -> V2) test.
#pragma once

#include <string>
#include <vector>

#include "cells/stdcells.hpp"

namespace obd::cells {

/// A two-vector input transition applied to the DUT.
struct TwoVector {
  InputBits v1 = 0;
  InputBits v2 = 0;
};

/// Formats a vector as the paper does: input 0 first, e.g. v=0b10 with two
/// inputs prints "01" (A=0, B=1).
std::string format_bits(InputBits bits, int num_inputs);
/// Formats a transition as "(01,11)".
std::string format_transition(const TwoVector& t, int num_inputs);

class Harness {
 public:
  /// Builds the harness around a DUT with the given topology.
  Harness(const CellTopology& dut_topology, const Technology& tech);

  /// Programs the stimulus sources with a V1 -> V2 transition. V1 holds
  /// until `t_switch`, then each changing input ramps over `t_slew`.
  void set_two_vector(const TwoVector& tv, double t_switch = 2e-9,
                      double t_slew = 50e-12);

  spice::Netlist& netlist() { return netlist_; }
  const spice::Netlist& netlist() const { return netlist_; }
  const Technology& tech() const { return tech_; }
  const CellInstance& dut() const { return dut_; }

  /// Node names for stimulus/observation.
  const std::vector<std::string>& input_node_names() const {
    return input_nodes_;
  }
  const std::string& output_node_name() const { return output_node_; }
  const std::string& load_output_node_name() const { return load_output_node_; }
  const std::string& vdd_source_name() const { return vdd_source_; }
  double t_switch() const { return t_switch_; }

 private:
  Technology tech_;
  spice::Netlist netlist_;
  CellInstance dut_;
  std::vector<spice::VoltageSource*> stim_sources_;
  std::vector<std::string> input_nodes_;
  std::string output_node_;
  std::string load_output_node_;
  std::string vdd_source_ = "Vdd";
  double t_switch_ = 0.0;
};

}  // namespace obd::cells

#include "cells/stdcells.hpp"

#include <cassert>

namespace obd::cells {
namespace {

/// Longest series chain length from the root to any leaf: used to upsize
/// stacked devices so stacks drive like a single reference device.
int series_depth(const SpNode& n) {
  switch (n.kind) {
    case SpNode::Kind::kTransistor:
      return 1;
    case SpNode::Kind::kSeries: {
      int sum = 0;
      for (const auto& c : n.children) sum += series_depth(c);
      return sum;
    }
    case SpNode::Kind::kParallel: {
      int best = 0;
      for (const auto& c : n.children) best = std::max(best, series_depth(c));
      return best;
    }
  }
  return 1;
}

struct Emitter {
  spice::Netlist& nl;
  const CellInstance& cell;
  const Technology& tech;
  spice::NodeId vdd;
  bool pmos;
  double width_mult;  // strength * stack upsizing
  int next_internal = 0;

  spice::NodeId fresh_node() {
    // Polarity-specific prefix: PDN and PUN each number their own internal
    // nodes, so the two networks can never share an internal node by name.
    return nl.node(cell.name + (pmos ? ".xp" : ".xn") +
                   std::to_string(next_internal++));
  }

  /// Emits subtree `n` between electrical nodes a (toward output) and b
  /// (toward the rail).
  void emit(const SpNode& n, spice::NodeId a, spice::NodeId b) {
    switch (n.kind) {
      case SpNode::Kind::kTransistor: {
        const TransistorRef t{pmos, n.input};
        const spice::NodeId gate =
            cell.inputs[static_cast<std::size_t>(n.input)];
        const spice::NodeId bulk = pmos ? vdd : spice::kGround;
        const spice::MosfetParams p =
            pmos ? tech.pmos(width_mult) : tech.nmos(width_mult);
        // Drain toward the output side by convention.
        nl.add_mosfet(cell.transistor_name(t), a, gate, b, bulk, p);
        return;
      }
      case SpNode::Kind::kSeries: {
        spice::NodeId prev = a;
        for (std::size_t i = 0; i < n.children.size(); ++i) {
          const bool last = i + 1 == n.children.size();
          const spice::NodeId next = last ? b : fresh_node();
          emit(n.children[i], prev, next);
          prev = next;
        }
        return;
      }
      case SpNode::Kind::kParallel: {
        for (const auto& c : n.children) emit(c, a, b);
        return;
      }
    }
  }
};

}  // namespace

CellInstance emit_cell(spice::Netlist& nl, const CellTopology& topology,
                       const std::string& inst,
                       const std::vector<spice::NodeId>& inputs,
                       spice::NodeId output, spice::NodeId vdd,
                       const Technology& tech, double strength) {
  assert(static_cast<int>(inputs.size()) == topology.num_inputs);
  CellInstance cell;
  cell.name = inst;
  cell.topology = topology;
  cell.inputs = inputs;
  cell.output = output;

  // Pull-down network between output and ground.
  Emitter pdn_emitter{nl,  cell, tech, vdd, /*pmos=*/false,
                      strength * series_depth(topology.pdn)};
  pdn_emitter.emit(topology.pdn, output, spice::kGround);
  // Pull-up network between output and vdd.
  Emitter pun_emitter{nl,  cell, tech, vdd, /*pmos=*/true,
                      strength * series_depth(topology.pun)};
  pun_emitter.emit(topology.pun, output, vdd);
  nl.add_capacitor(inst + ".Cw", output, spice::kGround, tech.cwire);
  return cell;
}

CellInstance emit_inv(spice::Netlist& nl, const std::string& inst,
                      spice::NodeId in, spice::NodeId out, spice::NodeId vdd,
                      const Technology& tech, double strength) {
  return emit_cell(nl, inv_topology(), inst, {in}, out, vdd, tech, strength);
}

CellInstance emit_nand2(spice::Netlist& nl, const std::string& inst,
                        spice::NodeId a, spice::NodeId b, spice::NodeId out,
                        spice::NodeId vdd, const Technology& tech,
                        double strength) {
  return emit_cell(nl, nand_topology(2), inst, {a, b}, out, vdd, tech,
                   strength);
}

CellInstance emit_nor2(spice::Netlist& nl, const std::string& inst,
                       spice::NodeId a, spice::NodeId b, spice::NodeId out,
                       spice::NodeId vdd, const Technology& tech,
                       double strength) {
  return emit_cell(nl, nor_topology(2), inst, {a, b}, out, vdd, tech,
                   strength);
}

}  // namespace obd::cells

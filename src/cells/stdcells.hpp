// Transistor-level standard-cell emitters.
//
// emit_cell() lowers a CellTopology into MOSFETs inside a spice::Netlist,
// following fixed naming conventions so that higher layers (OBD injection,
// characterization, the gate-to-transistor elaborator) can address individual
// transistors:
//   transistor gated by input i :  "<inst>.MN<i>" (NMOS) / "<inst>.MP<i>" (PMOS)
//   internal series nodes       :  "<inst>.x<k>"
// Series stacks are upsized by their depth (a 2-deep NMOS stack gets 2x
// width) — conventional drive-strength equalization.
#pragma once

#include <string>
#include <vector>

#include "cells/tech.hpp"
#include "cells/topology.hpp"
#include "spice/netlist.hpp"

namespace obd::cells {

/// Handle to an emitted cell: instance name, pins, and transistor naming.
struct CellInstance {
  std::string name;
  CellTopology topology;
  std::vector<spice::NodeId> inputs;
  spice::NodeId output = spice::kInvalidNode;

  /// Netlist device name of one of the cell's transistors.
  std::string transistor_name(const TransistorRef& t) const {
    return name + (t.pmos ? ".MP" : ".MN") + std::to_string(t.input);
  }
};

/// Emits `topology` as transistors between the given pins.
/// `strength` scales all widths; a wire load of tech.cwire is attached to
/// the output. Inputs vector size must equal topology.num_inputs.
CellInstance emit_cell(spice::Netlist& nl, const CellTopology& topology,
                       const std::string& inst,
                       const std::vector<spice::NodeId>& inputs,
                       spice::NodeId output, spice::NodeId vdd,
                       const Technology& tech, double strength = 1.0);

// Convenience wrappers for the common cells.
CellInstance emit_inv(spice::Netlist& nl, const std::string& inst,
                      spice::NodeId in, spice::NodeId out, spice::NodeId vdd,
                      const Technology& tech, double strength = 1.0);
CellInstance emit_nand2(spice::Netlist& nl, const std::string& inst,
                        spice::NodeId a, spice::NodeId b, spice::NodeId out,
                        spice::NodeId vdd, const Technology& tech,
                        double strength = 1.0);
CellInstance emit_nor2(spice::Netlist& nl, const std::string& inst,
                       spice::NodeId a, spice::NodeId b, spice::NodeId out,
                       spice::NodeId vdd, const Technology& tech,
                       double strength = 1.0);

}  // namespace obd::cells

#include "cells/tech.hpp"

#include <cmath>

#include "util/units.hpp"

namespace obd::cells {
namespace {

spice::MosfetParams make_params(const Technology& t, bool pmos, double w) {
  spice::MosfetParams p;
  p.pmos = pmos;
  p.vt0 = pmos ? t.vtp : t.vtn;
  p.kp = pmos ? t.kpp : t.kpn;
  p.w = w;
  p.l = t.length;
  p.lambda = t.lambda;
  // Fixed capacitance model: half the channel charge to each of source and
  // drain, plus overlap; junction caps scale with width.
  const double c_channel = t.cox_area * w * t.length;
  const double c_ov = t.cov_width * w;
  p.cgs = 0.5 * c_channel + c_ov;
  p.cgd = 0.5 * c_channel + c_ov;
  p.cdb = t.cj_width * w;
  p.csb = t.cj_width * w;
  return p;
}

}  // namespace

spice::MosfetParams Technology::nmos(double w_mult) const {
  return make_params(*this, false, wn * w_mult);
}

spice::MosfetParams Technology::pmos(double w_mult) const {
  return make_params(*this, true, wp * w_mult);
}

double Technology::thermal_voltage() const {
  return util::constants::kBoltzmann * temperature /
         util::constants::kElementaryCharge;
}

Technology Technology::at_temperature(double kelvin) const {
  Technology t = *this;
  const double ratio = kelvin / temperature;
  // Lattice-scattering mobility: mu ~ T^-1.5.
  t.kpn *= std::pow(ratio, -1.5);
  t.kpp *= std::pow(ratio, -1.5);
  // Threshold tempco ~ -1 mV/K for both polarities (magnitudes shrink when
  // hot), clamped away from zero.
  const double dvt = -1e-3 * (kelvin - temperature);
  t.vtn = std::max(0.1, t.vtn + dvt);
  t.vtp = std::max(0.1, t.vtp + dvt);
  t.temperature = kelvin;
  return t;
}

Technology Technology::perturbed(util::Prng& prng, double sigma_vt,
                                 double sigma_kp_rel) const {
  // Box-Muller gaussians from the deterministic PRNG.
  auto gauss = [&prng]() {
    const double u1 = std::max(prng.next_double(), 1e-12);
    const double u2 = prng.next_double();
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * 3.14159265358979323846 * u2);
  };
  Technology t = *this;
  t.vtn = std::max(0.1, t.vtn + sigma_vt * gauss());
  t.vtp = std::max(0.1, t.vtp + sigma_vt * gauss());
  t.kpn *= std::max(0.5, 1.0 + sigma_kp_rel * gauss());
  t.kpp *= std::max(0.5, 1.0 + sigma_kp_rel * gauss());
  return t;
}

Technology Technology::default_350nm() { return Technology{}; }

}  // namespace obd::cells

// Technology card: device parameters for the cell library.
//
// The paper's experiments use a 3.3 V process (its plots swing 0..3.3 V) with
// fault-free NAND delays near 96 ps (fall) / 110 ps (rise). We define a
// generic 0.35 um-class card and calibrate default widths plus a per-output
// wire load so the fault-free Fig. 5 harness lands in the same delay range.
// Absolute calibration is a substitution (see DESIGN.md); every claim we
// reproduce is about orderings and input-specificity, not picoseconds.
#pragma once

#include "spice/devices.hpp"
#include "util/prng.hpp"

namespace obd::cells {

struct Technology {
  /// Supply voltage [V].
  double vdd = 3.3;

  // Device parameters.
  double vtn = 0.72;       ///< NMOS threshold [V].
  double vtp = 0.72;       ///< PMOS threshold magnitude [V].
  double kpn = 170e-6;     ///< NMOS uCox [A/V^2].
  double kpp = 60e-6;      ///< PMOS uCox [A/V^2].
  double length = 0.35e-6; ///< Drawn channel length [m].
  double wn = 0.8e-6;      ///< Default NMOS width [m].
  double wp = 1.6e-6;      ///< Default PMOS width [m].
  double lambda = 0.06;    ///< Channel-length modulation [1/V].

  // Capacitance model (fixed caps attached per device / per output).
  double cox_area = 4.6e-3;    ///< Gate-oxide capacitance [F/m^2].
  double cov_width = 3.0e-10;  ///< Gate-drain/source overlap [F/m].
  double cj_width = 8.0e-10;   ///< Junction capacitance per width [F/m].
  /// Lumped wire + fanout load added at every cell output [F]. This is the
  /// main delay-calibration knob.
  double cwire = 18e-15;

  /// Junction temperature [K]; scales the diode thermal voltage and (to
  /// first order) mobility and thresholds via at_temperature().
  double temperature = 300.0;

  /// MOSFET parameter record for an NMOS of `w_mult` times default width.
  spice::MosfetParams nmos(double w_mult = 1.0) const;
  /// MOSFET parameter record for a PMOS of `w_mult` times default width.
  spice::MosfetParams pmos(double w_mult = 1.0) const;

  /// Thermal voltage kT/q at this card's temperature [V].
  double thermal_voltage() const;

  /// A copy of this card retargeted to `kelvin`: mobility scales as
  /// (T/300)^-1.5, threshold magnitudes drop ~1 mV/K, diode kT/q follows T.
  /// First-order temperature physics; enough for trend benches.
  Technology at_temperature(double kelvin) const;

  /// A copy with random process perturbations: VT shifts by N(0, sigma_vt)
  /// and KP by a relative N(0, sigma_kp_rel), deterministically from `prng`
  /// (Box-Muller over the repo PRNG). Models inter-die variation for
  /// guard-banding studies.
  Technology perturbed(util::Prng& prng, double sigma_vt = 0.03,
                       double sigma_kp_rel = 0.05) const;

  /// The default card described above.
  static Technology default_350nm();
};

}  // namespace obd::cells

#include "cells/topology.hpp"

namespace obd::cells {
namespace {

/// Is a transistor leaf gated by `input` ON under `bits` for this polarity?
bool leaf_on(bool pmos, int input, InputBits bits) {
  const bool high = (bits >> input) & 1u;
  return pmos ? !high : high;
}

/// Does the SP subtree conduct? `forced_off_input` disables every leaf gated
/// by that input (-1 disables nothing).
bool conducts(const SpNode& n, bool pmos, InputBits bits,
              int forced_off_input) {
  switch (n.kind) {
    case SpNode::Kind::kTransistor:
      if (n.input == forced_off_input) return false;
      return leaf_on(pmos, n.input, bits);
    case SpNode::Kind::kSeries:
      for (const auto& c : n.children)
        if (!conducts(c, pmos, bits, forced_off_input)) return false;
      return true;
    case SpNode::Kind::kParallel:
      for (const auto& c : n.children)
        if (conducts(c, pmos, bits, forced_off_input)) return true;
      return false;
  }
  return false;
}

/// Does this subtree contain a leaf gated by `input`?
bool contains(const SpNode& n, int input) {
  if (n.kind == SpNode::Kind::kTransistor) return n.input == input;
  for (const auto& c : n.children)
    if (contains(c, input)) return true;
  return false;
}

/// Given that current flows through subtree `n`, does the leaf gated by
/// `input` carry (part of) it? Pre-condition: n conducts under bits.
bool carries(const SpNode& n, bool pmos, InputBits bits, int input) {
  switch (n.kind) {
    case SpNode::Kind::kTransistor:
      return n.input == input;  // Current flows through this very leaf.
    case SpNode::Kind::kSeries:
      // All children of a conducting series chain carry the full current.
      for (const auto& c : n.children)
        if (contains(c, input)) return carries(c, pmos, bits, input);
      return false;
    case SpNode::Kind::kParallel:
      // Every *conducting* branch of a parallel composite carries a share.
      for (const auto& c : n.children) {
        if (!contains(c, input)) continue;
        return conducts(c, pmos, bits, -1) && carries(c, pmos, bits, input);
      }
      return false;
  }
  return false;
}

void collect_inputs(const SpNode& n, std::vector<int>* out) {
  if (n.kind == SpNode::Kind::kTransistor) {
    out->push_back(n.input);
    return;
  }
  for (const auto& c : n.children) collect_inputs(c, out);
}

}  // namespace

bool CellTopology::pdn_conducts(InputBits bits) const {
  return conducts(pdn, /*pmos=*/false, bits, -1);
}

bool CellTopology::pun_conducts(InputBits bits) const {
  return conducts(pun, /*pmos=*/true, bits, -1);
}

bool CellTopology::is_complementary() const {
  const InputBits limit = 1u << num_inputs;
  for (InputBits v = 0; v < limit; ++v)
    if (pdn_conducts(v) == pun_conducts(v)) return false;
  return true;
}

std::vector<TransistorRef> CellTopology::transistors() const {
  std::vector<TransistorRef> out;
  std::vector<int> inputs;
  collect_inputs(pdn, &inputs);
  for (int i : inputs) out.push_back(TransistorRef{false, i});
  inputs.clear();
  collect_inputs(pun, &inputs);
  for (int i : inputs) out.push_back(TransistorRef{true, i});
  return out;
}

bool CellTopology::transistor_essential(const TransistorRef& t,
                                        InputBits bits) const {
  const SpNode& net = t.pmos ? pun : pdn;
  if (!leaf_on(t.pmos, t.input, bits)) return false;
  if (!conducts(net, t.pmos, bits, -1)) return false;
  // Essential iff removing the transistor breaks every conducting path.
  return !conducts(net, t.pmos, bits, t.input);
}

bool CellTopology::transistor_conducting(const TransistorRef& t,
                                         InputBits bits) const {
  const SpNode& net = t.pmos ? pun : pdn;
  if (!leaf_on(t.pmos, t.input, bits)) return false;
  if (!conducts(net, t.pmos, bits, -1)) return false;
  return carries(net, t.pmos, bits, t.input);
}

CellTopology inv_topology() {
  CellTopology c;
  c.type_name = "INV";
  c.num_inputs = 1;
  c.pdn = SpNode::transistor(0);
  c.pun = SpNode::transistor(0);
  return c;
}

CellTopology nand_topology(int n_inputs) {
  CellTopology c;
  c.type_name = "NAND" + std::to_string(n_inputs);
  c.num_inputs = n_inputs;
  std::vector<SpNode> series_ch;
  std::vector<SpNode> par_ch;
  for (int i = 0; i < n_inputs; ++i) {
    series_ch.push_back(SpNode::transistor(i));
    par_ch.push_back(SpNode::transistor(i));
  }
  c.pdn = SpNode::series(std::move(series_ch));
  c.pun = SpNode::parallel(std::move(par_ch));
  return c;
}

CellTopology nor_topology(int n_inputs) {
  CellTopology c;
  c.type_name = "NOR" + std::to_string(n_inputs);
  c.num_inputs = n_inputs;
  std::vector<SpNode> series_ch;
  std::vector<SpNode> par_ch;
  for (int i = 0; i < n_inputs; ++i) {
    series_ch.push_back(SpNode::transistor(i));
    par_ch.push_back(SpNode::transistor(i));
  }
  c.pdn = SpNode::parallel(std::move(par_ch));
  c.pun = SpNode::series(std::move(series_ch));
  return c;
}

CellTopology aoi21_topology() {
  CellTopology c;
  c.type_name = "AOI21";
  c.num_inputs = 3;
  c.pdn = SpNode::parallel(
      {SpNode::series({SpNode::transistor(0), SpNode::transistor(1)}),
       SpNode::transistor(2)});
  c.pun = SpNode::series(
      {SpNode::parallel({SpNode::transistor(0), SpNode::transistor(1)}),
       SpNode::transistor(2)});
  return c;
}

CellTopology aoi22_topology() {
  CellTopology c;
  c.type_name = "AOI22";
  c.num_inputs = 4;
  c.pdn = SpNode::parallel(
      {SpNode::series({SpNode::transistor(0), SpNode::transistor(1)}),
       SpNode::series({SpNode::transistor(2), SpNode::transistor(3)})});
  c.pun = SpNode::series(
      {SpNode::parallel({SpNode::transistor(0), SpNode::transistor(1)}),
       SpNode::parallel({SpNode::transistor(2), SpNode::transistor(3)})});
  return c;
}

CellTopology oai21_topology() {
  CellTopology c;
  c.type_name = "OAI21";
  c.num_inputs = 3;
  c.pdn = SpNode::series(
      {SpNode::parallel({SpNode::transistor(0), SpNode::transistor(1)}),
       SpNode::transistor(2)});
  c.pun = SpNode::parallel(
      {SpNode::series({SpNode::transistor(0), SpNode::transistor(1)}),
       SpNode::transistor(2)});
  return c;
}

}  // namespace obd::cells

// Series-parallel description of static CMOS cells.
//
// The paper's generalization (Sec. 5) states when an OBD defect is
// detectable: "the OBD breakdown of a transistor can be detected at an
// output node only if that transistor is excited at the switching of the
// output node and if no other transistor that is connected to the defective
// transistor in parallel is excited." Deriving those conditions for an
// arbitrary cell requires knowing the pull-up / pull-down network structure;
// this header provides exactly that as a series-parallel (SP) graph whose
// leaves are transistors labeled by the input that gates them.
//
// Conventions:
//  - Every input i gates exactly one NMOS and one PMOS in a cell (true for
//    INV/NAND/NOR/AOI/OAI), so a transistor is addressed by (polarity, i).
//  - The PDN connects output to GND with NMOS (on when input = 1).
//  - The PUN connects output to VDD with PMOS (on when input = 0).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace obd::cells {

/// Input assignment as a bit vector: bit i = logic value of input i.
using InputBits = std::uint32_t;

/// A node of a series-parallel network.
struct SpNode {
  enum class Kind { kTransistor, kSeries, kParallel };
  Kind kind = Kind::kTransistor;
  /// Gating input index when kind == kTransistor.
  int input = -1;
  std::vector<SpNode> children;

  static SpNode transistor(int input_index) {
    SpNode n;
    n.kind = Kind::kTransistor;
    n.input = input_index;
    return n;
  }
  static SpNode series(std::vector<SpNode> ch) {
    SpNode n;
    n.kind = Kind::kSeries;
    n.children = std::move(ch);
    return n;
  }
  static SpNode parallel(std::vector<SpNode> ch) {
    SpNode n;
    n.kind = Kind::kParallel;
    n.children = std::move(ch);
    return n;
  }
};

/// One of the (up to 32) transistors of a cell: polarity plus gating input.
struct TransistorRef {
  bool pmos = false;
  int input = 0;

  bool operator==(const TransistorRef&) const = default;
};

/// Static CMOS cell as two complementary SP networks.
struct CellTopology {
  std::string type_name;  ///< "INV", "NAND2", "NOR3", "AOI21", ...
  int num_inputs = 0;
  SpNode pdn;  ///< Output-to-GND network of NMOS devices.
  SpNode pun;  ///< Output-to-VDD network of PMOS devices.

  /// Does the PDN conduct under the given inputs? (NMOS on at logic 1.)
  bool pdn_conducts(InputBits bits) const;
  /// Does the PUN conduct under the given inputs? (PMOS on at logic 0.)
  bool pun_conducts(InputBits bits) const;
  /// Boolean output of the cell. For a complementary cell exactly one
  /// network conducts for every input vector.
  bool output(InputBits bits) const { return !pdn_conducts(bits); }
  /// True when PDN/PUN are complementary over all input vectors.
  bool is_complementary() const;

  /// All transistors of the cell (one NMOS + one PMOS per input).
  std::vector<TransistorRef> transistors() const;

  /// True when the given transistor lies on *every* conducting source-sink
  /// path of its network under `bits` (i.e. it carries the full switching
  /// current and no parallel sibling bypasses it). This is the paper's
  /// OBD-excitation structural condition evaluated exactly: we enumerate
  /// conduction with the transistor forced OFF; if the network still
  /// conducts, some parallel path bypasses it.
  bool transistor_essential(const TransistorRef& t, InputBits bits) const;

  /// True when the transistor is on some conducting path of its network
  /// under `bits` (carries at least part of the current). This weaker
  /// condition is the intra-gate electromigration (EM) excitation used in
  /// the paper's Sec. 5 comparison.
  bool transistor_conducting(const TransistorRef& t, InputBits bits) const;
};

/// Factory functions for the cell zoo.
CellTopology inv_topology();
CellTopology nand_topology(int n_inputs);
CellTopology nor_topology(int n_inputs);
/// AOI21: out = !(A*B + C); inputs A=0, B=1, C=2.
CellTopology aoi21_topology();
/// AOI22: out = !(A*B + C*D); inputs A=0, B=1, C=2, D=3.
CellTopology aoi22_topology();
/// OAI21: out = !((A+B) * C); inputs A=0, B=1, C=2.
CellTopology oai21_topology();

}  // namespace obd::cells

#include "core/bist.hpp"

namespace obd::core {

SiteWindow site_window_from_curve(const std::vector<DelayVsIsat>& curve,
                                  double slack,
                                  const ProgressionModel& model) {
  const DetectionWindow w = detection_window(curve, slack, model);
  SiteWindow s;
  s.t_hbd = w.t_hbd;
  s.t_observable = w.detectable() ? *w.t_detectable : w.t_hbd;
  return s;
}

LifetimeStats simulate_lifetime(const std::vector<SiteWindow>& sites,
                                const LifetimeOptions& opt) {
  LifetimeStats stats;
  if (sites.empty() || opt.trials <= 0) return stats;
  util::Prng prng(opt.seed);
  stats.trials = opt.trials;
  double latency_sum = 0.0;

  for (int trial = 0; trial < opt.trials; ++trial) {
    const SiteWindow& site = sites[prng.next_below(sites.size())];
    if (!site.ever_observable()) {
      ++stats.never_observable;
      ++stats.escaped_to_hbd;
      continue;
    }
    // Schedule phase: time from defect onset to the next test.
    const double phase =
        opt.random_phase ? prng.next_double(0.0, opt.test_period) : 0.0;
    // First test at or after the observability onset.
    double t = phase;
    while (t < site.t_observable) t += opt.test_period;
    if (t < site.t_hbd) {
      ++stats.caught;
      latency_sum += t - site.t_observable;
    } else {
      ++stats.escaped_to_hbd;
    }
  }
  if (stats.caught > 0) stats.mean_latency = latency_sum / stats.caught;
  return stats;
}

}  // namespace obd::core

// Concurrent-test lifetime simulation (Monte Carlo).
//
// The paper's Sec. 4.2 argument in executable form: a system runs for
// years; at a random moment a random transistor starts breaking down; the
// concurrent test fires every `period` seconds with a detector of a given
// timing slack. Did we catch the defect inside its window of opportunity —
// after it became observable, before hard breakdown?
//
// The per-site windows come from the analog characterization (delay vs
// leakage) combined with the exponential progression clock; the lifetime
// simulation is then pure interval arithmetic over random onsets/phases,
// repeated for many trials.
#pragma once

#include <vector>

#include "core/progression.hpp"
#include "util/prng.hpp"

namespace obd::core {

/// Detection window of one candidate defect site (already reduced from the
/// characterized curve).
struct SiteWindow {
  /// Time from defect onset until the detector can observe it; negative or
  /// zero means observable immediately.
  double t_observable = 0.0;
  /// Time from onset until hard breakdown (end of the safe window).
  double t_hbd = 0.0;

  bool ever_observable() const { return t_observable < t_hbd; }
};

/// Reduces a characterized delay-vs-leakage curve to a SiteWindow.
SiteWindow site_window_from_curve(const std::vector<DelayVsIsat>& curve,
                                  double slack, const ProgressionModel& model);

struct LifetimeOptions {
  /// Concurrent test period [s].
  double test_period = 3600.0;
  /// Uniform random phase of the test schedule relative to defect onset.
  bool random_phase = true;
  /// Number of Monte Carlo trials.
  int trials = 10000;
  std::uint64_t seed = 0xb157;
};

struct LifetimeStats {
  int trials = 0;
  int caught = 0;          ///< Detected inside the window.
  int escaped_to_hbd = 0;  ///< Reached hard breakdown undetected.
  int never_observable = 0;
  /// Mean detection latency from first observability [s], over caught
  /// trials.
  double mean_latency = 0.0;

  double catch_rate() const {
    return trials == 0 ? 0.0
                       : static_cast<double>(caught) /
                             static_cast<double>(trials);
  }
};

/// Runs the Monte Carlo: each trial picks a random site (uniform over
/// `sites`) and a random schedule phase, then checks whether any test falls
/// in [onset + t_observable, onset + t_hbd).
LifetimeStats simulate_lifetime(const std::vector<SiteWindow>& sites,
                                const LifetimeOptions& opt);

}  // namespace obd::core

#include "core/characterize.hpp"

#include <cmath>

#include "cells/stdcells.hpp"
#include "spice/dc.hpp"
#include "util/measure.hpp"

namespace obd::core {

GateCharacterizer::GateCharacterizer(const cells::CellTopology& topology,
                                     const cells::Technology& tech,
                                     const CharacterizeOptions& opt)
    : topology_(topology), tech_(tech), opt_(opt) {}

spice::TransientResult GateCharacterizer::trace_params(
    const std::optional<cells::TransistorRef>& fault, const ObdParams& params,
    const cells::TwoVector& transition) const {
  cells::Harness harness(topology_, tech_);
  if (fault.has_value()) {
    ObdInjection inj = inject_obd(harness.netlist(),
                                  harness.dut().transistor_name(*fault));
    inj.set_params(params);
  }
  harness.set_two_vector(transition, opt_.t_switch, opt_.t_slew);

  std::vector<std::string> record = harness.input_node_names();
  record.push_back(harness.output_node_name());
  record.push_back(harness.load_output_node_name());

  spice::TransientOptions topt;
  topt.dt = opt_.dt;
  topt.integrator = opt_.integrator;
  return spice::transient(harness.netlist(), opt_.t_stop, topt, record,
                          {harness.vdd_source_name()});
}

spice::TransientResult GateCharacterizer::trace(
    const std::optional<cells::TransistorRef>& fault, BreakdownStage stage,
    const cells::TwoVector& transition) const {
  const bool pmos = fault.has_value() && fault->pmos;
  return trace_params(fault, stage_params(stage, pmos), transition);
}

DelayMeasurement GateCharacterizer::measure_params(
    const std::optional<cells::TransistorRef>& fault, const ObdParams& params,
    const cells::TwoVector& transition) const {
  DelayMeasurement m;
  const spice::TransientResult res = trace_params(fault, params, transition);
  if (res.status != spice::SolveStatus::kOk) return m;

  const util::Waveform* out = res.trace("out");
  if (out == nullptr) return m;

  m.settled_v = util::settled_value(*out, 0.95 * opt_.t_stop);
  if (const util::Waveform* idd = res.trace("I(Vdd)")) {
    double peak = 0.0;
    for (std::size_t i = 0; i < idd->size(); ++i)
      peak = std::max(peak, std::fabs(idd->value(i)));
    m.peak_supply_current = peak;
  }

  const bool o1 = topology_.output(transition.v1);
  const bool o2 = topology_.output(transition.v2);
  if (o1 == o2) return m;  // No output transition expected: no delay defined.
  const util::Edge out_edge = o2 ? util::Edge::kRising : util::Edge::kFalling;

  util::DelayOptions dopt;
  dopt.vdd = tech_.vdd;

  // Reference: the 50% point of the ideal stimulus edge (the "launch
  // clock"). Referencing the DUT input crossing instead would be distorted
  // by the defect itself: an OBD path on a *held* input drags that input's
  // driver and shifts its crossing even though the gate's transition is
  // unaffected. A tester measures launch-to-capture, so we do too. The
  // fault-free row of any table carries the same constant driver latency,
  // so deltas and ratios are meaningful.
  const double t_ref = opt_.t_switch + 0.5 * opt_.t_slew;

  const auto t_out = util::edge_time(*out, out_edge, t_ref, dopt);
  if (t_out) {
    m.delay = *t_out - t_ref;
  } else {
    m.stuck = true;
    m.stuck_high = m.settled_v > 0.5 * tech_.vdd;
  }
  return m;
}

DelayMeasurement GateCharacterizer::measure(
    const std::optional<cells::TransistorRef>& fault, BreakdownStage stage,
    const cells::TwoVector& transition) const {
  const bool pmos = fault.has_value() && fault->pmos;
  return measure_params(fault, stage_params(stage, pmos), transition);
}

logic::DelayLibrary build_delay_library(
    const cells::Technology& tech, const std::vector<logic::GateType>& types,
    const CharacterizeOptions& opt) {
  logic::DelayLibrary lib;
  for (logic::GateType t : types) {
    const auto topo = logic::gate_topology(t);
    if (!topo.has_value()) continue;
    GateCharacterizer chr(*topo, tech, opt);
    const int n = topo->num_inputs;
    const cells::InputBits all_ones = (1u << n) - 1u;
    // Worst rise and fall over single-input-change transitions.
    double worst_rise = 0.0;
    double worst_fall = 0.0;
    const cells::InputBits limit = 1u << n;
    for (cells::InputBits v1 = 0; v1 < limit; ++v1) {
      for (int i = 0; i < n; ++i) {
        const cells::InputBits v2 = v1 ^ (1u << i);
        const bool o1 = topo->output(v1);
        const bool o2 = topo->output(v2);
        if (o1 == o2) continue;
        const auto m = chr.measure(std::nullopt, BreakdownStage::kFaultFree,
                                   {v1, v2});
        if (!m.delay) continue;
        if (o2) worst_rise = std::max(worst_rise, *m.delay);
        else worst_fall = std::max(worst_fall, *m.delay);
      }
    }
    (void)all_ones;
    if (worst_rise > 0.0 && worst_fall > 0.0)
      lib.per_type[t] = {worst_rise, worst_fall};
  }
  return lib;
}

util::Waveform inverter_vtc_with_obd(const cells::Technology& tech,
                                     bool pmos_defect, const ObdParams& params,
                                     double step) {
  spice::Netlist nl;
  const spice::NodeId vdd = nl.node("vdd");
  const spice::NodeId in = nl.node("in");
  const spice::NodeId out = nl.node("out");
  nl.add_vsource("Vdd", vdd, spice::kGround,
                 spice::SourceWave::make_dc(tech.vdd));
  nl.add_vsource("Vin", in, spice::kGround, spice::SourceWave::make_dc(0.0));
  const cells::CellInstance dut =
      cells::emit_inv(nl, "dut", in, out, vdd, tech);
  ObdInjection inj = inject_obd(
      nl, dut.transistor_name(cells::TransistorRef{pmos_defect, 0}));
  inj.set_params(params);

  const spice::DcSweepResult sweep =
      spice::dc_sweep(nl, "Vin", 0.0, tech.vdd, step, {"out"},
                      spice::SolverOptions{});
  if (sweep.status != spice::SolveStatus::kOk || sweep.traces.traces.empty())
    return util::Waveform("out");
  return sweep.traces.traces.front();
}

}  // namespace obd::core

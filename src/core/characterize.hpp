// Spice-level characterization of a cell under OBD (regenerates Table 1 and
// the Fig. 4/6/7 data).
//
// For each (fault site, breakdown stage, input transition) the characterizer
// builds the Fig. 5 harness, injects the OBD network, runs a transient, and
// measures the 50% propagation delay at the DUT output. A missing output
// transition (while the fault-free circuit does transition) is reported as
// stuck-at behaviour — exactly how Table 1 reports "sa-0"/"sa-1" at the late
// stages.
#pragma once

#include <optional>
#include <vector>

#include "cells/harness.hpp"
#include "core/obd_model.hpp"
#include "logic/timingsim.hpp"
#include "spice/transient.hpp"
#include "util/waveform.hpp"

namespace obd::core {

/// One measured (stage x transition) data point.
struct DelayMeasurement {
  /// 50% input-to-output propagation delay; nullopt when the output never
  /// completed its transition within the simulation window.
  std::optional<double> delay;
  /// True when the fault-free circuit transitions but this one does not:
  /// the defect manifests as stuck-at behaviour under this transition.
  bool stuck = false;
  /// Which stuck value the output held (meaningful when `stuck`).
  bool stuck_high = false;
  /// Settled output voltage at the end of the window (degraded VOL/VOH).
  double settled_v = 0.0;
  /// Peak supply current during the transition window [A] (IDDQ-flavoured
  /// observation; OBD raises it by orders of magnitude).
  double peak_supply_current = 0.0;
};

struct CharacterizeOptions {
  /// Transition launch time within the window.
  double t_switch = 2e-9;
  /// Input slew.
  double t_slew = 50e-12;
  /// Total simulated window.
  double t_stop = 12e-9;
  /// Transient step.
  double dt = 2e-12;
  spice::Integrator integrator = spice::Integrator::kTrapezoidal;
};

/// Characterizes one cell type under OBD.
class GateCharacterizer {
 public:
  GateCharacterizer(const cells::CellTopology& topology,
                    const cells::Technology& tech,
                    const CharacterizeOptions& opt = {});

  /// Measures the DUT delay for `transition`, with an OBD defect of `stage`
  /// injected on `fault` (std::nullopt = fault-free reference run).
  DelayMeasurement measure(const std::optional<cells::TransistorRef>& fault,
                           BreakdownStage stage,
                           const cells::TwoVector& transition) const;

  /// Full transient traces for the same configuration: inputs, DUT output
  /// and loaded output (for figure regeneration).
  spice::TransientResult trace(const std::optional<cells::TransistorRef>& fault,
                               BreakdownStage stage,
                               const cells::TwoVector& transition) const;
  /// Like trace() but with explicit electrical parameters.
  spice::TransientResult trace_params(
      const std::optional<cells::TransistorRef>& fault, const ObdParams& params,
      const cells::TwoVector& transition) const;

  /// Measurement with explicit parameters (progression sweeps between the
  /// tabulated stages).
  DelayMeasurement measure_params(
      const std::optional<cells::TransistorRef>& fault, const ObdParams& params,
      const cells::TwoVector& transition) const;

  const cells::CellTopology& topology() const { return topology_; }
  const cells::Technology& tech() const { return tech_; }
  const CharacterizeOptions& options() const { return opt_; }

 private:
  cells::CellTopology topology_;
  cells::Technology tech_;
  CharacterizeOptions opt_;
};

/// VTC extraction for Fig. 4: DC-sweeps an inverter whose NMOS (or PMOS)
/// carries an OBD defect with explicit parameters; returns the transfer
/// curve out(vin).
util::Waveform inverter_vtc_with_obd(const cells::Technology& tech,
                                     bool pmos_defect, const ObdParams& params,
                                     double step = 0.02);

/// Builds a gate-level delay library from analog characterization: for each
/// requested gate type, measures the fault-free worst-case rise and fall
/// delays in the Fig. 5 harness (gate-only: driver latency subtracted via
/// an inverter reference). This closes the loop from the transistor-level
/// substrate to the event-driven timing simulator, replacing the
/// paper-nominal constants with self-consistent numbers.
logic::DelayLibrary build_delay_library(
    const cells::Technology& tech,
    const std::vector<logic::GateType>& types,
    const CharacterizeOptions& opt = {});

}  // namespace obd::core

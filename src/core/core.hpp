// Umbrella header for the paper's core contribution: the OBD circuit model,
// excitation-condition derivation, spice-level characterization and the
// progression / concurrent-testing analysis.
#pragma once

#include "core/bist.hpp"          // IWYU pragma: export
#include "core/characterize.hpp"  // IWYU pragma: export
#include "core/excitation.hpp"    // IWYU pragma: export
#include "core/iddq.hpp"          // IWYU pragma: export
#include "core/obd_model.hpp"     // IWYU pragma: export
#include "core/progression.hpp"   // IWYU pragma: export
#include "core/wearout.hpp"       // IWYU pragma: export

#include "core/excitation.hpp"

#include <algorithm>
#include <cstdint>
#include <map>

namespace obd::core {
namespace {

/// Output direction required to observe defects of this polarity.
bool output_switch_matches(const CellTopology& cell, bool pmos,
                           const TwoVector& tv) {
  const bool o1 = cell.output(tv.v1);
  const bool o2 = cell.output(tv.v2);
  if (o1 == o2) return false;
  // PMOS defects delay the rising output, NMOS defects the falling output.
  return pmos ? (!o1 && o2) : (o1 && !o2);
}

using Excite = bool (*)(const CellTopology&, const TransistorRef&,
                        const TwoVector&);

std::vector<TwoVector> all_excitations(const CellTopology& cell,
                                       const TransistorRef& t, Excite fn) {
  std::vector<TwoVector> out;
  const InputBits limit = 1u << cell.num_inputs;
  for (InputBits v1 = 0; v1 < limit; ++v1)
    for (InputBits v2 = 0; v2 < limit; ++v2) {
      const TwoVector tv{v1, v2};
      if (fn(cell, t, tv)) out.push_back(tv);
    }
  return out;
}

/// Exact minimum set cover by iterative deepening over distinct coverage
/// masks. Cells have at most a handful of distinct masks, so this is cheap.
std::vector<TwoVector> minimal_test_set(const CellTopology& cell, Excite fn) {
  const auto transistors = cell.transistors();
  // Universe: indices of transistors that are excitable at all.
  std::vector<std::size_t> excitable;
  const InputBits limit = 1u << cell.num_inputs;

  // Coverage mask of each transition; dedupe by mask keeping the first
  // (lexicographically smallest) representative transition.
  std::map<std::uint64_t, TwoVector> by_mask;
  std::uint64_t universe = 0;
  for (InputBits v1 = 0; v1 < limit; ++v1)
    for (InputBits v2 = 0; v2 < limit; ++v2) {
      const TwoVector tv{v1, v2};
      std::uint64_t mask = 0;
      for (std::size_t i = 0; i < transistors.size(); ++i)
        if (fn(cell, transistors[i], tv)) mask |= (1ull << i);
      if (mask == 0) continue;
      universe |= mask;
      by_mask.emplace(mask, tv);  // keeps first-seen representative
    }

  std::vector<std::pair<std::uint64_t, TwoVector>> sets(by_mask.begin(),
                                                        by_mask.end());
  // Drop sets dominated by a superset (strictly smaller coverage).
  std::vector<std::pair<std::uint64_t, TwoVector>> maximal;
  for (const auto& s : sets) {
    bool dominated = false;
    for (const auto& o : sets)
      if (o.first != s.first && (s.first & o.first) == s.first) {
        dominated = true;
        break;
      }
    if (!dominated) maximal.push_back(s);
  }

  // Iterative deepening exact search.
  std::vector<TwoVector> best;
  std::vector<std::size_t> chosen;
  for (std::size_t depth = 1; depth <= maximal.size(); ++depth) {
    std::vector<std::size_t> stack;
    // Recursive lambda via explicit function object.
    struct Search {
      const std::vector<std::pair<std::uint64_t, TwoVector>>& sets;
      std::uint64_t universe;
      std::size_t depth;
      std::vector<std::size_t>* chosen;
      bool found = false;

      void run(std::size_t start, std::uint64_t covered) {
        if (found) return;
        if (covered == universe) {
          found = true;
          return;
        }
        if (chosen->size() == depth) return;
        for (std::size_t i = start; i < sets.size(); ++i) {
          if ((sets[i].first & ~covered) == 0) continue;  // nothing new
          chosen->push_back(i);
          run(i + 1, covered | sets[i].first);
          if (found) return;
          chosen->pop_back();
        }
      }
    };
    chosen.clear();
    Search s{maximal, universe, depth, &chosen};
    s.run(0, 0);
    if (s.found) {
      for (std::size_t i : chosen) best.push_back(maximal[i].second);
      break;
    }
  }
  return best;
}

}  // namespace

bool excites_obd(const CellTopology& cell, const TransistorRef& t,
                 const TwoVector& tv) {
  if (!output_switch_matches(cell, t.pmos, tv)) return false;
  return cell.transistor_essential(t, tv.v2);
}

bool excites_em(const CellTopology& cell, const TransistorRef& t,
                const TwoVector& tv) {
  if (!output_switch_matches(cell, t.pmos, tv)) return false;
  return cell.transistor_conducting(t, tv.v2);
}

std::vector<TwoVector> obd_excitations(const CellTopology& cell,
                                       const TransistorRef& t) {
  return all_excitations(cell, t, &excites_obd);
}

std::vector<TwoVector> em_excitations(const CellTopology& cell,
                                      const TransistorRef& t) {
  return all_excitations(cell, t, &excites_em);
}

std::vector<TransistorRef> unexcitable_obd(const CellTopology& cell) {
  std::vector<TransistorRef> out;
  for (const auto& t : cell.transistors())
    if (obd_excitations(cell, t).empty()) out.push_back(t);
  return out;
}

std::vector<TwoVector> minimal_obd_test_set(const CellTopology& cell) {
  return minimal_test_set(cell, &excites_obd);
}

std::vector<TwoVector> minimal_em_test_set(const CellTopology& cell) {
  return minimal_test_set(cell, &excites_em);
}

}  // namespace obd::core

// Derivation of OBD excitation conditions from cell topology (Secs. 4.1, 5).
//
// A two-vector transition (V1 -> V2) at a cell's inputs excites the OBD
// defect of transistor t iff:
//   1. the cell output switches: out(V1) != out(V2);
//   2. the switching is driven by t's network (PDN for NMOS => falling
//      output; PUN for PMOS => rising output);
//   3. under V2, t is *essential*: it lies on every conducting path of its
//      network, i.e. no parallel device bypasses the current-starved /
//      current-injected defective transistor.
//
// For a NAND this reproduces the paper's conditions exactly: NMOS defects
// are excited by any falling-output transition (the series stack makes both
// NMOS essential), PMOS defects only by the transition that switches their
// own input to 0 while all other inputs stay 1.
//
// The weaker intra-gate EM condition replaces (3) with "t conducts" (it
// carries at least a share of the switching current); Sec. 5 of the paper
// compares the two, and they coincide for NAND/NOR but split for complex
// gates.
#pragma once

#include <vector>

#include "cells/harness.hpp"
#include "cells/topology.hpp"

namespace obd::core {

using cells::CellTopology;
using cells::InputBits;
using cells::TransistorRef;
using cells::TwoVector;

/// Does (v1 -> v2) excite the OBD defect of transistor `t`?
bool excites_obd(const CellTopology& cell, const TransistorRef& t,
                 const TwoVector& tv);

/// Does (v1 -> v2) excite an intra-gate EM (electromigration) defect of
/// transistor `t`? (Weaker: the transistor only needs to carry current.)
bool excites_em(const CellTopology& cell, const TransistorRef& t,
                const TwoVector& tv);

/// All transitions (over the full (2^n)^2 ordered pairs) exciting the OBD
/// defect of `t`.
std::vector<TwoVector> obd_excitations(const CellTopology& cell,
                                       const TransistorRef& t);
/// Same for the EM condition.
std::vector<TwoVector> em_excitations(const CellTopology& cell,
                                      const TransistorRef& t);

/// Transistors with no exciting transition at all (un-excitable inside the
/// cell; none exist for complementary cells but the API reports them).
std::vector<TransistorRef> unexcitable_obd(const CellTopology& cell);

/// A minimum-cardinality set of transitions exciting every excitable OBD
/// defect of the cell. Exact via branch-and-bound set cover (cells are
/// small); for a NAND2 this returns 3 transitions matching the paper's
/// "necessary and sufficient" set sizes.
std::vector<TwoVector> minimal_obd_test_set(const CellTopology& cell);
/// Same for the EM condition.
std::vector<TwoVector> minimal_em_test_set(const CellTopology& cell);

}  // namespace obd::core

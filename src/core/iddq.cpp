#include "core/iddq.hpp"

#include <cmath>

#include "spice/dc.hpp"

namespace obd::core {

IddqMeasurement measure_iddq(const cells::CellTopology& topology,
                             const cells::Technology& tech,
                             const std::optional<cells::TransistorRef>& fault,
                             const ObdParams& params,
                             cells::InputBits vector) {
  cells::Harness harness(topology, tech);
  if (fault.has_value()) {
    ObdInjection inj = inject_obd(harness.netlist(),
                                  harness.dut().transistor_name(*fault));
    inj.set_params(params);
  }
  // Static vector: apply as a degenerate "two-vector" with v1 == v2.
  harness.set_two_vector({vector, vector}, /*t_switch=*/1e-9);

  IddqMeasurement m;
  const spice::DcResult op =
      spice::dc_operating_point(harness.netlist(), spice::SolverOptions{});
  m.status = op.status;
  if (op.status != spice::SolveStatus::kOk) return m;
  const spice::VoltageSource* vdd =
      harness.netlist().find_vsource(harness.vdd_source_name());
  if (vdd == nullptr) return m;
  // Branch current of the supply source = total quiescent draw.
  const std::size_t idx = harness.netlist().num_nodes() - 1 +
                          static_cast<std::size_t>(vdd->branch_base());
  m.iddq = std::fabs(op.x[idx]);
  return m;
}

bool iddq_excites(const cells::TransistorRef& t, cells::InputBits vector) {
  const bool high = (vector >> t.input) & 1u;
  // NMOS defect leaks with the gate high; PMOS defect with the gate low.
  return t.pmos ? !high : high;
}

std::vector<cells::InputBits> minimal_iddq_vectors(
    const cells::CellTopology& topology) {
  // All-ones covers every NMOS defect, all-zeros every PMOS defect. For
  // cells where some input is irrelevant this is still minimal (size 2) as
  // long as both polarities exist, which holds for all complementary cells.
  const cells::InputBits all_ones =
      (1u << topology.num_inputs) - 1u;
  return {all_ones, 0u};
}

std::optional<BreakdownStage> first_iddq_detectable_stage(
    const cells::CellTopology& topology, const cells::Technology& tech,
    const cells::TransistorRef& fault, cells::InputBits vector,
    double threshold) {
  if (!iddq_excites(fault, vector)) return std::nullopt;
  // Reference: fault-free quiescent current on the same vector.
  const IddqMeasurement ref =
      measure_iddq(topology, tech, std::nullopt, ObdParams{}, vector);
  for (BreakdownStage s : kAllStages) {
    if (s == BreakdownStage::kFaultFree) continue;
    const IddqMeasurement m = measure_iddq(
        topology, tech, fault, stage_params(s, fault.pmos), vector);
    if (m.status != spice::SolveStatus::kOk) continue;
    if (m.iddq - ref.iddq > threshold) return s;
  }
  return std::nullopt;
}

}  // namespace obd::core

// IDDQ (quiescent supply current) detection of OBD defects.
//
// Related-work context (paper Sec. 2): Segura et al. proposed IDDQ test
// patterns for *hard* gate-oxide shorts. The diode-resistor model lets us
// quantify how early in the progression a current-based detector fires
// compared with a delay-based one: the breakdown path pulls a static
// mA-scale current whenever the defective transistor's gate is driven to
// the leaking polarity — no transition required, a single quiescent vector
// suffices.
#pragma once

#include <optional>
#include <vector>

#include "cells/harness.hpp"
#include "core/obd_model.hpp"

namespace obd::core {

/// Quiescent supply current of the harness under a static input vector.
struct IddqMeasurement {
  /// Static supply current [A] after settling.
  double iddq = 0.0;
  spice::SolveStatus status = spice::SolveStatus::kNoConvergence;
};

/// Measures IDDQ of the Fig. 5 harness with an optional OBD defect.
IddqMeasurement measure_iddq(const cells::CellTopology& topology,
                             const cells::Technology& tech,
                             const std::optional<cells::TransistorRef>& fault,
                             const ObdParams& params, cells::InputBits vector);

/// A vector excites the IDDQ signature of a defect when the defective
/// transistor's gate is driven to the polarity that forward-biases the
/// breakdown path: logic 1 for an NMOS defect (gate high leaks into the
/// p-bulk spot), logic 0 for a PMOS defect (source at VDD leaks into the
/// spot and out through the driven-low gate).
bool iddq_excites(const cells::TransistorRef& t, cells::InputBits vector);

/// Smallest set of static vectors exposing the IDDQ signature of every
/// transistor of the cell (two vectors suffice for any cell: all-ones and
/// all-zeros; some cells need only those).
std::vector<cells::InputBits> minimal_iddq_vectors(
    const cells::CellTopology& topology);

/// IDDQ detection threshold analysis: the earliest stage (by index into
/// kAllStages) whose quiescent current exceeds `threshold` amperes; nullopt
/// when none does.
std::optional<BreakdownStage> first_iddq_detectable_stage(
    const cells::CellTopology& topology, const cells::Technology& tech,
    const cells::TransistorRef& fault, cells::InputBits vector,
    double threshold);

}  // namespace obd::core

#include "core/obd_model.hpp"

namespace obd::core {

const char* to_string(BreakdownStage s) {
  switch (s) {
    case BreakdownStage::kFaultFree: return "FaultFree";
    case BreakdownStage::kMbd1: return "MBD1";
    case BreakdownStage::kMbd2: return "MBD2";
    case BreakdownStage::kMbd3: return "MBD3";
    case BreakdownStage::kHbd: return "HBD";
  }
  return "?";
}

ObdParams paper_nmos_stage_params(BreakdownStage s) {
  // Paper Table 1, NMOS columns (Isat [A], R [ohm]).
  switch (s) {
    case BreakdownStage::kFaultFree: return {1e-30, 10e3};
    case BreakdownStage::kMbd1: return {2e-28, 500.0};
    case BreakdownStage::kMbd2: return {1e-27, 100.0};
    case BreakdownStage::kMbd3: return {5e-27, 20.0};
    case BreakdownStage::kHbd: return {2e-24, 0.05};
  }
  return {};
}

ObdParams paper_pmos_stage_params(BreakdownStage s) {
  // Paper Table 1, PMOS columns. HBD is "N/A" in the paper (the PMOS defect
  // already produces stuck-at behaviour at MBD3); continue the trend.
  switch (s) {
    case BreakdownStage::kFaultFree: return {1e-30, 10e3};
    case BreakdownStage::kMbd1: return {1e-29, 1000.0};
    case BreakdownStage::kMbd2: return {1.1e-29, 900.0};
    case BreakdownStage::kMbd3: return {1.2e-29, 830.0};
    case BreakdownStage::kHbd: return {1.5e-29, 500.0};
  }
  return {};
}

ObdParams nmos_stage_params(BreakdownStage s) {
  // Calibrated for this substrate (see header). Early stages = Table 1; the
  // HBD barrier is lowered so the gate node collapses below threshold and
  // the output genuinely sticks, as in the paper.
  switch (s) {
    case BreakdownStage::kFaultFree: return {1e-30, 10e3};
    case BreakdownStage::kMbd1: return {2e-28, 500.0};
    case BreakdownStage::kMbd2: return {1e-27, 100.0};
    // R = 60 (not the paper's 20): at 20 ohm the injection into the stack
    // node already overwhelms the bottom transistor in our substrate and
    // MBD3 would stick, whereas the paper still reports ~2x delays there.
    case BreakdownStage::kMbd3: return {5e-27, 60.0};
    case BreakdownStage::kHbd: return {2e-13, 0.05};
  }
  return {};
}

ObdParams pmos_stage_params(BreakdownStage s) {
  // Calibrated: the PMOS progression in Table 1 rides a very steep cliff
  // (R shrinking 1000 -> 830 ohm doubles the delay and then sticks). In our
  // substrate the same cliff is reached by lowering the breakdown-path
  // barrier (raising Isat) as the spot grows.
  switch (s) {
    case BreakdownStage::kFaultFree: return {1e-30, 10e3};
    case BreakdownStage::kMbd1: return {1e-29, 1000.0};
    case BreakdownStage::kMbd2: return {1e-20, 900.0};
    case BreakdownStage::kMbd3: return {1e-17, 830.0};
    case BreakdownStage::kHbd: return {1e-13, 50.0};
  }
  return {};
}

ObdParams stage_params(BreakdownStage s, bool pmos) {
  return pmos ? pmos_stage_params(s) : nmos_stage_params(s);
}

void ObdInjection::set_params(const ObdParams& p) {
  if (!valid()) return;
  r_break_->set_ohms(p.r);
  spice::DiodeParams dp = d_source_->params();
  dp.isat = p.isat;
  d_source_->set_params(dp);
  d_drain_->set_params(dp);
}

void ObdInjection::set_stage(BreakdownStage s) {
  set_params(stage_params(s, pmos_));
}

ObdInjection inject_obd(spice::Netlist& nl, const std::string& mosfet_name) {
  spice::Mosfet* m = nl.find_mosfet(mosfet_name);
  if (m == nullptr) return {};
  const bool pmos = m->params().pmos;

  const spice::NodeId bx = nl.node(mosfet_name + ".obd.bx");
  const ObdParams init = stage_params(BreakdownStage::kFaultFree, pmos);

  spice::Resistor* rb =
      nl.add_resistor(mosfet_name + ".obd.rb", m->gate(), bx, init.r);
  spice::DiodeParams dp;
  dp.isat = init.isat;
  spice::Diode* ds = nullptr;
  spice::Diode* dd = nullptr;
  if (pmos) {
    // p+ diffusions into n-bulk spot: anodes at source/drain.
    ds = nl.add_diode(mosfet_name + ".obd.ds", m->source(), bx, dp);
    dd = nl.add_diode(mosfet_name + ".obd.dd", m->drain(), bx, dp);
  } else {
    // Spot (p bulk) into n+ diffusions: anode at the spot.
    ds = nl.add_diode(mosfet_name + ".obd.ds", bx, m->source(), dp);
    dd = nl.add_diode(mosfet_name + ".obd.dd", bx, m->drain(), dp);
  }
  spice::Resistor* rs = nl.add_resistor(mosfet_name + ".obd.rs", bx,
                                        m->bulk(), kSubstrateResistance);
  return ObdInjection(rb, ds, dd, rs, pmos);
}

}  // namespace obd::core

// The paper's circuit-level OBD model (Sec. 3.2, Fig. 3b) and its
// progression stages (Table 1).
//
// Oxide breakdown creates a conductive spot between the gate and the bulk
// underneath it. At circuit level this is modeled as:
//
//          gate --- R_break --- bx --- D_s --- source
//                               |  \-- D_d --- drain
//                               R_sub
//                               |
//                              bulk
//
// where bx is the breakdown spot, D_s / D_d are the pn junctions from the
// spot to the source/drain diffusions, and R_sub is the (large) lateral
// substrate resistance. Progression = diode saturation current grows while
// R_break shrinks (exponential in time between soft and hard breakdown).
//
// Diode orientation follows junction polarity: for an NMOS the diffusions
// are n+ in a p bulk, so current flows from the spot (p) into the
// diffusions (n): anode at bx. For a PMOS (p+ diffusions in n bulk) the
// diodes point from the diffusions into the spot.
#pragma once

#include <optional>
#include <string>

#include "cells/topology.hpp"
#include "spice/netlist.hpp"

namespace obd::core {

/// Progression stage of the breakdown process.
enum class BreakdownStage {
  kFaultFree,  ///< Pristine oxide (Table 1 "Fault Free").
  kMbd1,       ///< Early medium breakdown.
  kMbd2,
  kMbd3,
  kHbd,  ///< Hard breakdown (gate oxide short).
};

inline constexpr BreakdownStage kAllStages[] = {
    BreakdownStage::kFaultFree, BreakdownStage::kMbd1, BreakdownStage::kMbd2,
    BreakdownStage::kMbd3, BreakdownStage::kHbd};

const char* to_string(BreakdownStage s);

/// Electrical parameters of one stage: diode saturation current and
/// breakdown-path resistance.
struct ObdParams {
  double isat = 1e-30;  ///< Diode saturation current [A].
  double r = 10e3;      ///< Gate-to-spot breakdown resistance [ohm].
};

/// The paper's literal Table 1 parameters (NMOS / PMOS columns). Kept for
/// reference and for experiments that sweep the published values.
ObdParams paper_nmos_stage_params(BreakdownStage s);
ObdParams paper_pmos_stage_params(BreakdownStage s);

/// Calibrated stage parameters used by default in this repo.
///
/// Rationale: the published (Isat, R) values were fitted to the authors'
/// HSPICE device models. In our level-1/Shockley substrate the ideal-diode
/// forward drop at milliamp currents stays ~1.2-1.5 V for Isat ~ 1e-29 ..
/// 1e-24, which keeps the defective transistor's gate above threshold and
/// therefore can never reproduce the published stuck-at end states. For the
/// late stages we therefore raise Isat (lowering the effective barrier of
/// the breakdown path). That follows the paper's own physical picture: hard
/// breakdown is a *melted, permanently conductive* path (Fig. 1), i.e. an
/// ohmic short rather than a pn junction. Early-stage values match Table 1.
/// The Table-1 bench prints the resulting delays next to the paper's.
ObdParams nmos_stage_params(BreakdownStage s);
ObdParams pmos_stage_params(BreakdownStage s);
/// Dispatch on polarity (calibrated values).
ObdParams stage_params(BreakdownStage s, bool pmos);

/// Handle to an injected OBD network; allows retuning the stage in place so
/// one netlist can be swept over the whole progression.
class ObdInjection {
 public:
  ObdInjection() = default;
  ObdInjection(spice::Resistor* r_break, spice::Diode* d_source,
               spice::Diode* d_drain, spice::Resistor* r_sub, bool pmos)
      : r_break_(r_break),
        d_source_(d_source),
        d_drain_(d_drain),
        r_sub_(r_sub),
        pmos_(pmos) {}

  bool valid() const { return r_break_ != nullptr; }
  bool pmos() const { return pmos_; }

  /// Applies explicit electrical parameters.
  void set_params(const ObdParams& p);
  /// Applies the Table-1 parameters of a stage for this polarity.
  void set_stage(BreakdownStage s);

 private:
  spice::Resistor* r_break_ = nullptr;
  spice::Diode* d_source_ = nullptr;
  spice::Diode* d_drain_ = nullptr;
  spice::Resistor* r_sub_ = nullptr;
  bool pmos_ = false;
};

/// Injects the OBD network onto the named MOSFET. The netlist gains four
/// devices named "<mosfet>.obd.{rb,ds,dd,rs}" and one node "<mosfet>.obd.bx".
/// Initial stage: fault-free. Returns an invalid handle when the MOSFET
/// does not exist.
ObdInjection inject_obd(spice::Netlist& nl, const std::string& mosfet_name);

/// Lateral substrate resistance (fixed; "far away" per the paper).
inline constexpr double kSubstrateResistance = 500e3;

}  // namespace obd::core

#include "core/progression.hpp"

#include <algorithm>
#include <cmath>

namespace obd::core {

ProgressionModel::ProgressionModel(double isat_sbd, double isat_hbd,
                                   double t_sbd_to_hbd)
    : isat_sbd_(isat_sbd),
      isat_hbd_(isat_hbd),
      t_total_(t_sbd_to_hbd),
      k_(std::log(isat_hbd / isat_sbd) / t_sbd_to_hbd) {}

ProgressionModel ProgressionModel::default_for(bool pmos) {
  const ObdParams sbd = stage_params(BreakdownStage::kMbd1, pmos);
  const ObdParams hbd = stage_params(BreakdownStage::kHbd, pmos);
  // Linder et al.: ~27 hours between first SBD and HBD (15 A PFET oxide).
  return ProgressionModel(sbd.isat, hbd.isat, 27.0 * 3600.0);
}

double ProgressionModel::isat_at(double t) const {
  if (t <= 0.0) return isat_sbd_;
  if (t >= t_total_) return isat_hbd_;
  return isat_sbd_ * std::exp(k_ * t);
}

double ProgressionModel::time_at(double isat) const {
  if (isat <= isat_sbd_) return 0.0;
  if (isat >= isat_hbd_) return t_total_;
  return std::log(isat / isat_sbd_) / k_;
}

double ProgressionModel::r_at(double t, double r_sbd, double r_hbd) const {
  const double frac = std::clamp(t / t_total_, 0.0, 1.0);
  // Geometric interpolation: resistance shrinks by a constant factor per
  // unit time, mirroring the exponential current growth.
  return r_sbd * std::pow(r_hbd / r_sbd, frac);
}

ObdParams ProgressionModel::params_at(double t, const ObdParams& sbd,
                                      const ObdParams& hbd) const {
  ObdParams p;
  p.isat = std::clamp(isat_at(t), std::min(sbd.isat, hbd.isat),
                      std::max(sbd.isat, hbd.isat));
  p.r = r_at(t, sbd.r, hbd.r);
  return p;
}

DetectionWindow detection_window(std::vector<DelayVsIsat> curve, double slack,
                                 const ProgressionModel& model) {
  DetectionWindow w;
  w.t_hbd = model.t_sbd_to_hbd();
  if (curve.empty()) return w;

  std::sort(curve.begin(), curve.end(),
            [](const DelayVsIsat& a, const DelayVsIsat& b) {
              return a.isat < b.isat;
            });

  // Walk the curve in increasing leakage; find the first point (or linear
  // log-isat interpolation) where the added delay crosses the slack.
  auto delay_of = [](const DelayVsIsat& p) {
    return p.extra_delay.value_or(std::numeric_limits<double>::infinity());
  };
  for (std::size_t i = 0; i < curve.size(); ++i) {
    const double d = delay_of(curve[i]);
    if (d <= slack) continue;
    double isat_cross = curve[i].isat;
    if (i > 0) {
      const double d0 = delay_of(curve[i - 1]);
      if (std::isfinite(d) && std::isfinite(d0) && d > d0) {
        const double frac = (slack - d0) / (d - d0);
        const double l0 = std::log(curve[i - 1].isat);
        const double l1 = std::log(curve[i].isat);
        isat_cross = std::exp(l0 + frac * (l1 - l0));
      }
    }
    w.t_detectable = model.time_at(isat_cross);
    return w;
  }
  return w;  // Never exceeds slack: undetectable before HBD.
}

double required_test_interval(const DetectionWindow& w, double safety) {
  if (!w.detectable()) return 0.0;
  return w.width() * safety;
}

}  // namespace obd::core

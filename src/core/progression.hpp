// OBD progression over operating time and the concurrent-testing window of
// opportunity (Secs. 3.3, 4.2).
//
// Experimental data (Linder et al., cited by the paper) show the leakage
// through a breakdown path grows *exponentially* with time between the
// first soft breakdown (SBD) and the final hard breakdown (HBD), spanning
// roughly 27 hours for a 15 A-thick PFET oxide. We model:
//
//     Isat(t) = Isat_sbd * exp(k t),   k = ln(Isat_hbd / Isat_sbd) / T
//
// and, dually, the breakdown resistance shrinking geometrically. Combining
// this clock with the characterized delay-vs-Isat curve yields the paper's
// "window of opportunity": the span between the defect first becoming
// observable (its added delay exceeds the detector's timing slack) and the
// dangerous HBD stage. A concurrent test/repair scheme must run at least
// once inside that window.
#pragma once

#include <optional>
#include <vector>

#include "core/obd_model.hpp"

namespace obd::core {

/// Exponential leakage-growth clock between SBD and HBD.
class ProgressionModel {
 public:
  /// `t_sbd_to_hbd`: wall-clock seconds between onset and hard breakdown.
  ProgressionModel(double isat_sbd, double isat_hbd, double t_sbd_to_hbd);

  /// Default model for the polarity: SBD at the Table-1 MBD1 saturation
  /// current, HBD at the Table-1 HBD value (NMOS) or the extrapolated value
  /// (PMOS), 27 hours end to end (Linder et al.).
  static ProgressionModel default_for(bool pmos);

  double growth_rate() const { return k_; }
  double t_sbd_to_hbd() const { return t_total_; }

  /// Saturation current after `t` seconds of progression (clamped to the
  /// HBD value beyond the end).
  double isat_at(double t) const;
  /// Inverse: time at which the leakage reaches `isat` (clamped to
  /// [0, t_sbd_to_hbd]).
  double time_at(double isat) const;
  /// Breakdown resistance after `t` seconds: geometric interpolation
  /// between the SBD and HBD Table-1 resistances.
  double r_at(double t, double r_sbd, double r_hbd) const;
  /// Full electrical parameters at time t.
  ObdParams params_at(double t, const ObdParams& sbd,
                      const ObdParams& hbd) const;

 private:
  double isat_sbd_;
  double isat_hbd_;
  double t_total_;
  double k_;
};

/// One point of a delay-vs-leakage characterization.
struct DelayVsIsat {
  double isat = 0.0;
  /// Added delay relative to fault free [s]; nullopt when the output was
  /// stuck (treated as infinite delay).
  std::optional<double> extra_delay;
};

/// The concurrent-testing window for one defect site.
struct DetectionWindow {
  /// Earliest progression time at which the added delay exceeds the
  /// detection slack (nullopt: never detectable before HBD).
  std::optional<double> t_detectable;
  /// Time of hard breakdown (end of the safe window).
  double t_hbd = 0.0;

  bool detectable() const { return t_detectable.has_value(); }
  /// Width of the usable window [s]; 0 when not detectable.
  double width() const {
    return detectable() ? t_hbd - *t_detectable : 0.0;
  }
};

/// Computes the window of opportunity. `curve` maps leakage to added delay
/// (points need not be sorted; interpolation is linear in log(isat)).
/// `slack` is the timing slack of the detection mechanism: the defect is
/// observable once extra_delay > slack. Stuck points count as observable.
DetectionWindow detection_window(std::vector<DelayVsIsat> curve, double slack,
                                 const ProgressionModel& model);

/// Maximum concurrent-test period that still guarantees at least one test
/// inside the window, derated by `safety` (0 < safety <= 1).
/// 0 when the window is empty.
double required_test_interval(const DetectionWindow& w, double safety = 0.5);

}  // namespace obd::core

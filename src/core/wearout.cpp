#include "core/wearout.hpp"

#include <cmath>

namespace obd::core {

double Weibull::cdf(double t) const {
  if (t <= 0.0) return 0.0;
  return 1.0 - std::exp(-std::pow(t / scale, shape));
}

double Weibull::sample(util::Prng& prng) const {
  // Inverse CDF: t = eta * (-ln(1-u))^(1/beta).
  const double u = std::min(prng.next_double(), 1.0 - 1e-15);
  return scale * std::pow(-std::log(1.0 - u), 1.0 / shape);
}

ChipLifetimeStats simulate_chip_population(
    const std::vector<SiteWindow>& site_windows, const Weibull& onset,
    const ChipLifetimeOptions& opt) {
  ChipLifetimeStats stats;
  if (site_windows.empty() || opt.chips <= 0) return stats;
  util::Prng prng(opt.seed);
  stats.chips = opt.chips;
  long total_defects = 0;

  for (int chip = 0; chip < opt.chips; ++chip) {
    const double phase = prng.next_double(0.0, opt.test_period);
    bool any_defect = false;
    bool escaped = false;
    for (int site = 0; site < opt.sites_per_chip; ++site) {
      const double t_onset = onset.sample(prng);
      if (t_onset >= opt.mission_time) continue;
      any_defect = true;
      ++total_defects;
      const SiteWindow& w = site_windows[prng.next_below(site_windows.size())];
      const double t_open = t_onset + w.t_observable;
      const double t_close = std::min(t_onset + w.t_hbd, opt.mission_time);
      // HBD after mission end is not an in-field escape.
      if (t_onset + w.t_hbd > opt.mission_time) {
        // Window truncated by mission end: catching is nice but an escape
        // cannot happen in the field.
        continue;
      }
      if (t_open >= t_close) {
        escaped = true;  // Never observable before HBD.
        continue;
      }
      // First test at or after t_open: tests at phase + k*period.
      const double k =
          std::ceil((t_open - phase) / opt.test_period);
      const double t_test = phase + std::max(0.0, k) * opt.test_period;
      if (t_test >= t_close) escaped = true;
    }
    if (any_defect) ++stats.chips_with_defects;
    if (escaped) {
      ++stats.chips_escaped;
    } else if (any_defect) {
      ++stats.chips_all_caught;
    }
  }
  stats.mean_defects =
      static_cast<double>(total_defects) / static_cast<double>(opt.chips);
  return stats;
}

}  // namespace obd::core

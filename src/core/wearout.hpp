// Chip-level wear-out population model.
//
// Time-dependent dielectric breakdown (TDDB) statistics — cited by the
// paper via Boyko/Gerlach and Oussalah/Nebel — are classically Weibull
// distributed. Combining a Weibull time-to-first-SBD per transistor with
// the per-site detection windows (core/bist.hpp) lifts the single-defect
// analysis to a chip: given N vulnerable sites, a mission time, and a
// concurrent test period, what fraction of chips suffer an *undetected*
// hard breakdown?
#pragma once

#include <vector>

#include "core/bist.hpp"

namespace obd::core {

/// Two-parameter Weibull distribution for time-to-SBD.
struct Weibull {
  double shape = 2.0;       ///< beta; > 1 means wear-out (increasing hazard).
  double scale = 1e8;       ///< eta [s]; ~3 years characteristic life.

  double cdf(double t) const;
  /// Inverse-CDF sampling.
  double sample(util::Prng& prng) const;
};

struct ChipLifetimeOptions {
  /// Vulnerable transistor sites per chip.
  int sites_per_chip = 1000;
  /// Mission time [s].
  double mission_time = 10.0 * 365.25 * 86400.0;
  /// Concurrent test period [s].
  double test_period = 24.0 * 3600.0;
  int chips = 2000;
  std::uint64_t seed = 0xc41f;
};

struct ChipLifetimeStats {
  int chips = 0;
  /// Chips with at least one SBD onset inside the mission.
  int chips_with_defects = 0;
  /// Chips where every onset defect was caught inside its window.
  int chips_all_caught = 0;
  /// Chips with at least one undetected hard breakdown (the paper's
  /// catastrophic case: Fig. 2 damage to upstream logic / supply).
  int chips_escaped = 0;
  /// Average defects per chip over the mission.
  double mean_defects = 0.0;

  double escape_rate() const {
    return chips == 0 ? 0.0
                      : static_cast<double>(chips_escaped) /
                            static_cast<double>(chips);
  }
};

/// Monte Carlo over chips. Each site draws an independent Weibull onset;
/// sites that break down progress through a window drawn uniformly from
/// `site_windows` (the characterized per-site detection windows); tests
/// fire at a fixed period with one uniform random phase per chip.
ChipLifetimeStats simulate_chip_population(
    const std::vector<SiteWindow>& site_windows, const Weibull& onset,
    const ChipLifetimeOptions& opt);

}  // namespace obd::core

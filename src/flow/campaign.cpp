#include "flow/campaign.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>

#include "flow/campaign_detail.hpp"
#include "obs/trace.hpp"
#include "util/prng.hpp"
#include "util/table.hpp"

namespace obd::flow {
namespace {

using namespace obd::atpg;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int b = 0; b < 8; ++b) {
    h ^= (v >> (8 * b)) & 0xff;
    h *= 0x100000001b3ull;
  }
  return h;
}

/// Campaign-level metric ids (the scheduler's engine metrics are merged in
/// separately via FaultSimScheduler::merged_metrics).
struct FlowMetricIds {
  obs::MetricId podem_found;
  obs::MetricId podem_untestable;
  obs::MetricId podem_aborted;
  obs::MetricId sat_conflicts;
  obs::MetricId sat_decisions;
  obs::MetricId sat_restarts;
  obs::MetricId sat_conflicts_per_fault;
  obs::MetricId sat_inc_pairs;
  obs::MetricId sat_inc_cone_encodes;
  obs::MetricId sat_inc_cone_hits;
  obs::MetricId sat_inc_refutes;
  obs::MetricId sat_inc_fresh;
  obs::MetricId sat_inc_vars_shared;
  obs::MetricId sat_inc_clauses_kept;
  obs::MetricId seeded_tests;
  static const FlowMetricIds& get() {
    static const FlowMetricIds ids = [] {
      FlowMetricIds m;
      m.podem_found = obs::counter("atpg.podem_found");
      m.podem_untestable = obs::counter("atpg.podem_untestable");
      m.podem_aborted = obs::counter("atpg.podem_aborted");
      m.sat_conflicts = obs::counter("sat.conflicts");
      m.sat_decisions = obs::counter("sat.decisions");
      m.sat_restarts = obs::counter("sat.restarts");
      m.sat_conflicts_per_fault = obs::histogram("sat.conflicts_per_fault");
      m.sat_inc_pairs = obs::counter("sat.incremental_pairs");
      m.sat_inc_cone_encodes = obs::counter("sat.cone_encodes");
      m.sat_inc_cone_hits = obs::counter("sat.cone_hits");
      m.sat_inc_refutes = obs::counter("sat.incremental_refutes");
      m.sat_inc_fresh = obs::counter("sat.fresh_fallbacks");
      m.sat_inc_vars_shared = obs::counter("sat.vars_shared");
      m.sat_inc_clauses_kept = obs::counter("sat.clauses_kept");
      m.seeded_tests = obs::counter("atpg.seeded_tests");
      return m;
    }();
    return ids;
  }
};

/// Materializes a representative subset; empty subset = the full list.
template <typename Fault>
std::vector<Fault> select_reps(const std::vector<Fault>& reps,
                               const detail::RepSubset& subset) {
  if (subset.empty()) return reps;
  std::vector<Fault> out;
  out.reserve(subset.size());
  for (const std::uint32_t i : subset) out.push_back(reps[i]);
  return out;
}

/// Launch-on-capture scan campaign (OBD model): the two-frame scan ATPG
/// generates machine-consistent (state, PI) tests, whose scan-view images
/// then feed the same matrix/compaction tail as the enhanced path. The
/// gross-delay semantics of matrix_obd on the scan view match
/// verify_scan_obd_test exactly because the LOC state coupling is already
/// baked into each test's frame-2 state.
void drive_loc_scan(const logic::SequentialCircuit& seq,
                    const CampaignOptions& opt, CampaignReport& r) {
  const auto t_total = Clock::now();
  const logic::SequentialCircuit prim = logic::decompose_composites(seq);
  const logic::Circuit view = prim.scan_view();
  detail::fill_structure(view, r);
  const std::string diag = prim.validate();
  if (!diag.empty()) {
    r.error = diag;
    return;
  }

  obs::Span collapse_span("collapse");
  const auto t0 = Clock::now();
  auto faults = enumerate_obd_faults(prim.core());
  r.faults_total = faults.size();
  const CollapsedFaults collapsed = collapse_obd_faults(prim.core(), faults);
  const std::vector<ObdFaultSite>& reps = collapsed.representatives;
  r.faults_collapsed = reps.size();
  r.time.collapse_s = seconds_since(t0);
  collapse_span.close();
  if (reps.empty()) {
    r.coverage = 1.0;
    r.provable_coverage = 1.0;
    r.time.total_s = seconds_since(t_total);
    return;
  }

  PodemOptions popt;
  popt.max_backtracks = opt.max_backtracks;
  popt.time_budget_s = opt.podem_time_budget_s;
  popt.sim = opt.sim;
  popt.random_phase = opt.random_patterns;
  popt.random_phase_seed = opt.seed;

  const auto t1 = Clock::now();
  const ScanCampaign sc = run_scan_obd_atpg(prim, reps, opt.scan_style, popt);
  r.tests_random = sc.random_tests;
  r.tests_deterministic = sc.found - sc.random_found;
  r.untestable = sc.untestable;
  r.aborted = sc.aborted;
  r.fault_block_evals = sc.fault_block_evals;
  r.time.random_s = sc.random_seconds;
  r.time.atpg_s = seconds_since(t1) - sc.random_seconds;

  // Matrix + compaction over the scan-view images of the LOC tests.
  std::vector<TwoVectorTest> vectors;
  vectors.reserve(sc.tests.size());
  for (const ScanObdTest& t : sc.tests)
    vectors.push_back(scan_view_vectors(prim, t));
  FaultSimScheduler sched(view, opt.sim);
  detail::matrix_and_compact(opt, vectors.size(),
                             [&] { return sched.matrix_obd(vectors, reps); },
                             r);
  detail::fill_sim_stats(sched, r);
  r.metrics = obs::snapshot(sched.merged_metrics());
  r.coverage =
      static_cast<double>(r.detected) / static_cast<double>(reps.size());
  const std::size_t provable =
      reps.size() - static_cast<std::size_t>(r.untestable);
  r.provable_coverage =
      provable == 0 ? 1.0
                    : static_cast<double>(r.detected) /
                          static_cast<double>(provable);
  r.time.total_s = seconds_since(t_total);
}

/// Shared campaign skeleton over the model context: prepass, deterministic
/// top-off, matrix, compaction. The one-shot counterpart of the shard
/// executor — both call the same ctx hooks, so a sharded merge reproducing
/// this path bit-for-bit is structural, not coincidental.
/// Deterministic random completion of a SAT cube's don't-care bits. Stuck
/// campaigns keep the single-vector convention (v1 == v2); two-frame ones
/// fill each frame independently.
TwoVectorTest fill_cube(const XTwoVectorTest& cube, std::size_t n_pi,
                        FaultModel model, util::Prng& prng) {
  TwoVectorTest t = cube.concrete();
  for (std::size_t b = 0; b < n_pi; ++b)
    if (!cube.v2.care_mask.bit(b)) t.v2.set_bit(b, prng.next_bool());
  if (model == FaultModel::kStuck) {
    t.v1 = t.v2;
    return t;
  }
  for (std::size_t b = 0; b < n_pi; ++b)
    if (!cube.v1.care_mask.bit(b)) t.v1.set_bit(b, prng.next_bool());
  return t;
}

void drive_ctx(const detail::CampaignContext& ctx, const CampaignOptions& opt,
               CampaignReport& r,
               detail::RepSubset* sat_untestable_out = nullptr) {
  const auto t_total = Clock::now();
  r.faults_total = ctx.faults_total;
  r.faults_collapsed = ctx.n_reps;
  if (ctx.n_reps == 0) {
    r.coverage = 1.0;
    r.provable_coverage = 1.0;
    r.time.total_s = seconds_since(t_total);
    return;
  }

  FaultSimScheduler sched(ctx.view, opt.sim);
  std::vector<TwoVectorTest> tests;
  std::vector<std::uint8_t> skip(ctx.n_reps, 0);

  // Random-pattern fault-dropping prepass: detected faults skip the
  // deterministic search; each first-detecting pattern joins the set.
  if (opt.random_patterns > 0) {
    const obs::Span span("prepass");
    const auto t0 = Clock::now();
    const std::vector<TwoVectorTest> pool = detail::random_pool(ctx.view, opt);
    const FaultSimEngine::Campaign campaign = ctx.prepass(sched, pool, {});
    r.fault_block_evals = campaign.fault_block_evals;
    const PrepassMarks marks = mark_first_detections(campaign, pool.size());
    skip = marks.skip;
    for (std::size_t t = 0; t < pool.size(); ++t)
      if (marks.useful[t]) tests.push_back(pool[t]);
    r.tests_random = static_cast<int>(tests.size());
    r.time.random_s = seconds_since(t0);
  }

  // Deterministic top-off over the surviving representatives. Backtrack
  // aborts optionally escalate inline to the SAT backend — the cube (or
  // proof) lands at the same position a PODEM test would have, so
  // escalation preserves the cross-thread/shard determinism contract.
  obs::Sheet csheet;
  {
    const obs::Span span("topoff");
    const FlowMetricIds& mids = FlowMetricIds::get();
    const auto t0 = Clock::now();
    const auto record_abort = [&](std::uint32_t i, bool timed) {
      ++r.aborted;
      if (timed) ++r.aborted_time;
      else ++r.aborted_backtracks;
      if (ctx.rep_name) r.aborted_faults.push_back(ctx.rep_name(i));
    };
    std::vector<TwoVectorTest> seed_pool;
    for (std::uint32_t i = 0; i < ctx.n_reps; ++i) {
      if (skip[i]) continue;
      // SAT-cube seed pool: before paying for a PODEM search, try the
      // random completions of earlier escalation cubes — aborts cluster
      // structurally, so one hard fault's cube often covers its neighbors.
      if (!seed_pool.empty()) {
        const FaultSimEngine::Campaign sc = ctx.prepass(sched, seed_pool, {i});
        if (sc.first_test[0] >= 0) {
          tests.push_back(seed_pool[static_cast<std::size_t>(sc.first_test[0])]);
          ++r.seeded_tests;
          csheet.add(mids.seeded_tests);
          continue;
        }
      }
      const TwoFrameResult res = ctx.generate(i);
      switch (res.status) {
        case PodemStatus::kFound:
          tests.push_back(res.test);
          ++r.tests_deterministic;
          csheet.add(mids.podem_found);
          break;
        case PodemStatus::kUntestable:
          ++r.untestable;
          csheet.add(mids.podem_untestable);
          break;
        case PodemStatus::kAborted: {
          const bool timed = res.reason == AbortReason::kTime;
          csheet.add(mids.podem_aborted);
          if (timed || !opt.sat_escalate || !ctx.escalate) {
            record_abort(i, timed);
            break;
          }
          const auto t_sat = Clock::now();
          const obs::Span sat_span("sat-escalate");
          const sat::SatAtpgResult sr = ctx.escalate(i);
          r.time.sat_s += seconds_since(t_sat);
          r.sat_conflicts += sr.conflicts;
          r.sat_decisions += sr.decisions;
          r.sat_restarts += sr.restarts;
          ++r.sat_conflicts_hist[static_cast<std::size_t>(
              obs::log2_bucket(static_cast<std::uint64_t>(sr.conflicts)))];
          csheet.add(mids.sat_conflicts, sr.conflicts);
          csheet.add(mids.sat_decisions, sr.decisions);
          csheet.add(mids.sat_restarts, sr.restarts);
          csheet.observe(mids.sat_conflicts_per_fault,
                         static_cast<std::uint64_t>(sr.conflicts));
          switch (sr.verdict) {
            case sat::SatVerdict::kCube:
              tests.push_back(sr.cube.concrete());
              ++r.sat_detected;
              if (opt.seed_sat_cubes) {
                util::Prng prng(opt.seed ^ (0x5eedc0beull + i));
                for (int k = 0; k < 4; ++k)
                  seed_pool.push_back(fill_cube(sr.cube,
                                                ctx.view.inputs().size(),
                                                opt.model, prng));
              }
              break;
            case sat::SatVerdict::kUntestable:
              ++r.sat_untestable;
              if (sat_untestable_out) sat_untestable_out->push_back(i);
              break;
            case sat::SatVerdict::kUnknown:
              ++r.sat_unknown;
              record_abort(i, false);
              break;
          }
          break;
        }
      }
    }
    // Incremental-session totals (nullptr when nothing escalated or the
    // session is off). Deterministic per configuration: escalation order
    // and the persistent solver are both deterministic.
    if (ctx.escalate_stats) {
      if (const sat::SatSessionStats* ss = ctx.escalate_stats()) {
        r.sat_pairs = ss->pairs_total;
        r.sat_cone_encodes = ss->cone_encodes;
        r.sat_cone_hits = ss->cone_hits;
        r.sat_unobservable_hits = ss->unobservable_hits;
        r.sat_incremental_refutes = ss->incremental_refutes;
        r.sat_fresh_fallbacks = ss->fresh_fallbacks;
        r.sat_vars_shared = ss->vars_shared;
        r.sat_clauses_kept = ss->clauses_kept;
        csheet.add(mids.sat_inc_pairs, ss->pairs_total);
        csheet.add(mids.sat_inc_cone_encodes, ss->cone_encodes);
        csheet.add(mids.sat_inc_cone_hits, ss->cone_hits);
        csheet.add(mids.sat_inc_refutes, ss->incremental_refutes);
        csheet.add(mids.sat_inc_fresh, ss->fresh_fallbacks);
        csheet.add(mids.sat_inc_vars_shared, ss->vars_shared);
        csheet.add(mids.sat_inc_clauses_kept, ss->clauses_kept);
      }
    }
    r.time.atpg_s = seconds_since(t0);
  }

  // Detection matrix over the final set: recounts every detection (the
  // prepass only tracked first hits) and is the cross-thread witness.
  detail::matrix_and_compact(opt, tests.size(),
                             [&] { return ctx.matrix(sched, tests, {}); }, r);
  detail::fill_sim_stats(sched, r);
  {
    obs::Sheet merged = sched.merged_metrics();
    merged.merge_from(csheet);
    r.metrics = obs::snapshot(merged);
  }
  r.coverage = static_cast<double>(r.detected) /
               static_cast<double>(ctx.n_reps);
  const std::size_t provable =
      ctx.n_reps - static_cast<std::size_t>(r.untestable + r.sat_untestable);
  r.provable_coverage =
      provable == 0 ? 1.0
                    : static_cast<double>(r.detected) /
                          static_cast<double>(provable);
  r.time.total_s = seconds_since(t_total);
}

}  // namespace

namespace detail {

std::uint64_t hash_matrix(const DetectionMatrix& m) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  h = fnv1a(h, m.n_tests);
  h = fnv1a(h, m.n_faults);
  for (std::uint64_t w : m.rows) h = fnv1a(h, w);
  return h;
}

void fill_structure(const logic::Circuit& view, CampaignReport& r) {
  r.gates = view.num_gates();
  r.nets = view.num_nets();
  r.pis = view.inputs().size();
  r.pos = view.outputs().size();
  r.depth = view.depth();
}

void fill_sim_stats(const FaultSimScheduler& sched, CampaignReport& r) {
  const atpg::SimStats s = sched.stats();
  r.cone_evictions = s.cone_evictions;
  r.cone_resident = s.cone_resident;
  r.cone_peak_bytes = s.cone_peak_bytes;
  r.propagations = s.propagations;
  r.frontier_events = s.frontier_events;
  r.frontier_gate_evals = s.frontier_gate_evals;
  r.frontier_early_exits = s.frontier_early_exits;
}

void matrix_and_compact(const CampaignOptions& opt, std::size_t n_tests,
                        const std::function<DetectionMatrix()>& build,
                        CampaignReport& r) {
  const auto t0 = Clock::now();
  obs::Span matrix_span("matrix");
  const DetectionMatrix m = build();
  matrix_span.close();
  r.detected = m.covered_count;
  r.matrix_hash = hash_matrix(m);
  r.time.matrix_s = seconds_since(t0);
  r.tests_final = static_cast<int>(n_tests);
  if (opt.compact && n_tests > 0) {
    const obs::Span span("compact");
    const auto t1 = Clock::now();
    r.tests_final = static_cast<int>(greedy_cover(m).size());
    r.time.compact_s = seconds_since(t1);
  }
}

std::vector<TwoVectorTest> random_pool(const logic::Circuit& view,
                                       const CampaignOptions& opt) {
  if (opt.random_patterns <= 0) return {};
  std::vector<TwoVectorTest> pool = random_pairs(
      static_cast<int>(view.inputs().size()), opt.random_patterns, opt.seed);
  if (opt.model == FaultModel::kStuck)
    for (auto& t : pool) t.v1 = t.v2;  // single-vector application
  return pool;
}

void init_report(const logic::SequentialCircuit& seq,
                 const CampaignOptions& opt, CampaignReport& r) {
  r.model = opt.model;
  r.threads = opt.sim.threads;
  r.lanes = 64 * std::max(1, opt.sim.lane_words);
  r.packing = to_string(opt.sim.packing);
  r.scan = !seq.flops().empty();
  r.flops = seq.flops().size();
  r.circuit = seq.core().name();
}

namespace {

/// Typed per-model state referenced by the context closures. shared_ptr
/// capture keeps a context copyable and self-contained.
template <typename Fault>
struct ModelData {
  logic::Circuit view;
  std::vector<Fault> reps;
  PodemOptions popt;
  /// Lazily constructed on the first escalation when sat_incremental is
  /// on; one persistent solver serves the whole campaign (or shard).
  /// Declared after `view` so the session's circuit reference outlives it.
  std::shared_ptr<sat::SatSession> session;
};

}  // namespace

CampaignContext make_context(const logic::SequentialCircuit& seq,
                             const CampaignOptions& opt) {
  CampaignContext ctx;
  const bool scan = !seq.flops().empty();
  if (scan && opt.scan_style != ScanMode::kEnhanced) {
    ctx.error = "launch-on-capture scan styles use the dedicated scan "
                "driver, not the shared campaign context";
    return ctx;
  }

  // Full-scan application: flops become pseudo-PIs/POs and every test is a
  // plain (two-)vector on the view. InputVec test vectors carry any width,
  // so wide netlists and long scan chains need no special casing.
  ctx.view = scan ? seq.scan_view() : seq.core();
  if (opt.model == FaultModel::kObd)
    ctx.view = logic::decompose_composites(ctx.view);

  const std::string diag = ctx.view.validate();
  if (!diag.empty()) {
    ctx.error = diag;
    return ctx;
  }

  ctx.popt.max_backtracks = opt.max_backtracks;
  ctx.popt.time_budget_s = opt.podem_time_budget_s;
  ctx.popt.sim = opt.sim;

  sat::SatAtpgOptions satopt;
  satopt.conflict_budget = opt.sat_conflict_budget;

  if (opt.model == FaultModel::kStuck) {
    auto data = std::make_shared<ModelData<StuckFault>>();
    data->view = ctx.view;
    data->popt = ctx.popt;
    const obs::Span span("collapse");
    const auto t0 = Clock::now();
    const auto faults = enumerate_stuck_faults(data->view);
    ctx.faults_total = faults.size();
    data->reps = collapse_stuck_faults(data->view, faults).representatives;
    ctx.collapse_s = seconds_since(t0);
    ctx.n_reps = data->reps.size();
    auto patterns_of = [](const std::vector<TwoVectorTest>& ts) {
      std::vector<logic::InputVec> p(ts.size());
      for (std::size_t i = 0; i < ts.size(); ++i) p[i] = ts[i].v2;
      return p;
    };
    ctx.prepass = [data, patterns_of](FaultSimScheduler& s,
                                      const std::vector<TwoVectorTest>& ts,
                                      const RepSubset& subset) {
      return s.campaign_stuck(patterns_of(ts), select_reps(data->reps, subset));
    };
    ctx.generate = [data](std::uint32_t i) {
      const PodemResult pr = podem_stuck_at(data->view, data->reps[i],
                                            data->popt);
      TwoFrameResult t;
      t.status = pr.status;
      t.reason = pr.reason;
      t.test = TwoVectorTest{pr.vector.bits, pr.vector.bits};
      return t;
    };
    ctx.matrix = [data, patterns_of](FaultSimScheduler& s,
                                     const std::vector<TwoVectorTest>& ts,
                                     const RepSubset& subset) {
      return s.matrix_stuck(patterns_of(ts), select_reps(data->reps, subset));
    };
    ctx.escalate = [data, satopt, inc = opt.sat_incremental](std::uint32_t i) {
      if (inc) {
        if (!data->session)
          data->session =
              std::make_shared<sat::SatSession>(data->view, satopt);
        return data->session->generate_stuck_test(data->reps[i]);
      }
      return sat::sat_generate_stuck_test(data->view, data->reps[i], satopt);
    };
    ctx.escalate_stats = [data]() -> const sat::SatSessionStats* {
      return data->session ? &data->session->stats() : nullptr;
    };
    ctx.rep_name = [data](std::uint32_t i) {
      return fault_name(data->view, data->reps[i]);
    };
  } else if (opt.model == FaultModel::kTransition) {
    auto data = std::make_shared<ModelData<TransitionFault>>();
    data->view = ctx.view;
    data->popt = ctx.popt;
    data->reps = enumerate_transition_faults(data->view);
    ctx.faults_total = data->reps.size();  // no structural collapse
    ctx.n_reps = data->reps.size();
    ctx.prepass = [data](FaultSimScheduler& s,
                         const std::vector<TwoVectorTest>& ts,
                         const RepSubset& subset) {
      return s.campaign_transition(ts, select_reps(data->reps, subset));
    };
    ctx.generate = [data](std::uint32_t i) {
      return generate_transition_test(data->view, data->reps[i], data->popt);
    };
    ctx.matrix = [data](FaultSimScheduler& s,
                        const std::vector<TwoVectorTest>& ts,
                        const RepSubset& subset) {
      return s.matrix_transition(ts, select_reps(data->reps, subset));
    };
    ctx.escalate = [data, satopt, inc = opt.sat_incremental](std::uint32_t i) {
      if (inc) {
        if (!data->session)
          data->session =
              std::make_shared<sat::SatSession>(data->view, satopt);
        return data->session->generate_transition_test(data->reps[i]);
      }
      return sat::sat_generate_transition_test(data->view, data->reps[i],
                                               satopt);
    };
    ctx.escalate_stats = [data]() -> const sat::SatSessionStats* {
      return data->session ? &data->session->stats() : nullptr;
    };
    ctx.rep_name = [data](std::uint32_t i) {
      return fault_name(data->view, data->reps[i]);
    };
  } else {
    auto data = std::make_shared<ModelData<ObdFaultSite>>();
    data->view = ctx.view;
    data->popt = ctx.popt;
    const obs::Span span("collapse");
    const auto t0 = Clock::now();
    const auto faults = enumerate_obd_faults(data->view);
    ctx.faults_total = faults.size();
    data->reps = collapse_obd_faults(data->view, faults).representatives;
    ctx.collapse_s = seconds_since(t0);
    ctx.n_reps = data->reps.size();
    ctx.prepass = [data](FaultSimScheduler& s,
                         const std::vector<TwoVectorTest>& ts,
                         const RepSubset& subset) {
      return s.campaign_obd(ts, select_reps(data->reps, subset));
    };
    ctx.generate = [data](std::uint32_t i) {
      return generate_obd_test(data->view, data->reps[i], data->popt);
    };
    ctx.matrix = [data](FaultSimScheduler& s,
                        const std::vector<TwoVectorTest>& ts,
                        const RepSubset& subset) {
      return s.matrix_obd(ts, select_reps(data->reps, subset));
    };
    ctx.escalate = [data, satopt, inc = opt.sat_incremental](std::uint32_t i) {
      if (inc) {
        if (!data->session)
          data->session =
              std::make_shared<sat::SatSession>(data->view, satopt);
        return data->session->generate_obd_test(data->reps[i]);
      }
      return sat::sat_generate_obd_test(data->view, data->reps[i], satopt);
    };
    ctx.escalate_stats = [data]() -> const sat::SatSessionStats* {
      return data->session ? &data->session->stats() : nullptr;
    };
    ctx.rep_name = [data](std::uint32_t i) {
      return fault_name(data->view, data->reps[i]);
    };
    ctx.ndetect = [data](const CampaignOptions& o,
                         const RepSubset& sat_untestable, CampaignReport& r) {
      if (data->reps.empty()) return;
      const obs::Span span("ndetect");
      const auto t1 = Clock::now();
      NDetectOptions nopt;
      nopt.n = o.ndetect;
      nopt.random_pool = o.ndetect_random_pool;
      nopt.seed = o.seed;
      nopt.podem = data->popt;
      nopt.sim = o.sim;
      // SAT-proven-untestable representatives can never reach n
      // detections; growing toward them wastes the whole random pool.
      std::vector<ObdFaultSite> targets;
      const std::vector<ObdFaultSite>* reps = &data->reps;
      if (!sat_untestable.empty()) {
        std::vector<std::uint8_t> drop(data->reps.size(), 0);
        for (const std::uint32_t u : sat_untestable) drop[u] = 1;
        targets.reserve(data->reps.size() - sat_untestable.size());
        for (std::size_t i = 0; i < data->reps.size(); ++i)
          if (!drop[i]) targets.push_back(data->reps[i]);
        reps = &targets;
        r.ndetect_pruned_untestable =
            static_cast<int>(sat_untestable.size());
      }
      const NDetectResult nd = build_ndetect_set(data->view, *reps, nopt);
      r.ndetect_tests = static_cast<int>(nd.tests.size());
      r.ndetect_satisfied = nd.satisfied;
      r.time.ndetect_s = seconds_since(t1);
      r.time.total_s += r.time.ndetect_s;
    };
  }
  return ctx;
}

}  // namespace detail

const char* to_string(FaultModel m) {
  switch (m) {
    case FaultModel::kStuck: return "stuck";
    case FaultModel::kTransition: return "transition";
    case FaultModel::kObd: return "obd";
  }
  return "?";
}

bool fault_model_from_string(const std::string& s, FaultModel& out) {
  if (s == "stuck") out = FaultModel::kStuck;
  else if (s == "transition") out = FaultModel::kTransition;
  else if (s == "obd") out = FaultModel::kObd;
  else return false;
  return true;
}

bool scan_style_from_string(const std::string& s, atpg::ScanMode& out) {
  if (s == "enhanced") out = ScanMode::kEnhanced;
  else if (s == "loc") out = ScanMode::kLaunchOnCapture;
  else if (s == "loc-held") out = ScanMode::kLaunchOnCaptureHeldPi;
  else return false;
  return true;
}

CampaignReport run_campaign(const logic::SequentialCircuit& seq,
                            const CampaignOptions& opt) {
  CampaignReport r;
  detail::init_report(seq, opt, r);

  // Launch-on-capture scan styles run the two-frame scan ATPG instead of
  // the enhanced-scan (any-pair) skeleton below.
  if (r.scan && opt.scan_style != ScanMode::kEnhanced) {
    r.scan_style = to_string(opt.scan_style);
    const std::string style =
        opt.scan_style == ScanMode::kLaunchOnCapture ? "loc" : "loc-held";
    if (opt.model != FaultModel::kObd) {
      r.error = "--scan-style " + style + " requires the obd fault model";
      return r;
    }
    if (opt.ndetect > 0) {
      // n-detect growth builds unconstrained combinational tests, which
      // would violate the LOC state coupling — reject rather than silently
      // dropping the option.
      r.error = "--ndetect is not supported with --scan-style " + style;
      return r;
    }
    if (opt.sat_escalate) {
      // The SAT backend encodes unconstrained two-frame instances; it does
      // not model the LOC state coupling. Reject rather than emit cubes the
      // scan machinery cannot apply.
      r.error = "--sat-escalate is not supported with --scan-style " + style;
      return r;
    }
    drive_loc_scan(seq, opt, r);
    return r;
  }
  if (r.scan) r.scan_style = to_string(ScanMode::kEnhanced);

  const detail::CampaignContext ctx = detail::make_context(seq, opt);
  detail::fill_structure(ctx.view, r);
  if (!ctx.error.empty()) {
    r.error = ctx.error;
    return r;
  }
  r.time.collapse_s = ctx.collapse_s;
  detail::RepSubset sat_untestable_reps;
  drive_ctx(ctx, opt, r, &sat_untestable_reps);
  if (opt.ndetect > 0 && ctx.ndetect) ctx.ndetect(opt, sat_untestable_reps, r);
  // drive_ctx only spans random..compact; fold in the enumerate+collapse
  // phase so total == sum of the reported phases.
  r.time.total_s += r.time.collapse_s;
  return r;
}

CampaignReport run_campaign(const logic::Circuit& c,
                            const CampaignOptions& opt) {
  return run_campaign(logic::SequentialCircuit(c), opt);
}

namespace {

std::string json_num(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

/// JSON string escaping: circuit names and error diagnostics may carry
/// quotes, backslashes, or control characters (net names are barely
/// restricted by the .bench grammar).
std::string json_str(const std::string& s) {
  std::string out = "\"";
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  out += '"';
  return out;
}

}  // namespace

std::string report_json(const CampaignReport& r) {
  std::string j = "{\n";
  j += "  \"tool\": \"obd_atpg\",\n";
  if (!r.ok()) j += "  \"error\": " + json_str(r.error) + ",\n";
  j += "  \"circuit\": " + json_str(r.circuit) + ",\n";
  j += "  \"model\": \"" + std::string(to_string(r.model)) + "\",\n";
  j += "  \"structure\": {\"gates\": " + std::to_string(r.gates) +
       ", \"nets\": " + std::to_string(r.nets) +
       ", \"pis\": " + std::to_string(r.pis) +
       ", \"pos\": " + std::to_string(r.pos) +
       ", \"flops\": " + std::to_string(r.flops) +
       ", \"depth\": " + std::to_string(r.depth) +
       ", \"scan\": " + (r.scan ? "true" : "false") +
       ", \"scan_style\": " + json_str(r.scan_style) + "},\n";
  j += "  \"faults\": {\"total\": " + std::to_string(r.faults_total) +
       ", \"collapsed\": " + std::to_string(r.faults_collapsed) +
       ", \"detected\": " + std::to_string(r.detected) +
       ", \"untestable\": " + std::to_string(r.untestable) +
       ", \"aborted\": " + std::to_string(r.aborted) +
       ", \"aborted_backtracks\": " + std::to_string(r.aborted_backtracks) +
       ", \"aborted_time\": " + std::to_string(r.aborted_time) +
       ", \"coverage\": " + json_num(r.coverage) +
       ",\n             \"sat_detected\": " + std::to_string(r.sat_detected) +
       ", \"sat_untestable\": " + std::to_string(r.sat_untestable) +
       ", \"sat_unknown\": " + std::to_string(r.sat_unknown) +
       ", \"sat_conflicts\": " + std::to_string(r.sat_conflicts) +
       ", \"proven_untestable\": " +
       std::to_string(r.untestable + r.sat_untestable) +
       ", \"provable_coverage\": " + json_num(r.provable_coverage) + "},\n";
  j += "  \"aborted_faults\": [";
  for (std::size_t i = 0; i < r.aborted_faults.size(); ++i) {
    if (i > 0) j += ", ";
    j += json_str(r.aborted_faults[i]);
  }
  j += "],\n";
  j += "  \"tests\": {\"random\": " + std::to_string(r.tests_random) +
       ", \"deterministic\": " + std::to_string(r.tests_deterministic) +
       ", \"seeded\": " + std::to_string(r.seeded_tests) +
       ", \"final\": " + std::to_string(r.tests_final) +
       ", \"ndetect\": " + std::to_string(r.ndetect_tests) +
       ", \"ndetect_satisfied\": " + std::to_string(r.ndetect_satisfied) +
       ", \"ndetect_pruned_untestable\": " +
       std::to_string(r.ndetect_pruned_untestable) + "},\n";
  if (r.shards > 0) {
    j += "  \"shards\": {\"count\": " + std::to_string(r.shards) +
         ", \"retries\": " + std::to_string(r.shard_retries) +
         ", \"partial\": " + (r.partial ? "true" : "false") +
         ", \"quarantined\": [";
    for (std::size_t i = 0; i < r.quarantined_shards.size(); ++i) {
      if (i > 0) j += ", ";
      j += std::to_string(r.quarantined_shards[i]);
    }
    j += "]},\n";
  }
  char hash[32];
  std::snprintf(hash, sizeof hash, "0x%016llx",
                static_cast<unsigned long long>(r.matrix_hash));
  j += "  \"sim\": {\"threads\": " + std::to_string(r.threads) +
       ", \"lanes\": " + std::to_string(r.lanes) +
       ", \"packing\": \"" + r.packing + "\", \"fault_block_evals\": " +
       std::to_string(r.fault_block_evals) + ", \"matrix_hash\": \"" + hash +
       "\",\n          \"cone_evictions\": " + std::to_string(r.cone_evictions) +
       ", \"cone_resident\": " + std::to_string(r.cone_resident) +
       ", \"cone_peak_bytes\": " + std::to_string(r.cone_peak_bytes) +
       ",\n          \"propagations\": " + std::to_string(r.propagations) +
       ", \"frontier_events\": " + std::to_string(r.frontier_events) +
       ", \"frontier_gate_evals\": " + std::to_string(r.frontier_gate_evals) +
       ", \"frontier_early_exits\": " +
       std::to_string(r.frontier_early_exits) + "},\n";
  // SAT escalation detail: effort totals plus the per-fault conflict
  // histogram (log2 buckets, trailing zeroes trimmed).
  if (r.sat_detected + r.sat_untestable + r.sat_unknown > 0) {
    int hi = obs::kHistBuckets;
    while (hi > 0 && r.sat_conflicts_hist[static_cast<std::size_t>(hi - 1)] == 0)
      --hi;
    j += "  \"sat_escalation\": {\"conflicts\": " +
         std::to_string(r.sat_conflicts) +
         ", \"decisions\": " + std::to_string(r.sat_decisions) +
         ", \"restarts\": " + std::to_string(r.sat_restarts) +
         ", \"conflicts_per_fault_log2\": [";
    for (int b = 0; b < hi; ++b) {
      if (b > 0) j += ", ";
      j += std::to_string(r.sat_conflicts_hist[static_cast<std::size_t>(b)]);
    }
    j += "]";
    // Incremental-session detail (one-shot runs with sat_incremental; a
    // sharded merge reports zeros — sessions are process-local).
    if (r.sat_pairs > 0) {
      j += ",\n                     \"incremental\": {\"pairs\": " +
           std::to_string(r.sat_pairs) +
           ", \"cone_encodes\": " + std::to_string(r.sat_cone_encodes) +
           ", \"cone_hits\": " + std::to_string(r.sat_cone_hits) +
           ", \"unobservable_hits\": " +
           std::to_string(r.sat_unobservable_hits) +
           ", \"incremental_refutes\": " +
           std::to_string(r.sat_incremental_refutes) +
           ", \"fresh_fallbacks\": " + std::to_string(r.sat_fresh_fallbacks) +
           ", \"vars_shared\": " + std::to_string(r.sat_vars_shared) +
           ", \"clauses_kept\": " + std::to_string(r.sat_clauses_kept) + "}";
    }
    j += "},\n";
  }
  // Every metric the run touched, self-describing (kind-tagged), sorted by
  // name. Deterministic given a deterministic work partition; campaign
  // counters at > 1 thread legitimately vary (redundant tail work).
  if (!r.metrics.empty()) {
    j += "  \"metrics\": {";
    bool first = true;
    for (const obs::MetricValue& m : r.metrics) {
      if (!first) j += ",";
      first = false;
      j += "\n    " + json_str(m.name) + ": ";
      if (m.kind == obs::MetricKind::kHistogram) {
        int hi = obs::kHistBuckets;
        while (hi > 0 && m.hist.buckets[static_cast<std::size_t>(hi - 1)] == 0)
          --hi;
        j += "{\"count\": " + std::to_string(m.hist.count) +
             ", \"sum\": " + std::to_string(m.hist.sum) +
             ", \"max\": " + std::to_string(m.hist.max) +
             ", \"log2_buckets\": [";
        for (int b = 0; b < hi; ++b) {
          if (b > 0) j += ", ";
          j += std::to_string(m.hist.buckets[static_cast<std::size_t>(b)]);
        }
        j += "]}";
      } else {
        j += std::to_string(m.value);
      }
    }
    j += "\n  },\n";
  }
  // Wall-clock phase durations. Timing-dependent by nature: these are the
  // only fields expected to differ between otherwise identical runs, which
  // is why they live in their own object, outside everything fingerprinted
  // or byte-compared. topoff is the deterministic search minus its SAT
  // share.
  const double topoff_s = std::max(0.0, r.time.atpg_s - r.time.sat_s);
  j += "  \"timing\": {\"parse\": " + json_num(r.time.parse_s) +
       ", \"collapse\": " + json_num(r.time.collapse_s) +
       ", \"prepass\": " + json_num(r.time.random_s) +
       ", \"topoff\": " + json_num(topoff_s) +
       ", \"sat\": " + json_num(r.time.sat_s) +
       ", \"matrix\": " + json_num(r.time.matrix_s) +
       ", \"compact\": " + json_num(r.time.compact_s) +
       ", \"ndetect\": " + json_num(r.time.ndetect_s) +
       ", \"total\": " + json_num(r.time.total_s) + "}\n";
  j += "}\n";
  return j;
}

void print_report(const CampaignReport& r) {
  if (!r.ok()) {
    std::printf("error: %s\n", r.error.c_str());
    return;
  }
  util::AsciiTable t(r.circuit + " · " + to_string(r.model) + " campaign" +
                     (r.partial ? " (PARTIAL)" : ""));
  t.set_header({"metric", "value"});
  t.add_row({"gates / nets / depth", std::to_string(r.gates) + " / " +
                                         std::to_string(r.nets) + " / " +
                                         std::to_string(r.depth)});
  t.add_row({"PIs / POs / flops", std::to_string(r.pis) + " / " +
                                      std::to_string(r.pos) + " / " +
                                      std::to_string(r.flops) +
                                      (r.scan ? " (" + r.scan_style + ")"
                                              : "")});
  t.add_row({"faults (total -> collapsed)", std::to_string(r.faults_total) +
                                                " -> " +
                                                std::to_string(r.faults_collapsed)});
  t.add_row({"detected / untestable / aborted",
             std::to_string(r.detected) + " / " + std::to_string(r.untestable) +
                 " / " + std::to_string(r.aborted) +
                 (r.aborted > 0
                      ? "  (backtracks " + std::to_string(r.aborted_backtracks) +
                            ", time " + std::to_string(r.aborted_time) + ")"
                      : "")});
  if (r.sat_detected + r.sat_untestable + r.sat_unknown > 0) {
    t.add_row({"SAT cubes / proofs / unknown",
               std::to_string(r.sat_detected) + " / " +
                   std::to_string(r.sat_untestable) + " / " +
                   std::to_string(r.sat_unknown)});
    t.add_row({"SAT conflicts / decisions / restarts",
               std::to_string(r.sat_conflicts) + " / " +
                   std::to_string(r.sat_decisions) + " / " +
                   std::to_string(r.sat_restarts)});
    if (r.sat_pairs > 0)
      t.add_row({"SAT incremental refutes / fresh",
                 std::to_string(r.sat_incremental_refutes) + " / " +
                     std::to_string(r.sat_fresh_fallbacks) + "  (cones " +
                     std::to_string(r.sat_cone_encodes) + " encoded, " +
                     std::to_string(r.sat_cone_hits) + " reused)"});
    // Compact per-fault hardness profile: "b3:12" = 12 escalated faults
    // needed [4, 8) conflicts.
    std::string hist;
    for (int b = 0; b < obs::kHistBuckets; ++b) {
      const std::uint64_t n = r.sat_conflicts_hist[static_cast<std::size_t>(b)];
      if (n == 0) continue;
      if (!hist.empty()) hist += "  ";
      hist += "b" + std::to_string(b) + ":" + std::to_string(n);
    }
    if (!hist.empty())
      t.add_row({"SAT conflicts/fault (log2 buckets)", hist});
  }
  t.add_row({"coverage (collapsed)",
             util::format_g(100.0 * r.coverage, 4) + "%"});
  t.add_row({"provable coverage",
             util::format_g(100.0 * r.provable_coverage, 4) + "%  (" +
                 std::to_string(r.untestable + r.sat_untestable) +
                 " proven untestable)"});
  t.add_row({"tests random / determ / final",
             std::to_string(r.tests_random) + " / " +
                 std::to_string(r.tests_deterministic) + " / " +
                 std::to_string(r.tests_final) +
                 (r.seeded_tests > 0
                      ? "  (+" + std::to_string(r.seeded_tests) + " seeded)"
                      : "")});
  if (r.ndetect_tests > 0)
    t.add_row({"n-detect tests / satisfied",
               std::to_string(r.ndetect_tests) + " / " +
                   std::to_string(r.ndetect_satisfied)});
  if (r.shards > 0) {
    std::string q;
    for (const int s : r.quarantined_shards)
      q += (q.empty() ? "" : ", ") + std::to_string(s);
    t.add_row({"shards / retries",
               std::to_string(r.shards) + " / " +
                   std::to_string(r.shard_retries) +
                   (q.empty() ? "" : "  (quarantined: " + q + ")")});
  }
  char hash[32];
  std::snprintf(hash, sizeof hash, "0x%016llx",
                static_cast<unsigned long long>(r.matrix_hash));
  t.add_row({"matrix hash", hash});
  t.add_row({"threads / lanes / packing",
             std::to_string(r.threads) + " / " + std::to_string(r.lanes) +
                 " / " + r.packing});
  if (r.propagations > 0)
    t.add_row({"frontier evals / early exits",
               std::to_string(r.frontier_gate_evals) + " / " +
                   std::to_string(r.frontier_early_exits) +
                   (r.cone_evictions > 0
                        ? "  (evictions " + std::to_string(r.cone_evictions) +
                              ")"
                        : "")});
  {
    std::string phases = "prepass " + util::format_g(r.time.random_s, 3) +
                         ", topoff " +
                         util::format_g(
                             std::max(0.0, r.time.atpg_s - r.time.sat_s), 3);
    if (r.time.sat_s > 0.0)
      phases += ", sat " + util::format_g(r.time.sat_s, 3);
    phases += ", matrix " + util::format_g(r.time.matrix_s, 3);
    if (r.time.compact_s > 0.0)
      phases += ", compact " + util::format_g(r.time.compact_s, 3);
    t.add_row({"wall clock",
               util::format_g(r.time.total_s, 3) + " s  (" + phases + ")"});
  }
  t.print();
}

}  // namespace obd::flow

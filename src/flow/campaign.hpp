// End-to-end ATPG campaign driver: the layer that turns the library into a
// tool. One call chains everything the lower layers provide:
//
//   fault-list extraction -> structural collapse -> random-pattern
//   fault-dropping prepass (FaultSimScheduler, threads/packing from
//   SimOptions) -> deterministic PODEM / two-frame top-off for the
//   survivors -> detection-matrix build -> greedy compaction -> optional
//   n-detect growth -> a machine-readable report.
//
// Sequential circuits (ISCAS-89 style, via io::parse_bench) are handled in
// the full-scan view: flops become pseudo-PIs/POs and the stuck-at or
// two-vector machinery runs unchanged (enhanced-scan application).
//
// Determinism: everything is seeded, and the fault-simulation layer is
// bit-identical across thread counts and packings, so two runs that differ
// only in `sim.threads` produce byte-identical reports up to the wall-clock
// fields — `matrix_hash` is the cheap cross-run witness.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "atpg/atpg.hpp"
#include "logic/sequential.hpp"
#include "obs/metrics.hpp"

namespace obd::flow {

enum class FaultModel { kStuck, kTransition, kObd };

const char* to_string(FaultModel m);
/// Parses "stuck" / "transition" / "obd"; false on anything else.
bool fault_model_from_string(const std::string& s, FaultModel& out);
/// Parses "enhanced" / "loc" / "loc-held"; false on anything else.
bool scan_style_from_string(const std::string& s, atpg::ScanMode& out);

struct CampaignOptions {
  FaultModel model = FaultModel::kStuck;
  /// Scan application style for sequential designs. kEnhanced (default)
  /// applies any (V1, V2) pair through the full-scan view — works with
  /// every fault model. The launch-on-capture styles constrain frame 2's
  /// state to the machine's own next-state response (held-PI additionally
  /// pins PI2 == PI1) and run the two-frame scan ATPG — OBD model only.
  /// Ignored for purely combinational designs.
  atpg::ScanMode scan_style = atpg::ScanMode::kEnhanced;
  /// Threads / packing / cone-cache cap for every fault-sim call.
  atpg::SimOptions sim;
  /// Random patterns (or two-vector pairs) in the fault-dropping prepass;
  /// 0 goes straight to the deterministic search.
  int random_patterns = 2048;
  std::uint64_t seed = 0x0bd5eedull;
  /// PODEM backtrack budget for the deterministic top-off.
  long max_backtracks = 100000;
  /// Wall-clock budget per deterministic fault search, seconds; 0 = off.
  /// A nonzero budget makes abort decisions load-dependent, which forfeits
  /// the cross-run determinism guarantee — time-budget aborts are recorded
  /// separately (FaultStatus::kAbortedTime) and re-attempted on resume.
  double podem_time_budget_s = 0.0;
  /// Escalate deterministic backtrack-limit aborts to the SAT backend
  /// (atpg/sat): each abort becomes a validated test cube, a proven-
  /// untestable verdict, or — only if the conflict budget runs out — stays
  /// aborted. Escalation is inline and deterministic, so the matrix-hash
  /// contract across threads/lanes/shards is preserved. Time-budget aborts
  /// are NOT escalated (they are re-attempted on resume instead).
  bool sat_escalate = false;
  /// CDCL conflict budget per SAT solver call; <= 0 = unlimited.
  long long sat_conflict_budget = 100000;
  /// Solve the escalation tail in one persistent assumption-based SAT
  /// session (good CNF encoded once, faulty cones cached under activation
  /// literals, learned clauses kept across faults) instead of a throwaway
  /// solver per excitation pair. Verdicts and cubes are identical to
  /// fresh solving by construction — an UNSAT under assumptions refutes
  /// exactly the fresh formula, and SAT/budget-out answers delegate to the
  /// fresh path — so matrix_hash, checkpoint, and --resume semantics are
  /// unchanged; only the effort counters move.
  bool sat_incremental = true;
  /// Seed the deterministic top-off with random completions of SAT cubes:
  /// each escalation cube contributes a few fills of its don't-care bits,
  /// and later aborted faults try that pool before PODEM. Off by default —
  /// seeded detections change which tests join the set (and therefore the
  /// matrix hash); one-shot campaigns only.
  bool seed_sat_cubes = false;
  /// Greedy set-cover compaction of the final test set.
  bool compact = true;
  /// Grow an n-detect set on top (OBD model only); 0 = off.
  int ndetect = 0;
  int ndetect_random_pool = 256;
};

/// Wall-clock phase durations. Strictly observational: none of these feed
/// the deterministic report fields or the checkpoint fingerprint, and the
/// JSON report keeps them in their own "timing" object so byte-comparing
/// the deterministic remainder across runs stays meaningful.
struct PhaseTimes {
  double parse_s = 0.0;     ///< netlist parse (set by the CLI driver)
  double collapse_s = 0.0;
  double random_s = 0.0;    ///< random fault-dropping prepass
  double atpg_s = 0.0;      ///< deterministic top-off incl. SAT escalation
  double sat_s = 0.0;       ///< SAT escalation alone (subset of atpg_s)
  double matrix_s = 0.0;
  double compact_s = 0.0;
  double ndetect_s = 0.0;
  double total_s = 0.0;
};

struct CampaignReport {
  /// Empty when the campaign ran; else the reason it could not.
  std::string error;

  std::string circuit;
  FaultModel model = FaultModel::kStuck;
  std::size_t gates = 0, nets = 0, pis = 0, pos = 0, flops = 0;
  int depth = 0;
  bool scan = false;
  /// Scan application style actually used (to_string(ScanMode)); empty for
  /// combinational designs.
  std::string scan_style;

  std::size_t faults_total = 0;
  std::size_t faults_collapsed = 0;
  int detected = 0;
  int untestable = 0;
  int aborted = 0;
  /// Abort breakdown: backtrack-limit aborts are deterministic and final;
  /// time-budget aborts are re-attempted when a sharded campaign resumes.
  int aborted_backtracks = 0;
  int aborted_time = 0;
  /// Detected / collapsed representatives (1.0 when the list is empty).
  double coverage = 0.0;

  /// SAT escalation tail (all zero unless CampaignOptions::sat_escalate).
  /// `untestable` above stays PODEM-proven; sat_untestable counts aborts the
  /// SAT backend *proved* untestable; sat_detected counts aborts it resolved
  /// into validated cubes (also included in `detected` via the matrix);
  /// sat_unknown counts aborts that exhausted the conflict budget (still in
  /// `aborted` / `aborted_backtracks`).
  int sat_detected = 0;
  int sat_untestable = 0;
  int sat_unknown = 0;
  /// CDCL effort summed over every escalation solver call.
  long long sat_conflicts = 0;
  long long sat_decisions = 0;
  long long sat_restarts = 0;
  /// Incremental-session counters (one-shot runs with sat_escalate and
  /// sat_incremental; sharded runs report zeros — each shard's session is
  /// process-local and not checkpointed). See sat::SatSessionStats.
  long long sat_pairs = 0;
  long long sat_cone_encodes = 0;
  long long sat_cone_hits = 0;
  long long sat_unobservable_hits = 0;
  long long sat_incremental_refutes = 0;
  long long sat_fresh_fallbacks = 0;
  long long sat_vars_shared = 0;
  long long sat_clauses_kept = 0;
  /// Per-fault conflict histogram over escalated faults: bucket 0 counts
  /// zero-conflict escalations, bucket i >= 1 escalations whose conflict
  /// count has bit_width i (obs::log2_bucket). Replaces eyeballing the
  /// aggregate: the abort tail's hardness distribution is visible per run.
  std::array<std::uint64_t, obs::kHistBuckets> sat_conflicts_hist{};
  /// Detected / (collapsed - proven untestable), where proven untestable =
  /// untestable + sat_untestable: the coverage of the *provably coverable*
  /// fault space (1.0 when the denominator is empty).
  double provable_coverage = 0.0;
  /// Fault-site names of representatives still aborted after any
  /// escalation (deterministic order: ascending representative index).
  std::vector<std::string> aborted_faults;

  /// Prepass tests that first-detected some fault (the ones kept).
  int tests_random = 0;
  int tests_deterministic = 0;
  /// Aborted faults detected by a SAT-cube seed fill instead of PODEM
  /// (CampaignOptions::seed_sat_cubes).
  int seeded_tests = 0;
  /// After compaction (== random + deterministic when compaction is off).
  int tests_final = 0;
  int ndetect_tests = 0;
  int ndetect_satisfied = 0;
  /// SAT-proven-untestable representatives dropped from the n-detect
  /// target set (they can never reach n detections).
  int ndetect_pruned_untestable = 0;

  /// FNV-1a over the packed detection matrix (dims + row words): equal
  /// hashes across runs <=> bit-identical detection matrices.
  std::uint64_t matrix_hash = 0;
  /// Scheduler work metric of the prepass (see Campaign::fault_block_evals).
  long long fault_block_evals = 0;

  /// Cone-cache pressure and frontier-propagation counters, summed over the
  /// campaign scheduler's worker engines (atpg::SimStats): the c7552-class
  /// memory/speed cliff is observable here without rerunning the bench.
  long long cone_evictions = 0;
  std::size_t cone_resident = 0;
  std::size_t cone_peak_bytes = 0;
  long long propagations = 0;
  long long frontier_events = 0;
  long long frontier_gate_evals = 0;
  long long frontier_early_exits = 0;

  /// Sharded-campaign provenance (set by the shard supervisor; a plain
  /// run_campaign leaves shards == 0). `partial` means one or more shards
  /// were quarantined after exhausting retries and their faults are
  /// reported undetected — the report names them in quarantined_shards.
  int shards = 0;
  int shard_retries = 0;
  std::vector<int> quarantined_shards;
  bool partial = false;

  /// Merged campaign metrics sheet rendered name->value (obs::snapshot):
  /// every registered counter/gauge/histogram the run touched, sorted by
  /// name. The named fields above stay as the stable API; this is the
  /// self-describing superset.
  std::vector<obs::MetricValue> metrics;

  PhaseTimes time;
  int threads = 1;
  /// Pattern lanes per block (64 * SimOptions::lane_words).
  int lanes = 64;
  std::string packing;

  bool ok() const { return error.empty(); }
};

/// Runs a campaign on a (possibly sequential) circuit. Sequential designs
/// use the full-scan view; combinational ones run as-is. The OBD model
/// lowers composite gates to primitives first (fault sites live on
/// transistors of primitive CMOS gates).
CampaignReport run_campaign(const logic::SequentialCircuit& seq,
                            const CampaignOptions& opt = {});
CampaignReport run_campaign(const logic::Circuit& c,
                            const CampaignOptions& opt = {});

/// Serializes a report as a self-contained JSON object.
std::string report_json(const CampaignReport& r);

/// Human-readable summary table on stdout.
void print_report(const CampaignReport& r);

}  // namespace obd::flow

// Campaign internals shared between the one-shot driver (run_campaign),
// the per-shard executor (run_campaign_shard), and the supervisor's merge.
//
// The crash-tolerance layer's central correctness claim — a sharded run,
// even one interrupted and resumed, merges to a detection matrix
// bit-identical to the one-shot campaign — holds because all three paths
// run through the *same* model hooks below. A CampaignContext packages the
// model-specific machinery (collapsed representatives, prepass campaign,
// deterministic generator, matrix builder) behind fault-subset-aware
// closures: the one-shot path passes the full representative list, a shard
// passes its strided partition, and the merge rebuilds the matrix over the
// union of tests against the full list. The fault-sim scheduler's
// determinism contract (first detections independent of which other faults
// are co-simulated) does the rest.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "atpg/atpg.hpp"
#include "atpg/sat/incremental.hpp"
#include "atpg/sat/sat_atpg.hpp"
#include "flow/campaign.hpp"
#include "logic/sequential.hpp"

namespace obd::flow::detail {

/// Global representative indices a closure should operate on. Empty means
/// "all representatives" (the one-shot fast path, no subset copy).
using RepSubset = std::vector<std::uint32_t>;

/// Model-specific campaign machinery over a fixed circuit view. The typed
/// fault vectors live inside the closures (shared_ptr-captured), so a
/// context is freely copyable and outlives make_context's locals.
struct CampaignContext {
  /// Non-empty when the preamble failed (validation error, unsupported
  /// model/style combination); every other field is then unspecified.
  std::string error;

  logic::Circuit view;  ///< full-scan or combinational view, model-lowered
  std::size_t faults_total = 0;  ///< before structural collapse
  std::size_t n_reps = 0;        ///< collapsed representatives
  double collapse_s = 0.0;       ///< enumerate+collapse wall clock
  atpg::PodemOptions popt;       ///< budgets for the deterministic search

  /// Fault-dropping prepass over the subset's representatives. The
  /// returned Campaign's first_test is indexed by subset position.
  std::function<atpg::FaultSimEngine::Campaign(
      atpg::FaultSimScheduler&, const std::vector<atpg::TwoVectorTest>&,
      const RepSubset&)>
      prepass;
  /// Deterministic search for one representative (global index).
  std::function<atpg::TwoFrameResult(std::uint32_t rep_index)> generate;
  /// SAT escalation for one representative (global index): definitive
  /// cube/untestable verdict for a PODEM backtrack-abort, budget
  /// permitting. Configured from CampaignOptions::sat_conflict_budget.
  /// With CampaignOptions::sat_incremental the calls share one lazily
  /// constructed persistent SatSession (verdicts identical either way).
  std::function<atpg::sat::SatAtpgResult(std::uint32_t rep_index)> escalate;
  /// The incremental session's counters, or nullptr when no escalation ran
  /// incrementally (sat_incremental off, or no fault escalated).
  std::function<const atpg::sat::SatSessionStats*()> escalate_stats;
  /// Fault-site name of one representative (for abort reporting).
  std::function<std::string(std::uint32_t rep_index)> rep_name;
  /// Detection matrix of `tests` against the subset's representatives.
  std::function<atpg::DetectionMatrix(
      atpg::FaultSimScheduler&, const std::vector<atpg::TwoVectorTest>&,
      const RepSubset&)>
      matrix;
  /// n-detect growth tail (OBD model only; null otherwise). The subset
  /// lists SAT-proven-untestable representatives to drop from the target
  /// set — they can never reach n detections.
  std::function<void(const CampaignOptions&, const RepSubset& sat_untestable,
                     CampaignReport&)>
      ndetect;
};

/// Builds the model context for the enhanced-scan / combinational paths:
/// view construction (+ composite lowering for OBD), validation, fault
/// enumeration and collapse, and the model hooks. Launch-on-capture scan
/// styles use a separate driver and are rejected here.
CampaignContext make_context(const logic::SequentialCircuit& seq,
                             const CampaignOptions& opt);

/// The seeded random-prepass pool, with the model's application fixup
/// (stuck-at collapses each pair to a single vector). Regenerating the
/// pool from CampaignOptions::seed is what lets checkpoints store pool
/// *indices* instead of vectors.
std::vector<atpg::TwoVectorTest> random_pool(const logic::Circuit& view,
                                             const CampaignOptions& opt);

/// FNV-1a over the packed matrix (dims + row words) — the cross-run,
/// cross-shard, cross-resume witness.
std::uint64_t hash_matrix(const atpg::DetectionMatrix& m);

/// Structure stats shared by every campaign path.
void fill_structure(const logic::Circuit& view, CampaignReport& r);

/// Copies the scheduler's aggregated cone/frontier counters into the
/// report (taken after the last fault-sim call so prepass + matrix work is
/// included).
void fill_sim_stats(const atpg::FaultSimScheduler& sched, CampaignReport& r);

/// Shared campaign tail: detection matrix over the final test set, greedy
/// compaction, and the derived report fields.
void matrix_and_compact(const CampaignOptions& opt, std::size_t n_tests,
                        const std::function<atpg::DetectionMatrix()>& build,
                        CampaignReport& r);

/// Report preamble common to run_campaign and the supervisor's merge:
/// circuit identity, model, sim configuration, scan detection.
void init_report(const logic::SequentialCircuit& seq,
                 const CampaignOptions& opt, CampaignReport& r);

}  // namespace obd::flow::detail

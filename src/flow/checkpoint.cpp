#include "flow/checkpoint.hpp"

#include <bit>
#include <cstdio>
#include <cstring>

#include "flow/inject.hpp"
#include "util/crc32c.hpp"
#include "util/io.hpp"
#include "util/prng.hpp"

namespace obd::flow {
namespace {

using atpg::DetectionMatrix;
using logic::InputVec;

constexpr char kMagic[8] = {'O', 'B', 'D', 'C', 'K', 'P', 'T', '\n'};
constexpr std::size_t kHeaderSize = 8 + 4 + 4 + 8;  // magic+version+flags+len
constexpr std::size_t kCrcSize = 4;

/// Hard sanity ceilings on decoded element counts. Every length is also
/// bounds-checked against the remaining payload bytes; these just keep a
/// hypothetical CRC-colliding forgery from requesting absurd allocations.
constexpr std::uint64_t kMaxElems = 1ull << 32;

// --- Little-endian encode/decode ----------------------------------------

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

/// Bounds-checked sequential reader: every accessor returns false instead
/// of reading past the end, and the caller turns that into a diagnostic.
class ByteReader {
 public:
  explicit ByteReader(std::string_view bytes) : p_(bytes) {}

  std::size_t remaining() const { return p_.size() - pos_; }

  bool u8(std::uint8_t* v) {
    if (remaining() < 1) return false;
    *v = static_cast<std::uint8_t>(p_[pos_++]);
    return true;
  }
  bool u32(std::uint32_t* v) {
    if (remaining() < 4) return false;
    *v = 0;
    for (int i = 0; i < 4; ++i)
      *v |= static_cast<std::uint32_t>(static_cast<unsigned char>(p_[pos_++]))
            << (8 * i);
    return true;
  }
  bool u64(std::uint64_t* v) {
    if (remaining() < 8) return false;
    *v = 0;
    for (int i = 0; i < 8; ++i)
      *v |= static_cast<std::uint64_t>(static_cast<unsigned char>(p_[pos_++]))
            << (8 * i);
    return true;
  }
  bool str(std::string* v) {
    std::uint32_t len = 0;
    if (!u32(&len) || remaining() < len) return false;
    v->assign(p_.data() + pos_, len);
    pos_ += len;
    return true;
  }
  /// Reads `count` u64 words after verifying they fit the remaining bytes.
  bool words(std::uint64_t count, std::vector<std::uint64_t>* out) {
    if (count > kMaxElems || remaining() < count * 8) return false;
    out->resize(static_cast<std::size_t>(count));
    for (auto& w : *out)
      if (!u64(&w)) return false;
    return true;
  }

 private:
  std::string_view p_;
  std::size_t pos_ = 0;
};

void put_str(std::string& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out += s;
}

void put_inputvec(std::string& out, const InputVec& v) {
  const std::size_t n = v.nwords();
  put_u32(out, static_cast<std::uint32_t>(n));
  for (std::size_t i = 0; i < n; ++i) put_u64(out, v.word(i));
}

bool get_inputvec(ByteReader& r, InputVec* v) {
  std::uint32_t n = 0;
  if (!r.u32(&n) || n == 0 || n > (1u << 20) || r.remaining() < n * 8ull)
    return false;
  *v = InputVec{};
  for (std::uint32_t i = 0; i < n; ++i) {
    std::uint64_t w = 0;
    if (!r.u64(&w)) return false;
    v->set_word(i, w);
  }
  return true;
}

void put_matrix(std::string& out, const DetectionMatrix& m) {
  put_u64(out, m.n_tests);
  put_u64(out, m.n_faults);
  put_u64(out, m.words_per_row);
  put_u64(out, static_cast<std::uint64_t>(m.covered_count));
  for (std::uint64_t w : m.rows) put_u64(out, w);
}

bool get_matrix(ByteReader& r, DetectionMatrix* m, std::string* err) {
  std::uint64_t n_tests = 0, n_faults = 0, wpr = 0, covered = 0;
  if (!r.u64(&n_tests) || !r.u64(&n_faults) || !r.u64(&wpr) ||
      !r.u64(&covered)) {
    *err = "matrix header truncated";
    return false;
  }
  if (wpr != (n_faults + 63) / 64) {
    *err = "matrix words_per_row inconsistent with fault count";
    return false;
  }
  if (n_tests > kMaxElems || wpr > kMaxElems || covered > n_faults) {
    *err = "matrix dimensions out of range";
    return false;
  }
  m->n_tests = static_cast<std::size_t>(n_tests);
  m->n_faults = static_cast<std::size_t>(n_faults);
  m->words_per_row = static_cast<std::size_t>(wpr);
  if (!r.words(n_tests * wpr, &m->rows)) {
    *err = "matrix rows truncated";
    return false;
  }
  // covered / covered_count are derived state: recompute and use the
  // stored count purely as one more integrity cross-check.
  m->covered.assign(m->n_faults, false);
  m->covered_count = 0;
  for (std::size_t f = 0; f < m->n_faults; ++f) {
    for (std::size_t t = 0; t < m->n_tests; ++t) {
      if (m->detects(t, f)) {
        m->covered[f] = true;
        ++m->covered_count;
        break;
      }
    }
  }
  if (static_cast<std::uint64_t>(m->covered_count) != covered) {
    *err = "matrix covered-count mismatch (stored " + std::to_string(covered) +
           ", recomputed " + std::to_string(m->covered_count) + ")";
    return false;
  }
  return true;
}

std::uint64_t fnv1a_bytes(std::uint64_t h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

std::uint64_t fnv1a_u64(std::uint64_t h, std::uint64_t v) {
  return fnv1a_bytes(h, &v, 8);
}

}  // namespace

const char* to_string(FaultStatus s) {
  switch (s) {
    case FaultStatus::kPending: return "pending";
    case FaultStatus::kRandomDetected: return "random-detected";
    case FaultStatus::kTestFound: return "test-found";
    case FaultStatus::kUntestable: return "untestable";
    case FaultStatus::kAbortedBacktracks: return "aborted-backtracks";
    case FaultStatus::kAbortedTime: return "aborted-time";
    case FaultStatus::kSatCube: return "sat-cube";
    case FaultStatus::kSatUntestable: return "sat-untestable";
    case FaultStatus::kSatUnknown: return "sat-unknown";
  }
  return "?";
}

std::string checkpoint_path(const std::string& dir, int shard_index) {
  char name[32];
  std::snprintf(name, sizeof name, "shard-%04d.ckpt", shard_index);
  return dir + "/" + name;
}

std::uint64_t options_fingerprint(const CampaignOptions& opt,
                                  const std::string& circuit,
                                  std::uint32_t shard_count) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  h = fnv1a_bytes(h, "obd-shard-fp-v1", 15);
  h = fnv1a_bytes(h, circuit.data(), circuit.size());
  h = fnv1a_u64(h, static_cast<std::uint64_t>(opt.model));
  h = fnv1a_u64(h, static_cast<std::uint64_t>(opt.scan_style));
  h = fnv1a_u64(h, static_cast<std::uint64_t>(opt.random_patterns));
  h = fnv1a_u64(h, opt.seed);
  h = fnv1a_u64(h, static_cast<std::uint64_t>(opt.max_backtracks));
  h = fnv1a_u64(h, std::bit_cast<std::uint64_t>(opt.podem_time_budget_s));
  h = fnv1a_u64(h, shard_count);
  return h;
}

std::string encode_checkpoint(const ShardState& s) {
  std::string payload;
  payload.reserve(256 + s.status.size() + 24 * s.det_tests.size() +
                  8 * s.local_matrix.rows.size());
  put_u64(payload, s.options_fp);
  put_str(payload, s.circuit);
  put_u32(payload, s.shard_index);
  put_u32(payload, s.shard_count);
  put_u64(payload, s.n_reps_total);
  put_u64(payload, s.pool_size);
  payload.push_back(static_cast<char>(s.phase));
  for (std::uint64_t w : s.prng_state) put_u64(payload, w);
  put_u64(payload, static_cast<std::uint64_t>(s.fault_block_evals));
  put_u64(payload, static_cast<std::uint64_t>(s.sat_conflicts));
  // Version 3: SAT decisions, restarts, and the per-fault conflict
  // histogram, immediately after the conflicts counter.
  put_u64(payload, static_cast<std::uint64_t>(s.sat_decisions));
  put_u64(payload, static_cast<std::uint64_t>(s.sat_restarts));
  for (const std::uint64_t b : s.sat_hist) put_u64(payload, b);

  put_u32(payload, static_cast<std::uint32_t>(s.useful_pool.size()));
  for (std::uint32_t t : s.useful_pool) put_u32(payload, t);

  put_u32(payload, static_cast<std::uint32_t>(s.status.size()));
  for (FaultStatus st : s.status)
    payload.push_back(static_cast<char>(st));

  put_u32(payload, static_cast<std::uint32_t>(s.det_tests.size()));
  for (const ShardDetTest& t : s.det_tests) {
    put_u32(payload, t.local_index);
    put_inputvec(payload, t.test.v1);
    put_inputvec(payload, t.test.v2);
  }

  payload.push_back(s.has_matrix ? 1 : 0);
  if (s.has_matrix) put_matrix(payload, s.local_matrix);

  std::string out;
  out.reserve(kHeaderSize + payload.size() + kCrcSize);
  out.append(kMagic, sizeof kMagic);
  put_u32(out, kCheckpointVersion);
  put_u32(out, 0);  // flags
  put_u64(out, payload.size());
  out += payload;
  put_u32(out, util::crc32c(out));
  return out;
}

bool decode_checkpoint(std::string_view bytes, ShardState* out,
                       std::string* err) {
  std::string e;
  err = err ? err : &e;

  // --- Frame validation (size, magic, version, length, CRC) -------------
  if (bytes.size() < kHeaderSize + kCrcSize) {
    *err = "checkpoint too short (" + std::to_string(bytes.size()) +
           " bytes, header needs " + std::to_string(kHeaderSize + kCrcSize) +
           ")";
    return false;
  }
  if (std::memcmp(bytes.data(), kMagic, sizeof kMagic) != 0) {
    *err = "bad checkpoint magic";
    return false;
  }
  ByteReader header(bytes.substr(sizeof kMagic));
  std::uint32_t version = 0, flags = 0;
  std::uint64_t payload_len = 0;
  header.u32(&version);
  header.u32(&flags);
  header.u64(&payload_len);
  if (version < kMinCheckpointVersion || version > kCheckpointVersion) {
    *err = "unsupported checkpoint version " + std::to_string(version) +
           " (this build reads versions " +
           std::to_string(kMinCheckpointVersion) + ".." +
           std::to_string(kCheckpointVersion) + ")";
    return false;
  }
  if (bytes.size() != kHeaderSize + payload_len + kCrcSize) {
    *err = "checkpoint length mismatch: header declares " +
           std::to_string(payload_len) + " payload bytes, file has " +
           std::to_string(bytes.size()) + " total (truncated or garbled)";
    return false;
  }
  const std::uint32_t stored_crc =
      static_cast<std::uint32_t>(
          static_cast<unsigned char>(bytes[bytes.size() - 4])) |
      static_cast<std::uint32_t>(
          static_cast<unsigned char>(bytes[bytes.size() - 3]))
          << 8 |
      static_cast<std::uint32_t>(
          static_cast<unsigned char>(bytes[bytes.size() - 2]))
          << 16 |
      static_cast<std::uint32_t>(
          static_cast<unsigned char>(bytes[bytes.size() - 1]))
          << 24;
  const std::uint32_t computed_crc =
      util::crc32c(bytes.data(), bytes.size() - kCrcSize);
  if (stored_crc != computed_crc) {
    char buf[96];
    std::snprintf(buf, sizeof buf,
                  "checkpoint crc mismatch (stored %08x, computed %08x)",
                  stored_crc, computed_crc);
    *err = buf;
    return false;
  }

  // --- Semantic decode (fully bounds-checked) ---------------------------
  ByteReader r(bytes.substr(kHeaderSize, payload_len));
  ShardState s;
  std::uint8_t phase = 0, has_matrix = 0;
  std::uint64_t evals = 0;
  std::uint32_t n_useful = 0, n_status = 0, n_det = 0;

  if (!r.u64(&s.options_fp) || !r.str(&s.circuit) || !r.u32(&s.shard_index) ||
      !r.u32(&s.shard_count) || !r.u64(&s.n_reps_total) ||
      !r.u64(&s.pool_size) || !r.u8(&phase)) {
    *err = "checkpoint payload truncated in header fields";
    return false;
  }
  for (auto& w : s.prng_state)
    if (!r.u64(&w)) {
      *err = "checkpoint payload truncated in prng state";
      return false;
    }
  if (!r.u64(&evals)) {
    *err = "checkpoint payload truncated";
    return false;
  }
  s.fault_block_evals = static_cast<long long>(evals);
  std::uint64_t sat_conflicts = 0;
  if (!r.u64(&sat_conflicts)) {
    *err = "checkpoint payload truncated in sat-conflicts field";
    return false;
  }
  s.sat_conflicts = static_cast<long long>(sat_conflicts);
  if (version >= 3) {
    std::uint64_t sat_decisions = 0, sat_restarts = 0;
    if (!r.u64(&sat_decisions) || !r.u64(&sat_restarts)) {
      *err = "checkpoint payload truncated in sat-effort fields";
      return false;
    }
    s.sat_decisions = static_cast<long long>(sat_decisions);
    s.sat_restarts = static_cast<long long>(sat_restarts);
    for (auto& b : s.sat_hist)
      if (!r.u64(&b)) {
        *err = "checkpoint payload truncated in sat histogram";
        return false;
      }
  }
  if (phase < static_cast<std::uint8_t>(ShardPhase::kPrepassDone) ||
      phase > static_cast<std::uint8_t>(ShardPhase::kDone)) {
    *err = "invalid shard phase " + std::to_string(phase);
    return false;
  }
  s.phase = static_cast<ShardPhase>(phase);
  if (s.shard_count == 0 || s.shard_index >= s.shard_count) {
    *err = "invalid shard geometry " + std::to_string(s.shard_index) + "/" +
           std::to_string(s.shard_count);
    return false;
  }

  if (!r.u32(&n_useful) || r.remaining() < n_useful * 4ull) {
    *err = "useful-pool list truncated";
    return false;
  }
  s.useful_pool.resize(n_useful);
  for (std::uint32_t i = 0; i < n_useful; ++i) {
    r.u32(&s.useful_pool[i]);
    if (s.useful_pool[i] >= s.pool_size ||
        (i > 0 && s.useful_pool[i] <= s.useful_pool[i - 1])) {
      *err = "useful-pool list not strictly increasing within the pool";
      return false;
    }
  }

  if (!r.u32(&n_status) || r.remaining() < n_status) {
    *err = "status list truncated";
    return false;
  }
  const std::size_t expect_status = ShardState::assigned_count(
      s.n_reps_total, s.shard_index, s.shard_count);
  if (n_status != expect_status) {
    *err = "status list size " + std::to_string(n_status) +
           " does not match assigned partition size " +
           std::to_string(expect_status);
    return false;
  }
  s.status.resize(n_status);
  for (std::uint32_t i = 0; i < n_status; ++i) {
    std::uint8_t b = 0;
    r.u8(&b);
    if (b > static_cast<std::uint8_t>(FaultStatus::kSatUnknown)) {
      *err = "invalid fault status byte " + std::to_string(b);
      return false;
    }
    s.status[i] = static_cast<FaultStatus>(b);
  }

  if (!r.u32(&n_det) || n_det > n_status) {
    *err = "deterministic-test list truncated or oversized";
    return false;
  }
  s.det_tests.resize(n_det);
  for (std::uint32_t i = 0; i < n_det; ++i) {
    ShardDetTest& t = s.det_tests[i];
    if (!r.u32(&t.local_index) || !get_inputvec(r, &t.test.v1) ||
        !get_inputvec(r, &t.test.v2)) {
      *err = "deterministic test " + std::to_string(i) + " truncated";
      return false;
    }
    if (t.local_index >= n_status ||
        (i > 0 && t.local_index <= s.det_tests[i - 1].local_index)) {
      *err = "deterministic tests not strictly increasing in local index";
      return false;
    }
    if (s.status[t.local_index] != FaultStatus::kTestFound &&
        s.status[t.local_index] != FaultStatus::kSatCube) {
      *err = "deterministic test for fault whose status is not test-found "
             "or sat-cube";
      return false;
    }
  }

  if (!r.u8(&has_matrix) || has_matrix > 1) {
    *err = "invalid matrix-present flag";
    return false;
  }
  s.has_matrix = has_matrix != 0;
  if (s.has_matrix && !get_matrix(r, &s.local_matrix, err)) return false;
  if (r.remaining() != 0) {
    *err = std::to_string(r.remaining()) +
           " trailing payload bytes after checkpoint fields";
    return false;
  }
  *out = std::move(s);
  return true;
}

bool save_checkpoint(const std::string& path, const ShardState& s,
                     std::string* err) {
  FaultInjector& inj = FaultInjector::instance();
  inj.visit(CrashPoint::kCheckpointSave);

  std::string bytes = encode_checkpoint(s);
  if (inj.should_corrupt() && !bytes.empty()) {
    // Flip one payload byte *after* the CRC was computed: the file commits
    // (rename succeeds) but can never validate — the corrupt-output path.
    bytes[kHeaderSize + bytes.size() % (bytes.size() - kHeaderSize - kCrcSize)]
        ^= 0x5a;
  }

  util::AtomicWriteHooks hooks;
  hooks.mid_write = [&inj](std::size_t, std::size_t) {
    inj.visit(CrashPoint::kCheckpointMidWrite);
  };
  hooks.before_rename = [&inj] {
    inj.visit(CrashPoint::kCheckpointBeforeRename);
  };
  return util::write_file_atomic(path, bytes, err,
                                 inj.active() ? &hooks : nullptr);
}

bool load_checkpoint(const std::string& path, ShardState* out,
                     std::string* err) {
  std::string bytes;
  if (!util::read_file(path, &bytes, err)) return false;
  return decode_checkpoint(bytes, out, err);
}

bool checkpoint_matches(const ShardState& s, const CampaignOptions& opt,
                        const std::string& circuit, std::uint32_t shard_index,
                        std::uint32_t shard_count, std::uint64_t n_reps_total,
                        std::uint64_t pool_size, std::string* err) {
  if (s.circuit != circuit) {
    *err = "checkpoint is for circuit '" + s.circuit + "', campaign runs '" +
           circuit + "'";
    return false;
  }
  if (s.shard_index != shard_index || s.shard_count != shard_count) {
    *err = "checkpoint shard geometry " + std::to_string(s.shard_index) + "/" +
           std::to_string(s.shard_count) + " does not match requested " +
           std::to_string(shard_index) + "/" + std::to_string(shard_count);
    return false;
  }
  if (s.options_fp != options_fingerprint(opt, circuit, shard_count)) {
    *err = "checkpoint was taken under different campaign options "
           "(fingerprint mismatch)";
    return false;
  }
  if (s.n_reps_total != n_reps_total) {
    *err = "checkpoint fault-list size " + std::to_string(s.n_reps_total) +
           " does not match circuit's " + std::to_string(n_reps_total);
    return false;
  }
  if (s.pool_size != pool_size) {
    *err = "checkpoint prepass pool size " + std::to_string(s.pool_size) +
           " does not match campaign's " + std::to_string(pool_size);
    return false;
  }
  const auto prng = util::Prng(opt.seed).state();
  for (int i = 0; i < 4; ++i) {
    if (s.prng_state[i] != prng[i]) {
      *err = "checkpoint prng state does not match campaign seed";
      return false;
    }
  }
  return true;
}

}  // namespace obd::flow

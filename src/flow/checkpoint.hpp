// Shard checkpoints: the durable unit of a crash-tolerant campaign.
//
// A sharded campaign splits the collapsed fault list into `shard_count`
// strided partitions (global fault i belongs to shard i % shard_count) and
// runs each partition as an independent process. Everything a shard learns
// is captured in a ShardState and persisted after the random prepass,
// periodically during the PODEM top-off, and at completion — so a crash,
// OOM kill, or timeout loses at most `checkpoint_every` fault searches,
// and a resumed run replays to a bit-identical merged detection matrix
// (the fault-sim layer's determinism contract makes "resume == rerun" a
// checkable property via matrix_hash).
//
// On-disk format (version 3, little-endian; version 2 added the SAT
// escalation statuses and the sat_conflicts counter; version 3 extends the
// SAT accounting with decisions, restarts, and the per-fault conflict
// histogram — version 2 files still load, with those fields zero):
//
//   magic   "OBDCKPT\n"          8 bytes
//   version u32                  kCheckpointVersion
//   flags   u32                  reserved, 0
//   length  u64                  payload byte count
//   payload length bytes         ShardState fields (ByteWriter encoding)
//   crc     u32                  CRC-32C over every preceding byte
//
// Validation is strict and layered: size/magic/version checks, exact
// declared-length match (rejects truncation and trailing garbage), CRC
// (rejects every single-byte corruption by construction), then a fully
// bounds-checked semantic decode (lengths re-validated against remaining
// bytes, enums range-checked, index lists checked strictly increasing,
// matrix covered-count recomputed and compared). A checkpoint that fails
// any step is reported with a diagnostic — never a crash, never a silent
// misparse.
//
// Writes are atomic (util::write_file_atomic: temp + fsync + rename) and
// carry the fault-injection crash points, so the torn/corrupt/stale cases
// are all reachable from tests.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "atpg/faultsim_engine.hpp"
#include "atpg/patterns.hpp"
#include "flow/campaign.hpp"

namespace obd::flow {

inline constexpr std::uint32_t kCheckpointVersion = 3;
/// Oldest on-disk version decode_checkpoint still accepts. Fields added
/// after a version are zero-initialized when loading an older file.
inline constexpr std::uint32_t kMinCheckpointVersion = 2;

/// Per-fault progress of a shard, in assigned-partition (local) order.
enum class FaultStatus : std::uint8_t {
  kPending = 0,          ///< not yet attempted
  kRandomDetected = 1,   ///< caught by the random prepass
  kTestFound = 2,        ///< PODEM produced a test (stored in det_tests)
  kUntestable = 3,       ///< PODEM proved untestable
  kAbortedBacktracks = 4,///< deterministic abort: backtrack limit
  kAbortedTime = 5,      ///< time-budget abort: re-attempted on resume
  kSatCube = 6,          ///< SAT escalation cube (stored in det_tests)
  kSatUntestable = 7,    ///< SAT escalation proved untestable
  kSatUnknown = 8,       ///< SAT conflict budget exhausted; re-escalated on
                         ///< resume when escalation is enabled
};

const char* to_string(FaultStatus s);

/// A deterministic-phase test, tagged with the local index of the assigned
/// fault it was generated for (global index = shard + local * shard_count),
/// which is what lets the merge reconstruct the one-shot test order.
struct ShardDetTest {
  std::uint32_t local_index = 0;
  atpg::TwoVectorTest test;
};

enum class ShardPhase : std::uint8_t {
  kPrepassDone = 1,   ///< random prepass committed, PODEM not started
  kPodemPartial = 2,  ///< some PODEM results committed
  kDone = 3,          ///< shard complete (local matrix included)
};

struct ShardState {
  std::string circuit;
  std::uint64_t options_fp = 0;
  std::uint32_t shard_index = 0;
  std::uint32_t shard_count = 1;
  std::uint64_t n_reps_total = 0;  ///< collapsed representatives, all shards
  std::uint64_t pool_size = 0;     ///< random-prepass pool size
  ShardPhase phase = ShardPhase::kPrepassDone;
  /// xoshiro state of Prng(seed) — a redundant witness of the seed beyond
  /// the options fingerprint (the pool itself is regenerated, not stored).
  std::array<std::uint64_t, 4> prng_state{};
  long long fault_block_evals = 0;
  /// CDCL effort spent by SAT escalation in this shard (merged into
  /// CampaignReport::sat_conflicts etc.). decisions/restarts and the
  /// per-fault conflict histogram are version-3 fields: loading a
  /// version-2 checkpoint leaves them zero.
  long long sat_conflicts = 0;
  long long sat_decisions = 0;
  long long sat_restarts = 0;
  /// Conflicts-per-escalated-fault log2 buckets (obs::log2_bucket).
  std::array<std::uint64_t, 32> sat_hist{};
  /// Prepass pool indices that first-detected some assigned fault
  /// (strictly increasing).
  std::vector<std::uint32_t> useful_pool;
  /// One status per assigned fault, local order.
  std::vector<FaultStatus> status;
  /// PODEM tests, local_index strictly increasing.
  std::vector<ShardDetTest> det_tests;
  /// Shard-local detection matrix (shard tests x assigned faults); present
  /// only in kDone checkpoints.
  bool has_matrix = false;
  atpg::DetectionMatrix local_matrix;

  /// Assigned-partition size for a strided split.
  static std::size_t assigned_count(std::uint64_t n_reps, std::uint32_t index,
                                    std::uint32_t count) {
    if (index >= n_reps) return 0;
    return static_cast<std::size_t>((n_reps - index + count - 1) / count);
  }
};

/// Canonical checkpoint file path for a shard.
std::string checkpoint_path(const std::string& dir, int shard_index);

/// Fingerprint of every option that changes shard *results* (model, scan
/// style, seed, prepass size, backtrack and time budgets, shard count,
/// circuit name). Deliberately excludes threads/packing/lanes/cone-cache
/// (bit-identical by the scheduler's contract), merge-time options
/// (compact, ndetect), and the SAT escalation options: a checkpoint taken
/// at 1 thread resumes at 8, and a PODEM-only checkpoint resumes with
/// --sat-escalate as a pure top-off over its recorded aborts.
std::uint64_t options_fingerprint(const CampaignOptions& opt,
                                  const std::string& circuit,
                                  std::uint32_t shard_count);

/// In-memory encode/decode — the unit the robustness property tests attack.
std::string encode_checkpoint(const ShardState& s);
bool decode_checkpoint(std::string_view bytes, ShardState* out,
                       std::string* err);

/// Atomic save (fault-injection crash points armed) / strict load.
bool save_checkpoint(const std::string& path, const ShardState& s,
                     std::string* err);
bool load_checkpoint(const std::string& path, ShardState* out,
                     std::string* err);

/// Does a loaded checkpoint belong to this campaign + shard? False with a
/// diagnostic on any mismatch (wrong options, wrong circuit, wrong shard
/// geometry, wrong fault-list size).
bool checkpoint_matches(const ShardState& s, const CampaignOptions& opt,
                        const std::string& circuit, std::uint32_t shard_index,
                        std::uint32_t shard_count, std::uint64_t n_reps_total,
                        std::uint64_t pool_size, std::string* err);

}  // namespace obd::flow

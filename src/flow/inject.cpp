#include "flow/inject.hpp"

#include <chrono>
#include <csignal>
#include <cstdlib>
#include <thread>

namespace obd::flow {
namespace {

/// Splits "a,b,c" into entries; empty pieces are rejected by the parser.
std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

bool parse_int(const std::string& s, int* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const long v = std::strtol(s.c_str(), &end, 10);
  if (!end || *end != '\0' || v < 0 || v > 1000000000) return false;
  *out = static_cast<int>(v);
  return true;
}

}  // namespace

const char* to_string(CrashPoint p) {
  switch (p) {
    case CrashPoint::kShardStart: return "shard-start";
    case CrashPoint::kCheckpointSave: return "checkpoint-save";
    case CrashPoint::kCheckpointMidWrite: return "checkpoint-mid-write";
    case CrashPoint::kCheckpointBeforeRename: return "checkpoint-before-rename";
    case CrashPoint::kCheckpointCorrupt: return "checkpoint-corrupt";
  }
  return "?";
}

FaultInjector& FaultInjector::instance() {
  static FaultInjector inj;
  return inj;
}

bool FaultInjector::configure(const std::string& spec, std::string* err) {
  entries_.clear();
  if (spec.empty()) return true;
  // Any parse failure leaves the injector empty: a half-installed spec
  // would make an injection test silently weaker than it claims to be.
  struct ClearOnFailure {
    std::vector<Entry>& entries;
    bool ok = false;
    ~ClearOnFailure() {
      if (!ok) entries.clear();
    }
  } guard{entries_};
  for (const std::string& raw : split(spec, ',')) {
    Entry e;
    // entry := mode ['#' occ] ['=' arg] '@' shard [':' attempt]
    const std::size_t at = raw.find('@');
    if (at == std::string::npos || at == 0 || at + 1 >= raw.size()) {
      if (err) *err = "inject entry '" + raw + "': expected mode@shard";
      return false;
    }
    std::string mode = raw.substr(0, at);
    std::string target = raw.substr(at + 1);

    const std::size_t eq = mode.find('=');
    std::string arg;
    if (eq != std::string::npos) {
      arg = mode.substr(eq + 1);
      mode = mode.substr(0, eq);
    }
    const std::size_t hash = mode.find('#');
    if (hash != std::string::npos) {
      if (!parse_int(mode.substr(hash + 1), &e.occurrence) ||
          e.occurrence < 1) {
        if (err) *err = "inject entry '" + raw + "': bad occurrence";
        return false;
      }
      mode = mode.substr(0, hash);
    }

    if (mode == "abort-before-rename") {
      e.point = CrashPoint::kCheckpointBeforeRename;
    } else if (mode == "abort-mid-write") {
      e.point = CrashPoint::kCheckpointMidWrite;
    } else if (mode == "corrupt-crc") {
      e.point = CrashPoint::kCheckpointCorrupt;
    } else if (mode == "sigkill") {
      e.point = CrashPoint::kCheckpointSave;
    } else if (mode == "delay") {
      e.point = CrashPoint::kShardStart;
      if (!parse_int(arg, &e.arg_ms)) {
        if (err) *err = "inject entry '" + raw + "': delay needs =MS";
        return false;
      }
    } else {
      if (err) *err = "inject entry '" + raw + "': unknown mode '" + mode + "'";
      return false;
    }
    if (mode != "delay" && !arg.empty()) {
      if (err) *err = "inject entry '" + raw + "': '" + mode + "' takes no =arg";
      return false;
    }
    // Keep the mode name alive for diagnostics (static strings only).
    e.mode = mode == "abort-before-rename" ? "abort-before-rename"
             : mode == "abort-mid-write"   ? "abort-mid-write"
             : mode == "corrupt-crc"       ? "corrupt-crc"
             : mode == "sigkill"           ? "sigkill"
                                           : "delay";

    const std::size_t colon = target.find(':');
    std::string shard_s = target.substr(0, colon);
    if (shard_s == "*") {
      e.shard = -1;
    } else if (!parse_int(shard_s, &e.shard)) {
      if (err) *err = "inject entry '" + raw + "': bad shard '" + shard_s + "'";
      return false;
    }
    if (colon != std::string::npos) {
      const std::string att = target.substr(colon + 1);
      if (att == "*") {
        e.attempt = -1;
      } else if (!parse_int(att, &e.attempt)) {
        if (err) *err = "inject entry '" + raw + "': bad attempt '" + att + "'";
        return false;
      }
    }
    entries_.push_back(e);
  }
  guard.ok = true;
  return true;
}

void FaultInjector::set_context(int shard_index, int attempt) {
  shard_ = shard_index;
  attempt_ = attempt;
  for (Entry& e : entries_) {
    e.visits = 0;
    e.fired = false;
  }
}

void FaultInjector::fire(Entry& e) {
  e.fired = true;
  if (e.point == CrashPoint::kShardStart) {  // delay: stall, don't die
    std::this_thread::sleep_for(std::chrono::milliseconds(e.arg_ms));
    return;
  }
  if (in_process_) throw InjectedCrash{e.point, e.mode};
  if (e.point == CrashPoint::kCheckpointSave) {
    std::raise(SIGKILL);  // never returns
  }
  // Crash without atexit handlers or stream flushing — as close to a real
  // kill as a clean-room exit gets. 70 == EX_SOFTWARE.
  std::_Exit(70);
}

void FaultInjector::visit(CrashPoint p) {
  for (Entry& e : entries_) {
    if (e.fired || e.point != p) continue;
    if (e.point == CrashPoint::kCheckpointCorrupt) continue;  // should_corrupt
    if (e.shard >= 0 && e.shard != shard_) continue;
    if (e.attempt >= 0 && e.attempt != attempt_) continue;
    if (++e.visits < e.occurrence) continue;
    fire(e);
  }
}

bool FaultInjector::should_corrupt() {
  // Unlike the crash entries, corruption stays armed for the rest of the
  // matching context: later saves would otherwise overwrite the corrupted
  // file with a valid one and the loader would never see it.
  for (Entry& e : entries_) {
    if (e.point != CrashPoint::kCheckpointCorrupt) continue;
    if (e.shard >= 0 && e.shard != shard_) continue;
    if (e.attempt >= 0 && e.attempt != attempt_) continue;
    if (++e.visits < e.occurrence) continue;
    return true;
  }
  return false;
}

void FaultInjector::reset() {
  entries_.clear();
  shard_ = -1;
  attempt_ = 0;
  in_process_ = false;
}

}  // namespace obd::flow

// Deterministic fault injection for the crash-tolerant campaign layer.
//
// Every recovery path the supervisor promises (crash retry, torn-file
// rejection, corrupt-checkpoint retry, watchdog timeout, poison-shard
// quarantine) is exercised in tests and CI by *injecting* the failure at a
// named crash point instead of hoping for it. The spec comes from the
// `--inject` CLI option or the FLOW_FAULT_INJECT environment variable:
//
//   spec     := entry (',' entry)*
//   entry    := mode ['#' occurrence] ['=' arg] '@' shard [':' attempt]
//   mode     := abort-before-rename   crash after the checkpoint temp file
//                                     is written+fsynced, before the rename
//             | abort-mid-write       crash with a half-written temp file
//             | corrupt-crc           flip one payload byte after the CRC
//                                     is computed (write completes; the
//                                     loader must reject the file)
//             | sigkill               raise SIGKILL on entering a
//                                     checkpoint save (OOM-killer stand-in)
//             | delay=MS              sleep MS milliseconds at shard start
//                                     (drives the watchdog timeout)
//   occurrence: 1-based index of the matching crash-point visit that fires
//               (default 1 — e.g. sigkill#2 dies at the second checkpoint
//               save, after real progress has been committed)
//   shard    := decimal shard index, or '*' for any shard
//   attempt  := decimal attempt number, '*' for every attempt (a poison
//               shard that exhausts its retries), default 0 (first attempt
//               only, so the supervisor's retry recovers)
//
// Example: "abort-mid-write@1,delay=1500@2:*" — shard 1's first attempt
// dies mid-checkpoint-write; shard 2 stalls past the watchdog on every
// attempt and ends quarantined.
//
// The injector is process-global (shard processes are single-campaign by
// construction). In process mode crashes are real (_Exit / raise); the
// in-process mode used by unit tests throws InjectedCrash instead, which
// the in-process supervisor executor catches and classifies exactly like a
// child-process death.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace obd::flow {

enum class CrashPoint : std::uint8_t {
  kShardStart,            ///< entering a shard run (delay fires here)
  kCheckpointSave,        ///< entering save_checkpoint (sigkill fires here)
  kCheckpointMidWrite,    ///< half the checkpoint bytes written
  kCheckpointBeforeRename,///< temp durable, rename not yet committed
  kCheckpointCorrupt,     ///< payload byte flip after CRC (not a crash)
};

const char* to_string(CrashPoint p);

/// Thrown by in-process-mode crash actions (abort-* / sigkill entries).
struct InjectedCrash {
  CrashPoint point;
  const char* mode;
};

class FaultInjector {
 public:
  static FaultInjector& instance();

  /// Parses and installs a spec; "" clears. False + diagnostic on a
  /// malformed spec (a typo must not silently disable an injection test).
  bool configure(const std::string& spec, std::string* err);
  /// Which (shard, attempt) this process/run is executing; entries only
  /// fire when they match. Resets the per-entry occurrence counters.
  void set_context(int shard_index, int attempt);
  /// In-process mode throws InjectedCrash instead of killing the process.
  void set_in_process(bool in_process) { in_process_ = in_process; }

  /// Fires any armed crash/delay entry for this point (counting one visit),
  /// then disarms it for the current context. May not return (process
  /// mode) or may throw InjectedCrash (in-process mode).
  void visit(CrashPoint p);
  /// Like visit for the corrupt-crc entry: returns true when this save's
  /// payload should be corrupted. Stays armed from the configured
  /// occurrence to the end of the matching (shard, attempt) context, so
  /// the final checkpoint of the attempt really is corrupt on disk.
  bool should_corrupt();

  bool active() const { return !entries_.empty(); }
  void reset();

 private:
  struct Entry {
    CrashPoint point = CrashPoint::kShardStart;
    const char* mode = "";
    int occurrence = 1;  // 1-based visit index that fires
    int arg_ms = 0;      // delay argument
    int shard = -1;      // -1 = any
    int attempt = 0;     // -1 = every attempt
    int visits = 0;      // matching visits so far in the current context
    bool fired = false;
  };

  void fire(Entry& e);

  std::vector<Entry> entries_;
  int shard_ = -1;
  int attempt_ = 0;
  bool in_process_ = false;
};

}  // namespace obd::flow

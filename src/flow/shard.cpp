#include "flow/shard.hpp"

#include <algorithm>
#include <chrono>
#include <filesystem>

#include "flow/campaign_detail.hpp"
#include "flow/inject.hpp"
#include "obs/metrics.hpp"
#include "obs/progress.hpp"
#include "obs/trace.hpp"
#include "util/prng.hpp"

namespace obd::flow {
namespace {

using namespace obd::atpg;

ShardRunResult fail(ShardRunStatus status, std::string error) {
  ShardRunResult r;
  r.status = status;
  r.error = std::move(error);
  return r;
}

/// Keeps det_tests sorted by local_index (resume can revisit a
/// time-budget abort whose index precedes already-committed tests).
void insert_det_test(std::vector<ShardDetTest>& det, std::uint32_t local,
                     const TwoVectorTest& test) {
  const auto pos = std::lower_bound(
      det.begin(), det.end(), local,
      [](const ShardDetTest& d, std::uint32_t l) { return d.local_index < l; });
  det.insert(pos, ShardDetTest{local, test});
}

/// Snapshot of a shard's fault statuses for a heartbeat record. A fault is
/// "resolved" once it left kPending (kSatUnknown counts: the budget was
/// spent even though resume may reopen it).
obs::Heartbeat make_heartbeat(const ShardState& s, const ShardRunOptions& sopt,
                              const char* phase, long long ckpt_seq,
                              std::chrono::steady_clock::time_point t0) {
  obs::Heartbeat hb;
  hb.shard = static_cast<int>(sopt.shard_index);
  hb.phase = phase;
  hb.assigned = static_cast<long long>(s.status.size());
  for (const FaultStatus st : s.status) {
    if (st != FaultStatus::kPending) ++hb.resolved;
    if (st == FaultStatus::kRandomDetected || st == FaultStatus::kTestFound ||
        st == FaultStatus::kSatCube)
      ++hb.detected;
    else if (st == FaultStatus::kAbortedBacktracks ||
             st == FaultStatus::kAbortedTime || st == FaultStatus::kSatUnknown)
      ++hb.aborted;
  }
  hb.coverage = hb.assigned > 0
                    ? static_cast<double>(hb.detected) /
                          static_cast<double>(hb.assigned)
                    : 0.0;
  hb.ckpt_seq = ckpt_seq;
  hb.elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  hb.ts_us = std::chrono::duration_cast<std::chrono::microseconds>(
                 std::chrono::system_clock::now().time_since_epoch())
                 .count();
  return hb;
}

}  // namespace

ShardRunResult run_campaign_shard(const logic::SequentialCircuit& seq,
                                  const CampaignOptions& opt,
                                  const ShardRunOptions& sopt) {
  FaultInjector& inj = FaultInjector::instance();
  inj.visit(CrashPoint::kShardStart);  // delay entries stall here

  if (sopt.checkpoint_dir.empty())
    return fail(ShardRunStatus::kError, "shard mode needs a checkpoint dir");
  if (sopt.shard_count == 0 || sopt.shard_index >= sopt.shard_count)
    return fail(ShardRunStatus::kError,
                "invalid shard " + std::to_string(sopt.shard_index) + "/" +
                    std::to_string(sopt.shard_count));
  if (opt.ndetect > 0)
    return fail(ShardRunStatus::kError,
                "--ndetect is a whole-campaign construct; not available in "
                "shard mode");
  if (opt.seed_sat_cubes)
    return fail(ShardRunStatus::kError,
                "--seed-sat-cubes feeds earlier escalation cubes to later "
                "faults, which crosses shard boundaries; not available in "
                "shard mode");
  if (!seq.flops().empty() && opt.scan_style != ScanMode::kEnhanced)
    return fail(ShardRunStatus::kError,
                "launch-on-capture scan styles cannot be sharded "
                "(--scan-style enhanced only)");

  const detail::CampaignContext ctx = detail::make_context(seq, opt);
  if (!ctx.error.empty()) return fail(ShardRunStatus::kError, ctx.error);

  const std::string circuit = seq.core().name();
  const std::size_t assigned = ShardState::assigned_count(
      ctx.n_reps, sopt.shard_index, sopt.shard_count);
  const std::vector<TwoVectorTest> pool = detail::random_pool(ctx.view, opt);
  const std::string path =
      checkpoint_path(sopt.checkpoint_dir, static_cast<int>(sopt.shard_index));
  auto global_of = [&](std::uint32_t local) {
    return sopt.shard_index + local * sopt.shard_count;
  };

  ShardState s;
  std::string err;
  bool have_state = false;
  if (sopt.resume && std::filesystem::exists(path)) {
    if (!load_checkpoint(path, &s, &err))
      return fail(ShardRunStatus::kBadCheckpoint, path + ": " + err);
    if (!checkpoint_matches(s, opt, circuit, sopt.shard_index,
                            sopt.shard_count, ctx.n_reps, pool.size(), &err))
      return fail(ShardRunStatus::kBadCheckpoint, path + ": " + err);
    have_state = true;
  }

  const auto t0 = std::chrono::steady_clock::now();
  long long ckpt_seq = 0;
  obs::ProgressWriter progress(sopt.progress_path, sopt.progress_interval_s);
  auto flush = [&](ShardPhase phase) {
    s.phase = phase;
    if (!save_checkpoint(path, s, &err)) return false;
    ++ckpt_seq;
    return true;
  };

  FaultSimScheduler sched(ctx.view, opt.sim);

  if (!have_state) {
    s.circuit = circuit;
    s.options_fp = options_fingerprint(opt, circuit, sopt.shard_count);
    s.shard_index = sopt.shard_index;
    s.shard_count = sopt.shard_count;
    s.n_reps_total = ctx.n_reps;
    s.pool_size = pool.size();
    s.prng_state = util::Prng(opt.seed).state();
    s.status.assign(assigned, FaultStatus::kPending);

    // Random prepass over the assigned partition only. first_test[j] is
    // the same value the one-shot campaign computes for this fault, so
    // the useful-test marks merge losslessly across shards.
    if (!pool.empty() && assigned > 0) {
      const obs::Span span("prepass", "shard");
      detail::RepSubset subset(assigned);
      for (std::size_t j = 0; j < assigned; ++j)
        subset[j] = global_of(static_cast<std::uint32_t>(j));
      const FaultSimEngine::Campaign campaign =
          ctx.prepass(sched, pool, subset);
      s.fault_block_evals = campaign.fault_block_evals;
      const PrepassMarks marks =
          mark_first_detections(campaign, pool.size());
      for (std::size_t j = 0; j < assigned; ++j)
        if (marks.skip[j]) s.status[j] = FaultStatus::kRandomDetected;
      for (std::size_t t = 0; t < pool.size(); ++t)
        if (marks.useful[t])
          s.useful_pool.push_back(static_cast<std::uint32_t>(t));
    }
    if (!flush(ShardPhase::kPrepassDone))
      return fail(ShardRunStatus::kError, path + ": " + err);
    progress.emit(make_heartbeat(s, sopt, "prepass", ckpt_seq, t0));
  } else {
    // Re-attempt time-budget aborts: they are load-dependent, not proofs.
    // With SAT escalation enabled, backtrack aborts (and stale sat-unknown
    // verdicts) also reopen — straight to the SAT backend, no PODEM redo —
    // so a PODEM-only checkpoint resumes into a provable-coverage run.
    bool reopened = false;
    for (FaultStatus& st : s.status) {
      if (st == FaultStatus::kAbortedTime) {
        st = FaultStatus::kPending;
        reopened = true;
      } else if (opt.sat_escalate && (st == FaultStatus::kAbortedBacktracks ||
                                      st == FaultStatus::kSatUnknown)) {
        st = FaultStatus::kSatUnknown;  // marker: SAT-only re-attempt below
        reopened = true;
      }
    }
    if (!reopened && s.phase == ShardPhase::kDone && s.has_matrix) {
      ShardRunResult done;
      done.status = ShardRunStatus::kDone;
      done.state = std::move(s);
      return done;
    }
    // The matrix (if any) predates the faults we are about to re-attempt.
    s.has_matrix = false;
    s.local_matrix = DetectionMatrix{};
  }

  // Deterministic top-off over the assigned survivors, committing a
  // checkpoint every checkpoint_every results and on the stop flag.
  obs::Span topoff_span("topoff", "shard");
  int since_flush = 0;
  for (std::uint32_t j = 0; j < s.status.size(); ++j) {
    if (sopt.stop && *sopt.stop) {
      if (!flush(ShardPhase::kPodemPartial))
        return fail(ShardRunStatus::kError, path + ": " + err);
      ShardRunResult out;
      out.status = ShardRunStatus::kInterrupted;
      out.error = "interrupted; progress checkpointed to " + path;
      out.state = std::move(s);
      return out;
    }
    const bool sat_retry = opt.sat_escalate && ctx.escalate &&
                           s.status[j] == FaultStatus::kSatUnknown;
    if (s.status[j] != FaultStatus::kPending && !sat_retry) continue;
    const auto escalate = [&](std::uint32_t local) {
      const sat::SatAtpgResult sr = ctx.escalate(global_of(local));
      s.sat_conflicts += sr.conflicts;
      s.sat_decisions += sr.decisions;
      s.sat_restarts += sr.restarts;
      ++s.sat_hist[static_cast<std::size_t>(
          obs::log2_bucket(static_cast<std::uint64_t>(sr.conflicts)))];
      switch (sr.verdict) {
        case sat::SatVerdict::kCube:
          s.status[local] = FaultStatus::kSatCube;
          insert_det_test(s.det_tests, local, sr.cube.concrete());
          break;
        case sat::SatVerdict::kUntestable:
          s.status[local] = FaultStatus::kSatUntestable;
          break;
        case sat::SatVerdict::kUnknown:
          s.status[local] = FaultStatus::kSatUnknown;
          break;
      }
    };
    if (sat_retry) {
      // Reopened backtrack-abort: PODEM's verdict is deterministic and
      // final, so go straight to the SAT backend.
      escalate(j);
    } else {
      const TwoFrameResult res = ctx.generate(global_of(j));
      switch (res.status) {
        case PodemStatus::kFound:
          s.status[j] = FaultStatus::kTestFound;
          insert_det_test(s.det_tests, j, res.test);
          break;
        case PodemStatus::kUntestable:
          s.status[j] = FaultStatus::kUntestable;
          break;
        case PodemStatus::kAborted:
          if (res.reason == AbortReason::kTime) {
            s.status[j] = FaultStatus::kAbortedTime;
          } else if (opt.sat_escalate && ctx.escalate) {
            escalate(j);
          } else {
            s.status[j] = FaultStatus::kAbortedBacktracks;
          }
          break;
      }
    }
    if (++since_flush >= std::max(1, sopt.checkpoint_every)) {
      if (!flush(ShardPhase::kPodemPartial))
        return fail(ShardRunStatus::kError, path + ": " + err);
      since_flush = 0;
    }
    progress.maybe_emit(make_heartbeat(s, sopt, "topoff", ckpt_seq, t0));
  }
  topoff_span.close();

  // Shard-local detection matrix: this shard's tests against its assigned
  // faults — the packed rows the checkpoint carries for the final state.
  progress.emit(make_heartbeat(s, sopt, "matrix", ckpt_seq, t0));
  obs::Span matrix_span("matrix", "shard");
  std::vector<TwoVectorTest> tests;
  tests.reserve(s.useful_pool.size() + s.det_tests.size());
  for (const std::uint32_t t : s.useful_pool) tests.push_back(pool[t]);
  for (const ShardDetTest& d : s.det_tests) tests.push_back(d.test);
  if (assigned > 0) {
    detail::RepSubset subset(assigned);
    for (std::size_t j = 0; j < assigned; ++j)
      subset[j] = global_of(static_cast<std::uint32_t>(j));
    s.local_matrix = ctx.matrix(sched, tests, subset);
  } else {
    s.local_matrix = DetectionMatrix{};
  }
  s.has_matrix = true;
  matrix_span.close();
  if (!flush(ShardPhase::kDone))
    return fail(ShardRunStatus::kError, path + ": " + err);
  progress.emit(make_heartbeat(s, sopt, "done", ckpt_seq, t0));

  ShardRunResult out;
  out.status = ShardRunStatus::kDone;
  out.state = std::move(s);
  return out;
}

}  // namespace obd::flow

// Per-shard campaign executor: one strided fault partition, checkpointed.
//
// A shard owns the collapsed representatives with global index ≡ shard_index
// (mod shard_count). It replays the campaign pipeline on just those faults —
// random prepass, deterministic top-off, shard-local detection matrix —
// committing a checkpoint after the prepass, every `checkpoint_every` PODEM
// results, and at completion. Because first detections are independent of
// which other faults are co-simulated (the scheduler's determinism
// contract), the supervisor can merge shard checkpoints back into the
// exact one-shot campaign result.
//
// This is the unit of crash tolerance: run as a child process by the shard
// supervisor (obd_atpg --shard i/n) or in-process by tests. A SIGINT/
// SIGTERM stop flag interrupts between fault searches after flushing a
// valid checkpoint, so an interrupted shard loses no committed work.
#pragma once

#include <csignal>
#include <cstdint>
#include <string>

#include "flow/campaign.hpp"
#include "flow/checkpoint.hpp"
#include "logic/sequential.hpp"

namespace obd::flow {

struct ShardRunOptions {
  std::string checkpoint_dir;  ///< required; created by the supervisor/CLI
  std::uint32_t shard_index = 0;
  std::uint32_t shard_count = 1;
  /// Load an existing checkpoint and continue. A missing file starts
  /// fresh; an invalid or mismatched file is kBadCheckpoint (the
  /// supervisor deletes it and retries from scratch).
  bool resume = false;
  /// PODEM results between periodic checkpoint flushes — the most work a
  /// crash can lose.
  int checkpoint_every = 64;
  /// Polled between fault searches; set by a signal handler. When it goes
  /// nonzero the shard flushes a checkpoint and returns kInterrupted.
  const volatile std::sig_atomic_t* stop = nullptr;
  /// Heartbeat NDJSON file (append-only). Empty disables heartbeats. The
  /// supervisor points every child at progress-<i>.ndjson under the
  /// checkpoint dir and uses file growth as its liveness signal.
  std::string progress_path;
  /// Seconds between throttled heartbeats; <= 0 emits on every poll site.
  double progress_interval_s = 1.0;
};

enum class ShardRunStatus {
  kDone,           ///< shard complete, kDone checkpoint committed
  kInterrupted,    ///< stop flag seen; partial checkpoint committed
  kBadCheckpoint,  ///< resume requested but the checkpoint is invalid
  kError,          ///< preamble/configuration/I-O failure (see error)
};

struct ShardRunResult {
  ShardRunStatus status = ShardRunStatus::kError;
  std::string error;
  ShardState state;  ///< the final committed state (kDone / kInterrupted)
};

/// Runs (or resumes) one shard. Enhanced-scan / combinational campaigns
/// only: launch-on-capture styles and n-detect growth are whole-campaign
/// constructs and are rejected. Fault-injection crash points fire inside
/// (checkpoint saves, shard start) — in process mode this function may not
/// return; in in-process mode it may throw InjectedCrash.
ShardRunResult run_campaign_shard(const logic::SequentialCircuit& seq,
                                  const CampaignOptions& opt,
                                  const ShardRunOptions& sopt);

}  // namespace obd::flow

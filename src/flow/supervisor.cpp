#include "flow/supervisor.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <thread>

#include <fstream>
#include <sstream>

#include "flow/campaign_detail.hpp"
#include "flow/checkpoint.hpp"
#include "flow/inject.hpp"
#include "flow/shard.hpp"
#include "obs/log.hpp"
#include "obs/progress.hpp"
#include "obs/trace.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define OBD_POSIX_SPAWN 1
#include <csignal>
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace obd::flow {
namespace {

using namespace obd::atpg;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

double backoff_seconds(const SupervisorOptions& sup, int retry) {
  double d = sup.backoff_base_s;
  for (int k = 1; k < retry; ++k) d *= 2.0;
  return std::min(d, sup.backoff_cap_s);
}

void remove_checkpoint(const std::string& dir, int shard) {
  std::error_code ec;
  const std::string p = checkpoint_path(dir, shard);
  std::filesystem::remove(p, ec);
  std::filesystem::remove(p + ".tmp", ec);
}

/// Deterministic merge: the union of shard useful-test marks reproduces
/// the one-shot prepass test list (first detections are independent of the
/// fault partition), the deterministic tests interleave back into global
/// representative order, and the matrix is rebuilt over the merged tests
/// against ALL representatives — bit-identical to the one-shot campaign
/// when every shard completed.
void merge_states(const detail::CampaignContext& ctx,
                  const CampaignOptions& opt,
                  const std::vector<TwoVectorTest>& pool,
                  const std::vector<const ShardState*>& states,
                  std::uint32_t shard_count, CampaignReport& r) {
  const auto t_total = Clock::now();
  r.faults_total = ctx.faults_total;
  r.faults_collapsed = ctx.n_reps;
  r.time.collapse_s = ctx.collapse_s;
  if (ctx.n_reps == 0) {
    r.coverage = 1.0;
    r.provable_coverage = 1.0;
    r.time.total_s = seconds_since(t_total) + ctx.collapse_s;
    return;
  }

  // Pool tests that first-detected a fault in any shard, in pool order.
  std::vector<std::uint32_t> useful;
  for (const ShardState* s : states)
    useful.insert(useful.end(), s->useful_pool.begin(), s->useful_pool.end());
  std::sort(useful.begin(), useful.end());
  useful.erase(std::unique(useful.begin(), useful.end()), useful.end());

  // Deterministic tests back in global representative order.
  struct DetEntry {
    std::uint64_t global;
    TwoVectorTest test;
  };
  std::vector<DetEntry> det;
  for (const ShardState* s : states)
    for (const ShardDetTest& d : s->det_tests)
      det.push_back({s->shard_index +
                         static_cast<std::uint64_t>(d.local_index) *
                             shard_count,
                     d.test});
  std::sort(det.begin(), det.end(),
            [](const DetEntry& a, const DetEntry& b) {
              return a.global < b.global;
            });

  std::vector<TwoVectorTest> tests;
  tests.reserve(useful.size() + det.size());
  for (const std::uint32_t t : useful) tests.push_back(pool[t]);
  for (const DetEntry& d : det) tests.push_back(d.test);
  r.tests_random = static_cast<int>(useful.size());
  r.tests_deterministic = static_cast<int>(det.size());

  std::vector<std::uint64_t> aborted_globals;
  for (const ShardState* s : states) {
    r.fault_block_evals += s->fault_block_evals;
    r.sat_conflicts += s->sat_conflicts;
    r.sat_decisions += s->sat_decisions;
    r.sat_restarts += s->sat_restarts;
    for (std::size_t k = 0; k < s->sat_hist.size(); ++k)
      r.sat_conflicts_hist[k] += s->sat_hist[k];
    for (std::size_t j = 0; j < s->status.size(); ++j) {
      const auto record_abort = [&] {
        ++r.aborted;
        aborted_globals.push_back(s->shard_index + j * shard_count);
      };
      switch (s->status[j]) {
        case FaultStatus::kUntestable: ++r.untestable; break;
        case FaultStatus::kAbortedBacktracks:
          record_abort();
          ++r.aborted_backtracks;
          break;
        case FaultStatus::kAbortedTime:
          record_abort();
          ++r.aborted_time;
          break;
        case FaultStatus::kSatCube: ++r.sat_detected; break;
        case FaultStatus::kSatUntestable: ++r.sat_untestable; break;
        case FaultStatus::kSatUnknown:
          // Budget-exhausted escalation: still an unresolved backtrack
          // abort from the campaign's point of view.
          ++r.sat_unknown;
          record_abort();
          ++r.aborted_backtracks;
          break;
        default: break;
      }
    }
  }
  // Shards visit faults in shard-major order; canonicalize to the
  // ascending-representative order the one-shot path emits.
  std::sort(aborted_globals.begin(), aborted_globals.end());
  if (ctx.rep_name)
    for (const std::uint64_t g : aborted_globals)
      r.aborted_faults.push_back(ctx.rep_name(static_cast<std::uint32_t>(g)));

  FaultSimScheduler sched(ctx.view, opt.sim);
  detail::matrix_and_compact(opt, tests.size(),
                             [&] { return ctx.matrix(sched, tests, {}); }, r);
  detail::fill_sim_stats(sched, r);
  r.coverage = static_cast<double>(r.detected) /
               static_cast<double>(ctx.n_reps);
  const std::size_t provable =
      ctx.n_reps - static_cast<std::size_t>(r.untestable + r.sat_untestable);
  r.provable_coverage =
      provable == 0 ? 1.0
                    : static_cast<double>(r.detected) /
                          static_cast<double>(provable);
  r.time.total_s = seconds_since(t_total) + ctx.collapse_s;
}

/// One {"event":"status",...} NDJSON line on stderr, aggregated from the
/// latest heartbeat of every shard. Machine-parseable: CI and wrappers can
/// tail stderr for live coverage and the ETA.
void emit_status_line(const SupervisorOptions& sup, Clock::time_point t0) {
  long long resolved = 0, assigned = 0, detected = 0;
  int reporting = 0, done = 0;
  for (int i = 0; i < sup.shards; ++i) {
    obs::Heartbeat hb;
    if (!obs::read_last_heartbeat(obs::progress_path(sup.checkpoint_dir, i),
                                  hb))
      continue;
    ++reporting;
    resolved += hb.resolved;
    assigned += hb.assigned;
    detected += hb.detected;
    if (hb.phase == "done") ++done;
  }
  const double elapsed = seconds_since(t0);
  const double eta = obs::eta_seconds(resolved, assigned, elapsed);
  std::fprintf(stderr,
               "{\"event\":\"status\",\"shards\":%d,\"reporting\":%d,"
               "\"done\":%d,\"resolved\":%lld,\"assigned\":%lld,"
               "\"detected\":%lld,\"coverage\":%.6f,\"elapsed_s\":%.3f,"
               "\"eta_s\":%.3f}\n",
               sup.shards, reporting, done, resolved, assigned, detected,
               assigned > 0 ? static_cast<double>(detected) /
                                  static_cast<double>(assigned)
                            : 0.0,
               elapsed, eta);
}

/// Parses the NDJSON trace fragments the shard children wrote and appends
/// their events to the global recorder: one stitched multi-process trace.
void stitch_trace_fragments(const SupervisorOptions& sup) {
  if (!obs::tracing_on()) return;
  obs::Recorder& rec = obs::Recorder::instance();
  for (int i = 0; i < sup.shards; ++i) {
    const std::string path = trace_fragment_path(sup.checkpoint_dir, i);
    std::ifstream in(path);
    if (!in) continue;
    std::size_t appended = 0, skipped = 0;
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      obs::TraceEvent ev;
      if (parse_event_line(line, ev)) {
        rec.append(std::move(ev));
        ++appended;
      } else {
        ++skipped;
      }
    }
    if (skipped > 0)
      obs::logf(obs::LogLevel::kWarn,
                "trace fragment %s: skipped %zu malformed line(s)",
                path.c_str(), skipped);
    obs::logf(obs::LogLevel::kDebug, "stitched %zu trace event(s) from %s",
              appended, path.c_str());
  }
}

#ifdef OBD_POSIX_SPAWN

/// Forks + execs one shard attempt. The injection spec and attempt number
/// travel via environment so no argv quoting is needed.
pid_t spawn_shard(const SupervisorOptions& sup, const CampaignOptions& opt,
                  int shard, int attempt) {
  std::vector<std::string> args = {
      sup.child_exe,
      sup.circuit_path,
      "--quiet",
      "--shard",
      std::to_string(shard) + "/" + std::to_string(sup.shards),
      "--checkpoint-dir",
      sup.checkpoint_dir,
      "--resume",
      "--model",
      to_string(opt.model),
      "--random",
      std::to_string(opt.random_patterns),
      "--seed",
      std::to_string(opt.seed),
      "--backtracks",
      std::to_string(opt.max_backtracks),
      "--threads",
      std::to_string(opt.sim.threads),
  };
  if (opt.podem_time_budget_s > 0.0) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", opt.podem_time_budget_s);
    args.push_back("--podem-time");
    args.push_back(buf);
  }
  if (opt.sim.delta_goods != atpg::DeltaGoods::kOff) {
    args.push_back("--delta-goods");
    args.push_back(atpg::to_string(opt.sim.delta_goods));
  }
  if (opt.sat_escalate) {
    args.push_back("--sat-escalate");
    args.push_back("--sat-conflict-budget");
    args.push_back(std::to_string(opt.sat_conflict_budget));
    if (!opt.sat_incremental) {
      args.push_back("--sat-incremental");
      args.push_back("off");
    }
  }
  if (sup.trace) {
    args.push_back("--trace");
    args.push_back(trace_fragment_path(sup.checkpoint_dir, shard));
  }
  if (sup.progress) {
    args.push_back("--progress");
    args.push_back("--progress-interval");
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", sup.progress_interval_s);
    args.push_back(buf);
  }

  const pid_t pid = fork();
  if (pid != 0) return pid;  // parent (or fork failure, pid < 0)

  if (!sup.inject_spec.empty())
    setenv("FLOW_FAULT_INJECT", sup.inject_spec.c_str(), 1);
  setenv("FLOW_SHARD_ATTEMPT", std::to_string(attempt).c_str(), 1);
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (std::string& a : args) argv.push_back(a.data());
  argv.push_back(nullptr);
  execv(sup.child_exe.c_str(), argv.data());
  std::_Exit(127);  // exec failed
}

#endif  // OBD_POSIX_SPAWN

}  // namespace

std::string trace_fragment_path(const std::string& checkpoint_dir,
                                int shard) {
  return checkpoint_dir + "/trace-shard-" + std::to_string(shard) + ".ndjson";
}

const char* to_string(ShardOutcome o) {
  switch (o) {
    case ShardOutcome::kClean: return "clean";
    case ShardOutcome::kCrash: return "crash";
    case ShardOutcome::kTimeout: return "timeout";
    case ShardOutcome::kCorrupt: return "corrupt-output";
    case ShardOutcome::kInterrupted: return "interrupted";
  }
  return "?";
}

SupervisorResult run_supervised_campaign(const logic::SequentialCircuit& seq,
                                         const CampaignOptions& opt,
                                         const SupervisorOptions& sup) {
  SupervisorResult res;
  CampaignReport& r = res.report;
  detail::init_report(seq, opt, r);
  if (r.scan) r.scan_style = to_string(ScanMode::kEnhanced);

  if (sup.shards < 1) {
    r.error = "--shards needs a positive shard count";
    return res;
  }
  if (sup.checkpoint_dir.empty()) {
    r.error = "sharded campaigns need --checkpoint-dir";
    return res;
  }
  if (opt.ndetect > 0) {
    r.error = "--ndetect is not supported with sharded campaigns";
    return res;
  }
  if (opt.seed_sat_cubes) {
    r.error = "--seed-sat-cubes is not supported with sharded campaigns";
    return res;
  }
  if (r.scan && opt.scan_style != ScanMode::kEnhanced) {
    r.error = "launch-on-capture scan styles cannot be sharded";
    return res;
  }
  if (!sup.in_process) {
#ifndef OBD_POSIX_SPAWN
    r.error = "subprocess shard supervision needs a POSIX platform "
              "(use in_process mode)";
    return res;
#else
    if (sup.child_exe.empty() || sup.circuit_path.empty()) {
      r.error = "subprocess shard supervision needs child_exe + circuit_path";
      return res;
    }
#endif
  }

  const detail::CampaignContext ctx = detail::make_context(seq, opt);
  detail::fill_structure(ctx.view, r);
  if (!ctx.error.empty()) {
    r.error = ctx.error;
    return res;
  }

  std::error_code ec;
  std::filesystem::create_directories(sup.checkpoint_dir, ec);
  if (ec) {
    r.error = "cannot create checkpoint dir '" + sup.checkpoint_dir +
              "': " + ec.message();
    return res;
  }
  if (!sup.resume) {
    for (int i = 0; i < sup.shards; ++i) {
      remove_checkpoint(sup.checkpoint_dir, i);
      std::error_code ec2;
      std::filesystem::remove(obs::progress_path(sup.checkpoint_dir, i), ec2);
      std::filesystem::remove(trace_fragment_path(sup.checkpoint_dir, i), ec2);
    }
  }

  const std::string circuit = seq.core().name();
  const std::vector<TwoVectorTest> pool = detail::random_pool(ctx.view, opt);
  const auto shard_count = static_cast<std::uint32_t>(sup.shards);

  std::vector<ShardState> states(sup.shards);
  std::vector<char> clean(sup.shards, 0);

  /// Exit-0 is not success until the committed checkpoint survives full
  /// validation and is a completed shard — the corrupt-output gate.
  auto validate_shard = [&](int shard, std::string* why) {
    const std::string p = checkpoint_path(sup.checkpoint_dir, shard);
    ShardState s;
    if (!load_checkpoint(p, &s, why)) return false;
    if (!checkpoint_matches(s, opt, circuit, static_cast<std::uint32_t>(shard),
                            shard_count, ctx.n_reps, pool.size(), why))
      return false;
    if (s.phase != ShardPhase::kDone || !s.has_matrix) {
      *why = "checkpoint is not a completed shard";
      return false;
    }
    states[shard] = std::move(s);
    return true;
  };

  bool stopping = false;

  if (sup.in_process) {
    FaultInjector& inj = FaultInjector::instance();
    std::string ierr;
    if (!inj.configure(sup.inject_spec, &ierr)) {
      r.error = "bad fault-injection spec: " + ierr;
      return res;
    }
    inj.set_in_process(true);

    for (int shard = 0; shard < sup.shards && !res.interrupted; ++shard) {
      for (int attempt = 0;; ++attempt) {
        if (sup.stop && *sup.stop) {
          res.interrupted = true;
          break;
        }
        inj.set_context(shard, attempt);
        ShardRunOptions so;
        so.checkpoint_dir = sup.checkpoint_dir;
        so.shard_index = static_cast<std::uint32_t>(shard);
        so.shard_count = shard_count;
        so.resume = true;  // continue from any committed progress
        so.stop = sup.stop;
        if (sup.progress) {
          so.progress_path = obs::progress_path(sup.checkpoint_dir, shard);
          so.progress_interval_s = sup.progress_interval_s;
        }

        ShardOutcome outcome = ShardOutcome::kCrash;
        std::string what;
        const auto t0 = Clock::now();
        try {
          const ShardRunResult rr = run_campaign_shard(seq, opt, so);
          if (sup.shard_timeout_s > 0.0 &&
              seconds_since(t0) > sup.shard_timeout_s) {
            outcome = ShardOutcome::kTimeout;
            char buf[64];
            std::snprintf(buf, sizeof buf, "ran %.3fs past the %.3fs deadline",
                          seconds_since(t0), sup.shard_timeout_s);
            what = buf;
          } else if (rr.status == ShardRunStatus::kDone) {
            outcome = validate_shard(shard, &what) ? ShardOutcome::kClean
                                                   : ShardOutcome::kCorrupt;
          } else if (rr.status == ShardRunStatus::kInterrupted) {
            outcome = ShardOutcome::kInterrupted;
            what = rr.error;
          } else if (rr.status == ShardRunStatus::kBadCheckpoint) {
            outcome = ShardOutcome::kCorrupt;
            what = rr.error;
          } else {
            outcome = ShardOutcome::kCrash;
            what = rr.error;
          }
        } catch (const InjectedCrash& c) {
          outcome = ShardOutcome::kCrash;
          what = std::string("injected ") + c.mode + " at " +
                 to_string(c.point);
        }
        res.attempts.push_back({shard, attempt, outcome, what});

        if (outcome == ShardOutcome::kClean) {
          clean[shard] = 1;
          break;
        }
        if (outcome == ShardOutcome::kInterrupted) {
          res.interrupted = true;
          break;
        }
        if (outcome == ShardOutcome::kCorrupt)
          remove_checkpoint(sup.checkpoint_dir, shard);
        if (attempt >= sup.max_retries) {
          res.quarantined.push_back(shard);
          break;
        }
        ++res.retries;
        std::this_thread::sleep_for(std::chrono::duration<double>(
            backoff_seconds(sup, attempt + 1)));
      }
    }
    inj.reset();
  } else {
#ifdef OBD_POSIX_SPAWN
    struct Pending {
      int shard;
      int attempt;
      Clock::time_point eligible;
    };
    struct Running {
      pid_t pid;
      int shard;
      int attempt;
      Clock::time_point deadline;
      bool has_deadline;
      bool watchdog_killed;
      /// Heartbeat-file size when the current deadline was armed; growth
      /// past it proves the shard is alive and re-arms the deadline.
      long long progress_size;
    };
    std::vector<Pending> pending;
    std::vector<Running> running;
    const auto t_campaign = Clock::now();
    auto next_status = t_campaign + std::chrono::duration_cast<Clock::duration>(
                                        std::chrono::duration<double>(
                                            sup.progress_interval_s));
    for (int i = 0; i < sup.shards; ++i)
      pending.push_back({i, 0, Clock::now()});
    const std::size_t jobs =
        static_cast<std::size_t>(sup.jobs > 0 ? sup.jobs : sup.shards);

    auto handle_failure = [&](int shard, int attempt, ShardOutcome outcome,
                              std::string what) {
      res.attempts.push_back({shard, attempt, outcome, std::move(what)});
      if (outcome == ShardOutcome::kCorrupt)
        remove_checkpoint(sup.checkpoint_dir, shard);
      if (stopping) return;
      if (attempt >= sup.max_retries) {
        obs::logf(obs::LogLevel::kWarn,
                  "shard %d quarantined after %d attempt(s)", shard,
                  attempt + 1);
        res.quarantined.push_back(shard);
        return;
      }
      ++res.retries;
      obs::logf(obs::LogLevel::kInfo,
                "shard %d attempt %d failed (%s); retrying in %.2fs", shard,
                attempt, to_string(outcome), backoff_seconds(sup, attempt + 1));
      pending.push_back(
          {shard, attempt + 1,
           Clock::now() + std::chrono::duration_cast<Clock::duration>(
                              std::chrono::duration<double>(
                                  backoff_seconds(sup, attempt + 1)))});
    };

    while (!pending.empty() || !running.empty()) {
      if (!stopping && sup.stop && *sup.stop) {
        // Graceful stop: children checkpoint on SIGTERM and exit 75. A
        // 10 s grace deadline escalates to SIGKILL — no hangs.
        stopping = true;
        res.interrupted = true;
        pending.clear();
        for (Running& c : running) {
          kill(c.pid, SIGTERM);
          c.deadline = Clock::now() + std::chrono::seconds(10);
          c.has_deadline = true;
        }
      }

      if (!stopping) {
        const auto now = Clock::now();
        for (auto it = pending.begin();
             it != pending.end() && running.size() < jobs;) {
          if (it->eligible > now) {
            ++it;
            continue;
          }
          const pid_t pid = spawn_shard(sup, opt, it->shard, it->attempt);
          if (pid < 0) {
            const int shard = it->shard, attempt = it->attempt;
            it = pending.erase(it);
            handle_failure(shard, attempt, ShardOutcome::kCrash,
                           "fork failed");
            continue;
          }
          Running c;
          c.pid = pid;
          c.shard = it->shard;
          c.attempt = it->attempt;
          c.has_deadline = sup.shard_timeout_s > 0.0;
          c.watchdog_killed = false;
          c.progress_size = sup.progress
                                ? obs::file_size_or_negative(obs::progress_path(
                                      sup.checkpoint_dir, it->shard))
                                : -1;
          if (c.has_deadline)
            c.deadline = now + std::chrono::duration_cast<Clock::duration>(
                                   std::chrono::duration<double>(
                                       sup.shard_timeout_s));
          running.push_back(c);
          it = pending.erase(it);
        }
      }

      for (auto it = running.begin(); it != running.end();) {
        if (it->has_deadline && !it->watchdog_killed &&
            Clock::now() > it->deadline) {
          // Liveness check before the kill: a healthy-but-slow shard keeps
          // appending heartbeats, so a grown progress file re-arms the
          // deadline instead of SIGKILLing real work (stopping-mode grace
          // deadlines stay hard — those children were already told to exit).
          const long long sz =
              sup.progress && !stopping
                  ? obs::file_size_or_negative(
                        obs::progress_path(sup.checkpoint_dir, it->shard))
                  : -1;
          if (sz > it->progress_size) {
            it->progress_size = sz;
            it->deadline =
                Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                   std::chrono::duration<double>(
                                       sup.shard_timeout_s));
            obs::logf(obs::LogLevel::kInfo,
                      "shard %d past its deadline but heartbeating; deadline "
                      "extended",
                      it->shard);
          } else {
            kill(it->pid, SIGKILL);
            it->watchdog_killed = true;
          }
        }
        int st = 0;
        const pid_t w = waitpid(it->pid, &st, WNOHANG);
        if (w != it->pid) {
          ++it;
          continue;
        }
        const int shard = it->shard;
        const int attempt = it->attempt;
        const bool timed_out = it->watchdog_killed && !stopping;
        it = running.erase(it);

        if (WIFEXITED(st)) {
          const int code = WEXITSTATUS(st);
          if (code == 0) {
            std::string why;
            if (validate_shard(shard, &why)) {
              res.attempts.push_back(
                  {shard, attempt, ShardOutcome::kClean, ""});
              clean[shard] = 1;
            } else {
              handle_failure(shard, attempt, ShardOutcome::kCorrupt, why);
            }
          } else if (code == 75) {
            // EX_TEMPFAIL: the child checkpointed and stopped on a
            // signal. Retryable unless we are the ones stopping it.
            if (stopping)
              res.attempts.push_back({shard, attempt,
                                      ShardOutcome::kInterrupted, ""});
            else
              handle_failure(shard, attempt, ShardOutcome::kInterrupted,
                             "child interrupted");
          } else if (code == 71) {
            handle_failure(shard, attempt, ShardOutcome::kCorrupt,
                           "child rejected its resume checkpoint");
          } else {
            handle_failure(shard, attempt, ShardOutcome::kCrash,
                           "exit code " + std::to_string(code));
          }
        } else if (WIFSIGNALED(st)) {
          const int sig = WTERMSIG(st);
          handle_failure(shard, attempt,
                         timed_out ? ShardOutcome::kTimeout
                                   : ShardOutcome::kCrash,
                         "signal " + std::to_string(sig));
        }
      }

      if (sup.progress && Clock::now() >= next_status) {
        emit_status_line(sup, t_campaign);
        next_status += std::chrono::duration_cast<Clock::duration>(
            std::chrono::duration<double>(
                std::max(0.05, sup.progress_interval_s)));
      }

      if (pending.empty() && running.empty()) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    if (sup.progress) emit_status_line(sup, t_campaign);
    stitch_trace_fragments(sup);
#endif  // OBD_POSIX_SPAWN
  }

  if (res.interrupted) {
    r.error = "campaign interrupted; shard checkpoints preserved in '" +
              sup.checkpoint_dir + "' — rerun with --resume";
    return res;
  }

  std::sort(res.quarantined.begin(), res.quarantined.end());
  r.shards = sup.shards;
  r.shard_retries = res.retries;
  r.quarantined_shards = res.quarantined;
  r.partial = !res.quarantined.empty();

  std::vector<const ShardState*> done;
  for (int i = 0; i < sup.shards; ++i)
    if (clean[i]) done.push_back(&states[i]);
  merge_states(ctx, opt, pool, done, shard_count, r);
  return res;
}

}  // namespace obd::flow

// Shard supervisor: crash-tolerant campaign orchestration.
//
// Splits a campaign into shard_count strided fault partitions and drives
// each to a committed kDone checkpoint, then merges the checkpoints into a
// campaign report whose detection matrix is bit-identical to the one-shot
// run (matrix_hash is the witness; see tests/test_supervisor.cpp).
//
// Execution modes:
//   - subprocess (default for the CLI): each attempt is a child
//     `obd_atpg --shard i/n` process. A polling watchdog SIGKILLs children
//     past the per-shard wall-clock deadline; exits are classified as
//     clean / crash / timeout / corrupt-output / interrupted.
//   - in-process (tests): shards run serially in this process; injected
//     crashes arrive as InjectedCrash exceptions and are classified the
//     same way.
//
// Failed attempts retry with capped exponential backoff. A shard that
// exhausts 1 + max_retries attempts is quarantined: the campaign still
// completes, producing a partial report that names the quarantined shards
// and counts their faults as undetected — defined degradation, never a
// hang or a silent hole in the data.
#pragma once

#include <csignal>
#include <string>
#include <vector>

#include "flow/campaign.hpp"
#include "logic/sequential.hpp"

namespace obd::flow {

struct SupervisorOptions {
  /// Checkpoint directory (required; created if missing). Without
  /// `resume`, stale shard checkpoints in it are deleted first.
  std::string checkpoint_dir;
  int shards = 2;
  /// Max concurrent shard processes (subprocess mode); 0 = shards.
  int jobs = 0;
  /// Per-attempt wall-clock deadline, seconds; 0 disables the watchdog.
  double shard_timeout_s = 0.0;
  /// Retries after the first attempt before a shard is quarantined.
  int max_retries = 2;
  /// Capped exponential backoff between attempts: base * 2^(k-1), ≤ cap.
  double backoff_base_s = 0.25;
  double backoff_cap_s = 5.0;
  /// Continue from committed checkpoints instead of starting fresh.
  bool resume = false;
  /// Run shards serially in this process (tests / no-fork platforms).
  bool in_process = false;
  /// Fault-injection spec (see flow/inject.hpp); forwarded to children
  /// via FLOW_FAULT_INJECT, or configured on the in-process injector.
  std::string inject_spec;
  /// obd_atpg binary for subprocess mode.
  std::string child_exe;
  /// Circuit file passed to child processes (they re-parse it).
  std::string circuit_path;
  /// Polled by the supervisor loop; when nonzero, children get SIGTERM
  /// (they checkpoint and exit 75) and the run reports interrupted.
  const volatile std::sig_atomic_t* stop = nullptr;
  /// Children emit Chrome-trace NDJSON fragments next to their checkpoints
  /// (trace-shard-<i>.ndjson); after the run the supervisor parses them back
  /// and stitches one multi-process trace into the global recorder.
  bool trace = false;
  /// Children write heartbeat NDJSON (progress-<i>.ndjson); the supervisor
  /// aggregates them into periodic {"event":"status",...} lines on stderr
  /// with an ETA, and treats heartbeat-file growth as a liveness signal: a
  /// shard past its wall-clock deadline whose progress file is still
  /// growing gets its deadline extended instead of a watchdog SIGKILL.
  bool progress = false;
  /// Cadence of child heartbeats and supervisor status lines, seconds.
  double progress_interval_s = 1.0;
};

/// Conventional per-shard trace-fragment path under a checkpoint dir.
std::string trace_fragment_path(const std::string& checkpoint_dir, int shard);

enum class ShardOutcome {
  kClean,        ///< exit 0 with a valid kDone checkpoint
  kCrash,        ///< abnormal exit / injected crash / shard error
  kTimeout,      ///< watchdog SIGKILL past the per-shard deadline
  kCorrupt,      ///< output rejected by checkpoint validation
  kInterrupted,  ///< shard saw a stop signal (checkpoint committed)
};

const char* to_string(ShardOutcome o);

/// One attempt's classification, for the attempt log / diagnostics.
struct ShardAttempt {
  int shard = 0;
  int attempt = 0;  // 0-based
  ShardOutcome outcome = ShardOutcome::kClean;
  std::string detail;
};

struct SupervisorResult {
  /// Merged campaign report. `report.partial` / `quarantined_shards` name
  /// degraded coverage; `report.error` is set only when no merge was
  /// possible (configuration error or interruption).
  CampaignReport report;
  std::vector<ShardAttempt> attempts;
  std::vector<int> quarantined;
  int retries = 0;
  bool interrupted = false;
};

/// Runs the sharded campaign end to end: shard execution with retry and
/// quarantine, then the deterministic merge.
SupervisorResult run_supervised_campaign(const logic::SequentialCircuit& seq,
                                         const CampaignOptions& opt,
                                         const SupervisorOptions& sup);

}  // namespace obd::flow

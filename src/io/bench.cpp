#include "io/bench.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "util/strings.hpp"

namespace obd::io {
namespace {

using logic::Circuit;
using logic::GateType;
using logic::NetId;

std::string upper(std::string_view s) {
  std::string u(s);
  for (char& ch : u) ch = static_cast<char>(std::toupper(static_cast<unsigned char>(ch)));
  return u;
}

/// One `.bench` statement, syntax-checked but not yet elaborated.
struct Statement {
  enum Kind { kInput, kOutput, kGate, kDff } kind;
  int line = 0;
  std::string lhs;                ///< net defined (or listed, for IN/OUT)
  std::string func;               ///< uppercased function name (gates only)
  std::vector<std::string> args;  ///< argument nets
};

bool valid_net_name(std::string_view s) {
  return !s.empty() &&
         s.find_first_of(" \t,()=#") == std::string_view::npos;
}

/// Splits "LHS = FUNC(a, b)" / "INPUT(x)" into fields. Returns empty
/// string on success, else a syntax message.
std::string split_statement(const std::string& line, Statement& st) {
  const auto eq = line.find('=');
  const auto open = line.find('(');
  const auto close = line.rfind(')');
  if (open == std::string::npos || close == std::string::npos || close < open)
    return "expected '<net> = <FUNC>(<nets>)' or INPUT(...)/OUTPUT(...)";
  if (!util::trim(std::string_view(line).substr(close + 1)).empty())
    return "trailing text after ')'";
  std::string head = std::string(util::trim(line.substr(0, open)));
  const std::string inner = line.substr(open + 1, close - open - 1);
  if (eq == std::string::npos || eq > open) {
    // INPUT(x) / OUTPUT(x)
    const std::string kw = upper(head);
    if (kw == "INPUT")
      st.kind = Statement::kInput;
    else if (kw == "OUTPUT")
      st.kind = Statement::kOutput;
    else
      return "unknown directive '" + head + "'";
    st.lhs = std::string(util::trim(inner));
    if (!valid_net_name(st.lhs)) return "bad net name in " + kw + "()";
    return "";
  }
  st.lhs = std::string(util::trim(line.substr(0, eq)));
  if (!valid_net_name(st.lhs)) return "bad net name before '='";
  st.func = upper(util::trim(line.substr(eq + 1, open - eq - 1)));
  if (st.func.empty()) return "missing gate function after '='";
  for (const auto& a : util::split(inner, ',')) {
    const auto t = util::trim(a);
    if (!valid_net_name(t)) return "bad net name in gate argument list";
    st.args.emplace_back(t);
  }
  if (st.args.empty()) return "gate needs at least one argument";
  st.kind = st.func == "DFF" ? Statement::kDff : Statement::kGate;
  return "";
}

/// Helper-net factory: "<base>_bN", unique against every declared name and
/// every net created so far.
class FreshNets {
 public:
  FreshNets(Circuit& c, const std::unordered_set<std::string>& declared)
      : c_(c), declared_(declared) {}

  NetId make(const std::string& base) {
    for (;;) {
      std::string name = base + "_b" + std::to_string(counter_++);
      if (declared_.count(name) || c_.find_net(name) != logic::kNoNet) continue;
      return c_.net(name);
    }
  }

 private:
  Circuit& c_;
  const std::unordered_set<std::string>& declared_;
  int counter_ = 0;
};

/// Balanced binary reduction with `pair_type` gates into helper nets;
/// returns the root net. `ins` must be non-empty; a single input is
/// returned untouched.
NetId reduce_tree(Circuit& c, FreshNets& fresh, GateType pair_type,
                  std::vector<NetId> ins, const std::string& base) {
  while (ins.size() > 1) {
    std::vector<NetId> next;
    for (std::size_t i = 0; i + 1 < ins.size(); i += 2) {
      const NetId o = fresh.make(base);
      c.add_gate(pair_type, c.net_name(o), {ins[i], ins[i + 1]}, o);
      next.push_back(o);
    }
    if (ins.size() & 1) next.push_back(ins.back());
    ins.swap(next);
  }
  return ins[0];
}

/// Widest native primitive for an inverting-root function, or the pair
/// gate for the tree below it.
GateType nand_of(std::size_t n) {
  return n == 2 ? GateType::kNand2
                : n == 3 ? GateType::kNand3 : GateType::kNand4;
}
GateType nor_of(std::size_t n) {
  return n == 2 ? GateType::kNor2
                : n == 3 ? GateType::kNor3 : GateType::kNor4;
}

/// Elaborates one combinational `.bench` gate onto `out`, decomposing
/// fan-in beyond the stdcell arities. The root gate keeps the statement's
/// function (on the widest native primitive) so the named output net still
/// carries that gate's fault sites.
void build_gate(Circuit& c, FreshNets& fresh, const std::string& func,
                const std::vector<NetId>& ins, NetId out) {
  const std::string& name = c.net_name(out);
  const std::size_t n = ins.size();
  auto halves = [&](GateType pair_type) {
    // Two balanced sub-trees feeding a 2-input root.
    const std::size_t mid = n / 2;
    std::vector<NetId> lo(ins.begin(), ins.begin() + static_cast<std::ptrdiff_t>(mid));
    std::vector<NetId> hi(ins.begin() + static_cast<std::ptrdiff_t>(mid), ins.end());
    return std::pair{reduce_tree(c, fresh, pair_type, std::move(lo), name),
                     reduce_tree(c, fresh, pair_type, std::move(hi), name)};
  };
  if (func == "NOT" || (n == 1 && (func == "NAND" || func == "NOR" ||
                                   func == "XNOR"))) {
    c.add_gate(GateType::kInv, name, {ins[0]}, out);
  } else if (func == "BUFF" || func == "BUF" || n == 1) {
    // Single-input AND/OR/XOR degenerate to a buffer.
    c.add_gate(GateType::kBuf, name, {ins[0]}, out);
  } else if (func == "AND") {
    const auto [l, r] = halves(GateType::kAnd2);
    c.add_gate(GateType::kAnd2, name, {l, r}, out);
  } else if (func == "OR") {
    const auto [l, r] = halves(GateType::kOr2);
    c.add_gate(GateType::kOr2, name, {l, r}, out);
  } else if (func == "NAND") {
    if (n <= 4) {
      c.add_gate(nand_of(n), name, ins, out);
    } else {
      const auto [l, r] = halves(GateType::kAnd2);
      c.add_gate(GateType::kNand2, name, {l, r}, out);
    }
  } else if (func == "NOR") {
    if (n <= 4) {
      c.add_gate(nor_of(n), name, ins, out);
    } else {
      const auto [l, r] = halves(GateType::kOr2);
      c.add_gate(GateType::kNor2, name, {l, r}, out);
    }
  } else if (func == "XOR") {
    const auto [l, r] = halves(GateType::kXor2);
    c.add_gate(GateType::kXor2, name, {l, r}, out);
  } else {  // XNOR (validated upstream)
    const auto [l, r] = halves(GateType::kXor2);
    c.add_gate(GateType::kXnor2, name, {l, r}, out);
  }
}

bool known_func(const std::string& f) {
  static const std::unordered_set<std::string> kFuncs = {
      "AND", "NAND", "OR", "NOR", "NOT", "BUFF", "BUF", "XOR", "XNOR", "DFF"};
  return kFuncs.count(f) > 0;
}

}  // namespace

BenchParseResult parse_bench(const std::string& text, const std::string& name) {
  BenchParseResult result;
  auto fail = [&result](int line, const std::string& msg) {
    result.error = "line " + std::to_string(line) + ": " + msg;
    return result;
  };

  // Pass 1: syntax. Collect statements; remember where each net is defined
  // (INPUT or left-hand side) and first used, for the reference checks.
  std::vector<Statement> stmts;
  {
    std::istringstream in(text);
    std::string line;
    int line_no = 0;
    while (std::getline(in, line)) {
      ++line_no;
      const auto hash = line.find('#');
      if (hash != std::string::npos) line.erase(hash);
      if (util::trim(line).empty()) continue;
      Statement st;
      st.line = line_no;
      const std::string err = split_statement(line, st);
      if (!err.empty()) return fail(line_no, err);
      if (st.kind == Statement::kGate && !known_func(st.func))
        return fail(line_no, "unknown gate function '" + st.func + "'");
      if (st.kind == Statement::kDff && st.args.size() != 1)
        return fail(line_no, "DFF takes exactly one input");
      if (st.kind == Statement::kGate &&
          (st.func == "NOT" || st.func == "BUFF" || st.func == "BUF") &&
          st.args.size() != 1)
        return fail(line_no, st.func + " takes exactly one input");
      stmts.push_back(std::move(st));
    }
  }

  // Pass 2: reference checks over the whole file (definitions may follow
  // uses, as in every published ISCAS netlist).
  std::unordered_map<std::string, int> defined_at;  // INPUT or lhs
  std::unordered_map<std::string, int> output_at;
  std::unordered_set<std::string> is_input;
  std::unordered_set<std::string> declared;
  for (const auto& st : stmts) {
    if (st.kind == Statement::kOutput) {
      const auto [it, fresh] = output_at.emplace(st.lhs, st.line);
      if (!fresh)
        return fail(st.line, "duplicate OUTPUT('" + st.lhs +
                                 "'), first declared on line " +
                                 std::to_string(it->second));
      continue;
    }
    declared.insert(st.lhs);
    for (const auto& a : st.args) declared.insert(a);
    const auto [it, fresh] = defined_at.emplace(st.lhs, st.line);
    if (st.kind == Statement::kInput) {
      if (!fresh)
        return fail(st.line, is_input.count(st.lhs)
                                 ? "duplicate INPUT('" + st.lhs + "')"
                                 : "INPUT('" + st.lhs +
                                       "') already driven by the gate on line " +
                                       std::to_string(it->second));
      is_input.insert(st.lhs);
    } else if (!fresh) {
      return fail(st.line,
                  is_input.count(st.lhs)
                      ? "gate drives INPUT('" + st.lhs + "') declared on line " +
                            std::to_string(it->second)
                      : "net '" + st.lhs + "' already driven on line " +
                            std::to_string(it->second));
    }
  }
  for (const auto& st : stmts) {
    if (st.kind == Statement::kInput) continue;
    if (st.kind == Statement::kOutput) {
      if (!defined_at.count(st.lhs))
        return fail(st.line, "OUTPUT net '" + st.lhs + "' is never defined");
      continue;
    }
    for (const auto& a : st.args)
      if (!defined_at.count(a))
        return fail(st.line, "net '" + a + "' is used but never defined");
  }

  // Pass 3: elaborate. PIs in INPUT order, gates in file order, POs in
  // OUTPUT order, flops in DFF order.
  Circuit c(name);
  for (const auto& st : stmts)
    if (st.kind == Statement::kInput) c.add_input(st.lhs);
  FreshNets fresh(c, declared);
  for (const auto& st : stmts) {
    if (st.kind != Statement::kGate) continue;
    std::vector<NetId> ins;
    ins.reserve(st.args.size());
    for (const auto& a : st.args) ins.push_back(c.net(a));
    build_gate(c, fresh, st.func, ins, c.net(st.lhs));
  }
  for (const auto& st : stmts)
    if (st.kind == Statement::kOutput) c.mark_output(c.net(st.lhs));

  const std::string diag = c.validate();
  if (!diag.empty()) {
    if (diag.find("cycle") != std::string::npos) {
      // Attribute the cycle to the first statement whose gate never became
      // topologically ready.
      std::vector<std::uint8_t> in_topo(c.num_gates(), 0);
      for (int g : c.topo_order()) in_topo[static_cast<std::size_t>(g)] = 1;
      for (const auto& st : stmts) {
        if (st.kind != Statement::kGate) continue;
        const int g = c.driver_of(c.net(st.lhs));
        if (g >= 0 && !in_topo[static_cast<std::size_t>(g)])
          return fail(st.line, "combinational cycle through net '" + st.lhs + "'");
      }
    }
    result.error = diag;
    return result;
  }

  logic::SequentialCircuit seq(std::move(c));
  for (const auto& st : stmts)
    if (st.kind == Statement::kDff)
      seq.add_flop(st.lhs, seq.core().net(st.lhs), seq.core().net(st.args[0]));
  const std::string seq_diag = seq.validate();
  if (!seq_diag.empty()) {
    result.error = seq_diag;
    return result;
  }
  result.ok = true;
  result.seq = std::move(seq);
  return result;
}

BenchParseResult load_bench_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) {
    BenchParseResult r;
    r.error = "cannot open '" + path + "'";
    return r;
  }
  std::stringstream ss;
  ss << f.rdbuf();
  auto stem = path;
  if (const auto slash = stem.find_last_of('/'); slash != std::string::npos)
    stem.erase(0, slash + 1);
  if (const auto dot = stem.find_last_of('.'); dot != std::string::npos)
    stem.erase(dot);
  return parse_bench(ss.str(), stem);
}

namespace {

/// `.bench` function name of a directly expressible gate; nullptr for the
/// AOI/OAI cells, which write_bench lowers to helper lines.
const char* bench_func(GateType t) {
  switch (t) {
    case GateType::kBuf: return "BUFF";
    case GateType::kInv: return "NOT";
    case GateType::kNand2:
    case GateType::kNand3:
    case GateType::kNand4: return "NAND";
    case GateType::kNor2:
    case GateType::kNor3:
    case GateType::kNor4: return "NOR";
    case GateType::kAnd2: return "AND";
    case GateType::kOr2: return "OR";
    case GateType::kXor2: return "XOR";
    case GateType::kXnor2: return "XNOR";
    default: return nullptr;
  }
}

void write_gate_line(std::string& out, const Circuit& c, const char* func,
                     const std::string& lhs, const std::vector<NetId>& ins) {
  out += lhs + " = " + func + "(";
  for (std::size_t k = 0; k < ins.size(); ++k) {
    if (k) out += ", ";
    out += c.net_name(ins[k]);
  }
  out += ")\n";
}

std::string helper_name(const Circuit& c, const std::string& base, int& k) {
  for (;;) {
    std::string name = base + "_w" + std::to_string(k++);
    if (c.find_net(name) == logic::kNoNet) return name;
  }
}

}  // namespace

std::string write_bench(const logic::SequentialCircuit& seq) {
  const Circuit& c = seq.core();
  std::string out = "# " + c.name() + "\n";
  for (NetId n : c.inputs()) out += "INPUT(" + c.net_name(n) + ")\n";
  for (NetId n : c.outputs()) out += "OUTPUT(" + c.net_name(n) + ")\n";
  for (const auto& f : seq.flops())
    out += c.net_name(f.q) + " = DFF(" + c.net_name(f.d) + ")\n";
  int fresh = 0;
  for (const auto& g : c.gates()) {
    const std::string& lhs = c.net_name(g.output);
    if (const char* func = bench_func(g.type)) {
      write_gate_line(out, c, func, lhs, g.inputs);
      continue;
    }
    // AOI/OAI have no .bench spelling: emit the equivalent two-level form.
    switch (g.type) {
      case GateType::kAoi21: {
        const std::string t = helper_name(c, lhs, fresh);
        out += t + " = AND(" + c.net_name(g.inputs[0]) + ", " +
               c.net_name(g.inputs[1]) + ")\n";
        out += lhs + " = NOR(" + t + ", " + c.net_name(g.inputs[2]) + ")\n";
        break;
      }
      case GateType::kAoi22: {
        const std::string t1 = helper_name(c, lhs, fresh);
        const std::string t2 = helper_name(c, lhs, fresh);
        out += t1 + " = AND(" + c.net_name(g.inputs[0]) + ", " +
               c.net_name(g.inputs[1]) + ")\n";
        out += t2 + " = AND(" + c.net_name(g.inputs[2]) + ", " +
               c.net_name(g.inputs[3]) + ")\n";
        out += lhs + " = NOR(" + t1 + ", " + t2 + ")\n";
        break;
      }
      default: {  // kOai21
        const std::string t = helper_name(c, lhs, fresh);
        out += t + " = OR(" + c.net_name(g.inputs[0]) + ", " +
               c.net_name(g.inputs[1]) + ")\n";
        out += lhs + " = NAND(" + t + ", " + c.net_name(g.inputs[2]) + ")\n";
        break;
      }
    }
  }
  return out;
}

std::string write_bench(const logic::Circuit& c) {
  return write_bench(logic::SequentialCircuit(c));
}

}  // namespace obd::io

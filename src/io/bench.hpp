// ISCAS-85/89 `.bench` netlist frontend.
//
// The classic benchmark interchange format:
//
//   # comment
//   INPUT(G1)
//   OUTPUT(G22)
//   G8 = DFF(G5)              <- ISCAS-89 state element
//   G10 = NAND(G1, G3)
//   G11 = NOT(G6)
//
// Accepted gate functions: AND, NAND, OR, NOR, NOT, BUFF (also BUF),
// XOR, XNOR, and DFF. Gate names are case-insensitive; net names are
// case-sensitive and may contain any non-delimiter characters.
//
// Mapping onto obd::logic:
//  - combinational functions land on logic::GateType primitives. NAND/NOR
//    up to 4 inputs map 1:1 onto NAND2/3/4 / NOR2/3/4; wider fan-in (and
//    multi-input AND/OR/XOR/XNOR) is decomposed into balanced trees of
//    2-input gates whose *root* keeps the statement's function (a 2-input
//    primitive), so the net the netlist names is still driven by a gate of
//    that function and carries OBD fault sites after
//    decompose_composites(). Helper nets are named "<out>_bN" (made unique
//    against the netlist's own names).
//  - DFFs become logic::SequentialCircuit flops (q = left-hand side,
//    d = the argument); a pure combinational netlist parses to a
//    SequentialCircuit with no flops.
//
// Diagnostics carry 1-based line numbers: unknown gate functions, arity
// violations, duplicate drivers, nets used but never defined, redefined
// inputs, and combinational cycles are all rejected with the offending
// line (cycles report the line of a gate on the cycle).
//
// write_bench() serializes back to `.bench`; AOI/OAI cells (which the
// format cannot name) are emitted as equivalent AND/OR + NOR/NAND helper
// lines, so every Circuit round-trips functionally.
#pragma once

#include <string>

#include "logic/sequential.hpp"

namespace obd::io {

struct BenchParseResult {
  bool ok = false;
  std::string error;  ///< "line N: ..." diagnostic when !ok.
  logic::SequentialCircuit seq{logic::Circuit{}};

  /// Convenience for combinational netlists (no flops): the core circuit.
  const logic::Circuit& circuit() const { return seq.core(); }
};

/// Parses `.bench` text. `name` becomes the circuit name (the format has
/// no name directive; callers typically pass the file stem).
BenchParseResult parse_bench(const std::string& text,
                             const std::string& name = "bench");

/// Reads and parses a `.bench` file; the circuit is named after the file
/// stem. I/O failures are reported like parse errors (ok = false).
BenchParseResult load_bench_file(const std::string& path);

/// Serializes to `.bench` (INPUT/OUTPUT lines, DFF lines, then gates in
/// gate order). Round-trips through parse_bench preserve PI/PO/flop order
/// and function; AOI/OAI gates are lowered to helper lines.
std::string write_bench(const logic::SequentialCircuit& seq);
std::string write_bench(const logic::Circuit& c);

}  // namespace obd::io

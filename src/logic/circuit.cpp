#include "logic/circuit.hpp"

#include <algorithm>
#include <cassert>

namespace obd::logic {

NetId Circuit::net(const std::string& name) {
  auto it = net_ids_.find(name);
  if (it != net_ids_.end()) return it->second;
  const NetId id = static_cast<NetId>(net_names_.size());
  net_names_.push_back(name);
  net_ids_.emplace(name, id);
  driver_.push_back(-1);
  fanouts_.emplace_back();
  return id;
}

NetId Circuit::add_input(const std::string& name) {
  const NetId n = net(name);
  inputs_.push_back(n);
  return n;
}

void Circuit::mark_output(NetId n) { outputs_.push_back(n); }

int Circuit::add_gate(GateType type, const std::string& name,
                      const std::vector<NetId>& inputs, NetId output) {
  assert(static_cast<int>(inputs.size()) == gate_arity(type));
  const int idx = static_cast<int>(gates_.size());
  gates_.push_back(Gate{type, name, inputs, output});
  driver_[static_cast<std::size_t>(output)] = idx;
  for (NetId in : inputs) fanouts_[static_cast<std::size_t>(in)].push_back(idx);
  topo_valid_ = false;
  return idx;
}

NetId Circuit::find_net(const std::string& name) const {
  auto it = net_ids_.find(name);
  return it == net_ids_.end() ? kNoNet : it->second;
}

const std::vector<int>& Circuit::topo_order() const {
  if (topo_valid_) return topo_cache_;
  topo_cache_.clear();
  // Kahn's algorithm over gates, counting unresolved gate-input nets.
  std::vector<int> pending(gates_.size(), 0);
  std::vector<bool> net_ready(net_names_.size(), false);
  for (NetId n : inputs_) net_ready[static_cast<std::size_t>(n)] = true;
  for (std::size_t n = 0; n < net_names_.size(); ++n)
    if (driver_[n] < 0) net_ready[n] = true;  // undriven nets: treated ready

  std::vector<int> ready;
  for (std::size_t g = 0; g < gates_.size(); ++g) {
    int unresolved = 0;
    for (NetId in : gates_[g].inputs)
      if (!net_ready[static_cast<std::size_t>(in)]) ++unresolved;
    pending[g] = unresolved;
    if (unresolved == 0) ready.push_back(static_cast<int>(g));
  }
  while (!ready.empty()) {
    const int g = ready.back();
    ready.pop_back();
    topo_cache_.push_back(g);
    const NetId out = gates_[static_cast<std::size_t>(g)].output;
    if (net_ready[static_cast<std::size_t>(out)]) continue;
    net_ready[static_cast<std::size_t>(out)] = true;
    for (int f : fanouts_[static_cast<std::size_t>(out)])
      if (--pending[static_cast<std::size_t>(f)] == 0) ready.push_back(f);
  }
  topo_valid_ = true;
  return topo_cache_;
}

std::vector<int> Circuit::gate_levels() const {
  std::vector<int> net_level(net_names_.size(), 0);
  std::vector<int> level(gates_.size(), 0);
  for (int g : topo_order()) {
    int lvl = 0;
    for (NetId in : gates_[static_cast<std::size_t>(g)].inputs)
      lvl = std::max(lvl, net_level[static_cast<std::size_t>(in)]);
    level[static_cast<std::size_t>(g)] = lvl + 1;
    net_level[static_cast<std::size_t>(
        gates_[static_cast<std::size_t>(g)].output)] = lvl + 1;
  }
  return level;
}

int Circuit::depth() const {
  int d = 0;
  for (int l : gate_levels()) d = std::max(d, l);
  return d;
}

std::string Circuit::validate() const {
  // Single driver is enforced by construction (driver_ overwritten would
  // indicate a double drive -- detect by counting).
  std::vector<int> drive_count(net_names_.size(), 0);
  for (const auto& g : gates_)
    ++drive_count[static_cast<std::size_t>(g.output)];
  for (std::size_t n = 0; n < net_names_.size(); ++n) {
    if (drive_count[n] > 1)
      return "net '" + net_names_[n] + "' driven by multiple gates";
    const bool is_pi =
        std::find(inputs_.begin(), inputs_.end(), static_cast<NetId>(n)) !=
        inputs_.end();
    if (is_pi && drive_count[n] > 0)
      return "primary input '" + net_names_[n] + "' also driven by a gate";
  }
  if (topo_order().size() != gates_.size())
    return "combinational cycle detected";
  return "";
}

std::vector<bool> Circuit::eval(const InputVec& pi_values) const {
  std::vector<bool> values(net_names_.size(), false);
  for (std::size_t i = 0; i < inputs_.size(); ++i)
    values[static_cast<std::size_t>(inputs_[i])] = pi_values.bit(i);
  for (int g : topo_order()) {
    const Gate& gate = gates_[static_cast<std::size_t>(g)];
    values[static_cast<std::size_t>(gate.output)] =
        gate_eval(gate.type, gate_input_bits(g, values));
  }
  return values;
}

InputVec Circuit::eval_outputs(const InputVec& pi_values) const {
  return pack_outputs(eval(pi_values));
}

InputVec Circuit::pack_outputs(const std::vector<bool>& net_values) const {
  InputVec out;
  for (std::size_t i = 0; i < outputs_.size(); ++i)
    if (net_values[static_cast<std::size_t>(outputs_[i])]) out.set_bit(i);
  return out;
}

std::vector<Tri> Circuit::eval3(const std::vector<Tri>& pi_values) const {
  std::vector<Tri> values(net_names_.size(), Tri::kX);
  for (std::size_t i = 0; i < inputs_.size() && i < pi_values.size(); ++i)
    values[static_cast<std::size_t>(inputs_[i])] = pi_values[i];
  Tri ins[8];
  for (int g : topo_order()) {
    const Gate& gate = gates_[static_cast<std::size_t>(g)];
    for (std::size_t k = 0; k < gate.inputs.size(); ++k)
      ins[k] = values[static_cast<std::size_t>(gate.inputs[k])];
    values[static_cast<std::size_t>(gate.output)] =
        gate_eval3(gate.type, ins);
  }
  return values;
}

std::vector<std::uint64_t> Circuit::eval_words(
    const std::vector<std::uint64_t>& pi_words, NetId forced_net,
    std::uint64_t forced_value) const {
  std::vector<std::uint64_t> values;
  eval_words_into(pi_words, values, forced_net, forced_value);
  return values;
}

void Circuit::eval_words_into(const std::vector<std::uint64_t>& pi_words,
                              std::vector<std::uint64_t>& values,
                              NetId forced_net,
                              std::uint64_t forced_value) const {
  values.assign(net_names_.size(), 0);
  for (std::size_t i = 0; i < inputs_.size() && i < pi_words.size(); ++i) {
    const NetId n = inputs_[i];
    values[static_cast<std::size_t>(n)] =
        (n == forced_net) ? forced_value : pi_words[i];
  }
  std::uint64_t ins[8];
  for (int g : topo_order()) {
    const Gate& gate = gates_[static_cast<std::size_t>(g)];
    for (std::size_t k = 0; k < gate.inputs.size(); ++k)
      ins[k] = values[static_cast<std::size_t>(gate.inputs[k])];
    values[static_cast<std::size_t>(gate.output)] =
        (gate.output == forced_net) ? forced_value
                                    : gate_eval_words(gate.type, ins);
  }
}

void Circuit::eval_wide_into(const std::vector<std::uint64_t>& pi_words,
                             std::size_t lane_words,
                             std::vector<std::uint64_t>& values,
                             NetId forced_net,
                             const std::uint64_t* forced_words) const {
  const std::size_t W = lane_words;
  values.assign(net_names_.size() * W, 0);
  for (std::size_t i = 0; i < inputs_.size() && i * W < pi_words.size(); ++i) {
    const NetId n = inputs_[i];
    std::uint64_t* dst = values.data() + static_cast<std::size_t>(n) * W;
    if (n == forced_net && forced_words) {
      for (std::size_t w = 0; w < W; ++w) dst[w] = forced_words[w];
    } else {
      for (std::size_t w = 0; w < W; ++w) dst[w] = pi_words[i * W + w];
    }
  }
  const std::uint64_t* ins[8];
  for (int g : topo_order()) {
    const Gate& gate = gates_[static_cast<std::size_t>(g)];
    for (std::size_t k = 0; k < gate.inputs.size(); ++k)
      ins[k] = values.data() + static_cast<std::size_t>(gate.inputs[k]) * W;
    std::uint64_t* out =
        values.data() + static_cast<std::size_t>(gate.output) * W;
    if (gate.output == forced_net && forced_words) {
      for (std::size_t w = 0; w < W; ++w) out[w] = forced_words[w];
    } else {
      gate_eval_words_n(gate.type, ins, out, W);
    }
  }
}

std::vector<Words3> Circuit::eval3_words(const std::vector<Words3>& pi_words,
                                         NetId forced_net,
                                         Words3 forced_value) const {
  std::vector<Words3> values;
  eval3_words_into(pi_words, values, forced_net, forced_value);
  return values;
}

void Circuit::eval3_words_into(const std::vector<Words3>& pi_words,
                               std::vector<Words3>& values, NetId forced_net,
                               Words3 forced_value) const {
  values.assign(net_names_.size(), Words3::all_x());
  for (std::size_t i = 0; i < inputs_.size() && i < pi_words.size(); ++i) {
    const NetId n = inputs_[i];
    values[static_cast<std::size_t>(n)] =
        (n == forced_net) ? forced_value : pi_words[i];
  }
  Words3 ins[8];
  for (int g : topo_order()) {
    const Gate& gate = gates_[static_cast<std::size_t>(g)];
    for (std::size_t k = 0; k < gate.inputs.size(); ++k)
      ins[k] = values[static_cast<std::size_t>(gate.inputs[k])];
    values[static_cast<std::size_t>(gate.output)] =
        (gate.output == forced_net) ? forced_value
                                    : gate_eval_words3(gate.type, ins);
  }
}

std::vector<Words3> Circuit::eval3_words(
    const std::vector<std::uint64_t>& pi_bits,
    const std::vector<std::uint64_t>& pi_care, NetId forced_net,
    Words3 forced_value) const {
  const std::size_t n = std::min(pi_bits.size(), pi_care.size());
  std::vector<Words3> pi_words(n);
  for (std::size_t i = 0; i < n; ++i)
    pi_words[i] = Words3::from_bits_care(pi_bits[i], pi_care[i]);
  return eval3_words(pi_words, forced_net, forced_value);
}


std::uint32_t Circuit::gate_input_bits(
    int gate_idx, const std::vector<bool>& net_values) const {
  const Gate& g = gates_[static_cast<std::size_t>(gate_idx)];
  std::uint32_t bits = 0;
  for (std::size_t k = 0; k < g.inputs.size(); ++k)
    if (net_values[static_cast<std::size_t>(g.inputs[k])]) bits |= (1u << k);
  return bits;
}

Circuit decompose_composites(const Circuit& c) {
  Circuit out(c.name() + "_prim");
  // Recreate nets lazily through name mapping.
  for (NetId n : c.inputs()) out.add_input(c.net_name(n));
  int fresh = 0;
  auto helper = [&out, &fresh, &c]() {
    return out.net(c.name() + "_d" + std::to_string(fresh++));
  };
  for (const auto& g : c.gates()) {
    std::vector<NetId> ins;
    ins.reserve(g.inputs.size());
    for (NetId n : g.inputs) ins.push_back(out.net(c.net_name(n)));
    const NetId o = out.net(c.net_name(g.output));
    switch (g.type) {
      case GateType::kBuf: {
        const NetId m = helper();
        out.add_gate(GateType::kInv, g.name + "_a", {ins[0]}, m);
        out.add_gate(GateType::kInv, g.name + "_b", {m}, o);
        break;
      }
      case GateType::kAnd2: {
        const NetId m = helper();
        out.add_gate(GateType::kNand2, g.name + "_n", ins, m);
        out.add_gate(GateType::kInv, g.name + "_i", {m}, o);
        break;
      }
      case GateType::kOr2: {
        const NetId ia = helper();
        const NetId ib = helper();
        out.add_gate(GateType::kInv, g.name + "_ia", {ins[0]}, ia);
        out.add_gate(GateType::kInv, g.name + "_ib", {ins[1]}, ib);
        out.add_gate(GateType::kNand2, g.name + "_n", {ia, ib}, o);
        break;
      }
      case GateType::kXor2: {
        // Classic 4-NAND XOR.
        const NetId t = helper();
        const NetId p = helper();
        const NetId q = helper();
        out.add_gate(GateType::kNand2, g.name + "_t", ins, t);
        out.add_gate(GateType::kNand2, g.name + "_p", {ins[0], t}, p);
        out.add_gate(GateType::kNand2, g.name + "_q", {t, ins[1]}, q);
        out.add_gate(GateType::kNand2, g.name + "_o", {p, q}, o);
        break;
      }
      case GateType::kXnor2: {
        const NetId x = helper();
        const NetId t = helper();
        const NetId p = helper();
        const NetId q = helper();
        out.add_gate(GateType::kNand2, g.name + "_t", ins, t);
        out.add_gate(GateType::kNand2, g.name + "_p", {ins[0], t}, p);
        out.add_gate(GateType::kNand2, g.name + "_q", {t, ins[1]}, q);
        out.add_gate(GateType::kNand2, g.name + "_x", {p, q}, x);
        out.add_gate(GateType::kInv, g.name + "_o", {x}, o);
        break;
      }
      default:
        out.add_gate(g.type, g.name, ins, o);
        break;
    }
  }
  for (NetId n : c.outputs()) out.mark_output(out.net(c.net_name(n)));
  return out;
}

}  // namespace obd::logic

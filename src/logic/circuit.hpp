// Combinational circuit graph: named nets, single-driver gates, topological
// evaluation in 2- and 3-valued logic.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "logic/gate.hpp"
#include "logic/inputvec.hpp"

namespace obd::logic {

using NetId = std::int32_t;
inline constexpr NetId kNoNet = -1;

struct Gate {
  GateType type;
  std::string name;
  std::vector<NetId> inputs;
  NetId output = kNoNet;
};

/// A combinational netlist. Nets are created by name; every non-PI net must
/// be driven by exactly one gate.
class Circuit {
 public:
  explicit Circuit(std::string name = "circuit") : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  // --- Construction --------------------------------------------------------
  /// Gets or creates a net.
  NetId net(const std::string& name);
  /// Declares a net as primary input.
  NetId add_input(const std::string& name);
  /// Declares an existing net as primary output.
  void mark_output(NetId n);
  /// Adds a gate; input arity must match the gate type.
  /// Returns the gate index.
  int add_gate(GateType type, const std::string& name,
               const std::vector<NetId>& inputs, NetId output);

  // --- Structure -----------------------------------------------------------
  std::size_t num_nets() const { return net_names_.size(); }
  std::size_t num_gates() const { return gates_.size(); }
  const std::vector<Gate>& gates() const { return gates_; }
  const Gate& gate(int idx) const { return gates_[static_cast<std::size_t>(idx)]; }
  const std::vector<NetId>& inputs() const { return inputs_; }
  const std::vector<NetId>& outputs() const { return outputs_; }
  const std::string& net_name(NetId n) const {
    return net_names_[static_cast<std::size_t>(n)];
  }
  NetId find_net(const std::string& name) const;
  /// Index of the gate driving a net; -1 for PIs/undriven nets.
  int driver_of(NetId n) const { return driver_[static_cast<std::size_t>(n)]; }
  /// Gate indices that read a net.
  const std::vector<int>& fanout_of(NetId n) const {
    return fanouts_[static_cast<std::size_t>(n)];
  }

  /// Gate indices in topological order (inputs before outputs).
  /// Computed lazily; invalidated by add_gate.
  const std::vector<int>& topo_order() const;
  /// Logic level of each gate (1 + max level of driving gates; gates fed
  /// only by PIs have level 1). Paper's "logic depth".
  std::vector<int> gate_levels() const;
  /// Maximum gate level.
  int depth() const;

  /// Checks structural sanity: every net driven at most once, every gate
  /// input driven or a PI, no combinational cycles. Returns an empty string
  /// when valid, else a diagnostic.
  std::string validate() const;

  // --- Simulation ----------------------------------------------------------
  /// Two-valued evaluation: bit i of `pi_values` is the value of PI i (in
  /// the order they were declared; any width — InputVec converts implicitly
  /// from a uint64_t for circuits of up to 64 PIs). Returns per-net values.
  std::vector<bool> eval(const InputVec& pi_values) const;
  /// PO values only, packed (bit i = output i), any PO count.
  InputVec eval_outputs(const InputVec& pi_values) const;
  /// Packs an existing per-net valuation into the PO vector (bit i =
  /// output i) — the shared tail of eval_outputs and the simulators that
  /// compute per-net values themselves.
  InputVec pack_outputs(const std::vector<bool>& net_values) const;
  /// Three-valued evaluation from explicit per-PI values.
  std::vector<Tri> eval3(const std::vector<Tri>& pi_values) const;

  /// Bit-parallel evaluation: 64 independent patterns at once. Word i of
  /// `pi_words` carries 64 values of PI i (bit k = pattern k). Optionally
  /// forces one net to a fixed word (fault injection): the forced net's
  /// driver output is replaced wholesale. The forced word is per-lane, so
  /// all 64 lanes carry real, independent patterns.
  std::vector<std::uint64_t> eval_words(
      const std::vector<std::uint64_t>& pi_words, NetId forced_net = kNoNet,
      std::uint64_t forced_value = 0) const;

  /// Allocation-free eval_words: writes per-net words into `values`
  /// (resized to num_nets()). The block fault-sim engine calls this once
  /// per 64-pattern block and reuses the buffer across faults.
  void eval_words_into(const std::vector<std::uint64_t>& pi_words,
                       std::vector<std::uint64_t>& values,
                       NetId forced_net = kNoNet,
                       std::uint64_t forced_value = 0) const;

  /// Lane-strided wide evaluation: 64*lane_words independent patterns at
  /// once. PI i's words live at pi_words[i*lane_words .. i*lane_words+W),
  /// and per-net results land at values[net*lane_words ..] (values is
  /// resized to num_nets()*lane_words). Word w of every net is exactly what
  /// eval_words_into would compute from word w of each PI — wide simulation
  /// is bit-identical to W narrow passes. `forced_words` (W words, may be
  /// null for no injection) replaces the forced net's driver output
  /// wholesale, as in eval_words_into.
  void eval_wide_into(const std::vector<std::uint64_t>& pi_words,
                      std::size_t lane_words,
                      std::vector<std::uint64_t>& values,
                      NetId forced_net = kNoNet,
                      const std::uint64_t* forced_words = nullptr) const;

  /// Bit-parallel three-valued evaluation over the same block machinery:
  /// 64 lanes of Kleene values per net in dual-rail words. PIs beyond
  /// `pi_words.size()` and undriven nets are X, matching eval3. A forced
  /// net (fault injection) is pinned to `forced_value` across all lanes.
  std::vector<Words3> eval3_words(const std::vector<Words3>& pi_words,
                                  NetId forced_net = kNoNet,
                                  Words3 forced_value = Words3::all_x()) const;

  /// Allocation-reusing form of eval3_words (values resized to num_nets()).
  void eval3_words_into(const std::vector<Words3>& pi_words,
                        std::vector<Words3>& values, NetId forced_net = kNoNet,
                        Words3 forced_value = Words3::all_x()) const;

  /// Care-mask convenience: 64 incompletely-specified vectors given as
  /// packed (bits, care) PI words — lane k of PI i is X unless bit k of
  /// `pi_care[i]` is set. This is how TestVector::care_mask patterns enter
  /// the X-aware fault simulator.
  std::vector<Words3> eval3_words(const std::vector<std::uint64_t>& pi_bits,
                                  const std::vector<std::uint64_t>& pi_care,
                                  NetId forced_net = kNoNet,
                                  Words3 forced_value = Words3::all_x()) const;


  /// Gate-local input bits for a gate under a per-net valuation.
  std::uint32_t gate_input_bits(int gate_idx,
                                const std::vector<bool>& net_values) const;

 private:
  std::string name_;
  std::vector<std::string> net_names_;
  std::unordered_map<std::string, NetId> net_ids_;
  std::vector<Gate> gates_;
  std::vector<NetId> inputs_;
  std::vector<NetId> outputs_;
  std::vector<int> driver_;
  std::vector<std::vector<int>> fanouts_;
  mutable std::vector<int> topo_cache_;
  mutable bool topo_valid_ = false;
};

/// Rewrites composite gates (BUF/AND/OR/XOR/XNOR) into primitive CMOS gates
/// (INV/NAND) so that every gate carries OBD fault sites. Net names are
/// preserved; helper nets get a "_d<k>" suffix.
Circuit decompose_composites(const Circuit& c);

}  // namespace obd::logic

#include "logic/elaborate.hpp"

#include <cassert>

namespace obd::logic {

Elaboration::Elaboration(const Circuit& circuit, const cells::Technology& tech)
    : circuit_(circuit), tech_(tech) {
  const spice::NodeId vdd = netlist_.node("vdd");
  netlist_.add_vsource("Vdd", vdd, spice::kGround,
                       spice::SourceWave::make_dc(tech_.vdd));

  // Primary inputs: source -> two-inverter buffer -> logic net.
  for (NetId pi : circuit_.inputs()) {
    const std::string& name = circuit_.net_name(pi);
    const spice::NodeId stim = netlist_.node("stim_" + name);
    const spice::NodeId mid = netlist_.node("buf_" + name);
    const spice::NodeId in = netlist_.node(name);
    pi_sources_.push_back(netlist_.add_vsource(
        "Vpi_" + name, stim, spice::kGround, spice::SourceWave::make_dc(0.0)));
    cells::emit_inv(netlist_, "drva_" + name, stim, mid, vdd, tech_);
    cells::emit_inv(netlist_, "drvb_" + name, mid, in, vdd, tech_);
    pi_nodes_.push_back(name);
  }

  // Gates in topological order (order is irrelevant electrically but keeps
  // netlists readable).
  for (int g : circuit_.topo_order()) {
    const Gate& gate = circuit_.gate(g);
    const auto topo = gate_topology(gate.type);
    assert(topo.has_value() && "elaborate requires primitive gates");
    std::vector<spice::NodeId> ins;
    for (NetId in : gate.inputs)
      ins.push_back(netlist_.node(circuit_.net_name(in)));
    const spice::NodeId out = netlist_.node(circuit_.net_name(gate.output));
    cells::emit_cell(netlist_, *topo, gate.name, ins, out, vdd, tech_);
  }

  for (NetId po : circuit_.outputs())
    po_nodes_.push_back(circuit_.net_name(po));
}

std::string Elaboration::transistor_name(int gate_idx,
                                         const cells::TransistorRef& t) const {
  const Gate& g = circuit_.gate(gate_idx);
  return g.name + (t.pmos ? ".MP" : ".MN") + std::to_string(t.input);
}

void Elaboration::set_two_vector(const InputVec& v1, const InputVec& v2,
                                 double t_switch, double t_slew) {
  for (std::size_t i = 0; i < pi_sources_.size(); ++i) {
    const double lvl1 = v1.bit(i) ? tech_.vdd : 0.0;
    const double lvl2 = v2.bit(i) ? tech_.vdd : 0.0;
    pi_sources_[i]->set_wave(spice::SourceWave::make_pwl(
        {{0.0, lvl1}, {t_switch, lvl1}, {t_switch + t_slew, lvl2}}));
  }
}

}  // namespace obd::logic

// Gate-level -> transistor-level elaboration.
//
// Lowers a primitive-gate Circuit into a spice::Netlist using the cell
// library, adds PWL stimulus sources on the primary inputs, and keeps the
// name mapping needed to inject OBD defects on any (gate, transistor) site.
// This is how the Fig. 9 full-adder experiment runs end to end: logic
// circuit -> transistors -> OBD injection -> transient -> waveforms at the
// primary output.
#pragma once

#include <string>
#include <vector>

#include "cells/cells.hpp"
#include "logic/circuit.hpp"
#include "spice/netlist.hpp"

namespace obd::logic {

/// An elaborated circuit: the spice netlist plus name mappings.
class Elaboration {
 public:
  /// Elaborates `circuit` (primitive gates only; run decompose_composites
  /// first if needed). Nets keep their logic-level names; gate instances
  /// are named after the gate. Each PI gets a source "Vpi_<name>" followed
  /// by a two-inverter buffer (as in the Fig. 5 harness) so every gate is
  /// driven by real gates.
  Elaboration(const Circuit& circuit, const cells::Technology& tech);

  spice::Netlist& netlist() { return netlist_; }
  const spice::Netlist& netlist() const { return netlist_; }
  const Circuit& circuit() const { return circuit_; }
  const cells::Technology& tech() const { return tech_; }

  /// Spice device name of a transistor inside a gate.
  std::string transistor_name(int gate_idx,
                              const cells::TransistorRef& t) const;

  /// Programs the PI sources with a two-vector transition (bit i of v = PI
  /// i; any width). V1 holds until t_switch, then ramps over t_slew.
  void set_two_vector(const InputVec& v1, const InputVec& v2, double t_switch,
                      double t_slew = 50e-12);

  /// Node names of primary inputs (post-buffer, as seen by the logic) and
  /// primary outputs.
  const std::vector<std::string>& pi_nodes() const { return pi_nodes_; }
  const std::vector<std::string>& po_nodes() const { return po_nodes_; }

 private:
  Circuit circuit_;
  cells::Technology tech_;
  spice::Netlist netlist_;
  std::vector<spice::VoltageSource*> pi_sources_;
  std::vector<std::string> pi_nodes_;
  std::vector<std::string> po_nodes_;
};

}  // namespace obd::logic

#include "logic/gate.hpp"

#include "logic/laneblock.hpp"

namespace obd::logic {

int gate_arity(GateType t) {
  switch (t) {
    case GateType::kBuf:
    case GateType::kInv:
      return 1;
    case GateType::kNand2:
    case GateType::kNor2:
    case GateType::kAnd2:
    case GateType::kOr2:
    case GateType::kXor2:
    case GateType::kXnor2:
      return 2;
    case GateType::kNand3:
    case GateType::kNor3:
    case GateType::kAoi21:
    case GateType::kOai21:
      return 3;
    case GateType::kNand4:
    case GateType::kNor4:
    case GateType::kAoi22:
      return 4;
  }
  return 0;
}

const char* gate_type_name(GateType t) {
  switch (t) {
    case GateType::kBuf: return "BUF";
    case GateType::kInv: return "INV";
    case GateType::kNand2: return "NAND2";
    case GateType::kNand3: return "NAND3";
    case GateType::kNand4: return "NAND4";
    case GateType::kNor2: return "NOR2";
    case GateType::kNor3: return "NOR3";
    case GateType::kNor4: return "NOR4";
    case GateType::kAnd2: return "AND2";
    case GateType::kOr2: return "OR2";
    case GateType::kXor2: return "XOR2";
    case GateType::kXnor2: return "XNOR2";
    case GateType::kAoi21: return "AOI21";
    case GateType::kAoi22: return "AOI22";
    case GateType::kOai21: return "OAI21";
  }
  return "?";
}

bool gate_eval(GateType t, std::uint32_t v) {
  const bool a = v & 1u;
  const bool b = v & 2u;
  const bool c = v & 4u;
  const bool d = v & 8u;
  switch (t) {
    case GateType::kBuf: return a;
    case GateType::kInv: return !a;
    case GateType::kNand2: return !(a && b);
    case GateType::kNand3: return !(a && b && c);
    case GateType::kNand4: return !(a && b && c && d);
    case GateType::kNor2: return !(a || b);
    case GateType::kNor3: return !(a || b || c);
    case GateType::kNor4: return !(a || b || c || d);
    case GateType::kAnd2: return a && b;
    case GateType::kOr2: return a || b;
    case GateType::kXor2: return a != b;
    case GateType::kXnor2: return a == b;
    case GateType::kAoi21: return !((a && b) || c);
    case GateType::kAoi22: return !((a && b) || (c && d));
    case GateType::kOai21: return !((a || b) && c);
  }
  return false;
}

char tri_char(Tri v) {
  switch (v) {
    case Tri::k0: return '0';
    case Tri::k1: return '1';
    case Tri::kX: return 'X';
  }
  return '?';
}

Tri gate_eval3(GateType t, const Tri* in) {
  const int n = gate_arity(t);
  // If no X among inputs, defer to the boolean function.
  bool any_x = false;
  std::uint32_t bits = 0;
  for (int i = 0; i < n; ++i) {
    if (in[i] == Tri::kX) {
      any_x = true;
    } else if (in[i] == Tri::k1) {
      bits |= (1u << i);
    }
  }
  if (!any_x) return tri_of(gate_eval(t, bits));

  // With X present: the output is known iff it is identical for all
  // completions of the X inputs. Arity <= 4 so enumeration is cheap.
  std::uint32_t x_mask = 0;
  for (int i = 0; i < n; ++i)
    if (in[i] == Tri::kX) x_mask |= (1u << i);
  bool first = true;
  bool value = false;
  for (std::uint32_t sub = x_mask;; sub = (sub - 1) & x_mask) {
    const bool out = gate_eval(t, bits | sub);
    if (first) {
      value = out;
      first = false;
    } else if (out != value) {
      return Tri::kX;
    }
    if (sub == 0) break;
  }
  return tri_of(value);
}

std::uint64_t gate_eval_words(GateType t, const std::uint64_t* in) {
  switch (t) {
    case GateType::kBuf: return in[0];
    case GateType::kInv: return ~in[0];
    case GateType::kNand2: return ~(in[0] & in[1]);
    case GateType::kNand3: return ~(in[0] & in[1] & in[2]);
    case GateType::kNand4: return ~(in[0] & in[1] & in[2] & in[3]);
    case GateType::kNor2: return ~(in[0] | in[1]);
    case GateType::kNor3: return ~(in[0] | in[1] | in[2]);
    case GateType::kNor4: return ~(in[0] | in[1] | in[2] | in[3]);
    case GateType::kAnd2: return in[0] & in[1];
    case GateType::kOr2: return in[0] | in[1];
    case GateType::kXor2: return in[0] ^ in[1];
    case GateType::kXnor2: return ~(in[0] ^ in[1]);
    case GateType::kAoi21: return ~((in[0] & in[1]) | in[2]);
    case GateType::kAoi22: return ~((in[0] & in[1]) | (in[2] & in[3]));
    case GateType::kOai21: return ~((in[0] | in[1]) & in[2]);
  }
  return 0;
}

void gate_eval_words_n(GateType t, const std::uint64_t* const* inputs,
                       std::uint64_t* out, std::size_t n_words) {
  gate_eval_lanes(t, inputs, out, n_words);
}

Words3 gate_eval_words3(GateType t, const Words3* in) {
  switch (t) {
    case GateType::kXor2: {
      Words3 out;
      out.can1 = (in[0].can1 & in[1].can0) | (in[0].can0 & in[1].can1);
      out.can0 = (in[0].can0 & in[1].can0) | (in[0].can1 & in[1].can1);
      return out;
    }
    case GateType::kXnor2: {
      Words3 out;
      out.can0 = (in[0].can1 & in[1].can0) | (in[0].can0 & in[1].can1);
      out.can1 = (in[0].can0 & in[1].can0) | (in[0].can1 & in[1].can1);
      return out;
    }
    default:
      break;
  }
  // Unate gates: the output extremes are reached at the input extremes.
  // Minimal completion of a lane is 0 where can0, else 1; maximal is 1
  // where can1, else 0.
  const int n = gate_arity(t);
  std::uint64_t lo[8], hi[8];
  for (int k = 0; k < n; ++k) {
    lo[k] = ~in[k].can0;
    hi[k] = in[k].can1;
  }
  const bool positive_unate =
      t == GateType::kBuf || t == GateType::kAnd2 || t == GateType::kOr2;
  Words3 out;
  if (positive_unate) {
    out.can1 = gate_eval_words(t, hi);
    out.can0 = ~gate_eval_words(t, lo);
  } else {
    // INV/NAND/NOR/AOI/OAI: negative-unate in every input.
    out.can1 = gate_eval_words(t, lo);
    out.can0 = ~gate_eval_words(t, hi);
  }
  return out;
}

bool is_primitive_cmos(GateType t) {
  switch (t) {
    case GateType::kInv:
    case GateType::kNand2:
    case GateType::kNand3:
    case GateType::kNand4:
    case GateType::kNor2:
    case GateType::kNor3:
    case GateType::kNor4:
    case GateType::kAoi21:
    case GateType::kAoi22:
    case GateType::kOai21:
      return true;
    default:
      return false;
  }
}

std::optional<cells::CellTopology> gate_topology(GateType t) {
  switch (t) {
    case GateType::kInv: return cells::inv_topology();
    case GateType::kNand2: return cells::nand_topology(2);
    case GateType::kNand3: return cells::nand_topology(3);
    case GateType::kNand4: return cells::nand_topology(4);
    case GateType::kNor2: return cells::nor_topology(2);
    case GateType::kNor3: return cells::nor_topology(3);
    case GateType::kNor4: return cells::nor_topology(4);
    case GateType::kAoi21: return cells::aoi21_topology();
    case GateType::kAoi22: return cells::aoi22_topology();
    case GateType::kOai21: return cells::oai21_topology();
    default: return std::nullopt;
  }
}

}  // namespace obd::logic

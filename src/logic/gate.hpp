// Gate-level primitives.
//
// Two families:
//  - primitive static-CMOS gates (INV/NAND/NOR/AOI/OAI) that correspond 1:1
//    to a cells::CellTopology; OBD faults live on their transistors;
//  - composite conveniences (BUF/AND/OR/XOR/XNOR) used by generators and
//    benchmarks; decompose_composites() lowers them to primitives before
//    OBD fault analysis.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

#include "cells/topology.hpp"

namespace obd::logic {

enum class GateType {
  kBuf,
  kInv,
  kNand2,
  kNand3,
  kNand4,
  kNor2,
  kNor3,
  kNor4,
  kAnd2,
  kOr2,
  kXor2,
  kXnor2,
  kAoi21,
  kAoi22,
  kOai21,
};

/// Number of inputs of a gate type.
int gate_arity(GateType t);

/// Printable name ("NAND2", ...).
const char* gate_type_name(GateType t);

/// Boolean function: bit i of `inputs` is the value of input i.
bool gate_eval(GateType t, std::uint32_t inputs);

/// Three-valued logic value.
enum class Tri : std::uint8_t { k0 = 0, k1 = 1, kX = 2 };

inline Tri tri_of(bool b) { return b ? Tri::k1 : Tri::k0; }
char tri_char(Tri v);

/// Three-valued gate evaluation (inputs as array of Tri).
Tri gate_eval3(GateType t, const Tri* inputs);

/// Bit-parallel gate evaluation: each word carries 64 independent patterns.
std::uint64_t gate_eval_words(GateType t, const std::uint64_t* inputs);

/// Multi-word gate evaluation: input k is `inputs[k][0..n_words)`, the
/// result lands in `out[0..n_words)` — 64*n_words independent patterns per
/// call. Dispatches to the SIMD/unrolled LaneBlock kernels of
/// laneblock.hpp for the supported widths (1/2/4/8 words); other widths run
/// word-by-word. Word w of the output equals gate_eval_words over word w of
/// each input, which is what makes wide and narrow simulation bit-identical.
void gate_eval_words_n(GateType t, const std::uint64_t* const* inputs,
                       std::uint64_t* out, std::size_t n_words);

/// Dual-rail encoding of 64 three-valued lanes: bit k of `can0`/`can1` says
/// the lane-k value can resolve to 0/1. Exactly one bit set = known value,
/// both set = X. (Both clear is unused/invalid.)
struct Words3 {
  std::uint64_t can0 = 0;
  std::uint64_t can1 = 0;

  static Words3 of(bool v) { return v ? Words3{0, ~0ull} : Words3{~0ull, 0}; }
  static Words3 all_x() { return {~0ull, ~0ull}; }
  /// Packs 64 partially-specified lanes: care-bit lanes carry `bits`,
  /// the rest are X. The bridge from (TestVector::bits, care_mask) pairs
  /// into the dual-rail evaluator.
  static Words3 from_bits_care(std::uint64_t bits, std::uint64_t care) {
    return {~bits | ~care, bits | ~care};
  }
  std::uint64_t known() const { return can0 ^ can1; }
  std::uint64_t x_mask() const { return can0 & can1; }
};

/// Bit-parallel three-valued gate evaluation, lane-exact w.r.t. gate_eval3.
/// All primitive CMOS gates (and BUF/AND/OR) are unate in every input, so
/// both rails come from two two-valued gate_eval_words calls on the extreme
/// completions; XOR/XNOR get exact dual-rail formulas.
Words3 gate_eval_words3(GateType t, const Words3* inputs);

/// True for gates that map directly onto a CMOS cell (OBD faults defined).
bool is_primitive_cmos(GateType t);

/// The cell topology of a primitive gate; nullopt for composites.
std::optional<cells::CellTopology> gate_topology(GateType t);

}  // namespace obd::logic

// Wide primary-input vectors: bit i = PI i, any number of PIs.
//
// The original engine encoded every test vector in one std::uint64_t, which
// capped circuits (and full-scan views) at 64 primary inputs. InputVec lifts
// that ceiling: conceptually an infinite, zero-extended bit vector, stored as
// one inline word plus an overflow vector that is only touched past bit 63 —
// so every circuit that fit before still runs allocation-free, and vectors
// compare/hash by value regardless of how many trailing zero words a
// computation happened to materialize.
//
// The type is deliberately *not* implicitly convertible back to an integer;
// callers that know they are narrow use u64(). Bitwise &, |, ^ and shifts
// mirror the integer operators (there is no operator~ — complementing an
// infinite zero-extended vector is not meaningful; mask with mask(n) instead).
#pragma once

#include <algorithm>
#include <bit>
#include <compare>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <ostream>
#include <vector>

#include "util/prng.hpp"

namespace obd::logic {

class InputVec {
 public:
  InputVec() = default;
  /// Implicit on purpose: a uint64_t *is* a one-word input vector, and the
  /// conversion keeps every narrow call site (`eval(0b101)`, `{p, p}`
  /// aggregate tests) source-compatible.
  InputVec(std::uint64_t word) : w0_(word) {}  // NOLINT(runtime/explicit)

  // --- Word access -------------------------------------------------------
  /// Stored words (>= 1; trailing zero words are trimmed away, so two equal
  /// vectors always report the same count).
  std::size_t nwords() const { return 1 + hi_.size(); }
  /// Word `i` of the vector; zero beyond the stored words.
  std::uint64_t word(std::size_t i) const {
    if (i == 0) return w0_;
    return i <= hi_.size() ? hi_[i - 1] : 0;
  }
  void set_word(std::size_t i, std::uint64_t w) {
    if (i == 0) {
      w0_ = w;
      return;
    }
    if (i > hi_.size()) {
      if (w == 0) return;
      hi_.resize(i, 0);
    }
    hi_[i - 1] = w;
    if (w == 0) trim();
  }
  /// Low 64 bits. The narrow-interop escape hatch: only meaningful when the
  /// caller knows the vector fits one word.
  std::uint64_t u64() const { return w0_; }
  explicit operator std::uint64_t() const { return w0_; }

  // --- Bit access --------------------------------------------------------
  bool bit(std::size_t i) const { return (word(i >> 6) >> (i & 63)) & 1u; }
  void set_bit(std::size_t i, bool v = true) {
    const std::size_t w = i >> 6;
    const std::uint64_t m = 1ull << (i & 63);
    set_word(w, v ? (word(w) | m) : (word(w) & ~m));
  }

  bool any() const {
    if (w0_) return true;
    for (std::uint64_t w : hi_)
      if (w) return true;
    return false;
  }
  bool none() const { return !any(); }
  int popcount() const {
    int n = std::popcount(w0_);
    for (std::uint64_t w : hi_) n += std::popcount(w);
    return n;
  }

  // --- Whole-vector constructors ----------------------------------------
  /// Low `n_bits` bits set (the all-care mask of an n-PI circuit).
  static InputVec mask(std::size_t n_bits) {
    InputVec v;
    for (std::size_t w = 0; w * 64 < n_bits; ++w) {
      const std::size_t rest = n_bits - w * 64;
      v.set_word(w, rest >= 64 ? ~0ull : ((1ull << rest) - 1));
    }
    return v;
  }
  /// `n_bits` uniform random bits, consuming ceil(n_bits/64) PRNG draws —
  /// exactly one draw (the historical sequence) for any width <= 64.
  static InputVec random(std::size_t n_bits, util::Prng& prng) {
    InputVec v;
    if (n_bits == 0) return v;
    const std::size_t words = (n_bits + 63) / 64;
    for (std::size_t w = 0; w < words; ++w) v.set_word(w, prng.next_u64());
    v.mask_to(n_bits);
    return v;
  }
  /// Bit i of the result = `value`, for i < n_bits (broadcast fill).
  static InputVec broadcast(bool value, std::size_t n_bits) {
    return value ? mask(n_bits) : InputVec{};
  }

  /// Clears every bit at position >= n_bits.
  void mask_to(std::size_t n_bits) {
    const std::size_t keep_words = (n_bits + 63) / 64;
    if (hi_.size() + 1 > keep_words)
      hi_.resize(keep_words > 0 ? keep_words - 1 : 0);
    if (n_bits == 0) {
      w0_ = 0;
      return;
    }
    if (n_bits & 63) {
      const std::uint64_t m = (1ull << (n_bits & 63)) - 1;
      set_word(keep_words - 1, word(keep_words - 1) & m);
    }
    trim();
  }

  // --- Bitwise ops (zero-extended; no operator~) -------------------------
  friend InputVec operator&(const InputVec& a, const InputVec& b) {
    return binop(a, b, [](std::uint64_t x, std::uint64_t y) { return x & y; });
  }
  friend InputVec operator|(const InputVec& a, const InputVec& b) {
    return binop(a, b, [](std::uint64_t x, std::uint64_t y) { return x | y; });
  }
  friend InputVec operator^(const InputVec& a, const InputVec& b) {
    return binop(a, b, [](std::uint64_t x, std::uint64_t y) { return x ^ y; });
  }
  InputVec& operator&=(const InputVec& o) { return *this = *this & o; }
  InputVec& operator|=(const InputVec& o) { return *this = *this | o; }
  InputVec& operator^=(const InputVec& o) { return *this = *this ^ o; }
  /// a & ~b without materializing an infinite complement.
  friend InputVec and_not(const InputVec& a, const InputVec& b) {
    return binop(a, b, [](std::uint64_t x, std::uint64_t y) { return x & ~y; });
  }

  InputVec operator<<(std::size_t shift) const {
    InputVec out;
    const std::size_t ws = shift >> 6, bs = shift & 63;
    const std::size_t n = nwords();
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t w = word(i);
      if (!w) continue;
      out.set_word(i + ws, out.word(i + ws) | (w << bs));
      if (bs) out.set_word(i + ws + 1, out.word(i + ws + 1) | (w >> (64 - bs)));
    }
    return out;
  }
  InputVec operator>>(std::size_t shift) const {
    InputVec out;
    const std::size_t ws = shift >> 6, bs = shift & 63;
    const std::size_t n = nwords();
    for (std::size_t i = ws; i < n; ++i) {
      std::uint64_t w = word(i) >> bs;
      if (bs) w |= word(i + 1) << (64 - bs);
      out.set_word(i - ws, w);
    }
    return out;
  }
  /// Bits [offset, offset + width) as a fresh vector.
  InputVec slice(std::size_t offset, std::size_t width) const {
    InputVec out = *this >> offset;
    out.mask_to(width);
    return out;
  }

  // --- Care-companion helpers -------------------------------------------
  // TestVector pairs an InputVec of values with an InputVec of care bits;
  // these are the word-strided forms of the X-compaction primitives.

  /// No position is required 0 by (b1, c1) and 1 by (b2, c2): the merge
  /// precondition of partially-specified tests. Allocation-free.
  static bool compatible(const InputVec& b1, const InputVec& c1,
                         const InputVec& b2, const InputVec& c2) {
    const std::size_t n = std::max(b1.nwords(), b2.nwords());
    for (std::size_t w = 0; w < n; ++w)
      if ((b1.word(w) ^ b2.word(w)) & c1.word(w) & c2.word(w)) return false;
    return true;
  }
  /// (b1 & c1) | (b2 & c2): the merged values under the united care mask.
  static InputVec merge(const InputVec& b1, const InputVec& c1,
                        const InputVec& b2, const InputVec& c2) {
    InputVec out;
    const std::size_t n = std::max(b1.nwords(), b2.nwords());
    for (std::size_t w = 0; w < n; ++w)
      out.set_word(w, (b1.word(w) & c1.word(w)) | (b2.word(w) & c2.word(w)));
    return out;
  }

  // --- Comparison / hashing ---------------------------------------------
  friend bool operator==(const InputVec& a, const InputVec& b) {
    const std::size_t n = std::max(a.nwords(), b.nwords());
    for (std::size_t w = 0; w < n; ++w)
      if (a.word(w) != b.word(w)) return false;
    return true;
  }
  /// Numeric order (zero-extended): highest differing word decides.
  friend std::strong_ordering operator<=>(const InputVec& a,
                                          const InputVec& b) {
    const std::size_t n = std::max(a.nwords(), b.nwords());
    for (std::size_t w = n; w-- > 0;) {
      const std::uint64_t x = a.word(w), y = b.word(w);
      if (x != y) return x <=> y;
    }
    return std::strong_ordering::equal;
  }

  /// FNV-1a over the trimmed words; equal vectors hash equally no matter
  /// how they were built.
  std::size_t hash() const {
    std::uint64_t h = 0xcbf29ce484222325ull;
    const std::size_t n = nwords();
    for (std::size_t w = 0; w < n; ++w) {
      const std::uint64_t v = word(w);
      for (int b = 0; b < 8; ++b) {
        h ^= (v >> (8 * b)) & 0xff;
        h *= 0x100000001b3ull;
      }
    }
    return static_cast<std::size_t>(h);
  }

  /// Hex dump, most-significant word first (gtest failure messages).
  friend std::ostream& operator<<(std::ostream& os, const InputVec& v) {
    os << "0x";
    for (std::size_t w = v.nwords(); w-- > 0;) {
      char buf[17];
      std::snprintf(buf, sizeof buf, w + 1 == v.nwords() ? "%llx" : "%016llx",
                    static_cast<unsigned long long>(v.word(w)));
      os << buf;
    }
    return os;
  }

 private:
  template <typename Op>
  static InputVec binop(const InputVec& a, const InputVec& b, Op op) {
    InputVec out;
    const std::size_t n = std::max(a.nwords(), b.nwords());
    for (std::size_t w = n; w-- > 0;)  // high-to-low: one resize at most
      out.set_word(w, op(a.word(w), b.word(w)));
    return out;
  }

  void trim() {
    while (!hi_.empty() && hi_.back() == 0) hi_.pop_back();
  }

  std::uint64_t w0_ = 0;             // bits 0..63, always inline
  std::vector<std::uint64_t> hi_;    // bits 64.. (trimmed of trailing zeros)
};

/// Calls fn(i) for every set bit i < n_bits, word-strided: a one-word
/// vector costs a single countr_zero loop, a wide one costs one pass per
/// 64 bits. The shared kernel of the engine's lane-scatter and broadcast
/// paths.
template <typename Fn>
void for_each_set_bit(const InputVec& v, std::size_t n_bits, Fn fn) {
  const std::size_t words = std::min(v.nwords(), (n_bits + 63) / 64);
  for (std::size_t wi = 0; wi < words; ++wi) {
    std::uint64_t w = v.word(wi);
    while (w) {
      const std::size_t i =
          wi * 64 + static_cast<std::size_t>(std::countr_zero(w));
      w &= w - 1;
      if (i < n_bits) fn(i);
    }
  }
}

}  // namespace obd::logic

template <>
struct std::hash<obd::logic::InputVec> {
  std::size_t operator()(const obd::logic::InputVec& v) const {
    return v.hash();
  }
};

// Multi-word pattern lanes: a LaneBlock<W> bundles W 64-bit words, i.e.
// 64*W independent simulation lanes, and gives them the handful of bitwise
// operators the fault simulators need. All hot loops in the bit-parallel
// engine are pure AND/OR/XOR/NOT over such bundles, so widening the engine
// past one word is entirely a matter of running these ops over W words at a
// time.
//
// Two backends share one interface:
//   - an AVX2 path (compiled when the translation unit is built with
//     -mavx2 / -march=native; see the OBD_NATIVE CMake option) processing
//     256 bits per instruction for W % 4 == 0;
//   - a portable scalar loop for everything else. With W fixed at compile
//     time the loop is fully unrolled, so even the portable path keeps the
//     vector units fed on compilers that auto-vectorize.
//
// Lane numbering is word-major: lane L lives at bit (L & 63) of word
// (L >> 6). A one-word LaneBlock is bit-for-bit the engine's historical
// std::uint64_t lane word, which is what keeps detection results identical
// across lane widths.
#pragma once

#include <cstddef>
#include <cstdint>

#if defined(__AVX2__)
#include <immintrin.h>
#endif

#include "logic/gate.hpp"

namespace obd::logic {

/// Lane widths the engine supports (words per lane bundle). Kept small so
/// every width has a compile-time-specialized kernel; the CLI exposes them
/// as --lanes 64/128/256/512.
inline constexpr std::size_t kLaneWordChoices[] = {1, 2, 4, 8};

inline bool valid_lane_words(std::size_t w) {
  for (std::size_t c : kLaneWordChoices)
    if (c == w) return true;
  return false;
}

template <std::size_t W>
struct LaneBlock {
  std::uint64_t w[W];

  static LaneBlock load(const std::uint64_t* p) {
    LaneBlock b;
#if defined(__AVX2__)
    if constexpr (W % 4 == 0) {
      for (std::size_t i = 0; i < W; i += 4)
        _mm256_storeu_si256(
            reinterpret_cast<__m256i*>(b.w + i),
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + i)));
      return b;
    }
#endif
    for (std::size_t i = 0; i < W; ++i) b.w[i] = p[i];
    return b;
  }

  void store(std::uint64_t* p) const {
#if defined(__AVX2__)
    if constexpr (W % 4 == 0) {
      for (std::size_t i = 0; i < W; i += 4)
        _mm256_storeu_si256(
            reinterpret_cast<__m256i*>(p + i),
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + i)));
      return;
    }
#endif
    for (std::size_t i = 0; i < W; ++i) p[i] = w[i];
  }

  static LaneBlock splat(std::uint64_t v) {
    LaneBlock b;
    for (std::size_t i = 0; i < W; ++i) b.w[i] = v;
    return b;
  }

  friend LaneBlock operator&(const LaneBlock& a, const LaneBlock& b) {
    LaneBlock o;
#if defined(__AVX2__)
    if constexpr (W % 4 == 0) {
      for (std::size_t i = 0; i < W; i += 4)
        _mm256_storeu_si256(
            reinterpret_cast<__m256i*>(o.w + i),
            _mm256_and_si256(
                _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a.w + i)),
                _mm256_loadu_si256(
                    reinterpret_cast<const __m256i*>(b.w + i))));
      return o;
    }
#endif
    for (std::size_t i = 0; i < W; ++i) o.w[i] = a.w[i] & b.w[i];
    return o;
  }

  friend LaneBlock operator|(const LaneBlock& a, const LaneBlock& b) {
    LaneBlock o;
#if defined(__AVX2__)
    if constexpr (W % 4 == 0) {
      for (std::size_t i = 0; i < W; i += 4)
        _mm256_storeu_si256(
            reinterpret_cast<__m256i*>(o.w + i),
            _mm256_or_si256(
                _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a.w + i)),
                _mm256_loadu_si256(
                    reinterpret_cast<const __m256i*>(b.w + i))));
      return o;
    }
#endif
    for (std::size_t i = 0; i < W; ++i) o.w[i] = a.w[i] | b.w[i];
    return o;
  }

  friend LaneBlock operator^(const LaneBlock& a, const LaneBlock& b) {
    LaneBlock o;
#if defined(__AVX2__)
    if constexpr (W % 4 == 0) {
      for (std::size_t i = 0; i < W; i += 4)
        _mm256_storeu_si256(
            reinterpret_cast<__m256i*>(o.w + i),
            _mm256_xor_si256(
                _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a.w + i)),
                _mm256_loadu_si256(
                    reinterpret_cast<const __m256i*>(b.w + i))));
      return o;
    }
#endif
    for (std::size_t i = 0; i < W; ++i) o.w[i] = a.w[i] ^ b.w[i];
    return o;
  }

  friend LaneBlock operator~(const LaneBlock& a) {
#if defined(__AVX2__)
    if constexpr (W % 4 == 0) {
      LaneBlock o;
      const __m256i ones = _mm256_set1_epi64x(-1);
      for (std::size_t i = 0; i < W; i += 4)
        _mm256_storeu_si256(
            reinterpret_cast<__m256i*>(o.w + i),
            _mm256_xor_si256(
                _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a.w + i)),
                ones));
      return o;
    }
#endif
    LaneBlock o;
    for (std::size_t i = 0; i < W; ++i) o.w[i] = ~a.w[i];
    return o;
  }
};

/// out[0..W) = gate function of the W-word input bundles. The wide
/// counterpart of gate_eval_words; a LaneBlock<1> call computes exactly the
/// same bits.
template <std::size_t W>
inline void gate_eval_block(GateType t, const std::uint64_t* const* in,
                            std::uint64_t* out) {
  using L = LaneBlock<W>;
  const auto A = [&](int k) { return L::load(in[k]); };
  switch (t) {
    case GateType::kBuf: A(0).store(out); return;
    case GateType::kInv: (~A(0)).store(out); return;
    case GateType::kNand2: (~(A(0) & A(1))).store(out); return;
    case GateType::kNand3: (~(A(0) & A(1) & A(2))).store(out); return;
    case GateType::kNand4: (~(A(0) & A(1) & A(2) & A(3))).store(out); return;
    case GateType::kNor2: (~(A(0) | A(1))).store(out); return;
    case GateType::kNor3: (~(A(0) | A(1) | A(2))).store(out); return;
    case GateType::kNor4: (~(A(0) | A(1) | A(2) | A(3))).store(out); return;
    case GateType::kAnd2: (A(0) & A(1)).store(out); return;
    case GateType::kOr2: (A(0) | A(1)).store(out); return;
    case GateType::kXor2: (A(0) ^ A(1)).store(out); return;
    case GateType::kXnor2: (~(A(0) ^ A(1))).store(out); return;
    case GateType::kAoi21: (~((A(0) & A(1)) | A(2))).store(out); return;
    case GateType::kAoi22:
      (~((A(0) & A(1)) | (A(2) & A(3)))).store(out);
      return;
    case GateType::kOai21: (~((A(0) | A(1)) & A(2))).store(out); return;
  }
}

/// Runtime-width dispatch to the compile-time kernels. Widths outside
/// kLaneWordChoices fall back to a word-at-a-time loop (correct, unfused).
inline void gate_eval_lanes(GateType t, const std::uint64_t* const* in,
                            std::uint64_t* out, std::size_t n_words) {
  switch (n_words) {
    case 1: gate_eval_block<1>(t, in, out); return;
    case 2: gate_eval_block<2>(t, in, out); return;
    case 4: gate_eval_block<4>(t, in, out); return;
    case 8: gate_eval_block<8>(t, in, out); return;
    default: {
      std::uint64_t tmp[8];
      const int arity = gate_arity(t);
      for (std::size_t w = 0; w < n_words; ++w) {
        for (int k = 0; k < arity; ++k) tmp[k] = in[k][w];
        out[w] = gate_eval_words(t, tmp);
      }
      return;
    }
  }
}

/// True when some word of [a, a + n) differs from the matching word of b.
inline bool lanes_differ(const std::uint64_t* a, const std::uint64_t* b,
                         std::size_t n_words) {
  std::uint64_t d = 0;
  for (std::size_t w = 0; w < n_words; ++w) d |= a[w] ^ b[w];
  return d != 0;
}

/// OR-reduction of the lane-wise XOR of the two bundles: zero iff they are
/// identical; any set bit names a lane position that flipped in some word.
inline std::uint64_t lanes_xor_reduce(const std::uint64_t* a,
                                      const std::uint64_t* b,
                                      std::size_t n_words) {
  std::uint64_t d = 0;
  for (std::size_t w = 0; w < n_words; ++w) d |= a[w] ^ b[w];
  return d;
}

/// Bitmask over word indices: bit w is set when word w of the two bundles
/// differs. Callers iterate set bits to copy only the changed words
/// (n_words <= 64, which kLaneWordChoices guarantees with a wide margin).
inline std::uint64_t lanes_changed_words(const std::uint64_t* a,
                                         const std::uint64_t* b,
                                         std::size_t n_words) {
  std::uint64_t m = 0;
  for (std::size_t w = 0; w < n_words; ++w)
    m |= static_cast<std::uint64_t>((a[w] ^ b[w]) != 0) << w;
  return m;
}

}  // namespace obd::logic

// Umbrella header for the gate-level substrate.
#pragma once

#include "logic/circuit.hpp"    // IWYU pragma: export
#include "logic/elaborate.hpp"  // IWYU pragma: export
#include "logic/gate.hpp"       // IWYU pragma: export
#include "logic/netfmt.hpp"     // IWYU pragma: export
#include "logic/sequential.hpp" // IWYU pragma: export
#include "logic/sta.hpp"        // IWYU pragma: export
#include "logic/timingsim.hpp"  // IWYU pragma: export
#include "logic/zoo.hpp"        // IWYU pragma: export

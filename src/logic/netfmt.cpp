#include "logic/netfmt.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "util/strings.hpp"

namespace obd::logic {
namespace {

const std::map<std::string, GateType>& type_by_name() {
  static const std::map<std::string, GateType> kMap = {
      {"BUF", GateType::kBuf},     {"INV", GateType::kInv},
      {"NAND2", GateType::kNand2}, {"NAND3", GateType::kNand3},
      {"NAND4", GateType::kNand4}, {"NOR2", GateType::kNor2},
      {"NOR3", GateType::kNor3},   {"NOR4", GateType::kNor4},
      {"AND2", GateType::kAnd2},   {"OR2", GateType::kOr2},
      {"XOR2", GateType::kXor2},   {"XNOR2", GateType::kXnor2},
      {"AOI21", GateType::kAoi21}, {"AOI22", GateType::kAoi22},
      {"OAI21", GateType::kOai21},
  };
  return kMap;
}

}  // namespace

ParseResult parse_netlist(const std::string& text) {
  ParseResult result;
  Circuit c;
  bool named = false;
  int line_no = 0;
  std::istringstream in(text);
  std::string line;
  auto fail = [&result, &line_no](const std::string& msg) {
    result.error = "line " + std::to_string(line_no) + ": " + msg;
    return result;
  };

  std::vector<std::string> pending_outputs;
  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    const auto tokens = util::split_ws(line);
    if (tokens.empty()) continue;
    const std::string& kw = tokens[0];
    if (kw == ".model") {
      if (tokens.size() != 2) return fail(".model needs exactly one name");
      c = Circuit(tokens[1]);
      named = true;
    } else if (kw == ".inputs") {
      for (std::size_t i = 1; i < tokens.size(); ++i) c.add_input(tokens[i]);
    } else if (kw == ".outputs") {
      for (std::size_t i = 1; i < tokens.size(); ++i)
        pending_outputs.push_back(tokens[i]);
    } else if (kw == ".gate") {
      if (tokens.size() < 3) return fail(".gate needs type and output");
      const auto it = type_by_name().find(tokens[1]);
      if (it == type_by_name().end())
        return fail("unknown gate type '" + tokens[1] + "'");
      const GateType t = it->second;
      const int arity = gate_arity(t);
      if (static_cast<int>(tokens.size()) != 3 + arity)
        return fail(tokens[1] + " expects " + std::to_string(arity) +
                    " inputs");
      std::vector<NetId> ins;
      for (int k = 0; k < arity; ++k)
        ins.push_back(c.net(tokens[static_cast<std::size_t>(3 + k)]));
      const NetId out = c.net(tokens[2]);
      // Catch double drives here, with the offending line, instead of
      // letting add_gate silently overwrite the driver and validate()
      // report it without location after the fact.
      if (c.driver_of(out) >= 0)
        return fail("net '" + tokens[2] + "' already driven by gate '" +
                    c.gate(c.driver_of(out)).name + "'");
      if (std::find(c.inputs().begin(), c.inputs().end(), out) !=
          c.inputs().end())
        return fail("net '" + tokens[2] + "' is a declared input");
      c.add_gate(t, tokens[2], ins, out);
    } else if (kw == ".end") {
      break;
    } else {
      return fail("unknown directive '" + kw + "'");
    }
  }
  if (!named) {
    result.error = "missing .model";
    return result;
  }
  for (const auto& o : pending_outputs) {
    const NetId n = c.find_net(o);
    if (n == kNoNet) {
      result.error = "output net '" + o + "' never defined";
      return result;
    }
    c.mark_output(n);
  }
  const std::string diag = c.validate();
  if (!diag.empty()) {
    result.error = diag;
    return result;
  }
  result.ok = true;
  result.circuit = std::move(c);
  return result;
}

std::string write_netlist(const Circuit& c) {
  std::string out;
  out += ".model " + c.name() + "\n";
  out += ".inputs";
  for (NetId n : c.inputs()) out += " " + c.net_name(n);
  out += "\n.outputs";
  for (NetId n : c.outputs()) out += " " + c.net_name(n);
  out += "\n";
  for (const auto& g : c.gates()) {
    out += ".gate ";
    out += gate_type_name(g.type);
    out += " " + c.net_name(g.output);
    for (NetId in : g.inputs) out += " " + c.net_name(in);
    out += "\n";
  }
  out += ".end\n";
  return out;
}

}  // namespace obd::logic

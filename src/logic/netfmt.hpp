// Plain-text structural netlist format (BLIF-flavoured subset).
//
//   # comment
//   .model fa_sum
//   .inputs A B C
//   .outputs S
//   .gate NAND2 u1 na nb        <- type, output net, input nets...
//   .end
//
// The gate's instance name equals its output net name. Round-trips through
// write/parse preserve structure (net names, PI/PO order, gate order).
#pragma once

#include <string>

#include "logic/circuit.hpp"

namespace obd::logic {

struct ParseResult {
  bool ok = false;
  std::string error;  ///< Diagnostic with line number when !ok.
  Circuit circuit;
};

/// Parses the textual format above.
ParseResult parse_netlist(const std::string& text);

/// Serializes a circuit to the textual format.
std::string write_netlist(const Circuit& c);

}  // namespace obd::logic

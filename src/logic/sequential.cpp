#include "logic/sequential.hpp"

#include <algorithm>

namespace obd::logic {

void SequentialCircuit::add_flop(const std::string& name, NetId q, NetId d) {
  flops_.push_back(Flop{name, q, d});
}

std::string SequentialCircuit::validate() const {
  const std::string core_diag = core_.validate();
  if (!core_diag.empty()) return core_diag;
  for (const auto& f : flops_) {
    if (core_.driver_of(f.q) >= 0)
      return "flop '" + f.name + "' q net also driven by a gate";
    const bool d_is_pi =
        std::find(core_.inputs().begin(), core_.inputs().end(), f.d) !=
        core_.inputs().end();
    if (core_.driver_of(f.d) < 0 && !d_is_pi)
      return "flop '" + f.name + "' d net is floating";
  }
  return "";
}

SequentialCircuit::CycleResult SequentialCircuit::step(
    const InputVec& pi, const InputVec& state) const {
  // Present-state nets are undriven in the core; eval() treats undriven
  // non-PI nets as 0, so we evaluate through the scan view instead, where
  // they are genuine PIs.
  const Circuit sv = scan_view();
  const InputVec packed = pi | (state << core_.inputs().size());
  const InputVec out = sv.eval_outputs(packed);
  CycleResult r;
  const std::size_t po_count = core_.outputs().size();
  r.outputs = out.slice(0, po_count);
  r.next_state = out >> po_count;
  return r;
}

Circuit SequentialCircuit::scan_view() const {
  Circuit sv(core_.name() + "_scan");
  for (NetId n : core_.inputs()) sv.add_input(core_.net_name(n));
  for (const auto& f : flops_) sv.add_input(core_.net_name(f.q));
  for (const auto& g : core_.gates()) {
    std::vector<NetId> ins;
    for (NetId in : g.inputs) ins.push_back(sv.net(core_.net_name(in)));
    sv.add_gate(g.type, g.name, ins, sv.net(core_.net_name(g.output)));
  }
  for (NetId n : core_.outputs()) sv.mark_output(sv.net(core_.net_name(n)));
  for (const auto& f : flops_) sv.mark_output(sv.net(core_.net_name(f.d)));
  return sv;
}

Circuit SequentialCircuit::unroll_two_frames(bool share_pis) const {
  Circuit u(core_.name() + "_x2");
  // Frame-1 PIs, then frame-1 state, then (unless shared) frame-2 PIs.
  for (NetId n : core_.inputs())
    u.add_input(core_.net_name(n) + (share_pis ? "@12" : "@1"));
  for (const auto& f : flops_) u.add_input(core_.net_name(f.q) + "@1");
  if (!share_pis)
    for (NetId n : core_.inputs()) u.add_input(core_.net_name(n) + "@2");

  // Which suffix a net uses in a given frame: PIs may be shared.
  auto frame_net = [this, &u, share_pis](NetId core_net,
                                         const char* suffix) -> NetId {
    if (share_pis) {
      const bool is_pi = std::find(core_.inputs().begin(),
                                   core_.inputs().end(),
                                   core_net) != core_.inputs().end();
      if (is_pi) return u.net(core_.net_name(core_net) + "@12");
    }
    return u.net(core_.net_name(core_net) + suffix);
  };

  auto copy_frame = [this, &u, &frame_net](const char* suffix) {
    for (const auto& g : core_.gates()) {
      std::vector<NetId> ins;
      for (NetId in : g.inputs) ins.push_back(frame_net(in, suffix));
      u.add_gate(g.type, g.name + suffix, ins,
                 frame_net(g.output, suffix));
    }
  };
  copy_frame("@1");
  // Frame-2 present state = frame-1 next state: connect with buffers so the
  // "@2" q nets exist as driven nets (two inverters keep gates primitive).
  // frame_net (not a raw "@1" lookup) matters for a flop fed directly by a
  // PI: under share_pis that input lives on the shared "@12" net, and a
  // bare "@1" name would be a fresh undriven net stuck at 0.
  for (const auto& f : flops_) {
    const NetId d1 = frame_net(f.d, "@1");
    const NetId mid = u.net(core_.net_name(f.q) + "@ff");
    const NetId q2 = u.net(core_.net_name(f.q) + "@2");
    u.add_gate(GateType::kInv, f.name + "@ffa", {d1}, mid);
    u.add_gate(GateType::kInv, f.name + "@ffb", {mid}, q2);
  }
  copy_frame("@2");
  for (NetId n : core_.outputs()) u.mark_output(u.net(core_.net_name(n) + "@2"));
  for (const auto& f : flops_) u.mark_output(u.net(core_.net_name(f.d) + "@2"));
  return u;
}

SequentialCircuit decompose_composites(const SequentialCircuit& seq) {
  SequentialCircuit out(decompose_composites(seq.core()));
  for (const Flop& f : seq.flops()) {
    // Net names are preserved by the combinational lowering; net() re-creates
    // a q net in the rare case no decomposed gate reads it.
    const NetId q = out.core().net(seq.core().net_name(f.q));
    const NetId d = out.core().net(seq.core().net_name(f.d));
    out.add_flop(f.name, q, d);
  }
  return out;
}

SequentialCircuit lfsr_like_machine(int bits) {
  Circuit core("lfsr" + std::to_string(bits));
  std::vector<NetId> x;
  for (int i = 0; i < bits; ++i)
    x.push_back(core.add_input("x" + std::to_string(i)));
  std::vector<NetId> q;
  for (int i = 0; i < bits; ++i) q.push_back(core.net("q" + std::to_string(i)));

  auto emit_xor = [&core](const std::string& p, NetId a, NetId b) {
    const NetId t = core.net(p + "_t");
    const NetId pp = core.net(p + "_p");
    const NetId qq = core.net(p + "_q");
    const NetId o = core.net(p + "_o");
    core.add_gate(GateType::kNand2, p + "_t", {a, b}, t);
    core.add_gate(GateType::kNand2, p + "_p", {a, t}, pp);
    core.add_gate(GateType::kNand2, p + "_q", {t, b}, qq);
    core.add_gate(GateType::kNand2, p + "_o", {pp, qq}, o);
    return o;
  };

  std::vector<NetId> d(static_cast<std::size_t>(bits));
  for (int i = 0; i < bits; ++i) {
    // next[i] = q[i] ^ q[(i+1) % bits] ^ x[i]
    const NetId a = emit_xor("n" + std::to_string(i) + "a",
                             q[static_cast<std::size_t>(i)],
                             q[static_cast<std::size_t>((i + 1) % bits)]);
    d[static_cast<std::size_t>(i)] = emit_xor("n" + std::to_string(i) + "b",
                                              a,
                                              x[static_cast<std::size_t>(i)]);
  }
  // Observable output: parity of the state.
  NetId acc = q[0];
  for (int i = 1; i < bits; ++i)
    acc = emit_xor("po" + std::to_string(i), acc,
                   q[static_cast<std::size_t>(i)]);
  core.mark_output(acc);

  SequentialCircuit seq(std::move(core));
  for (int i = 0; i < bits; ++i)
    seq.add_flop("ff" + std::to_string(i), q[static_cast<std::size_t>(i)],
                 d[static_cast<std::size_t>(i)]);
  return seq;
}

}  // namespace obd::logic

// Sequential circuits and the scan-based application of two-vector tests.
//
// The paper (Sec. 5) notes that sequential TPG for OBD defects is harder
// than for stuck-at faults because the test needs *two specific vectors on
// consecutive clock cycles*, and points to design-for-testability. This
// module provides the standard machinery:
//
//  - SequentialCircuit: a combinational core plus D flip-flops;
//  - full-scan view: flops become pseudo-PIs/pseudo-POs, any (V1, V2) pair
//    is applicable (launch-on-shift / enhanced scan);
//  - launch-on-capture (LOC) view: V2's state part must equal the circuit's
//    next-state function of V1 — the realistic constraint for ordinary scan.
//    We expose it by *unrolling* two time frames into one combinational
//    circuit, so the existing PODEM/ATPG machinery handles the coupling
//    exactly (frame-1 gate pins, frame-2 gate pins + fault all become
//    constraints on the unrolled netlist).
#pragma once

#include <string>
#include <vector>

#include "logic/circuit.hpp"

namespace obd::logic {

/// A D flip-flop: state net (output of the flop) and data input net.
struct Flop {
  std::string name;
  NetId q = kNoNet;  ///< Present-state net (read by the core).
  NetId d = kNoNet;  ///< Next-state net (driven by the core).
};

/// Combinational core + flops. The core's nets include PIs, POs, the flop
/// outputs (q, undriven in the core) and flop inputs (d, driven).
class SequentialCircuit {
 public:
  explicit SequentialCircuit(Circuit core) : core_(std::move(core)) {}

  Circuit& core() { return core_; }
  const Circuit& core() const { return core_; }

  /// Registers a flop between existing nets. `q` must not be driven by any
  /// core gate; `d` must be a driven net or PI.
  void add_flop(const std::string& name, NetId q, NetId d);

  const std::vector<Flop>& flops() const { return flops_; }

  /// Structural checks on top of the core's: q undriven, d driven.
  std::string validate() const;

  /// Next-state + output computation for one clock cycle.
  /// `pi` bit i = primary input i; `state` bit j = flop j's present state.
  /// Any width (InputVec converts implicitly from uint64_t when narrow).
  struct CycleResult {
    InputVec outputs;
    InputVec next_state;
  };
  CycleResult step(const InputVec& pi, const InputVec& state) const;

  /// Full-scan combinational view: every flop's q becomes an extra PI and
  /// every flop's d an extra PO. PI order: original PIs, then flops (in
  /// registration order); PO order likewise.
  Circuit scan_view() const;

  /// Two-frame unroll for launch-on-capture ATPG: one combinational circuit
  /// containing two copies of the core, with frame 1's next-state feeding
  /// frame 2's present-state. PIs: frame-1 PIs, frame-1 state (scan-loaded),
  /// frame-2 PIs. POs: frame-2 POs and frame-2 next-state (captured into
  /// the scan chain).
  ///
  /// Net naming: "<net>@1" and "<net>@2"; gate naming likewise. Gate order:
  /// frame-1 gates (core order), then two buffer inverters per flop, then
  /// frame-2 gates — so the frame-2 twin of core gate g has index
  /// core().num_gates() + 2 * flops().size() + g.
  ///
  /// `share_pis`: when true the primary inputs are NOT duplicated — both
  /// frames read the same PI nets, modeling a tester that must hold the
  /// inputs constant across the launch/capture cycle pair.
  Circuit unroll_two_frames(bool share_pis = false) const;

  /// Index of the frame-2 twin of core gate `g` inside unroll_two_frames().
  int frame2_gate_index(int g) const {
    return static_cast<int>(core_.num_gates() + 2 * flops_.size()) + g;
  }
  /// Index of the frame-1 twin (identity; for symmetry).
  int frame1_gate_index(int g) const { return g; }

 private:
  Circuit core_;
  std::vector<Flop> flops_;
};

/// A small sequential benchmark: an n-bit counter-ish state machine whose
/// next state is state XOR (state >> 1) XOR input pattern, built from
/// NAND2/INV. Exercises deep state-justification paths.
SequentialCircuit lfsr_like_machine(int bits);

/// Lowers the combinational core to primitive CMOS gates (see the Circuit
/// overload) while keeping the flops attached: q/d nets survive by name, so
/// scan-mode OBD campaigns can enumerate transistor fault sites on a
/// sequential design without flattening it to the scan view first.
SequentialCircuit decompose_composites(const SequentialCircuit& seq);

}  // namespace obd::logic

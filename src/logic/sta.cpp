#include "logic/sta.hpp"

#include <algorithm>

namespace obd::logic {

Unateness input_unateness(GateType t, int input) {
  const int n = gate_arity(t);
  bool can_raise = false;
  bool can_lower = false;
  const std::uint32_t limit = 1u << n;
  for (std::uint32_t v = 0; v < limit; ++v) {
    if ((v >> input) & 1u) continue;  // enumerate with the input at 0
    const bool lo = gate_eval(t, v);
    const bool hi = gate_eval(t, v | (1u << input));
    if (!lo && hi) can_raise = true;
    if (lo && !hi) can_lower = true;
  }
  if (can_raise && can_lower) return Unateness::kBinate;
  return can_raise ? Unateness::kPositive : Unateness::kNegative;
}

StaResult run_sta(const Circuit& c, const DelayLibrary& lib) {
  StaResult r;
  r.arrival.assign(c.num_nets(), {0.0, 0.0});
  // Backtrack pointers for critical-path extraction: the gate producing the
  // worst arrival at each net.
  std::vector<int> from_gate(c.num_nets(), -1);

  for (int g : c.topo_order()) {
    const Gate& gate = c.gate(g);
    double rise_in = 0.0;
    double fall_in = 0.0;
    for (std::size_t k = 0; k < gate.inputs.size(); ++k) {
      const auto& a = r.arrival[static_cast<std::size_t>(gate.inputs[k])];
      const Unateness u = input_unateness(gate.type, static_cast<int>(k));
      // Output rise is caused by input rise (positive), input fall
      // (negative) or either (binate).
      switch (u) {
        case Unateness::kPositive:
          rise_in = std::max(rise_in, a.first);
          fall_in = std::max(fall_in, a.second);
          break;
        case Unateness::kNegative:
          rise_in = std::max(rise_in, a.second);
          fall_in = std::max(fall_in, a.first);
          break;
        case Unateness::kBinate:
          rise_in = std::max({rise_in, a.first, a.second});
          fall_in = std::max({fall_in, a.first, a.second});
          break;
      }
    }
    auto& out = r.arrival[static_cast<std::size_t>(gate.output)];
    out.first = rise_in + lib.delay_of(gate.type, true);
    out.second = fall_in + lib.delay_of(gate.type, false);
    from_gate[static_cast<std::size_t>(gate.output)] = g;
  }

  NetId worst_net = kNoNet;
  for (NetId po : c.outputs()) {
    const auto& a = r.arrival[static_cast<std::size_t>(po)];
    const double w = std::max(a.first, a.second);
    if (w > r.worst_po_arrival) {
      r.worst_po_arrival = w;
      worst_net = po;
    }
  }

  // Critical path: walk back through worst-contributing inputs.
  NetId n = worst_net;
  while (n != kNoNet) {
    const int g = from_gate[static_cast<std::size_t>(n)];
    if (g < 0) break;
    r.critical_path.push_back(g);
    // Choose the input whose arrival dominated.
    const Gate& gate = c.gate(g);
    NetId best = kNoNet;
    double best_a = -1.0;
    for (NetId in : gate.inputs) {
      const auto& a = r.arrival[static_cast<std::size_t>(in)];
      const double w = std::max(a.first, a.second);
      if (w > best_a) {
        best_a = w;
        best = in;
      }
    }
    n = best;
  }
  std::reverse(r.critical_path.begin(), r.critical_path.end());
  return r;
}

double sta_slack(const StaResult& r, NetId net, bool rising, double capture) {
  const auto& a = r.arrival[static_cast<std::size_t>(net)];
  return capture - (rising ? a.first : a.second);
}

}  // namespace obd::logic

// Static timing analysis (edge-aware, unateness-driven).
//
// Concurrent OBD detection is a race between the defect's added delay and
// the capture clock (paper Sec. 4.2). Placing that clock needs the
// fault-free worst arrival; judging whether a *marginal* defect can be
// caught needs per-path slack. This is a compact STA over the gate-level
// netlist: per-net rise/fall arrival times computed topologically, with
// per-input unateness derived from the gate's truth table (all primitive
// CMOS gates are negative-unate; XOR-style composites are binate).
#pragma once

#include <vector>

#include "logic/timingsim.hpp"

namespace obd::logic {

/// Unateness of one gate input.
enum class Unateness { kPositive, kNegative, kBinate };

/// Derives the unateness of input `input` of gate type `t` from its truth
/// table: positive if raising the input can only raise the output, negative
/// if it can only lower it, binate otherwise.
Unateness input_unateness(GateType t, int input);

/// Per-net arrival times.
struct StaResult {
  /// arrival[net] = {rise, fall} worst-case arrival from any PI [s].
  std::vector<std::pair<double, double>> arrival;
  /// Worst arrival over all primary outputs (max of rise/fall).
  double worst_po_arrival = 0.0;
  /// Gate indices of one critical path (PI-side first).
  std::vector<int> critical_path;
};

/// Runs STA with PIs switching at t = 0.
StaResult run_sta(const Circuit& c, const DelayLibrary& lib);

/// Slack of a net's edge against a capture time: capture - arrival.
double sta_slack(const StaResult& r, NetId net, bool rising, double capture);

}  // namespace obd::logic

#include "logic/timingsim.hpp"

#include <algorithm>
#include <queue>

namespace obd::logic {
namespace {

struct Event {
  double time;
  NetId net;
  bool value;
  // Min-heap on time; ties broken by insertion order for determinism.
  std::uint64_t seq;
  bool operator>(const Event& o) const {
    if (time != o.time) return time > o.time;
    return seq > o.seq;
  }
};

}  // namespace

TimingSimulator::TimingSimulator(const Circuit& circuit, DelayLibrary lib)
    : circuit_(circuit), lib_(std::move(lib)) {}

void TimingSimulator::set_fault(const std::optional<ObdFaultSite>& site,
                                const ObdDelayEffect& effect) {
  fault_ = site;
  effect_ = effect;
}

TimingRun TimingSimulator::run_two_vector(const InputVec& v1,
                                          const InputVec& v2,
                                          double capture_time) const {
  TimingRun run;
  // Settled state under V1.
  std::vector<bool> value = circuit_.eval(v1);
  // Remember each gate's input bits under V1 for excitation checks.
  std::vector<std::uint32_t> gate_v1_bits(circuit_.num_gates());
  for (std::size_t g = 0; g < circuit_.num_gates(); ++g)
    gate_v1_bits[g] = circuit_.gate_input_bits(static_cast<int>(g), value);

  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> queue;
  std::uint64_t seq = 0;
  // Scheduled (future) value per net, to suppress redundant events.
  std::vector<bool> scheduled = value;

  // Launch V2 on the PIs at t = 0.
  for (std::size_t i = 0; i < circuit_.inputs().size(); ++i) {
    const bool nv = v2.bit(i);
    const NetId n = circuit_.inputs()[i];
    if (nv != value[static_cast<std::size_t>(n)]) {
      queue.push(Event{0.0, n, nv, seq++});
      scheduled[static_cast<std::size_t>(n)] = nv;
    }
  }

  std::vector<bool> captured = value;
  bool captured_done = false;

  while (!queue.empty()) {
    const Event ev = queue.top();
    queue.pop();
    if (!captured_done && ev.time > capture_time) {
      captured = value;
      captured_done = true;
    }
    if (value[static_cast<std::size_t>(ev.net)] == ev.value) continue;
    value[static_cast<std::size_t>(ev.net)] = ev.value;
    run.events.push_back(TimedEvent{ev.time, ev.net, ev.value});

    for (int g : circuit_.fanout_of(ev.net)) {
      const Gate& gate = circuit_.gate(g);
      const std::uint32_t bits = circuit_.gate_input_bits(g, value);
      const bool new_out = gate_eval(gate.type, bits);
      const NetId out = gate.output;
      if (new_out == scheduled[static_cast<std::size_t>(out)]) continue;

      double delay = lib_.delay_of(gate.type, new_out);
      bool stuck = false;
      if (fault_ && fault_->gate_index == g) {
        // Excitation test on the gate-local two-vector: the input state the
        // gate settled to under V1 vs the state it is switching to now.
        const auto topo = gate_topology(gate.type);
        if (topo.has_value()) {
          const std::uint32_t lv1 = gate_v1_bits[static_cast<std::size_t>(g)];
          const std::uint32_t lv2 = bits;
          const bool excited =
              (topo->output(lv1) != topo->output(lv2)) &&
              (fault_->transistor.pmos ? topo->output(lv2)
                                       : !topo->output(lv2)) &&
              topo->transistor_essential(fault_->transistor, lv2);
          if (excited) {
            if (effect_.stuck) stuck = true;
            delay += effect_.extra_delay;
          }
        }
      }
      if (stuck) continue;  // The transition never completes.
      queue.push(Event{ev.time + delay, out, new_out, seq++});
      scheduled[static_cast<std::size_t>(out)] = new_out;
    }
  }
  if (!captured_done) captured = value;
  run.captured = std::move(captured);
  run.settled = std::move(value);
  return run;
}

}  // namespace obd::logic

// Event-driven gate-level timing simulation with OBD-aware delay injection.
//
// The analog engine characterizes one gate at a time; this simulator scales
// those numbers to whole circuits. Each gate type carries nominal rise/fall
// delays; an injected OBD fault adds extra delay (or an outright stall) to
// transitions that satisfy its excitation condition — evaluated from the
// gate's *local* two-vector (previous input state -> new input state), just
// as in Sec. 4.1 of the paper. Sampling the primary outputs at a capture
// time models the timing-sensitive detection of Sec. 4.2.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "cells/topology.hpp"
#include "logic/circuit.hpp"

namespace obd::logic {

/// Nominal per-type delays [s].
struct DelayLibrary {
  double rise = 110e-12;
  double fall = 96e-12;
  std::map<GateType, std::pair<double, double>> per_type;  // (rise, fall)

  double delay_of(GateType t, bool rising) const {
    const auto it = per_type.find(t);
    if (it != per_type.end()) return rising ? it->second.first : it->second.second;
    return rising ? rise : fall;
  }

  /// The paper's Table-1 fault-free numbers as a default library.
  static DelayLibrary paper_nominal() { return DelayLibrary{}; }
};

/// An OBD fault bound to a circuit gate.
struct ObdFaultSite {
  int gate_index = -1;
  cells::TransistorRef transistor;

  bool operator==(const ObdFaultSite&) const = default;
};

/// Effect of an excited OBD fault on its gate's output transition.
struct ObdDelayEffect {
  /// Extra delay added to an excited transition; infinity = stuck.
  double extra_delay = 0.0;
  bool stuck = false;
};

/// One recorded output event.
struct TimedEvent {
  double time = 0.0;
  NetId net = kNoNet;
  bool value = false;
};

struct TimingRun {
  /// Final settled per-net values.
  std::vector<bool> settled;
  /// Net values sampled at the capture time.
  std::vector<bool> captured;
  /// All net-change events in time order.
  std::vector<TimedEvent> events;

  bool captured_of(NetId n) const { return captured[static_cast<std::size_t>(n)]; }
};

/// Event-driven simulator for a two-vector test.
class TimingSimulator {
 public:
  TimingSimulator(const Circuit& circuit, DelayLibrary lib);

  /// Injects (or clears, with nullopt) a single OBD fault.
  void set_fault(const std::optional<ObdFaultSite>& site,
                 const ObdDelayEffect& effect = {});

  /// Applies V1, lets the circuit settle, switches to V2 at t=0, and
  /// simulates until quiescence. `capture_time` is when POs are sampled.
  /// Vectors are any-width InputVecs (implicitly convertible from uint64_t).
  TimingRun run_two_vector(const InputVec& v1, const InputVec& v2,
                           double capture_time) const;

  const Circuit& circuit() const { return circuit_; }
  const DelayLibrary& library() const { return lib_; }

 private:
  const Circuit& circuit_;
  DelayLibrary lib_;
  std::optional<ObdFaultSite> fault_;
  ObdDelayEffect effect_;
};

}  // namespace obd::logic

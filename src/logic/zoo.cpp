#include "logic/zoo.hpp"

namespace obd::logic {

Circuit full_adder_sum_circuit() {
  Circuit c("fa_sum");
  const NetId A = c.add_input("A");
  const NetId B = c.add_input("B");
  const NetId C = c.add_input("C");

  // Level 1: input inverters.
  const NetId na = c.net("na");
  const NetId nb = c.net("nb");
  const NetId nc = c.net("nc");
  c.add_gate(GateType::kInv, "na", {A}, na);
  c.add_gate(GateType::kInv, "nb", {B}, nb);
  c.add_gate(GateType::kInv, "nc", {C}, nc);

  // Level 2: two-literal product complements; q1 starts the redundant
  // branch (B * B')' == 1).
  const NetId u1 = c.net("u1");
  const NetId u2 = c.net("u2");
  const NetId u3 = c.net("u3");
  const NetId u4 = c.net("u4");
  const NetId q1 = c.net("q1");
  c.add_gate(GateType::kNand2, "u1", {na, nb}, u1);
  c.add_gate(GateType::kNand2, "u2", {na, B}, u2);
  c.add_gate(GateType::kNand2, "u3", {A, nb}, u3);
  c.add_gate(GateType::kNand2, "u4", {A, B}, u4);
  c.add_gate(GateType::kNand2, "q1", {B, nb}, q1);

  // Level 3: back to true products.
  const NetId v1 = c.net("v1");
  const NetId v2 = c.net("v2");
  const NetId v3 = c.net("v3");
  const NetId v4 = c.net("v4");
  const NetId q2 = c.net("q2");
  c.add_gate(GateType::kInv, "v1", {u1}, v1);
  c.add_gate(GateType::kInv, "v2", {u2}, v2);
  c.add_gate(GateType::kInv, "v3", {u3}, v3);
  c.add_gate(GateType::kInv, "v4", {u4}, v4);
  c.add_gate(GateType::kInv, "q2", {q1}, q2);

  // Level 4: minterm complements w_i = m_i'; q3 = (B B' C)' == 1.
  const NetId w1 = c.net("w1");
  const NetId w2 = c.net("w2");
  const NetId w3 = c.net("w3");
  const NetId w4 = c.net("w4");
  const NetId q3 = c.net("q3");
  c.add_gate(GateType::kNand2, "w1", {v1, C}, w1);   // (A'B'C)'
  c.add_gate(GateType::kNand2, "w2", {v2, nc}, w2);  // (A'BC')'
  c.add_gate(GateType::kNand2, "w3", {v3, nc}, w3);  // (AB'C')'
  c.add_gate(GateType::kNand2, "w4", {v4, C}, w4);   // (ABC)'
  c.add_gate(GateType::kNand2, "q3", {q2, C}, q3);

  // Level 5: pairwise OR of minterms; o12 is the paper's mid-path NAND
  // (four upstream and four downstream stages).
  const NetId o12 = c.net("o12");
  const NetId o34 = c.net("o34");
  c.add_gate(GateType::kNand2, "o12", {w1, w2}, o12);  // m1 + m2
  c.add_gate(GateType::kNand2, "o34", {w3, w4}, o34);  // m3 + m4

  // Levels 6-9: final OR through complements plus the redundant merge.
  const NetId i12 = c.net("i12");
  const NetId i34 = c.net("i34");
  const NetId t1 = c.net("t1");
  const NetId it1 = c.net("it1");
  const NetId S = c.net("S");
  c.add_gate(GateType::kInv, "i12", {o12}, i12);
  c.add_gate(GateType::kInv, "i34", {o34}, i34);
  c.add_gate(GateType::kNand2, "t1", {i12, i34}, t1);  // m1+m2+m3+m4
  c.add_gate(GateType::kInv, "it1", {t1}, it1);
  c.add_gate(GateType::kNand2, "S", {it1, q3}, S);  // OR with constant 0 term
  c.mark_output(S);
  return c;
}

Circuit c17() {
  Circuit c("c17");
  const NetId n1 = c.add_input("1");
  const NetId n2 = c.add_input("2");
  const NetId n3 = c.add_input("3");
  const NetId n6 = c.add_input("6");
  const NetId n7 = c.add_input("7");
  const NetId n10 = c.net("10");
  const NetId n11 = c.net("11");
  const NetId n16 = c.net("16");
  const NetId n19 = c.net("19");
  const NetId n22 = c.net("22");
  const NetId n23 = c.net("23");
  c.add_gate(GateType::kNand2, "g10", {n1, n3}, n10);
  c.add_gate(GateType::kNand2, "g11", {n3, n6}, n11);
  c.add_gate(GateType::kNand2, "g16", {n2, n11}, n16);
  c.add_gate(GateType::kNand2, "g19", {n11, n7}, n19);
  c.add_gate(GateType::kNand2, "g22", {n10, n16}, n22);
  c.add_gate(GateType::kNand2, "g23", {n16, n19}, n23);
  c.mark_output(n22);
  c.mark_output(n23);
  return c;
}

namespace {

/// Emits x ^ y with 4 NAND2 gates; returns the output net.
NetId emit_xor(Circuit& c, const std::string& prefix, NetId x, NetId y) {
  const NetId t = c.net(prefix + "_t");
  const NetId p = c.net(prefix + "_p");
  const NetId q = c.net(prefix + "_q");
  const NetId o = c.net(prefix + "_o");
  c.add_gate(GateType::kNand2, prefix + "_t", {x, y}, t);
  c.add_gate(GateType::kNand2, prefix + "_p", {x, t}, p);
  c.add_gate(GateType::kNand2, prefix + "_q", {t, y}, q);
  c.add_gate(GateType::kNand2, prefix + "_o", {p, q}, o);
  return o;
}

/// Majority(a, b, cin) from NAND2/INV; returns the carry-out net.
NetId emit_carry(Circuit& c, const std::string& prefix, NetId a, NetId b,
                 NetId cin) {
  const NetId x = c.net(prefix + "_x");
  const NetId y = c.net(prefix + "_y");
  const NetId z = c.net(prefix + "_z");
  const NetId p = c.net(prefix + "_pp");
  const NetId ip = c.net(prefix + "_ip");
  const NetId o = c.net(prefix + "_co");
  c.add_gate(GateType::kNand2, prefix + "_x", {a, b}, x);
  c.add_gate(GateType::kNand2, prefix + "_y", {a, cin}, y);
  c.add_gate(GateType::kNand2, prefix + "_z", {b, cin}, z);
  c.add_gate(GateType::kNand2, prefix + "_pp", {x, y}, p);  // ab + a cin
  c.add_gate(GateType::kInv, prefix + "_ip", {p}, ip);
  c.add_gate(GateType::kNand2, prefix + "_co", {ip, z}, o);  // p + b cin
  return o;
}

}  // namespace

Circuit ripple_carry_adder(int bits) {
  Circuit c("rca" + std::to_string(bits));
  std::vector<NetId> a(static_cast<std::size_t>(bits));
  std::vector<NetId> b(static_cast<std::size_t>(bits));
  for (int i = 0; i < bits; ++i) a[static_cast<std::size_t>(i)] = c.add_input("a" + std::to_string(i));
  for (int i = 0; i < bits; ++i) b[static_cast<std::size_t>(i)] = c.add_input("b" + std::to_string(i));
  NetId carry = c.add_input("cin");
  for (int i = 0; i < bits; ++i) {
    const std::string p = "fa" + std::to_string(i);
    const NetId axb = emit_xor(c, p + "_x1", a[static_cast<std::size_t>(i)],
                               b[static_cast<std::size_t>(i)]);
    const NetId sum = emit_xor(c, p + "_x2", axb, carry);
    c.mark_output(sum);
    carry = emit_carry(c, p, a[static_cast<std::size_t>(i)],
                       b[static_cast<std::size_t>(i)], carry);
  }
  c.mark_output(carry);
  return c;
}

Circuit parity_tree(int inputs) {
  Circuit c("parity" + std::to_string(inputs));
  std::vector<NetId> layer;
  for (int i = 0; i < inputs; ++i)
    layer.push_back(c.add_input("x" + std::to_string(i)));
  int k = 0;
  while (layer.size() > 1) {
    std::vector<NetId> next;
    for (std::size_t i = 0; i + 1 < layer.size(); i += 2)
      next.push_back(
          emit_xor(c, "p" + std::to_string(k++), layer[i], layer[i + 1]));
    if (layer.size() % 2) next.push_back(layer.back());
    layer = std::move(next);
  }
  c.mark_output(layer.front());
  return c;
}

Circuit mux_tree(int select_bits) {
  Circuit c("mux" + std::to_string(1 << select_bits));
  const int n_data = 1 << select_bits;
  std::vector<NetId> data;
  for (int i = 0; i < n_data; ++i)
    data.push_back(c.add_input("d" + std::to_string(i)));
  std::vector<NetId> sel;
  std::vector<NetId> nsel;
  for (int i = 0; i < select_bits; ++i) {
    sel.push_back(c.add_input("s" + std::to_string(i)));
    const NetId ns = c.net("ns" + std::to_string(i));
    c.add_gate(GateType::kInv, "ns" + std::to_string(i), {sel.back()}, ns);
    nsel.push_back(ns);
  }
  // Level by level: mux2(a, b, s) = NAND(NAND(a, s'), NAND(b, s)).
  std::vector<NetId> layer = data;
  int k = 0;
  for (int lvl = 0; lvl < select_bits; ++lvl) {
    std::vector<NetId> next;
    for (std::size_t i = 0; i + 1 < layer.size(); i += 2) {
      const std::string p = "m" + std::to_string(k++);
      const NetId ta = c.net(p + "_a");
      const NetId tb = c.net(p + "_b");
      const NetId o = c.net(p + "_o");
      c.add_gate(GateType::kNand2, p + "_a",
                 {layer[i], nsel[static_cast<std::size_t>(lvl)]}, ta);
      c.add_gate(GateType::kNand2, p + "_b",
                 {layer[i + 1], sel[static_cast<std::size_t>(lvl)]}, tb);
      c.add_gate(GateType::kNand2, p + "_o", {ta, tb}, o);
      next.push_back(o);
    }
    layer = std::move(next);
  }
  c.mark_output(layer.front());
  return c;
}

namespace {

/// a AND b via NAND+INV; returns output net.
NetId emit_and(Circuit& c, const std::string& p, NetId a, NetId b) {
  const NetId n = c.net(p + "_n");
  const NetId o = c.net(p + "_o");
  c.add_gate(GateType::kNand2, p + "_n", {a, b}, n);
  c.add_gate(GateType::kInv, p + "_o", {n}, o);
  return o;
}

/// a OR b via De Morgan; returns output net.
NetId emit_or(Circuit& c, const std::string& p, NetId a, NetId b) {
  const NetId ia = c.net(p + "_ia");
  const NetId ib = c.net(p + "_ib");
  const NetId o = c.net(p + "_o");
  c.add_gate(GateType::kInv, p + "_ia", {a}, ia);
  c.add_gate(GateType::kInv, p + "_ib", {b}, ib);
  c.add_gate(GateType::kNand2, p + "_o", {ia, ib}, o);
  return o;
}

}  // namespace

Circuit decoder(int select_bits) {
  Circuit c("dec" + std::to_string(1 << select_bits));
  std::vector<NetId> s;
  std::vector<NetId> ns;
  for (int i = 0; i < select_bits; ++i) {
    s.push_back(c.add_input("s" + std::to_string(i)));
    const NetId inv = c.net("ns" + std::to_string(i));
    c.add_gate(GateType::kInv, "ns" + std::to_string(i), {s.back()}, inv);
    ns.push_back(inv);
  }
  const int n_out = 1 << select_bits;
  for (int k = 0; k < n_out; ++k) {
    // AND tree of the appropriate literals.
    NetId acc = ((k >> 0) & 1) ? s[0] : ns[0];
    for (int i = 1; i < select_bits; ++i) {
      const NetId lit = ((k >> i) & 1) ? s[static_cast<std::size_t>(i)]
                                       : ns[static_cast<std::size_t>(i)];
      acc = emit_and(c, "y" + std::to_string(k) + "_" + std::to_string(i),
                     acc, lit);
    }
    if (select_bits == 1) {
      // Single literal: buffer through two inverters to give it a driver.
      const NetId m = c.net("y" + std::to_string(k) + "_m");
      const NetId o = c.net("y" + std::to_string(k));
      c.add_gate(GateType::kInv, "y" + std::to_string(k) + "_a", {acc}, m);
      c.add_gate(GateType::kInv, "y" + std::to_string(k) + "_b", {m}, o);
      acc = o;
    }
    c.mark_output(acc);
  }
  return c;
}

Circuit equality_comparator(int bits) {
  Circuit c("eq" + std::to_string(bits));
  std::vector<NetId> a;
  std::vector<NetId> b;
  for (int i = 0; i < bits; ++i) a.push_back(c.add_input("a" + std::to_string(i)));
  for (int i = 0; i < bits; ++i) b.push_back(c.add_input("b" + std::to_string(i)));
  // Per-bit XNOR = INV(XOR); AND-tree the results.
  NetId acc = kNoNet;
  for (int i = 0; i < bits; ++i) {
    const std::string p = "x" + std::to_string(i);
    const NetId x = emit_xor(c, p, a[static_cast<std::size_t>(i)],
                             b[static_cast<std::size_t>(i)]);
    const NetId xn = c.net(p + "_xn");
    c.add_gate(GateType::kInv, p + "_xn", {x}, xn);
    acc = (acc == kNoNet) ? xn
                          : emit_and(c, "t" + std::to_string(i), acc, xn);
  }
  c.mark_output(acc);
  return c;
}

Circuit alu_bit_slice() {
  Circuit c("alu_slice");
  const NetId a = c.add_input("a");
  const NetId b = c.add_input("b");
  const NetId cin = c.add_input("cin");
  const NetId s0 = c.add_input("s0");
  const NetId s1 = c.add_input("s1");

  const NetId f_and = emit_and(c, "fand", a, b);
  const NetId f_or = emit_or(c, "for", a, b);
  const NetId f_xor = emit_xor(c, "fxor", a, b);
  const NetId f_sum = emit_xor(c, "fsum", f_xor, cin);
  const NetId cout = emit_carry(c, "carry", a, b, cin);

  // 4:1 mux on (s1, s0): y = s1 ? (s0 ? sum : xor) : (s0 ? or : and).
  const NetId ns0 = c.net("ns0");
  const NetId ns1 = c.net("ns1");
  c.add_gate(GateType::kInv, "ns0", {s0}, ns0);
  c.add_gate(GateType::kInv, "ns1", {s1}, ns1);
  auto mux2 = [&c](const std::string& p, NetId d0, NetId d1, NetId sel,
                   NetId nsel) {
    const NetId ta = c.net(p + "_a");
    const NetId tb = c.net(p + "_b");
    const NetId o = c.net(p + "_o");
    c.add_gate(GateType::kNand2, p + "_a", {d0, nsel}, ta);
    c.add_gate(GateType::kNand2, p + "_b", {d1, sel}, tb);
    c.add_gate(GateType::kNand2, p + "_o", {ta, tb}, o);
    return o;
  };
  const NetId lo = mux2("mlo", f_and, f_or, s0, ns0);
  const NetId hi = mux2("mhi", f_xor, f_sum, s0, ns0);
  const NetId y = mux2("my", lo, hi, s1, ns1);
  c.mark_output(y);
  c.mark_output(cout);
  return c;
}

Circuit array_multiplier(int bits) {
  Circuit c("mul" + std::to_string(bits) + "x" + std::to_string(bits));
  std::vector<NetId> a;
  std::vector<NetId> b;
  for (int i = 0; i < bits; ++i) a.push_back(c.add_input("a" + std::to_string(i)));
  for (int i = 0; i < bits; ++i) b.push_back(c.add_input("b" + std::to_string(i)));

  // Partial-product matrix pp[i][j] = a[i] & b[j].
  std::vector<std::vector<NetId>> pp(static_cast<std::size_t>(bits),
                                     std::vector<NetId>(static_cast<std::size_t>(bits)));
  for (int i = 0; i < bits; ++i)
    for (int j = 0; j < bits; ++j)
      pp[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
          emit_and(c, "pp" + std::to_string(i) + "_" + std::to_string(j),
                   a[static_cast<std::size_t>(i)],
                   b[static_cast<std::size_t>(j)]);

  // Row-by-row ripple accumulation: acc holds the running sum, shifted.
  // Row 0 seeds the accumulator.
  std::vector<NetId> acc;
  for (int j = 0; j < bits; ++j) acc.push_back(pp[0][static_cast<std::size_t>(j)]);
  std::vector<NetId> product{acc[0]};  // p0

  for (int i = 1; i < bits; ++i) {
    // Add pp[i][*] to acc[1..], producing the next accumulator.
    std::vector<NetId> next;
    NetId carry = kNoNet;  // no carry-in for the first column
    for (int j = 0; j < bits; ++j) {
      const std::string p =
          "add" + std::to_string(i) + "_" + std::to_string(j);
      const NetId x = (static_cast<std::size_t>(j + 1) < acc.size())
                          ? acc[static_cast<std::size_t>(j + 1)]
                          : kNoNet;  // shifted accumulator bit
      const NetId y = pp[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
      NetId sum;
      NetId cout;
      if (x == kNoNet && carry == kNoNet) {
        // Top column of the first addition: sum = y, no carry. Buffer it.
        const NetId m = c.net(p + "_m");
        sum = c.net(p + "_s");
        c.add_gate(GateType::kInv, p + "_ba", {y}, m);
        c.add_gate(GateType::kInv, p + "_bb", {m}, sum);
        cout = kNoNet;
      } else if (x == kNoNet) {
        // Half adder of (y, carry).
        sum = emit_xor(c, p + "_hx", y, carry);
        cout = emit_and(c, p + "_hc", y, carry);
      } else if (carry == kNoNet) {
        // Half adder of (x, y).
        sum = emit_xor(c, p + "_hx", x, y);
        cout = emit_and(c, p + "_hc", x, y);
      } else {
        // Full adder.
        const NetId t = emit_xor(c, p + "_x1", x, y);
        sum = emit_xor(c, p + "_x2", t, carry);
        cout = emit_carry(c, p, x, y, carry);
      }
      next.push_back(sum);
      carry = cout;
    }
    if (carry != kNoNet) next.push_back(carry);
    product.push_back(next[0]);
    acc = std::move(next);
  }
  // Remaining accumulator bits are the top product bits.
  for (std::size_t j = 1; j < acc.size(); ++j) product.push_back(acc[j]);
  // Pad to 2n bits if the final carry column was absent.
  while (product.size() < static_cast<std::size_t>(2 * bits)) {
    // Constant-0 pad driven by x AND NOT x of a0 (1-bit multiplier only).
    const std::string p = "pad" + std::to_string(product.size());
    const NetId na = c.net(p + "_inv");
    c.add_gate(GateType::kInv, p + "_inv", {a[0]}, na);
    product.push_back(emit_and(c, p, a[0], na));
  }
  for (NetId n : product) c.mark_output(n);
  return c;
}

Circuit random_circuit(int n_inputs, int n_gates, int n_outputs,
                       std::uint64_t seed) {
  util::Prng prng(seed);
  Circuit c("rand" + std::to_string(seed));
  std::vector<NetId> pool;
  for (int i = 0; i < n_inputs; ++i)
    pool.push_back(c.add_input("x" + std::to_string(i)));
  static constexpr GateType kTypes[] = {
      GateType::kInv,   GateType::kNand2, GateType::kNand2, GateType::kNor2,
      GateType::kNand3, GateType::kNor3,  GateType::kAoi21};
  for (int g = 0; g < n_gates; ++g) {
    const GateType t =
        kTypes[prng.next_below(sizeof kTypes / sizeof kTypes[0])];
    std::vector<NetId> ins;
    for (int k = 0; k < gate_arity(t); ++k)
      ins.push_back(pool[prng.next_below(pool.size())]);
    const NetId o = c.net("n" + std::to_string(g));
    c.add_gate(t, "g" + std::to_string(g), ins, o);
    pool.push_back(o);
  }
  const int out_count = std::min<int>(n_outputs, n_gates);
  for (int i = 0; i < out_count; ++i)
    c.mark_output(pool[pool.size() - 1 - static_cast<std::size_t>(i)]);
  return c;
}

}  // namespace obd::logic

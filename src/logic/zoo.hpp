// Circuit zoo: the paper's reconstructed full-adder sum circuit plus the
// standard small benchmarks used by the ATPG experiments.
#pragma once

#include "logic/circuit.hpp"
#include "util/prng.hpp"

namespace obd::logic {

/// Reconstruction of the paper's Fig. 8 experimental circuit: the sum bit
/// of a full adder built *without optimization* from exactly 14 NAND2 and
/// 11 INV gates at logic depth 9, including an intentionally redundant
/// branch (constant-1 net) that makes some OBD faults untestable — all the
/// structural properties Sec. 4.3 relies on. The NAND at level 5 with four
/// upstream and four downstream logic stages (the paper's injection target)
/// is "o12".
///
/// Inputs: A, B, C (in that PI order). Output: S = A ^ B ^ C.
Circuit full_adder_sum_circuit();

/// Name of the mid-path NAND gate used for the Fig. 9 fault injections.
inline constexpr const char* kFullAdderMidNand = "o12";

/// ISCAS-85 c17: 6 NAND2, 5 inputs, 2 outputs.
Circuit c17();

/// n-bit ripple-carry adder built from NAND2/INV only.
/// Inputs: a0..a(n-1), b0..b(n-1), cin. Outputs: s0..s(n-1), cout.
Circuit ripple_carry_adder(int bits);

/// n-input parity tree (XOR decomposed into NAND2).
Circuit parity_tree(int inputs);

/// 2^sel-to-1 multiplexer tree from NAND2/INV.
Circuit mux_tree(int select_bits);

/// Random primitive-gate DAG for fuzz/property tests: `n_gates` gates over
/// `n_inputs` PIs, every gate output reachable as a PO candidate; the last
/// `n_outputs` generated nets are POs. Deterministic in `seed`.
Circuit random_circuit(int n_inputs, int n_gates, int n_outputs,
                       std::uint64_t seed);

/// n-to-2^n one-hot decoder from NAND2/INV.
/// Inputs: s0..s(n-1). Outputs: y0..y(2^n - 1), yk = (sel == k).
Circuit decoder(int select_bits);

/// n-bit equality comparator from NAND2/INV.
/// Inputs: a0.., b0... Output: eq = (a == b).
Circuit equality_comparator(int bits);

/// One ALU bit-slice: op-selected AND / OR / XOR / SUM of (a, b, cin).
/// Inputs: a, b, cin, s0, s1. Outputs: y (selected function), cout.
/// s=00 -> AND, 01 -> OR, 10 -> XOR, 11 -> SUM (cout always the adder's).
Circuit alu_bit_slice();

/// n x n array multiplier from NAND2/INV (AND matrix + ripple adders).
/// Inputs: a0.., b0... Outputs: p0..p(2n-1).
Circuit array_multiplier(int bits);

}  // namespace obd::logic

#include "obs/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstring>

namespace obd::obs {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void logf(LogLevel level, const char* fmt, ...) {
  if (!log_enabled(level)) return;
  const char* prefix = "obd_atpg: ";
  if (level == LogLevel::kInfo) prefix = "obd_atpg[info]: ";
  if (level == LogLevel::kDebug) prefix = "obd_atpg[debug]: ";
  char buf[2048];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  const std::size_t len = std::strlen(buf);
  const bool has_nl = len > 0 && buf[len - 1] == '\n';
  std::fprintf(stderr, "%s%s%s", prefix, buf, has_nl ? "" : "\n");
}

}  // namespace obd::obs

// Tiny leveled stderr logger for the flow/CLI layer.
//
// Default level is kWarn, chosen so the tool's default output is unchanged:
// fatal errors (kError) and retry/quarantine warnings (kWarn) print exactly
// where ad-hoc fprintf(stderr) calls used to, while supervisor lifecycle
// detail (kInfo) and per-attempt chatter (kDebug) only appear under
// --verbose. --quiet drops to kError.
#pragma once

#include <cstdarg>

namespace obd::obs {

enum class LogLevel : int {
  kError = 0,
  kWarn = 1,
  kInfo = 2,
  kDebug = 3,
};

void set_log_level(LogLevel level);
LogLevel log_level();

inline bool log_enabled(LogLevel level) {
  return static_cast<int>(level) <= static_cast<int>(log_level());
}

/// printf-style to stderr, prefixed "obd_atpg: " for warn/error and
/// "obd_atpg[info]: " / "obd_atpg[debug]: " otherwise. Appends a newline
/// iff the format doesn't end with one.
#if defined(__GNUC__)
__attribute__((format(printf, 2, 3)))
#endif
void logf(LogLevel level, const char* fmt, ...);

}  // namespace obd::obs

#include "obs/metrics.hpp"

#include <algorithm>
#include <mutex>
#include <stdexcept>
#include <unordered_map>

namespace obd::obs {

const char* to_string(MetricKind k) {
  switch (k) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "?";
}

struct Registry::Impl {
  mutable std::mutex mu;
  std::vector<std::string> names;
  std::vector<MetricKind> kinds;
  std::unordered_map<std::string, MetricId> by_name;
};

Registry& Registry::instance() {
  static Registry r;
  return r;
}

Registry::Impl& Registry::impl() const {
  static Impl i;
  return i;
}

MetricId Registry::intern(std::string_view name, MetricKind kind) {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mu);
  auto it = i.by_name.find(std::string(name));
  if (it != i.by_name.end()) {
    if (i.kinds[it->second] != kind) {
      throw std::logic_error("metric '" + std::string(name) +
                             "' re-registered with a different kind");
    }
    return it->second;
  }
  const MetricId id = static_cast<MetricId>(i.names.size());
  i.names.emplace_back(name);
  i.kinds.push_back(kind);
  i.by_name.emplace(i.names.back(), id);
  return id;
}

std::size_t Registry::size() const {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mu);
  return i.names.size();
}

const std::string& Registry::name(MetricId id) const {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mu);
  return i.names.at(id);
}

MetricKind Registry::kind(MetricId id) const {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mu);
  return i.kinds.at(id);
}

void Sheet::observe(MetricId id, std::uint64_t v) {
  if (id >= values_.size()) grow(id);
  if (!hists_[id]) hists_[id] = std::make_unique<HistData>();
  HistData& h = *hists_[id];
  ++h.buckets[static_cast<std::size_t>(log2_bucket(v))];
  ++h.count;
  h.sum += v;
  if (v > h.max) h.max = v;
  // values_ mirrors the observation count so snapshot() can skip
  // histograms with no data via the same non-zero test as counters.
  ++values_[id];
}

const HistData* Sheet::hist(MetricId id) const {
  if (id >= hists_.size()) return nullptr;
  return hists_[id].get();
}

void Sheet::merge_from(const Sheet& other) {
  if (other.values_.size() > values_.size()) {
    grow(static_cast<MetricId>(other.values_.size() - 1));
  }
  for (std::size_t i = 0; i < other.values_.size(); ++i) {
    values_[i] += other.values_[i];
    if (other.hists_[i]) {
      if (!hists_[i]) hists_[i] = std::make_unique<HistData>();
      HistData& dst = *hists_[i];
      const HistData& src = *other.hists_[i];
      for (int b = 0; b < kHistBuckets; ++b) dst.buckets[b] += src.buckets[b];
      dst.count += src.count;
      dst.sum += src.sum;
      if (src.max > dst.max) dst.max = src.max;
    }
  }
}

void Sheet::clear() {
  std::fill(values_.begin(), values_.end(), 0);
  for (auto& h : hists_) h.reset();
}

void Sheet::grow(MetricId id) {
  values_.resize(static_cast<std::size_t>(id) + 1, 0);
  hists_.resize(static_cast<std::size_t>(id) + 1);
}

std::vector<MetricValue> snapshot(const Sheet& sheet) {
  Registry& reg = Registry::instance();
  std::vector<MetricValue> out;
  for (MetricId id = 0; id < sheet.touched(); ++id) {
    if (sheet.value(id) == 0) continue;
    MetricValue mv;
    mv.name = reg.name(id);
    mv.kind = reg.kind(id);
    if (mv.kind == MetricKind::kHistogram) {
      if (const HistData* h = sheet.hist(id)) mv.hist = *h;
      mv.value = static_cast<long long>(mv.hist.count);
    } else {
      mv.value = sheet.value(id);
    }
    out.push_back(std::move(mv));
  }
  std::sort(out.begin(), out.end(),
            [](const MetricValue& a, const MetricValue& b) {
              return a.name < b.name;
            });
  return out;
}

}  // namespace obd::obs

// Low-overhead metrics: a process-wide name registry plus per-thread
// accumulation sheets with a deterministic merge.
//
// The design splits schema from storage:
//
//   - the Registry interns metric names once (process-global, mutex-
//     protected, registration-time only) and hands back dense MetricIds;
//   - a Sheet is a plain slab of counters/gauges plus sparse log2-bucket
//     histograms, owned by exactly one thread or engine — increments are an
//     array bump behind a grow check, no atomics, no locks, no branches on
//     an "enabled" flag (recording a number this cheap is always on);
//   - merge_from() folds one sheet into another elementwise (counters and
//     gauges sum, histogram buckets sum), so merging worker sheets in
//     worker order yields the same totals at any thread count whenever the
//     per-worker work partition is itself deterministic.
//
// This replaces the hand-threaded counter plumbing (engine member counters
// -> SimStats -> campaign report fields): a subsystem registers a name,
// bumps its sheet, and the value shows up in the merged campaign metrics
// without touching any intermediate struct.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace obd::obs {

using MetricId = std::uint32_t;

enum class MetricKind : std::uint8_t {
  kCounter,    ///< monotone count; merge = sum
  kGauge,      ///< last-set level (bytes resident, peak bytes); merge = sum
               ///< of per-sheet levels (the SimStats convention)
  kHistogram,  ///< log2-bucket value distribution; merge = bucket-wise sum
};

const char* to_string(MetricKind k);

/// Fixed log2 bucketing: bucket 0 holds value 0, bucket i >= 1 holds values
/// with bit_width i (i.e. [2^(i-1), 2^i)), the last bucket clamps the tail.
inline constexpr int kHistBuckets = 32;

inline int log2_bucket(std::uint64_t v) {
  if (v == 0) return 0;
  const int b = std::bit_width(v);
  return b < kHistBuckets ? b : kHistBuckets - 1;
}

struct HistData {
  std::array<std::uint64_t, kHistBuckets> buckets{};
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t max = 0;
};

/// Process-wide metric schema: name -> dense id. Registering the same name
/// twice returns the same id (the kind must match). Thread-safe; meant to
/// be hit once per call site via a cached id, never in a hot loop.
class Registry {
 public:
  static Registry& instance();

  MetricId intern(std::string_view name, MetricKind kind);
  std::size_t size() const;
  const std::string& name(MetricId id) const;
  MetricKind kind(MetricId id) const;

 private:
  struct Impl;
  Impl& impl() const;
};

inline MetricId counter(std::string_view name) {
  return Registry::instance().intern(name, MetricKind::kCounter);
}
inline MetricId gauge(std::string_view name) {
  return Registry::instance().intern(name, MetricKind::kGauge);
}
inline MetricId histogram(std::string_view name) {
  return Registry::instance().intern(name, MetricKind::kHistogram);
}

/// Single-owner accumulation slab. Not thread-safe by design: one sheet per
/// worker/engine, merged deterministically afterwards.
class Sheet {
 public:
  /// Counter/gauge bump. Negative deltas are allowed (gauges that shrink,
  /// e.g. resident cache bytes on eviction).
  void add(MetricId id, long long delta = 1) {
    if (id >= values_.size()) grow(id);
    values_[id] += delta;
  }
  /// Gauge assignment.
  void set(MetricId id, long long v) {
    if (id >= values_.size()) grow(id);
    values_[id] = v;
  }
  /// Gauge high-water mark.
  void raise(MetricId id, long long v) {
    if (id >= values_.size()) grow(id);
    if (v > values_[id]) values_[id] = v;
  }
  /// Histogram observation.
  void observe(MetricId id, std::uint64_t v);

  long long value(MetricId id) const {
    return id < values_.size() ? values_[id] : 0;
  }
  /// Stable pointer into the slab, for hot loops that bump one metric at
  /// member-increment cost. The pointer is invalidated by a later
  /// add/set/observe/slot with a LARGER id (the slab reallocates) — touch
  /// every id you'll cache first, then take the pointers.
  long long* slot(MetricId id) {
    if (id >= values_.size()) grow(id);
    return &values_[id];
  }
  /// Null when the id has no observations in this sheet.
  const HistData* hist(MetricId id) const;

  /// Elementwise fold (counters/gauges sum, histogram buckets sum).
  void merge_from(const Sheet& other);
  void clear();

  std::size_t touched() const { return values_.size(); }

 private:
  void grow(MetricId id);

  std::vector<long long> values_;
  std::vector<std::unique_ptr<HistData>> hists_;  // parallel to values_
};

/// One rendered metric for reports: registry name + merged value.
struct MetricValue {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  long long value = 0;   // counters / gauges
  HistData hist;         // histograms
};

/// Renders every non-zero metric of a sheet, sorted by name — a
/// deterministic, self-describing view for the campaign JSON report.
std::vector<MetricValue> snapshot(const Sheet& sheet);

}  // namespace obd::obs

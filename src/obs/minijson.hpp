// Minimal flat-JSON-object reader for the observability layer's own line
// formats (trace fragments, heartbeats, status lines). It understands one
// top-level object whose values are strings, numbers, booleans, null, or a
// single level of nested object/array (captured as raw text) — exactly what
// our emitters produce. Not a general JSON parser; unknown shapes fail the
// parse rather than mis-read.
#pragma once

#include <cctype>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace obd::obs::minijson {

struct Field {
  std::string key;
  std::string raw;        ///< value text with string quotes/escapes resolved
  bool was_string = false;
};

namespace detail {

inline void skip_ws(std::string_view s, std::size_t& i) {
  while (i < s.size() &&
         (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' || s[i] == '\r')) {
    ++i;
  }
}

inline bool parse_string(std::string_view s, std::size_t& i,
                         std::string& out) {
  if (i >= s.size() || s[i] != '"') return false;
  ++i;
  out.clear();
  while (i < s.size()) {
    char c = s[i++];
    if (c == '"') return true;
    if (c == '\\') {
      if (i >= s.size()) return false;
      char e = s[i++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (i + 4 > s.size()) return false;
          unsigned cp = 0;
          for (int k = 0; k < 4; ++k) {
            char h = s[i++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
            else return false;
          }
          // Our emitters only escape ASCII control chars; anything wider is
          // preserved as '?' rather than implementing full UTF-16 pairing.
          out += cp < 0x80 ? static_cast<char>(cp) : '?';
          break;
        }
        default: return false;
      }
    } else {
      out += c;
    }
  }
  return false;  // unterminated
}

/// Captures a balanced {...} or [...] as raw text (strings respected).
inline bool capture_nested(std::string_view s, std::size_t& i,
                           std::string& out) {
  const char open = s[i];
  const char close = open == '{' ? '}' : ']';
  int depth = 0;
  const std::size_t start = i;
  while (i < s.size()) {
    char c = s[i];
    if (c == '"') {
      std::string tmp;
      if (!parse_string(s, i, tmp)) return false;
      continue;
    }
    if (c == open) ++depth;
    if (c == close) {
      --depth;
      if (depth == 0) {
        ++i;
        out.assign(s.substr(start, i - start));
        return true;
      }
    }
    ++i;
  }
  return false;
}

}  // namespace detail

/// Parses one flat JSON object. Returns false on any syntax surprise.
inline bool parse_object(std::string_view s, std::vector<Field>& out) {
  out.clear();
  std::size_t i = 0;
  detail::skip_ws(s, i);
  if (i >= s.size() || s[i] != '{') return false;
  ++i;
  detail::skip_ws(s, i);
  if (i < s.size() && s[i] == '}') {
    ++i;
    detail::skip_ws(s, i);
    return i == s.size();
  }
  while (true) {
    Field f;
    detail::skip_ws(s, i);
    if (!detail::parse_string(s, i, f.key)) return false;
    detail::skip_ws(s, i);
    if (i >= s.size() || s[i] != ':') return false;
    ++i;
    detail::skip_ws(s, i);
    if (i >= s.size()) return false;
    if (s[i] == '"') {
      if (!detail::parse_string(s, i, f.raw)) return false;
      f.was_string = true;
    } else if (s[i] == '{' || s[i] == '[') {
      if (!detail::capture_nested(s, i, f.raw)) return false;
    } else {
      const std::size_t start = i;
      while (i < s.size() && s[i] != ',' && s[i] != '}') ++i;
      f.raw.assign(s.substr(start, i - start));
      while (!f.raw.empty() &&
             (f.raw.back() == ' ' || f.raw.back() == '\t')) {
        f.raw.pop_back();
      }
      if (f.raw.empty()) return false;
    }
    out.push_back(std::move(f));
    detail::skip_ws(s, i);
    if (i >= s.size()) return false;
    if (s[i] == ',') {
      ++i;
      continue;
    }
    if (s[i] == '}') {
      ++i;
      detail::skip_ws(s, i);
      return i == s.size();
    }
    return false;
  }
}

inline const Field* find(const std::vector<Field>& fields,
                         std::string_view key) {
  for (const Field& f : fields) {
    if (f.key == key) return &f;
  }
  return nullptr;
}

inline bool get_i64(const std::vector<Field>& fields, std::string_view key,
                    std::int64_t& out) {
  const Field* f = find(fields, key);
  if (!f) return false;
  char* end = nullptr;
  const long long v = std::strtoll(f->raw.c_str(), &end, 10);
  if (end == f->raw.c_str()) return false;
  out = v;
  return true;
}

inline bool get_f64(const std::vector<Field>& fields, std::string_view key,
                    double& out) {
  const Field* f = find(fields, key);
  if (!f) return false;
  char* end = nullptr;
  const double v = std::strtod(f->raw.c_str(), &end);
  if (end == f->raw.c_str()) return false;
  out = v;
  return true;
}

inline bool get_str(const std::vector<Field>& fields, std::string_view key,
                    std::string& out) {
  const Field* f = find(fields, key);
  if (!f || !f->was_string) return false;
  out = f->raw;
  return true;
}

}  // namespace obd::obs::minijson

#include "obs/progress.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>

#include "obs/minijson.hpp"

namespace obd::obs {

std::string heartbeat_json(const Heartbeat& hb) {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "{\"shard\":%d,\"phase\":\"%s\",\"resolved\":%lld,"
                "\"assigned\":%lld,\"detected\":%lld,\"aborted\":%lld,"
                "\"coverage\":%.6f,\"ckpt_seq\":%lld,\"elapsed_s\":%.3f,"
                "\"ts_us\":%lld}",
                hb.shard, hb.phase.c_str(), hb.resolved, hb.assigned,
                hb.detected, hb.aborted, hb.coverage, hb.ckpt_seq,
                hb.elapsed_s, static_cast<long long>(hb.ts_us));
  return std::string(buf);
}

bool parse_heartbeat(std::string_view line, Heartbeat& out) {
  std::vector<minijson::Field> fields;
  if (!minijson::parse_object(line, fields)) return false;
  std::int64_t v = 0;
  if (!minijson::get_i64(fields, "shard", v)) return false;
  out.shard = static_cast<int>(v);
  if (!minijson::get_str(fields, "phase", out.phase)) return false;
  if (!minijson::get_i64(fields, "resolved", v)) return false;
  out.resolved = v;
  if (!minijson::get_i64(fields, "assigned", v)) return false;
  out.assigned = v;
  if (!minijson::get_i64(fields, "detected", v)) return false;
  out.detected = v;
  if (!minijson::get_i64(fields, "aborted", v)) return false;
  out.aborted = v;
  if (!minijson::get_f64(fields, "coverage", out.coverage)) return false;
  if (!minijson::get_i64(fields, "ckpt_seq", v)) return false;
  out.ckpt_seq = v;
  if (!minijson::get_f64(fields, "elapsed_s", out.elapsed_s)) return false;
  if (!minijson::get_i64(fields, "ts_us", v)) return false;
  out.ts_us = v;
  return true;
}

std::string progress_path(const std::string& checkpoint_dir, int shard) {
  return checkpoint_dir + "/progress-" + std::to_string(shard) + ".ndjson";
}

ProgressWriter::ProgressWriter(std::string path, double interval_s)
    : interval_s_(interval_s) {
  if (path.empty()) return;
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
}

ProgressWriter::~ProgressWriter() {
  if (fd_ >= 0) ::close(fd_);
}

void ProgressWriter::emit(const Heartbeat& hb) {
  if (fd_ < 0) return;
  std::string line = heartbeat_json(hb);
  line += '\n';
  // One write() per line: appends of this size are atomic enough that a
  // reader polling the file never splits a record.
  (void)::write(fd_, line.data(), line.size());
  last_ = std::chrono::steady_clock::now();
  ever_emitted_ = true;
}

void ProgressWriter::maybe_emit(const Heartbeat& hb) {
  if (fd_ < 0) return;
  if (ever_emitted_ && interval_s_ > 0) {
    const auto since = std::chrono::steady_clock::now() - last_;
    if (std::chrono::duration<double>(since).count() < interval_s_) return;
  }
  emit(hb);
}

bool read_last_heartbeat(const std::string& path, Heartbeat& out) {
  std::ifstream in(path);
  if (!in) return false;
  std::string line, last;
  while (std::getline(in, line)) {
    if (!line.empty()) last = line;
  }
  if (last.empty()) return false;
  return parse_heartbeat(last, out);
}

long long file_size_or_negative(const std::string& path) {
  struct stat st{};
  if (::stat(path.c_str(), &st) != 0) return -1;
  return static_cast<long long>(st.st_size);
}

double eta_seconds(long long resolved, long long assigned, double elapsed_s) {
  if (resolved <= 0 || elapsed_s <= 0.0) return -1.0;
  const double rate = static_cast<double>(resolved) / elapsed_s;
  const long long remaining = assigned - resolved;
  if (remaining <= 0) return 0.0;
  return static_cast<double>(remaining) / rate;
}

}  // namespace obd::obs

// Live shard progress: heartbeat NDJSON written by shard executors and read
// back by the supervisor for status aggregation, ETA, and watchdog liveness.
//
// Each shard appends one-line JSON records to
// <checkpoint_dir>/progress-<shard>.ndjson; the file only ever grows, so
// the supervisor can use "did the file get bigger since the last poll" as a
// liveness signal without parsing, and parse just the final line for the
// latest numbers.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>

namespace obd::obs {

struct Heartbeat {
  int shard = 0;
  std::string phase;            ///< "prepass" | "topoff" | "matrix" | "done"
  long long resolved = 0;       ///< faults with a final status
  long long assigned = 0;       ///< faults in this shard's partition
  long long detected = 0;
  long long aborted = 0;
  double coverage = 0.0;        ///< detected / assigned so far
  long long ckpt_seq = 0;       ///< checkpoint flushes completed
  double elapsed_s = 0.0;
  std::int64_t ts_us = 0;       ///< wall clock, µs since epoch
};

std::string heartbeat_json(const Heartbeat& hb);
bool parse_heartbeat(std::string_view line, Heartbeat& out);

/// Conventional per-shard heartbeat path under a checkpoint directory.
std::string progress_path(const std::string& checkpoint_dir, int shard);

/// Throttled appender used by the shard executor. All writes are appends
/// with a single write() call per line so concurrent readers never see a
/// torn record.
class ProgressWriter {
 public:
  ProgressWriter() = default;
  /// interval_s <= 0 disables throttling (every maybe_emit writes).
  ProgressWriter(std::string path, double interval_s);
  ~ProgressWriter();
  ProgressWriter(const ProgressWriter&) = delete;
  ProgressWriter& operator=(const ProgressWriter&) = delete;

  bool active() const { return fd_ >= 0; }
  /// Writes if at least interval_s elapsed since the last write.
  void maybe_emit(const Heartbeat& hb);
  /// Writes unconditionally (phase transitions, completion).
  void emit(const Heartbeat& hb);

 private:
  int fd_ = -1;
  double interval_s_ = 1.0;
  std::chrono::steady_clock::time_point last_{};
  bool ever_emitted_ = false;
};

/// Reads the last complete heartbeat line of a progress file. Returns false
/// when the file is missing, empty, or its last line doesn't parse.
bool read_last_heartbeat(const std::string& path, Heartbeat& out);

/// Byte size of a file, or -1 when missing — the supervisor's cheap
/// liveness probe.
long long file_size_or_negative(const std::string& path);

/// Remaining-work estimate in seconds from aggregate progress; negative
/// when no rate is observable yet.
double eta_seconds(long long resolved, long long assigned, double elapsed_s);

}  // namespace obd::obs

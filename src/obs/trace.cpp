#include "obs/trace.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <unordered_map>

#include "obs/minijson.hpp"

namespace obd::obs {

namespace {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

struct Recorder::Impl {
  std::atomic<bool> enabled{false};
  mutable std::mutex mu;
  std::vector<TraceEvent> events;
  std::int32_t pid = 0;
  std::int64_t wall0_us = 0;                       // epoch anchor
  std::chrono::steady_clock::time_point steady0{}; // elapsed anchor
  std::atomic<std::int32_t> next_tid{0};
  std::unordered_map<std::int32_t, std::string> thread_names;
};

namespace {
// tid assignment is thread-local so current_tid() is lock-free after the
// first call per thread. -1 = unassigned.
thread_local std::int32_t tl_tid = -1;
}  // namespace

Recorder& Recorder::instance() {
  static Recorder r;
  return r;
}

Recorder::Impl& Recorder::impl() const {
  static Impl i;
  return i;
}

void Recorder::enable(std::int32_t pid, std::string_view process_name) {
  Impl& i = impl();
  {
    std::lock_guard<std::mutex> lock(i.mu);
    i.pid = pid;
    i.wall0_us = std::chrono::duration_cast<std::chrono::microseconds>(
                     std::chrono::system_clock::now().time_since_epoch())
                     .count();
    i.steady0 = std::chrono::steady_clock::now();
  }
  i.enabled.store(true, std::memory_order_release);
  // The enabling thread owns track 0.
  tl_tid = i.next_tid.load() == 0 ? i.next_tid.fetch_add(1) : current_tid();
  if (!process_name.empty()) {
    TraceEvent ev;
    ev.name = "process_name";
    ev.ph = 'M';
    ev.ts_us = now_us();
    ev.pid = pid;
    ev.tid = tl_tid;
    ev.arg_name.assign(process_name);
    append(std::move(ev));
  }
}

void Recorder::disable() { impl().enabled.store(false, std::memory_order_release); }

bool Recorder::enabled() const {
  return impl().enabled.load(std::memory_order_relaxed);
}

std::int32_t Recorder::current_tid() {
  if (tl_tid < 0) tl_tid = impl().next_tid.fetch_add(1);
  return tl_tid;
}

void Recorder::set_thread_name(std::string_view name) {
  if (!enabled()) return;
  Impl& i = impl();
  const std::int32_t tid = current_tid();
  TraceEvent ev;
  {
    std::lock_guard<std::mutex> lock(i.mu);
    auto it = i.thread_names.find(tid);
    if (it != i.thread_names.end() && it->second == name) return;
    i.thread_names[tid] = std::string(name);
    ev.name = "thread_name";
    ev.ph = 'M';
    ev.ts_us = now_us();
    ev.pid = i.pid;
    ev.tid = tid;
    ev.arg_name.assign(name);
    i.events.push_back(std::move(ev));
  }
}

std::int64_t Recorder::now_us() const {
  Impl& i = impl();
  const auto elapsed = std::chrono::steady_clock::now() - i.steady0;
  return i.wall0_us +
         std::chrono::duration_cast<std::chrono::microseconds>(elapsed).count();
}

void Recorder::begin(std::string_view name, std::string_view cat) {
  if (!enabled()) return;
  Impl& i = impl();
  TraceEvent ev;
  ev.name.assign(name);
  ev.cat.assign(cat);
  ev.ph = 'B';
  ev.ts_us = now_us();
  ev.tid = current_tid();
  std::lock_guard<std::mutex> lock(i.mu);
  ev.pid = i.pid;
  i.events.push_back(std::move(ev));
}

void Recorder::end(std::string_view name, std::string_view cat) {
  if (!enabled()) return;
  Impl& i = impl();
  TraceEvent ev;
  ev.name.assign(name);
  ev.cat.assign(cat);
  ev.ph = 'E';
  ev.ts_us = now_us();
  ev.tid = current_tid();
  std::lock_guard<std::mutex> lock(i.mu);
  ev.pid = i.pid;
  i.events.push_back(std::move(ev));
}

void Recorder::counter(std::string_view name, long long value,
                       std::string_view series) {
  if (!enabled()) return;
  Impl& i = impl();
  TraceEvent ev;
  ev.name.assign(name);
  ev.cat = "atpg";
  ev.ph = 'C';
  ev.ts_us = now_us();
  ev.tid = current_tid();
  ev.args.emplace_back(std::string(series), value);
  std::lock_guard<std::mutex> lock(i.mu);
  ev.pid = i.pid;
  i.events.push_back(std::move(ev));
}

void Recorder::instant(std::string_view name, std::string_view cat) {
  if (!enabled()) return;
  Impl& i = impl();
  TraceEvent ev;
  ev.name.assign(name);
  ev.cat.assign(cat);
  ev.ph = 'i';
  ev.ts_us = now_us();
  ev.tid = current_tid();
  std::lock_guard<std::mutex> lock(i.mu);
  ev.pid = i.pid;
  i.events.push_back(std::move(ev));
}

void Recorder::append(TraceEvent ev) {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mu);
  i.events.push_back(std::move(ev));
}

std::size_t Recorder::event_count() const {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mu);
  return i.events.size();
}

std::vector<TraceEvent> Recorder::events_copy() const {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mu);
  return i.events;
}

void Recorder::clear() {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mu);
  i.events.clear();
  i.thread_names.clear();
}

std::string event_json(const TraceEvent& ev) {
  std::string out = "{\"name\":\"" + json_escape(ev.name) + "\"";
  if (!ev.cat.empty()) out += ",\"cat\":\"" + json_escape(ev.cat) + "\"";
  out += ",\"ph\":\"";
  out += ev.ph;
  out += "\",\"ts\":" + std::to_string(ev.ts_us);
  out += ",\"pid\":" + std::to_string(ev.pid);
  out += ",\"tid\":" + std::to_string(ev.tid);
  if (ev.ph == 'M') {
    out += ",\"args\":{\"name\":\"" + json_escape(ev.arg_name) + "\"}";
  } else if (!ev.args.empty()) {
    out += ",\"args\":{";
    bool first = true;
    for (const auto& [k, v] : ev.args) {
      if (!first) out += ',';
      first = false;
      out += "\"" + json_escape(k) + "\":" + std::to_string(v);
    }
    out += "}";
  }
  if (ev.ph == 'i') out += ",\"s\":\"t\"";
  out += "}";
  return out;
}

std::string Recorder::to_json() const {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mu);
  std::string out = "{\"traceEvents\":[\n";
  for (std::size_t n = 0; n < i.events.size(); ++n) {
    out += event_json(i.events[n]);
    if (n + 1 < i.events.size()) out += ',';
    out += '\n';
  }
  out += "],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

std::string Recorder::to_ndjson() const {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mu);
  std::string out;
  for (const TraceEvent& ev : i.events) {
    out += event_json(ev);
    out += '\n';
  }
  return out;
}

bool tracing_on() { return Recorder::instance().enabled(); }

bool parse_event_line(std::string_view line, TraceEvent& out) {
  std::vector<minijson::Field> fields;
  if (!minijson::parse_object(line, fields)) return false;
  std::string ph;
  if (!minijson::get_str(fields, "name", out.name)) return false;
  if (!minijson::get_str(fields, "ph", ph) || ph.size() != 1) return false;
  out.ph = ph[0];
  minijson::get_str(fields, "cat", out.cat);
  std::int64_t v = 0;
  if (!minijson::get_i64(fields, "ts", v)) return false;
  out.ts_us = v;
  if (!minijson::get_i64(fields, "pid", v)) return false;
  out.pid = static_cast<std::int32_t>(v);
  if (!minijson::get_i64(fields, "tid", v)) return false;
  out.tid = static_cast<std::int32_t>(v);
  out.args.clear();
  out.arg_name.clear();
  if (const minijson::Field* args = minijson::find(fields, "args")) {
    std::vector<minijson::Field> inner;
    if (minijson::parse_object(args->raw, inner)) {
      for (const minijson::Field& f : inner) {
        if (f.was_string) {
          if (f.key == "name") out.arg_name = f.raw;
        } else {
          char* end = nullptr;
          const long long n = std::strtoll(f.raw.c_str(), &end, 10);
          if (end != f.raw.c_str()) out.args.emplace_back(f.key, n);
        }
      }
    }
  }
  return true;
}

bool validate_events(const std::vector<TraceEvent>& events,
                     std::vector<std::string>* problems) {
  bool ok = true;
  auto complain = [&](std::string msg) {
    ok = false;
    if (problems) problems->push_back(std::move(msg));
  };
  struct Track {
    std::vector<std::string> stack;
    std::int64_t last_ts = INT64_MIN;
  };
  std::unordered_map<std::int64_t, Track> tracks;
  auto key = [](const TraceEvent& ev) {
    return (static_cast<std::int64_t>(ev.pid) << 32) |
           static_cast<std::uint32_t>(ev.tid);
  };
  for (const TraceEvent& ev : events) {
    Track& t = tracks[key(ev)];
    if (ev.ph != 'M') {  // metadata carries no timing contract
      if (ev.ts_us < t.last_ts) {
        complain("timestamp regression on pid " + std::to_string(ev.pid) +
                 " tid " + std::to_string(ev.tid) + " at event '" + ev.name +
                 "'");
      }
      t.last_ts = ev.ts_us;
    }
    if (ev.ph == 'B') {
      t.stack.push_back(ev.name);
    } else if (ev.ph == 'E') {
      if (t.stack.empty()) {
        complain("unmatched E event '" + ev.name + "' on pid " +
                 std::to_string(ev.pid) + " tid " + std::to_string(ev.tid));
      } else {
        if (t.stack.back() != ev.name) {
          complain("span mismatch on pid " + std::to_string(ev.pid) + " tid " +
                   std::to_string(ev.tid) + ": open '" + t.stack.back() +
                   "', closing '" + ev.name + "'");
        }
        t.stack.pop_back();
      }
    }
  }
  for (const auto& [k, t] : tracks) {
    for (const std::string& open : t.stack) {
      complain("span '" + open + "' never closed (track key " +
               std::to_string(k) + ")");
    }
  }
  return ok;
}

}  // namespace obd::obs

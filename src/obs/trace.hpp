// Chrome/Perfetto trace-event emitter.
//
// The process-global Recorder collects TraceEvents (duration begin/end,
// counters, metadata) and renders them either as a complete Chrome trace
// JSON ({"traceEvents":[...]}, loadable in ui.perfetto.dev / about:tracing)
// or as an NDJSON *fragment* — one event object per line — which shard
// child processes write and the supervisor parses back into structured
// events to stitch one multi-process trace.
//
// Disabled cost: tracing_on() is a relaxed atomic load; every emit site
// checks it first (Span does so inline), so a build with tracing compiled
// in but not enabled does no allocation, no locking, no clock reads.
//
// Timestamps: on enable() the recorder anchors wall-clock (system_clock)
// once and derives every event timestamp as anchor + steady_clock elapsed.
// Within a process timestamps are therefore monotonic; across shard
// processes they share the wall-clock epoch closely enough for the stitched
// per-shard tracks to line up.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace obd::obs {

struct TraceEvent {
  std::string name;
  std::string cat;
  char ph = 'B';              ///< B/E (span), C (counter), M (metadata), i
  std::int64_t ts_us = 0;     ///< microseconds since the Unix epoch
  std::int32_t pid = 0;
  std::int32_t tid = 0;
  /// Rendered into "args": numeric key/values for spans and counters, or a
  /// single {"name": string} for metadata events (string stored in
  /// arg_name).
  std::vector<std::pair<std::string, long long>> args;
  std::string arg_name;       ///< M-event payload ("process_name"/"thread_name")
};

class Recorder {
 public:
  static Recorder& instance();

  /// Turns recording on. `pid` becomes the process track id (shard children
  /// pass shard_index + 1 so the supervisor's own track is pid 0);
  /// `process_name` labels the track via an M event.
  void enable(std::int32_t pid, std::string_view process_name);
  void disable();
  bool enabled() const;

  /// Current thread's track id: 0 for the thread that called enable(),
  /// dense small integers for threads seen after it.
  std::int32_t current_tid();
  /// Labels the calling thread's track (deduped: re-labeling with the same
  /// name is a no-op).
  void set_thread_name(std::string_view name);

  void begin(std::string_view name, std::string_view cat = "atpg");
  void end(std::string_view name, std::string_view cat = "atpg");
  void counter(std::string_view name, long long value,
               std::string_view series = "value");
  void instant(std::string_view name, std::string_view cat = "atpg");

  /// Appends an externally produced event (fragment stitching).
  void append(TraceEvent ev);

  std::int64_t now_us() const;
  std::size_t event_count() const;
  std::vector<TraceEvent> events_copy() const;

  /// Complete Chrome trace document.
  std::string to_json() const;
  /// Fragment form: one event object per line, no wrapper.
  std::string to_ndjson() const;

  /// Drops all recorded events (keeps enabled state and tid assignments).
  void clear();

 private:
  struct Impl;
  Impl& impl() const;
};

/// True when the global recorder is recording; emit sites gate on this.
bool tracing_on();

/// RAII duration span. Emits nothing when tracing is off at construction;
/// remembers whether it emitted the begin so a mid-span enable/disable
/// cannot unbalance the stream.
class Span {
 public:
  explicit Span(std::string_view name, std::string_view cat = "atpg") {
    if (tracing_on()) {
      name_.assign(name);
      cat_.assign(cat);
      Recorder::instance().begin(name_, cat_);
      open_ = true;
    }
  }
  ~Span() { close(); }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Ends the span early (idempotent).
  void close() {
    if (open_) {
      Recorder::instance().end(name_, cat_);
      open_ = false;
    }
  }

 private:
  std::string name_;
  std::string cat_;
  bool open_ = false;
};

/// Renders one event as a JSON object (no trailing newline).
std::string event_json(const TraceEvent& ev);

/// Parses one fragment line back into an event. Returns false on malformed
/// input (the supervisor skips such lines and counts them).
bool parse_event_line(std::string_view line, TraceEvent& out);

/// Structural validation shared by tests and the CI trace checker:
/// per-(pid,tid) track, B/E events must nest with matching names and
/// timestamps must be non-decreasing. Returns true when clean; appends
/// human-readable problems otherwise.
bool validate_events(const std::vector<TraceEvent>& events,
                     std::vector<std::string>* problems = nullptr);

}  // namespace obd::obs

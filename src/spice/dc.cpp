#include "spice/dc.hpp"

#include <cmath>

#include "spice/newton.hpp"

namespace obd::spice {

DcResult dc_operating_point(const Netlist& netlist, const SolverOptions& opt,
                            double time,
                            const std::vector<double>* initial_guess) {
  DcResult result;
  std::vector<double> state(netlist.state_size(), 0.0);
  std::vector<double> x(netlist.unknown_count(), 0.0);
  if (initial_guess && initial_guess->size() == x.size()) x = *initial_guess;

  EvalPoint eval;
  eval.time = time;
  eval.dt = 0.0;

  // Plain attempt.
  NewtonResult nr = solve_newton(netlist, eval, state, opt, &x);
  result.newton_iterations += nr.iterations;
  if (nr.status == SolveStatus::kOk) {
    result.status = SolveStatus::kOk;
    result.x = std::move(x);
    return result;
  }

  // gmin stepping: start with a strong shunt everywhere and relax it.
  if (opt.gmin_stepping) {
    std::vector<double> xg(netlist.unknown_count(), 0.0);
    bool ok = true;
    for (double g = 1e-2; g >= opt.gmin * 0.99; g /= 10.0) {
      eval.gmin_extra = (g <= opt.gmin * 1.01) ? 0.0 : g;
      nr = solve_newton(netlist, eval, state, opt, &xg);
      result.newton_iterations += nr.iterations;
      if (nr.status != SolveStatus::kOk) {
        ok = false;
        break;
      }
      if (eval.gmin_extra == 0.0) break;
    }
    if (ok && nr.status == SolveStatus::kOk) {
      result.status = SolveStatus::kOk;
      result.x = std::move(xg);
      return result;
    }
    eval.gmin_extra = 0.0;
  }

  // Source stepping: ramp all independent sources from 0 to full value.
  if (opt.source_stepping) {
    std::vector<double> xs(netlist.unknown_count(), 0.0);
    bool ok = true;
    for (double scale = 0.1; scale <= 1.0 + 1e-12; scale += 0.1) {
      eval.source_scale = std::min(scale, 1.0);
      nr = solve_newton(netlist, eval, state, opt, &xs);
      result.newton_iterations += nr.iterations;
      if (nr.status != SolveStatus::kOk) {
        ok = false;
        break;
      }
    }
    if (ok && nr.status == SolveStatus::kOk) {
      result.status = SolveStatus::kOk;
      result.x = std::move(xs);
      return result;
    }
  }

  result.status = nr.status;
  return result;
}

DcSweepResult dc_sweep(Netlist& netlist, const std::string& source_name,
                       double start, double stop, double step,
                       const std::vector<std::string>& record_nodes,
                       const SolverOptions& opt) {
  DcSweepResult result;
  VoltageSource* src = netlist.find_vsource(source_name);
  if (src == nullptr) {
    result.status = SolveStatus::kSingularMatrix;
    return result;
  }
  const SourceWave saved = src->wave();

  for (const auto& name : record_nodes)
    result.traces.traces.emplace_back(name);

  std::vector<double> guess;
  const double dir = stop >= start ? 1.0 : -1.0;
  const double mag = std::fabs(step);
  const int n_steps = static_cast<int>(std::floor(std::fabs(stop - start) / mag + 0.5));
  for (int i = 0; i <= n_steps; ++i) {
    const double v = start + dir * mag * i;
    src->set_wave(SourceWave::make_dc(v));
    DcResult op = dc_operating_point(netlist, opt, 0.0,
                                     guess.empty() ? nullptr : &guess);
    if (op.status != SolveStatus::kOk) {
      result.status = op.status;
      break;
    }
    guess = op.x;
    for (std::size_t k = 0; k < record_nodes.size(); ++k) {
      const NodeId n = netlist.find_node(record_nodes[k]);
      result.traces.traces[k].append(v, n == kInvalidNode ? 0.0 : op.voltage(n));
    }
  }
  src->set_wave(saved);
  return result;
}

}  // namespace obd::spice

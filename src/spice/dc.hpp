// DC analyses: operating point (with gmin / source stepping continuation)
// and DC sweep of a named voltage source (used for VTC extraction, Fig. 4).
#pragma once

#include <string>
#include <vector>

#include "spice/netlist.hpp"
#include "util/waveform.hpp"

namespace obd::spice {

struct DcResult {
  SolveStatus status = SolveStatus::kNoConvergence;
  int newton_iterations = 0;
  /// Solution vector (node voltages then branch currents).
  std::vector<double> x;

  /// Voltage of a node in this solution.
  double voltage(NodeId n) const {
    return n == kGround ? 0.0 : x[static_cast<std::size_t>(n) - 1];
  }
};

/// Solves the DC operating point at time `time` (sources evaluated there).
/// Continuation strategy on failure: gmin stepping, then source stepping.
/// `initial_guess` (optional) seeds the first NR attempt.
DcResult dc_operating_point(const Netlist& netlist, const SolverOptions& opt,
                            double time = 0.0,
                            const std::vector<double>* initial_guess = nullptr);

struct DcSweepResult {
  SolveStatus status = SolveStatus::kOk;
  /// One waveform per requested node; the "time" axis is the swept value.
  util::TraceSet traces;
};

/// Sweeps the DC value of voltage source `source_name` from `start` to
/// `stop` in steps of `step`, recording the voltages of `record_nodes`.
/// The source's wave is restored afterwards. Each point seeds the next for
/// smooth continuation along the transfer curve.
DcSweepResult dc_sweep(Netlist& netlist, const std::string& source_name,
                       double start, double stop, double step,
                       const std::vector<std::string>& record_nodes,
                       const SolverOptions& opt);

}  // namespace obd::spice

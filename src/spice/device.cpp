#include "spice/device.hpp"

namespace obd::spice {

void CapCompanion::stamp(const StampContext& ctx, NodeId a, NodeId b,
                         double cap, int state_index) {
  if (ctx.dt <= 0.0 || cap <= 0.0) return;  // Open circuit at DC.
  const double v_prev = ctx.state[static_cast<std::size_t>(state_index)];
  const double i_prev = ctx.state[static_cast<std::size_t>(state_index) + 1];
  double geq = 0.0;
  double ieq = 0.0;  // Constant part: i = geq * v + ieq.
  if (ctx.integrator == Integrator::kBackwardEuler) {
    geq = cap / ctx.dt;
    ieq = -geq * v_prev;
  } else {  // Trapezoidal.
    geq = 2.0 * cap / ctx.dt;
    ieq = -geq * v_prev - i_prev;
  }
  ctx.mna.add_conductance(a, b, geq);
  ctx.mna.add_current(a, b, ieq);
}

void CapCompanion::update(const std::vector<double>& x, double dt,
                          Integrator integrator, NodeId a, NodeId b,
                          double cap, const std::vector<double>& old_state,
                          std::vector<double>* new_state, int state_index) {
  const double v_now =
      MnaSystem::voltage(x, a) - MnaSystem::voltage(x, b);
  const auto idx = static_cast<std::size_t>(state_index);
  if (dt <= 0.0) {
    // DC initialization: capacitor fully settled, no current.
    (*new_state)[idx] = v_now;
    (*new_state)[idx + 1] = 0.0;
    return;
  }
  const double v_prev = old_state[idx];
  const double i_prev = old_state[idx + 1];
  double i_now = 0.0;
  if (integrator == Integrator::kBackwardEuler) {
    i_now = cap / dt * (v_now - v_prev);
  } else {
    i_now = 2.0 * cap / dt * (v_now - v_prev) - i_prev;
  }
  (*new_state)[idx] = v_now;
  (*new_state)[idx + 1] = i_now;
}

}  // namespace obd::spice

// Device base class: everything placeable in a Netlist.
//
// Devices are stamped once per Newton-Raphson iteration. Dynamic devices
// (capacitors, MOSFET parasitics) keep per-device integration state (previous
// voltage and current of each charge-storage element) in a flat state vector
// owned by the analysis; each device is assigned a contiguous slice.
#pragma once

#include <string>
#include <vector>

#include "spice/mna.hpp"
#include "spice/types.hpp"

namespace obd::spice {

/// Context handed to Device::stamp each NR iteration.
struct StampContext {
  /// Current NR iterate (node voltages then branch currents).
  const std::vector<double>& x;
  /// Device integration state from the previous accepted timepoint.
  const std::vector<double>& state;
  /// Target MNA accumulator.
  MnaSystem& mna;
  /// Evaluation time for time-dependent sources [s].
  double time = 0.0;
  /// Current timestep; 0 for DC analyses (dynamic elements stamp nothing
  /// except their leakage/gmin contributions at DC).
  double dt = 0.0;
  Integrator integrator = Integrator::kTrapezoidal;
  /// Junction gmin (convergence aid used by nonlinear devices).
  double gmin = 1e-12;
  /// Source stepping scale in (0, 1]; independent sources multiply their
  /// values by this factor.
  double source_scale = 1.0;
};

/// Abstract circuit element.
class Device {
 public:
  explicit Device(std::string name) : name_(std::move(name)) {}
  virtual ~Device() = default;

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  const std::string& name() const { return name_; }

  /// Number of extra MNA unknowns (branch currents) this device needs.
  virtual int num_branches() const { return 0; }

  /// Number of doubles of integration state this device needs.
  virtual int num_state() const { return 0; }

  /// Adds this device's linearized contribution to the MNA system.
  virtual void stamp(const StampContext& ctx) const = 0;

  /// Refreshes integration state after a timepoint is accepted. `x` is the
  /// converged solution; `dt` the step just taken (0 right after DC init —
  /// devices must then initialize state consistent with a static solution).
  /// Reads old values from `old_state` and writes into `new_state`; both are
  /// full state vectors, the device uses its assigned slice.
  virtual void update_state(const std::vector<double>& x, double dt,
                            Integrator integrator,
                            const std::vector<double>& old_state,
                            std::vector<double>* new_state) const {
    (void)x;
    (void)dt;
    (void)integrator;
    (void)old_state;
    (void)new_state;
  }

  // Assigned by Netlist when the device is added.
  void set_branch_base(int b) { branch_base_ = b; }
  void set_state_base(int s) { state_base_ = s; }
  int branch_base() const { return branch_base_; }
  int state_base() const { return state_base_; }

 private:
  std::string name_;
  int branch_base_ = -1;
  int state_base_ = -1;
};

/// Companion-model helper for a single linear capacitance between two nodes.
/// State layout (2 doubles): [v_prev, i_prev].
struct CapCompanion {
  /// Stamps the integration companion (no-op at DC, dt == 0).
  static void stamp(const StampContext& ctx, NodeId a, NodeId b, double cap,
                    int state_index);
  /// Computes the new state after a converged step.
  static void update(const std::vector<double>& x, double dt,
                     Integrator integrator, NodeId a, NodeId b, double cap,
                     const std::vector<double>& old_state,
                     std::vector<double>* new_state, int state_index);
};

}  // namespace obd::spice

// Concrete circuit elements: R, C, diode, level-1 MOSFET, V/I sources.
//
// The MOSFET is a Shichman-Hodges (SPICE level-1) square-law model with
// channel-length modulation and fixed (voltage-independent) terminal
// capacitances. That is deliberately simple: the paper's OBD phenomena rest
// on (a) gates being *current-limited* drivers and (b) the OBD network
// injecting/diverting current — both of which a square-law model captures.
#pragma once

#include <utility>
#include <vector>

#include "spice/device.hpp"
#include "util/units.hpp"

namespace obd::spice {

// ---------------------------------------------------------------------------
// Parameter records
// ---------------------------------------------------------------------------

/// Shockley diode parameters.
struct DiodeParams {
  /// Saturation current [A]. The OBD model sweeps this over many decades.
  double isat = 1e-14;
  /// Ideality factor.
  double n = 1.0;
  /// Thermal voltage kT/q [V] (300 K default).
  double vt = util::constants::kThermalVoltage300K;
};

/// Level-1 MOSFET parameters. All capacitances are absolute [F].
struct MosfetParams {
  bool pmos = false;
  /// Threshold magnitude [V] (positive for both polarities).
  double vt0 = 0.55;
  /// Transconductance parameter uCox [A/V^2].
  double kp = 170e-6;
  /// Channel width / length [m].
  double w = 1.0e-6;
  double l = 0.35e-6;
  /// Channel-length modulation [1/V].
  double lambda = 0.05;
  /// Fixed terminal capacitances [F].
  double cgs = 0.0;
  double cgd = 0.0;
  double cdb = 0.0;
  double csb = 0.0;

  double beta() const { return kp * w / l; }
};

/// Time-dependent value of an independent source.
struct SourceWave {
  enum class Kind { kDc, kPulse, kPwl };
  Kind kind = Kind::kDc;

  /// DC level (kDc) [V or A].
  double dc = 0.0;

  // PULSE(v1 v2 td tr tf pw per): SPICE semantics; per <= 0 means one-shot.
  double v1 = 0.0, v2 = 0.0;
  double td = 0.0, tr = 1e-12, tf = 1e-12, pw = 1e-9, period = 0.0;

  /// PWL breakpoints (time, value); value holds beyond the last point.
  std::vector<std::pair<double, double>> pwl;

  /// Evaluates the waveform at time t.
  double value(double t) const;

  static SourceWave make_dc(double v);
  static SourceWave make_pulse(double v1, double v2, double td, double tr,
                               double tf, double pw, double period = 0.0);
  static SourceWave make_pwl(std::vector<std::pair<double, double>> pts);
};

// ---------------------------------------------------------------------------
// Devices
// ---------------------------------------------------------------------------

/// Linear resistor.
class Resistor final : public Device {
 public:
  Resistor(std::string name, NodeId a, NodeId b, double ohms)
      : Device(std::move(name)), a_(a), b_(b), ohms_(ohms) {}
  void stamp(const StampContext& ctx) const override;
  double ohms() const { return ohms_; }
  void set_ohms(double r) { ohms_ = r; }
  NodeId node_a() const { return a_; }
  NodeId node_b() const { return b_; }

 private:
  NodeId a_, b_;
  double ohms_;
};

/// Linear capacitor.
class Capacitor final : public Device {
 public:
  Capacitor(std::string name, NodeId a, NodeId b, double farads)
      : Device(std::move(name)), a_(a), b_(b), farads_(farads) {}
  int num_state() const override { return 2; }
  void stamp(const StampContext& ctx) const override;
  void update_state(const std::vector<double>& x, double dt,
                    Integrator integrator,
                    const std::vector<double>& old_state,
                    std::vector<double>* new_state) const override;
  double farads() const { return farads_; }

 private:
  NodeId a_, b_;
  double farads_;
};

/// Shockley diode with exponent limiting for NR robustness.
class Diode final : public Device {
 public:
  Diode(std::string name, NodeId anode, NodeId cathode, DiodeParams p)
      : Device(std::move(name)), a_(anode), c_(cathode), p_(p) {}
  void stamp(const StampContext& ctx) const override;
  /// Current at a given junction voltage (exposed for unit tests and for
  /// the OBD leakage-current reporting).
  double current(double v_anode_cathode) const;
  const DiodeParams& params() const { return p_; }
  void set_params(const DiodeParams& p) { p_ = p; }

 private:
  NodeId a_, c_;
  DiodeParams p_;
};

/// Level-1 MOSFET (four terminals: drain, gate, source, bulk).
/// Bulk participates only in the fixed junction capacitances; body effect
/// on VT is not modeled (all cells tie bulk to the source rail).
class Mosfet final : public Device {
 public:
  Mosfet(std::string name, NodeId d, NodeId g, NodeId s, NodeId b,
         MosfetParams p)
      : Device(std::move(name)), d_(d), g_(g), s_(s), b_(b), p_(p) {}

  int num_state() const override { return 8; }  // 4 caps x (v_prev, i_prev)
  void stamp(const StampContext& ctx) const override;
  void update_state(const std::vector<double>& x, double dt,
                    Integrator integrator,
                    const std::vector<double>& old_state,
                    std::vector<double>* new_state) const override;

  /// Static drain current Ids (drain->source, sign per polarity) and its
  /// derivatives at the given terminal voltages. Exposed for unit tests.
  struct Operating {
    double ids;  ///< Current from drain to source [A].
    double gm;   ///< d Ids / d Vgs in the conducting frame (>= 0).
    double gds;  ///< d Ids / d Vds in the conducting frame (>= 0).
  };
  Operating evaluate(double vd, double vg, double vs) const;

  const MosfetParams& params() const { return p_; }
  NodeId drain() const { return d_; }
  NodeId gate() const { return g_; }
  NodeId source() const { return s_; }
  NodeId bulk() const { return b_; }

 private:
  NodeId d_, g_, s_, b_;
  MosfetParams p_;
};

/// Independent voltage source (adds one branch-current unknown).
class VoltageSource final : public Device {
 public:
  VoltageSource(std::string name, NodeId pos, NodeId neg, SourceWave wave)
      : Device(std::move(name)), pos_(pos), neg_(neg), wave_(std::move(wave)) {}
  int num_branches() const override { return 1; }
  void stamp(const StampContext& ctx) const override;
  const SourceWave& wave() const { return wave_; }
  void set_wave(SourceWave w) { wave_ = std::move(w); }
  NodeId pos() const { return pos_; }
  NodeId neg() const { return neg_; }

 private:
  NodeId pos_, neg_;
  SourceWave wave_;
};

/// Independent current source (current flows from pos through the source to
/// neg, i.e. it *injects* into neg).
class CurrentSource final : public Device {
 public:
  CurrentSource(std::string name, NodeId pos, NodeId neg, SourceWave wave)
      : Device(std::move(name)), pos_(pos), neg_(neg), wave_(std::move(wave)) {}
  void stamp(const StampContext& ctx) const override;
  const SourceWave& wave() const { return wave_; }

 private:
  NodeId pos_, neg_;
  SourceWave wave_;
};

}  // namespace obd::spice

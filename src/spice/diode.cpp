// Shockley diode with exponent limiting.
//
// The OBD model (Fig. 3b of the paper) drives these diodes across ~30 decades
// of saturation current, so the evaluation must stay finite and the Jacobian
// well-conditioned over the whole range. Above a fixed exponent cap the
// characteristic continues as its tangent line (standard SPICE practice).
#include <cmath>

#include "spice/devices.hpp"

namespace obd::spice {
namespace {
// exp(80) ~ 5.5e34; with Isat as low as 1e-30 this still yields finite
// currents, and with Isat ~ 1e-24 (HBD) currents stay << overflow.
constexpr double kMaxExponent = 80.0;
}  // namespace

double Diode::current(double v) const {
  const double nvt = p_.n * p_.vt;
  const double e = v / nvt;
  if (e <= kMaxExponent) return p_.isat * std::expm1(e);
  const double i_crit = p_.isat * (std::exp(kMaxExponent) - 1.0);
  const double g_crit = p_.isat / nvt * std::exp(kMaxExponent);
  return i_crit + g_crit * (v - kMaxExponent * nvt);
}

void Diode::stamp(const StampContext& ctx) const {
  const double va = MnaSystem::voltage(ctx.x, a_);
  const double vc = MnaSystem::voltage(ctx.x, c_);
  const double v = va - vc;
  const double nvt = p_.n * p_.vt;
  const double e = v / nvt;

  double i0 = 0.0;
  double g = 0.0;
  if (e <= kMaxExponent) {
    i0 = p_.isat * std::expm1(e);
    g = p_.isat / nvt * std::exp(e);
  } else {
    const double i_crit = p_.isat * (std::exp(kMaxExponent) - 1.0);
    g = p_.isat / nvt * std::exp(kMaxExponent);
    i0 = i_crit + g * (v - kMaxExponent * nvt);
  }
  g += ctx.gmin;  // Junction gmin keeps the matrix nonsingular when off.

  // Norton companion: I(v) ~ i0 + g (v' - v)  =>  constant part i0 - g v.
  ctx.mna.add_conductance(a_, c_, g);
  ctx.mna.add_current(a_, c_, i0 - g * v);
}

}  // namespace obd::spice

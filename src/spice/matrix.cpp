#include "spice/matrix.hpp"

#include <algorithm>
#include <cmath>

namespace obd::spice {

void DenseMatrix::clear() { std::fill(data_.begin(), data_.end(), 0.0); }

void DenseMatrix::resize(std::size_t rows, std::size_t cols) {
  rows_ = rows;
  cols_ = cols;
  data_.assign(rows * cols, 0.0);
}

bool LuSolver::factor(const DenseMatrix& a, double pivot_tol) {
  n_ = a.rows();
  lu_ = a;
  perm_.resize(n_);
  for (std::size_t i = 0; i < n_; ++i) perm_[i] = i;

  for (std::size_t k = 0; k < n_; ++k) {
    // Partial pivoting: find the largest magnitude entry in column k.
    std::size_t pivot_row = k;
    double pivot_mag = std::fabs(lu_.at(k, k));
    for (std::size_t r = k + 1; r < n_; ++r) {
      const double mag = std::fabs(lu_.at(r, k));
      if (mag > pivot_mag) {
        pivot_mag = mag;
        pivot_row = r;
      }
    }
    if (pivot_mag < pivot_tol || !std::isfinite(pivot_mag)) return false;
    if (pivot_row != k) {
      for (std::size_t c = 0; c < n_; ++c)
        std::swap(lu_.at(k, c), lu_.at(pivot_row, c));
      std::swap(perm_[k], perm_[pivot_row]);
    }
    const double inv_pivot = 1.0 / lu_.at(k, k);
    for (std::size_t r = k + 1; r < n_; ++r) {
      const double factor = lu_.at(r, k) * inv_pivot;
      lu_.at(r, k) = factor;
      if (factor == 0.0) continue;
      for (std::size_t c = k + 1; c < n_; ++c)
        lu_.at(r, c) -= factor * lu_.at(k, c);
    }
  }
  return true;
}

void LuSolver::solve(const std::vector<double>& b, std::vector<double>* x) const {
  std::vector<double> y(n_);
  // Forward substitution with permutation: L y = P b.
  for (std::size_t r = 0; r < n_; ++r) {
    double sum = b[perm_[r]];
    for (std::size_t c = 0; c < r; ++c) sum -= lu_.at(r, c) * y[c];
    y[r] = sum;
  }
  // Back substitution: U x = y.
  x->assign(n_, 0.0);
  for (std::size_t ri = n_; ri-- > 0;) {
    double sum = y[ri];
    for (std::size_t c = ri + 1; c < n_; ++c) sum -= lu_.at(ri, c) * (*x)[c];
    (*x)[ri] = sum / lu_.at(ri, ri);
  }
}

bool solve_linear(const DenseMatrix& a, const std::vector<double>& b,
                  std::vector<double>* x) {
  LuSolver solver;
  if (!solver.factor(a)) return false;
  solver.solve(b, x);
  return true;
}

}  // namespace obd::spice

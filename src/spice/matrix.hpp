// Dense linear algebra for MNA systems.
//
// Circuits in this repo top out around a few hundred unknowns (the full
// adder elaborated to transistors is ~100), so dense LU with partial
// pivoting is both simpler and faster than a sparse solver at this scale.
#pragma once

#include <cstddef>
#include <vector>

namespace obd::spice {

/// Row-major dense square-capable matrix of doubles.
class DenseMatrix {
 public:
  DenseMatrix() = default;
  DenseMatrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double at(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  /// Sets every entry to zero without reallocating.
  void clear();

  /// Resizes and zeroes.
  void resize(std::size_t rows, std::size_t cols);

  const std::vector<double>& data() const { return data_; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// LU factorization with partial pivoting, reusable across solves with the
/// same matrix. Factorization is destructive on an internal copy.
class LuSolver {
 public:
  /// Factors `a` (square). Returns false when the matrix is numerically
  /// singular (pivot below `pivot_tol`).
  bool factor(const DenseMatrix& a, double pivot_tol = 1e-300);

  /// Solves A x = b using the stored factorization. `b` and `x` may alias.
  /// Must be called after a successful factor().
  void solve(const std::vector<double>& b, std::vector<double>* x) const;

  std::size_t dimension() const { return n_; }

 private:
  std::size_t n_ = 0;
  DenseMatrix lu_;
  std::vector<std::size_t> perm_;
};

/// One-shot convenience: solve a x = b. Returns false on singularity.
bool solve_linear(const DenseMatrix& a, const std::vector<double>& b,
                  std::vector<double>* x);

}  // namespace obd::spice

#include "spice/mna.hpp"

namespace obd::spice {

MnaSystem::MnaSystem(std::size_t num_nodes, std::size_t num_branches)
    : num_nodes_(num_nodes),
      dim_(num_nodes - 1 + num_branches),
      g_(dim_, dim_),
      b_(dim_, 0.0) {}

void MnaSystem::clear() {
  g_.clear();
  std::fill(b_.begin(), b_.end(), 0.0);
}

void MnaSystem::add_conductance(NodeId a, NodeId b, double g) {
  const int ia = node_index(a);
  const int ib = node_index(b);
  if (ia >= 0) g_.at(ia, ia) += g;
  if (ib >= 0) g_.at(ib, ib) += g;
  if (ia >= 0 && ib >= 0) {
    g_.at(ia, ib) -= g;
    g_.at(ib, ia) -= g;
  }
}

void MnaSystem::add_gmin(NodeId a, double g) {
  const int ia = node_index(a);
  if (ia >= 0) g_.at(ia, ia) += g;
}

void MnaSystem::add_current(NodeId a, NodeId b, double i) {
  const int ia = node_index(a);
  const int ib = node_index(b);
  // Current leaving node a appears on the RHS with negative sign in
  // G x = b (KCL: sum of leaving currents equals injections).
  if (ia >= 0) b_[static_cast<std::size_t>(ia)] -= i;
  if (ib >= 0) b_[static_cast<std::size_t>(ib)] += i;
}

void MnaSystem::add_transconductance(NodeId out_a, NodeId out_b, NodeId in_a,
                                     NodeId in_b, double gm) {
  const int oa = node_index(out_a);
  const int ob = node_index(out_b);
  const int ia = node_index(in_a);
  const int ib = node_index(in_b);
  if (oa >= 0 && ia >= 0) g_.at(oa, ia) += gm;
  if (oa >= 0 && ib >= 0) g_.at(oa, ib) -= gm;
  if (ob >= 0 && ia >= 0) g_.at(ob, ia) -= gm;
  if (ob >= 0 && ib >= 0) g_.at(ob, ib) += gm;
}

void MnaSystem::add_entry(int row, int col, double v) {
  if (row < 0 || col < 0) return;
  g_.at(static_cast<std::size_t>(row), static_cast<std::size_t>(col)) += v;
}

void MnaSystem::add_rhs(int row, double v) {
  if (row < 0) return;
  b_[static_cast<std::size_t>(row)] += v;
}

}  // namespace obd::spice

// Modified nodal analysis (MNA) matrix/RHS accumulator.
//
// Unknown ordering: x[0 .. N-2] are voltages of nodes 1..N-1 (node 0 is
// ground and eliminated), followed by one unknown per device branch current
// (voltage sources need them). Devices stamp linearized (Norton companion)
// contributions each Newton-Raphson iteration.
//
// Sign conventions used by every stamp helper:
//  - add_current(a, b, i): a constant current `i` flows from node a to
//    node b *through the device* (it leaves a and enters b).
//  - add_conductance(a, b, g): a conductance between a and b.
// Ground (node 0) rows/columns are skipped automatically.
#pragma once

#include <cstddef>
#include <vector>

#include "spice/matrix.hpp"
#include "spice/types.hpp"

namespace obd::spice {

/// Accumulates the linearized MNA system G x = b for one NR iteration.
class MnaSystem {
 public:
  /// `num_nodes` includes ground; `num_branches` is the total branch count.
  MnaSystem(std::size_t num_nodes, std::size_t num_branches);

  /// Zeroes the matrix and RHS, keeping dimensions.
  void clear();

  std::size_t dimension() const { return dim_; }
  std::size_t num_nodes() const { return num_nodes_; }

  // --- Index mapping -------------------------------------------------------
  /// Unknown index of node voltage; -1 for ground.
  int node_index(NodeId n) const { return n == kGround ? -1 : n - 1; }
  /// Unknown index of a branch current.
  int branch_index(int branch) const {
    return static_cast<int>(num_nodes_) - 1 + branch;
  }

  // --- Stamp helpers -------------------------------------------------------
  /// Conductance g between nodes a and b.
  void add_conductance(NodeId a, NodeId b, double g);
  /// Conductance g from node a to ground (diagonal only).
  void add_gmin(NodeId a, double g);
  /// Constant current i flowing from a to b through the device.
  void add_current(NodeId a, NodeId b, double i);
  /// Transconductance: current from `out_a` to `out_b` controlled by
  /// v(in_a) - v(in_b) with gain gm. (MOSFET gm stamp.)
  void add_transconductance(NodeId out_a, NodeId out_b, NodeId in_a,
                            NodeId in_b, double gm);

  // --- Raw access (branch rows, unusual stamps) ----------------------------
  /// Raw matrix entry by *unknown index* (as returned by node_index /
  /// branch_index); negative indices are ignored.
  void add_entry(int row, int col, double v);
  /// Raw RHS entry by unknown index; negative ignored.
  void add_rhs(int row, double v);

  const DenseMatrix& matrix() const { return g_; }
  const std::vector<double>& rhs() const { return b_; }

  // --- Solution access -----------------------------------------------------
  /// Node voltage from a solution vector (0 for ground).
  static double voltage(const std::vector<double>& x, NodeId n) {
    return n == kGround ? 0.0 : x[static_cast<std::size_t>(n - 1)];
  }
  /// Branch current from a solution vector.
  double branch_current(const std::vector<double>& x, int branch) const {
    return x[static_cast<std::size_t>(branch_index(branch))];
  }

 private:
  std::size_t num_nodes_;
  std::size_t dim_;
  DenseMatrix g_;
  std::vector<double> b_;
};

}  // namespace obd::spice

// Level-1 (Shichman-Hodges) MOSFET.
//
// Evaluation strategy: map PMOS onto the NMOS equations by negating all
// terminal voltages (sign = -1), then exploit drain/source symmetry by
// swapping terminals so the effective Vds >= 0. The linearized current is
// stamped back in *real* node space, so the Jacobian entries need no sign
// gymnastics at the call sites.
#include <algorithm>
#include <cmath>

#include "spice/devices.hpp"

namespace obd::spice {

Mosfet::Operating Mosfet::evaluate(double vd, double vg, double vs) const {
  const double sign = p_.pmos ? -1.0 : 1.0;
  double td = sign * vd;
  double tg = sign * vg;
  double ts = sign * vs;
  bool swapped = false;
  if (td < ts) {
    std::swap(td, ts);
    swapped = true;
  }
  const double vgs = tg - ts;
  const double vds = td - ts;
  const double vgst = vgs - p_.vt0;

  double ids = 0.0;
  double gm = 0.0;
  double gds = 0.0;
  if (vgst > 0.0) {
    const double beta = p_.beta();
    const double clm = 1.0 + p_.lambda * vds;
    if (vds < vgst) {
      // Triode region.
      ids = beta * (vgst * vds - 0.5 * vds * vds) * clm;
      gm = beta * vds * clm;
      gds = beta * ((vgst - vds) * clm +
                    (vgst * vds - 0.5 * vds * vds) * p_.lambda);
    } else {
      // Saturation.
      ids = 0.5 * beta * vgst * vgst * clm;
      gm = beta * vgst * clm;
      gds = 0.5 * beta * vgst * vgst * p_.lambda;
    }
  }
  // Map back: current from (effective drain) to (effective source), then
  // undo the swap and the polarity mirror.
  double i_real = sign * ids;
  if (swapped) i_real = -i_real;
  return Operating{i_real, gm, gds};
}

void Mosfet::stamp(const StampContext& ctx) const {
  const double vd = MnaSystem::voltage(ctx.x, d_);
  const double vg = MnaSystem::voltage(ctx.x, g_);
  const double vs = MnaSystem::voltage(ctx.x, s_);

  // Recompute in the NMOS-equivalent frame to identify the conducting
  // orientation (which real terminal acts as drain right now).
  const double sign = p_.pmos ? -1.0 : 1.0;
  const bool swapped = (sign * vd) < (sign * vs);
  const NodeId na = swapped ? s_ : d_;  // Effective drain (real node).
  const NodeId nb = swapped ? d_ : s_;  // Effective source (real node).

  const Operating op = evaluate(vd, vg, vs);
  // Current J flows from na to nb. In the transformed frame
  // J = sign * Ids(vgs_t, vds_t) with vgs_t = sign*(vg - v(nb)),
  // vds_t = sign*(v(na) - v(nb)). Hence in real voltages:
  //   dJ/dvg    = gm,  dJ/dv(na) = gds,  dJ/dv(nb) = -(gm + gds).
  const double v_na = MnaSystem::voltage(ctx.x, na);
  const double v_nb = MnaSystem::voltage(ctx.x, nb);
  const double j0 = swapped ? -op.ids : op.ids;  // J along na->nb.
  const double jc = j0 - op.gds * (v_na - v_nb) - op.gm * (vg - v_nb);

  ctx.mna.add_conductance(na, nb, op.gds);
  ctx.mna.add_transconductance(na, nb, g_, nb, op.gm);
  ctx.mna.add_current(na, nb, jc);
  // Weak channel shunt keeps off devices from isolating nodes.
  ctx.mna.add_conductance(d_, s_, ctx.gmin);

  // Terminal capacitances.
  CapCompanion::stamp(ctx, g_, s_, p_.cgs, state_base() + 0);
  CapCompanion::stamp(ctx, g_, d_, p_.cgd, state_base() + 2);
  CapCompanion::stamp(ctx, d_, b_, p_.cdb, state_base() + 4);
  CapCompanion::stamp(ctx, s_, b_, p_.csb, state_base() + 6);
}

void Mosfet::update_state(const std::vector<double>& x, double dt,
                          Integrator integrator,
                          const std::vector<double>& old_state,
                          std::vector<double>* new_state) const {
  CapCompanion::update(x, dt, integrator, g_, s_, p_.cgs, old_state, new_state,
                       state_base() + 0);
  CapCompanion::update(x, dt, integrator, g_, d_, p_.cgd, old_state, new_state,
                       state_base() + 2);
  CapCompanion::update(x, dt, integrator, d_, b_, p_.cdb, old_state, new_state,
                       state_base() + 4);
  CapCompanion::update(x, dt, integrator, s_, b_, p_.csb, old_state, new_state,
                       state_base() + 6);
}

}  // namespace obd::spice

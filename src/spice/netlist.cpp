#include "spice/netlist.hpp"

namespace obd::spice {

Netlist::Netlist() {
  node_names_.push_back("0");
  node_ids_.emplace("0", kGround);
  node_ids_.emplace("gnd", kGround);
  node_ids_.emplace("GND", kGround);
}

NodeId Netlist::node(const std::string& name) {
  auto it = node_ids_.find(name);
  if (it != node_ids_.end()) return it->second;
  const NodeId id = static_cast<NodeId>(node_names_.size());
  node_names_.push_back(name);
  node_ids_.emplace(name, id);
  return id;
}

NodeId Netlist::find_node(const std::string& name) const {
  auto it = node_ids_.find(name);
  return it == node_ids_.end() ? kInvalidNode : it->second;
}

template <typename T, typename... Args>
T* Netlist::emplace_device(Args&&... args) {
  auto dev = std::make_unique<T>(std::forward<Args>(args)...);
  T* raw = dev.get();
  raw->set_branch_base(next_branch_);
  raw->set_state_base(next_state_);
  next_branch_ += raw->num_branches();
  next_state_ += raw->num_state();
  device_by_name_[raw->name()] = raw;
  devices_.push_back(std::move(dev));
  return raw;
}

Resistor* Netlist::add_resistor(const std::string& name, NodeId a, NodeId b,
                                double ohms) {
  return emplace_device<Resistor>(name, a, b, ohms);
}

Capacitor* Netlist::add_capacitor(const std::string& name, NodeId a, NodeId b,
                                  double farads) {
  return emplace_device<Capacitor>(name, a, b, farads);
}

Diode* Netlist::add_diode(const std::string& name, NodeId anode,
                          NodeId cathode, const DiodeParams& p) {
  return emplace_device<Diode>(name, anode, cathode, p);
}

Mosfet* Netlist::add_mosfet(const std::string& name, NodeId d, NodeId g,
                            NodeId s, NodeId b, const MosfetParams& p) {
  return emplace_device<Mosfet>(name, d, g, s, b, p);
}

VoltageSource* Netlist::add_vsource(const std::string& name, NodeId pos,
                                    NodeId neg, SourceWave wave) {
  return emplace_device<VoltageSource>(name, pos, neg, std::move(wave));
}

CurrentSource* Netlist::add_isource(const std::string& name, NodeId pos,
                                    NodeId neg, SourceWave wave) {
  return emplace_device<CurrentSource>(name, pos, neg, std::move(wave));
}

Device* Netlist::find_device(const std::string& name) const {
  auto it = device_by_name_.find(name);
  return it == device_by_name_.end() ? nullptr : it->second;
}

Mosfet* Netlist::find_mosfet(const std::string& name) const {
  return dynamic_cast<Mosfet*>(find_device(name));
}

VoltageSource* Netlist::find_vsource(const std::string& name) const {
  return dynamic_cast<VoltageSource*>(find_device(name));
}

void Netlist::stamp_all(const StampContext& ctx) const {
  for (const auto& dev : devices_) dev->stamp(ctx);
}

void Netlist::update_all_states(const std::vector<double>& x, double dt,
                                Integrator integrator,
                                const std::vector<double>& old_state,
                                std::vector<double>* new_state) const {
  for (const auto& dev : devices_)
    dev->update_state(x, dt, integrator, old_state, new_state);
}

}  // namespace obd::spice

// Netlist: named nodes plus an owning collection of devices.
//
// The netlist is a plain data structure; analyses (DC, transient) take a
// const reference and keep all mutable solver state outside of it. Fault
// injection (obd::core) works by *adding* devices (the diode-resistor OBD
// network) and retuning their parameters between runs.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "spice/devices.hpp"

namespace obd::spice {

class Netlist {
 public:
  Netlist();

  // --- Nodes ---------------------------------------------------------------
  /// Returns the node with the given name, creating it on first use.
  /// Names "0", "gnd" and "GND" all alias ground.
  NodeId node(const std::string& name);
  /// Looks up an existing node; kInvalidNode when absent.
  NodeId find_node(const std::string& name) const;
  /// Name of a node id.
  const std::string& node_name(NodeId n) const { return node_names_[static_cast<std::size_t>(n)]; }
  /// Total node count including ground.
  std::size_t num_nodes() const { return node_names_.size(); }

  // --- Devices -------------------------------------------------------------
  Resistor* add_resistor(const std::string& name, NodeId a, NodeId b,
                         double ohms);
  Capacitor* add_capacitor(const std::string& name, NodeId a, NodeId b,
                           double farads);
  Diode* add_diode(const std::string& name, NodeId anode, NodeId cathode,
                   const DiodeParams& p);
  Mosfet* add_mosfet(const std::string& name, NodeId d, NodeId g, NodeId s,
                     NodeId b, const MosfetParams& p);
  VoltageSource* add_vsource(const std::string& name, NodeId pos, NodeId neg,
                             SourceWave wave);
  CurrentSource* add_isource(const std::string& name, NodeId pos, NodeId neg,
                             SourceWave wave);

  const std::vector<std::unique_ptr<Device>>& devices() const {
    return devices_;
  }

  /// Finds a device by name (nullptr when absent).
  Device* find_device(const std::string& name) const;
  /// Finds a MOSFET by name (nullptr when absent or not a MOSFET).
  Mosfet* find_mosfet(const std::string& name) const;
  /// Finds a voltage source by name (nullptr when absent / wrong type).
  VoltageSource* find_vsource(const std::string& name) const;

  std::size_t num_branches() const { return static_cast<std::size_t>(next_branch_); }
  std::size_t state_size() const { return static_cast<std::size_t>(next_state_); }

  // --- Analysis support ----------------------------------------------------
  /// Total MNA unknowns (nodes - 1 + branches).
  std::size_t unknown_count() const {
    return num_nodes() - 1 + num_branches();
  }
  /// Stamps every device into ctx.mna.
  void stamp_all(const StampContext& ctx) const;
  /// Runs update_state on every device.
  void update_all_states(const std::vector<double>& x, double dt,
                         Integrator integrator,
                         const std::vector<double>& old_state,
                         std::vector<double>* new_state) const;

 private:
  template <typename T, typename... Args>
  T* emplace_device(Args&&... args);

  std::vector<std::string> node_names_;
  std::unordered_map<std::string, NodeId> node_ids_;
  std::vector<std::unique_ptr<Device>> devices_;
  std::unordered_map<std::string, Device*> device_by_name_;
  int next_branch_ = 0;
  int next_state_ = 0;
};

}  // namespace obd::spice

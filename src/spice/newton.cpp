#include "spice/newton.hpp"

#include <algorithm>
#include <cmath>

#include "spice/matrix.hpp"

namespace obd::spice {

NewtonResult solve_newton(const Netlist& netlist, const EvalPoint& eval,
                          const std::vector<double>& state,
                          const SolverOptions& opt, std::vector<double>* x) {
  const std::size_t n_nodes = netlist.num_nodes();
  const std::size_t n_volt = n_nodes - 1;
  const std::size_t dim = netlist.unknown_count();
  x->resize(dim, 0.0);

  MnaSystem mna(n_nodes, netlist.num_branches());
  LuSolver lu;
  std::vector<double> x_new(dim);

  NewtonResult result;
  for (int iter = 0; iter < opt.max_iterations; ++iter) {
    result.iterations = iter + 1;
    mna.clear();
    StampContext ctx{*x,       state,          mna,
                     eval.time, eval.dt,        eval.integrator,
                     opt.gmin,  eval.source_scale};
    netlist.stamp_all(ctx);
    // Global node-to-ground shunt: solver gmin plus any stepping extra.
    const double shunt = opt.gmin + eval.gmin_extra;
    for (std::size_t n = 1; n < n_nodes; ++n)
      mna.add_gmin(static_cast<NodeId>(n), shunt);

    if (!lu.factor(mna.matrix())) {
      result.status = SolveStatus::kSingularMatrix;
      return result;
    }
    lu.solve(mna.rhs(), &x_new);

    // Damped update with voltage step clamp; convergence on max delta.
    bool converged = true;
    for (std::size_t i = 0; i < dim; ++i) {
      double delta = x_new[i] - (*x)[i];
      const bool is_voltage = i < n_volt;
      if (is_voltage) {
        delta = std::clamp(delta, -opt.max_voltage_step, opt.max_voltage_step);
      }
      const double tol = is_voltage
                             ? opt.abstol_v + opt.reltol * std::fabs((*x)[i])
                             : opt.abstol_i + opt.reltol * std::fabs((*x)[i]);
      if (std::fabs(delta) > tol) converged = false;
      (*x)[i] += delta;
      if (!std::isfinite((*x)[i])) {
        result.status = SolveStatus::kNoConvergence;
        return result;
      }
    }
    if (converged) {
      result.status = SolveStatus::kOk;
      return result;
    }
  }
  result.status = SolveStatus::kNoConvergence;
  return result;
}

}  // namespace obd::spice

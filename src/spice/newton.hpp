// Newton-Raphson nonlinear solve of one operating point.
//
// The solver re-stamps the full linearized MNA system every iteration,
// factors it with dense LU, applies a damped update (per-unknown voltage
// step clamp), and declares convergence when both the update and the KCL
// residual drop below tolerance.
#pragma once

#include <vector>

#include "spice/netlist.hpp"

namespace obd::spice {

/// Fixed evaluation parameters for one NR solve (time, step, integrator).
struct EvalPoint {
  double time = 0.0;
  double dt = 0.0;  ///< 0 selects DC behaviour in dynamic devices.
  Integrator integrator = Integrator::kTrapezoidal;
  double gmin_extra = 0.0;   ///< Additional node-to-ground shunt (gmin stepping).
  double source_scale = 1.0; ///< Source stepping scale.
};

struct NewtonResult {
  SolveStatus status = SolveStatus::kNoConvergence;
  int iterations = 0;
};

/// Solves the nonlinear system at one evaluation point.
/// `x` carries the initial guess in and the solution out; `state` is the
/// device integration state at the previous accepted timepoint.
NewtonResult solve_newton(const Netlist& netlist, const EvalPoint& eval,
                          const std::vector<double>& state,
                          const SolverOptions& opt, std::vector<double>* x);

}  // namespace obd::spice

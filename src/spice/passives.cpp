// Resistor and capacitor stamps.
#include "spice/devices.hpp"

namespace obd::spice {

void Resistor::stamp(const StampContext& ctx) const {
  // Guard against zero/negative resistance: clamp to 1 micro-ohm, which is
  // far below anything the OBD model uses (HBD resistance is 0.05 ohm).
  const double r = ohms_ > 1e-6 ? ohms_ : 1e-6;
  ctx.mna.add_conductance(a_, b_, 1.0 / r);
}

void Capacitor::stamp(const StampContext& ctx) const {
  CapCompanion::stamp(ctx, a_, b_, farads_, state_base());
}

void Capacitor::update_state(const std::vector<double>& x, double dt,
                             Integrator integrator,
                             const std::vector<double>& old_state,
                             std::vector<double>* new_state) const {
  CapCompanion::update(x, dt, integrator, a_, b_, farads_, old_state,
                       new_state, state_base());
}

}  // namespace obd::spice

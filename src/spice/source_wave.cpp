#include <algorithm>
#include <cmath>

#include "spice/devices.hpp"

namespace obd::spice {

double SourceWave::value(double t) const {
  switch (kind) {
    case Kind::kDc:
      return dc;
    case Kind::kPulse: {
      if (t < td) return v1;
      double tt = t - td;
      if (period > 0.0) tt = std::fmod(tt, period);
      if (tt < tr) return v1 + (v2 - v1) * (tt / tr);
      tt -= tr;
      if (tt < pw) return v2;
      tt -= pw;
      if (tt < tf) return v2 + (v1 - v2) * (tt / tf);
      return v1;
    }
    case Kind::kPwl: {
      if (pwl.empty()) return 0.0;
      if (t <= pwl.front().first) return pwl.front().second;
      if (t >= pwl.back().first) return pwl.back().second;
      for (std::size_t i = 1; i < pwl.size(); ++i) {
        if (t <= pwl[i].first) {
          const double t0 = pwl[i - 1].first;
          const double t1 = pwl[i].first;
          const double y0 = pwl[i - 1].second;
          const double y1 = pwl[i].second;
          if (t1 <= t0) return y1;
          return y0 + (y1 - y0) * (t - t0) / (t1 - t0);
        }
      }
      return pwl.back().second;
    }
  }
  return 0.0;
}

SourceWave SourceWave::make_dc(double v) {
  SourceWave w;
  w.kind = Kind::kDc;
  w.dc = v;
  return w;
}

SourceWave SourceWave::make_pulse(double v1, double v2, double td, double tr,
                                  double tf, double pw, double period) {
  SourceWave w;
  w.kind = Kind::kPulse;
  w.v1 = v1;
  w.v2 = v2;
  w.td = td;
  w.tr = tr;
  w.tf = tf;
  w.pw = pw;
  w.period = period;
  return w;
}

SourceWave SourceWave::make_pwl(std::vector<std::pair<double, double>> pts) {
  SourceWave w;
  w.kind = Kind::kPwl;
  w.pwl = std::move(pts);
  std::sort(w.pwl.begin(), w.pwl.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return w;
}

}  // namespace obd::spice

// Independent source stamps.
#include "spice/devices.hpp"

namespace obd::spice {

void VoltageSource::stamp(const StampContext& ctx) const {
  const int ib = ctx.mna.branch_index(branch_base());
  const int ip = ctx.mna.node_index(pos_);
  const int in = ctx.mna.node_index(neg_);
  // KCL rows: branch current leaves pos, enters neg.
  ctx.mna.add_entry(ip, ib, 1.0);
  ctx.mna.add_entry(in, ib, -1.0);
  // Branch row: v(pos) - v(neg) = V(t).
  ctx.mna.add_entry(ib, ip, 1.0);
  ctx.mna.add_entry(ib, in, -1.0);
  ctx.mna.add_rhs(ib, wave_.value(ctx.time) * ctx.source_scale);
}

void CurrentSource::stamp(const StampContext& ctx) const {
  ctx.mna.add_current(pos_, neg_, wave_.value(ctx.time) * ctx.source_scale);
}

}  // namespace obd::spice

// Umbrella header for the analog engine.
//
// Typical use:
//   obd::spice::Netlist nl;
//   auto vdd = nl.node("vdd");
//   nl.add_vsource("Vdd", vdd, obd::spice::kGround,
//                  obd::spice::SourceWave::make_dc(3.3));
//   ... add devices ...
//   auto res = obd::spice::transient(nl, 10e-9, {});
#pragma once

#include "spice/dc.hpp"         // IWYU pragma: export
#include "spice/devices.hpp"    // IWYU pragma: export
#include "spice/netlist.hpp"    // IWYU pragma: export
#include "spice/transient.hpp"  // IWYU pragma: export
#include "spice/types.hpp"      // IWYU pragma: export

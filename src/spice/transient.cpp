#include "spice/transient.hpp"

#include <algorithm>
#include <cmath>

#include "spice/newton.hpp"

namespace obd::spice {
namespace {

struct Recorder {
  std::vector<NodeId> nodes;
  std::vector<int> source_branches;
  util::TraceSet* traces;
  const MnaSystem* mna;

  void record(double t, const std::vector<double>& x) const {
    std::size_t k = 0;
    for (NodeId n : nodes)
      traces->traces[k++].append(t, MnaSystem::voltage(x, n));
    for (int b : source_branches)
      traces->traces[k++].append(t, mna->branch_current(x, b));
  }
};

}  // namespace

TransientResult transient(const Netlist& netlist, double t_stop,
                          const TransientOptions& opt,
                          const std::vector<std::string>& record_nodes,
                          const std::vector<std::string>& record_source_currents) {
  TransientResult result;

  // --- Set up recording ----------------------------------------------------
  Recorder rec;
  rec.traces = &result.traces;
  if (record_nodes.empty()) {
    for (std::size_t n = 1; n < netlist.num_nodes(); ++n) {
      rec.nodes.push_back(static_cast<NodeId>(n));
      result.traces.traces.emplace_back(netlist.node_name(static_cast<NodeId>(n)));
    }
  } else {
    for (const auto& name : record_nodes) {
      const NodeId n = netlist.find_node(name);
      if (n == kInvalidNode) continue;
      rec.nodes.push_back(n);
      result.traces.traces.emplace_back(name);
    }
  }
  for (const auto& name : record_source_currents) {
    const VoltageSource* src = netlist.find_vsource(name);
    if (src == nullptr) continue;
    rec.source_branches.push_back(src->branch_base());
    result.traces.traces.emplace_back("I(" + name + ")");
  }
  // A throwaway MNA gives the branch index mapping for current readout.
  MnaSystem index_mna(netlist.num_nodes(), netlist.num_branches());
  rec.mna = &index_mna;

  // --- Initial condition ---------------------------------------------------
  std::vector<double> state(netlist.state_size(), 0.0);
  std::vector<double> state_new(netlist.state_size(), 0.0);
  std::vector<double> x(netlist.unknown_count(), 0.0);

  if (opt.dc_init) {
    DcResult op = dc_operating_point(netlist, opt.solver, 0.0);
    if (op.status != SolveStatus::kOk) {
      result.status = op.status;
      return result;
    }
    x = std::move(op.x);
  }
  // Initialize device state consistent with the (static) starting solution.
  netlist.update_all_states(x, 0.0, opt.integrator, state, &state_new);
  std::swap(state, state_new);
  if (opt.record) rec.record(0.0, x);

  // --- Time march ----------------------------------------------------------
  double t = 0.0;
  double dt = opt.dt;
  int consecutive_easy = 0;
  // The first step always uses backward Euler: the trapezoidal companion
  // needs a consistent previous capacitor current, which is unknown at a
  // (possibly discontinuous) start. This is the classic SPICE startup rule.
  bool first_step = true;

  while (t < t_stop - 1e-21) {
    dt = std::min(dt, t_stop - t);
    const Integrator step_integrator =
        first_step ? Integrator::kBackwardEuler : opt.integrator;
    EvalPoint eval;
    eval.time = t + dt;
    eval.dt = dt;
    eval.integrator = step_integrator;

    std::vector<double> x_try = x;  // Previous solution as predictor.
    const NewtonResult nr =
        solve_newton(netlist, eval, state, opt.solver, &x_try);
    result.newton_iterations += nr.iterations;

    if (nr.status != SolveStatus::kOk) {
      ++result.rejected_steps;
      if (!opt.adaptive || dt <= opt.dt_min * 1.01) {
        result.status = nr.status;
        return result;
      }
      dt = std::max(dt * 0.5, opt.dt_min);
      consecutive_easy = 0;
      continue;
    }

    // Accept the step.
    t += dt;
    x = std::move(x_try);
    netlist.update_all_states(x, dt, step_integrator, state, &state_new);
    std::swap(state, state_new);
    first_step = false;
    ++result.accepted_steps;
    if (opt.record) rec.record(t, x);

    // Step-size recovery: after several cheap steps, grow toward opt.dt.
    if (opt.adaptive) {
      if (nr.iterations <= 8) {
        if (++consecutive_easy >= 4 && dt < opt.dt) {
          dt = std::min(dt * 2.0, opt.dt);
          consecutive_easy = 0;
        }
      } else {
        consecutive_easy = 0;
      }
    }
  }

  result.status = SolveStatus::kOk;
  return result;
}

}  // namespace obd::spice

// Transient analysis: fixed or adaptive timestep, BE or trapezoidal.
#pragma once

#include <string>
#include <vector>

#include "spice/dc.hpp"
#include "spice/netlist.hpp"
#include "util/waveform.hpp"

namespace obd::spice {

struct TransientResult {
  SolveStatus status = SolveStatus::kNoConvergence;
  /// Node-voltage traces (one per recorded node) plus one current trace per
  /// recorded voltage source, named "I(<source>)".
  util::TraceSet traces;
  int accepted_steps = 0;
  int rejected_steps = 0;
  long newton_iterations = 0;

  const util::Waveform* trace(const std::string& name) const {
    return traces.find(name);
  }
};

/// Runs a transient analysis to t_stop.
///
/// `record_nodes`: node names to record (empty = all non-ground nodes).
/// `record_source_currents`: voltage-source names whose branch current is
/// recorded (supply-current / IDDQ-style observations).
TransientResult transient(const Netlist& netlist, double t_stop,
                          const TransientOptions& opt,
                          const std::vector<std::string>& record_nodes = {},
                          const std::vector<std::string>& record_source_currents = {});

}  // namespace obd::spice

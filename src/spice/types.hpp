// Common identifiers and option structs for the analog engine.
//
// obd::spice is a compact SPICE-class simulator: modified nodal analysis
// (MNA) over nonlinear devices, Newton-Raphson per operating point, and
// backward-Euler / trapezoidal companion models for transient analysis.
// It exists because the paper's experiments are HSPICE runs; this module is
// the in-tree substitute (see DESIGN.md, substitution table).
#pragma once

#include <cstdint>
#include <limits>
#include <string>

namespace obd::spice {

/// Index of a circuit node. Node 0 is always ground.
using NodeId = std::int32_t;
inline constexpr NodeId kGround = 0;
inline constexpr NodeId kInvalidNode = -1;

/// Index of a device within its netlist.
using DeviceId = std::int32_t;

/// Numerical integration method for dynamic elements.
enum class Integrator {
  kBackwardEuler,  ///< A-stable, first order, strongly damped.
  kTrapezoidal,    ///< A-stable, second order; default.
};

/// Newton-Raphson and convergence options.
struct SolverOptions {
  /// Absolute voltage tolerance [V].
  double abstol_v = 1e-6;
  /// Relative tolerance on voltages.
  double reltol = 1e-4;
  /// Absolute current tolerance for branch currents [A].
  double abstol_i = 1e-9;
  /// Maximum NR iterations per solve.
  int max_iterations = 200;
  /// Per-iteration clamp on voltage update [V]; damps NR overshoot across
  /// exponential diode characteristics.
  double max_voltage_step = 0.5;
  /// Minimum conductance from every node to ground; aids convergence and
  /// keeps the MNA matrix nonsingular for floating nodes.
  double gmin = 1e-12;
  /// Enable gmin stepping when the plain solve fails (DC only).
  bool gmin_stepping = true;
  /// Enable source stepping as the final fallback (DC only).
  bool source_stepping = true;
};

/// Transient analysis options.
struct TransientOptions {
  SolverOptions solver;
  Integrator integrator = Integrator::kTrapezoidal;
  /// Nominal timestep [s]. With adaptive stepping this is also the maximum.
  double dt = 1e-12;
  /// Adaptive step control: on NR failure the step is halved (down to
  /// dt_min); after repeated easy convergence it grows back toward dt.
  bool adaptive = true;
  double dt_min = 1e-16;
  /// Record every accepted point into the result traces.
  bool record = true;
  /// Start from a DC operating point at t=0 (otherwise start from all-zero).
  bool dc_init = true;
};

/// Result status of an analysis.
enum class SolveStatus {
  kOk,
  kNoConvergence,
  kSingularMatrix,
};

/// Human-readable status string.
inline const char* to_string(SolveStatus s) {
  switch (s) {
    case SolveStatus::kOk: return "ok";
    case SolveStatus::kNoConvergence: return "no-convergence";
    case SolveStatus::kSingularMatrix: return "singular-matrix";
  }
  return "unknown";
}

}  // namespace obd::spice

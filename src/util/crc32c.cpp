#include "util/crc32c.hpp"

#include <array>

namespace obd::util {
namespace {

/// 256-entry table for the reflected Castagnoli polynomial, built once at
/// static-init time (constexpr, so it lands in .rodata).
constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k)
      c = (c & 1u) ? (0x82F63B78u ^ (c >> 1)) : (c >> 1);
    t[i] = c;
  }
  return t;
}

constexpr std::array<std::uint32_t, 256> kTable = make_table();

}  // namespace

void Crc32c::update(const void* data, std::size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = state_;
  for (std::size_t i = 0; i < len; ++i)
    c = kTable[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  state_ = c;
}

std::uint32_t crc32c(const void* data, std::size_t len) {
  Crc32c c;
  c.update(data, len);
  return c.value();
}

}  // namespace obd::util

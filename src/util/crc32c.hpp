// CRC-32C (Castagnoli, polynomial 0x1EDC6F41, reflected 0x82F63B78): the
// checksum used by iSCSI, ext4, and btrfs — chosen here for its published
// known-answer vectors and its guaranteed detection of every single-bit and
// single-byte error, which is exactly the integrity class the campaign
// checkpoint format promises to reject.
//
// Software table implementation (one 256-entry table, byte at a time). The
// incremental Crc32c class lets framing code checksum a header and a
// streamed payload without concatenating them; the one-shot crc32c()
// wrapper covers the common whole-buffer case. Both produce the standard
// reflected CRC with init/final-xor 0xFFFFFFFF: crc32c("123456789") ==
// 0xE3069283.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace obd::util {

/// Incremental CRC-32C accumulator.
class Crc32c {
 public:
  void update(const void* data, std::size_t len);
  void update(std::string_view s) { update(s.data(), s.size()); }
  /// CRC of everything fed so far (final xor applied; the accumulator can
  /// keep absorbing afterwards).
  std::uint32_t value() const { return state_ ^ 0xFFFFFFFFu; }
  void reset() { state_ = 0xFFFFFFFFu; }

 private:
  std::uint32_t state_ = 0xFFFFFFFFu;
};

/// One-shot CRC-32C of a buffer.
std::uint32_t crc32c(const void* data, std::size_t len);
inline std::uint32_t crc32c(std::string_view s) {
  return crc32c(s.data(), s.size());
}

}  // namespace obd::util

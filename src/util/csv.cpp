#include "util/csv.hpp"

#include <cstdio>
#include <fstream>

namespace obd::util {
namespace {

bool needs_quoting(const std::string& s) {
  return s.find_first_of(",\"\n\r") != std::string::npos;
}

std::string escape(const std::string& s) {
  if (!needs_quoting(s)) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

std::string format_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

}  // namespace

void CsvWriter::set_header(std::vector<std::string> columns) {
  header_ = std::move(columns);
}

void CsvWriter::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void CsvWriter::add_row(const std::vector<double>& cells) {
  std::vector<std::string> row;
  row.reserve(cells.size());
  for (double v : cells) row.push_back(format_double(v));
  rows_.push_back(std::move(row));
}

std::string CsvWriter::to_string() const {
  std::string out;
  auto emit_row = [&out](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) out += ',';
      out += escape(row[i]);
    }
    out += '\n';
  };
  if (!header_.empty()) emit_row(header_);
  for (const auto& row : rows_) emit_row(row);
  return out;
}

bool CsvWriter::write_file(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  f << to_string();
  return static_cast<bool>(f);
}

bool write_traces_csv(const std::string& path,
                      const std::vector<const Waveform*>& traces,
                      std::size_t samples) {
  if (traces.empty()) return false;
  CsvWriter csv;
  std::vector<std::string> header{"time"};
  for (const auto* w : traces) header.push_back(w->name());
  csv.set_header(std::move(header));

  double t0 = traces.front()->front_time();
  double t1 = traces.front()->back_time();
  for (const auto* w : traces) {
    if (w->empty()) return false;
    t0 = std::min(t0, w->front_time());
    t1 = std::max(t1, w->back_time());
  }
  for (std::size_t i = 0; i < samples; ++i) {
    const double t =
        t0 + (t1 - t0) * static_cast<double>(i) / static_cast<double>(samples - 1);
    std::vector<double> row{t};
    for (const auto* w : traces) row.push_back(w->at(t));
    csv.add_row(row);
  }
  return csv.write_file(path);
}

}  // namespace obd::util

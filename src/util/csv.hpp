// Minimal CSV writer used by benches to dump figure data series
// (one file per paper figure, plottable with any external tool).
#pragma once

#include <string>
#include <vector>

#include "util/waveform.hpp"

namespace obd::util {

/// Accumulates rows and writes an RFC-4180-ish CSV file.
/// Values containing commas/quotes/newlines are quoted and escaped.
class CsvWriter {
 public:
  /// Sets the header row.
  void set_header(std::vector<std::string> columns);

  /// Appends a row of preformatted cells.
  void add_row(std::vector<std::string> cells);

  /// Appends a row of doubles formatted with %.9g.
  void add_row(const std::vector<double>& cells);

  /// Serializes to a CSV string.
  std::string to_string() const;

  /// Writes to a file; returns false on I/O error.
  bool write_file(const std::string& path) const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Writes a set of waveforms resampled onto a common uniform grid as CSV
/// with columns: time, <name0>, <name1>, ... Returns false on I/O error or
/// when `traces` is empty.
bool write_traces_csv(const std::string& path,
                      const std::vector<const Waveform*>& traces,
                      std::size_t samples = 400);

}  // namespace obd::util

#include "util/io.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#define OBD_POSIX_IO 1
#endif

namespace obd::util {
namespace {

std::string errno_string(const char* what, const std::string& path) {
  return std::string(what) + " " + path + ": " + std::strerror(errno);
}

#ifdef OBD_POSIX_IO

/// write(2) until done or error; short writes are retried.
bool write_all(int fd, const char* p, std::size_t n) {
  while (n > 0) {
    const ssize_t w = ::write(fd, p, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

#endif  // OBD_POSIX_IO

}  // namespace

bool write_file_atomic(const std::string& path, std::string_view data,
                       std::string* err, const AtomicWriteHooks* hooks) {
  const std::string tmp = path + ".tmp";
#ifdef OBD_POSIX_IO
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    if (err) *err = errno_string("cannot create", tmp);
    return false;
  }
  // Two-chunk write so the mid-write crash hook fires with a genuinely torn
  // temp file on disk. Hook exceptions propagate with the fd closed and the
  // torn temp left in place — exactly the post-crash state.
  const std::size_t half = hooks && hooks->mid_write ? data.size() / 2 : 0;
  bool io_ok = write_all(fd, data.data(), half ? half : data.size());
  if (io_ok && half) {
    try {
      hooks->mid_write(half, data.size());
    } catch (...) {
      ::close(fd);
      throw;
    }
    io_ok = write_all(fd, data.data() + half, data.size() - half);
  }
  if (io_ok && ::fsync(fd) != 0) io_ok = false;
  if (::close(fd) != 0) io_ok = false;
  if (!io_ok) {
    if (err) *err = errno_string("cannot write", tmp);
    ::unlink(tmp.c_str());
    return false;
  }
  if (hooks && hooks->before_rename) hooks->before_rename();
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    if (err) *err = errno_string("cannot rename", tmp);
    ::unlink(tmp.c_str());
    return false;
  }
  return true;
#else
  // Non-POSIX fallback: still temp + rename, without the fsync durability.
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (!f) {
    if (err) *err = errno_string("cannot create", tmp);
    return false;
  }
  const bool wrote =
      std::fwrite(data.data(), 1, data.size(), f) == data.size();
  const bool closed = std::fclose(f) == 0;
  if (!wrote || !closed) {
    if (err) *err = errno_string("cannot write", tmp);
    std::remove(tmp.c_str());
    return false;
  }
  if (hooks && hooks->before_rename) hooks->before_rename();
  std::remove(path.c_str());
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    if (err) *err = errno_string("cannot rename", tmp);
    std::remove(tmp.c_str());
    return false;
  }
  return true;
#endif
}

bool read_file(const std::string& path, std::string* out, std::string* err) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) {
    if (err) *err = errno_string("cannot open", path);
    return false;
  }
  out->clear();
  char buf[1 << 16];
  for (;;) {
    const std::size_t n = std::fread(buf, 1, sizeof buf, f);
    out->append(buf, n);
    if (n < sizeof buf) break;
  }
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  if (!ok && err) *err = errno_string("cannot read", path);
  return ok;
}

}  // namespace obd::util

// Durable file I/O for campaign state.
//
// write_file_atomic is the one primitive every persistent artifact in the
// flow layer (campaign JSON reports, shard checkpoints) goes through: the
// data is written to `<path>.tmp`, flushed to the device (fsync), and then
// renamed over the target — so a reader never observes a torn file, and a
// crash at any instant leaves either the old file, the new file, or an
// ignorable `.tmp` orphan (which the next successful write truncates and
// replaces).
//
// AtomicWriteHooks exist for the fault-injection harness: they are called
// at the two interesting crash points (mid-write and before-rename) so
// tests can abort the process there and prove the recovery paths. Hooks may
// throw or _Exit; on a thrown hook the temp file is deliberately left
// behind, torn, exactly as a real crash would leave it.
#pragma once

#include <functional>
#include <string>
#include <string_view>

namespace obd::util {

struct AtomicWriteHooks {
  /// Called once after roughly half the payload has reached the temp file.
  std::function<void(std::size_t written, std::size_t total)> mid_write;
  /// Called after fsync + close, immediately before the rename commits.
  std::function<void()> before_rename;
};

/// Atomically replaces `path` with `data` (temp + fsync + rename). Returns
/// false with a diagnostic in *err on I/O failure (the temp file is removed
/// in that case). Crash-point hooks are for fault-injection tests only.
bool write_file_atomic(const std::string& path, std::string_view data,
                       std::string* err,
                       const AtomicWriteHooks* hooks = nullptr);

/// Reads a whole file. Returns false with a diagnostic on failure.
bool read_file(const std::string& path, std::string* out, std::string* err);

}  // namespace obd::util

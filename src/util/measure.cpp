#include "util/measure.hpp"

namespace obd::util {

std::optional<double> edge_time(const Waveform& w, Edge edge, double t_from,
                                const DelayOptions& opt) {
  const double level = opt.vdd * opt.threshold_frac;
  double t = 0.0;
  if (w.first_crossing_after(t_from, level, edge == Edge::kRising, &t))
    return t;
  return std::nullopt;
}

std::optional<double> propagation_delay(const Waveform& in, Edge in_edge,
                                        const Waveform& out, Edge out_edge,
                                        double t_from,
                                        const DelayOptions& opt) {
  const auto t_in = edge_time(in, in_edge, t_from, opt);
  if (!t_in) return std::nullopt;
  const auto t_out = edge_time(out, out_edge, *t_in, opt);
  if (!t_out) return std::nullopt;
  return *t_out - *t_in;
}

double settled_value(const Waveform& w, double t_settle_from) {
  if (w.empty()) return 0.0;
  // Average of samples from t_settle_from to the end damps residual ringing.
  double sum = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < w.size(); ++i) {
    if (w.time(i) >= t_settle_from) {
      sum += w.value(i);
      ++n;
    }
  }
  if (n == 0) return w.final_value();
  return sum / static_cast<double>(n);
}

std::optional<double> slew_time(const Waveform& w, Edge edge, double t_from,
                                const DelayOptions& opt) {
  const double lo = 0.1 * opt.vdd;
  const double hi = 0.9 * opt.vdd;
  double t_lo = 0.0;
  double t_hi = 0.0;
  if (edge == Edge::kRising) {
    if (!w.first_crossing_after(t_from, lo, true, &t_lo)) return std::nullopt;
    if (!w.first_crossing_after(t_lo, hi, true, &t_hi)) return std::nullopt;
    return t_hi - t_lo;
  }
  if (!w.first_crossing_after(t_from, hi, false, &t_hi)) return std::nullopt;
  if (!w.first_crossing_after(t_hi, lo, false, &t_lo)) return std::nullopt;
  return t_lo - t_hi;
}

double swing(const Waveform& w) { return w.max_value() - w.min_value(); }

}  // namespace obd::util

// Measurement utilities over waveforms: propagation delay, logic levels,
// output swing, slew — the quantities the paper's Table 1 and Figs. 4/6/7/9
// are built from.
#pragma once

#include <optional>

#include "util/waveform.hpp"

namespace obd::util {

/// Direction of a logic transition.
enum class Edge { kRising, kFalling };

/// Options for delay measurement.
struct DelayOptions {
  /// Supply voltage; thresholds default to fractions of this.
  double vdd = 3.3;
  /// Measurement threshold as a fraction of vdd (50% by convention).
  double threshold_frac = 0.5;
};

/// Propagation delay from the `in` edge (crossing threshold in direction
/// `in_edge` at or after t_from) to the next `out` edge crossing in
/// direction `out_edge`. Returns nullopt when either crossing is absent —
/// which is itself meaningful: a missing output crossing is how a
/// progressed OBD defect manifests as stuck-at behaviour.
std::optional<double> propagation_delay(const Waveform& in, Edge in_edge,
                                        const Waveform& out, Edge out_edge,
                                        double t_from,
                                        const DelayOptions& opt = {});

/// Time at which `w` crosses the threshold in the given direction at or
/// after t_from; nullopt if it never does.
std::optional<double> edge_time(const Waveform& w, Edge edge, double t_from,
                                const DelayOptions& opt = {});

/// Static LOW level: the waveform value at the end of the settling window
/// [t_settle_from, end]. Used for VOL extraction in VTC-style experiments.
double settled_value(const Waveform& w, double t_settle_from);

/// 10%-90% (or mirrored) transition time of the first edge after t_from.
std::optional<double> slew_time(const Waveform& w, Edge edge, double t_from,
                                const DelayOptions& opt = {});

/// Output swing observed over the whole waveform (max - min).
double swing(const Waveform& w);

}  // namespace obd::util

// Small deterministic PRNG (xoshiro256**) for reproducible tests/benches.
//
// We deliberately avoid std::mt19937 in library code so that random test
// patterns and randomized property tests produce identical sequences across
// standard-library implementations.
#pragma once

#include <array>
#include <cstdint>

namespace obd::util {

/// xoshiro256** by Blackman & Vigna (public domain reference algorithm).
/// Deterministic across platforms; not cryptographic.
class Prng {
 public:
  /// Seeds the generator. The same seed always yields the same sequence.
  explicit Prng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) {
    // SplitMix64 expansion of the seed into the 4-word state.
    std::uint64_t x = seed;
    for (auto& w : state_) {
      x += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      w = z ^ (z >> 31);
    }
  }

  /// Next raw 64-bit value.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) {
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = (0ull - bound) % bound;
    for (;;) {
      const std::uint64_t r = next_u64();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double next_double(double lo, double hi) {
    return lo + (hi - lo) * next_double();
  }

  /// Fair coin.
  bool next_bool() { return (next_u64() & 1ull) != 0; }

  /// Raw 4-word xoshiro state, for checkpointing a generator mid-stream.
  /// set_state(state()) resumes the exact sequence.
  std::array<std::uint64_t, 4> state() const {
    return {state_[0], state_[1], state_[2], state_[3]};
  }
  void set_state(const std::array<std::uint64_t, 4>& s) {
    for (int i = 0; i < 4; ++i) state_[i] = s[i];
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4] = {};
};

}  // namespace obd::util

#include "util/strings.hpp"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace obd::util {

std::vector<std::string> split_ws(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    std::size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string str_format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<std::size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace obd::util

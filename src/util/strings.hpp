// Small string helpers shared by the netlist parser and reporting code.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace obd::util {

/// Splits on any run of whitespace; no empty tokens.
std::vector<std::string> split_ws(std::string_view s);

/// Splits on a single-character delimiter; keeps empty fields.
std::vector<std::string> split(std::string_view s, char delim);

/// Trims ASCII whitespace from both ends.
std::string_view trim(std::string_view s);

/// True if `s` starts with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

/// printf-style formatting into a std::string.
std::string str_format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace obd::util

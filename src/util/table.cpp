#include "util/table.hpp"

#include <cmath>
#include <cstdio>

namespace obd::util {

void AsciiTable::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void AsciiTable::add_row(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string AsciiTable::to_string() const {
  // Compute column widths over header + rows.
  std::vector<std::size_t> widths;
  auto grow = [&widths](const std::vector<std::string>& row) {
    if (widths.size() < row.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i)
      widths[i] = std::max(widths[i], row[i].size());
  };
  grow(header_);
  for (const auto& r : rows_) grow(r);

  auto emit_row = [&widths](std::string& out, const std::vector<std::string>& row) {
    out += "| ";
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string{};
      out += cell;
      out.append(widths[i] - cell.size(), ' ');
      out += (i + 1 < widths.size()) ? " | " : " |";
    }
    out += '\n';
  };

  std::size_t total = 4;
  for (std::size_t w : widths) total += w + 3;
  if (!widths.empty()) total -= 3;

  std::string out;
  if (!title_.empty()) {
    out += title_;
    out += '\n';
  }
  const std::string rule(total, '-');
  out += rule;
  out += '\n';
  if (!header_.empty()) {
    emit_row(out, header_);
    out += rule;
    out += '\n';
  }
  for (const auto& r : rows_) emit_row(out, r);
  out += rule;
  out += '\n';
  return out;
}

void AsciiTable::print() const { std::fputs(to_string().c_str(), stdout); }

std::string format_time_eng(double seconds) {
  struct Scale {
    double factor;
    const char* suffix;
  };
  static const Scale scales[] = {{1.0, "s"},    {1e-3, "ms"}, {1e-6, "us"},
                                 {1e-9, "ns"},  {1e-12, "ps"}, {1e-15, "fs"}};
  const double mag = std::fabs(seconds);
  for (const auto& s : scales) {
    if (mag >= s.factor * 0.9995) {
      char buf[48];
      std::snprintf(buf, sizeof buf, "%.3g%s", seconds / s.factor, s.suffix);
      return buf;
    }
  }
  if (mag == 0.0) return "0s";
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.3g%s", seconds / 1e-15, "fs");
  return buf;
}

std::string format_g(double v, int precision) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.*g", precision, v);
  return buf;
}

}  // namespace obd::util

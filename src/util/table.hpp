// ASCII table printer for bench output. Benches regenerate the paper's
// tables as aligned text so the reproduction can be eyeballed against the
// published rows.
#pragma once

#include <string>
#include <vector>

namespace obd::util {

/// Column-aligned ASCII table with an optional title and header row.
class AsciiTable {
 public:
  explicit AsciiTable(std::string title = {}) : title_(std::move(title)) {}

  void set_header(std::vector<std::string> header);
  void add_row(std::vector<std::string> row);

  /// Renders the table with `|`-separated, width-aligned columns.
  std::string to_string() const;

  /// Convenience: render and write to stdout.
  void print() const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats seconds as an engineering string, e.g. 9.6e-11 -> "96.0ps".
std::string format_time_eng(double seconds);

/// Formats a double with the given precision (printf %.*g).
std::string format_g(double v, int precision = 4);

}  // namespace obd::util

// SI unit helpers and physical constants used throughout the library.
//
// All internal quantities are plain SI doubles (volts, amps, ohms, farads,
// seconds). These helpers exist only to make literals readable:
//   using namespace obd::util::literals;
//   double cap = 5.0_fF;      // 5e-15 F
//   double t   = 96.0_ps;     // 9.6e-11 s
#pragma once

namespace obd::util {

/// Physical constants (SI units).
namespace constants {
/// Boltzmann constant [J/K].
inline constexpr double kBoltzmann = 1.380649e-23;
/// Elementary charge [C].
inline constexpr double kElementaryCharge = 1.602176634e-19;
/// Thermal voltage kT/q at 300 K [V].
inline constexpr double kThermalVoltage300K =
    kBoltzmann * 300.0 / kElementaryCharge;
}  // namespace constants

namespace literals {
// Time.
constexpr double operator""_s(long double v) { return static_cast<double>(v); }
constexpr double operator""_ms(long double v) { return static_cast<double>(v) * 1e-3; }
constexpr double operator""_us(long double v) { return static_cast<double>(v) * 1e-6; }
constexpr double operator""_ns(long double v) { return static_cast<double>(v) * 1e-9; }
constexpr double operator""_ps(long double v) { return static_cast<double>(v) * 1e-12; }
constexpr double operator""_fs(long double v) { return static_cast<double>(v) * 1e-15; }
// Capacitance.
constexpr double operator""_pF(long double v) { return static_cast<double>(v) * 1e-12; }
constexpr double operator""_fF(long double v) { return static_cast<double>(v) * 1e-15; }
// Resistance.
constexpr double operator""_ohm(long double v) { return static_cast<double>(v); }
constexpr double operator""_kohm(long double v) { return static_cast<double>(v) * 1e3; }
constexpr double operator""_Mohm(long double v) { return static_cast<double>(v) * 1e6; }
// Voltage / current.
constexpr double operator""_V(long double v) { return static_cast<double>(v); }
constexpr double operator""_mV(long double v) { return static_cast<double>(v) * 1e-3; }
constexpr double operator""_A(long double v) { return static_cast<double>(v); }
constexpr double operator""_mA(long double v) { return static_cast<double>(v) * 1e-3; }
constexpr double operator""_uA(long double v) { return static_cast<double>(v) * 1e-6; }
// Length (device geometry).
constexpr double operator""_um(long double v) { return static_cast<double>(v) * 1e-6; }
constexpr double operator""_nm(long double v) { return static_cast<double>(v) * 1e-9; }
}  // namespace literals

}  // namespace obd::util

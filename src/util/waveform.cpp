#include "util/waveform.hpp"

#include <algorithm>
#include <cmath>

namespace obd::util {

bool Waveform::append(double time, double value) {
  if (!times_.empty() && time <= times_.back()) return false;
  times_.push_back(time);
  values_.push_back(value);
  return true;
}

double Waveform::at(double t) const {
  if (times_.empty()) return 0.0;
  if (t <= times_.front()) return values_.front();
  if (t >= times_.back()) return values_.back();
  // First index with times_[idx] > t.
  const auto it = std::upper_bound(times_.begin(), times_.end(), t);
  const std::size_t hi = static_cast<std::size_t>(it - times_.begin());
  const std::size_t lo = hi - 1;
  const double t0 = times_[lo];
  const double t1 = times_[hi];
  const double v0 = values_[lo];
  const double v1 = values_[hi];
  const double frac = (t - t0) / (t1 - t0);
  return v0 + frac * (v1 - v0);
}

double Waveform::min_value() const {
  if (values_.empty()) return 0.0;
  return *std::min_element(values_.begin(), values_.end());
}

double Waveform::max_value() const {
  if (values_.empty()) return 0.0;
  return *std::max_element(values_.begin(), values_.end());
}

double Waveform::final_value() const {
  return values_.empty() ? 0.0 : values_.back();
}

std::vector<double> Waveform::crossings(double level, bool rising) const {
  std::vector<double> out;
  for (std::size_t i = 1; i < times_.size(); ++i) {
    const double v0 = values_[i - 1];
    const double v1 = values_[i];
    const bool crosses =
        rising ? (v0 < level && v1 >= level) : (v0 > level && v1 <= level);
    if (!crosses) continue;
    const double dv = v1 - v0;
    const double frac = (std::abs(dv) < 1e-300) ? 0.0 : (level - v0) / dv;
    out.push_back(times_[i - 1] + frac * (times_[i] - times_[i - 1]));
  }
  return out;
}

bool Waveform::first_crossing_after(double t_from, double level, bool rising,
                                    double* t_cross) const {
  for (double t : crossings(level, rising)) {
    if (t >= t_from) {
      *t_cross = t;
      return true;
    }
  }
  return false;
}

Waveform Waveform::resample(std::size_t n) const {
  Waveform out(name_);
  if (times_.size() < 2 || n < 2) return out;
  const double t0 = times_.front();
  const double t1 = times_.back();
  for (std::size_t i = 0; i < n; ++i) {
    const double t = t0 + (t1 - t0) * static_cast<double>(i) /
                              static_cast<double>(n - 1);
    out.append(t, at(t));
  }
  return out;
}

const Waveform* TraceSet::find(const std::string& name) const {
  for (const auto& w : traces)
    if (w.name() == name) return &w;
  return nullptr;
}

Waveform* TraceSet::find(const std::string& name) {
  for (auto& w : traces)
    if (w.name() == name) return &w;
  return nullptr;
}

}  // namespace obd::util

// Waveform: an ordered (time, value) series produced by transient analysis.
//
// Waveforms are the common currency between the analog engine (obd::spice),
// the measurement utilities (delay, logic levels) and the bench/figure
// regeneration code. Time points are strictly increasing; values are linearly
// interpolated between points.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace obd::util {

/// A sampled scalar signal v(t) with strictly increasing time points.
class Waveform {
 public:
  Waveform() = default;
  explicit Waveform(std::string name) : name_(std::move(name)) {}

  /// Appends a sample. Time must be strictly greater than the previous
  /// sample's time; out-of-order samples are rejected (returns false).
  bool append(double time, double value);

  /// Signal name (node name for spice traces).
  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  std::size_t size() const { return times_.size(); }
  bool empty() const { return times_.empty(); }

  double time(std::size_t i) const { return times_[i]; }
  double value(std::size_t i) const { return values_[i]; }
  const std::vector<double>& times() const { return times_; }
  const std::vector<double>& values() const { return values_; }

  double front_time() const { return times_.front(); }
  double back_time() const { return times_.back(); }

  /// Linear interpolation at time t. Clamps to the first/last sample outside
  /// the covered interval. Returns 0 for an empty waveform.
  double at(double t) const;

  /// Minimum / maximum sample value (0 for empty waveforms).
  double min_value() const;
  double max_value() const;

  /// Value of the last sample (0 for empty waveforms).
  double final_value() const;

  /// All times at which the (interpolated) signal crosses `level`.
  /// `rising` selects upward crossings, otherwise downward crossings.
  std::vector<double> crossings(double level, bool rising) const;

  /// First crossing of `level` in the given direction at or after t_from;
  /// returns false if none exists.
  bool first_crossing_after(double t_from, double level, bool rising,
                            double* t_cross) const;

  /// Resamples the waveform on a uniform grid of `n` points spanning
  /// [front_time, back_time]. Returns an empty waveform when size() < 2.
  Waveform resample(std::size_t n) const;

 private:
  std::string name_;
  std::vector<double> times_;
  std::vector<double> values_;
};

/// A set of named waveforms sharing a time axis (one transient run).
struct TraceSet {
  std::vector<Waveform> traces;

  /// Find a trace by name; nullptr if absent.
  const Waveform* find(const std::string& name) const;
  Waveform* find(const std::string& name);
};

}  // namespace obd::util

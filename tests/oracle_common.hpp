// Randomized oracle harness for the fault-sim engine family.
//
// One reference, many implementations: the legacy scalar simulators
// (one fault, one pattern, full-circuit evaluation — slow but obviously
// correct) define the detection semantics; every engine configuration —
// pattern-major blocks, fault-major packing, and the threaded scheduler at
// 1/2/4 workers — must reproduce their DetectionMatrix bit for bit, and
// every campaign must agree on (first_test, detected) with the
// single-threaded fault-dropping engine. Shared by test_faultsim_engine.cpp
// and test_faultsim_scheduler.cpp.
#pragma once

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "atpg/atpg.hpp"
#include "logic/zoo.hpp"

namespace obd::atpg::oracle {

/// The circuit zoo swept by the oracle: the paper's full adder, small
/// benchmarks, and random primitive-gate DAGs (fuzz coverage).
inline std::vector<logic::Circuit> zoo() {
  std::vector<logic::Circuit> out;
  out.push_back(logic::full_adder_sum_circuit());
  out.push_back(logic::c17());
  out.push_back(logic::ripple_carry_adder(4));
  out.push_back(logic::mux_tree(2));
  out.push_back(logic::decoder(3));
  out.push_back(logic::random_circuit(8, 60, 6, 0xfeed));
  out.push_back(logic::random_circuit(10, 120, 8, 0xbead));
  return out;
}

/// Engine configurations swept against the legacy reference: threads x
/// packing, then the wide LaneBlock bundles (lane widths 2/4/8 words x
/// thread counts — lane_words rides along silently in fault-major, which
/// packs faults per word), then explicit block batching (amortized round
/// barriers in fault-dropping campaigns).
inline std::vector<SimOptions> sweep_configs() {
  return {// SimOptions: {threads, packing, cone_cache_bytes, lane_words,
          //              block_batch}
          {1, SimPacking::kPatternMajor}, {1, SimPacking::kFaultMajor},
          {2, SimPacking::kPatternMajor}, {4, SimPacking::kPatternMajor},
          {2, SimPacking::kFaultMajor},   {4, SimPacking::kFaultMajor},
          {1, SimPacking::kPatternMajor, 0, 2},
          {1, SimPacking::kPatternMajor, 0, 4},
          {1, SimPacking::kPatternMajor, 0, 8},
          {2, SimPacking::kPatternMajor, 0, 2},
          {2, SimPacking::kPatternMajor, 0, 4},
          {4, SimPacking::kPatternMajor, 0, 4},
          {4, SimPacking::kPatternMajor, 0, 8},
          {2, SimPacking::kFaultMajor, 0, 4},
          {2, SimPacking::kPatternMajor, 0, 1, 2},
          {4, SimPacking::kPatternMajor, 0, 2, 3},
          {4, SimPacking::kPatternMajor, 0, 4, 2}};
}

inline std::string config_name(const SimOptions& o) {
  std::string n = std::string(to_string(o.packing)) + "/" +
                  std::to_string(o.threads) + "t/" +
                  std::to_string(64 * (o.lane_words < 1 ? 1 : o.lane_words)) +
                  "l";
  if (o.block_batch > 0) n += "/b" + std::to_string(o.block_batch);
  return n;
}

/// Builds a DetectionMatrix row-by-row from per-test detection flags.
template <typename SimFn>
DetectionMatrix reference_matrix(std::size_t n_tests, std::size_t n_faults,
                                 SimFn simulate_test) {
  DetectionMatrix m;
  m.n_tests = n_tests;
  m.n_faults = n_faults;
  m.words_per_row = (n_faults + 63) / 64;
  m.rows.assign(m.n_tests * m.words_per_row, 0);
  m.covered.assign(n_faults, false);
  for (std::size_t t = 0; t < n_tests; ++t) {
    const std::vector<bool> det = simulate_test(t);
    for (std::size_t f = 0; f < n_faults; ++f) {
      if (!det[f]) continue;
      m.rows[t * m.words_per_row + (f >> 6)] |= 1ull << (f & 63);
      if (!m.covered[f]) {
        m.covered[f] = true;
        ++m.covered_count;
      }
    }
  }
  return m;
}

inline void expect_matrices_identical(const DetectionMatrix& ref,
                                      const DetectionMatrix& got,
                                      const std::string& label) {
  ASSERT_EQ(ref.n_tests, got.n_tests) << label;
  ASSERT_EQ(ref.n_faults, got.n_faults) << label;
  ASSERT_EQ(ref.words_per_row, got.words_per_row) << label;
  EXPECT_EQ(ref.rows, got.rows) << label;
  EXPECT_EQ(ref.covered, got.covered) << label;
  EXPECT_EQ(ref.covered_count, got.covered_count) << label;
}

/// Sweeps one circuit under all three fault models: a random pattern set,
/// legacy scalar reference matrices, and bit-identity of every engine
/// configuration's matrix.
inline void sweep_matrices(const logic::Circuit& c, int n_tests,
                           std::uint64_t seed,
                           const std::vector<SimOptions>& configs =
                               sweep_configs()) {
  const auto tests =
      random_pairs(static_cast<int>(c.inputs().size()), n_tests, seed);
  std::vector<InputVec> patterns;
  for (const auto& t : tests) patterns.push_back(t.v2);
  const auto sf = enumerate_stuck_faults(c);
  const auto tf = enumerate_transition_faults(c);
  const auto of = enumerate_obd_faults(c);

  const DetectionMatrix ref_s =
      reference_matrix(patterns.size(), sf.size(), [&](std::size_t t) {
        return legacy::simulate_stuck_at(c, patterns[t], sf);
      });
  const DetectionMatrix ref_t =
      reference_matrix(tests.size(), tf.size(), [&](std::size_t t) {
        return legacy::simulate_transition(c, tests[t], tf);
      });
  const DetectionMatrix ref_o =
      reference_matrix(tests.size(), of.size(), [&](std::size_t t) {
        return legacy::simulate_obd(c, tests[t], of);
      });

  for (const SimOptions& cfg : configs) {
    FaultSimScheduler sched(c, cfg);
    const std::string label = c.name() + " " + config_name(cfg);
    expect_matrices_identical(ref_s, sched.matrix_stuck(patterns, sf),
                              label + " stuck");
    expect_matrices_identical(ref_t, sched.matrix_transition(tests, tf),
                              label + " transition");
    expect_matrices_identical(ref_o, sched.matrix_obd(tests, of),
                              label + " obd");
  }
}

/// Sweeps one circuit's fault-dropping campaigns: every configuration must
/// agree with the single-threaded block engine on (first_test, detected) —
/// the deterministic drop-reconciliation contract.
inline void sweep_campaigns(const logic::Circuit& c, int n_tests,
                            std::uint64_t seed, bool drop) {
  const auto tests =
      random_pairs(static_cast<int>(c.inputs().size()), n_tests, seed);
  std::vector<InputVec> patterns;
  for (const auto& t : tests) patterns.push_back(t.v2);
  const auto sf = enumerate_stuck_faults(c);
  const auto tf = enumerate_transition_faults(c);
  const auto of = enumerate_obd_faults(c);

  FaultSimEngine engine(c);
  const auto ref_s = engine.campaign_stuck(patterns, sf, drop);
  const auto ref_t = engine.campaign_transition(tests, tf, drop);
  const auto ref_o = engine.campaign_obd(tests, of, drop);

  for (const SimOptions& cfg : sweep_configs()) {
    FaultSimScheduler sched(c, cfg);
    const std::string label = c.name() + " " + config_name(cfg);
    const auto got_s = sched.campaign_stuck(patterns, sf, drop);
    EXPECT_EQ(ref_s.first_test, got_s.first_test) << label << " stuck";
    EXPECT_EQ(ref_s.detected, got_s.detected) << label << " stuck";
    const auto got_t = sched.campaign_transition(tests, tf, drop);
    EXPECT_EQ(ref_t.first_test, got_t.first_test) << label << " transition";
    EXPECT_EQ(ref_t.detected, got_t.detected) << label << " transition";
    const auto got_o = sched.campaign_obd(tests, of, drop);
    EXPECT_EQ(ref_o.first_test, got_o.first_test) << label << " obd";
    EXPECT_EQ(ref_o.detected, got_o.detected) << label << " obd";
  }
}

}  // namespace obd::atpg::oracle

// ISCAS .bench frontend: parsing, multi-input decomposition, sequential
// (DFF) elaboration, line-numbered diagnostics, writer round-trips, and
// the checked-in corpus under bench/circuits/.
#include <gtest/gtest.h>

#include <string>

#include "io/bench.hpp"
#include "logic/zoo.hpp"
#include "util/prng.hpp"

namespace obd::io {
namespace {

using logic::Circuit;
using logic::GateType;

std::string corpus(const std::string& file) {
  return std::string(OBD_CORPUS_DIR) + "/" + file;
}

TEST(BenchIo, ParseMinimalCombinational) {
  const BenchParseResult r = parse_bench(
      "# tiny\nINPUT(a)\nINPUT(b)\nOUTPUT(o)\no = NAND(a, b)\n", "tiny");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.circuit().name(), "tiny");
  EXPECT_EQ(r.circuit().inputs().size(), 2u);
  EXPECT_EQ(r.circuit().outputs().size(), 1u);
  EXPECT_EQ(r.circuit().num_gates(), 1u);
  EXPECT_TRUE(r.seq.flops().empty());
  EXPECT_EQ(r.circuit().eval_outputs(0b11), 0u);
  EXPECT_EQ(r.circuit().eval_outputs(0b01), 1u);
}

TEST(BenchIo, UsesBeforeDefinitionsAndCaseInsensitiveFuncs) {
  // Published netlists freely reference nets before defining them; gate
  // function names come in both cases.
  const BenchParseResult r = parse_bench(
      "output(o)\no = nand(x, y)\nx = not(a)\ny = buff(b)\n"
      "input(a)\ninput(b)\n");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.circuit().num_gates(), 3u);
  EXPECT_EQ(r.circuit().eval_outputs(0b01), 1u);  // !( !a & b ), a=1,b=0
}

TEST(BenchIo, C17CorpusMatchesZooTwin) {
  // The checked-in c17.bench is the genuine ISCAS-85 netlist; the zoo twin
  // is hand-built. Exhaustive 2^5 functional equivalence (PI/PO orders
  // match by construction).
  const BenchParseResult r = load_bench_file(corpus("c17.bench"));
  ASSERT_TRUE(r.ok) << r.error;
  const Circuit zoo = logic::c17();
  ASSERT_EQ(r.circuit().inputs().size(), zoo.inputs().size());
  ASSERT_EQ(r.circuit().outputs().size(), zoo.outputs().size());
  EXPECT_EQ(r.circuit().num_gates(), 6u);
  for (std::uint64_t v = 0; v < 32; ++v)
    EXPECT_EQ(r.circuit().eval_outputs(v), zoo.eval_outputs(v)) << "v=" << v;
}

TEST(BenchIo, MultiInputGatesDecompose) {
  const BenchParseResult r = parse_bench(
      "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nINPUT(e)\n"
      "OUTPUT(n5)\nOUTPUT(o3)\nOUTPUT(x3)\nOUTPUT(p4)\n"
      "n5 = NAND(a, b, c, d, e)\n"
      "o3 = OR(a, b, c)\n"
      "x3 = XOR(a, b, c)\n"
      "p4 = XNOR(a, b, c, d)\n");
  ASSERT_TRUE(r.ok) << r.error;
  const Circuit& c = r.circuit();
  // The named output nets keep their function on the root gate; the
  // 5-input NAND's root stays an OBD-faultable primitive.
  EXPECT_EQ(c.gate(c.driver_of(c.find_net("n5"))).type, GateType::kNand2);
  EXPECT_EQ(c.gate(c.driver_of(c.find_net("x3"))).type, GateType::kXor2);
  for (std::uint64_t v = 0; v < 32; ++v) {
    const bool a = v & 1, b = v & 2, cc = v & 4, d = v & 8, e = v & 16;
    const std::uint64_t out = c.eval_outputs(v).u64();
    EXPECT_EQ((out >> 0) & 1, !(a && b && cc && d && e)) << v;
    EXPECT_EQ((out >> 1) & 1, a || b || cc) << v;
    EXPECT_EQ((out >> 2) & 1, a ^ b ^ cc) << v;
    EXPECT_EQ((out >> 3) & 1, !(a ^ b ^ cc ^ d)) << v;
  }
}

TEST(BenchIo, NativeArityNandNorStayWhole) {
  const BenchParseResult r = parse_bench(
      "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nOUTPUT(o)\n"
      "o = NOR(a, b, c, d)\n");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.circuit().num_gates(), 1u);
  EXPECT_EQ(r.circuit().gate(0).type, GateType::kNor4);
}

TEST(BenchIo, S27CorpusParsesToSequential) {
  const BenchParseResult r = load_bench_file(corpus("s27.bench"));
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.seq.flops().size(), 3u);
  EXPECT_EQ(r.seq.core().inputs().size(), 4u);
  EXPECT_EQ(r.seq.core().outputs().size(), 1u);
  EXPECT_EQ(r.seq.core().num_gates(), 10u);
  EXPECT_EQ(r.seq.validate(), "");
  // Scan view: 4 PIs + 3 pseudo-PIs, 1 PO + 3 pseudo-POs.
  const Circuit sv = r.seq.scan_view();
  EXPECT_EQ(sv.inputs().size(), 7u);
  EXPECT_EQ(sv.outputs().size(), 4u);
}

TEST(BenchIo, CorpusRoundTripsThroughWriter) {
  util::Prng prng(0xb37c4);
  for (const char* file : {"c17.bench", "c432.bench", "c880.bench",
                           "c1355.bench", "s27.bench", "s344.bench"}) {
    const BenchParseResult a = load_bench_file(corpus(file));
    ASSERT_TRUE(a.ok) << file << ": " << a.error;
    const BenchParseResult b = parse_bench(write_bench(a.seq), "rt");
    ASSERT_TRUE(b.ok) << file << ": " << b.error;
    EXPECT_EQ(a.seq.core().num_gates(), b.seq.core().num_gates()) << file;
    EXPECT_EQ(a.seq.core().inputs().size(), b.seq.core().inputs().size());
    EXPECT_EQ(a.seq.core().outputs().size(), b.seq.core().outputs().size());
    EXPECT_EQ(a.seq.flops().size(), b.seq.flops().size()) << file;
    // Functional equivalence on the scan view (combinational circuits have
    // a trivial one), 256 random vectors.
    const Circuit va = a.seq.scan_view();
    const Circuit vb = b.seq.scan_view();
    ASSERT_LE(va.inputs().size(), 64u) << file;
    for (int k = 0; k < 256; ++k) {
      const std::uint64_t v = prng.next_u64();
      EXPECT_EQ(va.eval_outputs(v), vb.eval_outputs(v)) << file;
    }
  }
}

TEST(BenchIo, WriterLowersAoiOaiCells) {
  Circuit c("aoi");
  const auto a = c.add_input("a"), b = c.add_input("b"), s = c.add_input("s");
  const auto o = c.net("o"), p = c.net("p");
  c.add_gate(GateType::kAoi21, "o", {a, b, s}, o);
  c.add_gate(GateType::kOai21, "p", {a, b, s}, p);
  c.mark_output(o);
  c.mark_output(p);
  const BenchParseResult r = parse_bench(write_bench(c), "aoi");
  ASSERT_TRUE(r.ok) << r.error;
  for (std::uint64_t v = 0; v < 8; ++v)
    EXPECT_EQ(r.circuit().eval_outputs(v), c.eval_outputs(v)) << v;
}

TEST(BenchIo, ErrorUnknownFunction) {
  const BenchParseResult r =
      parse_bench("INPUT(a)\nOUTPUT(o)\no = FROB(a)\n");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("line 3"), std::string::npos) << r.error;
  EXPECT_NE(r.error.find("FROB"), std::string::npos) << r.error;
}

TEST(BenchIo, ErrorUndefinedNet) {
  const BenchParseResult r =
      parse_bench("INPUT(a)\nOUTPUT(o)\no = NAND(a, ghost)\n");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("line 3"), std::string::npos) << r.error;
  EXPECT_NE(r.error.find("ghost"), std::string::npos) << r.error;
}

TEST(BenchIo, ErrorDuplicateDriver) {
  const BenchParseResult r = parse_bench(
      "INPUT(a)\nINPUT(b)\nOUTPUT(o)\no = NAND(a, b)\no = NOR(a, b)\n");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("line 5"), std::string::npos) << r.error;
  EXPECT_NE(r.error.find("line 4"), std::string::npos) << r.error;
}

TEST(BenchIo, ErrorGateDrivesInput) {
  const BenchParseResult r =
      parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(b)\nb = NOT(a)\n");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("line 4"), std::string::npos) << r.error;
  EXPECT_NE(r.error.find("INPUT"), std::string::npos) << r.error;
}

TEST(BenchIo, ErrorCombinationalCycle) {
  const BenchParseResult r = parse_bench(
      "INPUT(a)\nOUTPUT(x)\nx = NAND(a, y)\ny = NOT(x)\n");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("cycle"), std::string::npos) << r.error;
  EXPECT_NE(r.error.find("line 3"), std::string::npos) << r.error;
}

TEST(BenchIo, ErrorDffArity) {
  const BenchParseResult r = parse_bench(
      "INPUT(a)\nINPUT(b)\nOUTPUT(q)\nq = DFF(a, b)\n");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("DFF"), std::string::npos) << r.error;
}

TEST(BenchIo, ErrorTrailingTextAfterStatement) {
  const BenchParseResult r = parse_bench(
      "INPUT(a)\nINPUT(b)\nOUTPUT(o)\no = AND(a, b) junk\n");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("line 4"), std::string::npos) << r.error;
  EXPECT_NE(r.error.find("trailing"), std::string::npos) << r.error;
}

TEST(BenchIo, ErrorDuplicateOutput) {
  const BenchParseResult r = parse_bench(
      "INPUT(a)\nOUTPUT(o)\nOUTPUT(o)\no = NOT(a)\n");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("line 3"), std::string::npos) << r.error;
  EXPECT_NE(r.error.find("OUTPUT"), std::string::npos) << r.error;
}

TEST(BenchIo, ErrorOutputNeverDefined) {
  const BenchParseResult r = parse_bench("INPUT(a)\nOUTPUT(ghost)\n");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("ghost"), std::string::npos) << r.error;
}

TEST(BenchIo, LoadReportsMissingFile) {
  const BenchParseResult r = load_bench_file(corpus("no_such.bench"));
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("no_such"), std::string::npos);
}

}  // namespace
}  // namespace obd::io

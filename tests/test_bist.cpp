// Concurrent-test lifetime Monte Carlo.
#include "core/bist.hpp"

#include <gtest/gtest.h>

namespace obd::core {
namespace {

SiteWindow window(double open, double hbd) {
  SiteWindow s;
  s.t_observable = open;
  s.t_hbd = hbd;
  return s;
}

TEST(SiteWindow, FromCurve) {
  ProgressionModel m(1e-28, 1e-24, 1000.0);
  std::vector<DelayVsIsat> curve{
      {1e-28, 100e-12}, {1e-26, 200e-12}, {1e-24, 400e-12}};
  const SiteWindow s = site_window_from_curve(curve, 150e-12, m);
  EXPECT_TRUE(s.ever_observable());
  EXPECT_GT(s.t_observable, 0.0);
  EXPECT_NEAR(s.t_hbd, 1000.0, 1e-9);
}

TEST(SiteWindow, UndetectableCurve) {
  ProgressionModel m(1e-28, 1e-24, 1000.0);
  std::vector<DelayVsIsat> curve{{1e-28, 1e-12}, {1e-24, 2e-12}};
  const SiteWindow s = site_window_from_curve(curve, 1e-9, m);
  EXPECT_FALSE(s.ever_observable());
}

TEST(Lifetime, ShortPeriodAlwaysCatches) {
  LifetimeOptions opt;
  opt.test_period = 10.0;
  opt.trials = 2000;
  const LifetimeStats st = simulate_lifetime({window(100.0, 1000.0)}, opt);
  EXPECT_EQ(st.caught, st.trials);
  EXPECT_DOUBLE_EQ(st.catch_rate(), 1.0);
  // Latency bounded by one period.
  EXPECT_LE(st.mean_latency, 10.0);
}

TEST(Lifetime, PeriodLongerThanWindowSometimesEscapes) {
  LifetimeOptions opt;
  opt.test_period = 1800.0;  // window is only 900 s wide
  opt.trials = 5000;
  const LifetimeStats st = simulate_lifetime({window(100.0, 1000.0)}, opt);
  EXPECT_GT(st.caught, 0);
  EXPECT_GT(st.escaped_to_hbd, 0);
  // With random phase the catch rate approximates width/period = 0.5.
  EXPECT_NEAR(st.catch_rate(), 0.5, 0.05);
}

TEST(Lifetime, DeterministicPhaseCatchesIffPeriodFits) {
  LifetimeOptions opt;
  opt.random_phase = false;  // first test at onset
  opt.trials = 10;
  // Window [100, 1000): tests at 0, P, 2P...
  opt.test_period = 400.0;  // test at 400 inside window
  EXPECT_EQ(simulate_lifetime({window(100.0, 1000.0)}, opt).caught, 10);
  opt.test_period = 1200.0;  // tests at 0 (too early) and 1200 (too late)
  EXPECT_EQ(simulate_lifetime({window(100.0, 1000.0)}, opt).caught, 0);
}

TEST(Lifetime, NeverObservableSitesCounted) {
  LifetimeOptions opt;
  opt.trials = 100;
  const LifetimeStats st =
      simulate_lifetime({window(1000.0, 1000.0)}, opt);
  EXPECT_EQ(st.never_observable, 100);
  EXPECT_EQ(st.escaped_to_hbd, 100);
}

TEST(Lifetime, MixedSitesInterpolate) {
  LifetimeOptions opt;
  opt.test_period = 50.0;
  opt.trials = 4000;
  // One always-catchable site, one never-observable site, uniform choice.
  const LifetimeStats st = simulate_lifetime(
      {window(0.0, 1000.0), window(500.0, 500.0)}, opt);
  EXPECT_NEAR(st.catch_rate(), 0.5, 0.05);
}

TEST(Lifetime, DeterministicSeed) {
  LifetimeOptions opt;
  opt.test_period = 700.0;
  opt.trials = 1000;
  const LifetimeStats a = simulate_lifetime({window(100.0, 1000.0)}, opt);
  const LifetimeStats b = simulate_lifetime({window(100.0, 1000.0)}, opt);
  EXPECT_EQ(a.caught, b.caught);
  EXPECT_DOUBLE_EQ(a.mean_latency, b.mean_latency);
}

TEST(Lifetime, CatchRateMonotoneInPeriod) {
  const std::vector<SiteWindow> sites{window(100.0, 1000.0)};
  double prev = 1.1;
  for (double period : {100.0, 450.0, 900.0, 1800.0, 3600.0}) {
    LifetimeOptions opt;
    opt.test_period = period;
    opt.trials = 4000;
    const double rate = simulate_lifetime(sites, opt).catch_rate();
    EXPECT_LE(rate, prev + 0.03) << period;
    prev = rate;
  }
}

}  // namespace
}  // namespace obd::core

// Spice-level characterization: Table 1 / Fig. 6 / Fig. 7 behaviours.
//
// These are integration tests of the whole analog stack (harness + OBD
// injection + transient + measurement). They assert the paper's qualitative
// claims, not picosecond values.
#include "core/characterize.hpp"

#include <gtest/gtest.h>

#include "core/excitation.hpp"

namespace obd::core {
namespace {

class NandCharacterizer : public testing::Test {
 protected:
  cells::Technology tech = cells::Technology::default_350nm();
  GateCharacterizer chr{cells::nand_topology(2), tech};

  // Paper-order transitions (input A = bit 0).
  static constexpr cells::TwoVector kFall_01_11{0b10, 0b11};  // A rises
  static constexpr cells::TwoVector kFall_10_11{0b01, 0b11};  // B rises
  static constexpr cells::TwoVector kFall_00_11{0b00, 0b11};  // both rise
  static constexpr cells::TwoVector kRise_11_01{0b11, 0b10};  // A falls
  static constexpr cells::TwoVector kRise_11_10{0b11, 0b01};  // B falls
};

TEST_F(NandCharacterizer, FaultFreeDelaysDefined) {
  for (const auto& tv : {kFall_01_11, kFall_10_11, kRise_11_01, kRise_11_10}) {
    const auto m = chr.measure(std::nullopt, BreakdownStage::kFaultFree, tv);
    ASSERT_TRUE(m.delay.has_value());
    EXPECT_GT(*m.delay, 20e-12);
    EXPECT_LT(*m.delay, 300e-12);
    EXPECT_FALSE(m.stuck);
  }
}

TEST_F(NandCharacterizer, NmosDelayGrowsMonotonicallyWithStage) {
  // Table 1, NMOS rows: each stage adds delay until HBD sticks.
  double prev = 0.0;
  for (BreakdownStage s : {BreakdownStage::kFaultFree, BreakdownStage::kMbd1,
                           BreakdownStage::kMbd2, BreakdownStage::kMbd3}) {
    const auto m = chr.measure(cells::TransistorRef{false, 0}, s, kFall_10_11);
    ASSERT_TRUE(m.delay.has_value()) << to_string(s);
    EXPECT_GT(*m.delay, prev) << to_string(s);
    prev = *m.delay;
  }
}

TEST_F(NandCharacterizer, NmosHbdSticksHigh) {
  const auto m = chr.measure(cells::TransistorRef{false, 0},
                             BreakdownStage::kHbd, kFall_10_11);
  EXPECT_FALSE(m.delay.has_value());
  EXPECT_TRUE(m.stuck);
  EXPECT_TRUE(m.stuck_high);  // Table 1: "sa-1"
}

TEST_F(NandCharacterizer, NmosDefectExcitedRegardlessOfSwitchingInput) {
  // Fig. 6 claim: breakdown in an NMOS causes the transition fault
  // independent of which input switches (series stack carries everything).
  const BreakdownStage s = BreakdownStage::kMbd2;
  const auto ff = chr.measure(std::nullopt, s, kFall_10_11);
  ASSERT_TRUE(ff.delay.has_value());
  for (const auto& tv : {kFall_01_11, kFall_10_11, kFall_00_11}) {
    const auto m = chr.measure(cells::TransistorRef{false, 0}, s, tv);
    ASSERT_TRUE(m.delay.has_value());
    EXPECT_GT(*m.delay, 1.5 * *ff.delay)
        << "transition " << cells::format_transition(tv, 2);
  }
}

TEST_F(NandCharacterizer, PmosDefectOnlyDisturbsItsOwnTransition) {
  // Fig. 7 / Table 1: the PMOS defect at input A delays (11,01) but leaves
  // (11,10) at its fault-free value, and vice versa.
  const BreakdownStage s = BreakdownStage::kMbd2;
  const auto ff_rise = chr.measure(std::nullopt, s, kRise_11_01);
  ASSERT_TRUE(ff_rise.delay.has_value());

  const auto a_own = chr.measure(cells::TransistorRef{true, 0}, s, kRise_11_01);
  const auto a_other =
      chr.measure(cells::TransistorRef{true, 0}, s, kRise_11_10);
  ASSERT_TRUE(a_own.delay.has_value());
  ASSERT_TRUE(a_other.delay.has_value());
  EXPECT_GT(*a_own.delay, 2.0 * *ff_rise.delay);
  EXPECT_LT(*a_other.delay, 1.3 * *ff_rise.delay);

  const auto b_own = chr.measure(cells::TransistorRef{true, 1}, s, kRise_11_10);
  const auto b_other =
      chr.measure(cells::TransistorRef{true, 1}, s, kRise_11_01);
  ASSERT_TRUE(b_own.delay.has_value());
  ASSERT_TRUE(b_other.delay.has_value());
  EXPECT_GT(*b_own.delay, 2.0 * *ff_rise.delay);
  EXPECT_LT(*b_other.delay, 1.3 * *ff_rise.delay);
}

TEST_F(NandCharacterizer, PmosMbd3SticksLow) {
  const auto m = chr.measure(cells::TransistorRef{true, 1},
                             BreakdownStage::kMbd3, kRise_11_10);
  EXPECT_FALSE(m.delay.has_value());
  EXPECT_TRUE(m.stuck);
  EXPECT_FALSE(m.stuck_high);  // Table 1: "sa-0"
}

TEST_F(NandCharacterizer, ObdRaisesSupplyCurrent) {
  // The leakage path pulls a static mA-scale current: the IDDQ signature
  // Segura et al. exploit, visible in our peak supply current.
  const auto ff = chr.measure(std::nullopt, BreakdownStage::kFaultFree,
                              kFall_10_11);
  const auto bd = chr.measure(cells::TransistorRef{false, 0},
                              BreakdownStage::kMbd2, kFall_10_11);
  EXPECT_GT(bd.peak_supply_current, 1.1 * ff.peak_supply_current);
}

TEST_F(NandCharacterizer, DegradedOutputLevelAtLateStage) {
  // VOL rises when the NMOS defect injects current into the output node.
  const auto m = chr.measure(cells::TransistorRef{false, 0},
                             BreakdownStage::kMbd3, kFall_10_11);
  ASSERT_TRUE(m.delay.has_value());
  EXPECT_GT(m.settled_v, 0.02);  // no longer a clean 0 V rail
}

TEST_F(NandCharacterizer, ExcitationEngineAgreesWithAnalogDelays) {
  // Cross-validation: for every (transistor, transition) pair, the analog
  // delay grows noticeably iff the structural excitation engine says the
  // pair is excited. This ties Sec. 4.1 (conditions) to Sec. 3 (model).
  const CellTopology nand2 = cells::nand_topology(2);
  const BreakdownStage s = BreakdownStage::kMbd2;
  const std::vector<cells::TwoVector> transitions{
      kFall_01_11, kFall_10_11, kFall_00_11, kRise_11_01, kRise_11_10};
  for (const auto& t : nand2.transistors()) {
    for (const auto& tv : transitions) {
      const auto ff = chr.measure(std::nullopt, BreakdownStage::kFaultFree, tv);
      const auto m = chr.measure(t, s, tv);
      ASSERT_TRUE(ff.delay.has_value());
      if (!m.delay.has_value()) {
        // Stuck counts as an (extreme) delay: must be an excited pair.
        EXPECT_TRUE(excites_obd(nand2, t, tv));
        continue;
      }
      const double ratio = *m.delay / *ff.delay;
      const bool excited = excites_obd(nand2, t, tv);
      if (excited) {
        EXPECT_GT(ratio, 1.3)
            << (t.pmos ? "P" : "N") << t.input << " "
            << cells::format_transition(tv, 2);
      } else {
        EXPECT_LT(ratio, 1.3)
            << (t.pmos ? "P" : "N") << t.input << " "
            << cells::format_transition(tv, 2);
      }
    }
  }
}

TEST(CharacterizerNor, DualBehaviourAtMbd1) {
  // NOR: NMOS defects are the input-specific ones (parallel PDN). MBD1 is
  // the mild stage; the defect slows its own transition and leaves the
  // other input's transition intact.
  const cells::Technology tech = cells::Technology::default_350nm();
  GateCharacterizer chr(cells::nor_topology(2), tech);
  const cells::TwoVector own{0b00, 0b01};    // A rises -> output falls via A
  const cells::TwoVector other{0b00, 0b10};  // B rises
  const BreakdownStage s = BreakdownStage::kMbd1;
  const auto ff = chr.measure(std::nullopt, s, own);
  ASSERT_TRUE(ff.delay.has_value());
  const auto m_own = chr.measure(cells::TransistorRef{false, 0}, s, own);
  const auto m_other = chr.measure(cells::TransistorRef{false, 0}, s, other);
  ASSERT_TRUE(m_own.delay.has_value());
  ASSERT_TRUE(m_other.delay.has_value());
  EXPECT_GT(*m_own.delay, 1.2 * *ff.delay);
  EXPECT_LT(*m_other.delay, 1.2 * *ff.delay);
}

TEST(CharacterizerNor, NmosDefectSticksAtLaterStage) {
  // At MBD2 the defective NMOS's gate is so degraded that the (still
  // conducting) complementary PMOS wins the fight: the output can no longer
  // fall. The single-transistor pull-down of a NOR makes NMOS defects
  // *more* severe than in a NAND - the dual of the paper's PMOS cliff.
  const cells::Technology tech = cells::Technology::default_350nm();
  GateCharacterizer chr(cells::nor_topology(2), tech);
  const auto m = chr.measure(cells::TransistorRef{false, 0},
                             BreakdownStage::kMbd2, {0b00, 0b01});
  EXPECT_TRUE(m.stuck);
  EXPECT_TRUE(m.stuck_high);
}

}  // namespace
}  // namespace obd::core

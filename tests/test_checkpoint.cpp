// Checkpoint codec robustness: round-trip fidelity, then an exhaustive
// attack on the frame — every prefix truncation and every single-byte
// corruption of a valid checkpoint must be rejected with a diagnostic,
// never crash, never misparse. This is the property that lets the shard
// supervisor treat "load succeeded" as "state is trustworthy".
#include "flow/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>

#include "util/crc32c.hpp"
#include "util/prng.hpp"

namespace obd::flow {
namespace {

// A fully-populated, internally-consistent state: shard 1 of 3 over 100
// collapsed representatives (assigned partition = 33 faults), prepass pool
// of 40, two PODEM tests, and a kDone matrix whose covered bits are the
// genuine column-OR of its rows.
ShardState sample_state() {
  ShardState s;
  s.circuit = "ckpt-sample";
  s.options_fp = 0xfeedface12345678ull;
  s.shard_index = 1;
  s.shard_count = 3;
  s.n_reps_total = 100;
  s.pool_size = 40;
  s.phase = ShardPhase::kDone;
  s.prng_state = util::Prng(0x0bd5eedull).state();
  s.fault_block_evals = 123456789;
  s.sat_conflicts = 424242;
  s.useful_pool = {3, 11, 12, 29, 39};

  const std::size_t assigned = ShardState::assigned_count(100, 1, 3);
  s.status.assign(assigned, FaultStatus::kRandomDetected);
  s.status[0] = FaultStatus::kPending;
  s.status[5] = FaultStatus::kTestFound;
  s.status[7] = FaultStatus::kUntestable;
  s.status[20] = FaultStatus::kTestFound;
  s.status[21] = FaultStatus::kAbortedBacktracks;
  s.status[22] = FaultStatus::kAbortedTime;
  s.status[24] = FaultStatus::kSatCube;
  s.status[25] = FaultStatus::kSatUntestable;
  s.status[26] = FaultStatus::kSatUnknown;

  ShardDetTest t1;
  t1.local_index = 5;
  t1.test.v1 = logic::InputVec{0xdeadbeefull};
  t1.test.v2 = logic::InputVec{0x12345678ull};
  ShardDetTest t2;
  t2.local_index = 20;
  t2.test.v1.set_word(0, 1);
  t2.test.v1.set_word(2, 0x55aaull);  // a wide (multi-word) vector
  t2.test.v2 = logic::InputVec{7};
  ShardDetTest t3;  // SAT escalation cube, same det_tests stream
  t3.local_index = 24;
  t3.test.v1 = logic::InputVec{0xc0ffeeull};
  t3.test.v2 = logic::InputVec{0xc0ffeeull};
  s.det_tests = {t1, t2, t3};

  s.has_matrix = true;
  auto& m = s.local_matrix;
  m.n_tests = 8;  // 5 useful prepass tests + 2 PODEM + 1 SAT cube
  m.n_faults = assigned;
  m.words_per_row = (assigned + 63) / 64;
  m.rows.assign(m.n_tests * m.words_per_row, 0);
  util::Prng prng(42);
  for (auto& w : m.rows) w = prng.next_u64() & ((1ull << assigned) - 1);
  m.covered.assign(m.n_faults, false);
  m.covered_count = 0;
  for (std::size_t f = 0; f < m.n_faults; ++f)
    for (std::size_t t = 0; t < m.n_tests; ++t)
      if (m.detects(t, f)) {
        m.covered[f] = true;
        ++m.covered_count;
        break;
      }
  return s;
}

void expect_states_equal(const ShardState& a, const ShardState& b) {
  EXPECT_EQ(a.circuit, b.circuit);
  EXPECT_EQ(a.options_fp, b.options_fp);
  EXPECT_EQ(a.shard_index, b.shard_index);
  EXPECT_EQ(a.shard_count, b.shard_count);
  EXPECT_EQ(a.n_reps_total, b.n_reps_total);
  EXPECT_EQ(a.pool_size, b.pool_size);
  EXPECT_EQ(a.phase, b.phase);
  EXPECT_EQ(a.prng_state, b.prng_state);
  EXPECT_EQ(a.fault_block_evals, b.fault_block_evals);
  EXPECT_EQ(a.sat_conflicts, b.sat_conflicts);
  EXPECT_EQ(a.useful_pool, b.useful_pool);
  EXPECT_EQ(a.status, b.status);
  ASSERT_EQ(a.det_tests.size(), b.det_tests.size());
  for (std::size_t i = 0; i < a.det_tests.size(); ++i) {
    EXPECT_EQ(a.det_tests[i].local_index, b.det_tests[i].local_index);
    EXPECT_EQ(a.det_tests[i].test, b.det_tests[i].test);
  }
  EXPECT_EQ(a.has_matrix, b.has_matrix);
  EXPECT_EQ(a.local_matrix.n_tests, b.local_matrix.n_tests);
  EXPECT_EQ(a.local_matrix.n_faults, b.local_matrix.n_faults);
  EXPECT_EQ(a.local_matrix.words_per_row, b.local_matrix.words_per_row);
  EXPECT_EQ(a.local_matrix.rows, b.local_matrix.rows);
  EXPECT_EQ(a.local_matrix.covered, b.local_matrix.covered);
  EXPECT_EQ(a.local_matrix.covered_count, b.local_matrix.covered_count);
}

TEST(Checkpoint, RoundTripPreservesEveryField) {
  const ShardState s = sample_state();
  const std::string bytes = encode_checkpoint(s);
  ShardState back;
  std::string err;
  ASSERT_TRUE(decode_checkpoint(bytes, &back, &err)) << err;
  expect_states_equal(s, back);

  // Encoding the decoded state reproduces the exact bytes — the format has
  // no hidden nondeterminism (map ordering, padding, uninitialized bytes).
  EXPECT_EQ(encode_checkpoint(back), bytes);
}

TEST(Checkpoint, RoundTripWithoutMatrix) {
  ShardState s = sample_state();
  s.phase = ShardPhase::kPodemPartial;
  s.has_matrix = false;
  s.local_matrix = {};
  ShardState back;
  std::string err;
  ASSERT_TRUE(decode_checkpoint(encode_checkpoint(s), &back, &err)) << err;
  expect_states_equal(s, back);
}

TEST(Checkpoint, EveryPrefixTruncationRejected) {
  const std::string bytes = encode_checkpoint(sample_state());
  ASSERT_GT(bytes.size(), 100u);
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    ShardState out;
    std::string err;
    EXPECT_FALSE(decode_checkpoint(std::string_view(bytes).substr(0, len),
                                   &out, &err))
        << "accepted a " << len << "-byte prefix of a " << bytes.size()
        << "-byte checkpoint";
    EXPECT_FALSE(err.empty()) << "no diagnostic for prefix length " << len;
  }
}

TEST(Checkpoint, EverySingleByteCorruptionRejected) {
  const std::string bytes = encode_checkpoint(sample_state());
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    std::string mutated = bytes;
    mutated[i] = static_cast<char>(mutated[i] ^ 0xA5);
    ShardState out;
    std::string err;
    EXPECT_FALSE(decode_checkpoint(mutated, &out, &err))
        << "accepted a checkpoint with byte " << i << " flipped";
    EXPECT_FALSE(err.empty()) << "no diagnostic for corrupt byte " << i;
  }
}

TEST(Checkpoint, TrailingGarbageRejected) {
  std::string bytes = encode_checkpoint(sample_state());
  bytes.push_back('\0');
  ShardState out;
  std::string err;
  EXPECT_FALSE(decode_checkpoint(bytes, &out, &err));
  EXPECT_NE(err.find("length mismatch"), std::string::npos) << err;
}

TEST(Checkpoint, FutureVersionRejectedEvenWithValidCrc) {
  // A version bump alone (CRC recomputed to match) must still be refused:
  // the version gate fires before any payload interpretation.
  std::string bytes = encode_checkpoint(sample_state());
  // Version u32 (little-endian) follows the 8-byte magic.
  bytes[8] = static_cast<char>(kCheckpointVersion + 1);
  const std::uint32_t crc = util::crc32c(bytes.data(), bytes.size() - 4);
  for (int i = 0; i < 4; ++i)
    bytes[bytes.size() - 4 + i] = static_cast<char>((crc >> (8 * i)) & 0xff);
  ShardState out;
  std::string err;
  EXPECT_FALSE(decode_checkpoint(bytes, &out, &err));
  EXPECT_NE(err.find("version"), std::string::npos) << err;
}

// Semantically inconsistent states survive encoding (the encoder is a plain
// serializer) but must never survive decoding — each case below corrupts
// one invariant the decoder owns.
TEST(Checkpoint, SemanticValidationRejectsInconsistentStates) {
  const auto rejects = [](ShardState s, const char* what) {
    ShardState out;
    std::string err;
    EXPECT_FALSE(decode_checkpoint(encode_checkpoint(s), &out, &err)) << what;
    EXPECT_FALSE(err.empty()) << what;
  };

  {
    ShardState s = sample_state();
    s.useful_pool = {11, 3};  // out of order
    rejects(s, "non-increasing useful pool");
  }
  {
    ShardState s = sample_state();
    s.useful_pool = {3, 40};  // == pool_size
    rejects(s, "useful-pool index past the pool");
  }
  {
    ShardState s = sample_state();
    s.status.pop_back();  // no longer matches assigned_count
    rejects(s, "status size vs assigned partition");
  }
  {
    ShardState s = sample_state();
    s.phase = static_cast<ShardPhase>(9);
    rejects(s, "phase out of range");
  }
  {
    ShardState s = sample_state();
    s.shard_index = 3;  // == shard_count (also breaks status size)
    rejects(s, "shard index past shard count");
  }
  {
    ShardState s = sample_state();
    std::swap(s.det_tests[0], s.det_tests[1]);  // local_index out of order
    rejects(s, "det tests out of order");
  }
  {
    ShardState s = sample_state();
    s.det_tests[0].local_index = 6;  // status[6] is kRandomDetected
    rejects(s, "det test for a non-test-found fault");
  }
  {
    ShardState s = sample_state();
    s.det_tests[2].local_index = 25;  // status[25] is kSatUntestable
    rejects(s, "det test for a sat-untestable fault");
  }
  {
    ShardState s = sample_state();
    s.status[0] = static_cast<FaultStatus>(9);  // past kSatUnknown
    rejects(s, "status byte out of range");
  }
  {
    ShardState s = sample_state();
    s.local_matrix.covered_count += 1;
    rejects(s, "matrix covered-count mismatch");
  }
  {
    ShardState s = sample_state();
    s.local_matrix.words_per_row += 1;
    s.local_matrix.rows.resize(s.local_matrix.n_tests *
                               s.local_matrix.words_per_row);
    rejects(s, "words_per_row inconsistent with fault count");
  }
}

TEST(Checkpoint, AtomicSaveLoadRoundTrip) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "obd_ckpt_test";
  fs::create_directories(dir);
  const ShardState s = sample_state();
  const std::string path = checkpoint_path(dir.string(), 1);

  std::string err;
  ASSERT_TRUE(save_checkpoint(path, s, &err)) << err;
  // The atomic-write temp file must not linger after a successful commit.
  EXPECT_FALSE(fs::exists(path + ".tmp"));

  ShardState back;
  ASSERT_TRUE(load_checkpoint(path, &back, &err)) << err;
  expect_states_equal(s, back);

  EXPECT_FALSE(load_checkpoint((dir / "absent.ckpt").string(), &back, &err));
  EXPECT_FALSE(err.empty());
  fs::remove_all(dir);
}

TEST(Checkpoint, PathIsStableAndZeroPadded) {
  EXPECT_EQ(checkpoint_path("/tmp/x", 0), "/tmp/x/shard-0000.ckpt");
  EXPECT_EQ(checkpoint_path("/tmp/x", 37), "/tmp/x/shard-0037.ckpt");
}

TEST(Checkpoint, AssignedCountCoversEveryFaultExactlyOnce) {
  for (const std::uint64_t n_reps : {0ull, 1ull, 7ull, 64ull, 1001ull}) {
    for (const std::uint32_t count : {1u, 2u, 3u, 8u, 13u}) {
      std::size_t total = 0;
      for (std::uint32_t i = 0; i < count; ++i)
        total += ShardState::assigned_count(n_reps, i, count);
      EXPECT_EQ(total, n_reps) << n_reps << " reps over " << count;
    }
  }
}

TEST(Checkpoint, FingerprintSeparatesResultChangingOptions) {
  CampaignOptions opt;
  const std::uint64_t base = options_fingerprint(opt, "c432", 4);

  CampaignOptions o1 = opt;
  o1.seed ^= 1;
  EXPECT_NE(options_fingerprint(o1, "c432", 4), base);
  CampaignOptions o2 = opt;
  o2.max_backtracks += 1;
  EXPECT_NE(options_fingerprint(o2, "c432", 4), base);
  CampaignOptions o3 = opt;
  o3.random_patterns += 1;
  EXPECT_NE(options_fingerprint(o3, "c432", 4), base);
  CampaignOptions o4 = opt;
  o4.podem_time_budget_s = 1.5;
  EXPECT_NE(options_fingerprint(o4, "c432", 4), base);
  EXPECT_NE(options_fingerprint(opt, "c499", 4), base);
  EXPECT_NE(options_fingerprint(opt, "c432", 8), base);

  // Execution-shape options are deliberately NOT fingerprinted: a
  // checkpoint taken at 1 thread must resume at 8 (results are
  // bit-identical by the scheduler's contract).
  CampaignOptions o5 = opt;
  o5.sim.threads = 8;
  o5.compact = false;
  EXPECT_EQ(options_fingerprint(o5, "c432", 4), base);

  // SAT escalation options are also excluded by design: a PODEM-only
  // checkpoint must resume with --sat-escalate as a pure top-off over its
  // recorded backtrack aborts.
  CampaignOptions o6 = opt;
  o6.sat_escalate = true;
  o6.sat_conflict_budget = 7;
  EXPECT_EQ(options_fingerprint(o6, "c432", 4), base);
}

TEST(Checkpoint, MatchesRejectsEveryIdentityMismatch) {
  CampaignOptions opt;
  const std::string circuit = "c432";
  ShardState s;
  s.circuit = circuit;
  s.shard_index = 1;
  s.shard_count = 4;
  s.n_reps_total = 500;
  s.pool_size = 2048;
  s.options_fp = options_fingerprint(opt, circuit, 4);
  s.prng_state = util::Prng(opt.seed).state();

  std::string err;
  EXPECT_TRUE(checkpoint_matches(s, opt, circuit, 1, 4, 500, 2048, &err))
      << err;

  const auto fails = [&](auto mutate, const char* what) {
    ShardState m = s;
    CampaignOptions o = opt;
    mutate(m, o);
    std::string e;
    EXPECT_FALSE(checkpoint_matches(m, o, circuit, 1, 4, 500, 2048, &e))
        << what;
    EXPECT_FALSE(e.empty()) << what;
  };
  fails([](ShardState& m, CampaignOptions&) { m.circuit = "c499"; },
        "wrong circuit");
  fails([](ShardState& m, CampaignOptions&) { m.shard_index = 2; },
        "wrong shard index");
  fails([](ShardState& m, CampaignOptions&) { m.shard_count = 8; },
        "wrong shard count");
  fails([](ShardState&, CampaignOptions& o) { o.seed ^= 0x10; },
        "different seed (fingerprint)");
  fails([](ShardState& m, CampaignOptions&) { m.n_reps_total = 501; },
        "wrong fault-list size");
  fails([](ShardState& m, CampaignOptions&) { m.pool_size = 1024; },
        "wrong pool size");
  fails([](ShardState& m, CampaignOptions&) { m.prng_state[2] ^= 1; },
        "tampered prng state");
}

}  // namespace
}  // namespace obd::flow

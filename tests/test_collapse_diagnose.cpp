// Fault collapsing and dictionary diagnosis.
#include <gtest/gtest.h>

#include "atpg/collapse.hpp"
#include "atpg/diagnose.hpp"
#include "atpg/twoframe.hpp"
#include "logic/zoo.hpp"

namespace obd::atpg {
namespace {

using logic::Circuit;
using logic::GateType;

Circuit single_gate(GateType t) {
  Circuit c("g");
  std::vector<logic::NetId> ins;
  for (int i = 0; i < logic::gate_arity(t); ++i)
    ins.push_back(c.add_input("i" + std::to_string(i)));
  const auto o = c.net("o");
  c.add_gate(t, "g", ins, o);
  c.mark_output(o);
  return c;
}

TEST(Collapse, NandNmosPairCollapses) {
  const Circuit c = single_gate(GateType::kNand2);
  const auto faults = enumerate_obd_faults(c);  // N0 N1 P0 P1
  const CollapsedFaults cf = collapse_obd_faults(c, faults);
  // N0 == N1 (identical excitation sets), P0 and P1 distinct: 3 classes.
  EXPECT_EQ(cf.original_count, 4u);
  EXPECT_EQ(cf.representatives.size(), 3u);
  // The two NMOS faults share a class.
  std::size_t n0 = 99, n1 = 99;
  for (std::size_t i = 0; i < faults.size(); ++i) {
    if (!faults[i].transistor.pmos && faults[i].transistor.input == 0) n0 = i;
    if (!faults[i].transistor.pmos && faults[i].transistor.input == 1) n1 = i;
  }
  EXPECT_EQ(cf.class_of[n0], cf.class_of[n1]);
}

TEST(Collapse, Nand4NmosQuadCollapses) {
  const Circuit c = single_gate(GateType::kNand4);
  const auto faults = enumerate_obd_faults(c);  // 8 faults
  const CollapsedFaults cf = collapse_obd_faults(c, faults);
  EXPECT_EQ(cf.representatives.size(), 5u);  // 1 NMOS class + 4 PMOS
  EXPECT_NEAR(cf.reduction(), 3.0 / 8.0, 1e-12);
}

TEST(Collapse, GateEquivalenceMatchesDefinition) {
  const Circuit c = single_gate(GateType::kNand2);
  const auto faults = enumerate_obd_faults(c);
  for (const auto& a : faults)
    for (const auto& b : faults) {
      if (a.gate_index != b.gate_index) continue;
      const bool same_pol = a.transistor.pmos == b.transistor.pmos;
      const bool expected =
          (a.transistor == b.transistor) ||
          (same_pol && !a.transistor.pmos);  // NMOS pair equivalent
      EXPECT_EQ(gate_equivalent(c, a, b), expected);
    }
}

TEST(Collapse, EquivalentFaultsDetectedByExactlySameTests) {
  // The semantic guarantee behind collapsing, checked exhaustively.
  const Circuit c = logic::full_adder_sum_circuit();
  const auto faults = enumerate_obd_faults(c);
  const CollapsedFaults cf = collapse_obd_faults(c, faults);
  const auto pairs = all_ordered_pairs(3);
  for (const auto& t : pairs) {
    const auto det = simulate_obd(c, t, faults);
    for (std::size_t i = 0; i < faults.size(); ++i)
      for (std::size_t j = i + 1; j < faults.size(); ++j)
        if (cf.class_of[i] == cf.class_of[j])
          EXPECT_EQ(det[i], det[j])
              << fault_name(c, faults[i]) << " vs "
              << fault_name(c, faults[j]);
  }
}

TEST(Collapse, AtpgOnRepresentativesCoversAll) {
  const Circuit c = logic::full_adder_sum_circuit();
  const auto faults = enumerate_obd_faults(c);
  const CollapsedFaults cf = collapse_obd_faults(c, faults);
  EXPECT_LT(cf.representatives.size(), faults.size());
  const AtpgRun run = run_obd_atpg(c, cf.representatives);
  // Tests for representatives must cover every testable original fault.
  const AtpgRun full = run_obd_atpg(c, faults);
  const double cov = obd_coverage(c, run.tests, faults);
  EXPECT_NEAR(cov, static_cast<double>(full.found) /
                       static_cast<double>(faults.size()),
              1e-12);
}

// --- Diagnosis ----------------------------------------------------------------

TEST(Diagnose, SingleNandPerfectPmosResolution) {
  const Circuit c = single_gate(GateType::kNand2);
  const auto faults = enumerate_obd_faults(c);
  const ObdDictionary dict(c, all_ordered_pairs(2), faults);
  // P0 and P1 have disjoint syndromes; N0/N1 share one. 3 distinct
  // syndromes over 4 detectable faults.
  EXPECT_NEAR(dict.resolution(), 3.0 / 4.0, 1e-12);
}

TEST(Diagnose, ExactCandidatesRoundTrip) {
  const Circuit c = logic::c17();
  const auto faults = enumerate_obd_faults(c);
  const ObdDictionary dict(c, all_ordered_pairs(5), faults);
  for (std::size_t f = 0; f < faults.size(); ++f) {
    const auto cands = dict.exact_candidates(dict.syndrome(f));
    // The fault itself must be among its own syndrome's candidates.
    EXPECT_NE(std::find(cands.begin(), cands.end(), f), cands.end());
    // And every candidate shares the syndrome.
    for (std::size_t cand : cands)
      EXPECT_EQ(dict.syndrome(cand), dict.syndrome(f));
  }
}

TEST(Diagnose, ObdDictionarySharperThanGateLevelAmbiguity) {
  // Input-specific excitation gives sub-gate resolution: the mean candidate
  // set must be smaller than "all faults of the same gate" (4 for NAND2).
  const Circuit c = logic::c17();
  const auto faults = enumerate_obd_faults(c);
  const ObdDictionary dict(c, all_ordered_pairs(5), faults);
  EXPECT_LT(dict.mean_ambiguity(), 4.0);
  EXPECT_GE(dict.mean_ambiguity(), 1.0);
}

TEST(Diagnose, MoreTestsNeverHurtResolution) {
  const Circuit c = logic::full_adder_sum_circuit();
  const auto faults = enumerate_obd_faults(c);
  const auto all = all_ordered_pairs(3);
  const std::vector<TwoVectorTest> few(all.begin(), all.begin() + 10);
  const ObdDictionary small(c, few, faults);
  const ObdDictionary big(c, all, faults);
  EXPECT_GE(big.resolution() + 1e-12, small.resolution());
}

}  // namespace
}  // namespace obd::atpg

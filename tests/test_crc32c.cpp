// CRC-32C (Castagnoli) known-answer vectors and incremental-API identity.
//
// The checkpoint frame depends on this implementation matching the
// published polynomial exactly — the known vectors below are the ones
// every conforming implementation (RFC 3720 appendix, SSE4.2 crc32
// instruction) reproduces.
#include "util/crc32c.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "util/prng.hpp"

namespace obd::util {
namespace {

TEST(Crc32c, KnownAnswerVectors) {
  EXPECT_EQ(crc32c(std::string_view{}), 0x00000000u);
  EXPECT_EQ(crc32c("a"), 0xC1D04330u);
  EXPECT_EQ(crc32c("abc"), 0x364B3FB7u);
  EXPECT_EQ(crc32c("123456789"), 0xE3069283u);  // the classic check value
  EXPECT_EQ(crc32c("The quick brown fox jumps over the lazy dog"),
            0x22620404u);
}

TEST(Crc32c, ThirtyTwoZeroBytes) {
  // iSCSI known vector: 32 bytes of zeros.
  const std::string zeros(32, '\0');
  EXPECT_EQ(crc32c(zeros), 0x8A9136AAu);
}

TEST(Crc32c, IncrementalMatchesOneShot) {
  Prng prng(0xc5c5c5ull);
  std::string data(997, '\0');
  for (char& c : data) c = static_cast<char>(prng.next_u64() & 0xff);
  const std::uint32_t whole = crc32c(data);

  // Every split point, including degenerate empty chunks.
  for (const std::size_t cut : {std::size_t{0}, std::size_t{1},
                                std::size_t{13}, std::size_t{996},
                                data.size()}) {
    Crc32c inc;
    inc.update(std::string_view(data).substr(0, cut));
    inc.update(std::string_view(data).substr(cut));
    EXPECT_EQ(inc.value(), whole) << "split at " << cut;
  }

  // Byte-at-a-time.
  Crc32c inc;
  for (const char c : data) inc.update(&c, 1);
  EXPECT_EQ(inc.value(), whole);
}

TEST(Crc32c, ResetRestartsTheStream) {
  Crc32c c;
  c.update("garbage");
  c.reset();
  c.update("123456789");
  EXPECT_EQ(c.value(), 0xE3069283u);
}

TEST(Crc32c, EverySingleByteChangeChangesTheValue) {
  // CRC-32C detects all single-byte errors — the property the checkpoint
  // robustness tests lean on.
  std::string data = "obd checkpoint frame witness";
  const std::uint32_t base = crc32c(data);
  for (std::size_t i = 0; i < data.size(); ++i) {
    std::string mutated = data;
    mutated[i] = static_cast<char>(mutated[i] ^ 0xA5);
    EXPECT_NE(crc32c(mutated), base) << "byte " << i;
  }
}

}  // namespace
}  // namespace obd::util

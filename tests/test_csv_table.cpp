#include <gtest/gtest.h>

#include "util/csv.hpp"
#include "util/table.hpp"

namespace obd::util {
namespace {

TEST(Csv, HeaderAndRows) {
  CsvWriter csv;
  csv.set_header({"a", "b"});
  csv.add_row({std::string("1"), std::string("2")});
  csv.add_row(std::vector<double>{3.5, 4.25});
  EXPECT_EQ(csv.to_string(), "a,b\n1,2\n3.5,4.25\n");
}

TEST(Csv, QuotingCommasAndQuotes) {
  CsvWriter csv;
  csv.add_row({std::string("x,y"), std::string("say \"hi\"")});
  EXPECT_EQ(csv.to_string(), "\"x,y\",\"say \"\"hi\"\"\"\n");
}

TEST(Csv, WriteTracesCsvResamplesAllTraces) {
  Waveform a("a");
  Waveform b("b");
  for (int i = 0; i <= 10; ++i) {
    a.append(i, i);
    b.append(i, 10 - i);
  }
  const std::string path = testing::TempDir() + "/traces.csv";
  ASSERT_TRUE(write_traces_csv(path, {&a, &b}, 11));
  FILE* f = fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char line[256];
  ASSERT_NE(fgets(line, sizeof line, f), nullptr);
  EXPECT_STREQ(line, "time,a,b\n");
  int rows = 0;
  while (fgets(line, sizeof line, f) != nullptr) ++rows;
  fclose(f);
  EXPECT_EQ(rows, 11);
}

TEST(Csv, WriteTracesCsvRejectsEmpty) {
  EXPECT_FALSE(write_traces_csv(testing::TempDir() + "/none.csv", {}));
}

TEST(AsciiTable, AlignsColumns) {
  AsciiTable t("Title");
  t.set_header({"col", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "22"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("Title"), std::string::npos);
  EXPECT_NE(s.find("| col    | value |"), std::string::npos);
  EXPECT_NE(s.find("| longer | 22    |"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(FormatTimeEng, PicksEngineeringSuffix) {
  EXPECT_EQ(format_time_eng(96e-12), "96ps");
  EXPECT_EQ(format_time_eng(1.5e-9), "1.5ns");
  EXPECT_EQ(format_time_eng(2.0), "2s");
  EXPECT_EQ(format_time_eng(0.0), "0s");
  EXPECT_EQ(format_time_eng(3.6e-6), "3.6us");
}

TEST(FormatG, Precision) {
  EXPECT_EQ(format_g(3.14159, 3), "3.14");
  EXPECT_EQ(format_g(1e-30, 2), "1e-30");
}

}  // namespace
}  // namespace obd::util

// DC analyses against hand-computable circuits.
#include <gtest/gtest.h>

#include <cmath>

#include "spice/spice.hpp"

namespace obd::spice {
namespace {

TEST(DcOp, VoltageDivider) {
  Netlist nl;
  const NodeId vin = nl.node("in");
  const NodeId mid = nl.node("mid");
  nl.add_vsource("V1", vin, kGround, SourceWave::make_dc(3.0));
  nl.add_resistor("R1", vin, mid, 1000.0);
  nl.add_resistor("R2", mid, kGround, 2000.0);
  const DcResult r = dc_operating_point(nl, SolverOptions{});
  ASSERT_EQ(r.status, SolveStatus::kOk);
  EXPECT_NEAR(r.voltage(mid), 2.0, 1e-6);
}

TEST(DcOp, CurrentSourceIntoResistor) {
  Netlist nl;
  const NodeId n = nl.node("n");
  // 1 mA injected into n (flows from ground through source into n).
  nl.add_isource("I1", kGround, n, SourceWave::make_dc(1e-3));
  nl.add_resistor("R1", n, kGround, 4700.0);
  const DcResult r = dc_operating_point(nl, SolverOptions{});
  ASSERT_EQ(r.status, SolveStatus::kOk);
  EXPECT_NEAR(r.voltage(n), 4.7, 1e-6);
}

TEST(DcOp, SeriesVoltageSourcesAndBranchCurrents) {
  Netlist nl;
  const NodeId a = nl.node("a");
  const NodeId b = nl.node("b");
  nl.add_vsource("V1", a, kGround, SourceWave::make_dc(1.0));
  nl.add_vsource("V2", b, a, SourceWave::make_dc(2.0));
  nl.add_resistor("R1", b, kGround, 1000.0);
  const DcResult r = dc_operating_point(nl, SolverOptions{});
  ASSERT_EQ(r.status, SolveStatus::kOk);
  EXPECT_NEAR(r.voltage(b), 3.0, 1e-9);
  // Both sources carry the same 3 mA loop current.
  const std::size_t nv = nl.num_nodes() - 1;
  EXPECT_NEAR(std::abs(r.x[nv + 0]), 3e-3, 1e-9);
  EXPECT_NEAR(std::abs(r.x[nv + 1]), 3e-3, 1e-9);
}

TEST(DcOp, DiodeResistorForwardDrop) {
  Netlist nl;
  const NodeId vin = nl.node("in");
  const NodeId mid = nl.node("mid");
  nl.add_vsource("V1", vin, kGround, SourceWave::make_dc(3.0));
  nl.add_resistor("R1", vin, mid, 1000.0);
  DiodeParams dp;
  dp.isat = 1e-14;
  nl.add_diode("D1", mid, kGround, dp);
  const DcResult r = dc_operating_point(nl, SolverOptions{});
  ASSERT_EQ(r.status, SolveStatus::kOk);
  const double vd = r.voltage(mid);
  EXPECT_GT(vd, 0.5);
  EXPECT_LT(vd, 0.8);
  // KCL cross-check: resistor current equals diode current.
  const double ir = (3.0 - vd) / 1000.0;
  const double id = 1e-14 * std::expm1(vd / dp.vt);
  EXPECT_NEAR(ir, id, ir * 1e-3);
}

TEST(DcOp, DiodeReverseBlocks) {
  Netlist nl;
  const NodeId vin = nl.node("in");
  const NodeId mid = nl.node("mid");
  nl.add_vsource("V1", vin, kGround, SourceWave::make_dc(-3.0));
  nl.add_resistor("R1", vin, mid, 1000.0);
  DiodeParams dp;
  nl.add_diode("D1", mid, kGround, dp);
  const DcResult r = dc_operating_point(nl, SolverOptions{});
  ASSERT_EQ(r.status, SolveStatus::kOk);
  EXPECT_NEAR(r.voltage(mid), -3.0, 1e-3);  // nearly all drop across diode
}

TEST(DcOp, FloatingNodeHandledByGmin) {
  Netlist nl;
  const NodeId a = nl.node("a");
  const NodeId b = nl.node("b");
  nl.add_vsource("V1", a, kGround, SourceWave::make_dc(1.0));
  nl.add_capacitor("C1", a, b, 1e-12);  // b floats at DC
  const DcResult r = dc_operating_point(nl, SolverOptions{});
  ASSERT_EQ(r.status, SolveStatus::kOk);
  EXPECT_NEAR(r.voltage(b), 0.0, 1e-6);
}

MosfetParams simple_nmos() {
  MosfetParams p;
  p.vt0 = 0.55;
  p.kp = 170e-6;
  p.w = 1e-6;
  p.l = 0.35e-6;
  p.lambda = 0.05;
  return p;
}

TEST(DcOp, NmosCommonSource) {
  // NMOS with drain resistor: check against the analytic triode solution.
  Netlist nl;
  const NodeId vdd = nl.node("vdd");
  const NodeId d = nl.node("d");
  const NodeId g = nl.node("g");
  nl.add_vsource("Vdd", vdd, kGround, SourceWave::make_dc(3.3));
  nl.add_vsource("Vg", g, kGround, SourceWave::make_dc(3.3));
  nl.add_resistor("Rd", vdd, d, 10000.0);
  nl.add_mosfet("M1", d, g, kGround, kGround, simple_nmos());
  const DcResult r = dc_operating_point(nl, SolverOptions{});
  ASSERT_EQ(r.status, SolveStatus::kOk);
  const double vds = r.voltage(d);
  // Strongly driven, big resistor: should sit deep in triode (low vds).
  EXPECT_LT(vds, 0.3);
  EXPECT_GT(vds, 0.0);
}

TEST(DcOp, CmosInverterRails) {
  Netlist nl;
  const NodeId vdd = nl.node("vdd");
  const NodeId in = nl.node("in");
  const NodeId out = nl.node("out");
  nl.add_vsource("Vdd", vdd, kGround, SourceWave::make_dc(3.3));
  VoltageSource* vin = nl.add_vsource("Vin", in, kGround, SourceWave::make_dc(0.0));
  MosfetParams pn = simple_nmos();
  MosfetParams pp = simple_nmos();
  pp.pmos = true;
  pp.kp = 60e-6;
  pp.w = 2e-6;
  nl.add_mosfet("MN", out, in, kGround, kGround, pn);
  nl.add_mosfet("MP", out, in, vdd, vdd, pp);

  // Input low -> output at VDD.
  DcResult r = dc_operating_point(nl, SolverOptions{});
  ASSERT_EQ(r.status, SolveStatus::kOk);
  EXPECT_NEAR(r.voltage(out), 3.3, 1e-2);

  // Input high -> output at 0.
  vin->set_wave(SourceWave::make_dc(3.3));
  r = dc_operating_point(nl, SolverOptions{});
  ASSERT_EQ(r.status, SolveStatus::kOk);
  EXPECT_NEAR(r.voltage(out), 0.0, 1e-2);
}

TEST(DcSweep, InverterVtcIsMonotoneFalling) {
  Netlist nl;
  const NodeId vdd = nl.node("vdd");
  const NodeId in = nl.node("in");
  const NodeId out = nl.node("out");
  nl.add_vsource("Vdd", vdd, kGround, SourceWave::make_dc(3.3));
  nl.add_vsource("Vin", in, kGround, SourceWave::make_dc(0.0));
  MosfetParams pn = simple_nmos();
  MosfetParams pp = simple_nmos();
  pp.pmos = true;
  pp.kp = 60e-6;
  pp.w = 2e-6;
  nl.add_mosfet("MN", out, in, kGround, kGround, pn);
  nl.add_mosfet("MP", out, in, vdd, vdd, pp);

  const DcSweepResult sw =
      dc_sweep(nl, "Vin", 0.0, 3.3, 0.05, {"out"}, SolverOptions{});
  ASSERT_EQ(sw.status, SolveStatus::kOk);
  const util::Waveform* vtc = sw.traces.find("out");
  ASSERT_NE(vtc, nullptr);
  ASSERT_GT(vtc->size(), 10u);
  EXPECT_NEAR(vtc->value(0), 3.3, 0.02);
  EXPECT_NEAR(vtc->final_value(), 0.0, 0.02);
  for (std::size_t i = 1; i < vtc->size(); ++i)
    EXPECT_LE(vtc->value(i), vtc->value(i - 1) + 1e-6) << "at index " << i;
}

TEST(DcSweep, MissingSourceReported) {
  Netlist nl;
  nl.add_resistor("R1", nl.node("a"), kGround, 1.0);
  const DcSweepResult sw =
      dc_sweep(nl, "nosuch", 0.0, 1.0, 0.1, {"a"}, SolverOptions{});
  EXPECT_NE(sw.status, SolveStatus::kOk);
}

}  // namespace
}  // namespace obd::spice

// Cross-block good-eval delta propagation: the --delta-goods acceptance
// bar.
//
// Delta mode is a pure throughput knob — the engine keeps the previous
// block's good values resident and re-evaluates only the cones of changed
// PIs, so every detection bit must match the full-evaluation engine
// exactly. These tests pin that contract three ways: legacy-reference
// oracle sweeps on the zoo, matrix bit-identity on the ISCAS corpus
// (c2670/c7552, where cones are deep enough to exercise the fence walk),
// and end-to-end campaign matrix_hash invariance across threads, lane
// widths, shard counts, and the grey block ordering.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "atpg/atpg.hpp"
#include "atpg/diagnose.hpp"
#include "flow/campaign.hpp"
#include "flow/supervisor.hpp"
#include "io/bench.hpp"
#include "oracle_common.hpp"

namespace obd::atpg {
namespace {

using logic::Circuit;

std::string corpus(const std::string& file) {
  return std::string(OBD_CORPUS_DIR) + "/" + file;
}

Circuit load_prim(const std::string& file) {
  const io::BenchParseResult p = io::load_bench_file(corpus(file));
  EXPECT_TRUE(p.ok) << file << ": " << p.error;
  const Circuit view =
      p.seq.flops().empty() ? p.circuit() : p.seq.scan_view();
  return logic::decompose_composites(view);
}

/// Delta/grey engine configurations swept against the legacy scalar
/// reference: lane widths 1/2/4/8 words x threads 1/2/4 x packings, each
/// with delta propagation forced on or in auto mode, plus grey ordering.
std::vector<SimOptions> delta_configs() {
  using D = DeltaGoods;
  return {// SimOptions: {threads, packing, cone_cache_bytes, lane_words,
          //              block_batch, delta_goods, grey_order}
          {1, SimPacking::kPatternMajor, 0, 1, 0, D::kOn},
          {1, SimPacking::kPatternMajor, 0, 2, 0, D::kOn},
          {1, SimPacking::kPatternMajor, 0, 4, 0, D::kOn},
          {1, SimPacking::kPatternMajor, 0, 8, 0, D::kOn},
          {2, SimPacking::kPatternMajor, 0, 1, 0, D::kOn},
          {2, SimPacking::kPatternMajor, 0, 4, 0, D::kOn},
          {4, SimPacking::kPatternMajor, 0, 2, 0, D::kOn},
          {4, SimPacking::kPatternMajor, 0, 8, 0, D::kOn},
          {1, SimPacking::kFaultMajor, 0, 1, 0, D::kOn},
          {2, SimPacking::kFaultMajor, 0, 4, 0, D::kOn},
          {1, SimPacking::kPatternMajor, 0, 1, 0, D::kAuto},
          {4, SimPacking::kPatternMajor, 0, 4, 0, D::kAuto},
          {1, SimPacking::kPatternMajor, 0, 2, 0, D::kOn, true},
          {2, SimPacking::kPatternMajor, 0, 4, 0, D::kAuto, true},
          {4, SimPacking::kPatternMajor, 0, 1, 2, D::kOn, true}};
}

TEST(DeltaGoods, OracleSweepZoo) {
  for (const Circuit& c : oracle::zoo())
    oracle::sweep_matrices(c, 96, 0xde17a ^ c.num_gates(), delta_configs());
}

TEST(DeltaGoods, CampaignSweepZoo) {
  // Fault-dropping campaigns reconcile per round; the per-worker resident
  // goods must not leak detection state across drop rounds.
  oracle::sweep_campaigns(logic::ripple_carry_adder(4), 128, 0xde17a, true);
  oracle::sweep_campaigns(logic::random_circuit(8, 60, 6, 0xfeed), 128,
                          0x900d5, true);
}

/// Matrix bit-identity on one ISCAS circuit: delta on/auto/grey against
/// the full-evaluation baseline.
void sweep_corpus(const std::string& file, int n_tests) {
  const Circuit c = load_prim(file);
  const auto faults = enumerate_obd_faults(c);
  const auto tests =
      random_pairs(static_cast<int>(c.inputs().size()), n_tests, 0xde17a);

  FaultSimScheduler base(c, {1, SimPacking::kPatternMajor});
  const DetectionMatrix ref = base.matrix_obd(tests, faults);
  EXPECT_GT(ref.covered_count, 0) << file;

  using D = DeltaGoods;
  for (const SimOptions& o : std::vector<SimOptions>{
           {1, SimPacking::kPatternMajor, 0, 1, 0, D::kOn},
           {1, SimPacking::kPatternMajor, 0, 4, 0, D::kOn},
           {2, SimPacking::kPatternMajor, 0, 8, 0, D::kOn},
           {4, SimPacking::kPatternMajor, 0, 4, 0, D::kAuto},
           {1, SimPacking::kPatternMajor, 0, 4, 0, D::kOn, true},
           {2, SimPacking::kPatternMajor, 0, 8, 0, D::kAuto, true},
       }) {
    FaultSimScheduler sched(c, o);
    oracle::expect_matrices_identical(ref, sched.matrix_obd(tests, faults),
                                      c.name() + " " + oracle::config_name(o));
  }
}

TEST(DeltaGoods, C2670MatrixIdentical) { sweep_corpus("c2670.bench", 192); }

TEST(DeltaGoods, C7552MatrixIdentical) { sweep_corpus("c7552.bench", 192); }

TEST(DeltaGoods, CorrelatedStreamTakesDeltaPath) {
  // Delta propagation diffs whole per-PI lane words block to block, so a
  // "correlated stream" is one where consecutive 64-test blocks repeat the
  // low PIs' bit pattern and walk only the high PIs in Gray order: exactly
  // one PI word changes per block boundary. With delta on the engine must
  // serve those blocks from the delta walk; an uncorrelated random stream
  // must trip kAuto's changed-PI-cone guard instead.
  const Circuit c = logic::array_multiplier(4);
  const int n_pi = static_cast<int>(c.inputs().size());
  ASSERT_GE(n_pi, 8);
  std::vector<TwoVectorTest> tests;
  for (int i = 0; i < 256; ++i) {
    const unsigned low = static_cast<unsigned>(i) & 63u;  // repeats per block
    const unsigned blk = static_cast<unsigned>(i) >> 6;
    const unsigned grey = blk ^ (blk >> 1);
    TwoVectorTest t;
    for (int b = 0; b < 6; ++b) {
      t.v1.set_bit(static_cast<std::size_t>(b), ((low >> b) & 1u) != 0);
      t.v2.set_bit(static_cast<std::size_t>(b), ((low >> b) & 1u) != 0);
    }
    for (int b = 0; b < 2; ++b) {
      t.v1.set_bit(static_cast<std::size_t>(6 + b), ((grey >> b) & 1u) != 0);
      t.v2.set_bit(static_cast<std::size_t>(6 + b), ((grey >> b) & 1u) != 0);
    }
    tests.push_back(t);
  }
  const auto faults = enumerate_obd_faults(c);

  FaultSimEngine off(c, {0, 1, DeltaGoods::kOff});
  FaultSimEngine on(c, {0, 1, DeltaGoods::kOn});
  const auto ref = off.campaign_obd(tests, faults, false);
  const auto got = on.campaign_obd(tests, faults, false);
  EXPECT_EQ(ref.first_test, got.first_test);
  EXPECT_EQ(ref.detected, got.detected);
  EXPECT_EQ(off.delta_good_evals(), 0);
  EXPECT_GT(on.delta_good_evals(), 0);

  // kAuto on the same correlated stream also takes the delta path…
  FaultSimEngine aut(c, {0, 1, DeltaGoods::kAuto});
  const auto got_auto = aut.campaign_obd(tests, faults, false);
  EXPECT_EQ(ref.first_test, got_auto.first_test);
  EXPECT_EQ(ref.detected, got_auto.detected);
  EXPECT_GT(aut.delta_good_evals(), 0);

  // …but an uncorrelated random stream trips its changed-PI-cone guard.
  const auto noisy =
      random_pairs(n_pi, 256, 0xbad5eed);
  FaultSimEngine aut2(c, {0, 1, DeltaGoods::kAuto});
  aut2.campaign_obd(noisy, faults, false);
  EXPECT_GT(aut2.delta_full_fallbacks(), 0);
}

/// End-to-end witness: the campaign matrix_hash — what the CLI prints for
/// --delta-goods — is invariant over delta mode x threads x lane width.
void sweep_campaign_hash(const std::string& file) {
  const io::BenchParseResult p = io::load_bench_file(corpus(file));
  ASSERT_TRUE(p.ok) << p.error;
  flow::CampaignOptions opt;
  opt.model = flow::FaultModel::kObd;
  opt.random_patterns = 256;
  flow::CampaignReport base;
  bool first = true;
  for (const DeltaGoods d :
       {DeltaGoods::kOff, DeltaGoods::kOn, DeltaGoods::kAuto}) {
    for (const int threads : {1, 2, 4}) {
      for (const int lane_words : {1, 4, 8}) {
        opt.sim.delta_goods = d;
        opt.sim.threads = threads;
        opt.sim.lane_words = lane_words;
        const flow::CampaignReport r = flow::run_campaign(p.seq, opt);
        ASSERT_TRUE(r.ok()) << r.error;
        if (first) {
          base = r;
          first = false;
          continue;
        }
        const std::string label = file + " delta=" + to_string(d) + " " +
                                  std::to_string(threads) + "t/" +
                                  std::to_string(64 * lane_words) + "l";
        EXPECT_EQ(r.matrix_hash, base.matrix_hash) << label;
        EXPECT_EQ(r.detected, base.detected) << label;
        EXPECT_EQ(r.tests_final, base.tests_final) << label;
      }
    }
  }
}

TEST(DeltaGoods, C2670CampaignHashInvariant) {
  sweep_campaign_hash("c2670.bench");
}

TEST(DeltaGoods, ShardedCampaignHashInvariant) {
  const io::BenchParseResult p = io::load_bench_file(corpus("c2670.bench"));
  ASSERT_TRUE(p.ok) << p.error;
  flow::CampaignOptions opt;
  opt.model = flow::FaultModel::kObd;
  opt.random_patterns = 256;
  opt.max_backtracks = 5000;
  const flow::CampaignReport base = flow::run_campaign(p.seq, opt);
  ASSERT_TRUE(base.ok()) << base.error;
  ASSERT_NE(base.matrix_hash, 0u);

  int n = 0;
  for (const DeltaGoods d : {DeltaGoods::kOff, DeltaGoods::kOn}) {
    for (const int shards : {1, 4}) {
      flow::SupervisorOptions sup;
      const auto dir = std::filesystem::temp_directory_path() /
                       ("obd_delta_shard_" + std::to_string(n++));
      std::filesystem::remove_all(dir);
      sup.checkpoint_dir = dir.string();
      sup.shards = shards;
      sup.in_process = true;
      opt.sim.delta_goods = d;
      const flow::SupervisorResult res =
          flow::run_supervised_campaign(p.seq, opt, sup);
      const std::string label = std::string("delta=") + to_string(d) + " " +
                                std::to_string(shards) + " shards";
      ASSERT_TRUE(res.report.ok()) << label << ": " << res.report.error;
      EXPECT_EQ(res.report.matrix_hash, base.matrix_hash) << label;
      EXPECT_EQ(res.report.detected, base.detected) << label;
      std::filesystem::remove_all(dir);
    }
  }
}

TEST(DeltaGoods, BatchAwareSerialThreshold) {
  // The serial-threshold product must include the block batch: batched
  // rounds do batch x blocks x gates of work, so a shape that is
  // sub-threshold per block can still be worth fanning out.
  const Circuit big = logic::array_multiplier(6);  // 444 gates
  FaultSimScheduler plain(big, {4, SimPacking::kPatternMajor});
  EXPECT_EQ(plain.pattern_workers(8), 1);  // 444 x 8 x 1: sub-threshold
  FaultSimScheduler batched(big, {4, SimPacking::kPatternMajor, 0, 1, 4});
  EXPECT_EQ(batched.pattern_workers(8), 4);  // 444 x 8 x 1 x 4 crosses it
}

TEST(DeltaGoods, PruneUntestableDropsByIndex) {
  const Circuit c = logic::c17();
  const auto faults = enumerate_obd_faults(c);
  ASSERT_GE(faults.size(), 4u);
  const auto kept = prune_untestable(
      faults, {1, 3, static_cast<std::uint32_t>(faults.size() + 7)});
  ASSERT_EQ(kept.size(), faults.size() - 2);  // out-of-range index ignored
  EXPECT_EQ(kept[0].gate_index, faults[0].gate_index);
  EXPECT_EQ(kept[1].gate_index, faults[2].gate_index);
  for (std::size_t i = 2; i < kept.size(); ++i)
    EXPECT_EQ(kept[i].gate_index, faults[i + 2].gate_index);
}

}  // namespace
}  // namespace obd::atpg

// Device-physics unit tests: diode characteristic and MOSFET regions.
#include <gtest/gtest.h>

#include <cmath>

#include "spice/devices.hpp"
#include "spice/netlist.hpp"

namespace obd::spice {
namespace {

TEST(Diode, ForwardCurrentMatchesShockley) {
  Netlist nl;
  DiodeParams p;
  p.isat = 1e-14;
  const Diode* d = nl.add_diode("D1", nl.node("a"), nl.node("c"), p);
  const double v = 0.6;
  const double expected = 1e-14 * std::expm1(v / p.vt);
  EXPECT_NEAR(d->current(v), expected, expected * 1e-12);
}

TEST(Diode, ReverseCurrentSaturates) {
  Netlist nl;
  DiodeParams p;
  p.isat = 1e-14;
  const Diode* d = nl.add_diode("D1", nl.node("a"), nl.node("c"), p);
  EXPECT_NEAR(d->current(-1.0), -1e-14, 1e-20);
}

TEST(Diode, ExponentLimitingKeepsCurrentFinite) {
  Netlist nl;
  DiodeParams p;
  p.isat = 2e-24;  // HBD-scale saturation current from Table 1
  const Diode* d = nl.add_diode("D1", nl.node("a"), nl.node("c"), p);
  const double i = d->current(5.0);
  EXPECT_TRUE(std::isfinite(i));
  EXPECT_GT(i, 0.0);
  // Monotone beyond the limiting knee.
  EXPECT_GT(d->current(6.0), i);
}

TEST(Diode, TinyIsatGivesNegligibleCurrent) {
  // Fault-free OBD parameters (Isat = 1e-30) must behave as an open path.
  Netlist nl;
  DiodeParams p;
  p.isat = 1e-30;
  const Diode* d = nl.add_diode("D1", nl.node("a"), nl.node("c"), p);
  EXPECT_LT(d->current(0.5), 1e-21);
}

// --- MOSFET ----------------------------------------------------------------

MosfetParams nmos_params() {
  MosfetParams p;
  p.pmos = false;
  p.vt0 = 0.55;
  p.kp = 170e-6;
  p.w = 1e-6;
  p.l = 0.35e-6;
  p.lambda = 0.0;  // simpler checks without CLM
  return p;
}

TEST(Mosfet, CutoffNoCurrent) {
  Netlist nl;
  Mosfet* m = nl.add_mosfet("M1", nl.node("d"), nl.node("g"), nl.node("s"),
                            kGround, nmos_params());
  const auto op = m->evaluate(/*vd=*/1.0, /*vg=*/0.3, /*vs=*/0.0);
  EXPECT_DOUBLE_EQ(op.ids, 0.0);
  EXPECT_DOUBLE_EQ(op.gm, 0.0);
}

TEST(Mosfet, SaturationSquareLaw) {
  Netlist nl;
  const MosfetParams p = nmos_params();
  Mosfet* m = nl.add_mosfet("M1", nl.node("d"), nl.node("g"), nl.node("s"),
                            kGround, p);
  const double vgs = 2.0;
  const double vgst = vgs - p.vt0;
  const auto op = m->evaluate(/*vd=*/3.3, vgs, 0.0);  // vds > vgst
  const double expected = 0.5 * p.beta() * vgst * vgst;
  EXPECT_NEAR(op.ids, expected, expected * 1e-12);
  EXPECT_NEAR(op.gm, p.beta() * vgst, p.beta() * vgst * 1e-12);
}

TEST(Mosfet, TriodeRegion) {
  Netlist nl;
  const MosfetParams p = nmos_params();
  Mosfet* m = nl.add_mosfet("M1", nl.node("d"), nl.node("g"), nl.node("s"),
                            kGround, p);
  const double vgs = 3.3;
  const double vds = 0.1;  // deep triode
  const auto op = m->evaluate(vds, vgs, 0.0);
  const double vgst = vgs - p.vt0;
  const double expected = p.beta() * (vgst * vds - 0.5 * vds * vds);
  EXPECT_NEAR(op.ids, expected, expected * 1e-9);
}

TEST(Mosfet, DrainSourceSymmetry) {
  // Reversing the channel reverses the current exactly.
  Netlist nl;
  Mosfet* m = nl.add_mosfet("M1", nl.node("d"), nl.node("g"), nl.node("s"),
                            kGround, nmos_params());
  const auto fwd = m->evaluate(1.0, 3.3, 0.0);
  const auto rev = m->evaluate(0.0, 3.3, 1.0);  // vd < vs
  EXPECT_NEAR(fwd.ids, -rev.ids, std::abs(fwd.ids) * 1e-12);
}

TEST(Mosfet, PmosMirrorsNmos) {
  Netlist nl;
  MosfetParams pn = nmos_params();
  MosfetParams pp = pn;
  pp.pmos = true;
  Mosfet* mn = nl.add_mosfet("MN", nl.node("d1"), nl.node("g1"), nl.node("s1"),
                             kGround, pn);
  Mosfet* mp = nl.add_mosfet("MP", nl.node("d2"), nl.node("g2"), nl.node("s2"),
                             kGround, pp);
  // PMOS with source at 3.3, gate 0, drain 0: |vgs|=3.3, conducting, current
  // flows source->drain, i.e. ids (drain->source) is negative.
  const auto opp = mp->evaluate(/*vd=*/0.0, /*vg=*/0.0, /*vs=*/3.3);
  const auto opn = mn->evaluate(/*vd=*/3.3, /*vg=*/3.3, /*vs=*/0.0);
  EXPECT_NEAR(opp.ids, -opn.ids, std::abs(opn.ids) * 1e-12);
}

TEST(Mosfet, PmosOffWhenGateHigh) {
  Netlist nl;
  MosfetParams pp = nmos_params();
  pp.pmos = true;
  Mosfet* mp = nl.add_mosfet("MP", nl.node("d"), nl.node("g"), nl.node("s"),
                             kGround, pp);
  const auto op = mp->evaluate(0.0, 3.3, 3.3);
  EXPECT_DOUBLE_EQ(op.ids, 0.0);
}

TEST(Mosfet, ChannelLengthModulationIncreasesSatCurrent) {
  Netlist nl;
  MosfetParams p = nmos_params();
  p.lambda = 0.05;
  Mosfet* m = nl.add_mosfet("M1", nl.node("d"), nl.node("g"), nl.node("s"),
                            kGround, p);
  const auto lo = m->evaluate(2.0, 2.0, 0.0);
  const auto hi = m->evaluate(3.0, 2.0, 0.0);
  EXPECT_GT(hi.ids, lo.ids);
  EXPECT_GT(hi.gds, 0.0);
}

TEST(Netlist, NodeAliasesForGround) {
  Netlist nl;
  EXPECT_EQ(nl.node("0"), kGround);
  EXPECT_EQ(nl.node("gnd"), kGround);
  EXPECT_EQ(nl.node("GND"), kGround);
}

TEST(Netlist, NodeIdentityAndNames) {
  Netlist nl;
  const NodeId a = nl.node("alpha");
  EXPECT_EQ(nl.node("alpha"), a);
  EXPECT_EQ(nl.node_name(a), "alpha");
  EXPECT_EQ(nl.find_node("beta"), kInvalidNode);
  EXPECT_NE(nl.node("beta"), a);
}

TEST(Netlist, DeviceLookupByNameAndType) {
  Netlist nl;
  nl.add_resistor("R1", nl.node("a"), kGround, 100.0);
  nl.add_mosfet("M1", nl.node("d"), nl.node("g"), nl.node("s"), kGround,
                nmos_params());
  nl.add_vsource("V1", nl.node("a"), kGround, SourceWave::make_dc(1.0));
  EXPECT_NE(nl.find_device("R1"), nullptr);
  EXPECT_NE(nl.find_mosfet("M1"), nullptr);
  EXPECT_EQ(nl.find_mosfet("R1"), nullptr);
  EXPECT_NE(nl.find_vsource("V1"), nullptr);
  EXPECT_EQ(nl.find_vsource("M1"), nullptr);
  EXPECT_EQ(nl.find_device("nope"), nullptr);
}

TEST(Netlist, BranchAndStateAccounting) {
  Netlist nl;
  nl.add_vsource("V1", nl.node("a"), kGround, SourceWave::make_dc(1.0));
  nl.add_vsource("V2", nl.node("b"), kGround, SourceWave::make_dc(2.0));
  nl.add_capacitor("C1", nl.node("a"), kGround, 1e-12);
  nl.add_mosfet("M1", nl.node("d"), nl.node("g"), nl.node("s"), kGround,
                nmos_params());
  EXPECT_EQ(nl.num_branches(), 2u);
  EXPECT_EQ(nl.state_size(), 2u + 8u);
  // unknowns: nodes (a,b,d,g,s) + 2 branches
  EXPECT_EQ(nl.unknown_count(), 5u + 2u);
}

}  // namespace
}  // namespace obd::spice

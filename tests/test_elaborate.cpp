// Gate-to-transistor elaboration: spice agrees with logic evaluation.
#include <gtest/gtest.h>

#include "logic/elaborate.hpp"
#include "logic/zoo.hpp"
#include "spice/spice.hpp"

namespace obd::logic {
namespace {

TEST(Elaborate, TransistorNamesResolvable) {
  const Circuit c = c17();
  const cells::Technology tech = cells::Technology::default_350nm();
  Elaboration el(c, tech);
  for (std::size_t g = 0; g < c.num_gates(); ++g) {
    const std::string n =
        el.transistor_name(static_cast<int>(g), {false, 0});
    EXPECT_NE(el.netlist().find_mosfet(n), nullptr) << n;
  }
}

TEST(Elaborate, C17DcMatchesLogicOnAllVectors) {
  // End-to-end cross-validation of the whole stack: for every input vector
  // the transistor-level DC solution reproduces the boolean outputs.
  const Circuit c = c17();
  const cells::Technology tech = cells::Technology::default_350nm();
  for (std::uint64_t v = 0; v < 32; ++v) {
    Elaboration el(c, tech);
    el.set_two_vector(v, v, /*t_switch=*/1e-9);
    const spice::DcResult r =
        spice::dc_operating_point(el.netlist(), spice::SolverOptions{});
    ASSERT_EQ(r.status, spice::SolveStatus::kOk) << "v=" << v;
    const std::uint64_t expect = c.eval_outputs(v).u64();
    for (std::size_t o = 0; o < el.po_nodes().size(); ++o) {
      const spice::NodeId node = el.netlist().find_node(el.po_nodes()[o]);
      ASSERT_NE(node, spice::kInvalidNode);
      const double vo = r.voltage(node);
      if ((expect >> o) & 1u) {
        EXPECT_GT(vo, 0.9 * tech.vdd) << "v=" << v << " po=" << o;
      } else {
        EXPECT_LT(vo, 0.1 * tech.vdd) << "v=" << v << " po=" << o;
      }
    }
  }
}

TEST(Elaborate, FullAdderTransientSettlesToLogicValue) {
  const Circuit c = full_adder_sum_circuit();
  const cells::Technology tech = cells::Technology::default_350nm();
  Elaboration el(c, tech);
  // Transition 011 -> 111 (A rises with B=C=1): S goes 0 -> 1.
  el.set_two_vector(0b110, 0b111, 2e-9);
  spice::TransientOptions opt;
  opt.dt = 4e-12;
  const auto res = spice::transient(el.netlist(), 8e-9, opt, {"S"});
  ASSERT_EQ(res.status, spice::SolveStatus::kOk);
  const auto* s = res.trace("S");
  ASSERT_NE(s, nullptr);
  EXPECT_LT(s->at(1.8e-9), 0.1 * tech.vdd);
  EXPECT_GT(s->final_value(), 0.9 * tech.vdd);
}

}  // namespace
}  // namespace obd::logic

// Ties the shipped example netlists to CI, and checks the paper's Sec. 5
// generalization (input-specific PMOS excitation) at the *analog* level for
// a 3-input NAND.
#include <gtest/gtest.h>

#include "core/characterize.hpp"
#include "core/excitation.hpp"
#include "logic/netfmt.hpp"

namespace obd {
namespace {

TEST(ExampleNetlists, Majority3ComputesMajority) {
  const std::string text = R"(
.model majority3
.inputs a b c
.outputs out
.gate NAND2 x a b
.gate NAND2 y a c
.gate NAND2 z b c
.gate NAND2 p x y
.gate INV   ip p
.gate NAND2 out ip z
.end
)";
  const logic::ParseResult r = logic::parse_netlist(text);
  ASSERT_TRUE(r.ok) << r.error;
  for (std::uint64_t v = 0; v < 8; ++v) {
    const bool a = v & 1, b = v & 2, c = v & 4;
    const bool maj = (a && b) || (a && c) || (b && c);
    EXPECT_EQ(r.circuit.eval_outputs(v), static_cast<std::uint64_t>(maj));
  }
}

TEST(ExampleNetlists, AoiMuxSelects) {
  const std::string text = R"(
.model aoi_mux
.inputs a b s
.outputs out
.gate INV   ns s
.gate AOI22 m a ns b s
.gate INV   out m
.end
)";
  const logic::ParseResult r = logic::parse_netlist(text);
  ASSERT_TRUE(r.ok) << r.error;
  for (std::uint64_t v = 0; v < 8; ++v) {
    const bool a = v & 1, b = v & 2, s = v & 4;
    EXPECT_EQ(r.circuit.eval_outputs(v),
              static_cast<std::uint64_t>(s ? b : a))
        << "v=" << v;
  }
}

// --- NAND3 analog generalization ---------------------------------------------

TEST(Nand3Analog, PmosInputSpecificityHoldsForThreeInputs) {
  // Paper Sec. 5: the NAND analysis generalizes. For a NAND3 with a PMOS
  // defect at input 1, only the sequence dropping input 1 alone from the
  // all-ones state is slow; sequences dropping input 0 or 2 alone are at
  // their fault-free values.
  const cells::Technology tech = cells::Technology::default_350nm();
  core::GateCharacterizer chr(cells::nand_topology(3), tech);
  const cells::TransistorRef p1{true, 1};
  const core::BreakdownStage s = core::BreakdownStage::kMbd2;

  const cells::TwoVector own{0b111, 0b101};     // input 1 falls alone
  const cells::TwoVector other0{0b111, 0b110};  // input 0 falls alone
  const cells::TwoVector other2{0b111, 0b011};  // input 2 falls alone

  const auto ff = chr.measure(std::nullopt, s, own);
  ASSERT_TRUE(ff.delay.has_value());
  const auto m_own = chr.measure(p1, s, own);
  const auto m_o0 = chr.measure(p1, s, other0);
  const auto m_o2 = chr.measure(p1, s, other2);
  // Own transition heavily delayed (or stuck).
  if (m_own.delay) {
    EXPECT_GT(*m_own.delay, 1.8 * *ff.delay);
  } else {
    EXPECT_TRUE(m_own.stuck);
  }
  // Other-input transitions unaffected.
  ASSERT_TRUE(m_o0.delay.has_value());
  ASSERT_TRUE(m_o2.delay.has_value());
  EXPECT_LT(*m_o0.delay, 1.25 * *ff.delay);
  EXPECT_LT(*m_o2.delay, 1.25 * *ff.delay);
}

TEST(Nand3Analog, NmosDefectSlowsAnyFallingTransition) {
  const cells::Technology tech = cells::Technology::default_350nm();
  core::GateCharacterizer chr(cells::nand_topology(3), tech);
  const cells::TransistorRef n1{false, 1};
  const core::BreakdownStage s = core::BreakdownStage::kMbd2;
  const auto ff =
      chr.measure(std::nullopt, s, {0b011, 0b111});
  ASSERT_TRUE(ff.delay.has_value());
  for (const auto& tv :
       {cells::TwoVector{0b011, 0b111}, cells::TwoVector{0b101, 0b111},
        cells::TwoVector{0b000, 0b111}}) {
    const auto m = chr.measure(n1, s, tv);
    if (m.delay) {
      EXPECT_GT(*m.delay, 1.4 * *ff.delay)
          << cells::format_transition(tv, 3);
    } else {
      EXPECT_TRUE(m.stuck);
    }
  }
}

TEST(Nand3Analog, ExcitationEngineMatchesPaperSetSizes) {
  // Structural check already covered elsewhere; here the end-to-end count:
  // NAND3 needs 4 transitions (1 falling + 3 input-specific rising).
  const auto set = core::minimal_obd_test_set(cells::nand_topology(3));
  EXPECT_EQ(set.size(), 4u);
}

}  // namespace
}  // namespace obd

// Excitation-condition derivation vs the paper's published conditions.
#include "core/excitation.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace obd::core {
namespace {

using cells::format_transition;

std::set<std::string> format_all(const std::vector<TwoVector>& trs, int n) {
  std::set<std::string> out;
  for (const auto& t : trs) out.insert(format_transition(t, n));
  return out;
}

// --- NAND2: the paper's Sec. 4.1 conditions --------------------------------

TEST(ExcitationNand2, NmosExcitedByAnyFallingOutputTransition) {
  const CellTopology c = cells::nand_topology(2);
  // Paper: NMOS OBD detected through {(01,11),(10,11),(00,11)} - any input
  // switching producing a high-to-low output edge.
  const std::set<std::string> expected{"(01,11)", "(10,11)", "(00,11)"};
  for (int input : {0, 1}) {
    const auto got = format_all(obd_excitations(c, {false, input}), 2);
    EXPECT_EQ(got, expected) << "NMOS input " << input;
  }
}

TEST(ExcitationNand2, PmosInputSpecific) {
  const CellTopology c = cells::nand_topology(2);
  // Paper: PMOS at input A only via (11,01); at input B only via (11,10).
  EXPECT_EQ(format_all(obd_excitations(c, {true, 0}), 2),
            std::set<std::string>{"(11,01)"});
  EXPECT_EQ(format_all(obd_excitations(c, {true, 1}), 2),
            std::set<std::string>{"(11,10)"});
}

TEST(ExcitationNand2, SimultaneousPmosSwitchExcitesNeither) {
  // (11,00) turns on both PMOS in parallel: neither is essential.
  const CellTopology c = cells::nand_topology(2);
  const TwoVector tv{0b11, 0b00};
  EXPECT_FALSE(excites_obd(c, {true, 0}, tv));
  EXPECT_FALSE(excites_obd(c, {true, 1}, tv));
  // But both carry current: EM excitation applies.
  EXPECT_TRUE(excites_em(c, {true, 0}, tv));
  EXPECT_TRUE(excites_em(c, {true, 1}, tv));
}

TEST(ExcitationNand2, MinimalTestSetSizeThree) {
  // Paper: one of {(10,11),(00,11),(01,11)} plus {(11,10)} and {(11,01)}
  // is necessary and sufficient -> 3 transitions.
  const CellTopology c = cells::nand_topology(2);
  const auto set = minimal_obd_test_set(c);
  ASSERT_EQ(set.size(), 3u);
  const auto got = format_all(set, 2);
  EXPECT_TRUE(got.count("(11,01)"));
  EXPECT_TRUE(got.count("(11,10)"));
  // The third element is one of the falling-output transitions.
  int falling = 0;
  for (const auto& s : got)
    if (s == "(01,11)" || s == "(10,11)" || s == "(00,11)") ++falling;
  EXPECT_EQ(falling, 1);
}

// --- NOR2: the paper's Sec. 5 dual conditions -------------------------------

TEST(ExcitationNor2, PmosExcitedByAnyRisingOutputTransition) {
  const CellTopology c = cells::nor_topology(2);
  // Paper: for NOR, one of {(10,00),(01,00),(11,00)} covers the PMOS pair.
  const std::set<std::string> expected{"(10,00)", "(01,00)", "(11,00)"};
  for (int input : {0, 1}) {
    const auto got = format_all(obd_excitations(c, {true, input}), 2);
    EXPECT_EQ(got, expected) << "PMOS input " << input;
  }
}

TEST(ExcitationNor2, NmosInputSpecific) {
  const CellTopology c = cells::nor_topology(2);
  // Paper: sequences {(00,01)} and {(00,10)} for the two NMOS.
  EXPECT_EQ(format_all(obd_excitations(c, {false, 0}), 2),
            std::set<std::string>{"(00,10)"});
  EXPECT_EQ(format_all(obd_excitations(c, {false, 1}), 2),
            std::set<std::string>{"(00,01)"});
}

TEST(ExcitationNor2, MinimalTestSetSizeThree) {
  const CellTopology c = cells::nor_topology(2);
  EXPECT_EQ(minimal_obd_test_set(c).size(), 3u);
}

// --- Inverter ----------------------------------------------------------------

TEST(ExcitationInv, BothEdgesNeeded) {
  const CellTopology c = cells::inv_topology();
  EXPECT_EQ(format_all(obd_excitations(c, {false, 0}), 1),
            std::set<std::string>{"(0,1)"});
  EXPECT_EQ(format_all(obd_excitations(c, {true, 0}), 1),
            std::set<std::string>{"(1,0)"});
  EXPECT_EQ(minimal_obd_test_set(c).size(), 2u);
}

// --- NAND3: generalization --------------------------------------------------

TEST(ExcitationNand3, PmosNeedsAllOthersHeldHigh) {
  const CellTopology c = cells::nand_topology(3);
  // PMOS at input 0: v1 = 111, v2 = 011 (A low, B and C high).
  const auto got = format_all(obd_excitations(c, {true, 0}), 3);
  EXPECT_EQ(got, std::set<std::string>{"(111,011)"});
}

TEST(ExcitationNand3, NmosExcitedByAllFallingTransitions) {
  const CellTopology c = cells::nand_topology(3);
  // Any v1 != 111 followed by v2 = 111: 7 transitions.
  const auto got = obd_excitations(c, {false, 1});
  EXPECT_EQ(got.size(), 7u);
  for (const auto& tv : got) EXPECT_EQ(tv.v2, 0b111u);
}

TEST(ExcitationNand3, MinimalTestSetSizeFour) {
  // One falling + one rising per PMOS input.
  EXPECT_EQ(minimal_obd_test_set(cells::nand_topology(3)).size(), 4u);
}

// --- AOI21: where OBD and EM conditions split (paper Sec. 5) ---------------

TEST(ExcitationAoi21, ObdStricterThanEm) {
  const CellTopology c = cells::aoi21_topology();
  // Falling transition 000 -> 111 (out: 1 -> 0). PDN: (A.B) || C, both
  // branches conduct under 111: every NMOS carries current (EM excited)
  // but none is essential (OBD not excited).
  const TwoVector tv{0b000, 0b111};
  for (int i : {0, 1, 2}) {
    EXPECT_TRUE(excites_em(c, {false, i}, tv)) << i;
    EXPECT_FALSE(excites_obd(c, {false, i}, tv)) << i;
  }
}

TEST(ExcitationAoi21, ObdNmosOnSeriesBranchNeedsParallelBranchOff) {
  const CellTopology c = cells::aoi21_topology();
  // 000 -> 011 (A=B=1, C=0): only the series branch pulls down.
  const TwoVector tv{0b000, 0b011};
  EXPECT_TRUE(excites_obd(c, {false, 0}, tv));
  EXPECT_TRUE(excites_obd(c, {false, 1}, tv));
  EXPECT_FALSE(excites_obd(c, {false, 2}, tv));
}

TEST(ExcitationAoi21, EmTestSetDoesNotCoverObdFaults) {
  // The paper's warning: EM-targeting tests need not detect OBD defects.
  const CellTopology c = cells::aoi21_topology();
  const auto em_set = minimal_em_test_set(c);
  // Check whether every OBD-excitable transistor is excited by some EM test.
  bool all_covered = true;
  for (const auto& t : c.transistors()) {
    if (obd_excitations(c, t).empty()) continue;  // not OBD-excitable anyway
    bool covered = false;
    for (const auto& tv : em_set)
      if (excites_obd(c, t, tv)) covered = true;
    if (!covered) all_covered = false;
  }
  EXPECT_FALSE(all_covered)
      << "minimal EM set unexpectedly covers all OBD faults";
}

TEST(ExcitationAoi21, MinimalObdSetCoversAllExcitable) {
  const CellTopology c = cells::aoi21_topology();
  const auto set = minimal_obd_test_set(c);
  for (const auto& t : c.transistors()) {
    if (obd_excitations(c, t).empty()) continue;
    bool covered = false;
    for (const auto& tv : set)
      if (excites_obd(c, t, tv)) covered = true;
    EXPECT_TRUE(covered) << (t.pmos ? "P" : "N") << t.input;
  }
}

// --- Generic properties over the whole zoo ----------------------------------

class ExcitationPropertyTest
    : public testing::TestWithParam<CellTopology> {};

TEST_P(ExcitationPropertyTest, ObdImpliesEm) {
  const CellTopology& c = GetParam();
  const InputBits limit = 1u << c.num_inputs;
  for (const auto& t : c.transistors())
    for (InputBits v1 = 0; v1 < limit; ++v1)
      for (InputBits v2 = 0; v2 < limit; ++v2) {
        const TwoVector tv{v1, v2};
        if (excites_obd(c, t, tv))
          EXPECT_TRUE(excites_em(c, t, tv))
              << c.type_name << " " << t.input << " " << v1 << "->" << v2;
      }
}

TEST_P(ExcitationPropertyTest, ExcitationRequiresOutputSwitch) {
  const CellTopology& c = GetParam();
  const InputBits limit = 1u << c.num_inputs;
  for (const auto& t : c.transistors())
    for (InputBits v1 = 0; v1 < limit; ++v1)
      for (InputBits v2 = 0; v2 < limit; ++v2) {
        if (c.output(v1) == c.output(v2)) {
          EXPECT_FALSE(excites_obd(c, t, {v1, v2}));
          EXPECT_FALSE(excites_em(c, t, {v1, v2}));
        }
      }
}

TEST_P(ExcitationPropertyTest, EveryTransistorExcitableInComplementaryCell) {
  // For complementary SP cells every transistor has at least one exciting
  // transition (choose v2 so that only its own branch conducts).
  const CellTopology& c = GetParam();
  for (const auto& t : c.transistors())
    EXPECT_FALSE(obd_excitations(c, t).empty())
        << c.type_name << " " << (t.pmos ? "P" : "N") << t.input;
}

TEST_P(ExcitationPropertyTest, MinimalSetNoSmallerThanPmosOrNmosDemand) {
  // Each input-specific transistor needs its own transition, so the set
  // size is at least the max per-polarity count of singleton conditions.
  const CellTopology& c = GetParam();
  const auto set = minimal_obd_test_set(c);
  EXPECT_FALSE(set.empty());
  // And it must cover everything (cross-check of the cover search).
  for (const auto& t : c.transistors()) {
    if (obd_excitations(c, t).empty()) continue;
    bool covered = false;
    for (const auto& tv : set)
      if (excites_obd(c, t, tv)) covered = true;
    EXPECT_TRUE(covered);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cells, ExcitationPropertyTest,
    testing::Values(cells::inv_topology(), cells::nand_topology(2),
                    cells::nand_topology(3), cells::nand_topology(4),
                    cells::nor_topology(2), cells::nor_topology(3),
                    cells::aoi21_topology(), cells::aoi22_topology(),
                    cells::oai21_topology()),
    [](const testing::TestParamInfo<CellTopology>& info) {
      return info.param.type_name;
    });

}  // namespace
}  // namespace obd::core
